#include "stap/analysis.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "common/check.hpp"
#include "linalg/gemm.hpp"
#include "synth/steering.hpp"

namespace ppstap::stap {

namespace {

cfloat response_to(const linalg::MatrixCF& w, index_t beam,
                   std::span<const cfloat> v) {
  PPSTAP_REQUIRE(static_cast<index_t>(v.size()) == w.rows(),
                 "steering length must match weight rows");
  cfloat acc{};
  for (index_t j = 0; j < w.rows(); ++j)
    acc += std::conj(w(j, beam)) * v[static_cast<size_t>(j)];
  return acc;
}

}  // namespace

std::vector<double> angle_response(const linalg::MatrixCF& w, index_t beam,
                                   std::span<const double> azimuths_rad) {
  PPSTAP_REQUIRE(beam >= 0 && beam < w.cols(), "beam index out of range");
  std::vector<double> out;
  out.reserve(azimuths_rad.size());
  for (double az : azimuths_rad) {
    const auto v = synth::spatial_steering(w.rows(), az);
    out.push_back(static_cast<double>(linalg::abs_sq(
        response_to(w, beam, std::span<const cfloat>(v)))));
  }
  return out;
}

std::vector<double> angle_doppler_response(
    const linalg::MatrixCF& w, index_t beam, const StapParams& p,
    std::span<const double> azimuths_rad, std::span<const double> dopplers) {
  PPSTAP_REQUIRE(w.rows() == p.num_staggered_channels(),
                 "expected a 2J staggered weight pair");
  PPSTAP_REQUIRE(beam >= 0 && beam < w.cols(), "beam index out of range");
  const index_t j = p.num_channels;
  std::vector<double> out;
  out.reserve(azimuths_rad.size() * dopplers.size());
  for (double f : dopplers) {
    // The second stagger window sees the target delayed by `stagger` PRIs.
    const double phi = 2.0 * std::numbers::pi * f *
                       static_cast<double>(p.stagger);
    const cfloat stag(static_cast<float>(std::cos(phi)),
                      static_cast<float>(std::sin(phi)));
    for (double az : azimuths_rad) {
      const auto a = synth::spatial_steering(j, az);
      cfloat acc{};
      for (index_t c = 0; c < j; ++c) {
        const cfloat v = a[static_cast<size_t>(c)];
        acc += std::conj(w(c, beam)) * v +
               std::conj(w(j + c, beam)) * v * stag;
      }
      out.push_back(static_cast<double>(linalg::abs_sq(acc)));
    }
  }
  return out;
}

linalg::MatrixCF sample_covariance(const linalg::MatrixCF& x, float load) {
  PPSTAP_REQUIRE(x.rows() >= 1, "need at least one snapshot");
  // R = E[x x^H]: (X^H X)_{ij} = sum_r conj(x_i) x_j is the *conjugate* of
  // that expectation, so the product is conjugated element-wise.
  linalg::MatrixCF r;
  linalg::matmul(x, linalg::Op::kConjTrans, x, linalg::Op::kNone, r);
  const float inv = 1.0f / static_cast<float>(x.rows());
  for (index_t i = 0; i < r.rows(); ++i) {
    for (index_t jj = 0; jj < r.cols(); ++jj)
      r(i, jj) = std::conj(r(i, jj)) * inv;
    r(i, i) += load;
  }
  return r;
}

double sinr(const linalg::MatrixCF& w, index_t beam,
            const linalg::MatrixCF& rin, std::span<const cfloat> v) {
  PPSTAP_REQUIRE(rin.rows() == w.rows() && rin.cols() == w.rows(),
                 "covariance must be square over the weight dimension");
  const cfloat signal = response_to(w, beam, v);
  // w^H R w (real and positive for a positive-definite R).
  cdouble quad{};
  for (index_t i = 0; i < w.rows(); ++i) {
    cfloat rw{};
    for (index_t jj = 0; jj < w.rows(); ++jj) rw += rin(i, jj) * w(jj, beam);
    const cfloat c = std::conj(w(i, beam)) * rw;
    quad += cdouble(c.real(), c.imag());
  }
  PPSTAP_CHECK(quad.real() > 0.0, "covariance must be positive definite");
  return static_cast<double>(linalg::abs_sq(signal)) / quad.real();
}

double improvement_factor(const linalg::MatrixCF& w, index_t beam,
                          const linalg::MatrixCF& rin,
                          std::span<const cfloat> v) {
  linalg::MatrixCF quiescent(w.rows(), 1);
  PPSTAP_REQUIRE(static_cast<index_t>(v.size()) == w.rows(),
                 "steering length must match weight rows");
  for (index_t j = 0; j < w.rows(); ++j)
    quiescent(j, 0) = v[static_cast<size_t>(j)];
  return sinr(w, beam, rin, v) / sinr(quiescent, 0, rin, v);
}

double null_depth_db(const linalg::MatrixCF& w, index_t beam,
                     double azimuth_rad, double tolerance_rad) {
  // Scan the visible region finely; peak normalization over the scan.
  constexpr int kPoints = 721;
  std::vector<double> az(kPoints);
  for (int i = 0; i < kPoints; ++i)
    az[static_cast<size_t>(i)] =
        -std::numbers::pi / 2.0 +
        std::numbers::pi * static_cast<double>(i) /
            static_cast<double>(kPoints - 1);
  const auto resp = angle_response(w, beam, az);
  double peak = 0.0, in_window_min = std::numeric_limits<double>::infinity();
  bool window_hit = false;
  for (int i = 0; i < kPoints; ++i) {
    peak = std::max(peak, resp[static_cast<size_t>(i)]);
    if (std::abs(az[static_cast<size_t>(i)] - azimuth_rad) <= tolerance_rad) {
      in_window_min =
          std::min(in_window_min, resp[static_cast<size_t>(i)]);
      window_hit = true;
    }
  }
  PPSTAP_REQUIRE(window_hit, "tolerance window contains no scan points");
  PPSTAP_CHECK(peak > 0.0, "zero response over the scan");
  return 10.0 * std::log10(in_window_min / peak);
}

}  // namespace ppstap::stap
