#include "stap/weights.hpp"

#include <cmath>
#include <numbers>

#include <istream>
#include <ostream>

#include "common/check.hpp"
#include "linalg/qr.hpp"
#include "linalg/serialize.hpp"

namespace ppstap::stap {

namespace {

// Data-scale proxy for the constraint rows: mean magnitude of the retained
// triangular factor. Scaling the constraint with the data keeps the
// beam-shape/clutter-null compromise (Appendix A's k) independent of the
// absolute signal level.
float mean_abs_upper(const linalg::MatrixCF& r) {
  double acc = 0.0;
  index_t count = 0;
  for (index_t i = 0; i < r.rows(); ++i)
    for (index_t j = i; j < r.cols(); ++j) {
      acc += std::abs(r(i, j));
      ++count;
    }
  return count > 0 ? static_cast<float>(acc / static_cast<double>(count))
                   : 0.0f;
}

// Condition-guarded constrained least squares (the tentpole's numerical-
// health guard). Factorize A and check the R-diagonal condition estimate;
// above StapParams::condition_threshold, retry EXACTLY ONCE with `load *
// I_n` appended below A (diagonal loading at data scale, zero right-hand
// side) — the loaded problem is well posed even for a rank-deficient or
// all-zero training stack. The retry is counted in `health` so a degraded
// solve always leaves a ledger entry.
linalg::MatrixCF guarded_least_squares(const linalg::MatrixCF& a,
                                       const linalg::MatrixCF& b,
                                       double threshold, float load,
                                       WeightHealth& health,
                                       double abft_tol = 0.0) {
  linalg::QrFactorization<cfloat> qr(a);
  // ABFT residual gate (PR 5): a factorization that no longer preserves
  // the input's column norms was corrupted mid-flight; route it through
  // the loading retry like an ill-conditioned solve.
  const bool residual_bad =
      abft_tol > 0.0 && qr.column_norm_residual() > abft_tol;
  if (residual_bad)
    ++health.qr_residual_retries;
  else if (qr.condition_estimate() <= threshold)
    return qr.solve(b);
  else
    ++health.loading_retries;

  const index_t n = a.cols();
  if (load <= 0.0f || !std::isfinite(load)) load = 1.0f;
  linalg::MatrixCF a2(a.rows() + n, n);
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < n; ++j) a2(i, j) = a(i, j);
  for (index_t i = 0; i < n; ++i) a2(a.rows() + i, i) = load;
  linalg::MatrixCF b2(a.rows() + n, b.cols());
  for (index_t i = 0; i < b.rows(); ++i)
    for (index_t j = 0; j < b.cols(); ++j) b2(i, j) = b(i, j);
  linalg::QrFactorization<cfloat> qr2(a2);
  if (abft_tol > 0.0 && qr2.column_norm_residual() > abft_tol)
    ++health.qr_residual_rejects;  // persistent — patch_bad_columns screens
  return qr2.solve(b2);
}

// Post-solve screen: replace any non-finite or identically-zero weight
// column with the corresponding quiescent column (normalized), so nothing
// downstream ever beamforms with NaN/Inf. Counted once per patched matrix.
void patch_bad_columns(linalg::MatrixCF& w, const linalg::MatrixCF& quiescent,
                       WeightHealth& health) {
  bool patched = false;
  for (index_t c = 0; c < w.cols(); ++c) {
    bool bad = false;
    double norm_sq = 0.0;
    for (index_t i = 0; i < w.rows(); ++i) {
      const auto a2 = linalg::abs_sq(w(i, c));
      if (!std::isfinite(a2)) bad = true;
      norm_sq += static_cast<double>(a2);
    }
    if (!bad && norm_sq > 0.0) continue;
    for (index_t i = 0; i < w.rows(); ++i) w(i, c) = quiescent(i, c);
    patched = true;
  }
  if (patched) ++health.quiescent_fallbacks;
}

}  // namespace

void normalize_columns(linalg::MatrixCF& w) {
  for (index_t c = 0; c < w.cols(); ++c) {
    double norm_sq = 0.0;
    for (index_t i = 0; i < w.rows(); ++i)
      norm_sq += static_cast<double>(linalg::abs_sq(w(i, c)));
    if (norm_sq <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (index_t i = 0; i < w.rows(); ++i) w(i, c) *= inv;
  }
}

linalg::MatrixCF conventional_ls_weights(const linalg::MatrixCF& training,
                                         const linalg::MatrixCF& steering) {
  const index_t j = steering.rows();
  const index_t m = steering.cols();
  PPSTAP_REQUIRE(training.cols() == j,
                 "training columns must match steering rows");
  const index_t rows = training.rows();

  linalg::MatrixCF w(j, m);
  for (index_t beam = 0; beam < m; ++beam) {
    // A = [conj(X); ws^H], rhs = [0 ... 0 1]^T (Fig. 12). Rows enter
    // conjugated for the same w^H x output convention as the constrained
    // path.
    linalg::MatrixCF a(rows + 1, j);
    for (index_t r = 0; r < rows; ++r)
      for (index_t c = 0; c < j; ++c) a(r, c) = std::conj(training(r, c));
    for (index_t c = 0; c < j; ++c)
      a(rows, c) = std::conj(steering(c, beam));
    linalg::MatrixCF rhs(rows + 1, 1);
    rhs(rows, 0) = cfloat(1.0f, 0.0f);
    auto sol = linalg::least_squares(a, rhs);
    for (index_t c = 0; c < j; ++c) w(c, beam) = sol(c, 0);
  }
  normalize_columns(w);
  return w;
}

// ---------------------------------------------------------------------------
// Easy bins
// ---------------------------------------------------------------------------

EasyWeightComputer::EasyWeightComputer(const StapParams& p,
                                       linalg::MatrixCF steering,
                                       std::vector<index_t> bins)
    : p_(p), steering_(std::move(steering)), bins_(std::move(bins)) {
  p_.validate();
  PPSTAP_REQUIRE(steering_.rows() == p_.num_channels &&
                     steering_.cols() == p_.num_beams,
                 "steering matrix must be J x M");
  for (index_t b : bins_)
    PPSTAP_REQUIRE(!p_.is_hard_bin(b), "easy computer given a hard bin");
}

void EasyWeightComputer::push_training(
    std::vector<linalg::MatrixCF> per_bin_rows) {
  PPSTAP_REQUIRE(per_bin_rows.size() == bins_.size(),
                 "one training matrix per owned bin expected");
  for (auto& m : per_bin_rows) {
    PPSTAP_REQUIRE(m.cols() == p_.num_channels,
                   "easy training rows must have J columns");
    // NaN/Inf screen: a corrupted CPI block would poison the pooled history
    // for easy_history CPIs. Drop it (empty block) and ledger the event.
    if (!linalg::all_finite(m)) {
      m = linalg::MatrixCF(0, p_.num_channels);
      ++health_.nonfinite_training_blocks;
    }
  }
  history_.push_back(std::move(per_bin_rows));
  while (static_cast<index_t>(history_.size()) > p_.easy_history)
    history_.pop_front();
}

WeightSet EasyWeightComputer::compute() const {
  WeightSet out;
  out.bins = bins_;
  out.weights.reserve(bins_.size());

  const index_t j = p_.num_channels;
  const index_t m = p_.num_beams;

  linalg::MatrixCF quiescent = steering_;
  normalize_columns(quiescent);

  for (size_t bi = 0; bi < bins_.size(); ++bi) {
    index_t total_rows = 0;
    for (const auto& cpi : history_)
      total_rows += cpi[bi].rows();

    if (total_rows == 0) {
      // Quiescent: normalized steering (no adaptation yet).
      out.weights.push_back(quiescent);
      continue;
    }

    // Stack the pooled history over the constraint block avg * I_J. Rows
    // enter conjugated: the beamformer applies w^H x, so minimizing the
    // clutter output power means minimizing |x^H w| — the least squares
    // rows are the conjugated snapshots.
    linalg::MatrixCF a(total_rows + j, j);
    index_t row = 0;
    double abs_acc = 0.0;
    for (const auto& cpi : history_) {
      const auto& x = cpi[bi];
      for (index_t r = 0; r < x.rows(); ++r, ++row)
        for (index_t c = 0; c < j; ++c) {
          a(row, c) = std::conj(x(r, c));
          abs_acc += std::abs(x(r, c));
        }
    }
    const float scale = static_cast<float>(
        abs_acc / static_cast<double>(total_rows * j));
    const float avg = static_cast<float>(p_.beam_constraint_wt) * scale;
    for (index_t c = 0; c < j; ++c) a(total_rows + c, c) = avg;

    linalg::MatrixCF b(total_rows + j, m);
    for (index_t c = 0; c < m; ++c)
      for (index_t r = 0; r < j; ++r)
        b(total_rows + r, c) = steering_(r, c);

    linalg::MatrixCF w = guarded_least_squares(a, b, p_.condition_threshold,
                                               scale, health_,
                                               p_.abft_tolerance);
    patch_bad_columns(w, quiescent, health_);
    normalize_columns(w);
    out.weights.push_back(std::move(w));
  }
  return out;
}

void EasyWeightComputer::save(std::ostream& os) const {
  const std::uint64_t depth = history_.size();
  os.write(reinterpret_cast<const char*>(&depth), sizeof(depth));
  for (const auto& cpi : history_) {
    PPSTAP_CHECK(cpi.size() == bins_.size(), "corrupt history");
    for (const auto& m : cpi) linalg::write_matrix(os, m);
  }
  PPSTAP_REQUIRE(os.good(), "easy weight state write failed");
}

void EasyWeightComputer::restore(std::istream& is) {
  std::uint64_t depth = 0;
  is.read(reinterpret_cast<char*>(&depth), sizeof(depth));
  PPSTAP_REQUIRE(is.good() && depth <= static_cast<std::uint64_t>(
                                           p_.easy_history),
                 "easy weight state header mismatch");
  std::deque<std::vector<linalg::MatrixCF>> history;
  for (std::uint64_t h = 0; h < depth; ++h) {
    std::vector<linalg::MatrixCF> cpi;
    cpi.reserve(bins_.size());
    for (size_t b = 0; b < bins_.size(); ++b) {
      auto m = linalg::read_matrix<cfloat>(is);
      PPSTAP_REQUIRE(m.cols() == p_.num_channels,
                     "easy weight state column mismatch");
      cpi.push_back(std::move(m));
    }
    history.push_back(std::move(cpi));
  }
  history_ = std::move(history);
}

// ---------------------------------------------------------------------------
// Hard bins
// ---------------------------------------------------------------------------

HardWeightComputer::HardWeightComputer(const StapParams& p,
                                       linalg::MatrixCF steering,
                                       std::vector<HardUnit> units)
    : p_(p), steering_(std::move(steering)), units_(std::move(units)) {
  p_.validate();
  PPSTAP_REQUIRE(steering_.rows() == p_.num_channels &&
                     steering_.cols() == p_.num_beams,
                 "steering matrix must be J x M");
  for (const auto& u : units_) {
    PPSTAP_REQUIRE(p_.is_hard_bin(u.bin), "hard computer given an easy bin");
    PPSTAP_REQUIRE(u.segment >= 0 && u.segment < p_.num_segments,
                   "segment index out of range");
  }

  // Seed every R with diagonal loading so the very first solve is well
  // posed; the loading decays geometrically under the forgetting factor.
  const index_t jj = p_.num_staggered_channels();
  const auto seed = static_cast<float>(p_.diagonal_loading);
  r_.assign(units_.size(),
            linalg::MatrixCF::identity(jj, cfloat(seed, 0.0f)));
}

std::vector<HardUnit> HardWeightComputer::units_for_bins(
    const StapParams& p, std::span<const index_t> bins) {
  std::vector<HardUnit> units;
  units.reserve(bins.size() * static_cast<size_t>(p.num_segments));
  for (index_t bin : bins)
    for (index_t s = 0; s < p.num_segments; ++s)
      units.push_back(HardUnit{bin, s});
  return units;
}

void HardWeightComputer::update(
    const std::vector<linalg::MatrixCF>& per_unit_rows) {
  PPSTAP_REQUIRE(per_unit_rows.size() == r_.size(),
                 "one training matrix per unit expected");
  const auto lambda = static_cast<float>(p_.forgetting);
  for (size_t i = 0; i < r_.size(); ++i) {
    PPSTAP_REQUIRE(per_unit_rows[i].cols() == p_.num_staggered_channels(),
                   "hard training rows must have 2J columns");
    // NaN/Inf screen: a corrupted block folded into the recursive R would
    // contaminate every later CPI (the forgetting factor never fully
    // forgets a NaN). Skip this unit's update and ledger the event.
    if (!linalg::all_finite(per_unit_rows[i])) {
      ++health_.nonfinite_training_blocks;
      continue;
    }
    // Rows enter conjugated (the beamformer applies w^H x; see the easy
    // path for the convention note).
    linalg::MatrixCF x = per_unit_rows[i];
    for (index_t a = 0; a < x.rows(); ++a)
      for (index_t b = 0; b < x.cols(); ++b) x(a, b) = std::conj(x(a, b));
    linalg::MatrixCF faded = r_[i];
    for (index_t a = 0; a < faded.rows(); ++a)
      for (index_t b = 0; b < faded.cols(); ++b) faded(a, b) *= lambda;
    if (p_.abft_tolerance <= 0.0) {
      r_[i] = linalg::qr_append_rows(faded, std::move(x));
      continue;
    }
    // ABFT residual gate (PR 5): the append update must preserve the
    // column norms of [faded R; X]. A corrupted update would contaminate
    // every later CPI through the forgetting recursion, so verify,
    // recompute once, and on persistent failure discard the update rather
    // than fold it in.
    linalg::MatrixCF r_new = linalg::qr_append_rows(faded, x);
    if (linalg::append_column_norm_residual(faded, x, r_new) >
        p_.abft_tolerance) {
      ++health_.qr_residual_retries;
      r_new = linalg::qr_append_rows(faded, x);
      if (linalg::append_column_norm_residual(faded, x, r_new) >
          p_.abft_tolerance) {
        ++health_.qr_residual_rejects;
        continue;  // keep the previous R; this unit skips one update
      }
    }
    r_[i] = std::move(r_new);
  }
}

std::vector<linalg::MatrixCF> HardWeightComputer::compute() const {
  std::vector<linalg::MatrixCF> out;
  out.reserve(r_.size());

  const index_t j = p_.num_channels;
  const index_t jj = p_.num_staggered_channels();
  const index_t m = p_.num_beams;
  const index_t n = p_.num_pulses;

  for (size_t i = 0; i < units_.size(); ++i) {
    const index_t bin = units_[i].bin;
    // Relative phase of the second stagger window for a target in this bin:
    // the window is delayed by `stagger` PRIs, i.e. exp(-j 2 pi bin s / N)
    // (Appendix B's frequency constraint factor).
    const double phi = -2.0 * std::numbers::pi * static_cast<double>(bin) *
                       static_cast<double>(p_.stagger) /
                       static_cast<double>(n);
    const cfloat stag_phase(static_cast<float>(std::cos(phi)),
                            static_cast<float>(std::sin(phi)));

    const auto& r = r_[i];
    const float scale = mean_abs_upper(r);
    const float avg = static_cast<float>(p_.beam_constraint_wt) * scale;

    // A = [R; C] where C = avg [I_J | stag_phase I_J]: the J constraint
    // rows demand that the pair of staggered subweights, combined with
    // the bin's stagger phase, reproduce the steering vector.
    linalg::MatrixCF a(jj + j, jj);
    for (index_t row = 0; row < jj; ++row)
      for (index_t col = row; col < jj; ++col) a(row, col) = r(row, col);
    for (index_t row = 0; row < j; ++row) {
      a(jj + row, row) = avg;
      a(jj + row, j + row) = avg * stag_phase;
    }

    linalg::MatrixCF b(jj + j, m);
    for (index_t c = 0; c < m; ++c)
      for (index_t row = 0; row < j; ++row)
        b(jj + row, c) = steering_(row, c);

    // Quiescent fallback for this unit: both staggered subweights carry the
    // steering vector, the second rotated back by the bin's stagger phase so
    // the pair combines coherently under the constraint.
    linalg::MatrixCF quiescent(jj, m);
    for (index_t c = 0; c < m; ++c)
      for (index_t row = 0; row < j; ++row) {
        quiescent(row, c) = steering_(row, c);
        quiescent(j + row, c) = std::conj(stag_phase) * steering_(row, c);
      }
    normalize_columns(quiescent);

    linalg::MatrixCF w = guarded_least_squares(a, b, p_.condition_threshold,
                                               scale, health_,
                                               p_.abft_tolerance);
    patch_bad_columns(w, quiescent, health_);
    normalize_columns(w);
    out.push_back(std::move(w));
  }
  return out;
}

void HardWeightComputer::save(std::ostream& os) const {
  const std::uint64_t count = r_.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& r : r_) linalg::write_matrix(os, r);
  PPSTAP_REQUIRE(os.good(), "hard weight state write failed");
}

void HardWeightComputer::restore(std::istream& is) {
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  PPSTAP_REQUIRE(is.good() && count == r_.size(),
                 "hard weight state unit count mismatch");
  std::vector<linalg::MatrixCF> rs;
  rs.reserve(r_.size());
  const index_t jj = p_.num_staggered_channels();
  for (std::uint64_t i = 0; i < count; ++i) {
    auto r = linalg::read_matrix<cfloat>(is);
    PPSTAP_REQUIRE(r.rows() == jj && r.cols() == jj,
                   "hard weight state shape mismatch");
    rs.push_back(std::move(r));
  }
  r_ = std::move(rs);
}

}  // namespace ppstap::stap
