#include "stap/montecarlo.hpp"

#include <cmath>

#include "common/check.hpp"
#include "stap/sequential.hpp"
#include "synth/steering.hpp"

namespace ppstap::stap {

namespace {

// One chain run: adapt over train_cpis, return the scored CPI's result.
SequentialStap::CpiResult run_trial(const DetectionStudyConfig& cfg,
                                    const synth::ScenarioParams& scene) {
  synth::ScenarioGenerator gen(scene);
  auto steering = synth::steering_matrix(
      cfg.params.num_channels, cfg.params.num_beams,
      cfg.params.beam_center_rad, cfg.params.beam_span_rad);
  SequentialStap chain(cfg.params, steering, gen.replica());
  SequentialStap::CpiResult result;
  for (index_t cpi = 0; cpi <= cfg.train_cpis; ++cpi)
    result = chain.process(gen.generate(cpi));
  return result;
}

void validate(const DetectionStudyConfig& cfg) {
  cfg.params.validate();
  PPSTAP_REQUIRE(cfg.trials >= 1, "need at least one trial");
  PPSTAP_REQUIRE(cfg.target_range >= 0 &&
                     cfg.target_range < cfg.params.num_range,
                 "target range out of bounds");
  PPSTAP_REQUIRE(cfg.target_bin >= 0 &&
                     cfg.target_bin < cfg.params.num_pulses,
                 "target bin out of bounds");
  PPSTAP_REQUIRE(cfg.scene.num_range == cfg.params.num_range &&
                     cfg.scene.num_channels == cfg.params.num_channels &&
                     cfg.scene.num_pulses == cfg.params.num_pulses,
                 "scene dimensions must match STAP parameters");
}

}  // namespace

std::vector<DetectionPoint> detection_curve(const DetectionStudyConfig& cfg,
                                            std::span<const double> snrs_db) {
  validate(cfg);
  std::vector<DetectionPoint> curve;
  curve.reserve(snrs_db.size());

  for (double snr : snrs_db) {
    index_t hits = 0;
    double margin_sum = 0.0;
    for (index_t trial = 0; trial < cfg.trials; ++trial) {
      synth::ScenarioParams scene = cfg.scene;
      scene.seed = cfg.scene.seed + 7919ull * static_cast<std::uint64_t>(trial + 1);
      scene.targets.clear();
      scene.targets.push_back(synth::Target{
          cfg.target_range,
          static_cast<double>(cfg.target_bin) /
              static_cast<double>(cfg.params.num_pulses),
          cfg.target_azimuth, snr});
      const auto result = run_trial(cfg, scene);
      bool hit = false;
      float best_margin = 0.0f;
      for (const auto& d : result.detections) {
        if (d.doppler_bin != cfg.target_bin) continue;
        if (std::abs(d.range - cfg.target_range) > cfg.range_tolerance)
          continue;
        hit = true;
        best_margin = std::max(best_margin, d.power / d.threshold);
      }
      if (hit) {
        ++hits;
        margin_sum += static_cast<double>(best_margin);
      }
    }
    DetectionPoint pt;
    pt.snr_db = snr;
    pt.pd = static_cast<double>(hits) / static_cast<double>(cfg.trials);
    pt.mean_margin = hits > 0 ? margin_sum / static_cast<double>(hits) : 0.0;
    curve.push_back(pt);
  }
  return curve;
}

double measured_false_alarm_rate(const DetectionStudyConfig& cfg) {
  validate(cfg);
  std::uint64_t alarms = 0;
  for (index_t trial = 0; trial < cfg.trials; ++trial) {
    synth::ScenarioParams scene = cfg.scene;
    scene.seed = cfg.scene.seed + 104729ull * static_cast<std::uint64_t>(trial + 1);
    scene.targets.clear();
    alarms += run_trial(cfg, scene).detections.size();
  }
  const double cells = static_cast<double>(cfg.trials) *
                       static_cast<double>(cfg.params.num_pulses) *
                       static_cast<double>(cfg.params.num_beams) *
                       static_cast<double>(cfg.params.num_range);
  return static_cast<double>(alarms) / cells;
}

}  // namespace ppstap::stap
