#include "stap/pulse_compression.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/flops.hpp"
#include "common/parallel.hpp"
#include "dsp/fft.hpp"
#include "dsp/waveform.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/kernels.hpp"
#include "linalg/matrix.hpp"

namespace ppstap::stap {

struct PulseCompressor::Plans {
  dsp::FftPlan<float> fwd;
  dsp::FftPlan<float> inv;
  explicit Plans(index_t k)
      : fwd(k, dsp::FftDirection::kForward),
        inv(k, dsp::FftDirection::kInverse) {}
};

PulseCompressor::PulseCompressor(const StapParams& p,
                                 std::span<const cfloat> replica)
    : p_(p), plans_(std::make_shared<const Plans>(p.num_range)) {
  p_.validate();
  if (!replica.empty())
    filter_spec_ = dsp::matched_filter_spectrum(replica, p_.num_range);
}

cube::RealCube PulseCompressor::compress(const cube::CpiCube& beamformed,
                                         index_t active_beams,
                                         std::vector<double>* row_energy)
    const {
  const index_t nbins = beamformed.extent(0);
  const index_t m = beamformed.extent(1);
  const index_t k = beamformed.extent(2);
  PPSTAP_REQUIRE(k == p_.num_range, "range extent must equal K");
  if (active_beams < 0) active_beams = m;
  PPSTAP_REQUIRE(active_beams >= 1 && active_beams <= m,
                 "active beam count must be in [1, M]");

  cube::RealCube out(nbins, m, k);
  if (row_energy != nullptr)
    row_energy->assign(static_cast<size_t>(nbins * m), 0.0);

  parallel_for_blocks(kernels::kernel_threads(p_.intra_task_threads),
                      nbins * m, [&](index_t row_begin, index_t row_end) {
  std::vector<cfloat> line(static_cast<size_t>(k));
  for (index_t row = row_begin; row < row_end; ++row) {
    {
      const index_t b = row / m;
      const index_t mm = row % m;
      // A degraded CPI's inactive beams are all-zero: skip the matched
      // filter, their power stays zero and CFAR reports nothing there.
      if (mm >= active_beams) continue;
      const auto src = beamformed.line(b, mm);
      if (filter_spec_.empty()) {
        kernels::cf_abs_sq(src.data(), out.line(b, mm).data(), k);
        if (row_energy != nullptr)
          (*row_energy)[static_cast<size_t>(row)] =
              kernels::cf_energy(src.data(), k);
        continue;
      }
      std::copy(src.begin(), src.end(), line.begin());
      plans_->fwd.execute(line);
      kernels::cf_mul_inplace(line.data(), filter_spec_.data(), k);
      if (row_energy != nullptr) {
        // Parseval across the scaled inverse transform: the output power
        // sum equals the spectrum energy / K.
        (*row_energy)[static_cast<size_t>(row)] =
            kernels::cf_energy(line.data(), k) / static_cast<double>(k);
      }
      plans_->inv.execute(line);
      kernels::cf_abs_sq(line.data(), out.line(b, mm).data(), k);
      // Spectrum multiply (6K) + magnitude-squared (3K); FFTs self-count.
      count_flops(9ull * static_cast<std::uint64_t>(k));
    }
  }
  });
  return out;
}

bool pc_energy_check(const cube::RealCube& power,
                     const std::vector<double>& row_energy,
                     index_t active_beams, double tol) {
  const index_t nbins = power.extent(0);
  const index_t m = power.extent(1);
  const index_t k = power.extent(2);
  if (row_energy.size() != static_cast<size_t>(nbins * m)) return false;
  if (active_beams < 0) active_beams = m;
  for (index_t b = 0; b < nbins; ++b) {
    for (index_t mm = 0; mm < m; ++mm) {
      double sum = 0.0;
      const auto row = power.line(b, mm);
      for (index_t kk = 0; kk < k; ++kk) {
        const float v = row[static_cast<size_t>(kk)];
        if (!(v >= 0.0f) || !std::isfinite(v)) return false;
        sum += static_cast<double>(v);
      }
      const double expect =
          mm < active_beams ? row_energy[static_cast<size_t>(b * m + mm)]
                            : 0.0;
      if (std::abs(sum - expect) > tol * std::max(expect, 1e-30))
        return false;
    }
  }
  return true;
}

}  // namespace ppstap::stap
