#include "stap/pulse_compression.hpp"

#include "common/check.hpp"
#include "common/flops.hpp"
#include "common/parallel.hpp"
#include "dsp/fft.hpp"
#include "dsp/waveform.hpp"
#include "linalg/matrix.hpp"

namespace ppstap::stap {

struct PulseCompressor::Plans {
  dsp::FftPlan<float> fwd;
  dsp::FftPlan<float> inv;
  explicit Plans(index_t k)
      : fwd(k, dsp::FftDirection::kForward),
        inv(k, dsp::FftDirection::kInverse) {}
};

PulseCompressor::PulseCompressor(const StapParams& p,
                                 std::span<const cfloat> replica)
    : p_(p), plans_(std::make_shared<const Plans>(p.num_range)) {
  p_.validate();
  if (!replica.empty())
    filter_spec_ = dsp::matched_filter_spectrum(replica, p_.num_range);
}

cube::RealCube PulseCompressor::compress(const cube::CpiCube& beamformed,
                                         index_t active_beams) const {
  const index_t nbins = beamformed.extent(0);
  const index_t m = beamformed.extent(1);
  const index_t k = beamformed.extent(2);
  PPSTAP_REQUIRE(k == p_.num_range, "range extent must equal K");
  if (active_beams < 0) active_beams = m;
  PPSTAP_REQUIRE(active_beams >= 1 && active_beams <= m,
                 "active beam count must be in [1, M]");

  cube::RealCube out(nbins, m, k);

  parallel_for_blocks(p_.intra_task_threads, nbins * m, [&](index_t row_begin,
                                                            index_t row_end) {
  std::vector<cfloat> line(static_cast<size_t>(k));
  for (index_t row = row_begin; row < row_end; ++row) {
    {
      const index_t b = row / m;
      const index_t mm = row % m;
      // A degraded CPI's inactive beams are all-zero: skip the matched
      // filter, their power stays zero and CFAR reports nothing there.
      if (mm >= active_beams) continue;
      const auto src = beamformed.line(b, mm);
      if (filter_spec_.empty()) {
        for (index_t kk = 0; kk < k; ++kk)
          out.at(b, mm, kk) =
              linalg::abs_sq(src[static_cast<size_t>(kk)]);
        continue;
      }
      std::copy(src.begin(), src.end(), line.begin());
      plans_->fwd.execute(line);
      for (index_t kk = 0; kk < k; ++kk)
        line[static_cast<size_t>(kk)] *=
            filter_spec_[static_cast<size_t>(kk)];
      plans_->inv.execute(line);
      for (index_t kk = 0; kk < k; ++kk)
        out.at(b, mm, kk) = linalg::abs_sq(line[static_cast<size_t>(kk)]);
      // Spectrum multiply (6K) + magnitude-squared (3K); FFTs self-count.
      count_flops(9ull * static_cast<std::uint64_t>(k));
    }
  }
  });
  return out;
}

}  // namespace ppstap::stap
