// Parameters of the PRI-staggered post-Doppler STAP algorithm.
//
// Defaults reproduce the paper's experiment configuration (§7): K = 512
// range cells, J = 16 channels, N = 128 pulses, M = 6 receive beams,
// N_easy = 72, N_hard = 56, PRI stagger of 3 pulses, 6 hard range segments,
// Hanning Doppler window, forgetting factor 0.6 (Appendix B).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "dsp/window.hpp"

namespace ppstap::stap {

struct StapParams {
  // --- data cube geometry -------------------------------------------------
  index_t num_range = 512;     ///< K: range cells per CPI
  index_t num_channels = 16;   ///< J: receive channels
  index_t num_pulses = 128;    ///< N: pulses per CPI (= Doppler bins)
  index_t num_beams = 6;       ///< M: receive beams formed per transmit beam

  // --- Doppler filtering ---------------------------------------------------
  index_t stagger = 3;         ///< PRI-stagger separation in pulses
  dsp::WindowKind window = dsp::WindowKind::kHanning;
  /// Range correction (paper §5.1): scale each range cell by
  /// ((range_start_cells + k) / range_start_cells)^(range_correction_exp/2)
  /// in amplitude, compensating the R^-exp propagation power loss so the
  /// CFAR sees range-independent statistics. Off by default (the synthetic
  /// scene generator does not model propagation loss).
  bool range_correction = false;
  double range_start_cells = 64.0;   ///< standoff range of cell 0, in cells
  double range_correction_exp = 4.0; ///< two-way power-law exponent

  // --- easy / hard split ---------------------------------------------------
  /// Hard Doppler bins: the num_hard/2 bins on each side of zero Doppler
  /// (where mainbeam clutter competes). All remaining bins are easy.
  index_t num_hard = 56;

  // --- weight computation --------------------------------------------------
  index_t num_segments = 6;    ///< independent range segments, hard bins
  double beam_constraint_wt = 0.5;  ///< k in Appendix A (mainbeam constraint)
  double forgetting = 0.6;     ///< exponential forgetting, hard recursion
  index_t easy_history = 3;    ///< preceding CPIs pooled for easy training
  index_t easy_samples_per_cpi = 32;  ///< training range cells per CPI (easy)
  index_t hard_samples_per_segment = 30;  ///< cells per segment per update
  double diagonal_loading = 1e-3;  ///< seed for the recursive R (hard bins)
  /// Numerical-health guard: when the R-diagonal condition estimate of a
  /// weight solve exceeds this, the solve is retried once with diagonal
  /// loading appended at data scale (and ledgered); weights that still come
  /// out non-finite fall back to the quiescent (steering) beamformer.
  double condition_threshold = 1e6;
  /// ABFT residual gate on the weight-path QR (PR 5): when > 0, every
  /// factorization's column-norm residual (orthogonal transforms preserve
  /// column norms) is checked against this relative tolerance. A failing
  /// fresh QR is retried once through the diagonal-loading path; a failing
  /// recursive row-append update is recomputed once and, if still off,
  /// rejected so the corruption cannot enter the carried R. 0 disables the
  /// gate (the default — the pipeline sets it from PPSTAP_ABFT).
  double abft_tolerance = 0.0;

  // --- beam set ------------------------------------------------------------
  double beam_center_rad = 0.0;
  double beam_span_rad = 25.0 * 3.14159265358979 / 180.0;
  /// Transmit beam positions cycled across CPIs (paper §3: five 25-degree
  /// transmit beams revisited at 1-2 Hz). CPI i illuminates position
  /// i % num_beam_positions, and adaptive weight training draws only on
  /// past looks at the *same* position — the temporal dependency stretches
  /// to num_beam_positions CPIs. 1 = a single staring beam.
  index_t num_beam_positions = 1;

  // --- intra-task parallelism ----------------------------------------------
  /// Threads per kernel invocation (paper SS8 future work: the Paragon nodes
  /// had three processors on shared memory). Outputs are bitwise identical
  /// and flop totals are aggregated across workers for any value. The
  /// default 1 can be raised per process with PPSTAP_KERNEL_THREADS (see
  /// kernels/dispatch.hpp); an explicit non-default value here wins.
  index_t intra_task_threads = 1;

  // --- CFAR ----------------------------------------------------------------
  index_t cfar_ref = 8;     ///< reference cells on each side of the test cell
  index_t cfar_guard = 2;   ///< guard cells on each side
  double cfar_pfa = 1e-6;   ///< design probability of false alarm

  // --- derived -------------------------------------------------------------
  index_t num_easy() const { return num_pulses - num_hard; }
  index_t num_staggered_channels() const { return 2 * num_channels; }
  index_t window_length() const { return num_pulses - stagger; }

  /// True when Doppler bin `bin` (0-based, DC at 0) is a hard bin: the
  /// num_hard/2 bins nearest zero Doppler on either side (MATLAB reference:
  /// bins 1..numHardDop/2 and num_doppler-numHardDop/2+1..num_doppler).
  bool is_hard_bin(index_t bin) const {
    return bin < num_hard / 2 || bin >= num_pulses - (num_hard - num_hard / 2);
  }

  /// Global bin indices of the easy (resp. hard) bins, ascending.
  std::vector<index_t> easy_bins() const;
  std::vector<index_t> hard_bins() const;

  /// Half-open [begin, end) range-cell bounds of hard segment `s` (even
  /// split of K; the paper used boundaries {0,75,...,512} on K = 512).
  index_t segment_begin(index_t s) const;
  index_t segment_end(index_t s) const;

  /// CA-CFAR threshold multiplier achieving cfar_pfa with `num_ref` cells of
  /// exponentially distributed noise power: W * (PFA^(-1/W) - 1).
  double cfar_scale(index_t num_ref) const;

  /// Throws ppstap::Error if the configuration is inconsistent.
  void validate() const;

  /// A reduced-size configuration for fast tests (K=64, J=4, N=16, ...).
  static StapParams small_test();
};

}  // namespace ppstap::stap
