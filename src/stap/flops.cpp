#include "stap/flops.hpp"

#include "common/check.hpp"

namespace ppstap::stap {

namespace {

std::uint64_t log2_ceil(std::uint64_t n) {
  std::uint64_t lg = 0;
  while ((std::uint64_t{1} << lg) < n) ++lg;
  return lg;
}

std::uint64_t fft_flops(std::uint64_t n) { return 5 * n * log2_ceil(n); }

// Complex Householder QR of an m x n matrix (m >= n), matching the
// instrumented counter in linalg::QrFactorization: per column, the norm
// accumulation (2 per element) plus reflector application (16 per element
// per trailing column).
std::uint64_t qr_flops(std::uint64_t m, std::uint64_t n) {
  std::uint64_t total = 0;
  for (std::uint64_t j = 0; j < n; ++j) {
    const std::uint64_t len = m - j;
    total += 2 * len + 16 * len * (n - j - 1);
  }
  return total;
}

// Least-squares solve against an already factorized m x n system with
// `nrhs` right-hand sides: apply Q^H then back-substitute.
std::uint64_t ls_solve_flops(std::uint64_t m, std::uint64_t n,
                             std::uint64_t nrhs) {
  return 16 * m * n * nrhs + 8 * n * n * nrhs / 2;
}

// Block row-append QR update of k rows onto an n x n R, matching
// linalg::qr_append_rows' counter.
std::uint64_t qr_append_flops(std::uint64_t k, std::uint64_t n) {
  std::uint64_t total = 0;
  for (std::uint64_t j = 0; j < n; ++j)
    total += 2 * (k + 1) + 16 * (k + 1) * (n - j - 1);
  return total;
}

}  // namespace

const char* task_name(Task t) {
  switch (t) {
    case Task::kDopplerFilter:
      return "Doppler filter processing";
    case Task::kEasyWeight:
      return "easy weight computation";
    case Task::kHardWeight:
      return "hard weight computation";
    case Task::kEasyBeamform:
      return "easy beamforming";
    case Task::kHardBeamform:
      return "hard beamforming";
    case Task::kPulseCompression:
      return "pulse compression";
    case Task::kCfar:
      return "CFAR processing";
  }
  return "?";
}

std::uint64_t analytic_flops(Task t, const StapParams& p) {
  const auto k = static_cast<std::uint64_t>(p.num_range);
  const auto j = static_cast<std::uint64_t>(p.num_channels);
  const auto n = static_cast<std::uint64_t>(p.num_pulses);
  const auto m = static_cast<std::uint64_t>(p.num_beams);
  const auto n_easy = static_cast<std::uint64_t>(p.num_easy());
  const auto n_hard = static_cast<std::uint64_t>(p.num_hard);
  const auto segs = static_cast<std::uint64_t>(p.num_segments);
  const auto wlen = static_cast<std::uint64_t>(p.window_length());

  switch (t) {
    case Task::kDopplerFilter:
      // Per (range cell, channel): two windowed FFTs plus window (and
      // optional range-gain) multiplies.
      return k * j *
             (2 * fft_flops(n) + (p.range_correction ? 6 : 4) * wlen);
    case Task::kEasyWeight: {
      // Per easy bin: fresh QR of the pooled (history * samples + J) x J
      // system plus an M-rhs solve.
      const std::uint64_t rows =
          static_cast<std::uint64_t>(p.easy_history) *
              static_cast<std::uint64_t>(p.easy_samples_per_cpi) +
          j;
      return n_easy * (qr_flops(rows, j) + ls_solve_flops(rows, j, m));
    }
    case Task::kHardWeight: {
      // Per (hard bin, segment): recursive row-append update plus the
      // constrained solve on the (2J + J) x 2J system.
      const std::uint64_t jj = 2 * j;
      const std::uint64_t samples =
          static_cast<std::uint64_t>(p.hard_samples_per_segment);
      const std::uint64_t fade = 6 * jj * jj / 2;  // scale R by lambda
      const std::uint64_t per = fade + qr_append_flops(samples, jj) +
                                qr_flops(jj + j, jj) +
                                ls_solve_flops(jj + j, jj, m);
      return n_hard * segs * per;
    }
    case Task::kEasyBeamform:
      return 8 * n_easy * k * m * j;
    case Task::kHardBeamform:
      return 8 * n_hard * k * m * 2 * j;
    case Task::kPulseCompression:
      // Per (bin, beam): forward + inverse K-point FFT, spectrum multiply,
      // magnitude squared.
      return n * m * (2 * fft_flops(k) + 9 * k);
    case Task::kCfar:
      return n * m * 5 * k;
  }
  PPSTAP_CHECK(false, "unknown task");
  return 0;
}

std::array<std::uint64_t, kNumTasks + 1> analytic_flops_table(
    const StapParams& p) {
  std::array<std::uint64_t, kNumTasks + 1> out{};
  std::uint64_t total = 0;
  for (int t = 0; t < kNumTasks; ++t) {
    out[static_cast<size_t>(t)] = analytic_flops(static_cast<Task>(t), p);
    total += out[static_cast<size_t>(t)];
  }
  out[kNumTasks] = total;
  return out;
}

std::array<std::uint64_t, kNumTasks + 1> paper_table1() {
  return {79'691'776ull,  13'851'792ull, 197'038'464ull, 28'311'552ull,
          44'040'192ull,  38'928'384ull, 1'690'368ull,   403'552'528ull};
}

}  // namespace ppstap::stap
