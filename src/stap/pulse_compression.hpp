// Pulse compression (paper §5.4).
//
// Convolution of the beamformed output with the transmit replica via
// K-point FFT, point-wise spectrum multiply, inverse FFT. Performing this
// *after* beamforming (possible because the mainbeam constraint preserves
// phase across range) is one of the paper's computational savings: M beams
// instead of J (or 2J) channels pass through the matched filter.
//
// The output moves to the real power domain (|.|^2), halving the data and
// eliminating the square root, exactly as the paper describes.
#pragma once

#include <memory>
#include <span>

#include "cube/cube.hpp"
#include "stap/params.hpp"

namespace ppstap::stap {

class PulseCompressor {
 public:
  /// `replica` is the transmit waveform (its matched filter is built at
  /// FFT size K). An empty replica degrades gracefully to a pure
  /// detection (|.|^2) stage — useful for impulse-scene tests.
  PulseCompressor(const StapParams& p, std::span<const cfloat> replica);

  /// Input: B x M x K complex beamformed cube (range unit stride).
  /// Output: B x M x K real power cube.
  /// `active_beams` (-1 = all): beams past the count are skipped — they
  /// are all-zero under the overload ladder's reduced-beam rungs, so the
  /// matched-filter cost scales with the active count.
  ///
  /// `row_energy` (ABFT probe, PR 5): when non-null, receives one expected
  /// power sum per (bin, beam) row, computed in double from the matched
  /// filter's frequency domain via Parseval — sum |Y[k]|^2 / K for the
  /// spectrum-multiplied line (sum |x[k]|^2 on the filterless path, 0 for
  /// skipped beams). pc_energy_check compares the emitted power cube
  /// against it.
  cube::RealCube compress(const cube::CpiCube& beamformed,
                          index_t active_beams = -1,
                          std::vector<double>* row_energy = nullptr) const;

 private:
  StapParams p_;
  std::vector<cfloat> filter_spec_;  // conj(FFT(replica)), size K; empty = off
  struct Plans;
  std::shared_ptr<const Plans> plans_;
};

/// ABFT invariant (PR 5): matched-filter energy bound. Each row of the
/// power cube must sum (in double) to the frequency-domain energy recorded
/// by the compress() probe within relative `tol`, and hold only finite,
/// non-negative values. Returns false on the first violating row.
bool pc_energy_check(const cube::RealCube& power,
                     const std::vector<double>& row_energy,
                     index_t active_beams, double tol);

}  // namespace ppstap::stap
