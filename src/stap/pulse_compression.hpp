// Pulse compression (paper §5.4).
//
// Convolution of the beamformed output with the transmit replica via
// K-point FFT, point-wise spectrum multiply, inverse FFT. Performing this
// *after* beamforming (possible because the mainbeam constraint preserves
// phase across range) is one of the paper's computational savings: M beams
// instead of J (or 2J) channels pass through the matched filter.
//
// The output moves to the real power domain (|.|^2), halving the data and
// eliminating the square root, exactly as the paper describes.
#pragma once

#include <memory>
#include <span>

#include "cube/cube.hpp"
#include "stap/params.hpp"

namespace ppstap::stap {

class PulseCompressor {
 public:
  /// `replica` is the transmit waveform (its matched filter is built at
  /// FFT size K). An empty replica degrades gracefully to a pure
  /// detection (|.|^2) stage — useful for impulse-scene tests.
  PulseCompressor(const StapParams& p, std::span<const cfloat> replica);

  /// Input: B x M x K complex beamformed cube (range unit stride).
  /// Output: B x M x K real power cube.
  /// `active_beams` (-1 = all): beams past the count are skipped — they
  /// are all-zero under the overload ladder's reduced-beam rungs, so the
  /// matched-filter cost scales with the active count.
  cube::RealCube compress(const cube::CpiCube& beamformed,
                          index_t active_beams = -1) const;

 private:
  StapParams p_;
  std::vector<cfloat> filter_spec_;  // conj(FFT(replica)), size K; empty = off
  struct Plans;
  std::shared_ptr<const Plans> plans_;
};

}  // namespace ppstap::stap
