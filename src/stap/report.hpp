// Detection report serialization and summarization.
//
// The pipeline's output — "a list of targets at specified ranges, Doppler
// frequencies, and look directions" (paper §5.5) — as CSV for downstream
// tooling, plus a compact per-CPI summary used by the CLI driver.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "stap/cfar.hpp"

namespace ppstap::stap {

/// Write detections as CSV with header:
/// cpi,doppler_bin,beam,range,power,threshold
void write_detections_csv(std::ostream& os,
                          std::span<const std::vector<Detection>> per_cpi);

/// Parse the CSV produced by write_detections_csv. Throws on malformed
/// rows; tolerates the header line and blank lines.
std::vector<std::vector<Detection>> read_detections_csv(std::istream& is);

/// Compact statistics over one CPI's detections.
struct DetectionSummary {
  index_t count = 0;
  float max_margin = 0.0f;      ///< max power/threshold ratio
  index_t strongest_bin = -1;   ///< Doppler bin of the strongest detection
  index_t strongest_range = -1;
};
DetectionSummary summarize(std::span<const Detection> detections);

}  // namespace ppstap::stap
