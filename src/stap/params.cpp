#include "stap/params.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ppstap::stap {

std::vector<index_t> StapParams::easy_bins() const {
  std::vector<index_t> bins;
  bins.reserve(static_cast<size_t>(num_easy()));
  for (index_t b = 0; b < num_pulses; ++b)
    if (!is_hard_bin(b)) bins.push_back(b);
  return bins;
}

std::vector<index_t> StapParams::hard_bins() const {
  std::vector<index_t> bins;
  bins.reserve(static_cast<size_t>(num_hard));
  for (index_t b = 0; b < num_pulses; ++b)
    if (is_hard_bin(b)) bins.push_back(b);
  return bins;
}

index_t StapParams::segment_begin(index_t s) const {
  PPSTAP_REQUIRE(s >= 0 && s < num_segments, "segment index out of range");
  return s * num_range / num_segments;
}

index_t StapParams::segment_end(index_t s) const {
  PPSTAP_REQUIRE(s >= 0 && s < num_segments, "segment index out of range");
  return (s + 1) * num_range / num_segments;
}

double StapParams::cfar_scale(index_t num_ref) const {
  PPSTAP_REQUIRE(num_ref >= 1, "CFAR needs at least one reference cell");
  const double w = static_cast<double>(num_ref);
  return w * (std::pow(cfar_pfa, -1.0 / w) - 1.0);
}

void StapParams::validate() const {
  PPSTAP_REQUIRE(num_range >= 1 && num_channels >= 1 && num_pulses >= 1 &&
                     num_beams >= 1,
                 "cube dimensions must be positive");
  PPSTAP_REQUIRE(stagger >= 1 && stagger < num_pulses,
                 "stagger must be in [1, N)");
  PPSTAP_REQUIRE(num_hard >= 0 && num_hard < num_pulses,
                 "hard bin count must be in [0, N)");
  PPSTAP_REQUIRE(num_hard % 2 == 0, "hard bin count must be even");
  PPSTAP_REQUIRE(num_segments >= 1 && num_segments <= num_range,
                 "segment count must be in [1, K]");
  PPSTAP_REQUIRE(easy_history >= 1, "need at least one CPI of easy history");
  PPSTAP_REQUIRE(easy_samples_per_cpi >= 1 &&
                     easy_samples_per_cpi <= num_range,
                 "easy training samples per CPI must be in [1, K]");
  PPSTAP_REQUIRE(hard_samples_per_segment >= 1 &&
                     hard_samples_per_segment <=
                         num_range / num_segments,
                 "hard training samples must fit inside a segment");
  PPSTAP_REQUIRE(forgetting > 0.0 && forgetting <= 1.0,
                 "forgetting factor must be in (0, 1]");
  PPSTAP_REQUIRE(beam_constraint_wt > 0.0, "constraint weight must be > 0");
  PPSTAP_REQUIRE(diagonal_loading > 0.0, "diagonal loading must be > 0");
  PPSTAP_REQUIRE(condition_threshold > 1.0,
                 "condition threshold must be > 1");
  PPSTAP_REQUIRE(abft_tolerance >= 0.0 && abft_tolerance <= 1.0,
                 "ABFT tolerance must be in [0, 1]");
  PPSTAP_REQUIRE(intra_task_threads >= 1,
                 "need at least one intra-task thread");
  PPSTAP_REQUIRE(num_beam_positions >= 1,
                 "need at least one transmit beam position");
  PPSTAP_REQUIRE(range_start_cells > 0.0,
                 "range correction needs a positive standoff");
  PPSTAP_REQUIRE(range_correction_exp >= 0.0,
                 "range correction exponent must be nonnegative");
  PPSTAP_REQUIRE(cfar_ref >= 1 && cfar_guard >= 0, "invalid CFAR window");
  PPSTAP_REQUIRE(cfar_pfa > 0.0 && cfar_pfa < 1.0, "PFA must be in (0, 1)");
}

StapParams StapParams::small_test() {
  StapParams p;
  p.num_range = 64;
  p.num_channels = 4;
  p.num_pulses = 16;
  p.num_beams = 2;
  p.stagger = 2;
  p.num_hard = 6;
  p.num_segments = 2;
  p.easy_samples_per_cpi = 12;
  p.hard_samples_per_segment = 12;
  p.cfar_ref = 4;
  p.cfar_guard = 1;
  p.validate();
  return p;
}

}  // namespace ppstap::stap
