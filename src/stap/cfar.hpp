// Sliding-window cell-averaging CFAR (paper §5.5).
//
// The value of a test cell is compared against the mean of a set of
// reference range cells around it (excluding guard cells) times a
// probability-of-false-alarm factor. Post-detection power after |.|^2 of a
// complex Gaussian is exponentially distributed, for which the CA-CFAR
// multiplier achieving PFA with W reference cells is W (PFA^(-1/W) - 1);
// near the range edges the window shrinks and the multiplier is recomputed
// for the actual cell count so the false alarm rate stays constant.
#pragma once

#include <span>
#include <vector>

#include "cube/cube.hpp"
#include "stap/params.hpp"

namespace ppstap::stap {

/// One target report: the pipeline's final output.
struct Detection {
  index_t doppler_bin = 0;  ///< global Doppler bin
  index_t beam = 0;         ///< receive beam index
  index_t range = 0;        ///< range cell
  float power = 0.0f;       ///< cell power
  float threshold = 0.0f;   ///< threshold that was exceeded
};

/// Run CFAR over a B x M x K power cube whose B rows correspond to the
/// global Doppler bins listed in `bins`. Detections are ordered by
/// (bin row, beam, range).
std::vector<Detection> cfar_detect(const cube::RealCube& power,
                                   std::span<const index_t> bins,
                                   const StapParams& p);

/// ABFT invariant (PR 5): sanity check of a detection list against the
/// power cube it was derived from. Every report must quote exactly the
/// power stored at its (bin row, beam, range) cell (bitwise float
/// equality — the detector copies, never transforms), carry a finite
/// positive power above its finite non-negative threshold, point inside
/// the cube, reference an owned bin, and the list must be sorted by
/// (bin row, beam, range). Catches any bit flip in the report buffer.
bool verify_detections(std::span<const Detection> dets,
                       const cube::RealCube& power,
                       std::span<const index_t> bins, const StapParams& p);

}  // namespace ppstap::stap
