// Analytic floating-point operation counts per STAP task (paper Table 1).
//
// These formulas mirror the accounting conventions of the instrumented
// kernels (complex multiply-add = 8 flops, radix-2 FFT = 5 n log2 n), so
// analytic and measured counts agree closely; both are compared against the
// paper's Table 1 by bench/table1_flops. The analytic counts also drive the
// discrete-event machine model's compute-time predictions.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "stap/params.hpp"

namespace ppstap::stap {

/// The seven pipeline tasks in the paper's order (Fig. 4).
enum class Task {
  kDopplerFilter = 0,
  kEasyWeight = 1,
  kHardWeight = 2,
  kEasyBeamform = 3,
  kHardBeamform = 4,
  kPulseCompression = 5,
  kCfar = 6,
};
inline constexpr int kNumTasks = 7;

/// Printable task name matching the paper's tables.
const char* task_name(Task t);

/// Analytic flops for one CPI through task `t` under parameters `p`.
std::uint64_t analytic_flops(Task t, const StapParams& p);

/// All seven tasks plus the total, in task order (total at index 7).
std::array<std::uint64_t, kNumTasks + 1> analytic_flops_table(
    const StapParams& p);

/// The paper's Table 1 values (flops per CPI for the §7 parameter set),
/// for side-by-side comparison in benches and EXPERIMENTS.md.
std::array<std::uint64_t, kNumTasks + 1> paper_table1();

}  // namespace ppstap::stap
