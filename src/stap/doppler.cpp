#include "stap/doppler.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/flops.hpp"
#include "common/parallel.hpp"
#include "dsp/fft.hpp"
#include "kernels/dispatch.hpp"

namespace ppstap::stap {

struct DopplerFilter::PlanHolder {
  dsp::FftPlan<float> fwd;
  explicit PlanHolder(index_t n) : fwd(n, dsp::FftDirection::kForward) {}
};

DopplerFilter::DopplerFilter(const StapParams& p)
    : p_(p),
      window_(dsp::make_window(p.window, p.window_length())),
      plan_(std::make_shared<const PlanHolder>(p.num_pulses)) {
  p_.validate();
}

float DopplerFilter::range_gain(index_t k) const {
  if (!p_.range_correction) return 1.0f;
  const double r = (p_.range_start_cells + static_cast<double>(k)) /
                   p_.range_start_cells;
  // Power goes as R^-exp, so the amplitude correction is R^(exp/2).
  return static_cast<float>(std::pow(r, p_.range_correction_exp / 2.0));
}

cube::CpiCube DopplerFilter::filter(const cube::CpiCube& raw,
                                    index_t k_offset) const {
  const index_t k_local = raw.extent(0);
  const index_t j = p_.num_channels;
  const index_t n = p_.num_pulses;
  const index_t wlen = p_.window_length();
  PPSTAP_REQUIRE(raw.extent(1) == j && raw.extent(2) == n,
                 "raw slab must be K_local x J x N");
  PPSTAP_REQUIRE(k_offset >= 0, "slab offset must be nonnegative");

  cube::CpiCube out(k_local, 2 * j, n);

  parallel_for_blocks(kernels::kernel_threads(p_.intra_task_threads), k_local,
                      [&](index_t k_begin, index_t k_end) {
  std::vector<float> wg(static_cast<size_t>(wlen));
  for (index_t k = k_begin; k < k_end; ++k) {
    const float gain = range_gain(k_offset + k);
    // The range gain folds into the window multiply.
    for (index_t i = 0; i < wlen; ++i)
      wg[static_cast<size_t>(i)] = window_[static_cast<size_t>(i)] * gain;
    for (index_t ch = 0; ch < j; ++ch) {
      const auto pulses = raw.line(k, ch);

      // Window both staggers directly into the output cube — the 2J lines
      // of one range gate are contiguous there, so a single batched FFT
      // call transforms all of them.

      // First stagger window: pulses [0, wlen), zero-padded to N.
      auto line0 = out.line(k, ch);
      for (index_t i = 0; i < wlen; ++i)
        line0[static_cast<size_t>(i)] =
            pulses[static_cast<size_t>(i)] * wg[static_cast<size_t>(i)];

      // Second stagger window: pulses [stagger, stagger + wlen).
      auto line1 = out.line(k, j + ch);
      for (index_t i = 0; i < wlen; ++i)
        line1[static_cast<size_t>(i)] =
            pulses[static_cast<size_t>(i + p_.stagger)] *
            wg[static_cast<size_t>(i)];

      // Windowing cost: one real*complex multiply per sample per window
      // (plus the folded gain multiply when range correction is on).
      count_flops(static_cast<std::uint64_t>(2 * wlen) *
                  (p_.range_correction ? 3 : 2));
    }
    plan_->fwd.execute_batch(
        std::span<cfloat>(&out.at(k, 0, 0), static_cast<size_t>(2 * j * n)),
        2 * j);
  }
  });
  return out;
}

bool DopplerFilter::parseval_check(const cube::CpiCube& raw,
                                   const cube::CpiCube& stag,
                                   index_t k_offset, double tol) const {
  const index_t k_local = raw.extent(0);
  const index_t j = p_.num_channels;
  const index_t n = p_.num_pulses;
  const index_t wlen = p_.window_length();
  PPSTAP_REQUIRE(stag.extent(0) == k_local && stag.extent(1) == 2 * j &&
                     stag.extent(2) == n,
                 "staggered slab must be K_local x 2J x N");

  for (index_t k = 0; k < k_local; ++k) {
    const double gain = range_gain(k_offset + k);
    for (index_t ch = 0; ch < j; ++ch) {
      const auto pulses = raw.line(k, ch);
      for (int w = 0; w < 2; ++w) {
        const index_t shift = w == 0 ? 0 : p_.stagger;
        double time_energy = 0.0;
        for (index_t i = 0; i < wlen; ++i) {
          const cfloat x = pulses[static_cast<size_t>(i + shift)];
          const double scale =
              static_cast<double>(window_[static_cast<size_t>(i)]) * gain;
          time_energy += (static_cast<double>(x.real()) *
                              static_cast<double>(x.real()) +
                          static_cast<double>(x.imag()) *
                              static_cast<double>(x.imag())) *
                         scale * scale;
        }
        double freq_energy = 0.0;
        const auto line = stag.line(k, w * j + ch);
        for (index_t i = 0; i < n; ++i) {
          const cfloat v = line[static_cast<size_t>(i)];
          freq_energy += static_cast<double>(v.real()) *
                             static_cast<double>(v.real()) +
                         static_cast<double>(v.imag()) *
                             static_cast<double>(v.imag());
        }
        freq_energy /= static_cast<double>(n);
        if (!std::isfinite(freq_energy)) return false;
        const double floor = 1e-30;
        if (std::abs(freq_energy - time_energy) >
            tol * std::max(time_energy, floor))
          return false;
      }
    }
  }
  return true;
}

}  // namespace ppstap::stap
