// Beam pattern and SINR analysis of adaptive weights (paper Appendix A).
//
// The mainbeam-constraint argument of the paper is about the *shape* of the
// adapted pattern: a conventional least-squares solution distorts the main
// beam, while the constrained solution nulls clutter with only slight
// weight perturbations. These utilities compute the quantities that make
// that argument measurable: spatial responses, angle-Doppler responses of
// PRI-staggered weight pairs, sample covariance estimates, and SINR /
// improvement-factor figures.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "stap/params.hpp"

namespace ppstap::stap {

/// |w^H a(theta)|^2 for each requested azimuth: the spatial power response
/// of a J-element weight vector `w` (column `beam` of a J x M matrix).
std::vector<double> angle_response(const linalg::MatrixCF& w, index_t beam,
                                   std::span<const double> azimuths_rad);

/// Angle-Doppler power response of a PRI-staggered 2J weight pair (column
/// `beam` of a 2J x M matrix): the pair is driven by a unit target at each
/// (azimuth, normalized Doppler) including the stagger phase between the
/// two halves. Result is row-major [doppler][azimuth].
std::vector<double> angle_doppler_response(
    const linalg::MatrixCF& w, index_t beam, const StapParams& p,
    std::span<const double> azimuths_rad, std::span<const double> dopplers);

/// Sample covariance R = X^H X / rows of training snapshots (rows x
/// channels). Diagonal loading `load` * I is added for conditioning.
linalg::MatrixCF sample_covariance(const linalg::MatrixCF& x, float load);

/// SINR of weight column `beam` against interference-plus-noise covariance
/// `rin` and target steering `v`: |w^H v|^2 / (w^H R w).
double sinr(const linalg::MatrixCF& w, index_t beam,
            const linalg::MatrixCF& rin, std::span<const cfloat> v);

/// Improvement factor of `w` over the quiescent (steering-only) weight for
/// the same target/interference: SINR(w) / SINR(v as weight).
double improvement_factor(const linalg::MatrixCF& w, index_t beam,
                          const linalg::MatrixCF& rin,
                          std::span<const cfloat> v);

/// Depth of the deepest null of `w` within `tolerance_rad` of
/// `azimuth_rad`, in dB relative to the peak response over the scan.
double null_depth_db(const linalg::MatrixCF& w, index_t beam,
                     double azimuth_rad, double tolerance_rad);

}  // namespace ppstap::stap
