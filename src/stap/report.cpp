#include "stap/report.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/check.hpp"

namespace ppstap::stap {

void write_detections_csv(std::ostream& os,
                          std::span<const std::vector<Detection>> per_cpi) {
  os << "cpi,doppler_bin,beam,range,power,threshold\n";
  for (size_t cpi = 0; cpi < per_cpi.size(); ++cpi)
    for (const auto& d : per_cpi[cpi])
      os << cpi << ',' << d.doppler_bin << ',' << d.beam << ',' << d.range
         << ',' << d.power << ',' << d.threshold << '\n';
  PPSTAP_REQUIRE(os.good(), "detection CSV write failed");
}

std::vector<std::vector<Detection>> read_detections_csv(std::istream& is) {
  std::vector<std::vector<Detection>> out;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (first && line.rfind("cpi,", 0) == 0) {
      first = false;
      continue;
    }
    first = false;
    std::istringstream row(line);
    long cpi = -1, bin = -1, beam = -1, range = -1;
    float power = 0, threshold = 0;
    char c1, c2, c3, c4, c5;
    row >> cpi >> c1 >> bin >> c2 >> beam >> c3 >> range >> c4 >> power >>
        c5 >> threshold;
    PPSTAP_REQUIRE(!row.fail() && c1 == ',' && c2 == ',' && c3 == ',' &&
                       c4 == ',' && c5 == ',' && cpi >= 0,
                   "malformed detection CSV row: " + line);
    if (static_cast<size_t>(cpi) >= out.size())
      out.resize(static_cast<size_t>(cpi) + 1);
    out[static_cast<size_t>(cpi)].push_back(
        Detection{bin, beam, range, power, threshold});
  }
  return out;
}

DetectionSummary summarize(std::span<const Detection> detections) {
  DetectionSummary s;
  s.count = static_cast<index_t>(detections.size());
  for (const auto& d : detections) {
    const float margin = d.threshold > 0 ? d.power / d.threshold : 0.0f;
    if (margin > s.max_margin) {
      s.max_margin = margin;
      s.strongest_bin = d.doppler_bin;
      s.strongest_range = d.range;
    }
  }
  return s;
}

}  // namespace ppstap::stap
