#include "stap/sequential.hpp"

#include <istream>
#include <ostream>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace ppstap::stap {

SequentialStap::SequentialStap(const StapParams& p, linalg::MatrixCF steering,
                               std::span<const cfloat> replica)
    : SequentialStap(p,
                     std::vector<linalg::MatrixCF>(
                         static_cast<size_t>(p.num_beam_positions), steering),
                     replica) {}

SequentialStap::SequentialStap(
    const StapParams& p, std::vector<linalg::MatrixCF> steering_per_position,
    std::span<const cfloat> replica)
    : p_(p),
      doppler_(p),
      compressor_(p, replica),
      easy_bins_(p.easy_bins()),
      hard_bins_(p.hard_bins()),
      easy_cells_(easy_training_cells(p)) {
  p_.validate();
  PPSTAP_REQUIRE(static_cast<index_t>(steering_per_position.size()) ==
                     p_.num_beam_positions,
                 "one steering matrix per transmit beam position expected");
  hard_cells_.reserve(static_cast<size_t>(p_.num_segments));
  for (index_t s = 0; s < p_.num_segments; ++s)
    hard_cells_.push_back(hard_training_cells(p_, s));

  const auto hard_units = HardWeightComputer::units_for_bins(
      p_, std::span<const index_t>(hard_bins_));
  for (index_t pos = 0; pos < p_.num_beam_positions; ++pos) {
    const auto& steering = steering_per_position[static_cast<size_t>(pos)];
    easy_computers_.emplace_back(p_, steering, easy_bins_);
    hard_computers_.emplace_back(p_, steering, hard_units);
    // Each position's first CPI is beamformed with quiescent weights.
    easy_w_.push_back(easy_computers_.back().compute());
    WeightSet hw;
    hw.bins = hard_bins_;
    hw.weights = hard_computers_.back().compute();
    hard_w_.push_back(std::move(hw));
  }
}

SequentialStap::CpiResult SequentialStap::process(const cube::CpiCube& cpi) {
  PPSTAP_REQUIRE(cpi.extent(0) == p_.num_range &&
                     cpi.extent(1) == p_.num_channels &&
                     cpi.extent(2) == p_.num_pulses,
                 "CPI cube must be K x J x N");
  const auto pos = static_cast<size_t>(cpi_counter_ % p_.num_beam_positions);
  const auto span_cpi = static_cast<std::int64_t>(cpi_counter_);
  ++cpi_counter_;

  // One obs span per chain stage, named after the task it mirrors; the
  // stages tile the CPI back-to-back on the "sequential" track.
  const bool tracing = obs::tracing_enabled();
  double stage_start = tracing ? WallTimer::now() : 0.0;
  auto mark_stage = [&](const char* name) {
    if (!tracing) return;
    const double now = WallTimer::now();
    obs::emit({name, "sequential", 0, obs::kSeqTrack, span_cpi, stage_start,
               now, -1, -1});
    stage_start = now;
  };

  // --- Task 0: Doppler filter processing ---------------------------------
  last_staggered_ = doppler_.filter(cpi);
  mark_stage("doppler");

  // --- Reorganization (sequential analogue of the Fig. 8 redistribution) --
  const index_t k = p_.num_range;
  const index_t j = p_.num_channels;
  const index_t jj = p_.num_staggered_channels();
  cube::CpiCube easy_data(static_cast<index_t>(easy_bins_.size()), k, j);
  for (size_t b = 0; b < easy_bins_.size(); ++b)
    for (index_t kk = 0; kk < k; ++kk)
      for (index_t ch = 0; ch < j; ++ch)
        easy_data.at(static_cast<index_t>(b), kk, ch) =
            last_staggered_.at(kk, ch, easy_bins_[b]);
  cube::CpiCube hard_data(static_cast<index_t>(hard_bins_.size()), k, jj);
  for (size_t b = 0; b < hard_bins_.size(); ++b)
    for (index_t kk = 0; kk < k; ++kk)
      for (index_t ch = 0; ch < jj; ++ch)
        hard_data.at(static_cast<index_t>(b), kk, ch) =
            last_staggered_.at(kk, ch, hard_bins_[b]);
  mark_stage("reorg");

  // --- Tasks 3/4: beamforming with this position's previous weights ------
  last_easy_bf_ = easy_beamform(easy_data, easy_w_[pos], p_);
  last_hard_bf_ = hard_beamform(hard_data, hard_w_[pos], p_);
  mark_stage("beamform");

  // Assemble the N x M x K cube the pulse compression task receives.
  cube::CpiCube combined(p_.num_pulses, p_.num_beams, k);
  for (size_t b = 0; b < easy_bins_.size(); ++b)
    for (index_t m = 0; m < p_.num_beams; ++m) {
      auto dst = combined.line(easy_bins_[b], m);
      auto src = last_easy_bf_.line(static_cast<index_t>(b), m);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  for (size_t b = 0; b < hard_bins_.size(); ++b)
    for (index_t m = 0; m < p_.num_beams; ++m) {
      auto dst = combined.line(hard_bins_[b], m);
      auto src = last_hard_bf_.line(static_cast<index_t>(b), m);
      std::copy(src.begin(), src.end(), dst.begin());
    }

  // --- Task 5: pulse compression ------------------------------------------
  last_power_ = compressor_.compress(combined);
  mark_stage("pulse_compression");

  // --- Task 6: CFAR --------------------------------------------------------
  std::vector<index_t> all_bins(static_cast<size_t>(p_.num_pulses));
  for (index_t b = 0; b < p_.num_pulses; ++b)
    all_bins[static_cast<size_t>(b)] = b;
  CpiResult result{cfar_detect(last_power_, all_bins, p_)};
  mark_stage("cfar");

  // --- Tasks 1/2: weight computation for this position's next CPI ---------
  std::vector<linalg::MatrixCF> easy_rows;
  easy_rows.reserve(easy_bins_.size());
  for (index_t bin : easy_bins_)
    easy_rows.push_back(
        gather_training(last_staggered_, easy_cells_, bin, false, p_));
  easy_computers_[pos].push_training(std::move(easy_rows));
  easy_w_[pos] = easy_computers_[pos].compute();

  std::vector<linalg::MatrixCF> hard_rows;
  hard_rows.reserve(hard_bins_.size() *
                    static_cast<size_t>(p_.num_segments));
  for (index_t bin : hard_bins_)
    for (index_t s = 0; s < p_.num_segments; ++s)
      hard_rows.push_back(gather_training(
          last_staggered_, hard_cells_[static_cast<size_t>(s)], bin, true,
          p_));
  hard_computers_[pos].update(hard_rows);
  hard_w_[pos].weights = hard_computers_[pos].compute();
  mark_stage("weights");

  return result;
}

void SequentialStap::save_state(std::ostream& os) const {
  const std::uint64_t magic = 0x50505353;  // "PPSS"
  const std::int64_t counter = cpi_counter_;
  const std::int64_t positions = p_.num_beam_positions;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  os.write(reinterpret_cast<const char*>(&counter), sizeof(counter));
  os.write(reinterpret_cast<const char*>(&positions), sizeof(positions));
  for (index_t pos = 0; pos < p_.num_beam_positions; ++pos) {
    easy_computers_[static_cast<size_t>(pos)].save(os);
    hard_computers_[static_cast<size_t>(pos)].save(os);
  }
  PPSTAP_REQUIRE(os.good(), "chain state write failed");
}

void SequentialStap::load_state(std::istream& is) {
  std::uint64_t magic = 0;
  std::int64_t counter = -1, positions = -1;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&counter), sizeof(counter));
  is.read(reinterpret_cast<char*>(&positions), sizeof(positions));
  PPSTAP_REQUIRE(is.good() && magic == 0x50505353,
                 "not a ppstap chain state stream");
  PPSTAP_REQUIRE(counter >= 0 && positions == p_.num_beam_positions,
                 "chain state does not match this configuration");
  for (index_t pos = 0; pos < p_.num_beam_positions; ++pos) {
    easy_computers_[static_cast<size_t>(pos)].restore(is);
    hard_computers_[static_cast<size_t>(pos)].restore(is);
    easy_w_[static_cast<size_t>(pos)] =
        easy_computers_[static_cast<size_t>(pos)].compute();
    hard_w_[static_cast<size_t>(pos)].weights =
        hard_computers_[static_cast<size_t>(pos)].compute();
  }
  cpi_counter_ = counter;
}

}  // namespace ppstap::stap
