// Sequential reference implementation of the full STAP chain.
//
// Processes CPIs one at a time through Doppler filtering -> beamforming
// (with weights derived from *previous* CPIs — the paper's temporal
// dependency TD_{1,3}/TD_{2,4}) -> pulse compression -> CFAR, then updates
// the weight state with the current CPI for use on the next one.
//
// The parallel pipeline must produce identical detections on the same CPI
// stream; this class is the oracle for those tests and the single-node
// baseline (the round-robin RTMCARM deployment ran exactly this per node).
#pragma once

#include <iosfwd>
#include <optional>

#include "stap/beamform.hpp"
#include "stap/cfar.hpp"
#include "stap/doppler.hpp"
#include "stap/params.hpp"
#include "stap/pulse_compression.hpp"
#include "stap/training.hpp"
#include "stap/weights.hpp"

namespace ppstap::stap {

class SequentialStap {
 public:
  /// `steering` is J x M; `replica` may be empty (no pulse compression
  /// spreading). With num_beam_positions > 1 the same steering serves
  /// every transmit position (receive beams relative to the array).
  SequentialStap(const StapParams& p, linalg::MatrixCF steering,
                 std::span<const cfloat> replica);

  /// Per-transmit-position steering: `steering[i]` (J x M) forms the
  /// receive beams of position i (paper §3: six receive beams within each
  /// transmit beam). Size must equal num_beam_positions.
  SequentialStap(const StapParams& p,
                 std::vector<linalg::MatrixCF> steering_per_position,
                 std::span<const cfloat> replica);

  struct CpiResult {
    std::vector<Detection> detections;
  };

  /// Process the next CPI in the stream.
  CpiResult process(const cube::CpiCube& cpi);

  /// Intermediates of the most recent process() call, retained for tests
  /// and analysis tools (angle-Doppler pattern inspection, SINR probes).
  const cube::CpiCube& last_staggered() const { return last_staggered_; }
  const cube::CpiCube& last_easy_beamformed() const { return last_easy_bf_; }
  const cube::CpiCube& last_hard_beamformed() const { return last_hard_bf_; }
  const cube::RealCube& last_power() const { return last_power_; }
  /// Weights that will be applied to the next CPI at position `pos`.
  const WeightSet& current_easy_weights(index_t pos = 0) const {
    return easy_w_[static_cast<size_t>(pos)];
  }
  const WeightSet& current_hard_weights(index_t pos = 0) const {
    return hard_w_[static_cast<size_t>(pos)];
  }
  /// Number of CPIs processed so far (the next CPI's transmit position is
  /// cpis_processed() % num_beam_positions).
  index_t cpis_processed() const { return cpi_counter_; }

  /// Checkpoint / restore the chain's adaptive state (per-position easy
  /// training history, hard triangular factors, CPI counter) — the
  /// functional counterpart of the re-allocation state migration the
  /// machine model prices (core::PipelineSimulator::weight_state_bytes).
  /// A restored chain continues the CPI stream exactly where the saved
  /// one stopped; parameters and steering must match.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

  const StapParams& params() const { return p_; }

 private:
  StapParams p_;
  DopplerFilter doppler_;
  // Per transmit position: independent training state (paper §3 trains on
  // "past looks at the same azimuth").
  std::vector<EasyWeightComputer> easy_computers_;
  std::vector<HardWeightComputer> hard_computers_;
  PulseCompressor compressor_;
  std::vector<index_t> easy_bins_;
  std::vector<index_t> hard_bins_;
  std::vector<index_t> easy_cells_;
  std::vector<std::vector<index_t>> hard_cells_;  // per segment
  index_t cpi_counter_ = 0;

  std::vector<WeightSet> easy_w_;  // per position, applied to its next CPI
  std::vector<WeightSet> hard_w_;

  cube::CpiCube last_staggered_;
  cube::CpiCube last_easy_bf_;
  cube::CpiCube last_hard_bf_;
  cube::RealCube last_power_;
};

}  // namespace ppstap::stap
