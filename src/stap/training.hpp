// Training sample selection for the adaptive weight computations.
//
// Easy Doppler bins draw their sample support from the entire range extent
// (a fixed set of evenly spaced cells), pooled over the preceding
// `easy_history` CPIs. Hard bins draw evenly spaced cells from within each
// of the six range segments of the immediately preceding CPI, and rely on
// the recursive exponentially-forgotten QR for history (paper §5.2).
//
// The cell lists are a pure function of StapParams, so the Doppler task
// (which owns a range slab) and the weight tasks (which need the samples)
// agree on exactly which rows travel in the inter-task messages — the
// "data collection" of paper Fig. 6(b).
#pragma once

#include <span>
#include <vector>

#include "cube/cube.hpp"
#include "linalg/matrix.hpp"
#include "stap/params.hpp"

namespace ppstap::stap {

/// Global range cells used for easy-bin training (sorted ascending).
std::vector<index_t> easy_training_cells(const StapParams& p);

/// Global range cells used for hard-bin training inside segment `s`
/// (sorted ascending, all within [segment_begin(s), segment_end(s))).
std::vector<index_t> hard_training_cells(const StapParams& p, index_t s);

/// Gather the training matrix rows for Doppler bin `bin` from a staggered
/// cube slab (extents K_local x 2J x N). `cells` holds *global* range cells;
/// only those inside [k_offset, k_offset + K_local) contribute, in order.
/// Columns: J (channels to J) when `staggered_pair` is false — easy bins use
/// the single Doppler spectrum — or 2J when true (hard bins).
/// Rows are appended to `out`.
void gather_training_rows(const cube::CpiCube& staggered, index_t k_offset,
                          std::span<const index_t> cells, index_t bin,
                          bool staggered_pair, const StapParams& p,
                          linalg::MatrixCF& out, index_t row_offset);

/// Convenience: full training matrix (all cells in one slab starting at
/// k_offset = 0, i.e. the sequential pipeline case).
linalg::MatrixCF gather_training(const cube::CpiCube& staggered,
                                 std::span<const index_t> cells, index_t bin,
                                 bool staggered_pair, const StapParams& p);

}  // namespace ppstap::stap
