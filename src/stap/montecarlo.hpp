// Monte-Carlo detection performance of the full STAP chain.
//
// The paper validates its system on live data; a synthetic reproduction
// can do better and measure what live data cannot: probability of
// detection versus target SNR with known ground truth, and the realized
// false-alarm rate of the end-to-end chain (Doppler filtering through
// CFAR) against the design PFA. Each trial runs an independent clutter
// realization, adapts the weights over a training prefix of CPIs, and
// scores the final CPI.
#pragma once

#include <vector>

#include "stap/params.hpp"
#include "synth/scenario.hpp"

namespace ppstap::stap {

struct DetectionStudyConfig {
  StapParams params;
  synth::ScenarioParams scene;  ///< targets are overwritten per trial
  index_t target_range = 0;
  index_t target_bin = 0;       ///< must map exactly to a Doppler bin
  double target_azimuth = 0.0;
  index_t train_cpis = 3;       ///< adaptation prefix before the scored CPI
  index_t trials = 10;          ///< independent clutter realizations
  index_t range_tolerance = 1;  ///< detection counted within +- cells
};

struct DetectionPoint {
  double snr_db = 0.0;
  double pd = 0.0;           ///< detection probability at the target cell
  double mean_margin = 0.0;  ///< mean power/threshold over the hits
};

/// Probability of detection at each SNR (one full chain run per trial).
std::vector<DetectionPoint> detection_curve(const DetectionStudyConfig& cfg,
                                            std::span<const double> snrs_db);

/// Realized false alarm rate on target-free scenes: detections per
/// (bin, beam, range) cell on the scored CPIs. Comparable to
/// params.cfar_pfa when clutter is fully cancelled; residual clutter
/// raises it — itself a useful figure of merit.
double measured_false_alarm_rate(const DetectionStudyConfig& cfg);

}  // namespace ppstap::stap
