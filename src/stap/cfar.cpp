#include "stap/cfar.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/flops.hpp"
#include "common/parallel.hpp"
#include "kernels/dispatch.hpp"

namespace ppstap::stap {

std::vector<Detection> cfar_detect(const cube::RealCube& power,
                                   std::span<const index_t> bins,
                                   const StapParams& p) {
  const index_t nbins = power.extent(0);
  const index_t m = power.extent(1);
  const index_t k = power.extent(2);
  PPSTAP_REQUIRE(static_cast<index_t>(bins.size()) == nbins,
                 "bin list must match the cube's leading extent");

  // Precompute the multiplier for every possible reference-cell count.
  std::vector<double> scale(static_cast<size_t>(2 * p.cfar_ref) + 1, 0.0);
  for (index_t w = 1; w <= 2 * p.cfar_ref; ++w)
    scale[static_cast<size_t>(w)] = p.cfar_scale(w);

  // Rows (bin, beam) are independent; per-row buffers keep the final
  // detection order deterministic under intra-task threading.
  std::vector<std::vector<Detection>> per_row(
      static_cast<size_t>(nbins * m));
  parallel_for_blocks(kernels::kernel_threads(p.intra_task_threads),
                      nbins * m, [&](index_t row_begin, index_t row_end) {
  std::vector<double> prefix(static_cast<size_t>(k) + 1);
  for (index_t row = row_begin; row < row_end; ++row) {
    {
      const index_t b = row / m;
      const index_t mm = row % m;
      auto& detections = per_row[static_cast<size_t>(row)];
      const auto line = power.line(b, mm);
      prefix[0] = 0.0;
      for (index_t kk = 0; kk < k; ++kk)
        prefix[static_cast<size_t>(kk) + 1] =
            prefix[static_cast<size_t>(kk)] +
            static_cast<double>(line[static_cast<size_t>(kk)]);

      for (index_t kk = 0; kk < k; ++kk) {
        // Leading reference window [kk - guard - ref, kk - guard).
        const index_t l_lo = std::max<index_t>(0, kk - p.cfar_guard -
                                                      p.cfar_ref);
        const index_t l_hi = std::max<index_t>(0, kk - p.cfar_guard);
        // Trailing reference window (kk + guard, kk + guard + ref].
        const index_t r_lo = std::min(k, kk + p.cfar_guard + 1);
        const index_t r_hi = std::min(k, kk + p.cfar_guard + p.cfar_ref + 1);
        const index_t count = (l_hi - l_lo) + (r_hi - r_lo);
        if (count == 0) continue;

        const double sum = (prefix[static_cast<size_t>(l_hi)] -
                            prefix[static_cast<size_t>(l_lo)]) +
                           (prefix[static_cast<size_t>(r_hi)] -
                            prefix[static_cast<size_t>(r_lo)]);
        const double threshold =
            scale[static_cast<size_t>(count)] * sum /
            static_cast<double>(count);
        const double value =
            static_cast<double>(line[static_cast<size_t>(kk)]);
        if (value > threshold) {
          detections.push_back(Detection{bins[static_cast<size_t>(b)], mm, kk,
                                         static_cast<float>(value),
                                         static_cast<float>(threshold)});
        }
      }
      // Prefix sum (K adds) + per-cell window arithmetic (~4 ops).
      count_flops(5ull * static_cast<std::uint64_t>(k));
    }
  }
  });

  std::vector<Detection> detections;
  for (const auto& row : per_row)
    detections.insert(detections.end(), row.begin(), row.end());
  return detections;
}

bool verify_detections(std::span<const Detection> dets,
                       const cube::RealCube& power,
                       std::span<const index_t> bins, const StapParams& p) {
  const index_t m = power.extent(1);
  const index_t k = power.extent(2);
  long long prev_key = -1;
  for (const Detection& d : dets) {
    const auto it = std::find(bins.begin(), bins.end(), d.doppler_bin);
    if (it == bins.end()) return false;
    const index_t row = static_cast<index_t>(it - bins.begin());
    if (d.beam < 0 || d.beam >= m || d.range < 0 || d.range >= k)
      return false;
    if (!std::isfinite(d.power) || !std::isfinite(d.threshold)) return false;
    if (d.threshold < 0.0f || d.power < d.threshold) return false;
    // The detector copies the cell power verbatim (one double->float
    // rounding both sides share), so any flip in the report buffer breaks
    // bitwise equality with the cube.
    if (d.power != power.at(row, d.beam, d.range)) return false;
    const long long key =
        (static_cast<long long>(row) * m + d.beam) * k + d.range;
    if (key <= prev_key) return false;
    prev_key = key;
  }
  (void)p;
  return true;
}

}  // namespace ppstap::stap
