#include "stap/training.hpp"

#include "common/check.hpp"

namespace ppstap::stap {

std::vector<index_t> easy_training_cells(const StapParams& p) {
  std::vector<index_t> cells;
  cells.reserve(static_cast<size_t>(p.easy_samples_per_cpi));
  // Evenly spaced across the whole range extent: the paper notes "the entire
  // range extent was available for sample support" in the easy regions.
  for (index_t i = 0; i < p.easy_samples_per_cpi; ++i)
    cells.push_back(i * p.num_range / p.easy_samples_per_cpi);
  return cells;
}

std::vector<index_t> hard_training_cells(const StapParams& p, index_t s) {
  const index_t lo = p.segment_begin(s);
  const index_t hi = p.segment_end(s);
  const index_t len = hi - lo;
  std::vector<index_t> cells;
  cells.reserve(static_cast<size_t>(p.hard_samples_per_segment));
  for (index_t i = 0; i < p.hard_samples_per_segment; ++i)
    cells.push_back(lo + i * len / p.hard_samples_per_segment);
  return cells;
}

void gather_training_rows(const cube::CpiCube& staggered, index_t k_offset,
                          std::span<const index_t> cells, index_t bin,
                          bool staggered_pair, const StapParams& p,
                          linalg::MatrixCF& out, index_t row_offset) {
  const index_t ncols = staggered_pair ? p.num_staggered_channels()
                                       : p.num_channels;
  PPSTAP_REQUIRE(out.cols() == ncols, "training matrix column mismatch");
  PPSTAP_REQUIRE(staggered.extent(1) == p.num_staggered_channels(),
                 "expected a staggered (2J-channel) cube");
  index_t row = row_offset;
  const index_t k_end = k_offset + staggered.extent(0);
  for (index_t cell : cells) {
    if (cell < k_offset || cell >= k_end) continue;
    PPSTAP_REQUIRE(row < out.rows(), "training matrix row overflow");
    const index_t k_local = cell - k_offset;
    for (index_t j = 0; j < ncols; ++j)
      out(row, j) = staggered.at(k_local, j, bin);
    ++row;
  }
}

linalg::MatrixCF gather_training(const cube::CpiCube& staggered,
                                 std::span<const index_t> cells, index_t bin,
                                 bool staggered_pair, const StapParams& p) {
  const index_t ncols = staggered_pair ? p.num_staggered_channels()
                                       : p.num_channels;
  linalg::MatrixCF out(static_cast<index_t>(cells.size()), ncols);
  gather_training_rows(staggered, 0, cells, bin, staggered_pair, p, out, 0);
  return out;
}

}  // namespace ppstap::stap
