#include "stap/beamform.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/flops.hpp"
#include "common/parallel.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/kernels.hpp"

namespace ppstap::stap {

cube::CpiCube easy_beamform(const cube::CpiCube& data, const WeightSet& w,
                            const StapParams& p, index_t active_beams) {
  const index_t nbins = data.extent(0);
  const index_t k = data.extent(1);
  PPSTAP_REQUIRE(data.extent(2) == p.num_channels,
                 "easy beamforming expects J channels");
  PPSTAP_REQUIRE(static_cast<index_t>(w.bins.size()) == nbins &&
                     static_cast<index_t>(w.weights.size()) == nbins,
                 "one J x M weight matrix per bin expected");
  if (active_beams < 0) active_beams = p.num_beams;
  PPSTAP_REQUIRE(active_beams >= 1 && active_beams <= p.num_beams,
                 "active beam count must be in [1, M]");

  cube::CpiCube out(nbins, p.num_beams, k);
  for (index_t b = 0; b < nbins; ++b)
    PPSTAP_REQUIRE(w.weights[static_cast<size_t>(b)].rows() ==
                           p.num_channels &&
                       w.weights[static_cast<size_t>(b)].cols() ==
                           p.num_beams,
                   "easy weight matrix must be J x M");
  // For one bin, data(b, :, :) is a K x J row-major slab and out(b, :, :) is
  // an M x K row-major slab — exactly the panel GEMM out = W^H X^T.
  parallel_for_blocks(
      kernels::kernel_threads(p.intra_task_threads), nbins,
      [&](index_t b_begin, index_t b_end) {
        for (index_t b = b_begin; b < b_end; ++b) {
          const auto& wb = w.weights[static_cast<size_t>(b)];
          kernels::beamform_gemm(wb.data(), wb.cols(), p.num_channels,
                                 active_beams, &data.at(b, 0, 0),
                                 p.num_channels, k, &out.at(b, 0, 0), k);
        }
      });
  count_flops(8ull * static_cast<std::uint64_t>(nbins) *
              static_cast<std::uint64_t>(k) *
              static_cast<std::uint64_t>(active_beams) *
              static_cast<std::uint64_t>(p.num_channels));
  return out;
}

cube::CpiCube hard_beamform(const cube::CpiCube& data, const WeightSet& w,
                            const StapParams& p, index_t active_beams) {
  const index_t nbins = data.extent(0);
  const index_t k = data.extent(1);
  const index_t jj = p.num_staggered_channels();
  PPSTAP_REQUIRE(data.extent(2) == jj,
                 "hard beamforming expects 2J channels");
  PPSTAP_REQUIRE(static_cast<index_t>(w.bins.size()) == nbins,
                 "weight bins must match data bins");
  PPSTAP_REQUIRE(static_cast<index_t>(w.weights.size()) ==
                     nbins * p.num_segments,
                 "num_segments weight matrices per hard bin expected");
  PPSTAP_REQUIRE(k == p.num_range,
                 "hard beamforming needs the full range extent (segments)");
  if (active_beams < 0) active_beams = p.num_beams;
  PPSTAP_REQUIRE(active_beams >= 1 && active_beams <= p.num_beams,
                 "active beam count must be in [1, M]");

  cube::CpiCube out(nbins, p.num_beams, k);
  for (size_t i = 0; i < w.weights.size(); ++i)
    PPSTAP_REQUIRE(w.weights[i].rows() == jj &&
                       w.weights[i].cols() == p.num_beams,
                   "hard weight matrix must be 2J x M");
  parallel_for_blocks(
      kernels::kernel_threads(p.intra_task_threads), nbins,
      [&](index_t b_begin, index_t b_end) {
        for (index_t b = b_begin; b < b_end; ++b) {
          for (index_t s = 0; s < p.num_segments; ++s) {
            const auto& wbs =
                w.weights[static_cast<size_t>(b * p.num_segments + s)];
            const index_t lo = p.segment_begin(s);
            const index_t hi = p.segment_end(s);
            // Each segment is a contiguous range sub-slab; the output rows
            // keep the full-range leading dimension k.
            kernels::beamform_gemm(wbs.data(), wbs.cols(), jj, active_beams,
                                   &data.at(b, lo, 0), jj, hi - lo,
                                   &out.at(b, 0, lo), k);
          }
        }
      });
  count_flops(8ull * static_cast<std::uint64_t>(nbins) *
              static_cast<std::uint64_t>(k) *
              static_cast<std::uint64_t>(active_beams) *
              static_cast<std::uint64_t>(jj));
  return out;
}

namespace {

/// Pre-conjugated column sums conj(c_j), c_j = sum_{m < active} w(j, m), of
/// one weight matrix, accumulated in double — the Huang–Abraham checksum
/// column, ready for the per-cell dot product.
std::vector<cdouble> conj_column_sums(const linalg::MatrixCF& w,
                                      index_t active_beams) {
  std::vector<cdouble> c(static_cast<size_t>(w.rows()));
  for (index_t j = 0; j < w.rows(); ++j) {
    cdouble acc{};
    for (index_t m = 0; m < active_beams; ++m)
      acc += static_cast<cdouble>(w(j, m));
    c[static_cast<size_t>(j)] = std::conj(acc);
  }
  return c;
}

/// Verifies one cell: sum of the active beam outputs against the checksum
/// dot conj(c)^T x. `tol` is relative to the accumulated term magnitudes
/// (1-norm — no square roots on the verification path) so the bound scales
/// with the cell's dynamic range.
bool cell_checks(const std::vector<cdouble>& csum,
                 std::span<const cfloat> line, const cube::CpiCube& out,
                 index_t b, index_t k, index_t active_beams, double tol) {
  double lr = 0.0, li = 0.0, mag = 0.0;
  for (index_t m = 0; m < active_beams; ++m) {
    const cfloat v = out.at(b, m, k);
    const double re = v.real(), im = v.imag();
    lr += re;
    li += im;
    mag += std::abs(re) + std::abs(im);
  }
  double rr = 0.0, ri = 0.0;
  for (size_t j = 0; j < csum.size(); ++j) {
    const double cr = csum[j].real(), ci = csum[j].imag();
    const double xr = line[j].real(), xi = line[j].imag();
    const double tr = cr * xr - ci * xi;
    const double ti = cr * xi + ci * xr;
    rr += tr;
    ri += ti;
    mag += std::abs(tr) + std::abs(ti);
  }
  if (!std::isfinite(lr) || !std::isfinite(li)) return false;
  return std::abs(lr - rr) + std::abs(li - ri) <= tol * std::max(mag, 1e-30);
}

}  // namespace

bool easy_beamform_check(const cube::CpiCube& data, const WeightSet& w,
                         const StapParams& p, const cube::CpiCube& out,
                         index_t active_beams, double tol) {
  const index_t nbins = data.extent(0);
  const index_t k = data.extent(1);
  if (active_beams < 0) active_beams = p.num_beams;
  const index_t ab = active_beams;
  std::atomic<bool> ok{true};
  parallel_for_blocks(
      kernels::kernel_threads(p.intra_task_threads), nbins,
      [&](index_t b_begin, index_t b_end) {
        for (index_t b = b_begin; b < b_end; ++b) {
          const auto csum =
              conj_column_sums(w.weights[static_cast<size_t>(b)], ab);
          for (index_t kk = 0; kk < k; ++kk)
            if (!cell_checks(csum, data.line(b, kk), out, b, kk, ab, tol)) {
              ok.store(false, std::memory_order_relaxed);
              return;
            }
        }
      });
  return ok.load(std::memory_order_relaxed);
}

bool hard_beamform_check(const cube::CpiCube& data, const WeightSet& w,
                         const StapParams& p, const cube::CpiCube& out,
                         index_t active_beams, double tol) {
  const index_t nbins = data.extent(0);
  if (active_beams < 0) active_beams = p.num_beams;
  const index_t ab = active_beams;
  std::atomic<bool> ok{true};
  parallel_for_blocks(
      kernels::kernel_threads(p.intra_task_threads), nbins,
      [&](index_t b_begin, index_t b_end) {
        for (index_t b = b_begin; b < b_end; ++b) {
          for (index_t s = 0; s < p.num_segments; ++s) {
            const auto csum = conj_column_sums(
                w.weights[static_cast<size_t>(b * p.num_segments + s)], ab);
            for (index_t kk = p.segment_begin(s); kk < p.segment_end(s);
                 ++kk)
              if (!cell_checks(csum, data.line(b, kk), out, b, kk, ab,
                               tol)) {
                ok.store(false, std::memory_order_relaxed);
                return;
              }
          }
        }
      });
  return ok.load(std::memory_order_relaxed);
}

}  // namespace ppstap::stap
