// Beamforming (paper §5.3).
//
// Applies the adaptive weights to the Doppler-filtered data: per easy bin a
// single J x M weight matrix across the whole range extent; per hard bin a
// separate 2J x M weight matrix for each of the six range segments.
//
// Inputs arrive in the bin-major layout the parallel pipeline redistributes
// into (paper Fig. 8): a B x K x C cube where B indexes the owned Doppler
// bins, K is range, and C is J (easy — single Doppler spectrum) or 2J (hard
// — both stagger windows). The kernel walks the unit-stride channel line per
// (bin, range), so no further reorganization is needed.
#pragma once

#include "cube/cube.hpp"
#include "stap/params.hpp"
#include "stap/weights.hpp"

namespace ppstap::stap {

/// Easy beamforming: `data` is B x K x J, `w.bins` must match the B rows of
/// `data` with J x M weight matrices. Returns B x M x K.
///
/// `active_beams` (-1 = all) computes only the first `active_beams` receive
/// beams and leaves the rest zero — the overload ladder's reduced-beam rungs
/// shed beamforming work proportionally (flops scale with the active count).
cube::CpiCube easy_beamform(const cube::CpiCube& data, const WeightSet& w,
                            const StapParams& p, index_t active_beams = -1);

/// Hard beamforming: `data` is B x K x 2J; `w` holds num_segments matrices
/// of 2J x M per bin. Weight matrix of segment s applies to range cells
/// [segment_begin(s), segment_end(s)). Returns B x M x K. `active_beams`
/// as in easy_beamform.
cube::CpiCube hard_beamform(const cube::CpiCube& data, const WeightSet& w,
                            const StapParams& p, index_t active_beams = -1);

/// ABFT invariant (PR 5): Huang–Abraham column-checksum verification of the
/// beamforming matmul. For each (bin, range) cell the sum of the active
/// beam outputs must equal the checksum beam — the data line dotted with
/// the per-matrix column-sum weight vector c_j = sum_m w(j, m). One extra
/// J-length dot per cell (~1/M of the kernel's flops) recomputed in double,
/// so `tol` (relative to the term magnitudes) only absorbs float rounding.
/// Returns false on the first deviating or non-finite cell.
bool easy_beamform_check(const cube::CpiCube& data, const WeightSet& w,
                         const StapParams& p, const cube::CpiCube& out,
                         index_t active_beams, double tol);

/// Same invariant for the segmented hard-bin matmul.
bool hard_beamform_check(const cube::CpiCube& data, const WeightSet& w,
                         const StapParams& p, const cube::CpiCube& out,
                         index_t active_beams, double tol);

}  // namespace ppstap::stap
