// Doppler filter processing (paper §5.1).
//
// For every range cell and channel, two overlapping windows of
// (N - stagger) pulses separated by `stagger` pulses are windowed,
// zero-padded to N, and FFT'd — the PRI-stagger technique. The output is
// the "staggered CPI": a K x 2J x N cube in which channels [0, J) carry the
// first window's Doppler spectra and channels [J, 2J) the second window's.
//
// The function operates on any range slab (the task is embarrassingly
// parallel along K, Fig. 5), so the sequential pipeline and each parallel
// Doppler node share the same kernel.
#pragma once

#include <memory>

#include "cube/cube.hpp"
#include "stap/params.hpp"

namespace ppstap::stap {

/// Doppler filtering state reusable across CPIs (FFT plan + window).
class DopplerFilter {
 public:
  explicit DopplerFilter(const StapParams& p);

  /// Filter a raw slab (K_local x J x N, pulses unit stride) into a
  /// staggered slab (K_local x 2J x N, Doppler bins unit stride).
  /// `k_offset` is the slab's first global range cell — needed only when
  /// range correction is enabled, whose gain depends on absolute range.
  cube::CpiCube filter(const cube::CpiCube& raw, index_t k_offset = 0) const;

  /// The range-correction amplitude gain applied to global range cell `k`
  /// (1.0 when correction is disabled).
  float range_gain(index_t k) const;

 private:
  StapParams p_;
  std::vector<float> window_;
  struct PlanHolder;  // hides dsp::FftPlan to keep this header light
  std::shared_ptr<const PlanHolder> plan_;
};

}  // namespace ppstap::stap
