// Doppler filter processing (paper §5.1).
//
// For every range cell and channel, two overlapping windows of
// (N - stagger) pulses separated by `stagger` pulses are windowed,
// zero-padded to N, and FFT'd — the PRI-stagger technique. The output is
// the "staggered CPI": a K x 2J x N cube in which channels [0, J) carry the
// first window's Doppler spectra and channels [J, 2J) the second window's.
//
// The function operates on any range slab (the task is embarrassingly
// parallel along K, Fig. 5), so the sequential pipeline and each parallel
// Doppler node share the same kernel.
#pragma once

#include <memory>

#include "cube/cube.hpp"
#include "stap/params.hpp"

namespace ppstap::stap {

/// Doppler filtering state reusable across CPIs (FFT plan + window).
class DopplerFilter {
 public:
  explicit DopplerFilter(const StapParams& p);

  /// Filter a raw slab (K_local x J x N, pulses unit stride) into a
  /// staggered slab (K_local x 2J x N, Doppler bins unit stride).
  /// `k_offset` is the slab's first global range cell — needed only when
  /// range correction is enabled, whose gain depends on absolute range.
  cube::CpiCube filter(const cube::CpiCube& raw, index_t k_offset = 0) const;

  /// The range-correction amplitude gain applied to global range cell `k`
  /// (1.0 when correction is disabled).
  float range_gain(index_t k) const;

  /// ABFT invariant (PR 5): Parseval's theorem per FFT line. For every
  /// (range cell, channel, stagger window), the Doppler-domain energy
  /// sum |X[n]|^2 must equal N * sum |window * gain * x[i]|^2 (forward
  /// transforms are unscaled). Both sides accumulate in double, so `tol`
  /// (relative) only has to absorb the kernel's float rounding. Returns
  /// false as soon as any line deviates or holds a non-finite value.
  bool parseval_check(const cube::CpiCube& raw, const cube::CpiCube& stag,
                      index_t k_offset, double tol) const;

 private:
  StapParams p_;
  std::vector<float> window_;
  struct PlanHolder;  // hides dsp::FftPlan to keep this header light
  std::shared_ptr<const PlanHolder> plan_;
};

}  // namespace ppstap::stap
