// Adaptive weight computation (paper §5.2, Appendix A/B).
//
// Both weight tasks solve the mainbeam-constrained least squares problem of
// Appendix A: minimize the clutter response ||X w|| while keeping w close to
// the steering vector via constraint rows (avg * k) * I with right-hand side
// w_s. Because the steering vector appears only on the right-hand side, one
// QR factorization serves all M receive beams.
//
//  * Easy bins: sample support is pooled from the preceding `easy_history`
//    CPIs (fresh QR each CPI — the "regular (non-recursive)" path).
//  * Hard bins: per (bin, range segment), an upper-triangular R is carried
//    across CPIs and updated with the block row-append QR under an
//    exponential forgetting factor — the paper's recursive weight update,
//    which substitutes temporal history for the scarce range support.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <vector>

#include "linalg/matrix.hpp"
#include "stap/params.hpp"

namespace ppstap::stap {

/// Numerical-health counters for one weight computer: every guard firing
/// is accounted here so a degraded solve is ledgered, never silent.
///
///  * nonfinite_training_blocks — incoming CPI training blocks containing
///    NaN/Inf, screened out before they can enter the pooled history or
///    poison the recursive forgetting-factor R update.
///  * loading_retries — solves whose R-diagonal condition estimate exceeded
///    StapParams::condition_threshold and were retried exactly once with
///    diagonal loading appended at data scale.
///  * quiescent_fallbacks — weight matrices that still came out non-finite
///    (or identically zero) after the retry and were replaced column-wise
///    by the quiescent (normalized steering) beamformer.
///  * qr_residual_retries — factorizations whose ABFT column-norm residual
///    exceeded StapParams::abft_tolerance and were re-run once (fresh QR:
///    through the diagonal-loading path; recursive append: recomputed).
///  * qr_residual_rejects — recursive append updates that failed the
///    residual gate twice and were discarded so the corruption never
///    entered the carried R.
struct WeightHealth {
  std::uint64_t nonfinite_training_blocks = 0;
  std::uint64_t loading_retries = 0;
  std::uint64_t quiescent_fallbacks = 0;
  std::uint64_t qr_residual_retries = 0;
  std::uint64_t qr_residual_rejects = 0;

  WeightHealth& operator+=(const WeightHealth& o) {
    nonfinite_training_blocks += o.nonfinite_training_blocks;
    loading_retries += o.loading_retries;
    quiescent_fallbacks += o.quiescent_fallbacks;
    qr_residual_retries += o.qr_residual_retries;
    qr_residual_rejects += o.qr_residual_rejects;
    return *this;
  }
  bool clean() const {
    return nonfinite_training_blocks == 0 && loading_retries == 0 &&
           quiescent_fallbacks == 0 && qr_residual_retries == 0 &&
           qr_residual_rejects == 0;
  }
};

/// A set of weight matrices attached to (a subset of) Doppler bins.
/// For easy bins: one J x M matrix per bin. For hard bins: num_segments
/// matrices of 2J x M per bin, flattened as weights[bin_idx * num_segments
/// + segment].
struct WeightSet {
  std::vector<index_t> bins;              ///< global bin ids, ascending
  std::vector<linalg::MatrixCF> weights;  ///< see flattening rule above
};

/// Easy-bin weight computer. Owns the training history for a subset of easy
/// bins (a parallel weight node owns a contiguous slice of easy_bins()).
class EasyWeightComputer {
 public:
  /// `steering` is J x M; `bins` are the owned global easy-bin ids.
  EasyWeightComputer(const StapParams& p, linalg::MatrixCF steering,
                     std::vector<index_t> bins);

  const std::vector<index_t>& bins() const { return bins_; }

  /// Append this CPI's training rows: one (samples x J) matrix per owned
  /// bin, rows ordered by global range cell. History older than
  /// easy_history CPIs is dropped.
  void push_training(std::vector<linalg::MatrixCF> per_bin_rows);

  /// Solve for the weights of every owned bin from the accumulated history.
  /// Until the first push, returns quiescent (normalized steering) weights.
  WeightSet compute() const;

  /// Checkpoint / restore the training history (the computer's only
  /// mutable state) — the functional counterpart of the re-allocation
  /// state migration the machine model prices. The restoring computer must
  /// own the same bins under the same parameters.
  void save(std::ostream& os) const;
  void restore(std::istream& is);

  /// Guard-firing counters (screened blocks, loading retries, quiescent
  /// fallbacks) accumulated over this computer's lifetime.
  const WeightHealth& health() const { return health_; }

 private:
  StapParams p_;
  linalg::MatrixCF steering_;  // J x M
  std::vector<index_t> bins_;
  std::deque<std::vector<linalg::MatrixCF>> history_;  // newest at back
  mutable WeightHealth health_;
};

/// One independent hard weight problem: a (Doppler bin, range segment)
/// pair. The paper's hard weight task has num_hard * num_segments such
/// units (6 N_hard recursive QR updates per CPI) and parallelizes over
/// them — its 112-node case exceeds the 56 hard bins.
struct HardUnit {
  index_t bin = 0;
  index_t segment = 0;
};

/// Hard-bin recursive weight computer for a set of (bin, segment) units.
class HardWeightComputer {
 public:
  HardWeightComputer(const StapParams& p, linalg::MatrixCF steering,
                     std::vector<HardUnit> units);

  const std::vector<HardUnit>& units() const { return units_; }

  /// Recursive update: one (samples x 2J) matrix of new training rows per
  /// owned unit, in units() order. R <- qr_append_rows(forgetting * R, X).
  void update(const std::vector<linalg::MatrixCF>& per_unit_rows);

  /// Solve the constrained problem for every owned unit from the current R
  /// state, in units() order (each 2J x M). Valid immediately (R is seeded
  /// with diagonal loading), improving as updates accumulate.
  std::vector<linalg::MatrixCF> compute() const;

  /// Checkpoint / restore the recursive triangular factors.
  void save(std::ostream& os) const;
  void restore(std::istream& is);

  /// Bin-major unit list covering `bins` completely (all segments), the
  /// flattening WeightSet uses.
  static std::vector<HardUnit> units_for_bins(const StapParams& p,
                                              std::span<const index_t> bins);

  /// Guard-firing counters accumulated over this computer's lifetime.
  const WeightHealth& health() const { return health_; }

 private:
  StapParams p_;
  linalg::MatrixCF steering_;          // J x M
  std::vector<HardUnit> units_;
  std::vector<linalg::MatrixCF> r_;    // per unit: 2J x 2J upper
  mutable WeightHealth health_;
};

/// Normalize every column of `w` to unit 2-norm (the paper normalizes the
/// weight vector because the constraint scale k is operating-point
/// dependent). Columns with zero norm are left unchanged.
void normalize_columns(linalg::MatrixCF& w);

/// The *conventional* least squares beamformer of Appendix A Fig. 12 — the
/// approach the paper's constrained formulation replaces. The steering
/// vector enters as one more data row with unit desired response:
/// min || [X; ws^H] w - [0...0 1] ||. High clutter rejection, but the
/// adapted main beam may be "highly distorted ... with a peak response far
/// removed from the target" — the failure mode the mainbeam constraint
/// fixes (compare in bench/ext_constraint_ablation). Column `m` of the
/// result solves against steering column m; columns are unit-normalized.
linalg::MatrixCF conventional_ls_weights(const linalg::MatrixCF& training,
                                         const linalg::MatrixCF& steering);

}  // namespace ppstap::stap
