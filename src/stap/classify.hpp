// Doppler-bin classification (paper §3).
//
// "This simplifies indexing of Doppler bins for classification as 'easy'
// or 'hard' depending on their proximity to mainbeam clutter." The paper's
// parameter set fixes N_hard = 56 a priori; these utilities derive the
// split from measured data instead: the per-bin clutter power profile of a
// staggered CPI, and the smallest symmetric hard region that covers every
// bin exceeding the noise floor by a margin. Because the analog front end
// centers mainbeam clutter at zero Doppler regardless of the transmit
// position (§3), a symmetric-about-DC region is the right shape.
#pragma once

#include <vector>

#include "cube/cube.hpp"
#include "stap/params.hpp"

namespace ppstap::stap {

/// Mean power per Doppler bin of a staggered (K x 2J x N) cube, averaged
/// over range cells and the first J channels (the unstaggered spectra).
std::vector<double> clutter_doppler_profile(const cube::CpiCube& staggered,
                                            const StapParams& p);

/// Estimate of the noise floor of a profile: the median bin power (valid
/// while clutter occupies fewer than half the bins).
double profile_noise_floor(std::span<const double> profile);

/// Smallest even num_hard such that every bin whose power exceeds
/// floor * 10^(margin_db/10) lies inside the symmetric hard region
/// {0..h/2-1} U {N-h/2..N-1}. Returns 0 when no bin exceeds the margin
/// and is capped at N-2 (at least two easy bins must remain).
index_t suggest_num_hard(std::span<const double> profile, double margin_db);

}  // namespace ppstap::stap
