#include "stap/classify.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "linalg/matrix.hpp"

namespace ppstap::stap {

std::vector<double> clutter_doppler_profile(const cube::CpiCube& staggered,
                                            const StapParams& p) {
  PPSTAP_REQUIRE(staggered.extent(1) == p.num_staggered_channels() &&
                     staggered.extent(2) == p.num_pulses,
                 "expected a staggered K x 2J x N cube");
  const index_t k = staggered.extent(0);
  std::vector<double> profile(static_cast<size_t>(p.num_pulses), 0.0);
  for (index_t kk = 0; kk < k; ++kk)
    for (index_t ch = 0; ch < p.num_channels; ++ch) {
      const auto line = staggered.line(kk, ch);
      for (index_t b = 0; b < p.num_pulses; ++b)
        profile[static_cast<size_t>(b)] +=
            linalg::abs_sq(line[static_cast<size_t>(b)]);
    }
  const double norm = 1.0 / static_cast<double>(k * p.num_channels);
  for (auto& v : profile) v *= norm;
  return profile;
}

double profile_noise_floor(std::span<const double> profile) {
  PPSTAP_REQUIRE(!profile.empty(), "empty profile");
  std::vector<double> sorted(profile.begin(), profile.end());
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  return sorted[sorted.size() / 2];
}

index_t suggest_num_hard(std::span<const double> profile, double margin_db) {
  const auto n = static_cast<index_t>(profile.size());
  PPSTAP_REQUIRE(n >= 4, "profile too short to classify");
  const double threshold =
      profile_noise_floor(profile) * std::pow(10.0, margin_db / 10.0);

  // Distance of bin b from DC in the circular Doppler space.
  index_t max_dist = 0;
  bool any = false;
  for (index_t b = 0; b < n; ++b) {
    if (profile[static_cast<size_t>(b)] <= threshold) continue;
    any = true;
    const index_t dist = std::min(b, n - b);
    max_dist = std::max(max_dist, dist);
  }
  if (!any) return 0;
  // Bins {0..max_dist} and {n-max_dist..n-1} must be hard:
  // num_hard/2 = max_dist + 1.
  const index_t num_hard = 2 * (max_dist + 1);
  return std::min(num_hard, n - 2);
}

}  // namespace ppstap::stap
