// Metrics primitives for the observability layer: counters, gauges, and
// fixed-bucket histograms with quantile extraction.
//
// The pipeline's original instrumentation flattened everything into means
// (TaskTiming averages over ranks and CPIs). These types keep enough shape
// to answer the questions the paper's evaluation asks — tail latency
// (p50/p95/p99 per CPI), per-link communication volume, per-task queue
// wait — while staying cheap enough to update from the Figure-10 hot loop:
// every update is a relaxed atomic, so concurrent ranks never serialize on
// a metrics lock.
//
// Histograms use fixed bucket bounds chosen at construction (exponential
// bounds are provided for latency-like quantities). Quantiles are
// extracted by linear interpolation inside the target bucket and clamped
// to the observed min/max, so a quantile is always within one bucket of
// the exact order statistic.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace ppstap::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins floating point metric.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations in
/// (bounds[i-1], bounds[i]]; a final overflow bucket catches values above
/// the last bound. Thread-safe for concurrent observe().
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Strictly increasing bounds from `lo` to at least `hi`, multiplying by
  /// `growth` per bucket (growth > 1). The standard latency bucketing.
  static std::vector<double> exponential_bounds(double lo, double hi,
                                                double growth = 1.5);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty

  /// Quantile estimate for q in [0, 1]; 0 when empty. Linear interpolation
  /// inside the selected bucket, clamped to observed min/max.
  double quantile(double q) const;

  /// Index of the bucket `v` falls into (0 .. bounds.size(), the last being
  /// the overflow bucket) — used by tests asserting +-1-bucket agreement.
  std::size_t bucket_index(double v) const;

  struct Snapshot {
    std::vector<double> bounds;         ///< upper bounds, ascending
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  Snapshot snapshot() const;

  Json to_json() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_bits_;
  std::atomic<double> max_bits_;
};

/// Named metric registry. Lookup/creation takes a mutex; the returned
/// references are stable for the registry's lifetime, so hot paths resolve
/// a metric once and update it lock-free afterwards.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is used only when `name` is first created.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}
  Json to_json() const;

  void clear();

  /// Process-wide registry (pipeline runs publish their metrics here).
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ppstap::obs
