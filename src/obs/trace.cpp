#include "obs/trace.hpp"

#if PPSTAP_ENABLE_TRACING

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "common/check.hpp"
#include "common/env.hpp"
#include "kernels/dispatch.hpp"
#include "common/timer.hpp"

namespace ppstap::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

// Fixed-capacity ring written only by its owning thread. `written` counts
// all emits (monotonic); the slot for emit n is n % capacity. The release
// store on `written` publishes the slot contents to a post-join reader.
struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity) : spans(capacity) {}
  std::vector<Span> spans;
  std::atomic<std::uint64_t> written{0};
};

struct Recorder {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::map<int, std::string> track_names;
  Config config;
  // Bumped by reset(); threads holding a buffer from an older epoch
  // re-register, so stale thread_local pointers never dangle.
  std::atomic<std::uint64_t> epoch{1};
};

Recorder& recorder() {
  static Recorder* r = new Recorder;  // leaked: emit may run during exit
  return *r;
}

thread_local ThreadBuffer* tl_buffer = nullptr;
thread_local std::uint64_t tl_epoch = 0;

void atexit_export() {
  if (tracing_enabled() && span_count() > 0)
    write_chrome_trace(recorder().config.path);
}

// Runs configure_from_env() before main() so PPSTAP_TRACE=1 works for any
// binary without code changes.
struct EnvInit {
  EnvInit() { configure_from_env(); }
} env_init;

}  // namespace

void configure(const Config& config) {
  Recorder& r = recorder();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    r.config = config;
  }
  detail::g_enabled.store(config.enabled, std::memory_order_relaxed);
}

void configure_from_env() {
  // This runs from a static initializer (before main), where a thrown
  // Error would terminate the process — report a bad value and keep
  // tracing off instead.
  bool enabled = false;
  bool flight = false;
  std::optional<long long> capacity;
  try {
    enabled = parse_env_flag("PPSTAP_TRACE").value_or(false);
    flight = parse_env_flag("PPSTAP_FLIGHT_RECORDER").value_or(false);
    capacity = parse_env_int("PPSTAP_TRACE_CAPACITY");
    if (capacity && *capacity <= 0)
      throw Error("PPSTAP_TRACE_CAPACITY must be positive");
  } catch (const ppstap::Error& e) {
    std::fprintf(stderr, "ppstap: %s (tracing stays disabled)\n", e.what());
    return;
  }
  if (!enabled && !flight) return;
  Config c;
  c.enabled = true;
  c.flight_armed = flight;
  // Flight-recorder-only mode keeps a deliberately small always-on ring:
  // enough recent history to explain a fault, cheap enough to leave armed.
  if (flight && !enabled) c.capacity_per_thread = 4096;
  if (capacity) c.capacity_per_thread = static_cast<std::size_t>(*capacity);
  if (const char* path = std::getenv("PPSTAP_TRACE_FILE"))
    if (path[0] != '\0') c.path = path;
  if (const char* path = std::getenv("PPSTAP_FLIGHT_FILE"))
    if (path[0] != '\0') c.flight_path = path;
  configure(c);
  // The atexit full-trace export belongs to PPSTAP_TRACE; flight-recorder
  // mode only writes on explicit fault dumps.
  if (enabled) {
    static bool registered = false;
    if (!registered) {
      registered = true;
      std::atexit(atexit_export);
    }
  }
}

const Config& config() { return recorder().config; }

void emit(const Span& span) {
  if (!tracing_enabled()) return;
  Recorder& r = recorder();
  const std::uint64_t epoch = r.epoch.load(std::memory_order_acquire);
  if (tl_buffer == nullptr || tl_epoch != epoch) {
    std::lock_guard<std::mutex> lock(r.mu);
    r.buffers.push_back(
        std::make_unique<ThreadBuffer>(r.config.capacity_per_thread));
    tl_buffer = r.buffers.back().get();
    tl_epoch = epoch;
  }
  const std::uint64_t n = tl_buffer->written.load(std::memory_order_relaxed);
  tl_buffer->spans[static_cast<size_t>(n % tl_buffer->spans.size())] = span;
  tl_buffer->written.store(n + 1, std::memory_order_release);
}

void set_track_name(int task, const std::string& name) {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  r.track_names[task] = name;
}

std::uint64_t span_count() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t total = 0;
  for (const auto& b : r.buffers) {
    const std::uint64_t written = b->written.load(std::memory_order_acquire);
    total += std::min<std::uint64_t>(written, b->spans.size());
  }
  return total;
}

std::uint64_t dropped_count() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t dropped = 0;
  for (const auto& b : r.buffers) {
    const std::uint64_t written = b->written.load(std::memory_order_acquire);
    if (written > b->spans.size()) dropped += written - b->spans.size();
  }
  return dropped;
}

std::vector<Span> snapshot() {
  Recorder& r = recorder();
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& b : r.buffers) {
      const std::uint64_t written = b->written.load(std::memory_order_acquire);
      const std::uint64_t kept =
          std::min<std::uint64_t>(written, b->spans.size());
      for (std::uint64_t i = written - kept; i < written; ++i)
        out.push_back(b->spans[static_cast<size_t>(i % b->spans.size())]);
    }
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.task != b.task) return a.task < b.task;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.t_start < b.t_start;
  });
  return out;
}

namespace {

// Chrome trace pids must be non-negative; pipeline tasks keep their index,
// the pseudo-tracks get ids above any real task.
int pid_for(int task) { return task >= 0 ? task : 100 - task; }

}  // namespace

Json chrome_trace_json() {
  const std::vector<Span> spans = snapshot();
  std::map<int, std::string> names;
  {
    Recorder& r = recorder();
    std::lock_guard<std::mutex> lock(r.mu);
    names = r.track_names;
  }
  names.emplace(kCommTrack, "comm");
  names.emplace(kSeqTrack, "sequential");
  names.emplace(kFlowTrack, "flow");

  double t0 = 0.0;
  for (const Span& s : spans)
    if (t0 == 0.0 || s.t_start < t0) t0 = s.t_start;

  Json events = Json::array();
  std::map<int, bool> named;
  for (const Span& s : spans) {
    if (!named[s.task]) {
      named[s.task] = true;
      const auto it = names.find(s.task);
      Json meta = Json::object();
      meta["name"] = "process_name";
      meta["ph"] = "M";
      meta["pid"] = pid_for(s.task);
      Json margs = Json::object();
      margs["name"] =
          it != names.end() ? it->second : "task" + std::to_string(s.task);
      meta["args"] = std::move(margs);
      events.push_back(std::move(meta));
    }
    Json e = Json::object();
    e["name"] = s.name;
    e["cat"] = s.category;
    e["ph"] = "X";
    e["ts"] = (s.t_start - t0) * 1e6;          // microseconds
    e["dur"] = (s.t_end - s.t_start) * 1e6;
    e["pid"] = pid_for(s.task);
    e["tid"] = s.rank;
    Json args = Json::object();
    args["rank"] = s.rank;
    if (s.cpi >= 0) args["cpi"] = static_cast<double>(s.cpi);
    if (s.bytes >= 0) args["bytes"] = static_cast<double>(s.bytes);
    if (s.items >= 0) args["items"] = static_cast<double>(s.items);
    if (s.src_rank >= 0) args["src_rank"] = s.src_rank;
    if (s.src_task >= 0) args["src_task"] = s.src_task;
    if (s.edge >= 0) args["edge"] = s.edge;
    if (s.hop >= 0) args["hop"] = s.hop;
    if (s.queue_s > 0.0) args["queue_us"] = s.queue_s * 1e6;
    e["args"] = std::move(args);
    events.push_back(std::move(e));
  }

  Json doc = Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  Json other = Json::object();
  other["generator"] = "ppstap obs";
  other["clock"] = "steady_clock (WallTimer)";
  other["dropped_spans"] = dropped_count();
  // Kernel dispatch provenance: traces from the same binary on different
  // hosts (or PPSTAP_SIMD settings) are not comparable span-for-span.
  const kernels::SimdInfo si = kernels::simd_info();
  other["simd_level"] = si.level_name;
  other["simd_source"] = si.source;
  other["simd_lane_floats"] = static_cast<double>(si.lane_floats);
  doc["otherData"] = std::move(other);
  return doc;
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << chrome_trace_json().dump(1) << "\n";
  return os.good();
}

void flight_dump(const char* reason) {
  std::string path;
  {
    Recorder& r = recorder();
    std::lock_guard<std::mutex> lock(r.mu);
    if (!r.config.flight_armed) return;
    path = r.config.flight_path;
  }
  Json doc = chrome_trace_json();
  doc["otherData"]["flight_reason"] = reason;
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "ppstap: flight dump to %s failed\n", path.c_str());
    return;
  }
  os << doc.dump(1) << "\n";
  std::fprintf(stderr, "ppstap: flight recorder dumped %s (reason: %s)\n",
               path.c_str(), reason);
}

void reset() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  r.buffers.clear();
  r.epoch.fetch_add(1, std::memory_order_acq_rel);
}

ScopedSpan::ScopedSpan(const char* name, const char* category, int rank,
                       int task, std::int64_t cpi)
    : active_(tracing_enabled()) {
  if (!active_) return;
  span_.name = name;
  span_.category = category;
  span_.rank = rank;
  span_.task = task;
  span_.cpi = cpi;
  span_.t_start = WallTimer::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  span_.t_end = WallTimer::now();
  emit(span_);
}

}  // namespace ppstap::obs

#endif  // PPSTAP_ENABLE_TRACING
