#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/check.hpp"

namespace ppstap::obs {

Json& Json::operator[](const std::string& key) {
  if (is_null()) v_ = Object{};
  auto& obj = std::get<Object>(v_);
  for (auto& [k, v] : obj)
    if (k == key) return v;
  obj.emplace_back(key, Json());
  return obj.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_))
    if (k == key) return &v;
  return nullptr;
}

void Json::push_back(Json v) {
  if (is_null()) v_ = Array{};
  std::get<Array>(v_).push_back(std::move(v));
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(v_).size();
  if (is_object()) return std::get<Object>(v_).size();
  return 0;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double d) {
  PPSTAP_CHECK(std::isfinite(d), "JSON cannot represent NaN/Inf");
  // Integers (the common case: counts, ranks, bytes) print without a
  // fraction; everything else round-trips through %.17g.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  // Recursive lambda over the variant.
  auto rec = [&](auto&& self, const Json& j, int depth) -> void {
    const std::string pad =
        indent >= 0 ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                    : std::string();
    const std::string close_pad =
        indent >= 0 ? std::string(static_cast<size_t>(indent * depth), ' ')
                    : std::string();
    const char* nl = indent >= 0 ? "\n" : "";
    const char* colon = indent >= 0 ? ": " : ":";
    if (j.is_null()) {
      out += "null";
    } else if (j.is_bool()) {
      out += j.as_bool() ? "true" : "false";
    } else if (j.is_number()) {
      append_number(out, j.as_number());
    } else if (j.is_string()) {
      append_escaped(out, j.as_string());
    } else if (j.is_array()) {
      const auto& arr = j.as_array();
      if (arr.empty()) {
        out += "[]";
        return;
      }
      out += "[";
      out += nl;
      for (size_t i = 0; i < arr.size(); ++i) {
        out += pad;
        self(self, arr[i], depth + 1);
        if (i + 1 < arr.size()) out += ",";
        out += nl;
      }
      out += close_pad;
      out += "]";
    } else {
      const auto& obj = j.as_object();
      if (obj.empty()) {
        out += "{}";
        return;
      }
      out += "{";
      out += nl;
      for (size_t i = 0; i < obj.size(); ++i) {
        out += pad;
        append_escaped(out, obj[i].first);
        out += colon;
        self(self, obj[i].second, depth + 1);
        if (i + 1 < obj.size()) out += ",";
        out += nl;
      }
      out += close_pad;
      out += "}";
    }
  };
  rec(rec, *this, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse() {
    Json j = value();
    skip_ws();
    PPSTAP_REQUIRE(pos_ == s_.size(), "trailing characters after JSON value");
    return j;
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;

  [[noreturn]] void fail(const char* what) {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return number();
    }
  }

  Json object() {
    expect('{');
    Json j = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return j;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      j[key] = value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return j;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json array() {
    expect('[');
    Json j = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return j;
    }
    while (true) {
      j.push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return j;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      c = s_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writer; decode them permissively as-is).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    char* end = nullptr;
    const std::string tok = s_.substr(start, pos_ - start);
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("malformed number");
    return Json(d);
  }
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace ppstap::obs
