// Trace-span recorder: the reproduction's answer to the paper's per-phase
// MPI_Wtime() instrumentation (Fig. 10), kept rather than flattened.
//
// Every rank of the parallel pipeline emits one span per Figure-10 phase
// per CPI ({recv, comp, send} x task x rank x CPI); the comm collectives
// and the sequential reference chain emit spans too. Spans accumulate in
// lock-free per-thread ring buffers — the hot path is one relaxed atomic
// load when tracing is disabled, and one slot write plus a release store
// when enabled; no allocation, no locks (a mutex is taken only the first
// time a thread registers its buffer).
//
// The exporter writes Chrome trace-event JSON ("X" complete events) that
// loads directly in chrome://tracing or https://ui.perfetto.dev, with one
// process group per pipeline task and one thread row per rank, so a full
// 25-CPI staggered run is visually inspectable.
//
// Runtime control: PPSTAP_TRACE=1 enables recording for any binary and
// installs an atexit exporter writing PPSTAP_TRACE_FILE (default
// "ppstap_trace.json"); programs can instead call obs::configure().
// Compile-time control: building with -DPPSTAP_ENABLE_TRACING=OFF turns
// every function in this header into an empty inline stub.
//
// All span timestamps use WallTimer::now() — a single steady_clock
// monotonic base shared with the pipeline's phase timing.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

#ifndef PPSTAP_ENABLE_TRACING
#define PPSTAP_ENABLE_TRACING 1
#endif

namespace ppstap::obs {

/// One completed span. `name` and `category` must be pointers to
/// static-storage strings (the recorder stores the pointers, not copies —
/// that is what keeps the hot path allocation-free).
struct Span {
  const char* name = "";      ///< e.g. "recv", "comp", "send", "broadcast"
  const char* category = "";  ///< e.g. "pipeline", "comm", "sequential"
  int rank = 0;               ///< global rank (trace thread row)
  int task = -1;              ///< stap::Task index, or kCommTrack/kSeqTrack
  std::int64_t cpi = -1;      ///< CPI index, -1 when not CPI-scoped
  double t_start = 0.0;       ///< WallTimer::now() seconds
  double t_end = 0.0;
  std::int64_t bytes = -1;    ///< payload bytes, -1 when absent
  std::int64_t items = -1;    ///< participants / element count, -1 absent
  // Causal flow fields, set on "xfer" spans (category "flow") stitched from
  // the FlowContext piggybacked on redistribution frames; -1 when absent.
  std::int32_t src_rank = -1;  ///< producing rank
  std::int32_t src_task = -1;  ///< producing task (stap::Task index)
  std::int32_t edge = -1;      ///< redistribution edge id (core SimEdge)
  std::int32_t hop = -1;       ///< hop sequence number along the pipeline
  /// Seconds the frame sat delivered-but-unconsumed in the receiver's
  /// mailbox (consumer busy); t_end - t_start - queue_s is pure transport.
  double queue_s = 0.0;
};

/// Pseudo-task ids for spans not owned by one of the seven pipeline tasks;
/// they map to their own process groups in the exported trace.
inline constexpr int kCommTrack = -1;
inline constexpr int kSeqTrack = -2;
/// Fault events: injected faults, shed CPIs, spare-rank recoveries.
inline constexpr int kFaultTrack = -3;
/// Integrity events: ABFT invariant failures, recomputes, repairs,
/// escalations, digest mismatches.
inline constexpr int kIntegrityTrack = -4;
/// Causal flow spans: one "xfer" per delivered redistribution frame,
/// carrying the FlowContext the sender piggybacked on it.
inline constexpr int kFlowTrack = -5;

struct Config {
  bool enabled = false;
  /// Destination of the atexit export when enabled via environment.
  std::string path = "ppstap_trace.json";
  /// Span slots per thread ring buffer; the oldest spans are overwritten
  /// (and counted as dropped) when a thread exceeds this. Overridable via
  /// PPSTAP_TRACE_CAPACITY.
  std::size_t capacity_per_thread = 1 << 14;
  /// Flight-recorder mode: when armed, fault paths (world abort, spare
  /// failover, integrity escalation, elastic migration rollback) dump the
  /// span ring to `flight_path` via flight_dump(). Enabled via
  /// PPSTAP_FLIGHT_RECORDER=1, which also turns recording on with a
  /// smaller bounded ring.
  bool flight_armed = false;
  std::string flight_path = "ppstap_flight.json";
};

#if PPSTAP_ENABLE_TRACING

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when span recording is on. A single relaxed atomic load — this is
/// the entire cost of the disabled path.
inline bool tracing_enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Install a configuration (clears nothing; toggles recording and sets the
/// export path/capacity for buffers registered afterwards).
void configure(const Config& config);

/// Read PPSTAP_TRACE / PPSTAP_TRACE_FILE. Called automatically at program
/// start; when PPSTAP_TRACE is truthy an atexit Chrome-trace export to
/// PPSTAP_TRACE_FILE is installed.
void configure_from_env();

const Config& config();

/// Append a span to the calling thread's ring buffer. No-op when disabled.
void emit(const Span& span);

/// Name a task/track id for the exporter's process labels (e.g. task 0 ->
/// "doppler_filter"). Safe to call repeatedly.
void set_track_name(int task, const std::string& name);

/// Total spans currently held (across all thread buffers).
std::uint64_t span_count();
/// Spans lost to ring-buffer wrap since the last reset().
std::uint64_t dropped_count();

/// Copy out all recorded spans, ordered by (task, rank, t_start). Call
/// after the emitting threads have quiesced (e.g. after World::run joins).
std::vector<Span> snapshot();

/// The Chrome trace-event document for the current spans. Timestamps are
/// rebased so the earliest span starts at ts=0.
Json chrome_trace_json();

/// Serialize chrome_trace_json() to `path`. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// Flight-recorder dump: when config().flight_armed, write the current
/// span ring to config().flight_path with `reason` recorded in otherData.
/// No-op when not armed; safe to call from fault paths repeatedly (the
/// file is overwritten, so it always holds the most recent pre-fault ring).
void flight_dump(const char* reason);

/// Drop all recorded spans and detach every thread's buffer (threads
/// re-register on their next emit).
void reset();

/// RAII span: captures t_start at construction, emits at destruction.
/// Does nothing (and reads no clock) when tracing is disabled.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category, int rank, int task = -1,
             std::int64_t cpi = -1);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_bytes(std::int64_t b) { span_.bytes = b; }
  void set_items(std::int64_t n) { span_.items = n; }

 private:
  Span span_;
  bool active_;
};

#else  // !PPSTAP_ENABLE_TRACING — every entry point compiles to nothing.

inline bool tracing_enabled() { return false; }
inline void configure(const Config&) {}
inline void configure_from_env() {}
inline const Config& config() {
  static const Config c;
  return c;
}
inline void emit(const Span&) {}
inline void set_track_name(int, const std::string&) {}
inline std::uint64_t span_count() { return 0; }
inline std::uint64_t dropped_count() { return 0; }
inline std::vector<Span> snapshot() { return {}; }
inline Json chrome_trace_json() { return Json::object(); }
inline bool write_chrome_trace(const std::string&) { return false; }
inline void flight_dump(const char*) {}
inline void reset() {}

class ScopedSpan {
 public:
  ScopedSpan(const char*, const char*, int, int = -1, std::int64_t = -1) {}
  void set_bytes(std::int64_t) {}
  void set_items(std::int64_t) {}
};

#endif  // PPSTAP_ENABLE_TRACING

}  // namespace ppstap::obs
