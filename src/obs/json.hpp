// Minimal JSON document type for the observability layer.
//
// Everything the obs subsystem exports — Chrome trace-event files, metric
// registry snapshots, machine-readable bench output — is JSON, and the
// tests must be able to parse those files back to verify well-formedness,
// so this header provides both a writer and a strict parser. Objects keep
// insertion order (trace viewers and humans both read the files), numbers
// round-trip through double, and dump() emits UTF-8 with standard escaping.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace ppstap::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  /// Insertion-ordered object (lookup is linear; documents are small).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(int i) : v_(static_cast<double>(i)) {}
  Json(long i) : v_(static_cast<double>(i)) {}
  Json(long long i) : v_(static_cast<double>(i)) {}
  Json(unsigned u) : v_(static_cast<double>(u)) {}
  Json(unsigned long u) : v_(static_cast<double>(u)) {}
  Json(unsigned long long u) : v_(static_cast<double>(u)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }

  /// Object access: inserts a null member if `key` is absent. Converts a
  /// default-constructed (null) value into an object on first use.
  Json& operator[](const std::string& key);

  /// Object lookup without insertion; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  /// Array append. Converts a null value into an array on first use.
  void push_back(Json v);

  /// Array / object element count (0 for scalars).
  std::size_t size() const;
  const Json& at(std::size_t i) const { return std::get<Array>(v_)[i]; }

  /// Serialize. `indent` < 0 emits compact one-line JSON; >= 0 pretty-prints
  /// with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Strict parser; throws ppstap::Error on malformed input.
  static Json parse(const std::string& text);

 private:
  explicit Json(Array a) : v_(std::move(a)) {}
  explicit Json(Object o) : v_(std::move(o)) {}
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

}  // namespace ppstap::obs
