#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace ppstap::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      min_bits_(std::numeric_limits<double>::infinity()),
      max_bits_(-std::numeric_limits<double>::infinity()) {
  PPSTAP_REQUIRE(!bounds_.empty(), "histogram needs at least one bound");
  for (size_t i = 1; i < bounds_.size(); ++i)
    PPSTAP_REQUIRE(bounds_[i] > bounds_[i - 1],
                   "histogram bounds must be strictly increasing");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi,
                                                  double growth) {
  PPSTAP_REQUIRE(lo > 0.0 && hi > lo && growth > 1.0,
                 "need 0 < lo < hi and growth > 1");
  std::vector<double> out;
  for (double b = lo; b < hi * growth; b *= growth) out.push_back(b);
  return out;
}

std::size_t Histogram::bucket_index(double v) const {
  return static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
}

void Histogram::observe(double v) {
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
  double mn = min_bits_.load(std::memory_order_relaxed);
  while (v < mn &&
         !min_bits_.compare_exchange_weak(mn, v, std::memory_order_relaxed)) {
  }
  double mx = max_bits_.load(std::memory_order_relaxed);
  while (v > mx &&
         !max_bits_.compare_exchange_weak(mx, v, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  return min_bits_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return max_bits_.load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  PPSTAP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  // Rank of the target observation (1-based, nearest-rank convention).
  const double target = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      // Interpolate inside bucket i: (lower, upper].
      const double lower = i == 0 ? std::min(min(), bounds_[0]) : bounds_[i - 1];
      const double upper = i < bounds_.size() ? bounds_[i] : max();
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(c);
      const double v = lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(v, min(), max());
    }
    cum += c;
  }
  return max();
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i)
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  s.count = count();
  s.sum = sum();
  s.min = s.count ? min() : 0.0;
  s.max = s.count ? max() : 0.0;
  return s;
}

Json Histogram::to_json() const {
  const Snapshot s = snapshot();
  Json j = Json::object();
  j["count"] = s.count;
  j["sum"] = s.sum;
  j["min"] = s.min;
  j["max"] = s.max;
  j["p50"] = quantile(0.50);
  j["p95"] = quantile(0.95);
  j["p99"] = quantile(0.99);
  Json buckets = Json::array();
  for (size_t i = 0; i < s.counts.size(); ++i) {
    if (s.counts[i] == 0) continue;  // sparse: documents stay readable
    Json b = Json::object();
    b["le"] = i < s.bounds.size() ? Json(s.bounds[i]) : Json("inf");
    b["count"] = s.counts[i];
    buckets.push_back(std::move(b));
  }
  j["buckets"] = std::move(buckets);
  return j;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Json Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json j = Json::object();
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) counters[name] = c->value();
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges[name] = g->value();
  Json hists = Json::object();
  for (const auto& [name, h] : histograms_) hists[name] = h->to_json();
  j["counters"] = std::move(counters);
  j["gauges"] = std::move(gauges);
  j["histograms"] = std::move(hists);
  return j;
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

}  // namespace ppstap::obs
