// Critical-path analyzer: turns recorded spans into the paper's Tables 7-10
// bottleneck verdict, mechanically.
//
// The paper's evaluation method is manual: time every {recv, comp, send}
// phase per task (Fig. 10), then find the task group whose *intrinsic*
// per-CPI time — service time minus the idle queue-wait absorbed in its
// receive phase — is the largest; that group gates throughput (eq. 1), the
// others carry slack, and node reassignments (Tables 9 and 10) move ranks
// toward the gating group. This module automates exactly that computation
// from a span set:
//
//  * Stage statistics: per task, mean visible recv/comp/send per CPI, the
//    queue-wait share of recv (bounded by the latest flow-span delivery
//    into each rank), the intrinsic time, utilization = intrinsic/period,
//    and slack = period - intrinsic.
//  * Per-CPI causal chains: starting from the sink task's last send, walk
//    backward through the gating "xfer" flow span at each hop (the frame
//    whose delivery completed last, temporal weight edges excluded as in
//    eq. 2), tiling the end-to-end latency into compute, unpack, pack,
//    transport, and queue segments. The tiles telescope, so the
//    decomposition closes the latency budget by construction; the reported
//    accounted_fraction drops below 1 only when spans are missing.
//  * A Table-9/10-style recommendation: how many ranks to add to the
//    gating group to bring its intrinsic time down to the runner-up's.
//
// Works on live pipeline traces (rank = global rank) and on machine-model
// simulator traces (rank = task index) identically. This module depends
// only on obs — task labels for the seven stap tasks are replicated here
// because obs cannot link against stap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace ppstap::obs {

/// Number of pipeline tasks in the paper's Fig. 4 (stap::kNumTasks).
inline constexpr int kNumStapTasks = 7;

/// Printable label for a stap task index ("task<N>" for anything else).
std::string stap_task_label(int task);

/// Per-task-group service decomposition (one row of Table 7/8's timing
/// columns, averaged over ranks and measured CPIs).
struct StageStat {
  int task = -1;
  int ranks = 0;           ///< distinct ranks observed for this task
  std::int64_t samples = 0;  ///< (rank, cpi) instances averaged
  double recv = 0.0;       ///< mean visible recv phase (includes waiting)
  double wait = 0.0;       ///< idle share of recv (delivery-bounded)
  double comp = 0.0;
  double send = 0.0;
  double utilization = 0.0;  ///< intrinsic / period
  double slack = 0.0;        ///< period - intrinsic

  double service() const { return recv + comp + send; }
  double intrinsic() const { return service() - wait; }
};

/// One stitched end-to-end chain: the latency of CPI `cpi` tiled into
/// causal segments along the backward walk from sink to source.
struct CpiChain {
  std::int64_t cpi = -1;
  int hops = 0;
  double latency = 0.0;    ///< sink send end - source recv start
  double compute = 0.0;    ///< comp phases on the chain
  double unpack = 0.0;     ///< recv-side work after the gating delivery
  double pack = 0.0;       ///< send-side work up to the gating frame's send
  double transport = 0.0;  ///< send call -> delivery, minus queue residency
  double queue = 0.0;      ///< delivered-but-unconsumed mailbox residency

  double accounted() const {
    return compute + unpack + pack + transport + queue;
  }
  double unaccounted() const {
    const double u = latency - accounted();
    return u > 0.0 ? u : 0.0;
  }
};

struct BottleneckReport {
  bool valid = false;
  std::string note;  ///< why invalid, or caveats (e.g. no flow spans)

  // The Tables 7-10 verdict.
  int gating_task = -1;
  std::string gating_task_name;
  double period = 0.0;                ///< max intrinsic over task groups
  double throughput_estimate = 0.0;   ///< 1 / period (eq. 1)
  std::vector<StageStat> stages;

  // Stitched per-CPI chains and their mean decomposition.
  std::vector<CpiChain> chains;
  double mean_latency = 0.0;
  double accounted_fraction = 0.0;  ///< mean accounted()/latency over chains

  // Table-9/10-style reassignment hint: add `recommend_add_ranks` ranks to
  // `recommend_task` to bring its intrinsic down to the runner-up's,
  // lifting throughput to ~`predicted_throughput`.
  int recommend_task = -1;
  int recommend_add_ranks = 0;
  double predicted_throughput = 0.0;

  Json to_json() const;
};

/// Analyze a span set (e.g. obs::snapshot()). Uses spans with category
/// "pipeline" (names "recv"/"comp"/"send") and "flow" (name "xfer");
/// everything else is ignored. When more than 8 distinct complete CPIs are
/// present the first and last two are trimmed (startup / drain transients).
BottleneckReport analyze_spans(const std::vector<Span>& spans);

/// Analyze an exported Chrome trace document (the inverse of
/// chrome_trace_json(): pid -> task, args -> flow fields).
BottleneckReport analyze_trace(const Json& chrome_doc);

/// The trace-to-span conversion analyze_trace() is built on, exposed for
/// tools that need the raw per-(rank, cpi) phase spans — e.g. the offline
/// per-rank health report in ppstap-analyze.
std::vector<Span> spans_from_trace(const Json& chrome_doc);

}  // namespace ppstap::obs
