#include "obs/critical_path.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <utility>

namespace ppstap::obs {

namespace {

// Labels for the seven Fig. 4 tasks, mirroring stap::task_name (obs cannot
// link against stap; the strings are part of the trace contract).
constexpr const char* kTaskLabels[kNumStapTasks] = {
    "Doppler filter processing",
    "easy weight computation",
    "hard weight computation",
    "easy beamforming",
    "hard beamforming",
    "pulse compression",
    "CFAR processing",
};

// Edge ids 4 (easy weight -> easy BF) and 5 (hard weight -> hard BF) carry
// weights computed from an earlier CPI (core's temporal SimEdges); they are
// off the eq. 2 latency path and excluded from the backward chain walk.
// They still bound queue-wait in the stage statistics: a beamformer idles
// until its weights arrive too.
bool temporal_edge(int edge) { return edge == 4 || edge == 5; }

// The {recv, comp, send} phase boundaries of one (rank, cpi) loop
// iteration, assembled from up to three pipeline spans.
struct Triple {
  int task = -1;
  double r0 = 0.0;  ///< recv start
  double r1 = 0.0;  ///< recv end / comp start
  double c1 = 0.0;  ///< comp end / send start
  double s1 = 0.0;  ///< send end
  bool has_recv = false, has_comp = false, has_send = false;
  bool complete() const { return has_recv && has_comp && has_send; }
};

using Key = std::pair<int, std::int64_t>;  // (rank, cpi)

}  // namespace

std::string stap_task_label(int task) {
  if (task >= 0 && task < kNumStapTasks)
    return kTaskLabels[static_cast<size_t>(task)];
  return "task" + std::to_string(task);
}

BottleneckReport analyze_spans(const std::vector<Span>& spans) {
  BottleneckReport rep;

  // Index phase triples by (rank, cpi) and delivered flows by the
  // receiving (rank, cpi). Ranks are globally unique per task in both live
  // traces (one thread per rank) and simulator traces (rank = task index).
  std::map<Key, Triple> triples;
  std::map<Key, std::vector<const Span*>> flows;
  for (const Span& s : spans) {
    if (std::strcmp(s.category, "flow") == 0 &&
        std::strcmp(s.name, "xfer") == 0) {
      if (s.cpi >= 0 && s.src_rank >= 0) flows[{s.rank, s.cpi}].push_back(&s);
      continue;
    }
    if (std::strcmp(s.category, "pipeline") != 0) continue;
    if (s.task < 0 || s.cpi < 0) continue;
    Triple& tr = triples[{s.rank, s.cpi}];
    tr.task = s.task;
    if (std::strcmp(s.name, "recv") == 0) {
      tr.r0 = s.t_start;
      tr.r1 = s.t_end;
      tr.has_recv = true;
    } else if (std::strcmp(s.name, "comp") == 0) {
      tr.c1 = s.t_end;
      tr.has_comp = true;
    } else if (std::strcmp(s.name, "send") == 0) {
      tr.s1 = s.t_end;
      tr.has_send = true;
    }
  }
  if (triples.empty()) {
    rep.note = "no pipeline phase spans";
    return rep;
  }

  // A CPI is analyzable only when every task present in the trace has a
  // complete triple for it (shed or truncated CPIs are excluded). With
  // more than 8 such CPIs, trim two from each end: the pipeline fill and
  // drain transients would otherwise skew the steady-state means.
  std::set<int> tasks;
  std::map<std::int64_t, std::set<int>> cpi_tasks;
  for (const auto& [key, tr] : triples) {
    if (!tr.complete()) continue;
    tasks.insert(tr.task);
    cpi_tasks[key.second].insert(tr.task);
  }
  if (tasks.empty()) {
    rep.note = "no complete recv/comp/send triples";
    return rep;
  }
  std::vector<std::int64_t> cpis;
  for (const auto& [cpi, ts] : cpi_tasks)
    if (ts.size() == tasks.size()) cpis.push_back(cpi);
  if (cpis.empty()) {
    rep.note = "no CPI has complete spans for every task";
    return rep;
  }
  if (cpis.size() > 8) {
    cpis.erase(cpis.begin(), cpis.begin() + 2);
    cpis.erase(cpis.end() - 2, cpis.end());
  }
  const std::set<std::int64_t> kept(cpis.begin(), cpis.end());

  // Stage statistics (Tables 7/8 columns). The queue-wait share of each
  // recv phase is bounded by the last flow delivery into that (rank, cpi):
  // before it the rank was idle waiting on producers, after it everything
  // is the rank's own unpack work.
  struct Acc {
    double recv = 0.0, wait = 0.0, comp = 0.0, send = 0.0;
    std::int64_t n = 0;
    std::set<int> ranks;
  };
  std::map<int, Acc> acc;
  for (const auto& [key, tr] : triples) {
    if (!tr.complete() || kept.count(key.second) == 0) continue;
    Acc& a = acc[tr.task];
    a.ranks.insert(key.first);
    a.n += 1;
    const double recv_len = tr.r1 - tr.r0;
    a.recv += recv_len;
    a.comp += tr.c1 - tr.r1;
    a.send += tr.s1 - tr.c1;
    const auto fit = flows.find(key);
    if (fit != flows.end()) {
      double last_delivery = 0.0;
      bool any = false;
      for (const Span* f : fit->second) {
        if (!any || f->t_end > last_delivery) last_delivery = f->t_end;
        any = true;
      }
      if (any) a.wait += std::clamp(last_delivery - tr.r0, 0.0, recv_len);
    }
  }
  for (const auto& [task, a] : acc) {
    StageStat st;
    st.task = task;
    st.ranks = static_cast<int>(a.ranks.size());
    st.samples = a.n;
    const auto n = static_cast<double>(a.n);
    st.recv = a.recv / n;
    st.wait = a.wait / n;
    st.comp = a.comp / n;
    st.send = a.send / n;
    rep.stages.push_back(st);
  }
  for (const StageStat& st : rep.stages) {
    if (st.intrinsic() > rep.period) {
      rep.period = st.intrinsic();
      rep.gating_task = st.task;
    }
  }
  for (StageStat& st : rep.stages) {
    st.utilization = rep.period > 0.0 ? st.intrinsic() / rep.period : 0.0;
    st.slack = rep.period - st.intrinsic();
  }
  rep.gating_task_name = stap_task_label(rep.gating_task);
  if (rep.period > 0.0) rep.throughput_estimate = 1.0 / rep.period;

  // Table-9/10-style rank reassignment: compute time scales ~1/ranks, so
  // bringing the gating group's intrinsic down to the runner-up's takes
  // ceil(n_g * (T_g / T_2 - 1)) extra ranks, after which the runner-up
  // gates at ~1/T_2.
  double runner_up = 0.0;
  const StageStat* gating_stage = nullptr;
  for (const StageStat& st : rep.stages) {
    if (st.task == rep.gating_task)
      gating_stage = &st;
    else
      runner_up = std::max(runner_up, st.intrinsic());
  }
  if (gating_stage != nullptr && runner_up > 0.0 &&
      gating_stage->intrinsic() > runner_up) {
    rep.recommend_task = rep.gating_task;
    rep.recommend_add_ranks = std::max(
        1, static_cast<int>(std::ceil(
               gating_stage->ranks *
               (gating_stage->intrinsic() / runner_up - 1.0))));
    rep.predicted_throughput = 1.0 / runner_up;
  }

  // Per-CPI causal chains: from the sink task's latest send end, follow
  // the gating (last-delivered, non-temporal) flow backward at each hop.
  // `hi` carries the downstream gating frame's send timestamp so each
  // hop's tiles cover exactly [its gating delivery, hi] — the tiles
  // telescope from sink send back to source recv with no gaps.
  const int sink_task = *tasks.rbegin();
  std::map<std::pair<int, std::int64_t>, std::vector<std::pair<int, const Triple*>>>
      by_task;
  for (const auto& [key, tr] : triples)
    if (tr.complete()) by_task[{tr.task, key.second}].push_back({key.first, &tr});

  for (const std::int64_t cpi : cpis) {
    const auto sit = by_task.find({sink_task, cpi});
    if (sit == by_task.end()) continue;
    int rank = -1;
    const Triple* tr = nullptr;
    for (const auto& [r, t] : sit->second) {
      if (tr == nullptr || t->s1 > tr->s1) {
        rank = r;
        tr = t;
      }
    }
    CpiChain ch;
    ch.cpi = cpi;
    const double t_out = tr->s1;
    double t_in = tr->r0;
    double hi = tr->s1;
    bool ok = false;
    for (int hop = 0; hop < 32; ++hop) {
      ch.compute += tr->c1 - tr->r1;
      ch.pack += std::max(0.0, hi - tr->c1);
      const Span* gate = nullptr;
      const auto fit = flows.find({rank, cpi});
      if (fit != flows.end()) {
        for (const Span* f : fit->second)
          if (!temporal_edge(f->edge) && (gate == nullptr || f->t_end > gate->t_end))
            gate = f;
      }
      if (gate == nullptr) {
        // Source stage (no spatial inputs): its whole recv is ingest work.
        // The CPI entered the system when the FIRST rank of the source
        // group started on it; if the walked rank began later (it was
        // still finishing the previous CPI), that skew is source-side
        // queueing and belongs to the end-to-end latency budget.
        ch.unpack += tr->r1 - tr->r0;
        double first = tr->r0;
        const auto src_it = by_task.find({tr->task, cpi});
        if (src_it != by_task.end())
          for (const auto& [r2, t2] : src_it->second)
            first = std::min(first, t2->r0);
        ch.queue += tr->r0 - first;
        t_in = first;
        ok = true;
        break;
      }
      const double pickup = std::clamp(gate->t_end, tr->r0, tr->r1);
      ch.unpack += tr->r1 - pickup;
      const double queued =
          std::clamp(gate->queue_s, 0.0, gate->t_end - gate->t_start);
      ch.queue += queued;
      ch.transport += std::max(0.0, (gate->t_end - gate->t_start) - queued);
      ch.hops += 1;
      hi = gate->t_start;
      rank = gate->src_rank;
      const auto nit = triples.find({rank, cpi});
      if (nit == triples.end() || !nit->second.complete()) break;
      tr = &nit->second;
    }
    if (!ok) continue;
    ch.latency = t_out - t_in;
    if (ch.latency <= 0.0) continue;
    rep.chains.push_back(ch);
  }
  if (!rep.chains.empty()) {
    double lat = 0.0, frac = 0.0;
    for (const CpiChain& ch : rep.chains) {
      lat += ch.latency;
      frac += std::min(1.0, ch.accounted() / ch.latency);
    }
    const auto n = static_cast<double>(rep.chains.size());
    rep.mean_latency = lat / n;
    rep.accounted_fraction = frac / n;
  }

  rep.valid = true;
  if (flows.empty())
    rep.note = "no flow spans: queue-wait bounds and chain decomposition "
               "degraded to raw phase times";
  return rep;
}

Json BottleneckReport::to_json() const {
  Json doc = Json::object();
  doc["valid"] = valid;
  if (!note.empty()) doc["note"] = note;
  doc["gating_task"] = gating_task;
  doc["gating_task_name"] = gating_task_name;
  doc["period_s"] = period;
  doc["throughput_estimate_cpi_per_s"] = throughput_estimate;

  Json stages_j = Json::array();
  for (const StageStat& st : stages) {
    Json s = Json::object();
    s["task"] = st.task;
    s["name"] = stap_task_label(st.task);
    s["ranks"] = st.ranks;
    s["samples"] = st.samples;
    s["recv_s"] = st.recv;
    s["queue_wait_s"] = st.wait;
    s["comp_s"] = st.comp;
    s["send_s"] = st.send;
    s["service_s"] = st.service();
    s["intrinsic_s"] = st.intrinsic();
    s["utilization"] = st.utilization;
    s["slack_s"] = st.slack;
    stages_j.push_back(std::move(s));
  }
  doc["stages"] = std::move(stages_j);

  doc["chains_analyzed"] = chains.size();
  doc["mean_latency_s"] = mean_latency;
  doc["accounted_fraction"] = accounted_fraction;
  if (!chains.empty()) {
    double compute = 0, unpack = 0, pack = 0, transport = 0, queue = 0;
    for (const CpiChain& ch : chains) {
      compute += ch.compute;
      unpack += ch.unpack;
      pack += ch.pack;
      transport += ch.transport;
      queue += ch.queue;
    }
    const auto n = static_cast<double>(chains.size());
    Json b = Json::object();
    b["compute_s"] = compute / n;
    b["unpack_s"] = unpack / n;
    b["pack_s"] = pack / n;
    b["transport_s"] = transport / n;
    b["queue_s"] = queue / n;
    doc["latency_breakdown"] = std::move(b);
  }

  if (recommend_task >= 0) {
    Json r = Json::object();
    r["task"] = recommend_task;
    r["name"] = stap_task_label(recommend_task);
    r["add_ranks"] = recommend_add_ranks;
    r["predicted_throughput_cpi_per_s"] = predicted_throughput;
    doc["recommendation"] = std::move(r);
  }
  return doc;
}

std::vector<Span> spans_from_trace(const Json& chrome_doc) {
  std::vector<Span> spans;
  const Json* events = chrome_doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) return spans;
  const auto num = [](const Json* j, double fallback) {
    return j != nullptr && j->is_number() ? j->as_number() : fallback;
  };
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& e = events->at(i);
    const Json* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") continue;
    const Json* cat = e.find("cat");
    const Json* name = e.find("name");
    if (cat == nullptr || name == nullptr || !cat->is_string() ||
        !name->is_string())
      continue;
    Span s;
    if (cat->as_string() == "pipeline") {
      s.category = "pipeline";
      if (name->as_string() == "recv")
        s.name = "recv";
      else if (name->as_string() == "comp")
        s.name = "comp";
      else if (name->as_string() == "send")
        s.name = "send";
      else
        continue;
    } else if (cat->as_string() == "flow" && name->as_string() == "xfer") {
      s.category = "flow";
      s.name = "xfer";
    } else {
      continue;
    }
    const double ts = num(e.find("ts"), 0.0);
    const double dur = num(e.find("dur"), 0.0);
    s.t_start = ts * 1e-6;
    s.t_end = (ts + dur) * 1e-6;
    const int pid = static_cast<int>(num(e.find("pid"), 0.0));
    s.task = pid >= 100 ? 100 - pid : pid;
    const Json* args = e.find("args");
    const auto arg = [&](const char* key, double fallback) {
      return num(args != nullptr ? args->find(key) : nullptr, fallback);
    };
    s.rank = static_cast<int>(arg("rank", num(e.find("tid"), 0.0)));
    s.cpi = static_cast<std::int64_t>(arg("cpi", -1.0));
    s.bytes = static_cast<std::int64_t>(arg("bytes", -1.0));
    s.src_rank = static_cast<std::int32_t>(arg("src_rank", -1.0));
    s.src_task = static_cast<std::int32_t>(arg("src_task", -1.0));
    s.edge = static_cast<std::int32_t>(arg("edge", -1.0));
    s.hop = static_cast<std::int32_t>(arg("hop", -1.0));
    s.queue_s = arg("queue_us", 0.0) * 1e-6;
    spans.push_back(s);
  }
  return spans;
}

BottleneckReport analyze_trace(const Json& chrome_doc) {
  if (const Json* events = chrome_doc.find("traceEvents");
      events == nullptr || !events->is_array()) {
    BottleneckReport rep;
    rep.note = "document has no traceEvents array";
    return rep;
  }
  return analyze_spans(spans_from_trace(chrome_doc));
}

}  // namespace ppstap::obs
