// Householder QR factorization and least-squares solvers.
//
// The STAP weight computation (paper Appendix A/B) solves constrained least
// squares problems of the form  min ||M w - rhs||  where M stacks clutter
// training snapshots over beam-shape constraint rows. The easy Doppler bins
// use a fresh QR per CPI; the hard bins use the *recursive block update* form
// of QR (qr_append_rows), which re-triangularizes [lambda*R_old; X_new]
// without touching old data — the paper's exponential-forgetting scheme.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace ppstap::linalg {

/// Householder QR of an m x n matrix (m >= n), retaining the reflectors so
/// Q^H can be applied to right-hand sides without forming Q.
template <typename T>
class QrFactorization {
 public:
  /// Factorize a copy of `a`.
  explicit QrFactorization(const Matrix<T>& a);

  index_t rows() const { return m_; }
  index_t cols() const { return n_; }

  /// The n x n upper-triangular factor.
  Matrix<T> r() const;

  /// Cheap condition estimate from the R diagonal: max|r_ii| / min|r_ii|,
  /// a lower bound on the true 2-norm condition number that is exact for
  /// the diagonal-dominated problems the weight path produces. Returns
  /// +inf when the diagonal touches zero or carries a non-finite entry —
  /// a solve would divide by (or propagate) it.
  double condition_estimate() const;

  /// ABFT invariant (PR 5): orthogonal transforms preserve column norms,
  /// so ||R e_j|| must equal ||A e_j|| for every column. Returns the worst
  /// relative deviation across columns; both sides accumulate in double
  /// (the input norms are captured before factorization), so a healthy
  /// float factorization sits orders of magnitude below any sensible
  /// tolerance while a bit flip in A's copy or a broken reflector shows up
  /// directly. O(n^2) against the factorization's O(m n^2).
  double column_norm_residual() const;

  /// B (m x nrhs) := Q^H B, applying the stored reflectors in order.
  void apply_qh(Matrix<T>& b) const;

  /// Least-squares solution X (n x nrhs) of A X = B, B is m x nrhs.
  Matrix<T> solve(const Matrix<T>& b) const;

 private:
  index_t m_ = 0, n_ = 0;
  Matrix<T> a_;  // R in the upper triangle, reflector tails below.
  std::vector<T> v0_;  // leading reflector element per column
  std::vector<real_of_t<T>> beta_;  // 2 / ||v||^2 per column
  std::vector<double> col_norm_;  // ||A e_j|| of the input, in double
};

/// Solve R X = B for upper-triangular R (n x n), B is n x nrhs; in place.
template <typename T>
void back_substitute(const Matrix<T>& r, Matrix<T>& b);

/// Diagonal-ratio condition estimate of an upper-triangular factor held
/// outside a QrFactorization (the hard weight path carries R across CPIs):
/// max|r_ii| / min|r_ii|, +inf on a zero or non-finite diagonal.
template <typename T>
double triangular_condition_estimate(const Matrix<T>& r);

/// Least-squares solution of A X = B via QR (one-shot convenience).
template <typename T>
Matrix<T> least_squares(const Matrix<T>& a, const Matrix<T>& b);

/// Re-triangularize [R; X] where R is n x n upper triangular and X is k x n
/// dense: returns the updated n x n R. This is the block row-append QR
/// update; combined with a scalar forgetting factor applied to R beforehand
/// it implements the paper's recursive weight update for hard Doppler bins.
/// X is consumed (used as workspace). If `rhs` and `xrhs` are given (n x p
/// and k x p), they are updated by the same orthogonal transform so that
/// least-squares solves against the accumulated data remain possible.
template <typename T>
Matrix<T> qr_append_rows(const Matrix<T>& r, Matrix<T> x);

/// ABFT invariant for the row-append update (PR 5): the re-triangularized
/// R must preserve the column norms of the stacked [r_old; x] matrix.
/// Returns the worst relative deviation across columns, accumulated in
/// double. Callers keep their own copy of `x` — qr_append_rows consumes
/// its argument as workspace.
template <typename T>
double append_column_norm_residual(const Matrix<T>& r_old,
                                   const Matrix<T>& x,
                                   const Matrix<T>& r_new);

extern template class QrFactorization<cfloat>;
extern template class QrFactorization<cdouble>;
extern template class QrFactorization<float>;
extern template class QrFactorization<double>;
extern template void back_substitute<cfloat>(const Matrix<cfloat>&,
                                             Matrix<cfloat>&);
extern template void back_substitute<cdouble>(const Matrix<cdouble>&,
                                              Matrix<cdouble>&);
extern template void back_substitute<float>(const Matrix<float>&,
                                            Matrix<float>&);
extern template void back_substitute<double>(const Matrix<double>&,
                                             Matrix<double>&);
extern template Matrix<cfloat> least_squares<cfloat>(const Matrix<cfloat>&,
                                                     const Matrix<cfloat>&);
extern template Matrix<cdouble> least_squares<cdouble>(const Matrix<cdouble>&,
                                                       const Matrix<cdouble>&);
extern template Matrix<float> least_squares<float>(const Matrix<float>&,
                                                   const Matrix<float>&);
extern template Matrix<double> least_squares<double>(const Matrix<double>&,
                                                     const Matrix<double>&);
extern template Matrix<cfloat> qr_append_rows<cfloat>(const Matrix<cfloat>&,
                                                      Matrix<cfloat>);
extern template Matrix<cdouble> qr_append_rows<cdouble>(const Matrix<cdouble>&,
                                                        Matrix<cdouble>);
extern template Matrix<float> qr_append_rows<float>(const Matrix<float>&,
                                                    Matrix<float>);
extern template Matrix<double> qr_append_rows<double>(const Matrix<double>&,
                                                      Matrix<double>);
extern template double triangular_condition_estimate<cfloat>(
    const Matrix<cfloat>&);
extern template double triangular_condition_estimate<cdouble>(
    const Matrix<cdouble>&);
extern template double triangular_condition_estimate<float>(
    const Matrix<float>&);
extern template double triangular_condition_estimate<double>(
    const Matrix<double>&);
extern template double append_column_norm_residual<cfloat>(
    const Matrix<cfloat>&, const Matrix<cfloat>&, const Matrix<cfloat>&);
extern template double append_column_norm_residual<cdouble>(
    const Matrix<cdouble>&, const Matrix<cdouble>&, const Matrix<cdouble>&);
extern template double append_column_norm_residual<float>(
    const Matrix<float>&, const Matrix<float>&, const Matrix<float>&);
extern template double append_column_norm_residual<double>(
    const Matrix<double>&, const Matrix<double>&, const Matrix<double>&);

}  // namespace ppstap::linalg
