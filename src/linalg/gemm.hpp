// Matrix products for beamforming and weight computation.
//
// Beamforming applies a small weight matrix (M x J) hermitian-transposed to a
// wide data matrix (J x K); the kernels here are written for that regime:
// row-major access with the inner loop along the unit-stride dimension.
#pragma once

#include "linalg/matrix.hpp"

namespace ppstap::linalg {

/// How an operand enters the product.
enum class Op {
  kNone,       ///< A as stored.
  kConjTrans,  ///< A^H (hermitian transpose; plain transpose for real T).
};

/// C = op(A) * op(B). Shapes are validated; C is resized.
template <typename T>
void matmul(const Matrix<T>& a, Op op_a, const Matrix<T>& b, Op op_b,
            Matrix<T>& c);

/// Convenience: C = A * B.
template <typename T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b) {
  Matrix<T> c;
  matmul(a, Op::kNone, b, Op::kNone, c);
  return c;
}

/// Convenience: C = A^H * B (the beamforming product W^H X).
template <typename T>
Matrix<T> matmul_herm(const Matrix<T>& a, const Matrix<T>& b) {
  Matrix<T> c;
  matmul(a, Op::kConjTrans, b, Op::kNone, c);
  return c;
}

/// y = op(A) * x for a vector x.
template <typename T>
std::vector<T> matvec(const Matrix<T>& a, Op op_a, std::span<const T> x);

extern template void matmul<cfloat>(const Matrix<cfloat>&, Op,
                                    const Matrix<cfloat>&, Op,
                                    Matrix<cfloat>&);
extern template void matmul<cdouble>(const Matrix<cdouble>&, Op,
                                     const Matrix<cdouble>&, Op,
                                     Matrix<cdouble>&);
extern template void matmul<float>(const Matrix<float>&, Op,
                                   const Matrix<float>&, Op, Matrix<float>&);
extern template void matmul<double>(const Matrix<double>&, Op,
                                    const Matrix<double>&, Op,
                                    Matrix<double>&);
extern template std::vector<cfloat> matvec<cfloat>(const Matrix<cfloat>&, Op,
                                                   std::span<const cfloat>);
extern template std::vector<cdouble> matvec<cdouble>(const Matrix<cdouble>&,
                                                     Op,
                                                     std::span<const cdouble>);

}  // namespace ppstap::linalg
