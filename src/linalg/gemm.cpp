#include "linalg/gemm.hpp"

#include <type_traits>

#include "common/flops.hpp"
#include "kernels/kernels.hpp"

namespace ppstap::linalg {

namespace {

// Unit-stride axpy; sample-precision complex goes through the dispatched
// SIMD kernel. Both hot matmul orderings below have this inner-loop shape.
template <typename T>
inline void axpy_row(const T& a, const T* x, T* y, index_t n) {
  if constexpr (std::is_same_v<T, cfloat>) {
    kernels::cf_axpy(a, x, y, n);
  } else {
    for (index_t j = 0; j < n; ++j) y[j] += a * x[j];
  }
}

// Flops for one complex multiply-add pair; real types use 2.
template <typename T>
constexpr std::uint64_t fma_flops() {
  return real_dof<T> == 2 ? 8 : 2;
}

// Logical element of op(A) without materializing the transpose.
template <typename T>
inline T fetch(const Matrix<T>& a, Op op, index_t i, index_t j) {
  return op == Op::kNone ? a(i, j) : conj_val(a(j, i));
}

}  // namespace

template <typename T>
void matmul(const Matrix<T>& a, Op op_a, const Matrix<T>& b, Op op_b,
            Matrix<T>& c) {
  const index_t m = (op_a == Op::kNone) ? a.rows() : a.cols();
  const index_t k = (op_a == Op::kNone) ? a.cols() : a.rows();
  const index_t kb = (op_b == Op::kNone) ? b.rows() : b.cols();
  const index_t n = (op_b == Op::kNone) ? b.cols() : b.rows();
  PPSTAP_REQUIRE(k == kb, "inner dimensions must agree in matmul");

  c.resize(m, n);

  if (op_a == Op::kNone && op_b == Op::kNone) {
    // ikj order: both B and C rows are walked with unit stride.
    for (index_t i = 0; i < m; ++i) {
      T* crow = c.data() + i * n;
      for (index_t p = 0; p < k; ++p) {
        const T aip = a(i, p);
        const T* brow = b.data() + p * n;
        axpy_row(aip, brow, crow, n);
      }
    }
  } else if (op_a == Op::kConjTrans && op_b == Op::kNone) {
    // C = A^H B with A stored k x m: walk A rows (p), scatter into C rows.
    for (index_t p = 0; p < k; ++p) {
      const T* arow = a.data() + p * m;
      const T* brow = b.data() + p * n;
      for (index_t i = 0; i < m; ++i) {
        const T ahpi = conj_val(arow[i]);
        T* crow = c.data() + i * n;
        axpy_row(ahpi, brow, crow, n);
      }
    }
  } else {
    // Remaining op combinations are rare; use the generic indexed form.
    for (index_t i = 0; i < m; ++i)
      for (index_t j = 0; j < n; ++j) {
        T acc{};
        for (index_t p = 0; p < k; ++p)
          acc += fetch(a, op_a, i, p) * fetch(b, op_b, p, j);
        c(i, j) = acc;
      }
  }

  count_flops(static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
              static_cast<std::uint64_t>(k) * fma_flops<T>());
}

template <typename T>
std::vector<T> matvec(const Matrix<T>& a, Op op_a, std::span<const T> x) {
  const index_t m = (op_a == Op::kNone) ? a.rows() : a.cols();
  const index_t k = (op_a == Op::kNone) ? a.cols() : a.rows();
  PPSTAP_REQUIRE(static_cast<index_t>(x.size()) == k,
                 "vector length must match op(A) columns");
  std::vector<T> y(static_cast<size_t>(m));
  for (index_t i = 0; i < m; ++i) {
    T acc{};
    for (index_t p = 0; p < k; ++p) acc += fetch(a, op_a, i, p) * x[p];
    y[static_cast<size_t>(i)] = acc;
  }
  count_flops(static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(k) *
              fma_flops<T>());
  return y;
}

template void matmul<cfloat>(const Matrix<cfloat>&, Op, const Matrix<cfloat>&,
                             Op, Matrix<cfloat>&);
template void matmul<cdouble>(const Matrix<cdouble>&, Op,
                              const Matrix<cdouble>&, Op, Matrix<cdouble>&);
template void matmul<float>(const Matrix<float>&, Op, const Matrix<float>&,
                            Op, Matrix<float>&);
template void matmul<double>(const Matrix<double>&, Op, const Matrix<double>&,
                             Op, Matrix<double>&);
template std::vector<cfloat> matvec<cfloat>(const Matrix<cfloat>&, Op,
                                            std::span<const cfloat>);
template std::vector<cdouble> matvec<cdouble>(const Matrix<cdouble>&, Op,
                                              std::span<const cdouble>);

}  // namespace ppstap::linalg
