// Dense row-major matrix used by the adaptive-weight computations.
//
// The STAP weight problems are small (training matrices of a few hundred
// rows by 16–32 columns), so the representation favours clarity and
// cache-friendly row access over tiling sophistication.
#pragma once

#include <cmath>
#include <complex>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ppstap::linalg {

/// Conjugate that is the identity for real scalars.
template <typename T>
inline T conj_val(const T& x) {
  return x;
}
template <typename T>
inline std::complex<T> conj_val(const std::complex<T>& x) {
  return std::conj(x);
}

/// |x|^2 as the underlying real type.
template <typename T>
inline T abs_sq(const T& x) {
  return x * x;
}
template <typename T>
inline T abs_sq(const std::complex<T>& x) {
  return x.real() * x.real() + x.imag() * x.imag();
}

/// Underlying real scalar of an element type (float for cfloat, etc.).
template <typename T>
struct real_of {
  using type = T;
};
template <typename T>
struct real_of<std::complex<T>> {
  using type = T;
};
template <typename T>
using real_of_t = typename real_of<T>::type;

/// Dense row-major matrix.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols)) {
    PPSTAP_REQUIRE(rows >= 0 && cols >= 0, "matrix dims must be nonnegative");
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }

  T& operator()(index_t i, index_t j) {
    return data_[static_cast<size_t>(i * cols_ + j)];
  }
  const T& operator()(index_t i, index_t j) const {
    return data_[static_cast<size_t>(i * cols_ + j)];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::span<T> row(index_t i) {
    return {data_.data() + i * cols_, static_cast<size_t>(cols_)};
  }
  std::span<const T> row(index_t i) const {
    return {data_.data() + i * cols_, static_cast<size_t>(cols_)};
  }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

  void resize(index_t rows, index_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<size_t>(rows * cols), T{});
  }

  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  /// Identity scaled by `s` (square).
  static Matrix identity(index_t n, const T& s = T{1}) {
    Matrix m(n, n);
    for (index_t i = 0; i < n; ++i) m(i, i) = s;
    return m;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixCF = Matrix<cfloat>;
using MatrixCD = Matrix<cdouble>;

/// Frobenius norm of the difference, for tests and convergence checks.
template <typename T>
real_of_t<T> frobenius_distance(const Matrix<T>& a, const Matrix<T>& b) {
  PPSTAP_REQUIRE(a.same_shape(b), "shape mismatch in frobenius_distance");
  real_of_t<T> acc{};
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j) acc += abs_sq(a(i, j) - b(i, j));
  return std::sqrt(acc);
}

/// Frobenius norm.
template <typename T>
real_of_t<T> frobenius_norm(const Matrix<T>& a) {
  real_of_t<T> acc{};
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j) acc += abs_sq(a(i, j));
  return std::sqrt(acc);
}

/// True when every entry is finite (numerical-health screening: a single
/// NaN/Inf snapshot would otherwise poison a whole QR factorization, and —
/// on the hard STAP path — the recursive R carried across CPIs).
template <typename T>
bool all_finite(const Matrix<T>& a) {
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j)
      if (!std::isfinite(abs_sq(a(i, j)))) return false;
  return true;
}

}  // namespace ppstap::linalg
