#include "linalg/serialize.hpp"

#include <cstdint>
#include <istream>
#include <ostream>

namespace ppstap::linalg {

namespace {
constexpr std::uint32_t kMagic = 0x5050534d;  // "PPSM"

template <typename T>
constexpr std::uint32_t dtype_code() {
  if constexpr (std::is_same_v<T, cfloat>) return 1;
  if constexpr (std::is_same_v<T, cdouble>) return 2;
  if constexpr (std::is_same_v<T, float>) return 3;
  if constexpr (std::is_same_v<T, double>) return 4;
}
}  // namespace

template <typename T>
void write_matrix(std::ostream& os, const Matrix<T>& m) {
  const std::uint32_t magic = kMagic, dtype = dtype_code<T>();
  const std::int64_t rows = m.rows(), cols = m.cols();
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  os.write(reinterpret_cast<const char*>(&dtype), sizeof(dtype));
  os.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  os.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(static_cast<size_t>(m.size()) *
                                        sizeof(T)));
  PPSTAP_REQUIRE(os.good(), "matrix write failed");
}

template <typename T>
Matrix<T> read_matrix(std::istream& is) {
  std::uint32_t magic = 0, dtype = 0;
  std::int64_t rows = -1, cols = -1;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&dtype), sizeof(dtype));
  is.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  is.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  PPSTAP_REQUIRE(is.good() && magic == kMagic, "not a ppstap matrix stream");
  PPSTAP_REQUIRE(dtype == dtype_code<T>(), "matrix element type mismatch");
  PPSTAP_REQUIRE(rows >= 0 && cols >= 0, "corrupt matrix header");
  Matrix<T> m(static_cast<index_t>(rows), static_cast<index_t>(cols));
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(static_cast<size_t>(m.size()) *
                                       sizeof(T)));
  PPSTAP_REQUIRE(is.gcount() == static_cast<std::streamsize>(
                                    static_cast<size_t>(m.size()) *
                                    sizeof(T)),
                 "truncated matrix payload");
  return m;
}

template void write_matrix<cfloat>(std::ostream&, const Matrix<cfloat>&);
template void write_matrix<cdouble>(std::ostream&, const Matrix<cdouble>&);
template Matrix<cfloat> read_matrix<cfloat>(std::istream&);
template Matrix<cdouble> read_matrix<cdouble>(std::istream&);

}  // namespace ppstap::linalg
