#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <type_traits>
#include <vector>

#include "common/flops.hpp"
#include "kernels/kernels.hpp"

namespace ppstap::linalg {

namespace {

// y[0..n) += a * x[0..n) along a unit-stride row; the sample-precision
// complex case runs through the dispatched SIMD kernel. The Householder
// updates below are restructured so every inner loop has this shape.
template <typename T>
inline void axpy_row(const T& a, const T* x, T* y, index_t n) {
  if constexpr (std::is_same_v<T, cfloat>) {
    kernels::cf_axpy(a, x, y, n);
  } else {
    for (index_t i = 0; i < n; ++i) y[i] += a * x[i];
  }
}

// Phase of x as a unit-magnitude scalar (1 for x == 0); identity sign logic
// for real types. Choosing v = x + phase(x0)*||x||*e1 keeps the reflector
// well conditioned regardless of the sign/phase of the pivot.
template <typename T>
T phase_of(const T& x) {
  if constexpr (real_dof<T> == 2) {
    const auto a = std::abs(x);
    return a == real_of_t<T>{0} ? T{1} : x / a;
  } else {
    return x < T{0} ? T{-1} : T{1};
  }
}

template <typename T>
constexpr std::uint64_t fma_flops() {
  return real_dof<T> == 2 ? 8 : 2;
}

}  // namespace

template <typename T>
QrFactorization<T>::QrFactorization(const Matrix<T>& a)
    : m_(a.rows()), n_(a.cols()), a_(a) {
  PPSTAP_REQUIRE(m_ >= n_, "QR requires rows >= cols");
  using R = real_of_t<T>;
  v0_.resize(static_cast<size_t>(n_));
  beta_.resize(static_cast<size_t>(n_));

  // Input column norms, in double, before the factorization overwrites a_:
  // the reference side of the column-norm ABFT invariant.
  col_norm_.resize(static_cast<size_t>(n_));
  for (index_t j = 0; j < n_; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < m_; ++i)
      s += static_cast<double>(abs_sq(a_(i, j)));
    col_norm_[static_cast<size_t>(j)] = std::sqrt(s);
  }

  std::uint64_t flops = 0;
  std::vector<T> w(static_cast<size_t>(n_));
  for (index_t j = 0; j < n_; ++j) {
    // Build the Householder vector for column j from rows j..m-1.
    R norm_sq{};
    for (index_t i = j; i < m_; ++i) norm_sq += abs_sq(a_(i, j));
    const R norm = std::sqrt(norm_sq);
    const T x0 = a_(j, j);
    const T ph = phase_of(x0);
    const T alpha = -ph * norm;
    const T v0 = x0 - alpha;  // v = x - alpha*e1, vi = a(i, j) for i > j
    const R v_sq = norm_sq - abs_sq(x0) + abs_sq(v0);
    const R beta = v_sq > R{0} ? R{2} / v_sq : R{0};
    v0_[static_cast<size_t>(j)] = v0;
    beta_[static_cast<size_t>(j)] = beta;
    a_(j, j) = alpha;  // diagonal of R; tail of v stays in the column

    // Apply H = I - beta v v^H to the trailing columns in two row-major
    // passes: w = beta (v^H A_t) accumulated by row sweeps, then the rank-1
    // update A_t -= v w. Both inner loops are unit-stride axpys; the per-
    // element accumulation order over i is the same as the classic column
    // form, so scalar dispatch reproduces its numerics.
    const index_t lw = n_ - j - 1;
    if (lw > 0) {
      T* wp = w.data();
      std::fill(wp, wp + lw, T{});
      axpy_row(conj_val(v0), &a_(j, j + 1), wp, lw);
      for (index_t i = j + 1; i < m_; ++i)
        axpy_row(conj_val(a_(i, j)), &a_(i, j + 1), wp, lw);
      for (index_t c = 0; c < lw; ++c) wp[c] *= beta;
      axpy_row(T{-v0}, wp, &a_(j, j + 1), lw);
      for (index_t i = j + 1; i < m_; ++i)
        axpy_row(T{-a_(i, j)}, wp, &a_(i, j + 1), lw);
    }
    const auto len = static_cast<std::uint64_t>(m_ - j);
    flops += 2 * len;  // norm accumulation
    flops += 2 * fma_flops<T>() * len * static_cast<std::uint64_t>(n_ - j - 1);
  }
  count_flops(flops);
}

namespace detail {

// max|d_i| / min|d_i| over a triangular diagonal; +inf if any entry is
// zero or non-finite. Shared by QrFactorization::condition_estimate and
// triangular_condition_estimate so both paths agree on the policy.
template <typename T, typename DiagAt>
double diag_condition(index_t n, DiagAt at) {
  double dmax = 0.0;
  double dmin = std::numeric_limits<double>::infinity();
  for (index_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(std::sqrt(abs_sq(at(i))));
    if (!std::isfinite(d) || d == 0.0)
      return std::numeric_limits<double>::infinity();
    dmax = std::max(dmax, d);
    dmin = std::min(dmin, d);
  }
  if (n == 0 || dmin == 0.0) return std::numeric_limits<double>::infinity();
  return dmax / dmin;
}

}  // namespace detail

template <typename T>
double QrFactorization<T>::condition_estimate() const {
  return detail::diag_condition<T>(n_, [this](index_t i) { return a_(i, i); });
}

template <typename T>
double triangular_condition_estimate(const Matrix<T>& r) {
  PPSTAP_REQUIRE(r.rows() == r.cols(), "R must be square");
  return detail::diag_condition<T>(r.rows(),
                                   [&r](index_t i) { return r(i, i); });
}

template <typename T>
double QrFactorization<T>::column_norm_residual() const {
  double worst = 0.0;
  for (index_t j = 0; j < n_; ++j) {
    double s = 0.0;
    for (index_t i = 0; i <= j; ++i)
      s += static_cast<double>(abs_sq(a_(i, j)));
    const double rn = std::sqrt(s);
    const double an = col_norm_[static_cast<size_t>(j)];
    if (!std::isfinite(rn))
      return std::numeric_limits<double>::infinity();
    const double dev = std::abs(rn - an) / std::max(an, 1e-30);
    worst = std::max(worst, dev);
  }
  return worst;
}

template <typename T>
Matrix<T> QrFactorization<T>::r() const {
  Matrix<T> r(n_, n_);
  for (index_t i = 0; i < n_; ++i)
    for (index_t j = i; j < n_; ++j) r(i, j) = a_(i, j);
  return r;
}

template <typename T>
void QrFactorization<T>::apply_qh(Matrix<T>& b) const {
  PPSTAP_REQUIRE(b.rows() == m_, "rhs rows must match factorized matrix");
  const index_t nrhs = b.cols();
  std::vector<T> w(static_cast<size_t>(nrhs));
  for (index_t j = 0; j < n_; ++j) {
    const T v0 = v0_[static_cast<size_t>(j)];
    const auto beta = beta_[static_cast<size_t>(j)];
    T* wp = w.data();
    std::fill(wp, wp + nrhs, T{});
    axpy_row(conj_val(v0), &b(j, 0), wp, nrhs);
    for (index_t i = j + 1; i < m_; ++i)
      axpy_row(conj_val(a_(i, j)), &b(i, 0), wp, nrhs);
    for (index_t c = 0; c < nrhs; ++c) wp[c] *= beta;
    axpy_row(T{-v0}, wp, &b(j, 0), nrhs);
    for (index_t i = j + 1; i < m_; ++i)
      axpy_row(T{-a_(i, j)}, wp, &b(i, 0), nrhs);
  }
  count_flops(2 * fma_flops<T>() * static_cast<std::uint64_t>(m_) *
              static_cast<std::uint64_t>(n_) *
              static_cast<std::uint64_t>(nrhs));
}

template <typename T>
Matrix<T> QrFactorization<T>::solve(const Matrix<T>& b) const {
  Matrix<T> y = b;
  apply_qh(y);
  Matrix<T> x(n_, y.cols());
  for (index_t i = 0; i < n_; ++i)
    for (index_t c = 0; c < y.cols(); ++c) x(i, c) = y(i, c);
  Matrix<T> r_upper = r();
  back_substitute(r_upper, x);
  return x;
}

template <typename T>
void back_substitute(const Matrix<T>& r, Matrix<T>& b) {
  const index_t n = r.rows();
  PPSTAP_REQUIRE(r.cols() == n, "R must be square");
  PPSTAP_REQUIRE(b.rows() == n, "rhs rows must match R");
  const index_t nrhs = b.cols();
  for (index_t i = n - 1; i >= 0; --i) {
    const T diag = r(i, i);
    PPSTAP_REQUIRE(abs_sq(diag) > real_of_t<T>{0},
                   "singular triangular factor in back substitution");
    for (index_t c = 0; c < nrhs; ++c) {
      T acc = b(i, c);
      for (index_t j = i + 1; j < n; ++j) acc -= r(i, j) * b(j, c);
      b(i, c) = acc / diag;
    }
  }
  count_flops(fma_flops<T>() * static_cast<std::uint64_t>(n) *
              static_cast<std::uint64_t>(n) *
              static_cast<std::uint64_t>(nrhs) / 2);
}

template <typename T>
Matrix<T> least_squares(const Matrix<T>& a, const Matrix<T>& b) {
  return QrFactorization<T>(a).solve(b);
}

template <typename T>
Matrix<T> qr_append_rows(const Matrix<T>& r, Matrix<T> x) {
  using Real = real_of_t<T>;
  const index_t n = r.rows();
  PPSTAP_REQUIRE(r.cols() == n, "R must be square in qr_append_rows");
  PPSTAP_REQUIRE(x.cols() == n, "appended rows must have R's column count");
  const index_t k = x.rows();

  Matrix<T> out = r;
  std::vector<T> v(static_cast<size_t>(k));
  std::vector<T> w2(static_cast<size_t>(n));

  std::uint64_t flops = 0;
  for (index_t j = 0; j < n; ++j) {
    // Householder on the sparse column [out(j,j); x(0..k-1, j)]: above-
    // diagonal entries of R are untouched because the reflector has zero
    // support there — this is what makes the update O(k n^2) instead of a
    // full O((n+k) n^2) re-factorization.
    Real norm_sq = abs_sq(out(j, j));
    for (index_t i = 0; i < k; ++i) norm_sq += abs_sq(x(i, j));
    const Real norm = std::sqrt(norm_sq);
    const T x0 = out(j, j);
    const T ph = phase_of(x0);
    const T alpha = -ph * norm;
    const T v0 = x0 - alpha;
    Real v_sq = abs_sq(v0);
    for (index_t i = 0; i < k; ++i) {
      v[static_cast<size_t>(i)] = x(i, j);
      v_sq += abs_sq(x(i, j));
    }
    const Real beta = v_sq > Real{0} ? Real{2} / v_sq : Real{0};
    out(j, j) = alpha;

    // Same two-pass row-major reflector application as the dense
    // factorization: w = beta (v^H [R_row; X_t]), then the rank-1 update.
    const index_t lw = n - j - 1;
    if (lw > 0) {
      T* wp = w2.data();
      std::fill(wp, wp + lw, T{});
      axpy_row(conj_val(v0), &out(j, j + 1), wp, lw);
      for (index_t i = 0; i < k; ++i)
        axpy_row(conj_val(v[static_cast<size_t>(i)]), &x(i, j + 1), wp, lw);
      for (index_t c = 0; c < lw; ++c) wp[c] *= beta;
      axpy_row(T{-v0}, wp, &out(j, j + 1), lw);
      for (index_t i = 0; i < k; ++i)
        axpy_row(T{-v[static_cast<size_t>(i)]}, wp, &x(i, j + 1), lw);
    }
    flops += 2 * static_cast<std::uint64_t>(k + 1);
    flops += 2 * fma_flops<T>() * static_cast<std::uint64_t>(k + 1) *
             static_cast<std::uint64_t>(n - j - 1);
  }
  count_flops(flops);
  return out;
}

template <typename T>
double append_column_norm_residual(const Matrix<T>& r_old,
                                   const Matrix<T>& x,
                                   const Matrix<T>& r_new) {
  const index_t n = r_old.rows();
  PPSTAP_REQUIRE(r_new.rows() == n && r_new.cols() == n && r_old.cols() == n,
                 "R factors must be n x n in append_column_norm_residual");
  PPSTAP_REQUIRE(x.cols() == n, "appended rows must have R's column count");
  double worst = 0.0;
  for (index_t j = 0; j < n; ++j) {
    double before = 0.0;
    for (index_t i = 0; i <= j; ++i)
      before += static_cast<double>(abs_sq(r_old(i, j)));
    for (index_t i = 0; i < x.rows(); ++i)
      before += static_cast<double>(abs_sq(x(i, j)));
    double after = 0.0;
    for (index_t i = 0; i <= j; ++i)
      after += static_cast<double>(abs_sq(r_new(i, j)));
    const double bn = std::sqrt(before);
    const double an = std::sqrt(after);
    if (!std::isfinite(an))
      return std::numeric_limits<double>::infinity();
    const double dev = std::abs(an - bn) / std::max(bn, 1e-30);
    worst = std::max(worst, dev);
  }
  return worst;
}

template class QrFactorization<cfloat>;
template class QrFactorization<cdouble>;
template class QrFactorization<float>;
template class QrFactorization<double>;
template void back_substitute<cfloat>(const Matrix<cfloat>&, Matrix<cfloat>&);
template void back_substitute<cdouble>(const Matrix<cdouble>&,
                                       Matrix<cdouble>&);
template void back_substitute<float>(const Matrix<float>&, Matrix<float>&);
template void back_substitute<double>(const Matrix<double>&, Matrix<double>&);
template Matrix<cfloat> least_squares<cfloat>(const Matrix<cfloat>&,
                                              const Matrix<cfloat>&);
template Matrix<cdouble> least_squares<cdouble>(const Matrix<cdouble>&,
                                                const Matrix<cdouble>&);
template Matrix<float> least_squares<float>(const Matrix<float>&,
                                            const Matrix<float>&);
template Matrix<double> least_squares<double>(const Matrix<double>&,
                                              const Matrix<double>&);
template double triangular_condition_estimate<cfloat>(const Matrix<cfloat>&);
template double triangular_condition_estimate<cdouble>(const Matrix<cdouble>&);
template double triangular_condition_estimate<float>(const Matrix<float>&);
template double triangular_condition_estimate<double>(const Matrix<double>&);
template Matrix<cfloat> qr_append_rows<cfloat>(const Matrix<cfloat>&,
                                               Matrix<cfloat>);
template Matrix<cdouble> qr_append_rows<cdouble>(const Matrix<cdouble>&,
                                                 Matrix<cdouble>);
template Matrix<float> qr_append_rows<float>(const Matrix<float>&,
                                             Matrix<float>);
template Matrix<double> qr_append_rows<double>(const Matrix<double>&,
                                               Matrix<double>);
template double append_column_norm_residual<cfloat>(const Matrix<cfloat>&,
                                                    const Matrix<cfloat>&,
                                                    const Matrix<cfloat>&);
template double append_column_norm_residual<cdouble>(const Matrix<cdouble>&,
                                                     const Matrix<cdouble>&,
                                                     const Matrix<cdouble>&);
template double append_column_norm_residual<float>(const Matrix<float>&,
                                                   const Matrix<float>&,
                                                   const Matrix<float>&);
template double append_column_norm_residual<double>(const Matrix<double>&,
                                                    const Matrix<double>&,
                                                    const Matrix<double>&);

}  // namespace ppstap::linalg
