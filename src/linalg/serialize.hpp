// Binary matrix serialization (for adaptive-state checkpointing).
#pragma once

#include <iosfwd>

#include "linalg/matrix.hpp"

namespace ppstap::linalg {

/// Write `m` as (rows, cols, row-major payload) with a small type header.
template <typename T>
void write_matrix(std::ostream& os, const Matrix<T>& m);

/// Read a matrix of exactly element type T; throws on header or length
/// mismatch.
template <typename T>
Matrix<T> read_matrix(std::istream& is);

extern template void write_matrix<cfloat>(std::ostream&,
                                          const Matrix<cfloat>&);
extern template void write_matrix<cdouble>(std::ostream&,
                                           const Matrix<cdouble>&);
extern template Matrix<cfloat> read_matrix<cfloat>(std::istream&);
extern template Matrix<cdouble> read_matrix<cdouble>(std::istream&);

}  // namespace ppstap::linalg
