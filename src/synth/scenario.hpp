// Synthetic radar scenes standing in for live RTMCARM CPI data.
//
// The physics: a side-looking airborne radar sees ground clutter whose
// Doppler frequency is proportional to sin(azimuth) — the classic clutter
// "ridge" in the angle-Doppler plane. STAP's whole purpose is to null that
// ridge while preserving gain on targets displaced from it. We synthesize
// the ridge as a sum of independent clutter patches, add thermal noise and
// point targets, and (optionally) convolve the scene with the transmit
// chirp along range so pulse compression has real work to do.
//
// Patch geometry is fixed across CPIs while patch amplitudes redraw each
// CPI: the clutter *statistics* are stationary (which the paper's
// train-on-previous-CPIs scheme requires) but realizations differ.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "cube/cube.hpp"

namespace ppstap::synth {

/// A point target at a given range cell, normalized Doppler and azimuth.
struct Target {
  index_t range_cell = 0;
  double doppler_norm = 0.25;  ///< cycles per PRI in [-0.5, 0.5)
  double azimuth_rad = 0.0;
  double snr_db = 20.0;  ///< per-element, per-pulse SNR before any gain
};

/// A broadband noise jammer: spatially coherent (fixed azimuth), white
/// across pulses and range — it fills every Doppler bin at one angle, the
/// classic case where spatial-only nulling suffices (paper §1:
/// "interference").
struct Jammer {
  double azimuth_rad = 0.0;
  double jnr_db = 30.0;  ///< jammer-to-noise ratio per element sample
};

/// Ground clutter ridge model.
struct ClutterModel {
  index_t num_patches = 32;   ///< discrete azimuth patches across the ridge
  double cnr_db = 40.0;       ///< total clutter-to-noise ratio per sample
  double doppler_slope = 1.0; ///< beta: f = 0.5 * beta * sin(azimuth)
  double azimuth_span_rad = 3.14159265358979 * 2.0 / 3.0;  ///< +-60 degrees
};

struct ScenarioParams {
  index_t num_range = 512;     ///< K
  index_t num_channels = 16;   ///< J
  index_t num_pulses = 128;    ///< N
  double noise_power = 1.0;
  ClutterModel clutter;
  std::vector<Target> targets;
  std::vector<Jammer> jammers;
  index_t chirp_length = 32;   ///< transmit pulse extent in range cells;
                               ///< 0 disables waveform spreading
  /// Transmit beam cycling (paper §3: five 25-degree transmit beams,
  /// 20 degrees apart, revisited in turn): if non-empty, CPI i is
  /// illuminated by the beam centered at transmit_azimuths[i % size()]
  /// with a cos^2 mainlobe of transmit_beam_width_rad and a -40 dB
  /// sidelobe floor; clutter patches and targets are attenuated by the
  /// two-way transmit gain toward their azimuth. Empty = omnidirectional.
  std::vector<double> transmit_azimuths;
  double transmit_beam_width_rad = 25.0 * 3.14159265358979 / 180.0;
  std::uint64_t seed = 0x5741505354ULL;  // "STAPW"
};

/// Deterministic CPI stream generator: generate(i) always returns the same
/// cube for the same (params, i), so distributed consumers can re-derive
/// their partition of the input independently.
class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(ScenarioParams params);

  const ScenarioParams& params() const { return params_; }

  /// The transmit replica used to spread the scene (empty if disabled).
  const std::vector<cfloat>& replica() const { return replica_; }

  /// Generate CPI number `cpi_index` as a K x J x N cube, pulses unit
  /// stride (the corner-turned layout of the paper's interface boards).
  cube::CpiCube generate(index_t cpi_index) const;

  /// Amplitude gain of the transmit beam active on CPI `cpi_index` toward
  /// `azimuth_rad` (1.0 when transmit cycling is disabled).
  double transmit_gain(index_t cpi_index, double azimuth_rad) const;

 private:
  ScenarioParams params_;
  std::vector<cfloat> replica_;
  // Fixed patch geometry: per-patch spatial (J) and temporal (N) responses
  // and amplitude scale.
  std::vector<std::vector<cfloat>> patch_spatial_;
  std::vector<std::vector<cfloat>> patch_temporal_;
  std::vector<double> patch_doppler_;
  double patch_sigma_ = 0.0;

  std::vector<double> patch_azimuth_;

  void add_clutter(cube::CpiCube& cpi, index_t cpi_index, Rng& rng) const;
  void add_jammers(cube::CpiCube& cpi, Rng& rng) const;
  void add_noise(cube::CpiCube& cpi, Rng& rng) const;
  void add_targets(cube::CpiCube& cpi, index_t cpi_index) const;
  void spread_with_chirp(cube::CpiCube& cpi) const;
};

}  // namespace ppstap::synth
