#include "synth/scenario.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"
#include "dsp/fft.hpp"
#include "dsp/waveform.hpp"
#include "synth/steering.hpp"

namespace ppstap::synth {

ScenarioGenerator::ScenarioGenerator(ScenarioParams params)
    : params_(std::move(params)) {
  const auto& p = params_;
  PPSTAP_REQUIRE(p.num_range >= 1 && p.num_channels >= 1 && p.num_pulses >= 1,
                 "scenario dimensions must be positive");
  PPSTAP_REQUIRE(p.chirp_length <= p.num_range,
                 "chirp cannot exceed the range window");
  for (const auto& t : p.targets)
    PPSTAP_REQUIRE(t.range_cell >= 0 && t.range_cell < p.num_range,
                   "target range cell out of bounds");

  if (p.chirp_length > 0) replica_ = dsp::lfm_chirp(p.chirp_length);

  // Fixed clutter geometry: patches evenly spaced in sin(azimuth) across the
  // ridge, each with a spatial and a temporal signature tied by the slope.
  const index_t c = p.clutter.num_patches;
  if (c > 0) {
    patch_spatial_.reserve(static_cast<size_t>(c));
    patch_temporal_.reserve(static_cast<size_t>(c));
    patch_doppler_.reserve(static_cast<size_t>(c));
    const double half = p.clutter.azimuth_span_rad / 2.0;
    for (index_t i = 0; i < c; ++i) {
      const double frac =
          c == 1 ? 0.5
                 : static_cast<double>(i) / static_cast<double>(c - 1);
      const double az = -half + 2.0 * half * frac;
      const double f = 0.5 * p.clutter.doppler_slope * std::sin(az);
      patch_spatial_.push_back(spatial_steering(p.num_channels, az));
      patch_temporal_.push_back(temporal_steering(p.num_pulses, f));
      patch_doppler_.push_back(f);
      patch_azimuth_.push_back(az);
    }
    const double cnr_power =
        p.noise_power * std::pow(10.0, p.clutter.cnr_db / 10.0);
    patch_sigma_ = std::sqrt(cnr_power / static_cast<double>(c));
  }
}

double ScenarioGenerator::transmit_gain(index_t cpi_index,
                                        double azimuth_rad) const {
  if (params_.transmit_azimuths.empty()) return 1.0;
  const double center = params_.transmit_azimuths[static_cast<size_t>(
      cpi_index % static_cast<index_t>(params_.transmit_azimuths.size()))];
  const double delta = azimuth_rad - center;
  const double half = params_.transmit_beam_width_rad / 2.0;
  constexpr double kSidelobeFloor = 0.01;  // -40 dB in amplitude
  if (std::abs(delta) >= half) return kSidelobeFloor;
  const double g =
      std::cos(std::numbers::pi / 2.0 * delta / half);
  return std::max(g * g, kSidelobeFloor);
}

void ScenarioGenerator::add_clutter(cube::CpiCube& cpi, index_t cpi_index,
                                    Rng& rng) const {
  const auto& p = params_;
  const index_t c = static_cast<index_t>(patch_spatial_.size());
  for (index_t k = 0; k < p.num_range; ++k) {
    for (index_t pc = 0; pc < c; ++pc) {
      const double tx = transmit_gain(
          cpi_index, patch_azimuth_[static_cast<size_t>(pc)]);
      const cdouble gamma = rng.cnormal() * (patch_sigma_ * tx);
      const cfloat g(static_cast<float>(gamma.real()),
                     static_cast<float>(gamma.imag()));
      const auto& a = patch_spatial_[static_cast<size_t>(pc)];
      const auto& d = patch_temporal_[static_cast<size_t>(pc)];
      for (index_t j = 0; j < p.num_channels; ++j) {
        const cfloat ga = g * a[static_cast<size_t>(j)];
        auto line = cpi.line(k, j);
        for (index_t n = 0; n < p.num_pulses; ++n)
          line[static_cast<size_t>(n)] += ga * d[static_cast<size_t>(n)];
      }
    }
  }
}

void ScenarioGenerator::add_jammers(cube::CpiCube& cpi, Rng& rng) const {
  const auto& p = params_;
  for (const auto& jam : p.jammers) {
    // Spatially coherent, temporally white: one fresh complex amplitude
    // per (range cell, pulse) applied across the array through the
    // jammer's steering vector. Jammers radiate continuously, so no
    // transmit-beam gain applies.
    const double sigma =
        std::sqrt(p.noise_power) * std::pow(10.0, jam.jnr_db / 20.0);
    const auto a = spatial_steering(p.num_channels, jam.azimuth_rad);
    for (index_t k = 0; k < p.num_range; ++k)
      for (index_t n = 0; n < p.num_pulses; ++n) {
        const cdouble z = rng.cnormal() * sigma;
        const cfloat g(static_cast<float>(z.real()),
                       static_cast<float>(z.imag()));
        for (index_t j = 0; j < p.num_channels; ++j)
          cpi.at(k, j, n) += g * a[static_cast<size_t>(j)];
      }
  }
}

void ScenarioGenerator::add_noise(cube::CpiCube& cpi, Rng& rng) const {
  const double sigma = std::sqrt(params_.noise_power);
  cfloat* data = cpi.data();
  const index_t total = cpi.size();
  for (index_t i = 0; i < total; ++i) {
    const cdouble z = rng.cnormal() * sigma;
    data[i] += cfloat(static_cast<float>(z.real()),
                      static_cast<float>(z.imag()));
  }
}

void ScenarioGenerator::add_targets(cube::CpiCube& cpi,
                                    index_t cpi_index) const {
  const auto& p = params_;
  for (const auto& t : p.targets) {
    const double amp = std::sqrt(p.noise_power) *
                       std::pow(10.0, t.snr_db / 20.0) *
                       transmit_gain(cpi_index, t.azimuth_rad);
    const auto a = spatial_steering(p.num_channels, t.azimuth_rad);
    const auto d = temporal_steering(p.num_pulses, t.doppler_norm);
    for (index_t j = 0; j < p.num_channels; ++j) {
      const cfloat aj = static_cast<float>(amp) * a[static_cast<size_t>(j)];
      auto line = cpi.line(t.range_cell, j);
      for (index_t n = 0; n < p.num_pulses; ++n)
        line[static_cast<size_t>(n)] += aj * d[static_cast<size_t>(n)];
    }
  }
}

void ScenarioGenerator::spread_with_chirp(cube::CpiCube& cpi) const {
  const auto& p = params_;
  if (replica_.empty()) return;
  // Circular convolution along range per (channel, pulse): consistent with
  // the K-point-FFT pulse compression the pipeline performs (paper §5.4).
  const index_t k_fft = p.num_range;
  dsp::FftPlan<float> fwd(k_fft, dsp::FftDirection::kForward);
  dsp::FftPlan<float> inv(k_fft, dsp::FftDirection::kInverse);
  std::vector<cfloat> replica_spec(static_cast<size_t>(k_fft), cfloat{});
  std::copy(replica_.begin(), replica_.end(), replica_spec.begin());
  fwd.execute(replica_spec);

  std::vector<cfloat> column(static_cast<size_t>(k_fft));
  for (index_t j = 0; j < p.num_channels; ++j)
    for (index_t n = 0; n < p.num_pulses; ++n) {
      for (index_t k = 0; k < p.num_range; ++k)
        column[static_cast<size_t>(k)] = cpi.at(k, j, n);
      fwd.execute(column);
      for (index_t k = 0; k < k_fft; ++k)
        column[static_cast<size_t>(k)] *= replica_spec[static_cast<size_t>(k)];
      inv.execute(column);
      for (index_t k = 0; k < p.num_range; ++k)
        cpi.at(k, j, n) = column[static_cast<size_t>(k)];
    }
}

cube::CpiCube ScenarioGenerator::generate(index_t cpi_index) const {
  const auto& p = params_;
  cube::CpiCube cpi(p.num_range, p.num_channels, p.num_pulses);
  Rng rng = Rng(p.seed).fork(static_cast<std::uint64_t>(cpi_index));

  add_clutter(cpi, cpi_index, rng);
  add_targets(cpi, cpi_index);
  spread_with_chirp(cpi);  // clutter+targets pass through the transmit pulse
  add_jammers(cpi, rng);   // jammers do not carry the transmit waveform
  add_noise(cpi, rng);     // receiver noise is added after the waveform
  return cpi;
}

}  // namespace ppstap::synth
