#include "synth/steering.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace ppstap::synth {

std::vector<cfloat> spatial_steering(index_t num_channels, double theta_rad) {
  PPSTAP_REQUIRE(num_channels >= 1, "need at least one channel");
  std::vector<cfloat> a(static_cast<size_t>(num_channels));
  const double phase_step = std::numbers::pi * std::sin(theta_rad);
  for (index_t j = 0; j < num_channels; ++j) {
    const double ang = phase_step * static_cast<double>(j);
    a[static_cast<size_t>(j)] =
        cfloat(static_cast<float>(std::cos(ang)),
               static_cast<float>(std::sin(ang)));
  }
  return a;
}

std::vector<cfloat> temporal_steering(index_t num_pulses, double f) {
  PPSTAP_REQUIRE(num_pulses >= 1, "need at least one pulse");
  std::vector<cfloat> d(static_cast<size_t>(num_pulses));
  for (index_t n = 0; n < num_pulses; ++n) {
    const double ang = 2.0 * std::numbers::pi * f * static_cast<double>(n);
    d[static_cast<size_t>(n)] =
        cfloat(static_cast<float>(std::cos(ang)),
               static_cast<float>(std::sin(ang)));
  }
  return d;
}

double beam_azimuth(index_t num_beams, index_t m, double center_rad,
                    double span_rad) {
  PPSTAP_REQUIRE(m >= 0 && m < num_beams, "beam index out of range");
  if (num_beams == 1) return center_rad;
  const double lo = center_rad - span_rad / 2.0;
  return lo + span_rad * static_cast<double>(m) /
                  static_cast<double>(num_beams - 1);
}

linalg::MatrixCF steering_matrix(index_t num_channels, index_t num_beams,
                                 double center_rad, double span_rad) {
  linalg::MatrixCF s(num_channels, num_beams);
  for (index_t m = 0; m < num_beams; ++m) {
    const auto a = spatial_steering(
        num_channels, beam_azimuth(num_beams, m, center_rad, span_rad));
    for (index_t j = 0; j < num_channels; ++j)
      s(j, m) = a[static_cast<size_t>(j)];
  }
  return s;
}

}  // namespace ppstap::synth
