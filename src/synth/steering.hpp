// Array steering vectors for a uniform linear array (ULA).
//
// The RTMCARM radar processed 16 channels of an L-band phased array; we model
// those channels as a half-wavelength ULA. Spatial steering toward azimuth
// theta gives element phases exp(j pi j sin(theta)); temporal (Doppler)
// steering at normalized frequency f gives pulse phases exp(j 2 pi f n).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace ppstap::synth {

/// Spatial steering vector of a J-element half-wavelength ULA toward
/// azimuth `theta_rad` (broadside = 0).
std::vector<cfloat> spatial_steering(index_t num_channels, double theta_rad);

/// Temporal steering vector over `num_pulses` at normalized Doppler
/// `f` (cycles per PRI, in [-0.5, 0.5)).
std::vector<cfloat> temporal_steering(index_t num_pulses, double f);

/// J x M matrix whose columns are the steering vectors of the M receive
/// beams, evenly spaced across `span_rad` centered at `center_rad` (the
/// paper forms 6 receive beams within each 25-degree transmit beam).
linalg::MatrixCF steering_matrix(index_t num_channels, index_t num_beams,
                                 double center_rad, double span_rad);

/// The azimuth of receive beam `m` under the same spacing rule.
double beam_azimuth(index_t num_beams, index_t m, double center_rad,
                    double span_rad);

}  // namespace ppstap::synth
