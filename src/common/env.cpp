#include "common/env.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/check.hpp"

namespace ppstap {

namespace {

// getenv with "empty means unset" semantics; also trims surrounding
// whitespace so `VAR=" 3 "` parses like `VAR=3`.
std::optional<std::string> env_text(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return std::nullopt;
  std::string s(raw);
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  s = s.substr(b, e - b);
  if (s.empty()) return std::nullopt;
  return s;
}

[[noreturn]] void bad_value(const char* name, const std::string& text,
                            const std::string& expected) {
  throw Error(std::string(name) + ": invalid value '" + text +
              "' (expected " + expected + ")");
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

std::optional<double> parse_env_double(const char* name, double lo,
                                       double hi) {
  const auto text = env_text(name);
  if (!text) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text->c_str(), &end);
  if (end == text->c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v))
    bad_value(name, *text, "a finite number");
  if (v < lo || v > hi)
    bad_value(name, *text,
              "a number in [" + std::to_string(lo) + ", " +
                  std::to_string(hi) + "]");
  return v;
}

std::optional<long long> parse_env_int(const char* name, long long lo,
                                       long long hi) {
  const auto text = env_text(name);
  if (!text) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text->c_str(), &end, 10);
  if (end == text->c_str() || *end != '\0' || errno == ERANGE)
    bad_value(name, *text, "an integer");
  if (v < lo || v > hi)
    bad_value(name, *text,
              "an integer in [" + std::to_string(lo) + ", " +
                  std::to_string(hi) + "]");
  return v;
}

std::optional<bool> parse_env_flag(const char* name) {
  const auto text = env_text(name);
  if (!text) return std::nullopt;
  const std::string v = lower(*text);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  bad_value(name, *text, "one of 1/0, true/false, yes/no, on/off");
}

std::optional<size_t> parse_env_choice(
    const char* name, std::initializer_list<const char*> choices) {
  const auto text = env_text(name);
  if (!text) return std::nullopt;
  const std::string v = lower(*text);
  size_t i = 0;
  std::string expected = "one of";
  for (const char* c : choices) {
    if (v == lower(c)) return i;
    expected += (i == 0 ? " " : ", ");
    expected += c;
    ++i;
  }
  bad_value(name, *text, expected);
}

}  // namespace ppstap
