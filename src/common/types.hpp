// Core scalar types used across the library.
//
// CPI sample data is single-precision complex (matching the 16-bit baseband
// data of the RTMCARM radar after conversion); adaptive-weight linear algebra
// may be instantiated in double precision where tests require it.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace ppstap {

using cfloat = std::complex<float>;
using cdouble = std::complex<double>;

using index_t = std::ptrdiff_t;

/// Number of real floating point values in one element of T (1 for real
/// scalars, 2 for std::complex).
template <typename T>
inline constexpr int real_dof = 1;
template <typename T>
inline constexpr int real_dof<std::complex<T>> = 2;

}  // namespace ppstap
