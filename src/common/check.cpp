#include "common/check.hpp"

#include <sstream>

namespace ppstap::detail {

void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& msg) {
  std::ostringstream os;
  os << "ppstap " << kind << " failed: (" << expr << ") at " << file << ":"
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace ppstap::detail
