// Error handling for the ppstap library.
//
// PPSTAP_REQUIRE is used for argument/precondition validation on public API
// entry points; PPSTAP_CHECK for internal invariants. Both throw
// ppstap::Error carrying the failing expression and source location, so a
// violated contract is diagnosable from the exception alone.
#pragma once

#include <stdexcept>
#include <string>

namespace ppstap {

/// Exception thrown on any contract violation inside the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& msg);
}  // namespace detail

}  // namespace ppstap

#define PPSTAP_REQUIRE(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::ppstap::detail::fail("precondition", #expr, __FILE__, __LINE__,     \
                             (msg));                                        \
    }                                                                       \
  } while (0)

#define PPSTAP_CHECK(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::ppstap::detail::fail("invariant", #expr, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (0)
