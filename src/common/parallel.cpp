#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/flops.hpp"

namespace ppstap {

void parallel_for_blocks(index_t threads, index_t total,
                         const std::function<void(index_t, index_t)>& fn) {
  PPSTAP_REQUIRE(threads >= 1, "need at least one thread");
  PPSTAP_REQUIRE(total >= 0, "iteration count must be nonnegative");
  if (total == 0) return;
  const index_t used = std::min(threads, total);
  if (used == 1) {
    fn(0, total);
    return;
  }

  const index_t base = total / used;
  const index_t rem = total % used;
  const auto bounds = [&](index_t i) {
    const index_t begin = i * base + std::min(i, rem);
    return std::pair<index_t, index_t>{begin,
                                       begin + base + (i < rem ? 1 : 0)};
  };

  // The flop counter is thread-local; when the caller is instrumented, each
  // worker runs under its own FlopScope and the counts fold back into the
  // caller after the join, so totals are thread-count invariant.
  const bool count_enabled = detail::flop_state().enabled;
  std::atomic<std::uint64_t> worker_flops{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(used - 1));
  for (index_t i = 1; i < used; ++i) {
    const auto [begin, end] = bounds(i);
    workers.emplace_back([&, begin = begin, end = end] {
      try {
        if (count_enabled) {
          FlopScope scope;
          fn(begin, end);
          worker_flops.fetch_add(scope.count(), std::memory_order_relaxed);
        } else {
          fn(begin, end);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  const auto [begin0, end0] = bounds(0);
  try {
    fn(begin0, end0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(err_mu);
    if (!first_error) first_error = std::current_exception();
  }
  for (auto& w : workers) w.join();
  count_flops(worker_flops.load(std::memory_order_relaxed));
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ppstap
