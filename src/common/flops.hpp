// Instrumented floating-point operation counting.
//
// The paper's Table 1 reports the number of floating point operations each
// STAP task performs on one CPI. To reproduce that table honestly the
// numerical kernels in this library report the operations they actually
// execute through a thread-local counter. Counting is enabled only inside a
// FlopScope so production runs pay a single predictable branch.
#pragma once

#include <cstdint>

namespace ppstap {

namespace detail {
struct FlopState {
  bool enabled = false;
  std::uint64_t count = 0;
};
FlopState& flop_state();
}  // namespace detail

/// Record `n` floating point operations on the calling thread (no-op unless
/// a FlopScope is active on this thread).
inline void count_flops(std::uint64_t n) {
  auto& s = detail::flop_state();
  if (s.enabled) s.count += n;
}

/// RAII region that enables flop counting on the current thread and exposes
/// the number of operations executed since construction.
class FlopScope {
 public:
  FlopScope();
  ~FlopScope();
  FlopScope(const FlopScope&) = delete;
  FlopScope& operator=(const FlopScope&) = delete;

  /// Operations counted since this scope began.
  std::uint64_t count() const;

 private:
  bool prev_enabled_;
  std::uint64_t start_;
};

}  // namespace ppstap
