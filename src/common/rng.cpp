#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace ppstap {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  // Box–Muller; u1 is kept away from 0 so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_ = r * std::sin(theta);
  have_cached_ = true;
  return r * std::cos(theta);
}

cdouble Rng::cnormal() {
  // Each quadrature has variance 1/2 so E|z|^2 = 1.
  const double s = std::numbers::sqrt2 / 2.0;
  return {s * normal(), s * normal()};
}

Rng Rng::fork(std::uint64_t salt) const {
  // Mix the salt through one SplitMix64 step of a copy so forked streams do
  // not overlap for distinct salts.
  Rng child(state_ ^ (0x5851f42d4c957f2dULL * (salt + 1)));
  (void)child.next_u64();
  return child;
}

}  // namespace ppstap
