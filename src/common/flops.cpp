#include "common/flops.hpp"

namespace ppstap {

namespace detail {
FlopState& flop_state() {
  thread_local FlopState state;
  return state;
}
}  // namespace detail

FlopScope::FlopScope() {
  auto& s = detail::flop_state();
  prev_enabled_ = s.enabled;
  s.enabled = true;
  start_ = s.count;
}

FlopScope::~FlopScope() { detail::flop_state().enabled = prev_enabled_; }

std::uint64_t FlopScope::count() const {
  return detail::flop_state().count - start_;
}

}  // namespace ppstap
