// Intra-task data parallelism (paper §8 future work: "multi-threading ...
// and multiple processors on each compute node").
//
// The Paragon's compute nodes carried three i860s on shared memory; the
// flight deployment used them as a small SMP. parallel_for_blocks gives the
// task kernels the same option: the iteration space splits into contiguous
// blocks, one per thread, so every thread writes a disjoint output slab and
// results are bitwise identical to the sequential run for any thread count.
//
// Threads are spawned per call. That is deliberate: calls happen once per
// kernel per CPI (not per element), the kernels run inside rank threads of
// the pipeline (a shared pool would serialize unrelated ranks), and spawn
// cost is microseconds against kernel times of milliseconds.
//
// Flop accounting: when the caller is inside a FlopScope, each worker runs
// under its own scope and the per-worker counts are summed into the caller's
// thread-local counter on join, so instrumented runs see the same totals at
// any thread count.
#pragma once

#include <functional>

#include "common/types.hpp"

namespace ppstap {

/// Run fn(begin, end) over a block partition of [0, total) on `threads`
/// threads (the calling thread executes the first block). threads <= 1 or
/// total == 0 degrades to a plain call. Exceptions from worker blocks are
/// rethrown on the caller (first one wins).
void parallel_for_blocks(index_t threads, index_t total,
                         const std::function<void(index_t, index_t)>& fn);

}  // namespace ppstap
