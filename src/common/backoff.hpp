// Adaptive spin -> yield -> sleep backoff for idle polling loops.
//
// A fixed-interval poll burns a constant CPU wakeup rate no matter how long
// the wait turns out to be. This ladder starts with a handful of pure spins
// (an event a few hundred nanoseconds away costs nothing), escalates to
// sched-yields, then to sleeps that double from a small seed up to `cap`
// and beyond it to `max_stretch * cap` once the wait has proven to be long.
// reset() drops back to spinning after an event so reaction latency stays
// sharp when the loop is busy.
#pragma once

#include <algorithm>
#include <cstdint>
#include <thread>

namespace ppstap {

class Backoff {
 public:
  /// `cap_seconds` is the configured steady-state poll interval (e.g.
  /// PPSTAP_FAULT_POLL); after prolonged idleness the sleep stretches to
  /// `max_stretch` times that, bounding the idle wakeup rate.
  explicit Backoff(double cap_seconds, double max_stretch = 50.0)
      : cap_(cap_seconds > 0.0 ? cap_seconds : 1e-3),
        limit_(std::max(cap_, cap_ * max_stretch)) {}

  /// Current sleep budget in seconds: 0 while still in the spin/yield
  /// phases (the caller should poll immediately), growing once asleep.
  double next_timeout() const {
    if (round_ < kSpinRounds + kYieldRounds) return 0.0;
    return sleep_;
  }

  /// One idle iteration: spin, yield, or account a completed timed wait
  /// (the caller is expected to have slept via its own timed primitive for
  /// next_timeout() seconds when that was nonzero).
  void idle() {
    ++wakeups_;
    if (round_ < kSpinRounds) {
      // spin: fall straight through to the next poll
    } else if (round_ < kSpinRounds + kYieldRounds) {
      std::this_thread::yield();
    } else {
      sleep_ = std::min(limit_, sleep_ * 2.0);
    }
    ++round_;
  }

  /// An event fired: return to the responsive end of the ladder.
  void reset() {
    round_ = 0;
    sleep_ = kSeedSleep;
  }

  /// Deterministically jittered exponential retry delay for bounded retry
  /// loops (e.g. the transport's retransmission path): attempt N (1-based)
  /// sleeps seed * 2^(N-1) capped at `cap_seconds`, scaled by a jitter
  /// factor in [0.75, 1.25) derived from (salt, attempt). The jitter
  /// decorrelates retries that would otherwise fire in lock-step (several
  /// receivers refetching from one sender), and the determinism keeps
  /// seeded fault-injection runs replayable.
  static double retry_delay(int attempt, std::uint64_t salt,
                            double seed_seconds = 50e-6,
                            double cap_seconds = 2e-3) {
    if (attempt < 1) attempt = 1;
    double d = seed_seconds;
    for (int i = 1; i < attempt && d < cap_seconds; ++i) d *= 2.0;
    d = std::min(d, cap_seconds);
    std::uint64_t h = salt * 0x9e3779b97f4a7c15ull +
                      static_cast<std::uint64_t>(attempt) * 0xbf58476d1ce4e5b9ull;
    h ^= h >> 31;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 29;
    const double jitter = 0.75 + 0.5 * static_cast<double>(h >> 40) /
                                     static_cast<double>(1ull << 24);
    return d * jitter;
  }

  /// Total idle iterations since construction (monotone across resets) —
  /// the measurable "poll wakeups" a fixed-interval loop would multiply.
  std::uint64_t wakeups() const { return wakeups_; }

 private:
  static constexpr int kSpinRounds = 16;
  static constexpr int kYieldRounds = 16;
  static constexpr double kSeedSleep = 50e-6;

  double cap_;
  double limit_;
  int round_ = 0;
  double sleep_ = kSeedSleep;
  std::uint64_t wakeups_ = 0;
};

}  // namespace ppstap
