// Deterministic random number generation for synthetic radar scenes.
//
// All scenario generation is seeded, so every test, example, and benchmark
// sees an identical CPI stream for a given seed regardless of the order in
// which threads consume the data.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace ppstap {

/// SplitMix64-based generator with explicit, portable normal/uniform
/// sampling (independent of libstdc++ distribution internals).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64).
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (uses two uniforms per pair; caches the
  /// second sample).
  double normal();

  /// Complex circular Gaussian with E|z|^2 = 1.
  cdouble cnormal();

  /// Derive an independent stream (e.g. one per range cell or per CPI).
  Rng fork(std::uint64_t salt) const;

 private:
  std::uint64_t state_;
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace ppstap
