// Payload checksum shared by the transport layer and the ABFT digest path.
//
// One implementation serves two consumers: comm::World stamps every frame
// with it to catch the corruption injector's byte flips (PR 2), and the
// integrity layer (PR 5) reuses it for per-CPI, per-task digests so the
// sink can attribute an end-to-end mismatch to the producing task. Keeping
// both on the same function means a digest computed over the bytes a sender
// handed to the transport is directly comparable to one computed over the
// bytes the receiver got back.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace ppstap {

/// Word-wise rotate-xor checksum of a payload. Not cryptographic — it only
/// needs to catch single-bit and single-byte flips, which it does for any
/// payload (a flip changes exactly one word before a chain of
/// injective rotate-xor mixes).
inline std::uint64_t checksum_bytes(std::span<const std::byte> b) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ b.size();
  std::size_t i = 0;
  for (; i + 8 <= b.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, b.data() + i, 8);
    h = (h << 7 | h >> 57) ^ w;
  }
  if (i < b.size()) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, b.data() + i, b.size() - i);
    h = (h << 7 | h >> 57) ^ tail;
  }
  return h;
}

/// Checksum of a typed trivially-copyable buffer, viewed as raw bytes.
template <typename T>
std::uint64_t checksum_of(std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>,
                "checksum_of needs a bitwise-hashable element type");
  return checksum_bytes(std::as_bytes(data));
}

}  // namespace ppstap
