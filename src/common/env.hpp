// Hardened PPSTAP_* environment parsing.
//
// Every runtime knob read from the environment goes through these helpers
// instead of atoi/atof: a garbage or out-of-range value throws ppstap::Error
// naming the variable and the offending text, instead of silently parsing
// to zero and disabling (or mis-tuning) the feature the operator asked for.
// An unset or empty variable is "not configured" (nullopt), never an error.
#pragma once

#include <limits>
#include <optional>
#include <string>

#include "common/types.hpp"

namespace ppstap {

/// Parse env var `name` as a double in [lo, hi]. Returns nullopt when the
/// variable is unset or empty; throws Error on garbage, non-finite input,
/// or a value outside the range.
std::optional<double> parse_env_double(
    const char* name, double lo = -std::numeric_limits<double>::max(),
    double hi = std::numeric_limits<double>::max());

/// Parse env var `name` as a (decimal) integer in [lo, hi]. Returns nullopt
/// when unset or empty; throws Error on garbage or out-of-range input.
std::optional<long long> parse_env_int(
    const char* name,
    long long lo = std::numeric_limits<long long>::min(),
    long long hi = std::numeric_limits<long long>::max());

/// Parse env var `name` as a boolean flag: 1/0, true/false, yes/no, on/off
/// (case-insensitive). Returns nullopt when unset or empty; throws Error on
/// anything else.
std::optional<bool> parse_env_flag(const char* name);

/// Parse env var `name` against a fixed set of case-insensitive choices
/// (e.g. {"throttle", "reject"}); returns the matched index. nullopt when
/// unset or empty; throws Error listing the choices otherwise.
std::optional<size_t> parse_env_choice(
    const char* name, std::initializer_list<const char*> choices);

}  // namespace ppstap
