// Wall-clock timer mirroring the paper's use of MPI_Wtime() in Figure 10.
#pragma once

#include <chrono>

namespace ppstap {

/// Monotonic wall-clock timer with seconds-resolution double output.
///
/// The time base is std::chrono::steady_clock — a monotonic clock with an
/// *unspecified* epoch (typically boot time), NOT the wall (UTC) epoch.
/// Like MPI_Wtime(), only differences between two now() values are
/// meaningful; absolute values are not comparable across processes or
/// reboots. Every timestamp in the repo — Figure-10 phase timing,
/// obs trace spans, latency measurement — uses this one consistent
/// monotonic base, so spans and phase times can be subtracted freely.
class WallTimer {
 public:
  /// The underlying clock. steady_clock by contract (asserted in tests):
  /// monotonic and immune to wall-clock adjustments.
  using clock = std::chrono::steady_clock;
  static_assert(clock::is_steady, "WallTimer requires a monotonic clock");

  WallTimer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

  /// Seconds since the steady_clock epoch, analogous to MPI_Wtime():
  /// meaningful only as a difference against another now() value.
  static double now() {
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
  }

 private:
  clock::time_point start_;
};

}  // namespace ppstap
