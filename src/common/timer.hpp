// Wall-clock timer mirroring the paper's use of MPI_Wtime() in Figure 10.
#pragma once

#include <chrono>

namespace ppstap {

/// Monotonic wall-clock timer with seconds-resolution double output.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

  /// Current time point in seconds, analogous to MPI_Wtime().
  static double now() {
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ppstap
