// Doppler window functions.
//
// The paper notes that the window selection is a key parameter trading
// clutter leakage across Doppler bins against the width of the clutter
// passband; Hanning is the reference code's default (Appendix B).
#pragma once

#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace ppstap::dsp {

enum class WindowKind { kRectangular, kHanning, kHamming, kBlackman };

/// Generate an n-point window. Hanning follows MATLAB's hanning(n)
/// (symmetric, endpoints nonzero): w[k] = 0.5 (1 - cos(2 pi (k+1)/(n+1))).
std::vector<float> make_window(WindowKind kind, index_t n);

/// Parse "hanning" | "hamming" | "blackman" | "rect" (for CLI tools).
WindowKind window_from_name(std::string_view name);

/// Printable name of a window kind.
const char* window_name(WindowKind kind);

/// Sum of squared window coefficients (noise gain of the windowed DFT bin).
double window_power(const std::vector<float>& w);

}  // namespace ppstap::dsp
