// Fast Fourier transforms for Doppler filtering and pulse compression.
//
// Power-of-two sizes (the paper's N = 128 pulses and K = 512 range gates)
// use an iterative radix-2 Cooley–Tukey kernel with precomputed twiddles and
// bit-reversal; any other size falls back to Bluestein's chirp-z algorithm so
// the library handles arbitrary radar parameter sets. Forward transforms are
// unscaled, inverse transforms scale by 1/n (MATLAB convention, matching the
// paper's reference code).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace ppstap::dsp {

enum class FftDirection { kForward, kInverse };

/// A reusable transform plan of fixed length.
template <typename T>
class FftPlan {
 public:
  FftPlan(index_t n, FftDirection dir);
  ~FftPlan();
  FftPlan(FftPlan&&) noexcept;
  FftPlan& operator=(FftPlan&&) noexcept;
  FftPlan(const FftPlan&) = delete;
  FftPlan& operator=(const FftPlan&) = delete;

  index_t size() const { return n_; }
  FftDirection direction() const { return dir_; }

  /// In-place transform of exactly size() samples.
  void execute(std::span<std::complex<T>> data) const;

  /// Out-of-place transform; `in` and `out` must not alias unless equal.
  void execute(std::span<const std::complex<T>> in,
               std::span<std::complex<T>> out) const;

  /// In-place transform of `count` contiguous lines of size() samples each
  /// (data.size() == count * size()). Equivalent to `count` execute() calls,
  /// amortizing dispatch and flop accounting across the batch — the Doppler
  /// task hands all 2J staggered lines of one range gate to a single call.
  void execute_batch(std::span<std::complex<T>> data, index_t count) const;

  /// Nominal flop count of one execution (5 n log2 n, the standard radix-2
  /// figure used by the paper's Table 1 accounting).
  std::uint64_t nominal_flops() const;

 private:
  struct Impl;
  void execute_one(std::span<std::complex<T>> data) const;
  index_t n_;
  FftDirection dir_;
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience transforms.
template <typename T>
std::vector<std::complex<T>> fft(std::span<const std::complex<T>> x);
template <typename T>
std::vector<std::complex<T>> ifft(std::span<const std::complex<T>> x);

extern template class FftPlan<float>;
extern template class FftPlan<double>;
extern template std::vector<cfloat> fft<float>(std::span<const cfloat>);
extern template std::vector<cdouble> fft<double>(std::span<const cdouble>);
extern template std::vector<cfloat> ifft<float>(std::span<const cfloat>);
extern template std::vector<cdouble> ifft<double>(std::span<const cdouble>);

}  // namespace ppstap::dsp
