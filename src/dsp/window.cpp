#include "dsp/window.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace ppstap::dsp {

std::vector<float> make_window(WindowKind kind, index_t n) {
  PPSTAP_REQUIRE(n >= 1, "window length must be positive");
  std::vector<float> w(static_cast<size_t>(n), 1.0f);
  const double pi = std::numbers::pi;
  switch (kind) {
    case WindowKind::kRectangular:
      break;
    case WindowKind::kHanning:
      for (index_t k = 0; k < n; ++k)
        w[static_cast<size_t>(k)] = static_cast<float>(
            0.5 * (1.0 - std::cos(2.0 * pi * static_cast<double>(k + 1) /
                                  static_cast<double>(n + 1))));
      break;
    case WindowKind::kHamming:
      for (index_t k = 0; k < n; ++k)
        w[static_cast<size_t>(k)] = static_cast<float>(
            0.54 - 0.46 * std::cos(2.0 * pi * static_cast<double>(k) /
                                   static_cast<double>(n - 1)));
      break;
    case WindowKind::kBlackman:
      for (index_t k = 0; k < n; ++k) {
        const double x =
            2.0 * pi * static_cast<double>(k) / static_cast<double>(n - 1);
        w[static_cast<size_t>(k)] = static_cast<float>(
            0.42 - 0.5 * std::cos(x) + 0.08 * std::cos(2.0 * x));
      }
      break;
  }
  return w;
}

WindowKind window_from_name(std::string_view name) {
  if (name == "rect" || name == "rectangular") return WindowKind::kRectangular;
  if (name == "hanning" || name == "hann") return WindowKind::kHanning;
  if (name == "hamming") return WindowKind::kHamming;
  if (name == "blackman") return WindowKind::kBlackman;
  PPSTAP_REQUIRE(false, "unknown window name: " + std::string(name));
  return WindowKind::kRectangular;  // unreachable
}

const char* window_name(WindowKind kind) {
  switch (kind) {
    case WindowKind::kRectangular:
      return "rect";
    case WindowKind::kHanning:
      return "hanning";
    case WindowKind::kHamming:
      return "hamming";
    case WindowKind::kBlackman:
      return "blackman";
  }
  return "?";
}

double window_power(const std::vector<float>& w) {
  double acc = 0.0;
  for (float v : w) acc += static_cast<double>(v) * static_cast<double>(v);
  return acc;
}

}  // namespace ppstap::dsp
