#include "dsp/waveform.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"
#include "dsp/fft.hpp"

namespace ppstap::dsp {

std::vector<cfloat> lfm_chirp(index_t length) {
  PPSTAP_REQUIRE(length >= 1, "chirp length must be positive");
  std::vector<cfloat> s(static_cast<size_t>(length));
  const double amp = 1.0 / std::sqrt(static_cast<double>(length));
  for (index_t k = 0; k < length; ++k) {
    const double t = static_cast<double>(k) - static_cast<double>(length) / 2.0;
    const double ang = std::numbers::pi * t * t / static_cast<double>(length);
    s[static_cast<size_t>(k)] = cfloat(static_cast<float>(amp * std::cos(ang)),
                                       static_cast<float>(amp * std::sin(ang)));
  }
  return s;
}

std::vector<cfloat> matched_filter_spectrum(std::span<const cfloat> replica,
                                            index_t nfft) {
  PPSTAP_REQUIRE(static_cast<index_t>(replica.size()) <= nfft,
                 "replica longer than FFT size");
  std::vector<cfloat> padded(static_cast<size_t>(nfft), cfloat{});
  std::copy(replica.begin(), replica.end(), padded.begin());
  FftPlan<float> plan(nfft, FftDirection::kForward);
  plan.execute(padded);
  for (auto& v : padded) v = std::conj(v);
  return padded;
}

}  // namespace ppstap::dsp
