// Transmit waveform generation for pulse compression.
//
// The live radar transmitted a phase-coded/LFM pulse whose replica is
// correlated against the received data (paper §5.4). We synthesize a linear
// FM chirp; its matched filter compresses an extended return of L range
// cells into one cell with ~L processing gain.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace ppstap::dsp {

/// Unit-energy linear FM chirp of `length` samples sweeping the full
/// normalized bandwidth: s[k] = exp(j pi (k - L/2)^2 / L) / sqrt(L).
std::vector<cfloat> lfm_chirp(index_t length);

/// Frequency-domain matched filter for `replica` at FFT size `nfft`:
/// conj(FFT(zero-padded replica)). Point-wise multiplication by this
/// spectrum followed by an inverse FFT performs circular pulse compression.
std::vector<cfloat> matched_filter_spectrum(std::span<const cfloat> replica,
                                            index_t nfft);

}  // namespace ppstap::dsp
