#include "dsp/fft.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numbers>

#include <type_traits>

#include "common/check.hpp"
#include "common/flops.hpp"
#include "kernels/kernels.hpp"

namespace ppstap::dsp {

namespace {

bool is_pow2(index_t n) {
  return n > 0 && (static_cast<std::uint64_t>(n) &
                   (static_cast<std::uint64_t>(n) - 1)) == 0;
}

index_t ceil_log2(index_t n) {
  index_t lg = 0;
  while ((index_t{1} << lg) < n) ++lg;
  return lg;
}

}  // namespace

template <typename T>
struct FftPlan<T>::Impl {
  using C = std::complex<T>;

  // Radix-2 machinery (always present; Bluestein reuses it at padded size).
  index_t n2 = 0;           // power-of-two working size
  std::vector<index_t> rev;  // bit-reversal permutation of size n2
  std::vector<C> twiddle;    // per-stage twiddles, concatenated
  bool bluestein = false;
  // Bluestein state: a_k = x_k * conj(w_k), convolved with chirp b.
  std::vector<C> chirp;      // w_k = exp(+i*pi*k^2/n) (direction applied)
  std::vector<C> b_spec;     // forward FFT of the padded chirp kernel

  void radix2(std::span<C> data, bool inverse) const {
    const index_t n = n2;
    for (index_t i = 0; i < n; ++i) {
      const index_t j = rev[static_cast<size_t>(i)];
      if (j > i) std::swap(data[static_cast<size_t>(i)],
                           data[static_cast<size_t>(j)]);
    }
    const C* tw = twiddle.data();
    if constexpr (std::is_same_v<T, float>) {
      // Sample-precision transforms run through the dispatched kernel layer:
      // the len-2/len-4 bottom stages have hardcoded twiddles ({1} and
      // {1, -+i}) and whole-block vector forms; every wider stage vectorizes
      // across the contiguous twiddle/butterfly arrays.
      index_t len = 2;
      if (len <= n) {
        kernels::fft_stage2(data.data(), n);
        tw += 1;
        len <<= 1;
      }
      if (len <= n) {
        kernels::fft_stage4(data.data(), n, inverse);
        tw += 2;
        len <<= 1;
      }
      for (; len <= n; len <<= 1) {
        const index_t half = len >> 1;
        kernels::fft_stage(data.data(), n, len, tw, inverse);
        tw += half;
      }
    } else {
      for (index_t len = 2; len <= n; len <<= 1) {
        const index_t half = len >> 1;
        for (index_t start = 0; start < n; start += len) {
          for (index_t k = 0; k < half; ++k) {
            C w = tw[k];
            if (inverse) w = std::conj(w);
            C& u = data[static_cast<size_t>(start + k)];
            C& v = data[static_cast<size_t>(start + k + half)];
            const C t = v * w;
            v = u - t;
            u = u + t;
          }
        }
        tw += half;
      }
    }
  }

  void build_radix2(index_t n) {
    n2 = n;
    const index_t lg = ceil_log2(n);
    rev.resize(static_cast<size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      index_t r = 0;
      for (index_t b = 0; b < lg; ++b)
        if (i & (index_t{1} << b)) r |= index_t{1} << (lg - 1 - b);
      rev[static_cast<size_t>(i)] = r;
    }
    twiddle.clear();
    for (index_t len = 2; len <= n; len <<= 1) {
      const index_t half = len >> 1;
      for (index_t k = 0; k < half; ++k) {
        const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                           static_cast<double>(len);
        twiddle.emplace_back(static_cast<T>(std::cos(ang)),
                             static_cast<T>(std::sin(ang)));
      }
    }
  }
};

template <typename T>
FftPlan<T>::FftPlan(index_t n, FftDirection dir)
    : n_(n), dir_(dir), impl_(std::make_unique<Impl>()) {
  PPSTAP_REQUIRE(n >= 1, "FFT size must be positive");
  using C = std::complex<T>;
  if (is_pow2(n)) {
    impl_->build_radix2(n);
    return;
  }
  // Bluestein: express the DFT as a convolution with a quadratic chirp and
  // evaluate that convolution with a power-of-two FFT of size >= 2n - 1.
  impl_->bluestein = true;
  const index_t m = index_t{1} << ceil_log2(2 * n - 1);
  impl_->build_radix2(m);
  impl_->chirp.resize(static_cast<size_t>(n));
  std::vector<C> b(static_cast<size_t>(m), C{});
  for (index_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument bounded for large n.
    const auto k2 = static_cast<double>(
        (static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(k)) %
        static_cast<std::uint64_t>(2 * n));
    const double ang = std::numbers::pi * k2 / static_cast<double>(n);
    const C w{static_cast<T>(std::cos(ang)), static_cast<T>(-std::sin(ang))};
    impl_->chirp[static_cast<size_t>(k)] = w;  // forward-direction chirp
    const C binv = std::conj(w);
    b[static_cast<size_t>(k)] = binv;
    if (k != 0) b[static_cast<size_t>(m - k)] = binv;
  }
  impl_->radix2(b, /*inverse=*/false);
  impl_->b_spec = std::move(b);
}

template <typename T>
FftPlan<T>::~FftPlan() = default;
template <typename T>
FftPlan<T>::FftPlan(FftPlan&&) noexcept = default;
template <typename T>
FftPlan<T>& FftPlan<T>::operator=(FftPlan&&) noexcept = default;

template <typename T>
void FftPlan<T>::execute(std::span<std::complex<T>> data) const {
  PPSTAP_REQUIRE(static_cast<index_t>(data.size()) == n_,
                 "FFT input length must equal plan size");
  execute_one(data);
  count_flops(nominal_flops());
}

template <typename T>
void FftPlan<T>::execute_batch(std::span<std::complex<T>> data,
                               index_t count) const {
  PPSTAP_REQUIRE(count >= 0 && static_cast<index_t>(data.size()) == n_ * count,
                 "batched FFT buffer must hold count lines of plan size");
  for (index_t i = 0; i < count; ++i)
    execute_one(data.subspan(static_cast<size_t>(i * n_),
                             static_cast<size_t>(n_)));
  count_flops(nominal_flops() * static_cast<std::uint64_t>(count));
}

template <typename T>
void FftPlan<T>::execute_one(std::span<std::complex<T>> data) const {
  using C = std::complex<T>;
  const bool inverse = dir_ == FftDirection::kInverse;

  if (!impl_->bluestein) {
    impl_->radix2(data, inverse);
  } else {
    // Inverse via the conjugation identity IDFT(x) = conj(DFT(conj(x))) / n;
    // the trailing 1/n scale is applied below with the common inverse path.
    if (inverse)
      for (auto& v : data) v = std::conj(v);
    const index_t m = impl_->n2;
    std::vector<C> a(static_cast<size_t>(m), C{});
    for (index_t k = 0; k < n_; ++k)
      a[static_cast<size_t>(k)] =
          data[static_cast<size_t>(k)] * impl_->chirp[static_cast<size_t>(k)];
    impl_->radix2(a, /*inverse=*/false);
    if constexpr (std::is_same_v<T, float>) {
      kernels::cf_mul_inplace(a.data(), impl_->b_spec.data(), m);
    } else {
      for (index_t k = 0; k < m; ++k)
        a[static_cast<size_t>(k)] *= impl_->b_spec[static_cast<size_t>(k)];
    }
    impl_->radix2(a, /*inverse=*/true);
    const T minv = T{1} / static_cast<T>(m);
    for (index_t k = 0; k < n_; ++k)
      data[static_cast<size_t>(k)] =
          a[static_cast<size_t>(k)] * impl_->chirp[static_cast<size_t>(k)] *
          minv;
    if (inverse)
      for (auto& v : data) v = std::conj(v);
  }

  if (inverse) {
    const T s = T{1} / static_cast<T>(n_);
    for (auto& v : data) v *= s;
  }
}

template <typename T>
void FftPlan<T>::execute(std::span<const std::complex<T>> in,
                         std::span<std::complex<T>> out) const {
  PPSTAP_REQUIRE(static_cast<index_t>(in.size()) == n_ &&
                     static_cast<index_t>(out.size()) == n_,
                 "FFT buffer lengths must equal plan size");
  if (in.data() != out.data())
    std::copy(in.begin(), in.end(), out.begin());
  execute(out);
}

template <typename T>
std::uint64_t FftPlan<T>::nominal_flops() const {
  const auto n = static_cast<std::uint64_t>(n_);
  std::uint64_t lg = 0;
  while ((std::uint64_t{1} << lg) < n) ++lg;
  return 5 * n * lg;
}

template <typename T>
std::vector<std::complex<T>> fft(std::span<const std::complex<T>> x) {
  std::vector<std::complex<T>> out(x.size());
  FftPlan<T> plan(static_cast<index_t>(x.size()), FftDirection::kForward);
  plan.execute(x, out);
  return out;
}

template <typename T>
std::vector<std::complex<T>> ifft(std::span<const std::complex<T>> x) {
  std::vector<std::complex<T>> out(x.size());
  FftPlan<T> plan(static_cast<index_t>(x.size()), FftDirection::kInverse);
  plan.execute(x, out);
  return out;
}

template class FftPlan<float>;
template class FftPlan<double>;
template std::vector<cfloat> fft<float>(std::span<const cfloat>);
template std::vector<cdouble> fft<double>(std::span<const cdouble>);
template std::vector<cfloat> ifft<float>(std::span<const cfloat>);
template std::vector<cdouble> ifft<double>(std::span<const cdouble>);

}  // namespace ppstap::dsp
