// Deterministic fault injection for the in-process comm runtime.
//
// A FaultPlan is a list of rules installed on a comm::World before run().
// Every rule matches messages by (src, dest, tag) — with -1 wildcards and an
// optional (tag % period == phase) form that selects one Fig.-4 edge across
// all CPIs, since the pipeline encodes tags as cpi * stride + edge — and
// applies one of four faults:
//
//   kDelay    the frame stays invisible to the receiver for delay_seconds
//             (in-flight latency; the sender is not blocked)
//   kDrop     the frame is silently discarded after the sender pays for it
//   kCorrupt  a byte of the delivered copy is flipped; the frame checksum
//             no longer matches and the receiver's retransmission path runs
//   kKill     the rank performing the matched operation (sender at kSend,
//             receiver at kRecv) throws comm::RankKilled *before* the
//             operation takes effect, so no message is half-consumed
//
// Gray-failure rules (PR 10) model degraded-but-alive behavior instead of
// fail-stop:
//
//   kSlow      a per-rank multiplicative compute slowdown: every stage
//              execution on the matched rank takes `factor` times as long.
//              With probability < 1 the slowdown is intermittent — the coin
//              is keyed on (rank, cpi), so a given CPI is slow or fast
//              deterministically regardless of thread scheduling
//   kJitter    heavy-tailed in-flight delivery delay on the matched edge:
//              each hit samples a bounded Pareto
//              delay = min(cap, scale * (u^{-1/shape} - 1))
//              so most frames see near-zero delay and a few see large ones
//   kDuplicate the frame is delivered twice with the *same* sequence
//              number (the second copy optionally delayed) — exercising
//              receiver-side idempotence rather than the retransmit path
//
// Decisions are deterministic: a rule with probability < 1 flips a coin
// hashed from (plan seed, rule index, src, dest, tag, per-pair sequence
// number), never from wall time or thread scheduling, so a seeded fault run
// replays exactly. All fault logic lives behind World's send/recv hooks —
// application code never branches on the plan (kSlow is consulted by the
// pipeline's compute wrapper, the one seam every stage already passes
// through).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ppstap::comm {

enum class FaultType { kDelay, kDrop, kCorrupt, kKill, kSlow, kJitter,
                       kDuplicate };

/// Operation at which a kKill rule triggers (other types act on the frame
/// itself and only use kSend, where the frame is created).
enum class FaultPoint { kSend, kRecv };

struct FaultRule {
  FaultType type = FaultType::kDrop;
  FaultPoint point = FaultPoint::kSend;
  int src = -1;   ///< sending rank, -1 = any
  int dest = -1;  ///< receiving rank, -1 = any
  int tag = -1;   ///< exact tag, -1 = any (or use the period/phase form)
  /// When tag_period > 0 the rule matches tags with tag % tag_period ==
  /// tag_phase — one pipeline edge across every CPI.
  int tag_period = 0;
  int tag_phase = 0;
  double probability = 1.0;   ///< per matching message, seeded coin
  int max_applications = -1;  ///< stop after N applications, -1 = unlimited
  double delay_seconds = 0.0; ///< kDelay: fixed latency; kJitter: Pareto
                              ///< scale; kDuplicate: extra delay on the
                              ///< duplicated copy
  /// kSlow only: multiplicative compute slowdown (>= 1). The rule matches
  /// by `src` (the afflicted rank); dest/tag stay wildcards.
  double factor = 1.0;
  /// kJitter only: Pareto tail exponent (smaller = heavier tail).
  double shape = 1.5;
  /// kJitter only: hard cap on one sampled delay, seconds.
  double max_delay_seconds = 0.05;
};

/// Seeded *compute-stage* bit-flip injection (PR 5): flips one bit of one
/// element of a stage's output buffer after the kernel runs, before the
/// ABFT invariant is checked. Matched by task and CPI (with -1 wildcards)
/// instead of (src, dest, tag) — corruption happens inside a rank, not on
/// the wire. `occurrence` in the coin is the per-rule match ordinal, so a
/// probability sweep replays exactly. With max_applications = 1 the
/// recompute runs clean and the repair succeeds; with max_applications = 2
/// both executions are corrupted and the policy must escalate.
struct ComputeFaultRule {
  int task = -1;            ///< stap::Task ordinal, -1 = any
  long long cpi = -1;       ///< CPI index, -1 = any
  double probability = 1.0; ///< per matching execution, seeded coin
  int bit = 30;             ///< bit to flip (30 = top exponent bit)
  int max_applications = 1; ///< stop after N flips, -1 = unlimited
};

/// Counters of faults actually applied during the current run.
struct FaultStats {
  std::uint64_t delayed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t kills = 0;
  std::uint64_t flips = 0;       ///< compute-stage bit flips injected
  std::uint64_t slowed = 0;      ///< stage executions stretched by kSlow
  std::uint64_t jittered = 0;    ///< frames hit by heavy-tailed jitter
  std::uint64_t duplicated = 0;  ///< frames re-delivered by kDuplicate
  std::uint64_t total() const {
    return delayed + dropped + corrupted + kills + flips + slowed +
           jittered + duplicated;
  }
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0x5eedf417) : seed_(seed) {}

  FaultPlan& add(const FaultRule& rule);
  FaultPlan& add_compute(const ComputeFaultRule& rule);

  // Convenience builders -----------------------------------------------------
  /// Delay every matching frame of one pipeline edge by `seconds` with the
  /// given probability.
  static FaultRule delay_edge(int edge, int tag_stride, double seconds,
                              double probability = 1.0);
  /// Delay the exact (src, dest, tag) frame.
  static FaultRule delay_message(int src, int dest, int tag, double seconds);
  static FaultRule drop_message(int src, int dest, int tag);
  static FaultRule corrupt_message(int src, int dest, int tag,
                                   int max_applications = 1);
  /// Kill `rank` when it first attempts to receive a message with `tag`
  /// (before consuming anything — recovery sees an intact mailbox).
  static FaultRule kill_on_recv(int rank, int tag);
  /// Kill `rank` when it first attempts to send a message with `tag`.
  static FaultRule kill_on_send(int rank, int tag);
  /// Slow every stage execution on `rank` by `factor`. With
  /// probability < 1 the slowdown is intermittent per CPI (the coin is
  /// keyed on (rank, cpi), never on scheduling order).
  static FaultRule slow_rank(int rank, double factor,
                             double probability = 1.0);
  /// Heavy-tailed delivery jitter on one pipeline edge: each matching
  /// frame (with the given probability) is delayed by a bounded Pareto
  /// sample with the given scale/shape, capped at `cap` seconds.
  static FaultRule jitter_edge(int edge, int tag_stride, double scale,
                               double shape = 1.5, double cap = 0.05,
                               double probability = 1.0);
  /// Re-deliver matching frames of one pipeline edge a second time with
  /// the same sequence number (a duplicate storm at probability 1).
  static FaultRule duplicate_edge(int edge, int tag_stride,
                                  double probability = 1.0,
                                  double extra_delay = 0.0);
  /// Duplicate the exact (src, dest, tag) frame once.
  static FaultRule duplicate_message(int src, int dest, int tag);
  /// Flip `bit` of one output element of `task`'s execution for `cpi`
  /// (once by default; pass max_applications = 2 to also corrupt the
  /// recompute and force an escalation).
  static ComputeFaultRule flip_stage(int task, long long cpi, int bit = 30,
                                     int max_applications = 1);

  // Hooks called by World (thread-safe) --------------------------------------
  /// True when a kKill rule fires for the rank performing the operation.
  bool kill_due(FaultPoint point, int src, int dest, int tag);
  /// True when the frame should be silently dropped.
  bool drop_due(int src, int dest, int tag, std::uint64_t seq);
  /// Injected in-flight latency for the frame (0 = none).
  double delay_due(int src, int dest, int tag, std::uint64_t seq);
  /// True when the frame copy should be corrupted. `attempt` distinguishes
  /// the original delivery (0) from retransmissions, so a count-limited rule
  /// corrupts once and the retransmitted copy arrives clean.
  bool corrupt_due(int src, int dest, int tag, std::uint64_t seq,
                   int attempt);
  /// True when a compute-stage flip fires for this execution; on true,
  /// `*bit` receives the bit index the rule asks to flip. `attempt`
  /// distinguishes the original execution (0) from the recompute (1) so a
  /// count-limited rule leaves the recompute clean. Called by the pipeline
  /// stages, not by World.
  bool compute_flip_due(int task, long long cpi, int rank, int attempt,
                        int* bit);
  /// Combined multiplicative slowdown for `rank` executing a stage of
  /// `cpi` (1.0 = nominal). Intermittent rules flip their coin on
  /// (rank, cpi) only, so the answer is identical however threads
  /// interleave. Called by the pipeline's compute wrapper, not by World.
  double slow_factor_due(int rank, long long cpi);
  /// True when the frame should be delivered a second time with the same
  /// seq; on true `*extra_delay` receives the duplicate copy's additional
  /// in-flight latency.
  bool duplicate_due(int src, int dest, int tag, std::uint64_t seq,
                     double* extra_delay);

  FaultStats stats() const;
  /// Zero the stats and per-rule application counters (World::run calls
  /// this so plans replay identically across runs).
  void reset();

 private:
  bool rule_applies(std::size_t idx, const FaultRule& r, int src, int dest,
                    int tag, std::uint64_t salt);

  std::uint64_t seed_;
  mutable std::mutex mu_;
  std::vector<FaultRule> rules_;
  std::vector<int> applications_;
  std::vector<std::uint64_t> match_counter_;
  std::vector<ComputeFaultRule> compute_rules_;
  std::vector<int> compute_applications_;
  std::vector<std::uint64_t> compute_match_counter_;
  FaultStats stats_;
};

}  // namespace ppstap::comm
