// Collective operations built on the tagged point-to-point layer.
//
// The paper's application needs only personalized all-to-all exchanges
// (which the pipeline hand-codes for each edge), but a message-passing
// substrate standing in for MPI should offer the standard collectives;
// they are used by tests and available to downstream users. All are
// linear-time root-rooted algorithms — adequate for an in-process runtime
// whose "network" is a memcpy.
//
// Every collective call consumes the caller-supplied `tag` for all of its
// internal messages; concurrent collectives must use distinct tags (as
// with MPI communicators, disambiguation is the caller's job).
#pragma once

#include <vector>

#include "comm/world.hpp"
#include "obs/trace.hpp"

namespace ppstap::comm {

/// Root's `data` is copied to every rank; other ranks' `data` is replaced.
/// Each collective emits one obs span per participating rank carrying the
/// local payload bytes and the participant count.
template <typename T>
void broadcast(Comm& c, int root, std::vector<T>& data, int tag) {
  PPSTAP_REQUIRE(root >= 0 && root < c.size(), "invalid broadcast root");
  obs::ScopedSpan span("broadcast", "comm", c.rank(), obs::kCommTrack);
  span.set_items(c.size());
  if (c.rank() == root) {
    for (int r = 0; r < c.size(); ++r)
      if (r != root) c.send<T>(r, tag, data);
  } else {
    data = c.recv<T>(root, tag);
  }
  span.set_bytes(static_cast<std::int64_t>(data.size() * sizeof(T)));
}

/// Root receives every rank's contribution (indexed by rank); non-roots
/// get an empty result.
template <typename T>
std::vector<std::vector<T>> gather(Comm& c, int root,
                                   std::span<const T> mine, int tag) {
  PPSTAP_REQUIRE(root >= 0 && root < c.size(), "invalid gather root");
  obs::ScopedSpan span("gather", "comm", c.rank(), obs::kCommTrack);
  span.set_items(c.size());
  span.set_bytes(static_cast<std::int64_t>(mine.size() * sizeof(T)));
  std::vector<std::vector<T>> out;
  if (c.rank() == root) {
    out.resize(static_cast<size_t>(c.size()));
    out[static_cast<size_t>(root)].assign(mine.begin(), mine.end());
    for (int r = 0; r < c.size(); ++r)
      if (r != root) out[static_cast<size_t>(r)] = c.recv<T>(r, tag);
  } else {
    c.send<T>(root, tag, mine);
  }
  return out;
}

/// Every rank receives every rank's contribution (gather + broadcast of
/// the concatenation, flattened back into per-rank vectors).
template <typename T>
std::vector<std::vector<T>> all_gather(Comm& c, std::span<const T> mine,
                                       int tag) {
  obs::ScopedSpan span("all_gather", "comm", c.rank(), obs::kCommTrack);
  span.set_items(c.size());
  span.set_bytes(static_cast<std::int64_t>(mine.size() * sizeof(T)));
  auto gathered = gather(c, 0, mine, tag);
  // Serialize as (count, payload) per rank for the broadcast leg.
  std::vector<std::uint64_t> counts;
  std::vector<T> flat;
  if (c.rank() == 0) {
    for (const auto& v : gathered) {
      counts.push_back(v.size());
      flat.insert(flat.end(), v.begin(), v.end());
    }
  }
  broadcast(c, 0, counts, tag + 1);
  broadcast(c, 0, flat, tag + 2);
  std::vector<std::vector<T>> out(static_cast<size_t>(c.size()));
  size_t off = 0;
  for (size_t r = 0; r < counts.size(); ++r) {
    out[r].assign(flat.begin() + static_cast<std::ptrdiff_t>(off),
                  flat.begin() + static_cast<std::ptrdiff_t>(off + counts[r]));
    off += counts[r];
  }
  return out;
}

/// Personalized all-to-all: `send[r]` goes to rank r; the result's entry r
/// is what rank r sent here. `send` must have one entry per rank.
template <typename T>
std::vector<std::vector<T>> all_to_all(Comm& c,
                                       const std::vector<std::vector<T>>& send,
                                       int tag) {
  PPSTAP_REQUIRE(static_cast<int>(send.size()) == c.size(),
                 "all_to_all needs one send buffer per rank");
  obs::ScopedSpan span("all_to_all", "comm", c.rank(), obs::kCommTrack);
  span.set_items(c.size());
  std::int64_t send_bytes = 0;
  for (const auto& v : send)
    send_bytes += static_cast<std::int64_t>(v.size() * sizeof(T));
  span.set_bytes(send_bytes);
  for (int r = 0; r < c.size(); ++r)
    c.send<T>(r, tag, std::span<const T>(send[static_cast<size_t>(r)]));
  std::vector<std::vector<T>> out(static_cast<size_t>(c.size()));
  for (int r = 0; r < c.size(); ++r)
    out[static_cast<size_t>(r)] = c.recv<T>(r, tag);
  return out;
}

/// Sum-reduction to every rank (for scalars and element-wise vectors).
template <typename T>
std::vector<T> all_reduce_sum(Comm& c, std::span<const T> mine, int tag) {
  obs::ScopedSpan span("all_reduce_sum", "comm", c.rank(), obs::kCommTrack);
  span.set_items(c.size());
  span.set_bytes(static_cast<std::int64_t>(mine.size() * sizeof(T)));
  auto all = all_gather(c, mine, tag);
  std::vector<T> out(mine.size(), T{});
  for (const auto& v : all) {
    PPSTAP_CHECK(v.size() == out.size(),
                 "all_reduce_sum requires equal lengths on every rank");
    for (size_t i = 0; i < v.size(); ++i) out[i] += v[i];
  }
  return out;
}

}  // namespace ppstap::comm
