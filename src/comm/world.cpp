#include "comm/world.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "comm/fault.hpp"
#include "common/backoff.hpp"
#include "common/checksum.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace ppstap::comm {

namespace {

using Clock = WallTimer::clock;

Clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

/// Deterministically flip one byte of a nonempty payload.
void corrupt_copy(std::vector<std::byte>& bytes, std::uint64_t salt) {
  const std::size_t idx =
      static_cast<std::size_t>(salt * 0x9e3779b97f4a7c15ull % bytes.size());
  bytes[idx] ^= std::byte{0x40};
}

/// The histogram bucket for a frame's tag: data edges map to their slot,
/// everything else (protocol slots, test traffic, negative tags) shares the
/// last bucket.
int retry_bucket(int tag) {
  const int slot = tag % 16;
  return slot >= 0 && slot < kRetryEdgeBuckets - 1 ? slot
                                                   : kRetryEdgeBuckets - 1;
}

}  // namespace

struct World::Frame {
  int src = -1;
  int tag = 0;
  /// Per-(src, dest) ordinal, assigned under the destination mailbox lock.
  std::uint64_t seq = 0;
  /// Checksum of the payload as sent (before any injected corruption).
  std::uint64_t checksum = 0;
  /// Zero-payload control marker (Comm::send_marker).
  bool marker = false;
  /// The frame is invisible to receivers before this instant (injected
  /// in-flight latency; frames are still delivered FIFO per (src, tag)).
  Clock::time_point deliver_at{};
  std::vector<std::byte> bytes;
  /// Uncorrupted original, kept only when a corrupt rule fired, so the
  /// receiver's retransmission path has something to refetch.
  std::vector<std::byte> pristine;
  /// Piggybacked causal trace context (never part of the payload bytes).
  FlowContext flow;
  bool has_flow = false;
};

struct World::Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Frame> frames;
  std::size_t buffered_bytes = 0;
  /// Next sequence number per source rank.
  std::vector<std::uint64_t> next_seq;
  /// Per-source set of seqs already delivered (or deliberately discarded):
  /// the receiver-side idempotence ledger. A frame arriving with a seq
  /// already in here is a re-delivery (kDuplicate injection) and is dropped
  /// with CommStats::dup_discarded instead of being consumed as the next
  /// message. A set rather than a high-water mark because frames of
  /// different tags are consumed out of seq order.
  std::vector<std::unordered_set<std::uint64_t>> delivered;
};

struct World::Shared {
  std::mutex mu;
  std::condition_variable cv;
  /// Atomic so mailbox cv predicates (which hold only the mailbox mutex)
  /// can read it race-free; writers still notify under each mutex so no
  /// wakeup is missed.
  std::atomic<bool> aborted{false};
  std::exception_ptr first_error;
  // Sense-reversing barrier over the live ranks.
  int barrier_count = 0;
  std::uint64_t barrier_generation = 0;
  int live = 0;
  // Per-rank liveness. dead/recoverable are atomic for the same reason as
  // `aborted`; claimed/death_time are only touched under mu.
  std::vector<std::atomic<bool>> dead;
  std::vector<std::atomic<bool>> recoverable;
  std::vector<char> claimed;
  std::vector<double> death_time;
};

World::World(int num_ranks, std::size_t mailbox_capacity_bytes)
    : num_ranks_(num_ranks),
      capacity_(mailbox_capacity_bytes),
      shared_(std::make_unique<Shared>()) {
  PPSTAP_REQUIRE(num_ranks >= 1, "world needs at least one rank");
  boxes_.reserve(static_cast<size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    boxes_.push_back(std::make_unique<Mailbox>());
    boxes_.back()->next_seq.assign(static_cast<size_t>(num_ranks), 0);
    boxes_.back()->delivered.resize(static_cast<size_t>(num_ranks));
  }
  shared_->dead = std::vector<std::atomic<bool>>(static_cast<size_t>(num_ranks));
  shared_->recoverable =
      std::vector<std::atomic<bool>>(static_cast<size_t>(num_ranks));
  shared_->claimed.assign(static_cast<size_t>(num_ranks), 0);
  shared_->death_time.assign(static_cast<size_t>(num_ranks), 0.0);
  shared_->live = num_ranks;
}

World::~World() = default;

void World::set_recoverable(int rank, bool flag) {
  PPSTAP_REQUIRE(rank >= 0 && rank < num_ranks_, "invalid rank");
  shared_->recoverable[static_cast<size_t>(rank)].store(
      flag, std::memory_order_release);
  if (flag) return;
  // Clearing the flag on an already-dead rank (e.g. the spare was just
  // consumed and can no longer cover it) must wake receivers parked on the
  // full recovery deadline: their predicate re-reads `recoverable` and now
  // resolves to a prompt dead-peer status instead of a wait nobody will
  // ever satisfy.
  shared_->cv.notify_all();
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
}

bool World::rank_dead(int rank) const {
  PPSTAP_REQUIRE(rank >= 0 && rank < num_ranks_, "invalid rank");
  return shared_->dead[static_cast<size_t>(rank)].load(
      std::memory_order_acquire);
}

bool World::rank_recoverable(int rank) const {
  PPSTAP_REQUIRE(rank >= 0 && rank < num_ranks_, "invalid rank");
  return shared_->recoverable[static_cast<size_t>(rank)].load(
      std::memory_order_acquire);
}

double World::death_time(int rank) const {
  PPSTAP_REQUIRE(rank >= 0 && rank < num_ranks_, "invalid rank");
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->death_time[static_cast<size_t>(rank)];
}

void World::abort_world() {
  // Flight recorder: capture the span ring before the abort propagates and
  // every blocked rank starts throwing (no-op unless armed).
  obs::flight_dump("world_abort");
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->aborted.store(true, std::memory_order_release);
  }
  shared_->cv.notify_all();
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
}

void World::request_abort(const std::string& why) {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (!shared_->first_error)
      shared_->first_error = std::make_exception_ptr(Error(why));
  }
  abort_world();
}

void World::mark_dead(int rank) {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->dead[static_cast<size_t>(rank)].store(true,
                                                   std::memory_order_release);
    shared_->death_time[static_cast<size_t>(rank)] = WallTimer::now();
    shared_->live -= 1;
    // The death may complete a barrier the survivors are already inside.
    if (shared_->barrier_count > 0 &&
        shared_->barrier_count >= shared_->live) {
      shared_->barrier_count = 0;
      ++shared_->barrier_generation;
    }
  }
  shared_->cv.notify_all();
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
}

std::optional<int> World::wait_for_death(double timeout_seconds) {
  PPSTAP_REQUIRE(timeout_seconds >= 0.0, "timeout must be non-negative");
  const auto deadline = Clock::now() + to_duration(timeout_seconds);
  std::unique_lock<std::mutex> lock(shared_->mu);
  for (;;) {
    if (shared_->aborted.load(std::memory_order_acquire))
      throw Error("comm world aborted during wait_for_death");
    for (int r = 0; r < num_ranks_; ++r) {
      const auto i = static_cast<size_t>(r);
      if (shared_->dead[i].load(std::memory_order_acquire) &&
          shared_->recoverable[i].load(std::memory_order_acquire) &&
          !shared_->claimed[i]) {
        shared_->claimed[i] = 1;
        return r;
      }
    }
    if (Clock::now() >= deadline) return std::nullopt;
    shared_->cv.wait_until(lock, deadline);
  }
}

void World::do_take_over(Comm& c, int dead_rank) {
  PPSTAP_REQUIRE(dead_rank >= 0 && dead_rank < num_ranks_, "invalid rank");
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    const auto i = static_cast<size_t>(dead_rank);
    PPSTAP_REQUIRE(shared_->claimed[i] &&
                       shared_->dead[i].load(std::memory_order_acquire),
                   "take_over requires a dead rank claimed via wait_for_death");
    shared_->dead[i].store(false, std::memory_order_release);
    shared_->claimed[i] = 0;  // a repeat death can be claimed again
    shared_->live += 1;
    c.rank_ = dead_rank;
  }
  shared_->cv.notify_all();
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
}

void World::run(const std::function<void(Comm&)>& fn) {
  // Reset cross-run state (recoverable flags are configuration and persist).
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->aborted.store(false, std::memory_order_release);
    shared_->first_error = nullptr;
    shared_->barrier_count = 0;
    shared_->live = num_ranks_;
    for (int r = 0; r < num_ranks_; ++r) {
      const auto i = static_cast<size_t>(r);
      shared_->dead[i].store(false, std::memory_order_release);
      shared_->claimed[i] = 0;
      shared_->death_time[i] = 0.0;
    }
  }
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->frames.clear();
    box->buffered_bytes = 0;
    std::fill(box->next_seq.begin(), box->next_seq.end(), 0);
    for (auto& seen : box->delivered) seen.clear();
  }
  if (plan_) plan_->reset();

  std::vector<Comm> comms;
  comms.reserve(static_cast<size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) comms.push_back(Comm(this, r));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, &fn, &comms, r] {
      try {
        fn(comms[static_cast<size_t>(r)]);
      } catch (const RankKilled& k) {
        // An injected kill is a per-rank death, not a world failure:
        // survivors observe peer-dead and may hand the rank to a spare.
        mark_dead(k.rank());
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(shared_->mu);
          if (!shared_->first_error)
            shared_->first_error = std::current_exception();
        }
        abort_world();
      }
    });
  }
  for (auto& t : threads) t.join();

  last_stats_.clear();
  last_stats_.reserve(static_cast<size_t>(num_ranks_));
  for (const auto& c : comms) last_stats_.push_back(c.stats());

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    err = shared_->first_error;
  }
  if (err) std::rethrow_exception(err);
}

int Comm::size() const { return world_->size(); }

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> bytes,
                      const FlowContext* flow) {
  world_->do_send(*this, dest, tag, bytes, /*marker=*/false, flow);
}

void Comm::send_marker(int dest, int tag) {
  world_->do_send(*this, dest, tag, {}, /*marker=*/true, /*flow=*/nullptr);
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag) {
  return world_->do_recv(*this, src, tag, /*timeout=*/nullptr).bytes;
}

RecvResult Comm::recv_bytes_for(int src, int tag, double timeout_seconds) {
  PPSTAP_REQUIRE(timeout_seconds >= 0.0, "timeout must be non-negative");
  return world_->do_recv(*this, src, tag, &timeout_seconds);
}

std::optional<std::vector<std::byte>> Comm::try_recv_bytes(int src, int tag) {
  return world_->do_try_recv(*this, src, tag);
}

std::size_t Comm::discard(int src, int tag) {
  return world_->do_discard(*this, src, tag);
}

void Comm::take_over(int dead_rank) { world_->do_take_over(*this, dead_rank); }

void Comm::barrier() { world_->do_barrier(); }

void World::do_send(Comm& c, int dest, int tag,
                    std::span<const std::byte> bytes, bool marker,
                    const FlowContext* flow) {
  PPSTAP_REQUIRE(dest >= 0 && dest < num_ranks_, "invalid destination rank");
  if (plan_ && plan_->kill_due(FaultPoint::kSend, c.rank(), dest, tag))
    throw RankKilled(c.rank());
  // Stamped before the mailbox lock so flow-control blocking is charged to
  // the frame's transport interval, like a congested interconnect.
  const double flow_sent = flow ? WallTimer::now() : 0.0;
  const auto di = static_cast<size_t>(dest);
  Mailbox& box = *boxes_[di];

  std::unique_lock<std::mutex> lock(box.mu);
  // Flow control: block while the mailbox is full, but always admit a
  // message into an empty mailbox so one oversized message cannot wedge.
  // Sends to a dead unrecoverable rank are black-holed, never blocked.
  const double wait_start = WallTimer::now();
  box.cv.wait(lock, [&] {
    if (shared_->aborted.load(std::memory_order_acquire)) return true;
    if (shared_->dead[di].load(std::memory_order_acquire) &&
        !shared_->recoverable[di].load(std::memory_order_acquire))
      return true;
    return box.frames.empty() ||
           box.buffered_bytes + bytes.size() <= capacity_;
  });
  c.stats_.send_wait_seconds += WallTimer::now() - wait_start;
  if (shared_->aborted.load(std::memory_order_acquire))
    throw Error("comm world aborted during send");

  Frame f;
  f.src = c.rank();
  f.tag = tag;
  f.marker = marker;
  f.seq = box.next_seq[static_cast<size_t>(c.rank())]++;
  if (flow != nullptr) {
    f.flow = *flow;
    f.flow.sent_at = flow_sent;
    f.has_flow = true;
  }
  c.stats_.bytes_sent += bytes.size();
  c.stats_.messages_sent += 1;

  // Black hole: the destination is dead and nobody will revive it. The
  // sender pays for the bytes and moves on (a real interconnect cannot
  // block forever on a failed node either).
  if (shared_->dead[di].load(std::memory_order_acquire) &&
      !shared_->recoverable[di].load(std::memory_order_acquire))
    return;
  if (plan_ && plan_->drop_due(f.src, dest, tag, f.seq)) return;

  f.checksum = checksum_bytes(bytes);
  f.bytes = {bytes.begin(), bytes.end()};
  f.deliver_at = Clock::now();
  if (plan_) {
    const double delay = plan_->delay_due(f.src, dest, tag, f.seq);
    if (delay > 0.0) f.deliver_at += to_duration(delay);
    if (!f.bytes.empty() &&
        plan_->corrupt_due(f.src, dest, tag, f.seq, /*attempt=*/0)) {
      f.pristine = f.bytes;
      corrupt_copy(f.bytes, f.seq);
    }
  }
  box.buffered_bytes += f.bytes.size();
  // kDuplicate: enqueue a second copy with the *same* seq (optionally
  // delayed further). The receiver's idempotence ledger must drop it; the
  // injected copy deliberately bypasses the seq allocator above.
  double dup_extra = 0.0;
  if (plan_ && plan_->duplicate_due(f.src, dest, tag, f.seq, &dup_extra)) {
    Frame dup = f;
    dup.deliver_at = f.deliver_at + to_duration(dup_extra);
    box.buffered_bytes += dup.bytes.size();
    box.frames.push_back(std::move(f));
    box.frames.push_back(std::move(dup));
  } else {
    box.frames.push_back(std::move(f));
  }
  lock.unlock();
  box.cv.notify_all();
}

std::optional<std::vector<std::byte>> World::finalize_frame(
    Comm& c, Frame&& f, bool allow_corrupt_failure) {
  // Runs with no locks held. A checksum mismatch (only possible under an
  // injected corruption) triggers the retransmission path: refetch the
  // sender-side pristine copy with jittered exponential backoff (the shared
  // Backoff ladder, salted by (src, tag, seq) so seeded runs replay
  // identically); a corrupt rule may hit the refetched copy again (keyed by
  // attempt), bounded by the budget. On a deadline receive an exhausted
  // budget surfaces as a lost frame (RecvStatus::kCorrupt) so the caller
  // can shed the CPI instead of aborting the whole world.
  int attempt = 0;
  const std::uint64_t retry_salt =
      f.seq + (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.tag))
               << 24) +
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.src)) << 56);
  while (checksum_bytes(f.bytes) != f.checksum) {
    ++attempt;
    c.stats_.retransmissions += 1;
    if (attempt > kMaxRetransmitAttempts) {
      c.stats_.retry_histogram[static_cast<size_t>(retry_bucket(f.tag))]
                              [kMaxRetransmitAttempts] += 1;
      PPSTAP_CHECK(allow_corrupt_failure,
                   "frame corruption persisted past the retransmission budget");
      return std::nullopt;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(
        Backoff::retry_delay(attempt, retry_salt)));
    f.bytes = f.pristine;
    if (plan_ && !f.bytes.empty() &&
        plan_->corrupt_due(f.src, c.rank(), f.tag, f.seq, attempt)) {
      corrupt_copy(f.bytes, f.seq + static_cast<std::uint64_t>(attempt));
    }
  }
  if (attempt > 0) {
    c.stats_.retry_histogram[static_cast<size_t>(retry_bucket(f.tag))]
                            [attempt - 1] += 1;
  }
  c.stats_.bytes_received += f.bytes.size();
  c.stats_.messages_received += 1;
  if (f.has_flow && obs::tracing_enabled()) {
    // One "xfer" flow span per delivered frame: [send start, consumption].
    // deliver_at (push time + injected delay) splits it into transport and
    // mailbox-queue residency.
    const double now = WallTimer::now();
    const double arrival = std::min(
        now,
        std::chrono::duration<double>(f.deliver_at.time_since_epoch()).count());
    obs::Span sp;
    sp.name = "xfer";
    sp.category = "flow";
    sp.rank = c.rank();
    sp.task = obs::kFlowTrack;
    sp.cpi = f.flow.cpi;
    sp.t_start = f.flow.sent_at;
    sp.t_end = now;
    sp.bytes = static_cast<std::int64_t>(f.bytes.size());
    sp.src_rank = f.src;
    sp.src_task = f.flow.task;
    sp.edge = f.flow.edge;
    sp.hop = f.flow.hop;
    sp.queue_s = std::max(0.0, now - std::max(arrival, f.flow.sent_at));
    obs::emit(sp);
  }
  return std::move(f.bytes);
}

void World::sweep_duplicates(Comm& c, Mailbox& box, int src,
                             std::uint64_t seq) {
  for (auto it = box.frames.begin(); it != box.frames.end();) {
    if (it->src == src && it->seq == seq) {
      box.buffered_bytes -= it->bytes.size();
      it = box.frames.erase(it);
      c.stats_.dup_discarded += 1;
    } else {
      ++it;
    }
  }
}

RecvResult World::do_recv(Comm& c, int src, int tag, const double* timeout) {
  PPSTAP_REQUIRE(src >= 0 && src < num_ranks_, "invalid source rank");
  if (plan_ && plan_->kill_due(FaultPoint::kRecv, src, c.rank(), tag))
    throw RankKilled(c.rank());
  const auto si = static_cast<size_t>(src);
  Mailbox& box = *boxes_[static_cast<size_t>(c.rank())];
  const auto deadline =
      timeout ? Clock::now() + to_duration(*timeout) : Clock::time_point::max();

  std::unique_lock<std::mutex> lock(box.mu);
  const double wait_start = WallTimer::now();
  for (;;) {
    if (shared_->aborted.load(std::memory_order_acquire)) {
      c.stats_.recv_wait_seconds += WallTimer::now() - wait_start;
      throw Error("comm world aborted during recv");
    }
    // FIFO per (src, tag): only the oldest matching frame is a candidate;
    // an injected delay on it also holds back its successors, like a
    // non-overtaking MPI channel. Re-delivered frames (seq already in the
    // idempotence ledger) are dropped in the scan, whatever their
    // deliver_at — a duplicate can never become the next message.
    auto match = box.frames.end();
    for (auto it = box.frames.begin(); it != box.frames.end();) {
      if (it->src == src && it->tag == tag) {
        if (box.delivered[si].count(it->seq) != 0) {
          box.buffered_bytes -= it->bytes.size();
          it = box.frames.erase(it);
          c.stats_.dup_discarded += 1;
          continue;
        }
        match = it;
        break;
      }
      ++it;
    }
    const auto now = Clock::now();
    if (match != box.frames.end() && match->deliver_at <= now) {
      Frame f = std::move(*match);
      box.delivered[si].insert(f.seq);
      box.buffered_bytes -= f.bytes.size();
      box.frames.erase(match);
      sweep_duplicates(c, box, src, f.seq);
      c.stats_.recv_wait_seconds += WallTimer::now() - wait_start;
      lock.unlock();
      box.cv.notify_all();  // wake senders blocked on capacity
      RecvResult r;
      r.marker = f.marker;
      auto bytes =
          finalize_frame(c, std::move(f), /*allow_corrupt_failure=*/
                         timeout != nullptr);
      if (!bytes) return RecvResult{RecvStatus::kCorrupt, false, {}};
      r.bytes = std::move(*bytes);
      return r;
    }
    const bool src_dead = shared_->dead[si].load(std::memory_order_acquire);
    if (src_dead &&
        !shared_->recoverable[si].load(std::memory_order_acquire)) {
      // Mailbox drained of matches and the source can never produce more.
      c.stats_.recv_wait_seconds += WallTimer::now() - wait_start;
      if (timeout) return RecvResult{RecvStatus::kPeerDead, false, {}};
      throw Error("recv from rank " + std::to_string(src) +
                  " which died and is not recoverable");
    }
    if (now >= deadline) {
      c.stats_.recv_wait_seconds += WallTimer::now() - wait_start;
      // A recoverable death that no spare claimed within the deadline is
      // reported as peer-dead, not a mere timeout.
      return RecvResult{src_dead ? RecvStatus::kPeerDead : RecvStatus::kTimeout,
                        false,
                        {}};
    }
    auto wake = deadline;
    if (match != box.frames.end()) wake = std::min(wake, match->deliver_at);
    if (wake == Clock::time_point::max())
      box.cv.wait(lock);
    else
      box.cv.wait_until(lock, wake);
  }
}

std::optional<std::vector<std::byte>> World::do_try_recv(Comm& c, int src,
                                                         int tag) {
  PPSTAP_REQUIRE(src >= 0 && src < num_ranks_, "invalid source rank");
  Mailbox& box = *boxes_[static_cast<size_t>(c.rank())];
  std::unique_lock<std::mutex> lock(box.mu);
  if (shared_->aborted.load(std::memory_order_acquire))
    throw Error("comm world aborted during try_recv");
  const auto now = Clock::now();
  const auto si = static_cast<size_t>(src);
  for (auto it = box.frames.begin(); it != box.frames.end();) {
    if (it->src != src || it->tag != tag) {
      ++it;
      continue;
    }
    // Drop re-delivered frames before FIFO matching (same ledger as
    // do_recv).
    if (box.delivered[si].count(it->seq) != 0) {
      box.buffered_bytes -= it->bytes.size();
      it = box.frames.erase(it);
      c.stats_.dup_discarded += 1;
      continue;
    }
    // FIFO per (src, tag): a delayed head frame hides its successors.
    if (it->deliver_at > now) return std::nullopt;
    Frame f = std::move(*it);
    box.delivered[si].insert(f.seq);
    box.buffered_bytes -= f.bytes.size();
    box.frames.erase(it);
    sweep_duplicates(c, box, src, f.seq);
    lock.unlock();
    box.cv.notify_all();
    // allow_corrupt_failure=false: persistent corruption throws here, so
    // the returned optional is engaged whenever a frame matched.
    return finalize_frame(c, std::move(f), /*allow_corrupt_failure=*/false);
  }
  return std::nullopt;
}

std::size_t World::do_discard(Comm& c, int src, int tag) {
  PPSTAP_REQUIRE(src >= 0 && src < num_ranks_, "invalid source rank");
  Mailbox& box = *boxes_[static_cast<size_t>(c.rank())];
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(box.mu);
    for (auto it = box.frames.begin(); it != box.frames.end();) {
      if (it->src == src && it->tag == tag) {
        // Record the seq so a late re-delivery of a discarded frame is
        // dropped by the idempotence ledger instead of resurrecting a CPI
        // the receiver already shed.
        box.delivered[static_cast<size_t>(src)].insert(it->seq);
        box.buffered_bytes -= it->bytes.size();
        it = box.frames.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  if (dropped > 0) box.cv.notify_all();  // wake senders blocked on capacity
  return dropped;
}

void World::do_barrier() {
  std::unique_lock<std::mutex> lock(shared_->mu);
  if (shared_->aborted.load(std::memory_order_acquire))
    throw Error("comm world aborted during barrier");
  const std::uint64_t gen = shared_->barrier_generation;
  if (++shared_->barrier_count >= shared_->live) {
    shared_->barrier_count = 0;
    ++shared_->barrier_generation;
    lock.unlock();
    shared_->cv.notify_all();
    return;
  }
  shared_->cv.wait(lock, [&] {
    return shared_->aborted.load(std::memory_order_acquire) ||
           shared_->barrier_generation != gen;
  });
  if (shared_->aborted.load(std::memory_order_acquire))
    throw Error("comm world aborted during barrier");
}

}  // namespace ppstap::comm
