#include "comm/world.hpp"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "common/timer.hpp"

namespace ppstap::comm {

namespace {
struct Message {
  int src;
  int tag;
  std::vector<std::byte> bytes;
};
}  // namespace

struct World::Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> messages;
  std::size_t buffered_bytes = 0;
};

struct World::Shared {
  std::mutex mu;
  std::condition_variable cv;
  bool aborted = false;
  std::exception_ptr first_error;
  // Sense-reversing barrier.
  int barrier_count = 0;
  std::uint64_t barrier_generation = 0;
};

World::World(int num_ranks, std::size_t mailbox_capacity_bytes)
    : num_ranks_(num_ranks),
      capacity_(mailbox_capacity_bytes),
      shared_(std::make_unique<Shared>()) {
  PPSTAP_REQUIRE(num_ranks >= 1, "world needs at least one rank");
  boxes_.reserve(static_cast<size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r)
    boxes_.push_back(std::make_unique<Mailbox>());
}

World::~World() = default;

void World::abort_world() {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->aborted = true;
  }
  shared_->cv.notify_all();
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
}

void World::run(const std::function<void(Comm&)>& fn) {
  // Reset cross-run state.
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->aborted = false;
    shared_->first_error = nullptr;
    shared_->barrier_count = 0;
  }
  for (auto& box : boxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->messages.clear();
    box->buffered_bytes = 0;
  }

  std::vector<Comm> comms;
  comms.reserve(static_cast<size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) comms.push_back(Comm(this, r));

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, &fn, &comms, r] {
      try {
        fn(comms[static_cast<size_t>(r)]);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(shared_->mu);
          if (!shared_->first_error)
            shared_->first_error = std::current_exception();
        }
        abort_world();
      }
    });
  }
  for (auto& t : threads) t.join();

  last_stats_.clear();
  last_stats_.reserve(static_cast<size_t>(num_ranks_));
  for (const auto& c : comms) last_stats_.push_back(c.stats());

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    err = shared_->first_error;
  }
  if (err) std::rethrow_exception(err);
}

int Comm::size() const { return world_->size(); }

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> bytes) {
  world_->do_send(*this, dest, tag, bytes);
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag) {
  return world_->do_recv(*this, src, tag);
}

std::optional<std::vector<std::byte>> Comm::try_recv_bytes(int src, int tag) {
  return world_->do_try_recv(*this, src, tag);
}

void Comm::barrier() { world_->do_barrier(); }

void World::do_send(Comm& c, int dest, int tag,
                    std::span<const std::byte> bytes) {
  PPSTAP_REQUIRE(dest >= 0 && dest < num_ranks_, "invalid destination rank");
  Mailbox& box = *boxes_[static_cast<size_t>(dest)];
  Message msg{c.rank(), tag, {bytes.begin(), bytes.end()}};

  std::unique_lock<std::mutex> lock(box.mu);
  // Flow control: block while the mailbox is full, but always admit a
  // message into an empty mailbox so one oversized message cannot wedge.
  const double wait_start = WallTimer::now();
  box.cv.wait(lock, [&] {
    if (shared_->aborted) return true;
    return box.messages.empty() || box.buffered_bytes + bytes.size() <=
                                       capacity_;
  });
  c.stats_.send_wait_seconds += WallTimer::now() - wait_start;
  {
    std::lock_guard<std::mutex> slock(shared_->mu);
    if (shared_->aborted) throw Error("comm world aborted during send");
  }
  box.buffered_bytes += msg.bytes.size();
  c.stats_.bytes_sent += msg.bytes.size();
  c.stats_.messages_sent += 1;
  box.messages.push_back(std::move(msg));
  lock.unlock();
  box.cv.notify_all();
}

std::vector<std::byte> World::do_recv(Comm& c, int src, int tag) {
  PPSTAP_REQUIRE(src >= 0 && src < num_ranks_, "invalid source rank");
  Mailbox& box = *boxes_[static_cast<size_t>(c.rank())];
  std::unique_lock<std::mutex> lock(box.mu);
  auto match = box.messages.end();
  const double wait_start = WallTimer::now();
  box.cv.wait(lock, [&] {
    if (shared_->aborted) return true;
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        match = it;
        return true;
      }
    }
    return false;
  });
  c.stats_.recv_wait_seconds += WallTimer::now() - wait_start;
  {
    std::lock_guard<std::mutex> slock(shared_->mu);
    if (shared_->aborted) throw Error("comm world aborted during recv");
  }
  std::vector<std::byte> bytes = std::move(match->bytes);
  box.buffered_bytes -= bytes.size();
  box.messages.erase(match);
  c.stats_.bytes_received += bytes.size();
  c.stats_.messages_received += 1;
  lock.unlock();
  box.cv.notify_all();  // wake senders blocked on capacity
  return bytes;
}

std::optional<std::vector<std::byte>> World::do_try_recv(Comm& c, int src,
                                                         int tag) {
  PPSTAP_REQUIRE(src >= 0 && src < num_ranks_, "invalid source rank");
  Mailbox& box = *boxes_[static_cast<size_t>(c.rank())];
  std::unique_lock<std::mutex> lock(box.mu);
  {
    std::lock_guard<std::mutex> slock(shared_->mu);
    if (shared_->aborted) throw Error("comm world aborted during try_recv");
  }
  for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
    if (it->src != src || it->tag != tag) continue;
    std::vector<std::byte> bytes = std::move(it->bytes);
    box.buffered_bytes -= bytes.size();
    box.messages.erase(it);
    c.stats_.bytes_received += bytes.size();
    c.stats_.messages_received += 1;
    lock.unlock();
    box.cv.notify_all();
    return bytes;
  }
  return std::nullopt;
}

void World::do_barrier() {
  std::unique_lock<std::mutex> lock(shared_->mu);
  if (shared_->aborted) throw Error("comm world aborted during barrier");
  const std::uint64_t gen = shared_->barrier_generation;
  if (++shared_->barrier_count == num_ranks_) {
    shared_->barrier_count = 0;
    ++shared_->barrier_generation;
    lock.unlock();
    shared_->cv.notify_all();
    return;
  }
  shared_->cv.wait(lock, [&] {
    return shared_->aborted || shared_->barrier_generation != gen;
  });
  if (shared_->aborted) throw Error("comm world aborted during barrier");
}

}  // namespace ppstap::comm
