#include "comm/fault.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ppstap::comm {

namespace {

// SplitMix64 finalizer — the deterministic coin behind probability rules.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double hash01(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  const std::uint64_t h = mix64(mix64(seed ^ a) ^ b);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t pack(int src, int dest, int tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 48) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dest))
          << 32) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
}

bool matches(const FaultRule& r, int src, int dest, int tag) {
  if (r.src >= 0 && r.src != src) return false;
  if (r.dest >= 0 && r.dest != dest) return false;
  if (r.tag >= 0 && r.tag != tag) return false;
  if (r.tag_period > 0 && tag % r.tag_period != r.tag_phase) return false;
  return true;
}

}  // namespace

FaultPlan& FaultPlan::add(const FaultRule& rule) {
  PPSTAP_REQUIRE(rule.probability >= 0.0 && rule.probability <= 1.0,
                 "fault rule probability must be in [0, 1]");
  PPSTAP_REQUIRE(rule.delay_seconds >= 0.0,
                 "fault rule delay must be non-negative");
  if (rule.type == FaultType::kSlow)
    PPSTAP_REQUIRE(rule.factor >= 1.0, "slow rule factor must be >= 1");
  if (rule.type == FaultType::kJitter)
    PPSTAP_REQUIRE(rule.shape > 0.0 && rule.max_delay_seconds >= 0.0,
                   "jitter rule needs shape > 0 and a non-negative cap");
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(rule);
  applications_.push_back(0);
  match_counter_.push_back(0);
  return *this;
}

FaultPlan& FaultPlan::add_compute(const ComputeFaultRule& rule) {
  PPSTAP_REQUIRE(rule.probability >= 0.0 && rule.probability <= 1.0,
                 "compute fault rule probability must be in [0, 1]");
  PPSTAP_REQUIRE(rule.bit >= 0 && rule.bit < 32,
                 "compute fault rule bit must be in [0, 32)");
  std::lock_guard<std::mutex> lock(mu_);
  compute_rules_.push_back(rule);
  compute_applications_.push_back(0);
  compute_match_counter_.push_back(0);
  return *this;
}

FaultRule FaultPlan::delay_edge(int edge, int tag_stride, double seconds,
                                double probability) {
  FaultRule r;
  r.type = FaultType::kDelay;
  r.tag_period = tag_stride;
  r.tag_phase = edge;
  r.delay_seconds = seconds;
  r.probability = probability;
  return r;
}

FaultRule FaultPlan::delay_message(int src, int dest, int tag,
                                   double seconds) {
  FaultRule r;
  r.type = FaultType::kDelay;
  r.src = src;
  r.dest = dest;
  r.tag = tag;
  r.delay_seconds = seconds;
  return r;
}

FaultRule FaultPlan::drop_message(int src, int dest, int tag) {
  FaultRule r;
  r.type = FaultType::kDrop;
  r.src = src;
  r.dest = dest;
  r.tag = tag;
  return r;
}

FaultRule FaultPlan::corrupt_message(int src, int dest, int tag,
                                     int max_applications) {
  FaultRule r;
  r.type = FaultType::kCorrupt;
  r.src = src;
  r.dest = dest;
  r.tag = tag;
  r.max_applications = max_applications;
  return r;
}

FaultRule FaultPlan::kill_on_recv(int rank, int tag) {
  FaultRule r;
  r.type = FaultType::kKill;
  r.point = FaultPoint::kRecv;
  r.dest = rank;
  r.tag = tag;
  r.max_applications = 1;
  return r;
}

FaultRule FaultPlan::kill_on_send(int rank, int tag) {
  FaultRule r;
  r.type = FaultType::kKill;
  r.point = FaultPoint::kSend;
  r.src = rank;
  r.tag = tag;
  r.max_applications = 1;
  return r;
}

FaultRule FaultPlan::slow_rank(int rank, double factor, double probability) {
  FaultRule r;
  r.type = FaultType::kSlow;
  r.src = rank;
  r.factor = factor;
  r.probability = probability;
  return r;
}

FaultRule FaultPlan::jitter_edge(int edge, int tag_stride, double scale,
                                 double shape, double cap,
                                 double probability) {
  FaultRule r;
  r.type = FaultType::kJitter;
  r.tag_period = tag_stride;
  r.tag_phase = edge;
  r.delay_seconds = scale;
  r.shape = shape;
  r.max_delay_seconds = cap;
  r.probability = probability;
  return r;
}

FaultRule FaultPlan::duplicate_edge(int edge, int tag_stride,
                                    double probability, double extra_delay) {
  FaultRule r;
  r.type = FaultType::kDuplicate;
  r.tag_period = tag_stride;
  r.tag_phase = edge;
  r.probability = probability;
  r.delay_seconds = extra_delay;
  return r;
}

FaultRule FaultPlan::duplicate_message(int src, int dest, int tag) {
  FaultRule r;
  r.type = FaultType::kDuplicate;
  r.src = src;
  r.dest = dest;
  r.tag = tag;
  r.max_applications = 1;
  return r;
}

ComputeFaultRule FaultPlan::flip_stage(int task, long long cpi, int bit,
                                       int max_applications) {
  ComputeFaultRule r;
  r.task = task;
  r.cpi = cpi;
  r.bit = bit;
  r.max_applications = max_applications;
  return r;
}

bool FaultPlan::compute_flip_due(int task, long long cpi, int rank,
                                 int attempt, int* bit) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < compute_rules_.size(); ++i) {
    const ComputeFaultRule& r = compute_rules_[i];
    if (r.task >= 0 && r.task != task) continue;
    if (r.cpi >= 0 && r.cpi != cpi) continue;
    if (r.max_applications >= 0 &&
        compute_applications_[i] >= r.max_applications)
      continue;
    const std::uint64_t occurrence = compute_match_counter_[i]++;
    if (r.probability < 1.0) {
      const std::uint64_t where =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(task))
           << 40) ^
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank))
           << 20) ^
          static_cast<std::uint64_t>(cpi) ^
          (static_cast<std::uint64_t>(attempt) << 56);
      const double u = hash01(seed_ + 0xc0ull + i, where, occurrence);
      if (u >= r.probability) continue;
    }
    ++compute_applications_[i];
    ++stats_.flips;
    if (bit != nullptr) *bit = r.bit;
    return true;
  }
  return false;
}

bool FaultPlan::rule_applies(std::size_t idx, const FaultRule& r, int src,
                             int dest, int tag, std::uint64_t salt) {
  // Caller holds mu_.
  if (!matches(r, src, dest, tag)) return false;
  if (r.max_applications >= 0 && applications_[idx] >= r.max_applications)
    return false;
  const std::uint64_t occurrence = match_counter_[idx]++;
  if (r.probability < 1.0) {
    const double u = hash01(seed_ + idx, pack(src, dest, tag) ^ salt,
                            occurrence);
    if (u >= r.probability) return false;
  }
  ++applications_[idx];
  return true;
}

bool FaultPlan::kill_due(FaultPoint point, int src, int dest, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.type != FaultType::kKill || r.point != point) continue;
    if (rule_applies(i, r, src, dest, tag, /*salt=*/0)) {
      ++stats_.kills;
      return true;
    }
  }
  return false;
}

bool FaultPlan::drop_due(int src, int dest, int tag, std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.type != FaultType::kDrop) continue;
    if (rule_applies(i, r, src, dest, tag, seq)) {
      ++stats_.dropped;
      return true;
    }
  }
  return false;
}

double FaultPlan::delay_due(int src, int dest, int tag, std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.type == FaultType::kDelay) {
      if (rule_applies(i, r, src, dest, tag, seq)) {
        ++stats_.delayed;
        total += r.delay_seconds;
      }
    } else if (r.type == FaultType::kJitter) {
      if (rule_applies(i, r, src, dest, tag, seq)) {
        ++stats_.jittered;
        // Bounded Pareto: u -> scale * (u^{-1/shape} - 1). The sample uses
        // its own hash stream (distinct constant) so it never aliases the
        // probability coin drawn inside rule_applies.
        const double u = std::max(
            hash01(seed_ ^ 0x71c3a5b9ull, seed_ + i,
                   pack(src, dest, tag) ^ seq),
            0x1.0p-53);
        const double d =
            r.delay_seconds * (std::pow(u, -1.0 / r.shape) - 1.0);
        total += std::min(d, r.max_delay_seconds);
      }
    }
  }
  return total;
}

double FaultPlan::slow_factor_due(int rank, long long cpi) {
  std::lock_guard<std::mutex> lock(mu_);
  double factor = 1.0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.type != FaultType::kSlow) continue;
    if (r.src >= 0 && r.src != rank) continue;
    if (r.max_applications >= 0 && applications_[i] >= r.max_applications)
      continue;
    if (r.probability < 1.0) {
      // Keyed on (rank, cpi) only — every stage of a CPI on this rank is
      // slowed or spared together, and the answer never depends on the
      // order rank threads happen to ask in.
      const double u = hash01(seed_ + 0x51ull + i,
                              pack(rank, 0, 0),
                              static_cast<std::uint64_t>(cpi));
      if (u >= r.probability) continue;
    }
    ++applications_[i];
    ++stats_.slowed;
    factor *= r.factor;
  }
  return factor;
}

bool FaultPlan::duplicate_due(int src, int dest, int tag, std::uint64_t seq,
                              double* extra_delay) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.type != FaultType::kDuplicate) continue;
    if (rule_applies(i, r, src, dest, tag, seq)) {
      ++stats_.duplicated;
      if (extra_delay != nullptr) *extra_delay = r.delay_seconds;
      return true;
    }
  }
  return false;
}

bool FaultPlan::corrupt_due(int src, int dest, int tag, std::uint64_t seq,
                            int attempt) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.type != FaultType::kCorrupt) continue;
    if (rule_applies(i, r, src, dest, tag,
                     seq ^ (static_cast<std::uint64_t>(attempt) << 56))) {
      ++stats_.corrupted;
      return true;
    }
  }
  return false;
}

FaultStats FaultPlan::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FaultPlan::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = FaultStats{};
  std::fill(applications_.begin(), applications_.end(), 0);
  std::fill(match_counter_.begin(), match_counter_.end(), 0);
  std::fill(compute_applications_.begin(), compute_applications_.end(), 0);
  std::fill(compute_match_counter_.begin(), compute_match_counter_.end(), 0);
}

}  // namespace ppstap::comm
