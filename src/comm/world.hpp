// In-process message-passing runtime.
//
// The paper's implementation uses ANSI C + MPI on the Paragon; this runtime
// reproduces the same programming model inside one process: a World of
// ranks (one thread each), tagged point-to-point messages matched on
// (source, tag), eager buffered sends, blocking receives, and a barrier.
// Every inter-task byte of the parallel pipeline flows through here, so the
// functional behaviour (who sends what to whom, in which order) is
// identical to a distributed run, and per-rank byte counters feed the
// communication-volume checks against the machine model.
//
// Flow control: each rank's mailbox has a byte capacity; senders block when
// the destination is full (at least one message is always admitted so a
// single oversized message cannot deadlock). This models the backpressure a
// finite-buffer interconnect applies to a pipeline whose downstream tasks
// lag — without it the Doppler task would race arbitrarily far ahead.
//
// Failure behaviour: if any rank throws, the world is aborted and every
// blocked operation on any rank throws ppstap::Error instead of hanging.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ppstap::comm {

class World;

/// Per-rank communication statistics.
struct CommStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  /// Seconds this rank spent blocked inside recv waiting for a matching
  /// message to arrive (the queue-wait component of Fig. 10's receive
  /// phase; feeds the per-task queue-wait gauges).
  double recv_wait_seconds = 0.0;
  /// Seconds this rank spent blocked in send on mailbox flow control.
  double send_wait_seconds = 0.0;
};

/// A rank's handle to the world. Valid only inside World::run's callback,
/// on the thread it was given to.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Eager buffered send: copies `bytes` into the destination mailbox.
  /// Blocks only when the destination mailbox is over capacity.
  void send_bytes(int dest, int tag, std::span<const std::byte> bytes);

  /// Blocking receive of the next message matching (src, tag).
  std::vector<std::byte> recv_bytes(int src, int tag);

  /// Nonblocking probe-and-receive: returns the matching message if one is
  /// already buffered, std::nullopt otherwise (never blocks).
  std::optional<std::vector<std::byte>> try_recv_bytes(int src, int tag);

  /// Typed span send for trivially copyable T.
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               {reinterpret_cast<const std::byte*>(data.data()),
                data.size() * sizeof(T)});
  }

  /// Typed receive; validates the byte count is a multiple of sizeof(T).
  template <typename T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = recv_bytes(src, tag);
    PPSTAP_CHECK(bytes.size() % sizeof(T) == 0,
                 "received byte count not a multiple of element size");
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Typed nonblocking receive.
  template <typename T>
  std::optional<std::vector<T>> try_recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = try_recv_bytes(src, tag);
    if (!bytes) return std::nullopt;
    PPSTAP_CHECK(bytes->size() % sizeof(T) == 0,
                 "received byte count not a multiple of element size");
    std::vector<T> out(bytes->size() / sizeof(T));
    std::memcpy(out.data(), bytes->data(), bytes->size());
    return out;
  }

  /// Posted-receive handle in the style of Fig. 10's asynchronous calls
  /// (line 6 posts, line 7 waits). Because the runtime buffers eagerly,
  /// posting is free; the handle packages the (source, tag) match so loop
  /// code can separate posting from completion like the paper's.
  template <typename T>
  class PendingRecv {
   public:
    /// True when the message is already deliverable (does not consume it).
    bool ready() { return result_ || take(); }

    /// Block until the message arrives and return it (line 7).
    std::vector<T> wait() {
      if (!result_) result_ = comm_->recv<T>(src_, tag_);
      auto out = std::move(*result_);
      result_.reset();
      done_ = true;
      return out;
    }

   private:
    friend class Comm;
    PendingRecv(Comm* comm, int src, int tag)
        : comm_(comm), src_(src), tag_(tag) {}
    bool take() {
      if (done_) return false;
      result_ = comm_->try_recv<T>(src_, tag_);
      return result_.has_value();
    }
    Comm* comm_;
    int src_;
    int tag_;
    bool done_ = false;
    std::optional<std::vector<T>> result_;
  };

  /// Post a receive for (src, tag); complete it later with wait().
  template <typename T>
  PendingRecv<T> irecv(int src, int tag) {
    return PendingRecv<T>(this, src, tag);
  }

  /// Global barrier over all ranks of the world.
  void barrier();

  const CommStats& stats() const { return stats_; }

 private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}
  World* world_;
  int rank_;
  CommStats stats_;
};

class World {
 public:
  /// `mailbox_capacity_bytes` bounds the buffered bytes per rank before
  /// senders block (flow control / pipeline backpressure).
  explicit World(int num_ranks,
                 std::size_t mailbox_capacity_bytes = 256ull << 20);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return num_ranks_; }

  /// Spawn one thread per rank running `fn`, join all, and rethrow the
  /// first rank exception (if any). May be called repeatedly.
  void run(const std::function<void(Comm&)>& fn);

  /// Statistics gathered during the last run, indexed by rank.
  const std::vector<CommStats>& last_stats() const { return last_stats_; }

 private:
  friend class Comm;
  struct Mailbox;
  int num_ranks_;
  std::size_t capacity_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::vector<CommStats> last_stats_;

  // Abort + barrier state live behind the Impl wall too.
  struct Shared;
  std::unique_ptr<Shared> shared_;

  void do_send(Comm& c, int dest, int tag, std::span<const std::byte> bytes);
  std::vector<std::byte> do_recv(Comm& c, int src, int tag);
  std::optional<std::vector<std::byte>> do_try_recv(Comm& c, int src,
                                                    int tag);
  void do_barrier();
  void abort_world();
};

}  // namespace ppstap::comm
