// In-process message-passing runtime.
//
// The paper's implementation uses ANSI C + MPI on the Paragon; this runtime
// reproduces the same programming model inside one process: a World of
// ranks (one thread each), tagged point-to-point messages matched on
// (source, tag), eager buffered sends, blocking receives, and a barrier.
// Every inter-task byte of the parallel pipeline flows through here, so the
// functional behaviour (who sends what to whom, in which order) is
// identical to a distributed run, and per-rank byte counters feed the
// communication-volume checks against the machine model.
//
// Flow control: each rank's mailbox has a byte capacity; senders block when
// the destination is full (at least one message is always admitted so a
// single oversized message cannot deadlock). This models the backpressure a
// finite-buffer interconnect applies to a pipeline whose downstream tasks
// lag — without it the Doppler task would race arbitrarily far ahead.
//
// Framing and fault tolerance: every message travels as a frame carrying a
// per-(src, dest) sequence number and a payload checksum. A checksum
// mismatch (possible only under fault injection, see fault.hpp) triggers
// the retransmission path: bounded retries with backoff against the
// sender-side pristine copy, counted in CommStats::retransmissions. An
// installed FaultPlan can also delay frames in flight, drop them, or kill
// a rank at a chosen send/recv.
//
// Failure behaviour: a rank that throws RankKilled dies *individually* —
// peers observe peer-dead (recv_bytes_for returns RecvStatus::kPeerDead,
// plain recv throws once the mailbox drains, barriers complete over the
// surviving ranks) and, if the rank was marked recoverable, a standby can
// claim the death with wait_for_death() and assume the dead rank's
// identity (and intact mailbox) with Comm::take_over(). Any other
// exception aborts the whole world and every blocked operation on any
// rank throws ppstap::Error instead of hanging.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ppstap::comm {

class World;
class FaultPlan;

/// A corrupted frame is refetched from the sender-side pristine copy at
/// most this many times before the receiver gives up (RecvStatus::kCorrupt
/// on a deadline receive, fatal otherwise).
inline constexpr int kMaxRetransmitAttempts = 5;

/// Tag-slot buckets for the per-edge retry histogram: slots 0-8 are the
/// Fig. 4 data edges (tag = cpi * 16 + slot, see pipeline.cpp tag_for),
/// bucket 9 aggregates everything else (protocol slots, test traffic).
inline constexpr int kRetryEdgeBuckets = 10;

/// Thrown inside a rank when a FaultPlan kKill rule fires (before the
/// matched operation takes effect, so no message is half-consumed).
/// World::run treats it as a per-rank death, not a global abort.
class RankKilled : public Error {
 public:
  explicit RankKilled(int rank)
      : Error("rank " + std::to_string(rank) + " killed by fault injection"),
        rank_(rank) {}
  int rank() const { return rank_; }

 private:
  int rank_;
};

/// Per-rank communication statistics.
struct CommStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  /// Frames whose checksum failed on delivery and were fetched again from
  /// the sender-side pristine copy (nonzero only under fault injection).
  std::uint64_t retransmissions = 0;
  /// Per-edge retry-count histogram: retry_histogram[e][a] counts frames
  /// received on edge bucket e (tag slot, kRetryEdgeBuckets) that delivered
  /// after exactly a+1 refetches; the last column (a ==
  /// kMaxRetransmitAttempts) counts frames that exhausted the budget.
  /// All-zero for frames that deliver clean on the first attempt.
  std::array<std::array<std::uint64_t, kMaxRetransmitAttempts + 1>,
             kRetryEdgeBuckets>
      retry_histogram{};
  /// Seconds this rank spent blocked inside recv waiting for a matching
  /// message to arrive (the queue-wait component of Fig. 10's receive
  /// phase; feeds the per-task queue-wait gauges).
  double recv_wait_seconds = 0.0;
  /// Seconds this rank spent blocked in send on mailbox flow control.
  double send_wait_seconds = 0.0;
  /// Frames discarded by receiver-side idempotence: a frame whose
  /// (src, seq) was already delivered (or deliberately discarded) arrived
  /// again — a kDuplicate re-delivery, never the retransmission path,
  /// which refetches in place without a second enqueue.
  std::uint64_t dup_discarded = 0;
};

/// Small causal trace context a sender can piggyback on a frame (the
/// observability analogue of PR 5's payload digests): enough for obs to
/// stitch per-rank spans into one end-to-end chain per CPI. Carried in the
/// frame struct itself — never serialized into the payload — so receivers
/// see exactly the bytes that were sent and the disabled path costs one
/// null-pointer test per send.
struct FlowContext {
  std::int64_t cpi = -1;    ///< CPI the consumer will process
  std::int16_t task = -1;   ///< producing task (stap::Task index)
  std::int16_t edge = -1;   ///< redistribution edge id (core SimEdge)
  std::int32_t hop = 0;     ///< hop sequence along the pipeline (1-based)
  double sent_at = 0.0;     ///< WallTimer::now() when the send started
};

/// Outcome of a deadline receive (Comm::recv_bytes_for).
enum class RecvStatus {
  kOk,        ///< payload (or marker) delivered
  kTimeout,   ///< no matching frame arrived within the deadline
  kPeerDead,  ///< the source rank died and nobody can revive it
  kCorrupt,   ///< the frame stayed corrupt past the retransmission budget;
              ///< it has been consumed (late retries cannot succeed)
};

/// A deadline receive's result. `marker` distinguishes a zero-payload
/// control frame (Comm::send_marker — the pipeline's "CPI shed" token)
/// from a regular message.
struct RecvResult {
  RecvStatus status = RecvStatus::kOk;
  bool marker = false;
  std::vector<std::byte> bytes;

  /// True only for a regular data delivery.
  bool ok() const { return status == RecvStatus::kOk && !marker; }

  /// Reinterpret the payload as trivially copyable T.
  template <typename T>
  std::vector<T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    PPSTAP_CHECK(bytes.size() % sizeof(T) == 0,
                 "received byte count not a multiple of element size");
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!bytes.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }
};

/// A rank's handle to the world. Valid only inside World::run's callback,
/// on the thread it was given to.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Eager buffered send: copies `bytes` into the destination mailbox.
  /// Blocks only when the destination mailbox is over capacity. When
  /// `flow` is non-null its trace context rides on the frame (sent_at is
  /// stamped here) and the receiver emits an obs "xfer" flow span on
  /// delivery.
  void send_bytes(int dest, int tag, std::span<const std::byte> bytes,
                  const FlowContext* flow = nullptr);

  /// Blocking receive of the next message matching (src, tag).
  std::vector<std::byte> recv_bytes(int src, int tag);

  /// Deadline receive: like recv_bytes but gives up after
  /// `timeout_seconds` (RecvStatus::kTimeout) and reports a dead,
  /// unrevivable source as RecvStatus::kPeerDead instead of hanging. A
  /// recoverable dead source is waited on for the full deadline — a spare
  /// may still take over and produce the message.
  RecvResult recv_bytes_for(int src, int tag, double timeout_seconds);

  /// Nonblocking probe-and-receive: returns the matching message if one is
  /// already buffered, std::nullopt otherwise (never blocks).
  std::optional<std::vector<std::byte>> try_recv_bytes(int src, int tag);

  /// Send a zero-payload control marker (delivered with
  /// RecvResult::marker == true). The pipeline uses it as the "CPI shed"
  /// token propagated downstream in place of data.
  void send_marker(int dest, int tag);

  /// Typed span send for trivially copyable T carrying a trace context.
  template <typename T>
  void send(int dest, int tag, std::span<const T> data,
            const FlowContext* flow) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               {reinterpret_cast<const std::byte*>(data.data()),
                data.size() * sizeof(T)},
               flow);
  }

  /// Drop every currently buffered frame matching (src, tag) — late
  /// arrivals for a CPI the receiver already shed. Returns the number of
  /// frames discarded. Never blocks.
  std::size_t discard(int src, int tag);

  /// Assume the identity (rank number and mailbox) of a dead recoverable
  /// rank previously claimed via World::wait_for_death. After this call
  /// rank() == dead_rank, pending frames addressed to the dead rank are
  /// receivable, and peers no longer observe the rank as dead.
  void take_over(int dead_rank);

  /// Typed span send for trivially copyable T.
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               {reinterpret_cast<const std::byte*>(data.data()),
                data.size() * sizeof(T)});
  }

  /// Typed receive; validates the byte count is a multiple of sizeof(T).
  template <typename T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = recv_bytes(src, tag);
    PPSTAP_CHECK(bytes.size() % sizeof(T) == 0,
                 "received byte count not a multiple of element size");
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!bytes.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Typed nonblocking receive.
  template <typename T>
  std::optional<std::vector<T>> try_recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = try_recv_bytes(src, tag);
    if (!bytes) return std::nullopt;
    PPSTAP_CHECK(bytes->size() % sizeof(T) == 0,
                 "received byte count not a multiple of element size");
    std::vector<T> out(bytes->size() / sizeof(T));
    if (!bytes->empty()) std::memcpy(out.data(), bytes->data(), bytes->size());
    return out;
  }

  /// Posted-receive handle in the style of Fig. 10's asynchronous calls
  /// (line 6 posts, line 7 waits). Because the runtime buffers eagerly,
  /// posting is free; the handle packages the (source, tag) match so loop
  /// code can separate posting from completion like the paper's.
  template <typename T>
  class PendingRecv {
   public:
    /// True when the message is already deliverable (does not consume it).
    bool ready() { return result_ || take(); }

    /// Block until the message arrives and return it (line 7).
    std::vector<T> wait() {
      if (!result_) result_ = comm_->recv<T>(src_, tag_);
      auto out = std::move(*result_);
      result_.reset();
      done_ = true;
      return out;
    }

   private:
    friend class Comm;
    PendingRecv(Comm* comm, int src, int tag)
        : comm_(comm), src_(src), tag_(tag) {}
    bool take() {
      if (done_) return false;
      result_ = comm_->try_recv<T>(src_, tag_);
      return result_.has_value();
    }
    Comm* comm_;
    int src_;
    int tag_;
    bool done_ = false;
    std::optional<std::vector<T>> result_;
  };

  /// Post a receive for (src, tag); complete it later with wait().
  template <typename T>
  PendingRecv<T> irecv(int src, int tag) {
    return PendingRecv<T>(this, src, tag);
  }

  /// Global barrier over all live ranks of the world.
  void barrier();

  const CommStats& stats() const { return stats_; }

 private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}
  World* world_;
  int rank_;
  CommStats stats_;
};

class World {
 public:
  /// `mailbox_capacity_bytes` bounds the buffered bytes per rank before
  /// senders block (flow control / pipeline backpressure).
  explicit World(int num_ranks,
                 std::size_t mailbox_capacity_bytes = 256ull << 20);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return num_ranks_; }

  /// Install a fault-injection plan (borrowed; must outlive the run, may
  /// be nullptr to clear). run() resets the plan's counters so a seeded
  /// plan replays identically across runs.
  void set_fault_plan(FaultPlan* plan) { plan_ = plan; }

  /// Declare a rank recoverable: if it dies, peers keep buffering to it
  /// and wait for a spare instead of observing peer-dead immediately.
  void set_recoverable(int rank, bool flag = true);

  /// Block up to `timeout_seconds` for a dead recoverable rank nobody has
  /// claimed yet; claims and returns it, or std::nullopt on timeout.
  /// Throws if the world aborts while waiting. Intended for spare ranks.
  std::optional<int> wait_for_death(double timeout_seconds);

  /// True while `rank` is dead and unclaimed/unrevived.
  bool rank_dead(int rank) const;

  /// True while `rank` is marked recoverable (a standby may still claim its
  /// death). False means a death of this rank is permanent — the signal the
  /// elastic shrink path keys on.
  bool rank_recoverable(int rank) const;

  /// WallTimer::now() timestamp at which `rank` died (0 if alive);
  /// subtract from the spare's restore-complete time for recovery stall.
  double death_time(int rank) const;

  /// Abort the world from outside the rank callbacks (e.g. a test
  /// watchdog): every blocked operation throws promptly and run() rethrows
  /// an Error carrying `why`.
  void request_abort(const std::string& why = "abort requested");

  /// Spawn one thread per rank running `fn`, join all, and rethrow the
  /// first rank exception (if any). RankKilled is not an error: the rank
  /// dies individually and run() returns normally once the survivors
  /// finish. May be called repeatedly.
  void run(const std::function<void(Comm&)>& fn);

  /// Statistics gathered during the last run, indexed by rank.
  const std::vector<CommStats>& last_stats() const { return last_stats_; }

 private:
  friend class Comm;
  struct Mailbox;
  struct Frame;
  int num_ranks_;
  std::size_t capacity_;
  FaultPlan* plan_ = nullptr;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::vector<CommStats> last_stats_;

  // Abort + barrier + liveness state live behind the Impl wall too.
  struct Shared;
  std::unique_ptr<Shared> shared_;

  void do_send(Comm& c, int dest, int tag, std::span<const std::byte> bytes,
               bool marker, const FlowContext* flow);
  RecvResult do_recv(Comm& c, int src, int tag, const double* timeout);
  /// Drop re-delivered copies of a just-consumed frame from the mailbox
  /// (caller holds the mailbox lock). Without this a duplicate whose tag is
  /// only ever received once would sit in the queue forever, counting
  /// against channel capacity — a duplicate storm must not turn into
  /// permanent backpressure.
  static void sweep_duplicates(Comm& c, Mailbox& box, int src,
                               std::uint64_t seq);
  std::optional<std::vector<std::byte>> do_try_recv(Comm& c, int src,
                                                    int tag);
  std::size_t do_discard(Comm& c, int src, int tag);
  void do_take_over(Comm& c, int dead_rank);
  void do_barrier();
  // nullopt (budget exhausted) only when allow_corrupt_failure; the plain
  // recv/try_recv paths keep treating persistent corruption as fatal.
  std::optional<std::vector<std::byte>> finalize_frame(
      Comm& c, Frame&& frame, bool allow_corrupt_failure);
  void mark_dead(int rank);
  void abort_world();
};

}  // namespace ppstap::comm
