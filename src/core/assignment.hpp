// Processor (node) assignment for the seven-task parallel pipeline.
//
// The central resource-allocation question of the paper (§4.1.2, §7.3):
// how many nodes each task gets determines both the pipeline's throughput
// (eq. 1: inverse of the slowest task) and its latency (eq. 2: the sum of
// the tasks on the critical path, which excludes the weight tasks thanks to
// the temporal dependency). The three experiment cases of Table 7 and the
// what-if reassignments of Tables 9-10 are provided as named constructors.
#pragma once

#include <array>
#include <string>

#include "common/check.hpp"
#include "stap/flops.hpp"

namespace ppstap::core {

struct NodeAssignment {
  /// Nodes per task, indexed by stap::Task.
  std::array<int, stap::kNumTasks> nodes{1, 1, 1, 1, 1, 1, 1};

  int operator[](stap::Task t) const {
    return nodes[static_cast<size_t>(t)];
  }
  int& operator[](stap::Task t) { return nodes[static_cast<size_t>(t)]; }

  int total() const {
    int sum = 0;
    for (int n : nodes) sum += n;
    return sum;
  }

  /// First global rank of task `t` when ranks are laid out in task order.
  int first_rank(stap::Task t) const {
    int base = 0;
    for (int i = 0; i < static_cast<int>(t); ++i)
      base += nodes[static_cast<size_t>(i)];
    return base;
  }

  /// Throws unless every task has >= 1 node and no task has more nodes than
  /// independent work items under `p` (bins / range cells).
  void validate(const stap::StapParams& p) const;

  std::string to_string() const;

  /// Paper Table 7 case 1: 236 nodes total.
  static NodeAssignment paper_case1() {
    return {{32, 16, 112, 16, 28, 16, 16}};
  }
  /// Paper Table 7 case 2: 118 nodes total.
  static NodeAssignment paper_case2() { return {{16, 8, 56, 8, 14, 8, 8}}; }
  /// Paper Table 7 case 3: 59 nodes total.
  static NodeAssignment paper_case3() { return {{8, 4, 28, 4, 7, 4, 4}}; }
  /// Paper Table 9: case 2 plus 4 Doppler nodes (122 total).
  static NodeAssignment paper_table9() {
    return {{20, 8, 56, 8, 14, 8, 8}};
  }
  /// Paper Table 10: Table 9 plus 8+8 nodes on PC and CFAR (138 total).
  static NodeAssignment paper_table10() {
    return {{20, 8, 56, 8, 14, 16, 16}};
  }
};

}  // namespace ppstap::core
