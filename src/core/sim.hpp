// Discrete-event simulation of the parallel pipelined STAP system on the
// Paragon machine model.
//
// This is the instrument that regenerates the paper's evaluation (Tables
// 2-10, Figure 11) on hardware that no longer exists. The simulator runs
// the same seven-task pipeline structure as the real (threaded) pipeline —
// identical task graph, identical per-edge communication volumes (validated
// against the real pipeline's byte counters in tests), identical temporal
// dependency — but advances virtual time from the machine model instead of
// executing kernels:
//
//   * compute time  = analytic_flops(task) / (nodes * calibrated rate)
//   * visible send  = pack (collection/reorganization) + per-dest startup
//   * wire          = max(sender egress, receiver ingress) serialization
//   * visible recv  = wait-for-arrival (idle) + unpack
//
// All the paper's qualitative observations are *emergent* here: superlinear
// communication scaling (Tables 2-6), idle time appearing in the receive
// phase of tasks downstream of a bottleneck (Table 10), and the secondary
// effect that adding nodes to one task speeds up others (Table 9).
#pragma once

#include <array>
#include <vector>

#include "core/assignment.hpp"
#include "core/machine.hpp"
#include "core/pipeline.hpp"
#include "stap/params.hpp"

namespace ppstap::core {

/// The nine inter-task edges of Fig. 4. Weight->beamform edges carry the
/// temporal dependency (weights computed from CPI i-1 are consumed by CPI
/// i).
enum class SimEdge : int {
  kDopToEasyWt = 0,
  kDopToHardWt = 1,
  kDopToEasyBf = 2,
  kDopToHardBf = 3,
  kEasyWtToBf = 4,
  kHardWtToBf = 5,
  kEasyBfToPc = 6,
  kHardBfToPc = 7,
  kPcToCfar = 8,
};
inline constexpr int kNumEdges = 9;

stap::Task sim_edge_src(SimEdge e);
stap::Task sim_edge_dst(SimEdge e);
const char* sim_edge_name(SimEdge e);
/// True when the edge requires data collection or reorganization before
/// sending (partition dimensions differ across the edge) — paper §5.2/5.3.
bool sim_edge_needs_reorg(SimEdge e);
/// True when the consumer uses the producer's output of the previous CPI.
bool sim_edge_is_temporal(SimEdge e);

/// Send/recv phase times attributable to a single edge (Tables 2-6 report
/// these per task pair).
struct SimEdgeTiming {
  double send = 0.0;  ///< pack + post on the sending side
  double recv = 0.0;  ///< wait-for-arrival (idle) + unpack on the receiver
};

/// Replication of pipeline stages (the multi-stage technique of Lee &
/// Prasanna cited in §2, and the paper's "multiple pipelines" future
/// work): task i is instantiated `replicas[i]` times, each instance runs
/// on its own `assign[i]` nodes and handles every replicas[i]-th CPI.
/// Replication multiplies a stage's throughput without improving its
/// latency. Only stateless tasks may be replicated: the weight tasks carry
/// training state across consecutive CPIs (the temporal dependency), so
/// their replica count must be 1 — a design constraint the pipeline's
/// dataflow imposes, not an implementation limit.
struct ReplicationPlan {
  std::array<int, stap::kNumTasks> replicas{1, 1, 1, 1, 1, 1, 1};

  int operator[](stap::Task t) const {
    return replicas[static_cast<size_t>(t)];
  }
  int& operator[](stap::Task t) { return replicas[static_cast<size_t>(t)]; }

  /// Total nodes consumed by `assign` under this plan.
  int total_nodes(const NodeAssignment& assign) const {
    int sum = 0;
    for (int t = 0; t < stap::kNumTasks; ++t)
      sum += assign.nodes[static_cast<size_t>(t)] *
             replicas[static_cast<size_t>(t)];
    return sum;
  }

  void validate() const;
};

/// The pre-pipelining RTMCARM deployment (paper §2): whole CPIs are handed
/// to nodes round-robin; every node runs the full sequential chain.
/// Throughput scales with the node count, latency is pinned at the
/// single-node chain time — the limitation that motivates the paper.
struct RoundRobinResult {
  double throughput = 0.0;  ///< CPIs per second across all nodes
  double latency = 0.0;     ///< single-node full-chain time per CPI
};

/// Dynamic processor re-allocation (paper §8: "a well designed system
/// should be able to handle any changes in the requirements on the
/// response time by dynamically allocating or re-allocating processors
/// among tasks"). The pipeline runs under `before` up to (excluding)
/// `switch_cpi`, pauses to migrate the adaptive weight state (the easy
/// training history and the hard triangular factors are the only state
/// that must move), then continues under `after`.
struct ReallocationPlan {
  NodeAssignment before;
  NodeAssignment after;
  index_t switch_cpi = 0;  ///< first CPI processed under `after`
};

struct DynamicSimResult {
  double throughput_before = 0.0;
  double throughput_after = 0.0;
  double latency_before = 0.0;
  double latency_after = 0.0;
  /// Weight-state migration time charged at the switch (a global stall).
  double migration_stall = 0.0;
  /// Completion time of every CPI (for transient inspection).
  std::vector<double> completion;
};

struct SimResult {
  std::array<TaskTiming, stap::kNumTasks> timing{};
  std::array<SimEdgeTiming, kNumEdges> edges{};
  double throughput_measured = 0.0;  ///< sink inter-completion rate
  double latency_measured = 0.0;     ///< input arrival -> detection report
  double throughput_equation = 0.0;  ///< eq. (1): 1 / max_i T_i
  double latency_equation = 0.0;     ///< eq. (2): T0 + max(T3,T4) + T5 + T6
};

class PipelineSimulator {
 public:
  PipelineSimulator(const stap::StapParams& p, const ParagonParams& machine);

  /// Total bytes per CPI crossing edge `e` (all node pairs combined). The
  /// same quantity the real pipeline's byte counters measure.
  double edge_volume_bytes(SimEdge e) const;

  /// Simulate `num_cpis` CPIs; phase times average the middle CPIs.
  SimResult simulate(const NodeAssignment& assign, index_t num_cpis = 25,
                     index_t warmup = 3, index_t cooldown = 2) const;

  /// Simulate with replicated pipeline stages (see ReplicationPlan).
  SimResult simulate_replicated(const NodeAssignment& assign,
                                const ReplicationPlan& plan,
                                index_t num_cpis = 25, index_t warmup = 3,
                                index_t cooldown = 2) const;

  /// The round-robin (non-pipelined) deployment baseline on `nodes` nodes.
  RoundRobinResult round_robin(int nodes) const;

  /// Simulate a mid-stream processor re-allocation (see ReallocationPlan).
  /// `warmup` CPIs are excluded at the start of each phase's averages.
  DynamicSimResult simulate_reallocation(const ReallocationPlan& plan,
                                         index_t num_cpis,
                                         index_t warmup = 3) const;

  /// Bytes of adaptive state that must migrate on re-allocation: the easy
  /// training history plus the hard bins' triangular factors.
  double weight_state_bytes() const;

  /// Compute time of one task on `nodes` nodes (Fig. 11's quantity). The
  /// model accounts for work-item granularity: a task with W independent
  /// items (bins, range cells, units) on P nodes runs in time proportional
  /// to ceil(W / P) — the load imbalance visible in the paper's own
  /// measurements (e.g. easy weights speed up by 1.79x, not 2x, from 8 to
  /// 16 nodes because 72 bins split 5/4).
  double compute_time(stap::Task t, int nodes) const;

  /// Independent work items of a task under the current parameters.
  index_t work_items(stap::Task t) const;

  /// The non-idle per-CPI time of a task: input/unpack + compute + pack +
  /// post. In steady state the pipeline period is max_i intrinsic_time(i),
  /// which makes this the objective for throughput-oriented assignment.
  double intrinsic_time(stap::Task t, const NodeAssignment& assign) const;

  const stap::StapParams& params() const { return p_; }
  const ParagonParams& machine() const { return m_; }

 private:
  stap::StapParams p_;
  ParagonParams m_;
};

/// Greedy node-assignment search: distribute `total_nodes` to maximize
/// throughput (minimize the slowest task) under the machine model. Every
/// task keeps at least one node; counts are capped by the per-task work
/// item limits of NodeAssignment::validate.
NodeAssignment assign_for_throughput(const PipelineSimulator& sim,
                                     int total_nodes);

/// Greedy node-assignment search minimizing simulated latency subject to a
/// throughput floor (CPIs/second); pass 0 for unconstrained latency
/// minimization.
NodeAssignment assign_for_latency(const PipelineSimulator& sim,
                                  int total_nodes, double min_throughput);

}  // namespace ppstap::core
