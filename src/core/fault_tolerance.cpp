#include "core/fault_tolerance.hpp"

#include "common/env.hpp"

namespace ppstap::core {

FaultToleranceConfig FaultToleranceConfig::from_env() {
  FaultToleranceConfig cfg;
  // 0 is accepted and means "leave shedding off" so scripted sweeps can
  // export the variable unconditionally.
  if (auto d = parse_env_double("PPSTAP_FAULT_DEADLINE", 0.0, 1e6);
      d && *d > 0.0) {
    cfg.shedding = true;
    cfg.cpi_deadline_seconds = *d;
  }
  if (auto f = parse_env_flag("PPSTAP_FAULT_SPARE")) cfg.spare_rank = *f;
  // 0 is accepted (explicitly no pool) so sweeps can export unconditionally.
  if (auto n = parse_env_int("PPSTAP_SPARES", 0, 64))
    cfg.spares = static_cast<int>(*n);
  if (auto f = parse_env_flag("PPSTAP_HEAL_SHRINK")) cfg.heal_shrink = *f;
  if (auto d = parse_env_double("PPSTAP_FAULT_POLL", 1e-6, 60.0))
    cfg.death_poll_seconds = *d;
  return cfg;
}

}  // namespace ppstap::core
