#include "core/fault_tolerance.hpp"

#include "common/env.hpp"

namespace ppstap::core {

FaultToleranceConfig FaultToleranceConfig::from_env() {
  FaultToleranceConfig cfg;
  // 0 is accepted and means "leave shedding off" so scripted sweeps can
  // export the variable unconditionally.
  if (auto d = parse_env_double("PPSTAP_FAULT_DEADLINE", 0.0, 1e6);
      d && *d > 0.0) {
    cfg.shedding = true;
    cfg.cpi_deadline_seconds = *d;
  }
  if (auto f = parse_env_flag("PPSTAP_FAULT_SPARE")) cfg.spare_rank = *f;
  if (auto d = parse_env_double("PPSTAP_FAULT_POLL", 1e-6, 60.0))
    cfg.death_poll_seconds = *d;
  return cfg;
}

}  // namespace ppstap::core
