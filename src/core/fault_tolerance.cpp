#include "core/fault_tolerance.hpp"

#include <cstdlib>

namespace ppstap::core {

FaultToleranceConfig FaultToleranceConfig::from_env() {
  FaultToleranceConfig cfg;
  if (const char* v = std::getenv("PPSTAP_FAULT_DEADLINE")) {
    const double d = std::atof(v);
    if (d > 0.0) {
      cfg.shedding = true;
      cfg.cpi_deadline_seconds = d;
    }
  }
  if (const char* v = std::getenv("PPSTAP_FAULT_SPARE"))
    cfg.spare_rank = std::atoi(v) != 0;
  if (const char* v = std::getenv("PPSTAP_FAULT_POLL")) {
    const double d = std::atof(v);
    if (d > 0.0) cfg.death_poll_seconds = d;
  }
  return cfg;
}

}  // namespace ppstap::core
