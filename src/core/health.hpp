// Per-rank gray-failure detection: health-scored straggler quarantine.
//
// The paper's placement machinery (eq. 1, Tables 7-10) assumes every rank
// of a task group runs at nominal speed: throughput is the inverse of the
// slowest task, so one degraded-but-alive rank silently caps the whole
// pipeline while every existing defense stays quiet — death detection
// (World::rank_dead) is binary fail-stop, and the overload ladder reads a
// straggler as global overload and degrades everyone. This module closes
// that gap:
//
//  * Detect. Every rank feeds its Fig.-10 phase timestamps (already taken
//    for the trace spans) into a HealthMonitor: an EWMA of the rank's
//    *intrinsic* per-CPI service (compute + send, i.e. t3 - t1 — the
//    queue-wait absorbed in the receive phase is excluded, so ranks merely
//    blocked *behind* a straggler are never flagged) plus an EWMA of its
//    queue wait for the ledger. The sink's periodic scan (the pipelined
//    front can run arbitrarily far ahead of a straggler, so the scan rides
//    the rank that is last to see every CPI — by the time the sink
//    completes CPI i, every upstream rank has sampled it) scores each
//    rank against its task-group peers with a leave-one-out z-score over
//    the peers' service FLOORS — the minimum over each rank's last few raw
//    samples. The floor is the robust statistic for gray failure: a truly
//    degraded rank stretches every sample (the slowdown is
//    multiplicative), so its window minimum is elevated, while scheduler
//    preemption and cache noise only inflate individual samples — one
//    clean sample per window keeps a healthy rank's floor at its true
//    compute cost (the deliberate trade: a straggler slow only on a
//    minority of CPIs hides below the floor and is absorbed instead of
//    evicted). The z-score is floored by a relative std so tiny clean-run
//    variance cannot manufacture outliers, and double-gated: a minimum
//    peer-relative service ratio, plus an absolute floor (`min_service`)
//    under which microsecond-noise groups are never scored at all.
//
//  * Hysteresis. A straggler verdict accrues a strike; `dwell` consecutive
//    scan strikes are required before any action, and strikes only clear
//    once the score falls below half the threshold — so a rank flickering
//    around the threshold neither escalates nor resets on every tick.
//
//  * Mitigate. A confirmed straggler is quarantined by treating it as a
//    voluntary death: the monitor raises a flag the rank itself polls at
//    its next CPI barrier and honours by throwing comm::RankKilled, which
//    hands the rank to the existing recovery machinery (spare-pool
//    takeover, else elastic shrink-to-survivors), ledgered with mechanism
//    "quarantine" and MTTR. Two guards precede eviction: a flap budget
//    (`flap_limit` quarantines per rank per run, so an intermittently slow
//    rank is not evicted repeatedly), and a do-no-harm gate — an eq.-1
//    throughput prediction built from the same per-group intrinsic EWMAs
//    the critical-path analyzer uses: eviction must shrink the pipeline
//    period (straggler group healed vs. every other group's estimate) by
//    at least `min_gain`, otherwise the verdict is vetoed and ledgered.
//
// Everything is exported as a HealthLedger on PipelineResult and as
// health.* counters in every bench --json robustness block.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ppstap::core {

struct HealthConfig {
  /// Master switch (PPSTAP_HEALTH). Off by default: scoring costs one
  /// mutexed EWMA update per rank per CPI, and quarantine changes failure
  /// semantics — operators opt in.
  bool enabled = false;
  /// Leave-one-out peer z-score a rank must exceed to strike
  /// (PPSTAP_HEALTH_ZSCORE).
  double zscore = 4.0;
  /// Consecutive straggler scans required before quarantine
  /// (PPSTAP_HEALTH_DWELL).
  int dwell = 3;
  /// Whether a confirmed straggler is actually evicted
  /// (PPSTAP_HEALTH_QUARANTINE); off = detect-and-ledger only.
  bool quarantine = true;
  /// EWMA weight of the newest per-CPI sample.
  double alpha = 0.3;
  /// Second gate: the straggler's service EWMA must also exceed the peer
  /// mean by this ratio (z-scores alone explode when peers are uniform).
  double min_ratio = 1.5;
  /// Samples a rank needs before it can be scored at all.
  int min_samples = 3;
  /// Absolute service floor (seconds, PPSTAP_HEALTH_MIN_SERVICE): a rank
  /// whose service EWMA sits below it is never flagged, however its peers
  /// compare — sub-floor groups live in scheduler-noise territory where a
  /// relative z-score is meaningless, and a straggler that slow cannot be
  /// gating the pipeline anyway.
  double min_service = 1e-4;
  /// Quarantines allowed per rank per run (the flap guard).
  int flap_limit = 1;
  /// Do-no-harm margin: predicted eq.-1 period shrink required to evict.
  double min_gain = 0.05;

  /// Read the PPSTAP_HEALTH* knobs (see README). Garbage throws.
  static HealthConfig from_env();
  /// Throws ppstap::Error on an inconsistent configuration.
  void validate() const;
};

/// Final per-rank health summary (one row per rank that produced samples).
struct RankHealth {
  int rank = -1;
  int task = -1;  ///< stap::Task ordinal of the last observed role
  long long samples = 0;
  double ewma_service = 0.0;  ///< intrinsic per-CPI service estimate, s
  double ewma_queue = 0.0;    ///< receive queue-wait estimate, s
  /// Window-minimum service (the scored statistic): min over the last
  /// kFloorWindow raw samples — preemption-noise free.
  double floor_service = 0.0;
  double last_zscore = 0.0;   ///< peer z-score at the last scan
  int strikes = 0;            ///< consecutive straggler scans, current
  bool suspect = false;       ///< at least one strike outstanding
  bool quarantined = false;   ///< evicted by the monitor this run
};

/// One detector state transition, in scan order.
struct HealthEvent {
  int rank = -1;
  int task = -1;
  long long cpi = -1;     ///< coordinator CPI at the scan
  double zscore = 0.0;
  /// "suspect" | "clear" | "quarantine" | "flap_suppressed" | "vetoed"
  std::string action;
};

struct HealthLedger {
  std::vector<RankHealth> ranks;
  std::vector<HealthEvent> events;
  std::uint64_t suspects = 0;         ///< suspect transitions raised
  std::uint64_t quarantines = 0;      ///< evictions actually requested
  std::uint64_t flap_suppressed = 0;  ///< evictions stopped by the budget
  std::uint64_t vetoed = 0;           ///< evictions stopped by do-no-harm
  /// A clean bill: nothing was ever suspected (the false-quarantine gate
  /// on clean runs asserts this, not just quarantines == 0).
  bool clean() const { return events.empty(); }
};

/// One task group presented to a scan: the live, scoreable ranks.
struct HealthGroup {
  int task = -1;
  std::vector<int> ranks;
};

/// Shared detector: every rank thread calls observe() once per CPI; the
/// sink rank calls scan() once per completed CPI; every rank polls
/// quarantine_requested() at its CPI barrier.
class HealthMonitor {
 public:
  HealthMonitor(const HealthConfig& cfg, int n_ranks);

  /// Fold one Fig.-10 cycle: `service_s` is the intrinsic time (t3 - t1),
  /// `queue_s` the receive wait (t1 - t0). Ignored once the rank is
  /// quarantined (its tail samples are the straggler's, not its spare's).
  void observe(int rank, int task, long long cpi, double service_s,
               double queue_s);

  /// Score every group against its peers and advance the detector state
  /// machine. `spare_available` selects the do-no-harm model (takeover
  /// restores the group; shrink redistributes the straggler's share over
  /// the survivors); with neither a spare nor shrink available the evictee
  /// would die uncovered, so every eviction is vetoed.
  void scan(long long cpi, const std::vector<HealthGroup>& groups,
            bool spare_available, bool shrink_available);

  /// Lock-free poll: should `rank` treat itself as voluntarily dead now?
  bool quarantine_requested(int rank) const {
    return quarantine_flag_[static_cast<size_t>(rank)].load(
        std::memory_order_acquire);
  }

  /// Whether `rank` was ever evicted by this monitor (attribution for the
  /// healing ledger: its death gets mechanism "quarantine", not "spare").
  bool was_quarantined(int rank) const;

  /// A spare took over `rank`'s identity: clear the eviction request,
  /// reset the rank's statistics (the replacement hardware is healthy),
  /// and remember the revival so per-rank fault rules keyed on the old
  /// identity are not re-applied to the newcomer.
  void on_revived(int rank);
  /// True once on_revived(rank) has run (polled by the compute wrapper to
  /// skip kSlow rules for the healthy replacement).
  bool revived(int rank) const {
    return revived_[static_cast<size_t>(rank)].load(
        std::memory_order_acquire);
  }

  const HealthConfig& config() const { return cfg_; }

  /// Post-run accounting (call after the stream drains).
  HealthLedger ledger() const;

 private:
  /// Raw samples per floor window: small enough that a freshly slowed
  /// rank's floor rises within one detector dwell, large enough that a
  /// healthy rank almost surely lands one unpreempted sample per window.
  static constexpr int kFloorWindow = 8;

  struct RankState {
    long long samples = 0;
    double ewma_service = 0.0;
    double ewma_queue = 0.0;
    std::array<double, kFloorWindow> recent{};  ///< raw-sample ring
    int recent_n = 0;                           ///< filled entries
    int recent_idx = 0;                         ///< next write slot
    double last_zscore = 0.0;
    int task = -1;
    int strikes = 0;
    int quarantine_count = 0;
    bool suspect = false;
    bool quarantined = false;
  };

  /// Window-minimum of the rank's recent raw samples (0 until a sample
  /// lands); the statistic every straggler verdict is scored on.
  static double floor_of(const RankState& s);

  /// Predicted eq.-1 gain check for evicting `rank` from `group`; caller
  /// holds mu_. `healthy` are the peer service floors.
  bool do_no_harm_ok(const std::vector<HealthGroup>& groups,
                     const HealthGroup& group, int rank,
                     const std::vector<double>& healthy,
                     bool spare_available, bool shrink_available) const;
  double group_period(const HealthGroup& g) const;  ///< caller holds mu_

  HealthConfig cfg_;
  mutable std::mutex mu_;
  std::vector<RankState> state_;
  std::vector<HealthEvent> events_;
  std::uint64_t suspects_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t flap_suppressed_ = 0;
  std::uint64_t vetoed_ = 0;
  std::vector<std::atomic<bool>> quarantine_flag_;
  std::vector<std::atomic<bool>> revived_;
};

}  // namespace ppstap::core
