#include "core/elastic.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <span>
#include <thread>
#include <utility>

#include "comm/world.hpp"
#include "common/check.hpp"
#include "common/checksum.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ppstap::core {

namespace {

using stap::Task;

// Control-message tag slots. Data edges use slots 0-8 of the per-CPI tag
// stride (pipeline.cpp tag_for); the migration protocol takes 10 and 11,
// keyed by the barrier CPI so retries at a later barrier can never match a
// stale attempt's frames.
constexpr int kTagStride = 16;
constexpr int kVoteSlot = 10;
constexpr int kVerdictSlot = 11;

int vote_tag(index_t barrier_cpi) {
  return static_cast<int>(barrier_cpi) * kTagStride + kVoteSlot;
}
int verdict_tag(index_t barrier_cpi) {
  return static_cast<int>(barrier_cpi) * kTagStride + kVerdictSlot;
}

struct VotePayload {
  std::int32_t rank = -1;
  std::int32_t attempt = -1;
  std::int64_t barrier_cpi = -1;
  std::uint64_t ckpt_checksum = 0;
  std::uint64_t topo_checksum = 0;
};

struct VerdictPayload {
  std::int32_t attempt = -1;
  std::int32_t committed = 0;
  std::int64_t barrier_cpi = -1;
};

const cube::BlockPartition& partition_for(const Topology& t, Task task) {
  switch (task) {
    case Task::kDopplerFilter:
      return t.part_k;
    case Task::kEasyWeight:
      return t.part_ewt;
    case Task::kHardWeight:
      return t.part_hwu;
    case Task::kEasyBeamform:
      return t.part_ebf;
    case Task::kHardBeamform:
      return t.part_hbf;
    case Task::kPulseCompression:
      return t.part_pc;
    default:
      return t.part_cfar;
  }
}

void rebuild_partitions(Topology& t, const stap::StapParams& p) {
  using cube::BlockPartition;
  t.part_k = BlockPartition(p.num_range, t.count(Task::kDopplerFilter));
  t.part_ewt = BlockPartition(p.num_easy(), t.count(Task::kEasyWeight));
  t.part_hwu = BlockPartition(p.num_hard * p.num_segments,
                              t.count(Task::kHardWeight));
  t.part_ebf = BlockPartition(p.num_easy(), t.count(Task::kEasyBeamform));
  t.part_hbf = BlockPartition(p.num_hard, t.count(Task::kHardBeamform));
  t.part_pc = BlockPartition(p.num_pulses, t.count(Task::kPulseCompression));
  t.part_cfar = BlockPartition(p.num_pulses, t.count(Task::kCfar));
}

/// Partition-state checkpoint for the stateless per-CPI tasks: everything a
/// successor needs (the (task, local) slot, resume CPI, and owned slice) is
/// derivable from the topology, which is exactly why these tasks migrate
/// bit-exactly. Beamform shares the serializer but reports
/// can_transfer() == false: its weight cache and in-flight temporal weight
/// frames (TD_{1,3}/TD_{2,4}) are not reconstructible from a topology.
class PartitionStateTransfer final : public SolverStateTransfer {
 public:
  explicit PartitionStateTransfer(Task t) : task_(t) {}
  const char* scheme() const override { return "partition-state-v1"; }
  bool can_transfer() const override { return task_migratable(task_); }
  std::vector<std::byte> save(const Topology& t, Topology::Role role,
                              index_t next_cpi) const override {
    const cube::BlockPartition& part = partition_for(t, task_);
    const std::int64_t words[5] = {
        static_cast<std::int64_t>(task_), role.local,
        static_cast<std::int64_t>(next_cpi), part.offset(role.local),
        part.length(role.local)};
    std::vector<std::byte> blob(sizeof(words));
    std::memcpy(blob.data(), words, sizeof(words));
    return blob;
  }

 private:
  Task task_;
};

/// The adaptive-weight tasks carry cross-CPI solver state (easy training
/// history, hard triangular factors) that today's solver cannot hand to a
/// differently-sized group mid-recursion; they attest their progress at the
/// barrier but refuse transfer. A pluggable cheap-solver weight path in the
/// style of arXiv:1008.4160 would implement can_transfer() == true here and
/// make the weight groups elastic without touching the protocol.
class AdaptiveWeightStateTransfer final : public SolverStateTransfer {
 public:
  explicit AdaptiveWeightStateTransfer(Task t) : task_(t) {}
  const char* scheme() const override { return "adaptive-weight-attest-v1"; }
  bool can_transfer() const override { return false; }
  std::vector<std::byte> save(const Topology& t, Topology::Role role,
                              index_t next_cpi) const override {
    const cube::BlockPartition& part = partition_for(t, task_);
    const std::int64_t words[4] = {static_cast<std::int64_t>(task_),
                                   role.local,
                                   static_cast<std::int64_t>(next_cpi),
                                   part.length(role.local)};
    std::vector<std::byte> blob(sizeof(words));
    std::memcpy(blob.data(), words, sizeof(words));
    return blob;
  }

 private:
  Task task_;
};

void emit_migration_span(const char* name, int rank, index_t barrier_cpi,
                         double t0, double t1) {
  if (!obs::tracing_enabled()) return;
  obs::emit({name, "fault", rank, obs::kFaultTrack,
             static_cast<std::int64_t>(barrier_cpi), t0, t1, -1, -1});
}

}  // namespace

bool task_migratable(Task t) {
  return t == Task::kDopplerFilter || t == Task::kPulseCompression ||
         t == Task::kCfar;
}

std::unique_ptr<SolverStateTransfer> make_state_transfer(Task t) {
  if (t == Task::kEasyWeight || t == Task::kHardWeight)
    return std::make_unique<AdaptiveWeightStateTransfer>(t);
  return std::make_unique<PartitionStateTransfer>(t);
}

Topology Topology::initial(const stap::StapParams& p,
                           const NodeAssignment& a) {
  Topology t;
  t.assign = a;
  int next = 0;
  for (size_t task = 0; task < static_cast<size_t>(stap::kNumTasks); ++task)
    for (int l = 0; l < a.nodes[task]; ++l) t.ranks[task].push_back(next++);
  rebuild_partitions(t, p);
  return t;
}

Topology Topology::migrated(const stap::StapParams& p, Task donor,
                            Task recipient) const {
  PPSTAP_REQUIRE(donor != recipient, "donor and recipient must differ");
  PPSTAP_REQUIRE(task_migratable(donor) && task_migratable(recipient),
                 "only the stateless per-CPI tasks migrate");
  PPSTAP_REQUIRE(count(donor) >= 2, "donor must keep at least one rank");
  Topology t = *this;
  auto& from = t.ranks[static_cast<size_t>(donor)];
  const int mover = from.back();
  from.pop_back();
  t.ranks[static_cast<size_t>(recipient)].push_back(mover);
  t.assign.nodes[static_cast<size_t>(donor)] -= 1;
  t.assign.nodes[static_cast<size_t>(recipient)] += 1;
  rebuild_partitions(t, p);
  return t;
}

Topology Topology::shrunk(const stap::StapParams& p, int dead_rank) const {
  const Role role = role_of(dead_rank);
  PPSTAP_REQUIRE(task_migratable(role.task),
                 "only the stateless per-CPI task groups can shrink");
  PPSTAP_REQUIRE(count(role.task) >= 2,
                 "shrinking group must keep at least one rank");
  Topology t = *this;
  auto& group = t.ranks[static_cast<size_t>(role.task)];
  group.erase(group.begin() + role.local);
  t.assign.nodes[static_cast<size_t>(role.task)] -= 1;
  rebuild_partitions(t, p);
  return t;
}

int Topology::total() const {
  int n = 0;
  for (const auto& group : ranks) n += static_cast<int>(group.size());
  return n;
}

Topology::Role Topology::role_of(int global_rank) const {
  for (size_t task = 0; task < ranks.size(); ++task) {
    const auto& group = ranks[task];
    for (size_t local = 0; local < group.size(); ++local)
      if (group[local] == global_rank)
        return Role{static_cast<Task>(task), static_cast<int>(local)};
  }
  PPSTAP_CHECK(false, "rank not present in topology");
  return Role{};
}

std::uint64_t Topology::checksum() const {
  std::vector<std::int64_t> words;
  for (size_t task = 0; task < ranks.size(); ++task) {
    words.push_back(assign.nodes[task]);
    for (int r : ranks[task]) words.push_back(r);
  }
  return checksum_of(std::span<const std::int64_t>(words));
}

ElasticConfig ElasticConfig::from_env() {
  ElasticConfig cfg;
  if (const auto v = parse_env_flag("PPSTAP_ELASTIC")) cfg.enabled = *v;
  if (const auto v = parse_env_int("PPSTAP_ELASTIC_HORIZON", 1, 1000000))
    cfg.horizon_cpis = static_cast<int>(*v);
  if (const auto v =
          parse_env_double("PPSTAP_ELASTIC_STALL_BUDGET", 1e-3, 3600.0))
    cfg.stall_budget_seconds = *v;
  if (const auto v = parse_env_int("PPSTAP_ELASTIC_MAX_MIGRATIONS", 0, 64))
    cfg.max_migrations = static_cast<int>(*v);
  cfg.validate();
  return cfg;
}

void ElasticConfig::validate() const {
  PPSTAP_REQUIRE(horizon_cpis >= 1, "elastic horizon must be >= 1 CPI");
  PPSTAP_REQUIRE(stall_budget_seconds > 0.0,
                 "elastic stall budget must be positive");
  PPSTAP_REQUIRE(max_migrations >= 0, "max_migrations must be >= 0");
  PPSTAP_REQUIRE(barrier_margin >= 1, "barrier margin must be >= 1");
  PPSTAP_REQUIRE(min_gain_fraction >= 0.0, "min gain must be >= 0");
  PPSTAP_REQUIRE(cooldown_cpis >= 0, "cooldown must be >= 0");
  for (const ForcedMigration& f : forced) {
    PPSTAP_REQUIRE(f.at_cpi >= 0, "forced migration CPI must be >= 0");
    PPSTAP_REQUIRE(f.donor != f.recipient &&
                       task_migratable(f.donor) && task_migratable(f.recipient),
                   "forced migration must move between distinct migratable "
                   "task groups");
  }
}

int MigrationLedger::committed() const {
  int n = 0;
  for (const auto& e : attempts) n += e.outcome == "committed" ? 1 : 0;
  return n;
}

int MigrationLedger::rolled_back() const {
  int n = 0;
  for (const auto& e : attempts) n += e.outcome == "rolled_back" ? 1 : 0;
  return n;
}

ElasticEngine::ElasticEngine(comm::World* world, const stap::StapParams& p,
                             Topology initial, ElasticConfig cfg,
                             index_t n_cpis)
    : world_(world),
      params_(p),
      cfg_(std::move(cfg)),
      n_cpis_(n_cpis),
      total_ranks_(initial.total()),
      coordinator_rank_(initial.rank_at(Task::kDopplerFilter, 0)) {
  cfg_.validate();
  PPSTAP_REQUIRE(n_cpis_ >= 1, "elastic engine needs a nonempty stream");
  // Headroom covers the optimization migrations plus, in the worst case,
  // one shrink epoch per topology rank.
  epoch_capacity_ = cfg_.forced.size() +
                    static_cast<size_t>(cfg_.max_migrations) + 8 +
                    static_cast<size_t>(total_ranks_);
  epochs_.reserve(epoch_capacity_);
  epochs_.push_back(Epoch{0, std::move(initial)});
  epoch_count_.store(1, std::memory_order_release);
  progress_ = std::vector<std::atomic<index_t>>(
      static_cast<size_t>(total_ranks_));
  for (auto& x : progress_) x.store(-1, std::memory_order_relaxed);
  voted_ = std::vector<std::atomic<int>>(static_cast<size_t>(total_ranks_));
  for (auto& v : voted_) v.store(-1, std::memory_order_relaxed);
}

const Topology& ElasticEngine::topo(index_t cpi) const {
  const size_t n = epoch_count_.load(std::memory_order_acquire);
  for (size_t i = n; i-- > 1;)
    if (epochs_[i].begin_cpi <= cpi) return epochs_[i].topology;
  return epochs_[0].topology;
}

const Topology& ElasticEngine::final_topology() const {
  return topo(n_cpis_ - 1);
}

int ElasticEngine::epoch_count() const {
  return static_cast<int>(epoch_count_.load(std::memory_order_acquire));
}

const Topology& ElasticEngine::barrier_point(comm::Comm& c, index_t cpi) {
  const int rank = c.rank();
  // Forced migrations promise determinism (tests/benches), so no rank may
  // run past an unproposed entry's trigger CPI: a fast pipeline could
  // otherwise push every rank's progress beyond the last legal barrier
  // slot before the coordinator even ticks, and the entry would be
  // silently unplaceable. The coordinator is exempt (it must reach the
  // trigger to propose), and the hold is bounded by the stall budget so a
  // dead coordinator cannot wedge the stream.
  if (rank != coordinator_rank_ && !cfg_.forced.empty()) {
    const double give_up = WallTimer::now() + cfg_.stall_budget_seconds;
    for (;;) {
      const size_t nf = next_forced_.load(std::memory_order_acquire);
      if (nf >= cfg_.forced.size() || cpi <= cfg_.forced[nf].at_cpi) break;
      if (WallTimer::now() >= give_up) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  // seq_cst store/load pair against propose()'s publish + re-check: either
  // this rank sees the pending proposal here, or the coordinator sees this
  // progress already at/past the barrier and rolls the attempt back.
  progress_[static_cast<size_t>(rank)].store(cpi, std::memory_order_seq_cst);
  Proposal* p = pending_.load(std::memory_order_seq_cst);
  if (p != nullptr && cpi >= p->barrier_cpi &&
      p->outcome.load(std::memory_order_acquire) == kPending) {
    if (voted_[static_cast<size_t>(rank)].load(std::memory_order_relaxed) <
        p->attempt) {
      voted_[static_cast<size_t>(rank)].store(p->attempt,
                                              std::memory_order_relaxed);
      participate(c, *p);
    } else if (rank != coordinator_rank_) {
      // A spare-revived incarnation of a participant whose corpse died
      // inside the window after marking its vote. Whether that vote was
      // delivered is the coordinator's problem (a missing one times the
      // attempt out); this rank must still hold at the barrier for the
      // verdict — sailing past with the pre-commit topology while the
      // commit re-partitions its peers would desynchronize the epochs.
      await_verdict(c, *p);
    }
  }
  return topo(cpi);
}

void ElasticEngine::participate(comm::Comm& c, Proposal& p) {
  // Checkpoint under the pre-migration topology: the blob's checksum rides
  // on the vote, so the coordinator learns every rank quiesced at B with a
  // serializable state snapshot before anything commits.
  const Topology& cur = topo(p.barrier_cpi > 0 ? p.barrier_cpi - 1 : 0);
  const Topology::Role role = cur.role_of(c.rank());
  const auto transfer = make_state_transfer(role.task);
  const std::vector<std::byte> blob =
      transfer->save(cur, role, p.barrier_cpi);
  const std::uint64_t ckpt_sum =
      checksum_bytes(std::span<const std::byte>(blob));
  if (c.rank() == coordinator_rank_) {
    collect_votes(c, p);
    return;
  }
  const VotePayload vote{static_cast<std::int32_t>(c.rank()),
                         static_cast<std::int32_t>(p.attempt),
                         static_cast<std::int64_t>(p.barrier_cpi), ckpt_sum,
                         p.next.checksum()};
  c.send<VotePayload>(coordinator_rank_, vote_tag(p.barrier_cpi),
                      std::span<const VotePayload>(&vote, 1));
  await_verdict(c, p);
}

void ElasticEngine::collect_votes(comm::Comm& c, Proposal& p) {
  const double t0 = WallTimer::now();
  const double deadline = t0 + cfg_.stall_budget_seconds;
  const char* reason = nullptr;
  // A live-rank migration aborts if the mover died; a shrink aborts if its
  // target came back to life (a late spare takeover raced the proposal).
  if (world_ != nullptr && !p.shrink && world_->rank_dead(p.migrating_rank))
    reason = "migrating_rank_dead";
  if (world_ != nullptr && p.shrink && !world_->rank_dead(p.migrating_rank))
    reason = "shrink_target_alive";
  for (int r = 0; reason == nullptr && r < total_ranks_; ++r) {
    if (r == c.rank()) continue;
    // The shrink target is dead by construction: no vote will ever come.
    if (p.shrink && r == p.migrating_rank) continue;
    const double remaining = std::max(1e-3, deadline - WallTimer::now());
    const comm::RecvResult res =
        c.recv_bytes_for(r, vote_tag(p.barrier_cpi), remaining);
    if (!res.ok()) {
      reason = res.status == comm::RecvStatus::kPeerDead ? "vote_peer_dead"
               : res.status == comm::RecvStatus::kCorrupt ? "vote_corrupt"
                                                          : "vote_timeout";
      break;
    }
    const auto votes = res.as<VotePayload>();
    if (votes.size() != 1 || votes[0].rank != r ||
        votes[0].attempt != p.attempt ||
        votes[0].barrier_cpi != static_cast<std::int64_t>(p.barrier_cpi) ||
        votes[0].topo_checksum != p.next_checksum)
      reason = "vote_mismatch";
  }
  // A rank that died after voting would leave a committed topology with a
  // dead member; re-check liveness right before the commit point. For a
  // shrink the target must (still) be dead instead.
  if (reason == nullptr && world_ != nullptr) {
    if (!p.shrink && world_->rank_dead(p.migrating_rank))
      reason = "migrating_rank_dead";
    if (p.shrink && !world_->rank_dead(p.migrating_rank))
      reason = "shrink_target_alive";
  }
  const int out = resolve(p, reason == nullptr ? kCommitted : kRolledBack,
                          reason == nullptr ? "" : reason);
  emit_migration_span(out == kCommitted
                          ? (p.shrink ? "shrink_commit" : "migration_commit")
                          : "migration_rollback",
                      c.rank(), p.barrier_cpi, t0, WallTimer::now());
  const VerdictPayload verdict{static_cast<std::int32_t>(p.attempt),
                               out == kCommitted ? 1 : 0,
                               static_cast<std::int64_t>(p.barrier_cpi)};
  for (int r = 0; r < total_ranks_; ++r) {
    if (r == c.rank()) continue;
    if (p.shrink && r == p.migrating_rank) continue;
    c.send<VerdictPayload>(r, verdict_tag(p.barrier_cpi),
                           std::span<const VerdictPayload>(&verdict, 1));
  }
}

void ElasticEngine::await_verdict(comm::Comm& c, Proposal& p) {
  // Twice the vote budget plus margin: the coordinator itself waits up to
  // one budget for the slowest voter before it can possibly answer.
  const double budget = 2.0 * cfg_.stall_budget_seconds + 1.0;
  const comm::RecvResult res =
      c.recv_bytes_for(coordinator_rank_, verdict_tag(p.barrier_cpi), budget);
  int out;
  if (res.ok()) {
    const auto verdicts = res.as<VerdictPayload>();
    if (verdicts.size() == 1 && verdicts[0].attempt == p.attempt) {
      // The coordinator resolved before sending; this CAS can only read.
      out = resolve(p, verdicts[0].committed != 0 ? kCommitted : kRolledBack,
                    verdicts[0].committed != 0 ? "" : "coordinator_abort");
    } else {
      out = resolve(p, kRolledBack, "verdict_mismatch");
    }
  } else {
    const char* reason =
        res.status == comm::RecvStatus::kPeerDead    ? "coordinator_dead"
        : res.status == comm::RecvStatus::kCorrupt ? "verdict_corrupt"
                                                   : "verdict_timeout";
    out = resolve(p, kRolledBack, reason);
  }
  if (out == kCommitted) wait_epoch_covering(p.barrier_cpi);
}

int ElasticEngine::resolve(Proposal& p, int outcome,
                           const std::string& reason) {
  int expected = kPending;
  if (!p.outcome.compare_exchange_strong(expected, outcome,
                                         std::memory_order_acq_rel)) {
    return expected;  // someone else already resolved the attempt
  }
  // CAS winner publishes the result for everyone. On commit the epoch goes
  // out first, with no comm operation (hence no injectable kill) between
  // the CAS and the publish: a rank that reads kCommitted is guaranteed a
  // bounded wait for the epoch.
  const double commit_time = WallTimer::now();
  if (outcome == kCommitted) {
    publish_epoch(p);
    if (p.shrink) {
      obs::Registry::global().counter("elastic.shrinks_committed").add(1);
    } else {
      committed_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::global().counter("elastic.migrations_committed").add(1);
    }
  } else {
    obs::Registry::global().counter("elastic.migrations_rolled_back").add(1);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    MigrationEvent& e = events_[static_cast<size_t>(p.attempt)];
    e.outcome = outcome == kCommitted ? "committed" : "rolled_back";
    e.abort_reason = reason;
    if (outcome != kCommitted) {
      cooldown_until_ = p.barrier_cpi + cfg_.cooldown_cpis;
      // A rolled-back shrink may be re-proposed at the next tick.
      if (p.shrink)
        shrunk_ranks_.erase(std::remove(shrunk_ranks_.begin(),
                                        shrunk_ranks_.end(),
                                        p.migrating_rank),
                            shrunk_ranks_.end());
    }
  }
  if (outcome == kCommitted && p.shrink && shrink_callback_)
    shrink_callback_(p.migrating_rank, static_cast<int>(p.donor),
                     p.barrier_cpi, commit_time);
  Proposal* expect_p = &p;
  pending_.compare_exchange_strong(expect_p, nullptr);
  cv_.notify_all();
  // Flight recorder: every rolled-back migration leaves a bounded trace
  // ring on disk (no-op unless armed), same as aborts and failovers.
  if (outcome != kCommitted) obs::flight_dump("migration_rollback");
  return outcome;
}

void ElasticEngine::publish_epoch(const Proposal& p) {
  std::lock_guard<std::mutex> lock(mu_);
  PPSTAP_CHECK(epochs_.size() < epoch_capacity_,
               "elastic epoch capacity exhausted");
  epochs_.push_back(Epoch{p.barrier_cpi, p.next});
  epoch_count_.store(epochs_.size(), std::memory_order_release);
  cv_.notify_all();
}

void ElasticEngine::wait_epoch_covering(index_t cpi) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool ok =
      cv_.wait_for(lock, std::chrono::seconds(30), [&] {
        return !epochs_.empty() && epochs_.back().begin_cpi >= cpi;
      });
  PPSTAP_CHECK(ok, "committed migration epoch was never published");
}

bool ElasticEngine::any_rank_dead() const {
  if (world_ == nullptr) return false;
  for (int r = 0; r < total_ranks_; ++r)
    if (world_->rank_dead(r)) return true;
  return false;
}

bool ElasticEngine::rank_permanently_dead(int rank) const {
  return world_ != nullptr && world_->rank_dead(rank) &&
         !world_->rank_recoverable(rank);
}

void ElasticEngine::set_shrink(bool enabled, ShrinkCallback on_commit) {
  std::lock_guard<std::mutex> lock(mu_);
  shrink_enabled_ = enabled;
  shrink_callback_ = std::move(on_commit);
}

std::vector<int> ElasticEngine::shrunk_ranks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shrunk_ranks_;
}

void ElasticEngine::shrink_tick(index_t cpi) {
  if (!shrink_enabled_ || world_ == nullptr) return;
  if (pending_.load(std::memory_order_relaxed) != nullptr) return;
  // Scan the current topology for permanent deaths (dead and no longer
  // recoverable: the spare pool is exhausted or was never there). A rank
  // already healed by a committed shrink is gone from topo(cpi) once the
  // coordinator's CPI passes the epoch boundary; the shrunk_ranks_ mark
  // covers the window before that.
  const Topology& cur = topo(cpi);
  for (size_t task = 0; task < cur.ranks.size(); ++task) {
    for (const int r : cur.ranks[task]) {
      if (!world_->rank_dead(r) || world_->rank_recoverable(r)) continue;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (std::find(shrunk_ranks_.begin(), shrunk_ranks_.end(), r) !=
            shrunk_ranks_.end())
          continue;
      }
      if (propose_shrink(cpi, r)) return;
    }
  }
}

bool ElasticEngine::propose_shrink(index_t cpi, int dead_rank) {
  std::unique_lock<std::mutex> lock(mu_);
  if (pending_.load(std::memory_order_relaxed) != nullptr) return false;
  const Topology& cur = epochs_.back().topology;
  bool present = false;
  Task task = Task::kDopplerFilter;
  for (size_t t = 0; t < cur.ranks.size() && !present; ++t) {
    for (const int r : cur.ranks[t]) {
      if (r != dead_rank) continue;
      present = true;
      task = static_cast<Task>(t);
      break;
    }
  }
  if (!present) return false;
  if (!task_migratable(task) || cur.count(task) < 2) return false;
  Topology candidate;
  try {
    candidate = cur.shrunk(params_, dead_rank);
    candidate.assign.validate(params_);
  } catch (const Error&) {
    return false;
  }
  index_t max_progress = -1;
  for (const auto& x : progress_)
    max_progress = std::max(max_progress, x.load(std::memory_order_seq_cst));
  index_t barrier = std::max(max_progress, cpi) + cfg_.barrier_margin;
  barrier = std::max(barrier, last_barrier_cpi_ + 1);
  if (barrier > n_cpis_ - 2) return false;
  proposals_.emplace_back();
  Proposal& p = proposals_.back();
  p.attempt = static_cast<int>(proposals_.size()) - 1;
  p.barrier_cpi = barrier;
  p.donor = task;
  p.recipient = task;
  p.migrating_rank = dead_rank;
  p.shrink = true;
  p.next = std::move(candidate);
  p.next_checksum = p.next.checksum();
  MigrationEvent e;
  e.attempt = p.attempt;
  e.barrier_cpi = barrier;
  e.donor_task = static_cast<int>(task);
  e.recipient_task = -1;
  e.migrating_rank = dead_rank;
  e.trigger = "shrink";
  events_.push_back(std::move(e));
  last_barrier_cpi_ = barrier;
  shrunk_ranks_.push_back(dead_rank);
  lock.unlock();
  pending_.store(&p, std::memory_order_seq_cst);
  // Same Dekker re-check as propose(): only live ranks advance progress,
  // and the barrier was placed ahead of every recorded position.
  for (const auto& x : progress_) {
    if (x.load(std::memory_order_seq_cst) >= barrier) {
      resolve(p, kRolledBack, "barrier_raced");
      return false;
    }
  }
  return true;
}

bool ElasticEngine::request_overload_assist() {
  if (committed_.load(std::memory_order_relaxed) >= cfg_.max_migrations)
    return false;
  overload_assist_.store(true, std::memory_order_release);
  obs::Registry::global().counter("overload.elastic_assists").add(1);
  return true;
}

bool ElasticEngine::propose(index_t cpi, Task donor, Task recipient,
                            const char* trigger) {
  std::unique_lock<std::mutex> lock(mu_);
  if (pending_.load(std::memory_order_relaxed) != nullptr) return false;
  if (donor == recipient || !task_migratable(donor) ||
      !task_migratable(recipient))
    return false;
  const Topology& cur = epochs_.back().topology;
  if (cur.count(donor) < 2) return false;
  if (any_rank_dead()) return false;
  Topology candidate;
  try {
    candidate = cur.migrated(params_, donor, recipient);
    candidate.assign.validate(params_);
  } catch (const Error&) {
    return false;
  }
  index_t max_progress = -1;
  for (const auto& x : progress_)
    max_progress = std::max(max_progress, x.load(std::memory_order_seq_cst));
  index_t barrier = std::max(max_progress, cpi) + cfg_.barrier_margin;
  barrier = std::max(barrier, last_barrier_cpi_ + 1);
  // Need the barrier strictly inside the stream: every rank must still
  // pass through it, and at least one post-migration CPI must exist.
  if (barrier > n_cpis_ - 2) return false;
  const int migrating = cur.ranks[static_cast<size_t>(donor)].back();
  proposals_.emplace_back();
  Proposal& p = proposals_.back();
  p.attempt = static_cast<int>(proposals_.size()) - 1;
  p.barrier_cpi = barrier;
  p.donor = donor;
  p.recipient = recipient;
  p.migrating_rank = migrating;
  p.next = std::move(candidate);
  p.next_checksum = p.next.checksum();
  MigrationEvent e;
  e.attempt = p.attempt;
  e.barrier_cpi = barrier;
  e.donor_task = static_cast<int>(donor);
  e.recipient_task = static_cast<int>(recipient);
  e.migrating_rank = migrating;
  e.trigger = trigger;
  events_.push_back(std::move(e));
  last_barrier_cpi_ = barrier;
  lock.unlock();
  pending_.store(&p, std::memory_order_seq_cst);
  // Dekker re-check against barrier_point: any rank already at/past the
  // barrier might have missed the publish — roll back immediately rather
  // than risk a half-joined barrier.
  for (const auto& x : progress_) {
    if (x.load(std::memory_order_seq_cst) >= barrier) {
      resolve(p, kRolledBack, "barrier_raced");
      return false;
    }
  }
  return true;
}

void ElasticEngine::policy_tick(comm::Comm& c, index_t cpi) {
  if (c.rank() != coordinator_rank_) return;
  // Repairs outrank optimizations: a permanent death in a migratable group
  // raises a shrink barrier before any policy/forced/assist proposal.
  shrink_tick(cpi);
  if (pending_.load(std::memory_order_relaxed) != nullptr) return;
  // Deterministic forced migrations (tests/benches) fire first, in order.
  if (next_forced_ < cfg_.forced.size() &&
      cpi >= cfg_.forced[next_forced_].at_cpi) {
    const ForcedMigration f = cfg_.forced[next_forced_++];
    propose(cpi, f.donor, f.recipient, "forced");
    return;
  }
  if (committed_.load(std::memory_order_relaxed) >= cfg_.max_migrations)
    return;
  if (overload_assist_.exchange(false, std::memory_order_acq_rel)) {
    // Overload rung: migrate toward the gating group before degrading
    // further. The ladder already established the system is saturated, so
    // the min-gain gate is bypassed; structural validity still applies.
    Task recipient = Task::kDopplerFilter;
    const auto spans = obs::snapshot();
    if (!spans.empty()) {
      const obs::BottleneckReport rep = obs::analyze_spans(spans);
      if (rep.valid && rep.gating_task >= 0 &&
          task_migratable(static_cast<Task>(rep.gating_task)))
        recipient = static_cast<Task>(rep.gating_task);
    }
    Task donor = recipient;
    int best = 1;
    const Topology& cur = topo(cpi);
    for (int t = 0; t < stap::kNumTasks; ++t) {
      const Task cand = static_cast<Task>(t);
      if (cand == recipient || !task_migratable(cand)) continue;
      if (cur.count(cand) > best) {
        best = cur.count(cand);
        donor = cand;
      }
    }
    if (donor != recipient) propose(cpi, donor, recipient, "overload");
    return;
  }
  if (!cfg_.enabled) return;
  if (last_eval_cpi_ >= 0 && cpi - last_eval_cpi_ < cfg_.horizon_cpis) return;
  last_eval_cpi_ = cpi;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cpi < cooldown_until_) return;
  }
  const auto spans = obs::snapshot();
  if (spans.empty()) return;
  const obs::BottleneckReport rep = obs::analyze_spans(spans);
  if (!rep.valid || rep.gating_task < 0 || rep.period <= 0.0 ||
      rep.predicted_throughput <= rep.throughput_estimate)
    return;
  const Task recipient = static_cast<Task>(rep.gating_task);
  if (!task_migratable(recipient)) return;
  // Donor: the migratable non-gating group with the most slack (equation-1
  // headroom) that can spare a rank.
  const Topology& cur = topo(cpi);
  int donor = -1;
  double donor_slack = -1.0;
  for (const obs::StageStat& st : rep.stages) {
    const Task cand = static_cast<Task>(st.task);
    if (cand == recipient || !task_migratable(cand)) continue;
    if (cur.count(cand) < 2) continue;
    if (st.slack > donor_slack) {
      donor_slack = st.slack;
      donor = st.task;
    }
  }
  if (donor < 0) return;
  // Amortization gate: predicted per-CPI gain credited over the horizon
  // must exceed the expected quiesce stall (one pipeline drain, estimated
  // by the stitched mean latency).
  const double period_pred = 1.0 / rep.predicted_throughput;
  const double gain_fraction =
      rep.predicted_throughput / rep.throughput_estimate - 1.0;
  if (gain_fraction < cfg_.min_gain_fraction) return;
  const double stall_estimate =
      rep.mean_latency > 0.0 ? rep.mean_latency : 4.0 * rep.period;
  const double benefit = cfg_.horizon_cpis * (rep.period - period_pred);
  if (benefit <= stall_estimate) return;
  // Two-tick hysteresis (like the overload ladder): the same verdict must
  // hold across two consecutive evaluations before a barrier is raised.
  if (last_candidate_donor_ != donor ||
      last_candidate_recipient_ != rep.gating_task) {
    last_candidate_donor_ = donor;
    last_candidate_recipient_ = rep.gating_task;
    return;
  }
  last_candidate_donor_ = -1;
  last_candidate_recipient_ = -1;
  propose(cpi, static_cast<Task>(donor), recipient, "policy");
}

MigrationLedger ElasticEngine::ledger() const {
  std::lock_guard<std::mutex> lock(mu_);
  MigrationLedger out;
  out.attempts = events_;
  for (MigrationEvent& e : out.attempts) {
    if (e.outcome.empty()) {
      // The stream drained before any rank could resolve the barrier
      // (e.g. every participant died first): account it as rolled back.
      e.outcome = "rolled_back";
      e.abort_reason = "unresolved_at_exit";
    }
  }
  return out;
}

}  // namespace ppstap::core
