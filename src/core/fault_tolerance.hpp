// Fault-tolerance policies for the pipelined STAP runtime.
//
// The paper's target is a radar flight processor: a real-time system that
// must keep streaming CPIs when a node stalls or dies, not abort. Two
// policies hang off ParallelStapPipeline (both default-off; the fault-free
// path is byte-identical to the plain pipeline):
//
//  * Deadline-aware CPI shedding — a task that cannot assemble CPI i's
//    inputs within `cpi_deadline_seconds` emits a `dropped` marker
//    downstream instead of stalling the stream; the CFAR sink records the
//    CPI as shed. Late frames for a shed CPI are discarded on arrival.
//
//  * Spare-rank failover — the world gets one standby rank; weight-task
//    ranks checkpoint their adaptive state (easy training history / hard
//    triangular factors, via the weight-computer save/restore) after every
//    CPI, and a killed weight rank is revived on the spare: state restored,
//    identity and mailbox assumed, stream resumed at the next CPI. The
//    measured recovery stall is the empirical counterpart of the machine
//    model's ReallocationPlan::migration_stall.
//
// PipelineResult carries a FaultLedger accounting for every shed CPI,
// retransmission, injected fault, and failover.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace ppstap::core {

struct FaultToleranceConfig {
  /// Deadline-aware CPI shedding (policy (a)).
  bool shedding = false;
  /// Real-time budget for assembling one CPI's inputs at one task, counted
  /// from the start of that task's receive phase.
  double cpi_deadline_seconds = 0.25;

  /// Spare-rank failover (policy (b)): run one standby rank that revives
  /// killed weight-task ranks from their checkpoints. Kept for
  /// back-compat; equivalent to `spares = 1` when `spares` is unset.
  bool spare_rank = false;
  /// Spare pool size (PR 8): N standby ranks, each able to assume *any*
  /// role. Weight ranks resume from their per-CPI checkpoints; the
  /// stateless tasks (Doppler, beamform, PC, CFAR) resume from the
  /// topology epoch, with any half-consumed in-flight CPI shed by the
  /// deadline machinery (so mid-CPI stateless recovery wants `shedding`
  /// on). 0 defers to `spare_rank`.
  int spares = 0;
  /// When the pool is exhausted (or empty) and a rank of a migratable
  /// group dies, let the elastic engine shrink the group to the survivors
  /// under a new topology epoch instead of ledgering an uncovered failure.
  bool heal_shrink = false;
  /// How often the idle spare polls for deaths (and for stream completion).
  double death_poll_seconds = 0.002;

  /// Effective spare-pool size.
  int spare_count() const { return spares > 0 ? spares : (spare_rank ? 1 : 0); }

  bool any() const {
    return shedding || spare_count() > 0 || heal_shrink;
  }

  /// Read the PPSTAP_FAULT_* / PPSTAP_SPARES / PPSTAP_HEAL* environment
  /// knobs (see README):
  ///   PPSTAP_FAULT_DEADLINE  seconds; > 0 enables shedding with that budget
  ///   PPSTAP_FAULT_SPARE     nonzero enables one spare rank (legacy)
  ///   PPSTAP_SPARES          spare-pool size (overrides PPSTAP_FAULT_SPARE)
  ///   PPSTAP_HEAL_SHRINK     nonzero enables shrink-to-survivors
  ///   PPSTAP_FAULT_POLL      seconds; overrides death_poll_seconds
  static FaultToleranceConfig from_env();
};

/// One completed spare-rank recovery.
struct FailoverEvent {
  int rank = -1;      ///< global rank that died and was revived
  int task = -1;      ///< stap::Task index of that rank
  index_t resume_cpi = 0;  ///< first CPI processed by the spare
  /// Seconds from the rank's death to restore-complete on the spare (the
  /// measured analogue of the simulator's migration_stall).
  double recovery_stall_seconds = 0.0;
};

/// Everything that went wrong (or was injected) during a pipeline run.
struct FaultLedger {
  /// CPIs the sink recorded as shed (ascending; detections for these CPIs
  /// are absent and their latency is excluded from the averages).
  std::vector<index_t> shed_cpis;
  /// Checksum-failure refetches summed over all ranks.
  std::uint64_t retransmissions = 0;
  // Injected-fault counts from the installed FaultPlan, if any.
  std::uint64_t frames_delayed = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t kills = 0;
  // Gray-failure injections (PR 10).
  std::uint64_t stage_slowdowns = 0;   ///< stage executions stretched by kSlow
  std::uint64_t frames_jittered = 0;   ///< heavy-tailed delivery delays
  std::uint64_t frames_duplicated = 0; ///< kDuplicate re-deliveries enqueued
  /// Re-delivered frames dropped by the receivers' idempotence ledger
  /// (summed CommStats::dup_discarded). On a drained run this matches
  /// frames_duplicated — every injected duplicate was caught.
  std::uint64_t dup_discarded = 0;
  std::vector<FailoverEvent> failovers;
  /// Ranks that died and were never healed — no spare left to claim them
  /// and no shrink could re-plan their group. Their CPIs are shed instead
  /// of hanging the stream, and the gap is ledgered here.
  std::vector<int> uncovered_ranks;
  /// Per-edge retransmission histogram summed over all ranks, mirroring
  /// comm::CommStats::retry_histogram (rows = tag-slot buckets, data edges
  /// 0-8 plus an "other" bucket; column a = frames delivered after exactly
  /// a+1 refetches, last column = budget exhausted). Dimensions match
  /// comm::kRetryEdgeBuckets x (comm::kMaxRetransmitAttempts + 1),
  /// static_asserted at the aggregation site.
  std::array<std::array<std::uint64_t, 6>, 10> retry_histogram{};

  bool clean() const {
    return shed_cpis.empty() && retransmissions == 0 && frames_delayed == 0 &&
           frames_dropped == 0 && frames_corrupted == 0 && kills == 0 &&
           stage_slowdowns == 0 && frames_jittered == 0 &&
           frames_duplicated == 0 && dup_discarded == 0 &&
           failovers.empty() && uncovered_ranks.empty();
  }
};

}  // namespace ppstap::core
