// Self-healing topology accounting (PR 8).
//
// Every rank death walks one healing state machine:
//
//   detect ──► claim-or-shrink ──► restore / re-plan ──► commit ──► report
//
//  * detect:      World::mark_dead timestamps the death; idle spares poll
//                 wait_for_death, the elastic coordinator scans for
//                 permanent deaths at every admission.
//  * claim:       a pool spare claims the death (wait_for_death), restores
//                 checkpointed solver state (weight tasks) or the topology
//                 role (stateless tasks), and assumes the rank's identity
//                 and mailbox via Comm::take_over — mechanism "spare".
//  * shrink:      with the pool exhausted, the elastic engine re-plans the
//                 dead rank's task group across the survivors with the
//                 PR 7 quiesce/checkpoint/re-route/commit protocol under a
//                 new topology epoch — mechanism "shrink".
//  * report:      deaths neither claimed nor shrinkable are ledgered as
//                 mechanism "uncovered" (and in FaultLedger::uncovered_ranks)
//                 with their CPIs shed rather than the stream hanging.
//
// MTTR is measured per recovery: death timestamp to restore-complete
// (spare) or to epoch commit (shrink). The ledger rides on PipelineResult
// and is surfaced in every bench --json robustness block.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ppstap::core {

/// One terminal transition of the healing state machine.
struct HealingEvent {
  int rank = -1;  ///< global rank that died
  int task = -1;  ///< stap::Task index of that rank at death
  /// "spare" (pool takeover), "shrink" (group re-planned across the
  /// survivors), "quarantine" (health-scored straggler eviction healed by
  /// either of the former), or "uncovered" (neither mechanism applied).
  std::string mechanism;
  /// First CPI processed after recovery (spare), the epoch's begin CPI
  /// (shrink), or -1 (uncovered).
  index_t resume_cpi = -1;
  /// Mean-time-to-repair: seconds from the death to restore-complete
  /// (spare) / epoch commit (shrink); 0 for uncovered deaths.
  double mttr_seconds = 0.0;
};

/// Per-run healing accounting, one entry per rank death.
struct HealingLedger {
  std::vector<HealingEvent> events;

  int spare_takeovers() const { return count("spare"); }
  int shrinks() const { return count("shrink"); }
  int quarantines() const { return count("quarantine"); }
  int uncovered() const { return count("uncovered"); }

  /// Worst repair time across the run's recoveries (0 when none).
  double max_mttr_seconds() const {
    double m = 0.0;
    for (const auto& e : events) m = std::max(m, e.mttr_seconds);
    return m;
  }

  bool clean() const { return events.empty(); }

 private:
  int count(const char* mechanism) const {
    int n = 0;
    for (const auto& e : events) n += e.mechanism == mechanism ? 1 : 0;
    return n;
  }
};

}  // namespace ppstap::core
