#include "core/overload.hpp"

#include <chrono>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"

namespace ppstap::core {

const char* degradation_level_name(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kFull:
      return "full";
    case DegradationLevel::kReducedBeams:
      return "reduced-beams";
    case DegradationLevel::kFrozenHard:
      return "frozen-hard";
    case DegradationLevel::kStaleWeights:
      return "stale-weights";
    case DegradationLevel::kShedInput:
      return "shed-input";
  }
  return "?";
}

OverloadConfig OverloadConfig::from_env() {
  OverloadConfig cfg;
  if (auto f = parse_env_flag("PPSTAP_OVERLOAD")) cfg.enabled = *f;
  if (auto f = parse_env_flag("PPSTAP_OVERLOAD_LADDER")) cfg.ladder = *f;
  if (auto v = parse_env_int("PPSTAP_OVERLOAD_QLO", 1, 1'000'000))
    cfg.queue_low = static_cast<index_t>(*v);
  if (auto v = parse_env_int("PPSTAP_OVERLOAD_QHI", 1, 1'000'000))
    cfg.queue_high = static_cast<index_t>(*v);
  if (auto v = parse_env_double("PPSTAP_OVERLOAD_SLO", 0.0, 1e6))
    cfg.slo_latency_seconds = *v;
  if (auto v = parse_env_int("PPSTAP_OVERLOAD_DWELL", 1, 1'000'000))
    cfg.dwell = static_cast<int>(*v);
  if (auto v = parse_env_double("PPSTAP_OVERLOAD_PERIOD", 0.0, 1e6))
    cfg.arrival_period_seconds = *v;
  if (auto c = parse_env_choice("PPSTAP_OVERLOAD_ADMIT",
                                {"throttle", "reject"}))
    cfg.reject_when_full = (*c == 1);
  if (auto v = parse_env_double("PPSTAP_OVERLOAD_COND", 0.0, 1e15))
    cfg.condition_threshold = *v;
  if (cfg.enabled) cfg.validate();
  return cfg;
}

void OverloadConfig::validate() const {
  PPSTAP_REQUIRE(queue_low >= 1 && queue_high >= queue_low,
                 "overload queue thresholds need 1 <= low <= high");
  PPSTAP_REQUIRE(dwell >= 1, "overload dwell must be >= 1");
  PPSTAP_REQUIRE(slo_latency_seconds >= 0.0 && arrival_period_seconds >= 0.0,
                 "overload timing knobs must be nonnegative");
  PPSTAP_REQUIRE(condition_threshold == 0.0 || condition_threshold > 1.0,
                 "overload condition threshold must be 0 (keep) or > 1");
}

OverloadController::OverloadController(const OverloadConfig& cfg,
                                       index_t num_cpis)
    : cfg_(cfg) {
  cfg_.validate();
  PPSTAP_REQUIRE(num_cpis >= 0, "negative CPI count");
  memo_.assign(static_cast<size_t>(num_cpis), std::int8_t{-1});
  was_admitted_.assign(static_cast<size_t>(num_cpis), std::uint8_t{0});
  done_early_.assign(static_cast<size_t>(num_cpis), std::uint8_t{0});
  latencies_.reserve(kLatencyWindow);
}

bool OverloadController::slo_violated_locked() const {
  if (cfg_.slo_latency_seconds <= 0.0 || latencies_.empty()) return false;
  std::vector<double> window = latencies_;
  const size_t idx = (window.size() * 95) / 100;
  const size_t nth = idx < window.size() ? idx : window.size() - 1;
  std::nth_element(window.begin(),
                   window.begin() + static_cast<std::ptrdiff_t>(nth),
                   window.end());
  return window[nth] > cfg_.slo_latency_seconds;
}

void OverloadController::step_ladder_locked() {
  // Proportional target: the backlog band (queue_low, queue_high) maps
  // evenly onto the producing degraded rungs 1..3. A pure "escalate while
  // unhealthy" integrator overshoots — arrivals outpace the backlog's
  // response, so it climbs to the shed rung before a cheaper rung has had
  // a chance to drain the queue. The shed rung is therefore reached only
  // through the queue_high admission bound or sustained SLO violation.
  //
  // The level walks one rung per admission toward the target: up
  // immediately (overload must be answered now), down only after `dwell`
  // consecutive admissions that wanted a lower level (hysteresis, so the
  // rung does not chatter around a band edge).
  const index_t backlog = backlog_locked();
  int target = 0;
  if (backlog > cfg_.queue_low) {
    const double band = static_cast<double>(cfg_.queue_high - cfg_.queue_low);
    const double frac =
        band > 0.0
            ? static_cast<double>(backlog - cfg_.queue_low) / band
            : 1.0;
    const int producing = kNumDegradationLevels - 2;  // rungs 1..3
    target =
        1 + std::min(producing - 1, static_cast<int>(frac * producing));
  }
  if (slo_violated_locked()) target = std::max(target, level_ + 1);
  target = std::min(target, kNumDegradationLevels - 1);
  if (target > level_) {
    // Elastic-assist rung (PR 7): before first degrading past reduced
    // beams, ask the migration engine to move a rank toward the gating
    // group. A granted assist suppresses this one escalation — capacity is
    // being added instead of fidelity removed; if the backlog persists the
    // ladder resumes climbing on the next admission.
    if (level_ + 1 >= static_cast<int>(DegradationLevel::kFrozenHard) &&
        !assist_consumed_ && elastic_assist_) {
      assist_consumed_ = true;
      if (elastic_assist_()) return;
    }
    ++level_;
    ++level_changes_;
    healthy_streak_ = 0;
  } else if (target < level_) {
    ++healthy_streak_;
    if (healthy_streak_ >= cfg_.dwell) {
      --level_;
      ++level_changes_;
      healthy_streak_ = 0;
    }
  } else {
    healthy_streak_ = 0;
  }
  max_level_ = std::max(max_level_, level_);
}

OverloadController::Admission OverloadController::admit(index_t cpi) {
  std::unique_lock<std::mutex> lk(mu_);
  PPSTAP_REQUIRE(cpi >= 0 && cpi < static_cast<index_t>(memo_.size()),
                 "admission for an out-of-range CPI");
  const auto cached = [&]() -> Admission {
    return {was_admitted_[static_cast<size_t>(cpi)] != 0,
            static_cast<DegradationLevel>(memo_[static_cast<size_t>(cpi)])};
  };
  if (memo_[static_cast<size_t>(cpi)] >= 0) return cached();

  // Arrival pacing: CPI i exists no earlier than its front-end arrival
  // time. Every contender waits; whoever holds the lock when the deadline
  // passes decides, the rest pick up the memo.
  if (cfg_.arrival_period_seconds > 0.0) {
    if (start_time_ < 0.0) start_time_ = WallTimer::now();
    const double due = start_time_ + static_cast<double>(cpi) *
                                         cfg_.arrival_period_seconds;
    while (memo_[static_cast<size_t>(cpi)] < 0) {
      const double now = WallTimer::now();
      if (now >= due) break;
      cv_.wait_for(lk, std::chrono::duration<double>(due - now));
    }
    if (memo_[static_cast<size_t>(cpi)] >= 0) return cached();
  }

  if (cfg_.ladder) step_ladder_locked();

  int decided = cfg_.ladder ? level_ : 0;
  bool admit = decided < static_cast<int>(DegradationLevel::kShedInput);
  if (admit && backlog_locked() >= cfg_.queue_high) {
    if (cfg_.reject_when_full) {
      admit = false;
      decided = static_cast<int>(DegradationLevel::kShedInput);
      max_level_ = std::max(max_level_, decided);
    } else {
      ++throttle_waits_;
      while (memo_[static_cast<size_t>(cpi)] < 0 &&
             backlog_locked() >= cfg_.queue_high)
        cv_.wait(lk);
      if (memo_[static_cast<size_t>(cpi)] >= 0) return cached();
    }
  }

  if (admit) {
    ++admitted_;
    // Credit a completion that raced ahead of this admission (the sink
    // shed-drains past a dead rank without waiting for the source): the
    // CPI enters the queue already drained, so it must not be allowed to
    // pin the backlog and deadlock the throttle.
    if (done_early_[static_cast<size_t>(cpi)] != 0) ++completed_;
  } else {
    rejected_.push_back(cpi);
  }
  memo_[static_cast<size_t>(cpi)] = static_cast<std::int8_t>(decided);
  was_admitted_[static_cast<size_t>(cpi)] = admit ? 1 : 0;
  cv_.notify_all();
  return {admit, static_cast<DegradationLevel>(decided)};
}

void OverloadController::on_complete(index_t cpi, double latency_seconds,
                                     bool shed) {
  std::lock_guard<std::mutex> lk(mu_);
  if (cpi < 0 || cpi >= static_cast<index_t>(memo_.size())) return;
  if (was_admitted_[static_cast<size_t>(cpi)] == 0) {
    // Undecided: the sink outran the source (dead-rank shed-drain).
    // Remember the completion so admit() credits it; a decided-but-
    // rejected CPI stays ignored (its shed markers completing at the sink
    // are not queue drain — it never entered the queue).
    if (memo_[static_cast<size_t>(cpi)] < 0)
      done_early_[static_cast<size_t>(cpi)] = 1;
    return;
  }
  ++completed_;
  if (!shed && latency_seconds > 0.0) {
    if (latencies_.size() < kLatencyWindow) {
      latencies_.push_back(latency_seconds);
    } else {
      latencies_[latency_next_] = latency_seconds;
      latency_next_ = (latency_next_ + 1) % kLatencyWindow;
    }
  }
  cv_.notify_all();
}

void OverloadController::set_elastic_assist(std::function<bool()> assist) {
  std::lock_guard<std::mutex> lk(mu_);
  elastic_assist_ = std::move(assist);
  assist_consumed_ = false;
}

void OverloadController::note_capacity_loss() {
  std::lock_guard<std::mutex> lk(mu_);
  ++capacity_losses_;
  // One immediate producing-rung escalation: the degradation ladder
  // absorbs the lost capacity before the backlog can pile up. The shed
  // rung stays reachable only through the queue_high bound / SLO path.
  if (cfg_.ladder && level_ < kNumDegradationLevels - 2) {
    ++level_;
    ++level_changes_;
    healthy_streak_ = 0;
    max_level_ = std::max(max_level_, level_);
  }
  cv_.notify_all();
}

OverloadLedger OverloadController::ledger() const {
  std::lock_guard<std::mutex> lk(mu_);
  OverloadLedger out;
  out.rejected_cpis = rejected_;
  out.levels.reserve(memo_.size());
  for (const std::int8_t v : memo_)
    out.levels.push_back(v < 0 ? 0 : static_cast<int>(v));
  out.level_changes = level_changes_;
  out.throttle_waits = throttle_waits_;
  out.capacity_losses = capacity_losses_;
  out.max_level = max_level_;
  return out;
}

}  // namespace ppstap::core
