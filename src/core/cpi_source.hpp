// Thread-safe CPI input feed for the parallel pipeline.
//
// In the flight system, CPI cubes arrive from the radar front end and every
// Doppler node reads its range slab of the same CPI. Here the scene
// generator plays the radar: generation is memoized so the P0 Doppler ranks
// share one cube per CPI, and cubes older than a small window are evicted
// (ranks proceed in near lockstep, bounded by pipeline backpressure; a
// straggler that misses the window transparently regenerates).
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "synth/scenario.hpp"

namespace ppstap::core {

class CpiSource {
 public:
  explicit CpiSource(const synth::ScenarioGenerator& gen,
                     index_t window = 4)
      : gen_(gen), window_(window) {}

  /// The full CPI cube for index `cpi` (shared, immutable).
  std::shared_ptr<const cube::CpiCube> get(index_t cpi);

  /// How many CPIs had to be generated more than once (eviction misses);
  /// useful as a health check in tests.
  index_t regeneration_count() const;

 private:
  const synth::ScenarioGenerator& gen_;
  index_t window_;
  mutable std::mutex mu_;
  std::map<index_t, std::shared_ptr<const cube::CpiCube>> cache_;
  std::map<index_t, int> generated_;
  index_t regenerations_ = 0;
};

}  // namespace ppstap::core
