// Thread-safe CPI input feed for the parallel pipeline.
//
// In the flight system, CPI cubes arrive from the radar front end and every
// Doppler node reads its range slab of the same CPI. Here the scene
// generator plays the radar: generation is memoized so the P0 Doppler ranks
// share one cube per CPI, and cubes older than a small window are evicted
// (ranks proceed in near lockstep, bounded by pipeline backpressure; a
// straggler that misses the window transparently regenerates).
//
// Regeneration is bounded: a straggler stuck behind the eviction window
// regenerates the full cube on every get(), which unchecked turns one slow
// rank into a compute storm. After `max_regenerations` the source throws
// instead — by then the pipeline is so far out of lockstep that failing
// loudly beats silently burning CPU. Each regeneration bumps the
// "cpi_source.regenerations" obs counter plus a per-rank
// "cpi_source.regenerations.rank<N>" counter (the storm's *culprit* is the
// straggling rank, and per-rank attribution is what the gray-failure
// robustness block surfaces); tripping the bound bumps
// "cpi_source.regeneration_storms" before throwing, so the storm is
// visible in the --json accounting and not only in the abort message.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "core/overload.hpp"
#include "synth/scenario.hpp"

namespace ppstap::core {

class CpiSource {
 public:
  explicit CpiSource(const synth::ScenarioGenerator& gen, index_t window = 4,
                     index_t max_regenerations = 64)
      : gen_(gen), window_(window), max_regenerations_(max_regenerations) {}

  /// Attach the overload controller gating this feed (nullptr detaches).
  /// Not thread safe; install before the pipeline starts pulling.
  void set_overload_controller(OverloadController* ctrl) { ctrl_ = ctrl; }

  /// Admission gate for CPI `cpi`: pacing, the bounded-queue high
  /// watermark, and the degradation ladder all apply here, *before* the
  /// cube is generated — a rejected CPI costs no front-end work. Without a
  /// controller every CPI is admitted at full fidelity.
  OverloadController::Admission admit(index_t cpi) {
    if (ctrl_ == nullptr) return {};
    return ctrl_->admit(cpi);
  }

  /// The full CPI cube for index `cpi` (shared, immutable). Throws once the
  /// total regeneration count exceeds the bound. `rank` (when >= 0)
  /// attributes any regeneration to the calling rank in the per-rank
  /// accounting.
  std::shared_ptr<const cube::CpiCube> get(index_t cpi, int rank = -1);

  /// How many CPIs had to be generated more than once (eviction misses);
  /// useful as a health check in tests.
  index_t regeneration_count() const;

  /// Per-rank regeneration attribution (rank -> count), for the
  /// gray-failure robustness accounting. Ranks that never regenerated are
  /// absent; calls without a rank land on key -1.
  std::map<int, index_t> regenerations_by_rank() const;

 private:
  const synth::ScenarioGenerator& gen_;
  index_t window_;
  index_t max_regenerations_;
  OverloadController* ctrl_ = nullptr;
  mutable std::mutex mu_;
  std::map<index_t, std::shared_ptr<const cube::CpiCube>> cache_;
  std::map<index_t, int> generated_;
  std::map<int, index_t> regen_by_rank_;
  index_t regenerations_ = 0;
};

}  // namespace ppstap::core
