// Live elastic rank migration for the pipelined STAP runtime.
//
// The paper studies node reassignment only as offline what-ifs (Tables 9
// and 10: move ranks into the gating task group, recompute equation-1
// throughput). This module performs the reassignment at runtime, on a live
// stream, and survives faults injected while it happens:
//
//  * A `Topology` is one immutable epoch of the run: the per-task rank
//    lists plus every block partition derived from them. The engine keeps
//    an append-only epoch sequence; `topo(cpi)` is the topology governing
//    that CPI, so every rank resolves partners and partitions per CPI
//    instead of hoisting them at startup.
//
//  * Migration is a transactional two-phase protocol anchored at a CPI
//    barrier B chosen ahead of every rank's progress. Each rank, on
//    reaching B, checkpoints its partition state (via SolverStateTransfer),
//    VOTEs to the coordinator (checkpoint checksum + candidate-topology
//    checksum), and waits for the VERDICT. The coordinator commits only
//    when every rank voted consistently within the stall budget; any
//    timeout, peer death, or checksum mismatch aborts the attempt. The
//    single linearization point is an atomic outcome CAS
//    (pending -> committed | rolled_back): whoever wins the CAS resolves
//    the attempt for everyone, so a dead coordinator cannot wedge the
//    stream. A rolled-back attempt restores nothing because nothing was
//    changed: the new epoch is published only after a commit, and every
//    rank keeps streaming under the old topology.
//
//  * Only the stateless per-CPI tasks (Doppler, pulse compression, CFAR)
//    migrate: their partition state is fully reconstructed from the new
//    topology, which is what makes a committed migration bit-exact. The
//    weight tasks carry cross-CPI solver state (training history,
//    triangular factors) and temporal send-ahead edges; their
//    SolverStateTransfer reports can_transfer() == false until a pluggable
//    cheap-solver path (arXiv:1008.4160) provides a transferable
//    representation, so they are never chosen as donor or recipient.
//
// Two drivers feed proposals: a policy loop on the coordinator rank driven
// by obs::critical_path's live verdict (gated on predicted equation-1 gain
// amortized over a horizon exceeding the expected quiesce stall, with
// two-tick hysteresis), and an OverloadController assist rung that asks for
// a migration toward the gating group before degrading to frozen-hard or
// stale weights. Every attempt — committed or rolled back — is ledgered.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/assignment.hpp"
#include "cube/partition.hpp"
#include "stap/flops.hpp"
#include "stap/params.hpp"

namespace ppstap::comm {
class Comm;
class World;
}  // namespace ppstap::comm

namespace ppstap::core {

/// True for the stateless per-CPI tasks whose partition state can be
/// rebuilt from a Topology alone (Doppler, pulse compression, CFAR).
bool task_migratable(stap::Task t);

/// One epoch of the run: who runs what, and every partition derived from
/// the group sizes. Immutable once published; ranks read it per CPI.
struct Topology {
  NodeAssignment assign;
  /// Global rank ids per task, in local-index order. A migration removes
  /// the donor's last local rank and appends it to the recipient, so every
  /// non-migrating rank keeps its (task, local) role across the epoch
  /// boundary and only the partition fan-out changes.
  std::array<std::vector<int>, stap::kNumTasks> ranks;

  cube::BlockPartition part_k;     // Doppler filtering: range cells
  cube::BlockPartition part_ewt;   // easy weights: easy-bin positions
  cube::BlockPartition part_hwu;   // hard weights: (bin, segment) units
  cube::BlockPartition part_ebf;   // easy BF: easy-bin positions
  cube::BlockPartition part_hbf;   // hard BF: hard-bin positions
  cube::BlockPartition part_pc;    // pulse compression: global bins
  cube::BlockPartition part_cfar;  // CFAR: global bins

  /// Contiguous task-ordered layout (rank 0 = first Doppler rank).
  static Topology initial(const stap::StapParams& p, const NodeAssignment& a);

  /// The candidate after moving the donor's last local rank to the end of
  /// the recipient's list. Requires both tasks migratable and the donor to
  /// keep at least one rank.
  Topology migrated(const stap::StapParams& p, stap::Task donor,
                    stap::Task recipient) const;

  /// The candidate after removing `dead_rank` from its task group (elastic
  /// shrink-to-survivors): the group's node count drops by one and every
  /// partition is re-planned across the remaining ranks, re-running the
  /// Tables 7-10 placement on the reduced count. Requires the rank's task
  /// migratable (its state must be rebuildable from the topology) and the
  /// group to keep at least one rank.
  Topology shrunk(const stap::StapParams& p, int dead_rank) const;

  int count(stap::Task t) const {
    return static_cast<int>(ranks[static_cast<size_t>(t)].size());
  }
  int rank_at(stap::Task t, int local) const {
    return ranks[static_cast<size_t>(t)][static_cast<size_t>(local)];
  }
  int total() const;

  struct Role {
    stap::Task task = stap::Task::kDopplerFilter;
    int local = -1;
  };
  /// Which (task, local) slot `global_rank` occupies in this epoch.
  Role role_of(int global_rank) const;

  /// Structural checksum (assignment + rank lists); voted on at the
  /// barrier so every participant provably agrees on the candidate.
  std::uint64_t checksum() const;
};

/// Pluggable per-task solver-state transfer, consulted at every migration
/// barrier. The stateless tasks serialize (and can rebuild) their partition
/// descriptor; the adaptive-weight tasks only attest their progress and
/// report can_transfer() == false — the seam where the pluggable
/// weight-computation paths of arXiv:1008.4160 would slot a transferable
/// solver representation in, making the weight groups elastic too.
class SolverStateTransfer {
 public:
  virtual ~SolverStateTransfer() = default;
  virtual const char* scheme() const = 0;
  /// Whether a successor rank could resume this task from save() alone.
  virtual bool can_transfer() const = 0;
  /// Serialize the state needed to continue `role` from `next_cpi`.
  virtual std::vector<std::byte> save(const Topology& t, Topology::Role role,
                                      index_t next_cpi) const = 0;
};

std::unique_ptr<SolverStateTransfer> make_state_transfer(stap::Task t);

struct ForcedMigration {
  index_t at_cpi = 0;  ///< propose once the coordinator reaches this CPI
  stap::Task donor = stap::Task::kPulseCompression;
  stap::Task recipient = stap::Task::kDopplerFilter;
};

struct ElasticConfig {
  /// Master switch for the analyzer-driven policy loop (PPSTAP_ELASTIC).
  /// Forced migrations and the overload assist work whenever the engine is
  /// installed, even with the policy loop off.
  bool enabled = false;
  /// Policy cadence and amortization window, in CPIs
  /// (PPSTAP_ELASTIC_HORIZON): the predicted per-CPI gain is credited over
  /// this many CPIs and must exceed the expected quiesce stall.
  int horizon_cpis = 8;
  /// Vote-collection deadline at the barrier, seconds
  /// (PPSTAP_ELASTIC_STALL_BUDGET). Participants wait twice this (plus
  /// margin) for the verdict. Generous budgets cost nothing on clean runs —
  /// they are deadlines, not sleeps.
  double stall_budget_seconds = 5.0;
  /// Cap on committed migrations per run (PPSTAP_ELASTIC_MAX_MIGRATIONS).
  int max_migrations = 1;
  /// Barrier distance ahead of the fastest rank's observed progress.
  index_t barrier_margin = 2;
  /// Minimum predicted throughput gain fraction for a policy migration.
  double min_gain_fraction = 0.05;
  /// CPIs the policy stays quiet after a rolled-back attempt.
  int cooldown_cpis = 16;
  /// Deterministic migrations for tests/benches, fired in order.
  std::vector<ForcedMigration> forced;

  bool any() const { return enabled || !forced.empty(); }

  /// Read the PPSTAP_ELASTIC* knobs (see README). Garbage throws; the
  /// engine is never silently misconfigured.
  static ElasticConfig from_env();
  /// Throws ppstap::Error on an inconsistent configuration.
  void validate() const;
};

/// One migration attempt, from proposal to resolution.
struct MigrationEvent {
  int attempt = 0;
  index_t barrier_cpi = 0;
  int donor_task = -1;
  int recipient_task = -1;
  int migrating_rank = -1;
  std::string trigger;  ///< "policy" | "overload" | "forced" | "shrink"
  std::string outcome;  ///< "committed" | "rolled_back" ("" while pending)
  std::string abort_reason;  ///< empty on commit
  /// Excess sink inter-completion gap at the barrier CPI (filled post-run
  /// by the driver; the measured analogue of sim migration_stall).
  double stall_seconds = 0.0;
};

struct MigrationLedger {
  std::vector<MigrationEvent> attempts;
  int committed() const;
  int rolled_back() const;
  bool clean() const { return attempts.empty(); }
};

/// The shared migration engine: one instance per pipeline run, used
/// concurrently by every rank thread.
class ElasticEngine {
 public:
  ElasticEngine(comm::World* world, const stap::StapParams& p,
                Topology initial, ElasticConfig cfg, index_t n_cpis);

  /// Topology governing `cpi`. Lock-free fast path.
  const Topology& topo(index_t cpi) const;
  const Topology& final_topology() const;
  /// Number of published epochs (1 + committed migrations).
  int epoch_count() const;

  /// Per-CPI hook at the top of every task loop: records progress, takes
  /// part in a pending barrier once `cpi` reaches it (checkpoint + VOTE +
  /// VERDICT, or vote collection on the coordinator), and returns the
  /// topology for `cpi`. The rank's role under the returned topology may
  /// differ from its role at cpi-1 — the caller must then return control
  /// to the per-rank driver loop.
  const Topology& barrier_point(comm::Comm& c, index_t cpi);

  /// Coordinator-only (lead Doppler rank) policy hook, called once per
  /// CPI; internally paced to the configured horizon. Fires forced
  /// migrations, consumes overload-assist requests, and evaluates the
  /// critical-path verdict.
  void policy_tick(comm::Comm& c, index_t cpi);

  /// OverloadController assist rung: ask for one migration toward the
  /// gating group instead of escalating past reduced-beams. Nonblocking;
  /// safe from any thread. Returns false once the attempt budget is spent.
  bool request_overload_assist();

  int coordinator_rank() const { return coordinator_rank_; }
  const ElasticConfig& config() const { return cfg_; }

  /// Highest CPI `rank` has reached (top-of-loop via barrier_point); -1
  /// before its first CPI. A dead rank's progress freezes at its death
  /// point — which is exactly the resume CPI for a spare takeover of a
  /// stateless task.
  index_t progress_of(int rank) const {
    return progress_[static_cast<size_t>(rank)].load(
        std::memory_order_seq_cst);
  }

  /// Dead with no recovery path left (not recoverable: the spare pool is
  /// exhausted or was never there) — the rank's frames and completion
  /// ticks will never arrive. False without an attached world.
  bool rank_permanently_dead(int rank) const;

  /// Fired on every committed shrink (any thread may win the resolving
  /// CAS): the healed rank, its task at death, the epoch's begin CPI, and
  /// the commit timestamp (WallTimer base, for MTTR against
  /// World::death_time). Must be nonblocking.
  using ShrinkCallback =
      std::function<void(int rank, int task, index_t begin_cpi,
                         double commit_time)>;

  /// Enable shrink-to-survivors healing: when a rank of a migratable group
  /// dies permanently (dead and not recoverable — the spare pool is
  /// exhausted or absent), the coordinator's policy tick proposes removing
  /// it from its group under the same two-phase barrier protocol. Shrinks
  /// bypass max_migrations (they are repairs, not optimizations).
  void set_shrink(bool enabled, ShrinkCallback on_commit = nullptr);

  /// Ranks healed by a committed shrink so far (for uncovered accounting).
  std::vector<int> shrunk_ranks() const;

  /// Post-run accounting (call after the stream drains).
  MigrationLedger ledger() const;

 private:
  struct Epoch {
    index_t begin_cpi = 0;
    Topology topology;
  };

  enum Outcome : int { kPending = 0, kCommitted = 1, kRolledBack = 2 };

  struct Proposal {
    int attempt = 0;
    index_t barrier_cpi = 0;
    stap::Task donor{};
    stap::Task recipient{};
    int migrating_rank = -1;
    /// Shrink-to-survivors repair: `migrating_rank` is the (dead) rank
    /// being removed rather than a live rank changing groups. Participants
    /// learn the flavour through the shared pending pointer.
    bool shrink = false;
    Topology next;
    std::uint64_t next_checksum = 0;
    std::atomic<int> outcome{kPending};
  };

  bool propose(index_t cpi, stap::Task donor, stap::Task recipient,
               const char* trigger);
  /// Propose removing a permanently dead rank from its group. Returns true
  /// when a barrier was raised.
  bool propose_shrink(index_t cpi, int dead_rank);
  /// Coordinator-side scan for permanent deaths needing a shrink.
  void shrink_tick(index_t cpi);
  void participate(comm::Comm& c, Proposal& p);
  void collect_votes(comm::Comm& c, Proposal& p);
  void await_verdict(comm::Comm& c, Proposal& p);
  /// CAS to `outcome`; the winner finalizes the ledger entry (and, on
  /// commit, publishes the new epoch). Returns the resolved outcome.
  int resolve(Proposal& p, int outcome, const std::string& reason);
  void publish_epoch(const Proposal& p);
  void wait_epoch_covering(index_t cpi);
  bool any_rank_dead() const;

  comm::World* world_;
  stap::StapParams params_;
  ElasticConfig cfg_;
  index_t n_cpis_;
  int total_ranks_;
  int coordinator_rank_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Epoch storage never reallocates (capacity reserved up front) so
  /// topo() readers index it lock-free against concurrent publishes.
  std::vector<Epoch> epochs_;
  std::atomic<size_t> epoch_count_{0};
  size_t epoch_capacity_ = 0;

  std::deque<Proposal> proposals_;            // stable addresses
  std::atomic<Proposal*> pending_{nullptr};   // the unresolved attempt
  std::vector<MigrationEvent> events_;        // parallel to proposals_

  /// Highest CPI each rank has reached (top-of-loop), for barrier safety.
  std::vector<std::atomic<index_t>> progress_;
  /// Latest attempt id each rank has voted in (no double voting; a rank
  /// that first observes a proposal after its barrier still joins at its
  /// next CPI, which the Dekker re-check makes impossible to need).
  std::vector<std::atomic<int>> voted_;

  std::atomic<bool> overload_assist_{false};
  std::atomic<int> committed_{0};
  bool shrink_enabled_ = false;
  ShrinkCallback shrink_callback_;
  /// Ranks already healed (or being healed) by a shrink, so the scan does
  /// not re-propose while the epoch is still ahead of the coordinator's
  /// CPI. Guarded by mu_.
  std::vector<int> shrunk_ranks_;
  /// Next unconsumed cfg_.forced entry. Atomic because barrier_point()
  /// reads it from every rank to hold the pipeline at an unproposed
  /// entry's trigger CPI (see the determinism note there).
  std::atomic<size_t> next_forced_{0};
  index_t last_barrier_cpi_ = -1;
  index_t cooldown_until_ = -1;
  // Two-tick hysteresis memory for the policy loop.
  int last_candidate_donor_ = -1;
  int last_candidate_recipient_ = -1;
  index_t last_eval_cpi_ = -1;
};

}  // namespace ppstap::core
