#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <thread>

#include "comm/fault.hpp"
#include "comm/world.hpp"
#include "common/backoff.hpp"
#include "common/checksum.hpp"
#include "common/timer.hpp"
#include "core/cpi_source.hpp"
#include "core/elastic.hpp"
#include "core/overload.hpp"
#include "core/sim.hpp"
#include "cube/partition.hpp"
#include "obs/trace.hpp"
#include "stap/beamform.hpp"
#include "stap/doppler.hpp"
#include "stap/pulse_compression.hpp"
#include "stap/training.hpp"
#include "stap/weights.hpp"

namespace ppstap::core {

namespace {

using comm::Comm;
using cube::BlockPartition;
using linalg::MatrixCF;
using stap::Task;

// Inter-task edges (arrows of paper Fig. 4, spatial dependencies only; the
// temporal dependencies TD_{1,3}/TD_{2,4} are realized through the +1 CPI
// tag offset on the weight edges).
enum Edge : int {
  kDopToEasyWt = 0,
  kDopToHardWt = 1,
  kDopToEasyBf = 2,
  kDopToHardBf = 3,
  kEasyWtToBf = 4,
  kHardWtToBf = 5,
  kEasyBfToPc = 6,
  kHardBfToPc = 7,
  kPcToCfar = 8,
};
constexpr int kEdgeCount = 16;  // tag stride (power of two headroom)

int tag_for(index_t cpi, Edge e) {
  return static_cast<int>(cpi) * kEdgeCount + static_cast<int>(e);
}

// Slice of an ordered item list owned by part `p` of a partition.
template <typename T>
std::span<const T> slice(const std::vector<T>& list, const BlockPartition& bp,
                         index_t p) {
  return {list.data() + bp.offset(p), static_cast<size_t>(bp.length(p))};
}

struct Shared {
  Shared(const stap::StapParams& p_in, const NodeAssignment& a_in,
         const std::vector<MatrixCF>& steering_in,
         const std::vector<cfloat>& replica_in, CpiSource& source_in,
         index_t n_cpis_in, index_t warmup_in, index_t cooldown_in)
      : p(p_in),
        a(a_in),
        steering(steering_in),
        replica(replica_in),
        source(source_in),
        n_cpis(n_cpis_in),
        warmup(warmup_in),
        cooldown(cooldown_in) {}

  const stap::StapParams& p;
  const NodeAssignment& a;
  const std::vector<MatrixCF>& steering;  // per transmit position
  const std::vector<cfloat>& replica;
  CpiSource& source;
  index_t n_cpis, warmup, cooldown;

  /// The elastic migration engine owns the epoch sequence: every partner
  /// set and block partition is resolved per CPI through topo(cpi), so a
  /// committed migration changes the redistribution fan-out for CPI >= B
  /// on every rank at once. Always installed (a run with elastic disabled
  /// simply never leaves epoch 0).
  ElasticEngine* eng = nullptr;

  /// Gray-failure detector (PR 10; nullptr when PPSTAP_HEALTH is off).
  /// Every rank feeds its Fig.-10 timestamps in, the coordinator scans,
  /// and a quarantined rank honours the eviction flag at its next barrier.
  HealthMonitor* health = nullptr;

  std::vector<index_t> easy_bins, hard_bins, easy_cells;
  std::vector<std::vector<index_t>> hard_cells;  // per segment
  std::vector<stap::HardUnit> hard_units;        // bin-major over hard_bins

  // Fault-tolerance state (inert when ft.any() is false).
  FaultToleranceConfig ft;
  // Overload control (nullptr when disabled — the plain PR 2 pipeline).
  OverloadController* ctrl = nullptr;
  // ABFT integrity layer (PR 5; inert when integ.enabled is false). The
  // plan pointer doubles as the compute-stage flip-injection hook — flips
  // are applied even with verification off, so the ABFT-off arm of the
  // detection bench measures true silent corruption.
  IntegrityConfig integ;
  comm::FaultPlan* plan = nullptr;
  std::atomic<std::uint64_t> integ_checks_passed{0};
  std::atomic<std::uint64_t> integ_checks_failed{0};
  std::atomic<std::uint64_t> integ_recomputes{0};
  std::atomic<std::uint64_t> integ_repairs{0};
  std::atomic<std::uint64_t> integ_escalations{0};
  std::atomic<std::uint64_t> integ_digest_mismatches{0};
  std::array<std::atomic<std::uint64_t>,
             static_cast<size_t>(stap::kNumTasks)>
      integ_digest_by_task{};
  std::vector<IntegrityEvent> integ_events;  // guarded by mu
  // Numerical-health counters aggregated from every weight computer at
  // task exit; guarded by mu.
  stap::WeightHealth numerics;
  // Idle-poll wakeups of the spare rank's backoff ladder.
  std::atomic<std::uint64_t> spare_wakeups{0};
  std::atomic<bool> stream_done{false};  // every CFAR rank finished
  /// Per-(global rank) weight-state checkpoint: serialized computers and
  /// the CPI the restored rank should resume at. Guarded by mu.
  struct Checkpoint {
    index_t next_cpi = 0;
    std::string blob;
  };
  std::map<int, Checkpoint> checkpoints;
  std::vector<FailoverEvent> failovers;  // guarded by mu
  /// Idle members left in the universal spare pool. The claiming spare
  /// decrements; whoever takes the pool to zero clears every recoverable
  /// flag so further deaths surface as prompt dead-peer statuses instead
  /// of parking receivers on a recovery that will never come.
  std::atomic<int> spares_left{0};
  std::vector<HealingEvent> healing;  // guarded by mu

  std::mutex mu;
  std::vector<double> input_ready;  // per CPI, set by Doppler rank 0
  std::vector<double> completion;   // per CPI, set by the last CFAR rank
  std::vector<int> cfar_done;
  int cfar_ranks_finished = 0;
  std::vector<char> shed;  // per CPI, set by CFAR ranks
  std::vector<std::vector<stap::Detection>> detections;
  std::array<TaskTiming, stap::kNumTasks> timing_sum{};
  std::array<int, stap::kNumTasks> timing_ranks{};
  std::array<std::uint64_t, stap::kNumTasks> bytes_sent{};
  // Per-link (Fig. 4 edge) byte counters over the measured CPIs; updated
  // with relaxed atomics from the sending ranks.
  std::array<std::atomic<std::uint64_t>, kNumPipelineEdges> edge_bytes{};

  bool measured(index_t cpi) const {
    return cpi >= warmup && cpi < n_cpis - cooldown;
  }
  index_t measured_count() const { return n_cpis - warmup - cooldown; }

  // Initial-layout rank lookups. Only valid for the non-migratable groups
  // (weights, beamforming — their membership never changes) and for
  // spare-rank bookkeeping; anything involving Doppler / pulse compression
  // / CFAR membership must go through topo(cpi).
  int base(Task t) const { return a.first_rank(t); }
  int count(Task t) const { return a[t]; }

  /// Topology governing `cpi` (lock-free epoch lookup).
  const Topology& topo(index_t cpi) const { return eng->topo(cpi); }
  /// Per-CPI migration hook: records progress, joins a pending barrier,
  /// returns the topology for `cpi`. Call at the top of every task's CPI
  /// loop before any receive or send for that CPI.
  const Topology& barrier(Comm& c, index_t cpi) {
    const Topology& tp = eng->barrier_point(c, cpi);
    // Quarantine hook: a confirmed straggler dies voluntarily at its next
    // CPI barrier — after progress was recorded for `cpi` but before any
    // receive or send for it — so the recovery machinery (spare takeover /
    // shrink) inherits the cleanest possible cut: the replacement re-enters
    // at exactly this CPI with nothing half-consumed. The flag is cleared
    // before a spare re-enters under this identity.
    if (health != nullptr && health->quarantine_requested(c.rank()))
      throw comm::RankKilled(c.rank());
    return tp;
  }

  // Task owning global rank `r` at `cpi`, as a stap::Task index (-1 for
  // the spare) — used to attribute end-to-end digest mismatches to the
  // producer across migration epochs.
  int task_of_rank(int r, index_t cpi) const {
    const Topology& tp = topo(cpi);
    for (size_t t = 0; t < tp.ranks.size(); ++t)
      for (const int rr : tp.ranks[t])
        if (rr == r) return static_cast<int>(t);
    return -1;
  }

  // Range-cell positions of `cells` inside Doppler rank d's slab under
  // partition `pk`, as indices into `cells` (so senders and receivers
  // agree on row order).
  std::vector<index_t> cell_positions_in_slab(
      const std::vector<index_t>& cells, index_t d,
      const BlockPartition& pk) const {
    const index_t k0 = pk.offset(d);
    const index_t k1 = k0 + pk.length(d);
    std::vector<index_t> out;
    for (size_t i = 0; i < cells.size(); ++i)
      if (cells[i] >= k0 && cells[i] < k1)
        out.push_back(static_cast<index_t>(i));
    return out;
  }
};

// Per-rank Figure-10 phase accumulator.
struct PhaseAcc {
  double recv = 0, comp = 0, send = 0;
  std::uint64_t bytes = 0;
  void commit(Shared& s, Task t, index_t measured_cpis) {
    std::lock_guard<std::mutex> lock(s.mu);
    auto& sum = s.timing_sum[static_cast<size_t>(t)];
    const double inv = 1.0 / static_cast<double>(measured_cpis);
    sum.recv += recv * inv;
    sum.comp += comp * inv;
    sum.send += send * inv;
    s.timing_ranks[static_cast<size_t>(t)] += 1;
    s.bytes_sent[static_cast<size_t>(t)] += bytes;
  }
};

// --- ABFT integrity helpers (PR 5) -----------------------------------------

std::span<float> float_view(cube::CpiCube& cu) {
  return {reinterpret_cast<float*>(cu.data()),
          static_cast<size_t>(cu.size()) * 2};
}
std::span<float> float_view(cube::RealCube& cu) {
  return {cu.data(), static_cast<size_t>(cu.size())};
}

std::uint64_t flip_salt(int rank, index_t cpi, int attempt) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 34) ^
         (static_cast<std::uint64_t>(cpi) << 2) ^
         static_cast<std::uint64_t>(attempt);
}

// Compute-stage fault injection: when the installed plan schedules a flip
// for (task, cpi, attempt), corrupt one bit of the stage's freshly computed
// output. Applied before verification — and also when verification is off,
// so the ABFT-off arm of the detection bench measures true silent
// corruption.
void maybe_flip(Shared& s, Task t, index_t cpi, int rank, int attempt,
                std::span<float> out) {
  if (s.plan == nullptr) return;
  int bit = 30;
  if (s.plan->compute_flip_due(static_cast<int>(t), cpi, rank, attempt, &bit))
    flip_float_bit(out, bit, flip_salt(rank, cpi, attempt));
}

void maybe_flip_weights(Shared& s, Task t, index_t cpi, int rank, int attempt,
                        std::vector<MatrixCF>& ws) {
  if (s.plan == nullptr || ws.empty()) return;
  int bit = 30;
  if (!s.plan->compute_flip_due(static_cast<int>(t), cpi, rank, attempt, &bit))
    return;
  const std::uint64_t salt = flip_salt(rank, cpi, attempt);
  auto& wm = ws[static_cast<size_t>(salt % ws.size())];
  if (wm.size() == 0) return;
  flip_float_bit({reinterpret_cast<float*>(wm.data()),
                  static_cast<size_t>(wm.size()) * 2},
                 bit, salt >> 1);
}

// CFAR's output is a sparse detection list; the flip lands in a reported
// power value, which the exact power-lookup re-check catches bitwise.
void maybe_flip_detections(Shared& s, index_t cpi, int rank, int attempt,
                           std::vector<stap::Detection>& dets) {
  if (s.plan == nullptr || dets.empty()) return;
  int bit = 30;
  if (!s.plan->compute_flip_due(static_cast<int>(Task::kCfar), cpi, rank,
                                attempt, &bit))
    return;
  const std::uint64_t salt = flip_salt(rank, cpi, attempt);
  auto& d = dets[static_cast<size_t>(salt % dets.size())];
  flip_float_bit({&d.power, 1}, bit, salt);
}

// Weight-path invariant: the solve normalizes every column to unit 2-norm
// (zero columns are patched to quiescent first), so any corruption in the
// weight matrices shows directly in a column norm. Accumulates in double.
bool weights_unit_norm(const std::vector<MatrixCF>& ws, double tol) {
  for (const auto& wm : ws) {
    for (index_t col = 0; col < wm.cols(); ++col) {
      double nsq = 0.0;
      for (index_t row = 0; row < wm.rows(); ++row) {
        const cfloat v = wm(row, col);
        const double re = v.real(), im = v.imag();
        nsq += re * re + im * im;
      }
      if (!std::isfinite(nsq)) return false;
      if (nsq == 0.0) continue;  // a zero steering column stays zero
      if (std::abs(std::sqrt(nsq) - 1.0) > tol) return false;
    }
  }
  return true;
}

// The 8-byte end-to-end digest is bit-cast into trailing elements of the
// payload's own type and rides inside the data frame itself — a separate
// digest message would double the per-CPI message count, and on an
// oversubscribed host each extra message is a condvar wakeup. Markers carry
// no digest. Digest bytes bypass the byte accounting so the Table 2-6
// volume validation is unperturbed.
template <typename T>
constexpr size_t digest_elems() {
  static_assert(sizeof(std::uint64_t) % sizeof(T) == 0);
  return sizeof(std::uint64_t) / sizeof(T);
}

template <typename T>
void append_digest(std::vector<T>& buf) {
  const std::uint64_t d = checksum_of(std::span<const T>(buf));
  const size_t n = buf.size();
  buf.resize(n + digest_elems<T>());
  std::memcpy(static_cast<void*>(buf.data() + n), &d, sizeof d);
}

// Trace context for a redistribution frame on edge `e` toward the consumer
// of `cpi` (weight edges pass the consumer's CPI, so the flow lands on the
// chain that actually uses the weights). Built only when tracing is on.
comm::FlowContext flow_for(index_t cpi, Edge e) {
  comm::FlowContext fc;
  fc.cpi = static_cast<std::int64_t>(cpi);
  fc.task = static_cast<std::int16_t>(sim_edge_src(static_cast<SimEdge>(e)));
  fc.edge = static_cast<std::int16_t>(e);
  fc.hop = e <= kDopToHardBf ? 1 : (e == kPcToCfar ? 3 : 2);
  return fc;
}

void send_cf(Comm& c, Shared& s, int dest, index_t cpi, Edge e,
             std::vector<cfloat>& buf, bool measured, PhaseAcc& acc) {
  const std::uint64_t n = buf.size() * sizeof(cfloat);
  comm::FlowContext fc;
  const comm::FlowContext* flow = nullptr;
  if (obs::tracing_enabled()) {
    fc = flow_for(cpi, e);
    flow = &fc;
  }
  if (s.integ.enabled) {
    append_digest(buf);
    c.send<cfloat>(dest, tag_for(cpi, e), buf, flow);
    buf.resize(buf.size() - digest_elems<cfloat>());
  } else {
    c.send<cfloat>(dest, tag_for(cpi, e), buf, flow);
  }
  if (measured) {
    acc.bytes += n;
    s.edge_bytes[static_cast<size_t>(e)].fetch_add(n,
                                                   std::memory_order_relaxed);
  }
}

// One obs span per Figure-10 phase: recv [t0,t1), comp [t1,t2),
// send [t2,t3). `send_bytes` annotates the send span (0 on unmeasured
// CPIs, where byte accounting is off).
void emit_phase_spans(int rank, Task t, index_t cpi, double t0, double t1,
                      double t2, double t3, std::uint64_t send_bytes) {
  if (!obs::tracing_enabled()) return;
  const int task = static_cast<int>(t);
  const auto c = static_cast<std::int64_t>(cpi);
  obs::emit({"recv", "pipeline", rank, task, c, t0, t1, -1, -1});
  obs::emit({"comp", "pipeline", rank, task, c, t1, t2, -1, -1});
  obs::emit({"send", "pipeline", rank, task, c, t2, t3,
             static_cast<std::int64_t>(send_bytes), -1});
}

// Deadline-aware receive helper: one per rank, reset per CPI. When
// inactive every recv is the plain blocking call and behaviour is
// identical to the fault-free pipeline. The helper must be active whenever
// *any* upstream task may emit markers — deadline shedding OR overload
// control — because a plain recv cannot represent a marker (it unpacks to
// an empty payload and trips the length checks). With shedding enabled,
// the first recv of a CPI starts the real-time budget; a recv that cannot
// complete within the remaining budget (or that delivers a shed marker /
// hits a dead peer / consumes an unrecoverably corrupt frame) returns
// nullopt, after which the CPI must be shed. Remaining inputs are still
// polled with a zero deadline so whatever already arrived is drained, and
// sources that never delivered go on the stale list — their late frames
// are discarded at the start of subsequent CPIs. (A kCorrupt frame is
// already consumed and is NOT staled.) With overload control but no
// shedding, the budget is effectively infinite: markers are recognized,
// nothing times out.
struct FtRecv {
  Comm& c;
  const FaultToleranceConfig& cfg;
  bool active = false;
  double budget = 0.0;    // per-CPI real-time budget, seconds
  double deadline = 0.0;  // absolute, WallTimer base
  bool missed = false;    // some input did not make this CPI's deadline
  std::vector<std::pair<int, int>> stale{};  // (src, tag) awaiting discard

  void begin() {
    if (!active) return;
    deadline = WallTimer::now() + budget;
    missed = false;
    for (auto it = stale.begin(); it != stale.end();)
      it = c.discard(it->first, it->second) > 0 ? stale.erase(it) : it + 1;
  }

  /// nullopt => marker, timeout, dead peer, or corrupt frame: the CPI
  /// cannot complete.
  template <typename T>
  std::optional<std::vector<T>> recv(int src, int tag) {
    if (!active) return c.recv<T>(src, tag);
    const double remaining =
        missed ? 0.0 : std::max(0.0, deadline - WallTimer::now());
    auto r = c.recv_bytes_for(src, tag, remaining);
    if (r.status == comm::RecvStatus::kPeerDead && cfg.heal_shrink) {
      // The dead peer is being healed by a topology shrink: hold the edge
      // to the CPI deadline like any other stall instead of shedding
      // instantly. A prompt dead-peer shed would let the sink sprint to
      // the end of the stream, pushing every rank's progress past the
      // last CPI a shrink barrier could legally be placed at — the
      // recovery would be unreachable exactly when it is configured.
      // CPIs re-routed by the committed shrink never touch this edge;
      // the in-flight ones shed here when the budget runs out.
      while (r.status == comm::RecvStatus::kPeerDead &&
             WallTimer::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        r = c.recv_bytes_for(src, tag, 0.0);
      }
    }
    if (r.ok()) return r.as<T>();
    missed = true;
    if (r.status == comm::RecvStatus::kTimeout ||
        r.status == comm::RecvStatus::kPeerDead)
      stale.emplace_back(src, tag);
    return std::nullopt;
  }

  std::optional<std::vector<cfloat>> recv_cf(int src, int tag) {
    return recv<cfloat>(src, tag);
  }
};

// Budget large enough to be "never" yet safely representable in the comm
// layer's chrono arithmetic (about three years).
constexpr double kNoDeadline = 1e8;

FtRecv make_ftr(Comm& c, Shared& s) {
  FtRecv f{c, s.ft};
  // Integrity escalations emit shed markers on the regular edges, so every
  // receiver must recognize markers whenever the layer is on. Spare-rank
  // mode also needs the deadline-aware path (with an effectively infinite
  // budget): once the spare is consumed, a later weight-rank death is
  // unrecoverable and a plain recv would block forever, whereas the
  // deadline recv surfaces a prompt dead-peer status and the CPI sheds.
  f.active = s.ft.any() || s.ctrl != nullptr || s.integ.enabled;
  f.budget = s.ft.shedding ? s.ft.cpi_deadline_seconds : kNoDeadline;
  return f;
}

// Strip the digest trailing the payload and compare it against the bytes
// actually delivered; a mismatch is counted and attributed to the producing
// task. (The transport already checksums every frame, so a mismatch here
// means the producer's buffer changed between verification and pack, or the
// redistribution reassembly disagrees with the producer.) Must run before
// the caller's payload-length checks — it shrinks the buffer back to the
// payload proper.
template <typename T>
void strip_digest(FtRecv& ftr, Shared& s, int src, std::vector<T>& buf,
                  index_t cpi) {
  if (!s.integ.enabled) return;
  if (buf.size() < digest_elems<T>()) return;
  std::uint64_t d = 0;
  std::memcpy(&d, buf.data() + buf.size() - digest_elems<T>(), sizeof d);
  buf.resize(buf.size() - digest_elems<T>());
  if (d == checksum_of(std::span<const T>(buf))) return;
  s.integ_digest_mismatches.fetch_add(1, std::memory_order_relaxed);
  const int t = s.task_of_rank(src, cpi);
  if (t >= 0)
    s.integ_digest_by_task[static_cast<size_t>(t)].fetch_add(
        1, std::memory_order_relaxed);
  if (obs::tracing_enabled()) {
    const double now = WallTimer::now();
    obs::emit({"digest_mismatch", "integrity", ftr.c.rank(),
               obs::kIntegrityTrack, static_cast<std::int64_t>(cpi), now, now,
               -1, static_cast<std::int64_t>(src)});
  }
}

// Gray-failure injection (kSlow): stretch this rank's compute stage by the
// plan's multiplicative slowdown, realized as a sleep on top of the real
// execution time. A revived rank — a spare wearing a quarantined rank's
// identity — is exempt: the rule modeled the evicted hardware, not its
// healthy replacement.
void maybe_straggle(Comm& c, Shared& s, index_t cpi, double elapsed) {
  if (s.plan == nullptr) return;
  if (s.health != nullptr && s.health->revived(c.rank())) return;
  const double f = s.plan->slow_factor_due(c.rank(), cpi);
  if (f <= 1.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>((f - 1.0) * elapsed));
}

// Health sampling: one intrinsic-service / queue-wait pair per completed
// Fig.-10 cycle. Service is t3 - t1 — the receive wait is excluded, so a
// rank merely starved behind an upstream straggler is never flagged itself.
void observe_health(Comm& c, Shared& s, Task t, index_t cpi, double t0,
                    double t1, double t3) {
  if (s.health != nullptr)
    s.health->observe(c.rank(), static_cast<int>(t), cpi, t3 - t1, t1 - t0);
}

// Sink-side detector tick: score every task group's live members.
// Eviction viability rides along — a spare left in the pool, else the
// shrink protocol — so the do-no-harm gate can refuse quarantines nobody
// could heal.
void health_scan(Shared& s, const Topology& tp, index_t cpi) {
  if (s.health == nullptr) return;
  std::vector<HealthGroup> groups;
  for (size_t t = 0; t < tp.ranks.size(); ++t) {
    HealthGroup g;
    g.task = static_cast<int>(t);
    for (const int r : tp.ranks[t])
      if (!s.eng->rank_permanently_dead(r)) g.ranks.push_back(r);
    if (!g.ranks.empty()) groups.push_back(std::move(g));
  }
  const bool spare = s.spares_left.load(std::memory_order_acquire) > 0;
  s.health->scan(cpi, groups, spare, s.ft.heal_shrink);
}

// The detect → recompute-once → escalate policy around one stage execution.
// `compute(attempt)` produces the stage output (and applies any injected
// flip); `verify()` checks the ABFT invariant over the current output.
// Returns false when the stage must escalate: both executions failed
// verification, and the caller falls back to its shed / stale machinery.
template <typename ComputeFn, typename VerifyFn>
bool run_checked(Comm& c, Shared& s, Task t, index_t cpi, ComputeFn&& compute,
                 VerifyFn&& verify) {
  const double c_start = WallTimer::now();
  compute(0);
  maybe_straggle(c, s, cpi, WallTimer::now() - c_start);
  if (!s.integ.enabled) return true;
  if (verify()) {
    s.integ_checks_passed.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const double t_fail = WallTimer::now();
  s.integ_checks_failed.fetch_add(1, std::memory_order_relaxed);
  s.integ_recomputes.fetch_add(1, std::memory_order_relaxed);
  compute(1);
  const bool ok = verify();
  if (ok) {
    s.integ_repairs.fetch_add(1, std::memory_order_relaxed);
  } else {
    s.integ_checks_failed.fetch_add(1, std::memory_order_relaxed);
    s.integ_escalations.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.integ_events.push_back(IntegrityEvent{static_cast<int>(t), cpi, ok});
  }
  if (obs::tracing_enabled())
    obs::emit({ok ? "abft_repair" : "abft_escalate", "integrity", c.rank(),
               obs::kIntegrityTrack, static_cast<std::int64_t>(cpi), t_fail,
               WallTimer::now(), -1, -1});
  if (!ok) obs::flight_dump("integrity_escalation");
  return ok;
}

/// Spare-rank resume request: restore the serialized weight computers and
/// re-enter the CPI loop at `cpi`. `restored` fires once state is back
/// (recovery-stall measurement point).
struct Resume {
  index_t cpi = 0;
  std::string blob;
  std::function<void(index_t)> restored;
};

// ---------------------------------------------------------------------------
// Task 0: Doppler filter processing (partitioned along K)
// ---------------------------------------------------------------------------
// Returns the first CPI this rank did NOT process as a Doppler rank
// (s.n_cpis when it ran to the end): a committed migration that changes
// this rank's role hands control back to the per-rank driver loop, which
// re-dispatches the new task's body at the returned CPI.
index_t run_doppler(Comm& c, Shared& s, index_t begin) {
  const auto& p = s.p;
  const index_t j = p.num_channels;
  const index_t jj = p.num_staggered_channels();
  stap::DopplerFilter filter(p);
  PhaseAcc acc;

  index_t next = s.n_cpis;
  for (index_t cpi = begin; cpi < s.n_cpis; ++cpi) {
    // Migration hook: record progress, join a pending barrier, resolve
    // this CPI's topology. On a committed migration that moved this rank,
    // bail out to the driver loop.
    const Topology& tp = s.barrier(c, cpi);
    const Topology::Role role = tp.role_of(c.rank());
    if (role.task != Task::kDopplerFilter) {
      next = cpi;
      break;
    }
    const int me = role.local;
    if (c.rank() == s.eng->coordinator_rank()) s.eng->policy_tick(c, cpi);
    const index_t k0 = tp.part_k.offset(me);
    const index_t kl = tp.part_k.length(me);
    const bool meas = s.measured(cpi);
    const std::uint64_t bytes0 = acc.bytes;

    // Admission gate (pacing, bounded queue, degradation ladder). The
    // decision is memoized: every Doppler rank gets the same answer, and
    // it is fixed before any frame of this CPI is sent.
    const auto adm = s.source.admit(cpi);
    const double t0 = WallTimer::now();
    if (me == 0) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.input_ready[static_cast<size_t>(cpi)] = t0;
    }
    if (me == 0 && obs::tracing_enabled() &&
        adm.level != DegradationLevel::kFull)
      obs::emit({degradation_level_name(adm.level), "overload", c.rank(),
                 obs::kFaultTrack, static_cast<std::int64_t>(cpi), t0, t0,
                 static_cast<std::int64_t>(adm.level), -1});

    if (!adm.admit) {
      // Rejected at admission (kShedInput): the cube is never generated;
      // shed markers take the place of every downstream frame.
      for (int r = 0; r < tp.count(Task::kEasyWeight); ++r)
        c.send_marker(tp.rank_at(Task::kEasyWeight, r),
                      tag_for(cpi, kDopToEasyWt));
      for (int r = 0; r < tp.count(Task::kHardWeight); ++r)
        c.send_marker(tp.rank_at(Task::kHardWeight, r),
                      tag_for(cpi, kDopToHardWt));
      for (int r = 0; r < tp.count(Task::kEasyBeamform); ++r)
        c.send_marker(tp.rank_at(Task::kEasyBeamform, r),
                      tag_for(cpi, kDopToEasyBf));
      for (int r = 0; r < tp.count(Task::kHardBeamform); ++r)
        c.send_marker(tp.rank_at(Task::kHardBeamform, r),
                      tag_for(cpi, kDopToHardBf));
      const double t3 = WallTimer::now();
      emit_phase_spans(c.rank(), Task::kDopplerFilter, cpi, t0, t0, t0, t3,
                       0);
      if (meas) acc.send += t3 - t0;
      continue;
    }
    // Training is suppressed on the frozen/stale rungs: kFrozenHard stops
    // feeding the hard recursion, kStaleWeights stops both weight tasks.
    const bool skip_hard_training = adm.level >= DegradationLevel::kFrozenHard;
    const bool skip_easy_training =
        adm.level >= DegradationLevel::kStaleWeights;

    // "Receive": fetch this rank's range slab from the radar feed.
    auto full = s.source.get(cpi, c.rank());
    cube::CpiCube slab(kl, j, p.num_pulses);
    for (index_t k = 0; k < kl; ++k)
      for (index_t ch = 0; ch < j; ++ch) {
        auto src = full->line(k0 + k, ch);
        std::copy(src.begin(), src.end(), slab.line(k, ch).begin());
      }
    full.reset();
    const double t1 = WallTimer::now();

    cube::CpiCube stag;
    const bool ok = run_checked(
        c, s, Task::kDopplerFilter, cpi,
        [&](int attempt) {
          stag = filter.filter(slab, k0);
          maybe_flip(s, Task::kDopplerFilter, cpi, c.rank(), attempt,
                     float_view(stag));
        },
        [&] { return filter.parseval_check(slab, stag, k0, s.integ.tolerance); });
    const double t2 = WallTimer::now();

    if (!ok) {
      // Persistent corruption in the filter output: drop this rank's slab
      // from the CPI exactly like an admission reject — markers take the
      // place of every downstream frame and the sink ledgers one shed.
      for (int r = 0; r < tp.count(Task::kEasyWeight); ++r)
        c.send_marker(tp.rank_at(Task::kEasyWeight, r),
                      tag_for(cpi, kDopToEasyWt));
      for (int r = 0; r < tp.count(Task::kHardWeight); ++r)
        c.send_marker(tp.rank_at(Task::kHardWeight, r),
                      tag_for(cpi, kDopToHardWt));
      for (int r = 0; r < tp.count(Task::kEasyBeamform); ++r)
        c.send_marker(tp.rank_at(Task::kEasyBeamform, r),
                      tag_for(cpi, kDopToEasyBf));
      for (int r = 0; r < tp.count(Task::kHardBeamform); ++r)
        c.send_marker(tp.rank_at(Task::kHardBeamform, r),
                      tag_for(cpi, kDopToHardBf));
      const double t3e = WallTimer::now();
      emit_phase_spans(c.rank(), Task::kDopplerFilter, cpi, t0, t1, t2, t3e,
                       0);
      if (meas) {
        acc.recv += t1 - t0;
        acc.comp += t2 - t1;
        acc.send += t3e - t2;
      }
      continue;
    }

    // --- data collection + personalized sends (Figs. 6b, 8) --------------
    // Easy weight task: training rows (J channels) at the easy training
    // cells inside this slab, for each destination's owned bins. On the
    // stale-weights rung a marker replaces the rows (the computer keeps
    // serving its last weights).
    for (int r = 0; r < tp.count(Task::kEasyWeight); ++r) {
      if (skip_easy_training) {
        c.send_marker(tp.rank_at(Task::kEasyWeight, r),
                      tag_for(cpi, kDopToEasyWt));
        continue;
      }
      std::vector<cfloat> buf;
      const auto bins = slice(s.easy_bins, tp.part_ewt, r);
      for (index_t bin : bins)
        for (index_t cell : s.easy_cells) {
          if (cell < k0 || cell >= k0 + kl) continue;
          for (index_t ch = 0; ch < j; ++ch)
            buf.push_back(stag.at(cell - k0, ch, bin));
        }
      send_cf(c, s, tp.rank_at(Task::kEasyWeight, r), cpi, kDopToEasyWt, buf,
              meas, acc);
    }
    // Hard weight task: 2J-channel training rows per (bin, segment) unit.
    // Frozen from kFrozenHard up — the recursion reuses its last R.
    for (int r = 0; r < tp.count(Task::kHardWeight); ++r) {
      if (skip_hard_training) {
        c.send_marker(tp.rank_at(Task::kHardWeight, r),
                      tag_for(cpi, kDopToHardWt));
        continue;
      }
      std::vector<cfloat> buf;
      const auto units = slice(s.hard_units, tp.part_hwu, r);
      for (const auto& u : units)
        for (index_t cell : s.hard_cells[static_cast<size_t>(u.segment)]) {
          if (cell < k0 || cell >= k0 + kl) continue;
          for (index_t ch = 0; ch < jj; ++ch)
            buf.push_back(stag.at(cell - k0, ch, u.bin));
        }
      send_cf(c, s, tp.rank_at(Task::kHardWeight, r), cpi, kDopToHardWt, buf,
              meas, acc);
    }
    // Easy beamforming: the full slab for the destination's bins, J
    // channels, reorganized to (bin, range, channel) — Fig. 8.
    for (int r = 0; r < tp.count(Task::kEasyBeamform); ++r) {
      const auto bins = slice(s.easy_bins, tp.part_ebf, r);
      std::vector<cfloat> buf;
      buf.reserve(bins.size() * static_cast<size_t>(kl * j));
      for (index_t bin : bins)
        for (index_t k = 0; k < kl; ++k)
          for (index_t ch = 0; ch < j; ++ch)
            buf.push_back(stag.at(k, ch, bin));
      send_cf(c, s, tp.rank_at(Task::kEasyBeamform, r), cpi, kDopToEasyBf,
              buf, meas, acc);
    }
    // Hard beamforming: same with both stagger halves (2J channels).
    for (int r = 0; r < tp.count(Task::kHardBeamform); ++r) {
      const auto bins = slice(s.hard_bins, tp.part_hbf, r);
      std::vector<cfloat> buf;
      buf.reserve(bins.size() * static_cast<size_t>(kl * jj));
      for (index_t bin : bins)
        for (index_t k = 0; k < kl; ++k)
          for (index_t ch = 0; ch < jj; ++ch)
            buf.push_back(stag.at(k, ch, bin));
      send_cf(c, s, tp.rank_at(Task::kHardBeamform, r), cpi, kDopToHardBf,
              buf, meas, acc);
    }
    const double t3 = WallTimer::now();
    emit_phase_spans(c.rank(), Task::kDopplerFilter, cpi, t0, t1, t2, t3,
                     acc.bytes - bytes0);
    observe_health(c, s, Task::kDopplerFilter, cpi, t0, t1, t3);

    if (meas) {
      acc.recv += t1 - t0;
      acc.comp += t2 - t1;
      acc.send += t3 - t2;
    }
  }
  acc.commit(s, Task::kDopplerFilter, s.measured_count());
  return next;
}

// ---------------------------------------------------------------------------
// Task 1: easy weight computation (partitioned along easy bins)
// ---------------------------------------------------------------------------
void run_easy_wt(Comm& c, Shared& s, int me, const Resume* resume = nullptr) {
  const auto& p = s.p;
  const index_t j = p.num_channels;
  const index_t positions = p.num_beam_positions;
  // The weight and beamforming groups never migrate, so their partitions
  // and rank lists are epoch-0 invariants; only the Doppler fan-in below is
  // resolved per CPI.
  const Topology& tp0 = s.topo(0);
  const auto bins = slice(s.easy_bins, tp0.part_ewt, me);
  // One computer per transmit position: training pools only same-azimuth
  // looks (paper §3).
  std::vector<stap::EasyWeightComputer> computers;
  for (index_t pos = 0; pos < positions; ++pos)
    computers.emplace_back(p, s.steering[static_cast<size_t>(pos)],
                           std::vector<index_t>(bins.begin(), bins.end()));
  PhaseAcc acc;

  // Each Doppler rank's contribution rows (cells of the global training
  // list inside its slab); recomputed when a migration resizes the group.
  int rows_for_dops = -1;
  std::vector<std::vector<index_t>> rows_from;

  // Send the quiescent weights that beamform the first visit of each
  // position (TD_{1,3} bootstrap).
  auto send_weights = [&](const stap::WeightSet& w, index_t for_cpi) {
    for (int r = 0; r < tp0.count(Task::kEasyBeamform); ++r) {
      const index_t lo =
          std::max(tp0.part_ewt.offset(me), tp0.part_ebf.offset(r));
      const index_t hi =
          std::min(tp0.part_ewt.offset(me) + tp0.part_ewt.length(me),
                   tp0.part_ebf.offset(r) + tp0.part_ebf.length(r));
      std::vector<cfloat> buf;
      for (index_t pos = lo; pos < hi; ++pos) {
        const auto& wm =
            w.weights[static_cast<size_t>(pos - tp0.part_ewt.offset(me))];
        buf.insert(buf.end(), wm.data(), wm.data() + wm.size());
      }
      send_cf(c, s, tp0.rank_at(Task::kEasyBeamform, r), for_cpi,
              kEasyWtToBf, buf, s.measured(for_cpi), acc);
    }
  };
  // Checkpoint the computers' state after every CPI so a spare can resume
  // at exactly the next CPI (keyed by the global rank the spare assumes).
  auto save_ckpt = [&](index_t next_cpi) {
    if (s.ft.spare_count() == 0) return;
    std::ostringstream os;
    for (const auto& comp : computers) comp.save(os);
    std::lock_guard<std::mutex> lock(s.mu);
    auto& ck = s.checkpoints[c.rank()];
    ck.next_cpi = next_cpi;
    ck.blob = os.str();
  };

  index_t start_cpi = 0;
  if (resume) {
    std::istringstream is(resume->blob);
    for (auto& comp : computers) comp.restore(is);
    start_cpi = resume->cpi;
    if (resume->restored) resume->restored(start_cpi);
  } else {
    for (index_t pos = 0; pos < positions && pos < s.n_cpis; ++pos)
      send_weights(computers[static_cast<size_t>(pos)].compute(), pos);
    save_ckpt(0);
  }

  FtRecv ftr = make_ftr(c, s);
  // Last solved weights per transmit position: the stale-weights rung
  // resends them without paying for a solve.
  std::vector<std::optional<stap::WeightSet>> last_w(
      static_cast<size_t>(positions));
  const index_t total_cells = static_cast<index_t>(s.easy_cells.size());
  for (index_t cpi = start_cpi; cpi < s.n_cpis; ++cpi) {
    const Topology& tp = s.barrier(c, cpi);
    const bool meas = s.measured(cpi);
    const std::uint64_t bytes0 = acc.bytes;
    const double t0 = WallTimer::now();
    ftr.begin();

    if (tp.count(Task::kDopplerFilter) != rows_for_dops) {
      rows_for_dops = tp.count(Task::kDopplerFilter);
      rows_from.assign(static_cast<size_t>(rows_for_dops), {});
      for (int d = 0; d < rows_for_dops; ++d)
        rows_from[static_cast<size_t>(d)] =
            s.cell_positions_in_slab(s.easy_cells, d, tp.part_k);
    }

    bool complete = true;
    std::vector<MatrixCF> training(bins.size(), MatrixCF(total_cells, j));
    for (int d = 0; d < tp.count(Task::kDopplerFilter); ++d) {
      const int src = tp.rank_at(Task::kDopplerFilter, d);
      auto bufo = ftr.recv_cf(src, tag_for(cpi, kDopToEasyWt));
      if (!bufo) {
        complete = false;
        continue;
      }
      auto& buf = *bufo;
      strip_digest(ftr, s, src, buf, cpi);
      size_t off = 0;
      for (size_t bi = 0; bi < bins.size(); ++bi)
        for (index_t row : rows_from[static_cast<size_t>(d)]) {
          PPSTAP_CHECK(off + static_cast<size_t>(j) <= buf.size(),
                       "short easy training message");
          for (index_t ch = 0; ch < j; ++ch)
            training[bi](row, ch) = buf[off++];
        }
      PPSTAP_CHECK(off == buf.size(), "easy training message length");
    }
    const double t1 = WallTimer::now();

    // A shed CPI skips the training update; the previous weights still
    // flow downstream so beamforming never starves (degraded adaptivity,
    // not a stalled stream).
    auto& computer = computers[static_cast<size_t>(cpi % positions)];
    if (complete) computer.push_training(std::move(training));
    auto& cache = last_w[static_cast<size_t>(cpi % positions)];
    stap::WeightSet w;
    bool wt_markers = false;
    if (s.ctrl != nullptr &&
        s.ctrl->level_for(cpi) >= DegradationLevel::kStaleWeights && cache) {
      w = *cache;  // stale rung: resend without solving
    } else {
      const bool wok = run_checked(
          c, s, Task::kEasyWeight, cpi,
          [&](int attempt) {
            w = computer.compute();
            maybe_flip_weights(s, Task::kEasyWeight, cpi, c.rank(), attempt,
                               w.weights);
          },
          [&] { return weights_unit_norm(w.weights, s.integ.tolerance); });
      if (wok)
        cache = w;
      else if (cache)
        w = *cache;  // escalate into the stale-weight fallback
      else
        wt_markers = true;  // nothing trustworthy yet: let BF shed
    }
    const double t2 = WallTimer::now();

    // These weights serve the *next visit* of the same transmit position.
    if (cpi + positions < s.n_cpis) {
      if (wt_markers)
        for (int r = 0; r < tp0.count(Task::kEasyBeamform); ++r)
          c.send_marker(tp0.rank_at(Task::kEasyBeamform, r),
                        tag_for(cpi + positions, kEasyWtToBf));
      else
        send_weights(w, cpi + positions);
    }
    save_ckpt(cpi + 1);
    const double t3 = WallTimer::now();
    emit_phase_spans(c.rank(), Task::kEasyWeight, cpi, t0, t1, t2, t3,
                     acc.bytes - bytes0);
    observe_health(c, s, Task::kEasyWeight, cpi, t0, t1, t3);

    if (meas) {
      acc.recv += t1 - t0;
      acc.comp += t2 - t1;
      acc.send += t3 - t2;
    }
  }
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& comp : computers) s.numerics += comp.health();
  }
  acc.commit(s, Task::kEasyWeight, s.measured_count());
}

// ---------------------------------------------------------------------------
// Task 2: hard weight computation (partitioned over (bin, segment) units)
// ---------------------------------------------------------------------------
void run_hard_wt(Comm& c, Shared& s, int me, const Resume* resume = nullptr) {
  const auto& p = s.p;
  const index_t jj = p.num_staggered_channels();
  const index_t positions = p.num_beam_positions;
  // Weight/BF groups never migrate: epoch-0 partitions are invariant here.
  const Topology& tp0 = s.topo(0);
  const auto units = slice(s.hard_units, tp0.part_hwu, me);
  std::vector<stap::HardWeightComputer> computers;
  for (index_t pos = 0; pos < positions; ++pos)
    computers.emplace_back(
        p, s.steering[static_cast<size_t>(pos)],
        std::vector<stap::HardUnit>(units.begin(), units.end()));
  PhaseAcc acc;

  // Row positions per (unit, doppler rank); recomputed when a migration
  // resizes the Doppler group.
  int rows_for_dops = -1;
  std::vector<std::vector<std::vector<index_t>>> rows_from(units.size());

  const index_t u_base = tp0.part_hwu.offset(me);
  auto send_weights = [&](const std::vector<MatrixCF>& w, index_t for_cpi) {
    for (int r = 0; r < tp0.count(Task::kHardBeamform); ++r) {
      // Hard BF rank r owns bin positions [b0, b0+bl) — i.e. unit
      // positions [b0*S, (b0+bl)*S) in the bin-major unit list.
      const index_t segs = p.num_segments;
      const index_t r_lo = tp0.part_hbf.offset(r) * segs;
      const index_t r_hi = r_lo + tp0.part_hbf.length(r) * segs;
      const index_t lo = std::max(u_base, r_lo);
      const index_t hi = std::min(u_base + tp0.part_hwu.length(me), r_hi);
      std::vector<cfloat> buf;
      for (index_t pos = lo; pos < hi; ++pos) {
        const auto& wm = w[static_cast<size_t>(pos - u_base)];
        buf.insert(buf.end(), wm.data(), wm.data() + wm.size());
      }
      send_cf(c, s, tp0.rank_at(Task::kHardBeamform, r), for_cpi,
              kHardWtToBf, buf, s.measured(for_cpi), acc);
    }
  };
  auto save_ckpt = [&](index_t next_cpi) {
    if (s.ft.spare_count() == 0) return;
    std::ostringstream os;
    for (const auto& comp : computers) comp.save(os);
    std::lock_guard<std::mutex> lock(s.mu);
    auto& ck = s.checkpoints[c.rank()];
    ck.next_cpi = next_cpi;
    ck.blob = os.str();
  };

  index_t start_cpi = 0;
  if (resume) {
    std::istringstream is(resume->blob);
    for (auto& comp : computers) comp.restore(is);
    start_cpi = resume->cpi;
    if (resume->restored) resume->restored(start_cpi);
  } else {
    for (index_t pos = 0; pos < positions && pos < s.n_cpis; ++pos)
      send_weights(computers[static_cast<size_t>(pos)].compute(), pos);
    save_ckpt(0);
  }

  FtRecv ftr = make_ftr(c, s);
  // Last solved weights per transmit position (stale-weights rung).
  std::vector<std::optional<std::vector<MatrixCF>>> last_w(
      static_cast<size_t>(positions));
  for (index_t cpi = start_cpi; cpi < s.n_cpis; ++cpi) {
    const Topology& tp = s.barrier(c, cpi);
    const bool meas = s.measured(cpi);
    const std::uint64_t bytes0 = acc.bytes;
    const double t0 = WallTimer::now();
    ftr.begin();

    if (tp.count(Task::kDopplerFilter) != rows_for_dops) {
      rows_for_dops = tp.count(Task::kDopplerFilter);
      for (size_t ui = 0; ui < units.size(); ++ui) {
        rows_from[ui].assign(static_cast<size_t>(rows_for_dops), {});
        for (int d = 0; d < rows_for_dops; ++d)
          rows_from[ui][static_cast<size_t>(d)] = s.cell_positions_in_slab(
              s.hard_cells[static_cast<size_t>(units[ui].segment)], d,
              tp.part_k);
      }
    }

    bool complete = true;
    std::vector<MatrixCF> training;
    training.reserve(units.size());
    for (size_t ui = 0; ui < units.size(); ++ui)
      training.emplace_back(
          static_cast<index_t>(p.hard_samples_per_segment), jj);
    for (int d = 0; d < tp.count(Task::kDopplerFilter); ++d) {
      const int src = tp.rank_at(Task::kDopplerFilter, d);
      auto bufo = ftr.recv_cf(src, tag_for(cpi, kDopToHardWt));
      if (!bufo) {
        complete = false;
        continue;
      }
      auto& buf = *bufo;
      strip_digest(ftr, s, src, buf, cpi);
      size_t off = 0;
      for (size_t ui = 0; ui < units.size(); ++ui)
        for (index_t row : rows_from[ui][static_cast<size_t>(d)]) {
          PPSTAP_CHECK(off + static_cast<size_t>(jj) <= buf.size(),
                       "short hard training message");
          for (index_t ch = 0; ch < jj; ++ch)
            training[ui](row, ch) = buf[off++];
        }
      PPSTAP_CHECK(off == buf.size(), "hard training message length");
    }
    const double t1 = WallTimer::now();

    // A shed CPI skips the recursive update (forgetting state untouched);
    // the current weights still flow downstream. (The frozen-hard rung
    // arrives here as a training marker: update skipped, solve kept.)
    auto& computer = computers[static_cast<size_t>(cpi % positions)];
    if (complete) computer.update(training);
    auto& cache = last_w[static_cast<size_t>(cpi % positions)];
    std::vector<MatrixCF> w;
    bool wt_markers = false;
    if (s.ctrl != nullptr &&
        s.ctrl->level_for(cpi) >= DegradationLevel::kStaleWeights && cache) {
      w = *cache;  // stale rung: resend without solving
    } else {
      const bool wok = run_checked(
          c, s, Task::kHardWeight, cpi,
          [&](int attempt) {
            w = computer.compute();
            maybe_flip_weights(s, Task::kHardWeight, cpi, c.rank(), attempt,
                               w);
          },
          [&] { return weights_unit_norm(w, s.integ.tolerance); });
      if (wok)
        cache = w;
      else if (cache)
        w = *cache;  // escalate into the stale-weight fallback
      else
        wt_markers = true;  // nothing trustworthy yet: let BF shed
    }
    const double t2 = WallTimer::now();

    // These weights serve the *next visit* of the same transmit position.
    if (cpi + positions < s.n_cpis) {
      if (wt_markers)
        for (int r = 0; r < tp0.count(Task::kHardBeamform); ++r)
          c.send_marker(tp0.rank_at(Task::kHardBeamform, r),
                        tag_for(cpi + positions, kHardWtToBf));
      else
        send_weights(w, cpi + positions);
    }
    save_ckpt(cpi + 1);
    const double t3 = WallTimer::now();
    emit_phase_spans(c.rank(), Task::kHardWeight, cpi, t0, t1, t2, t3,
                     acc.bytes - bytes0);
    observe_health(c, s, Task::kHardWeight, cpi, t0, t1, t3);

    if (meas) {
      acc.recv += t1 - t0;
      acc.comp += t2 - t1;
      acc.send += t3 - t2;
    }
  }
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& comp : computers) s.numerics += comp.health();
  }
  acc.commit(s, Task::kHardWeight, s.measured_count());
}

// ---------------------------------------------------------------------------
// Tasks 3/4: beamforming (partitioned along easy/hard bins)
// ---------------------------------------------------------------------------
// `begin` > 0 resumes mid-stream: a spare that assumed a dead beamforming
// rank's identity re-enters here at the CPI the dead rank was processing
// (its weight cache starts cold, so an in-flight CPI whose weights were
// already consumed falls back to the shed path rather than wedging).
void run_beamform(Comm& c, Shared& s, int me, bool hard, index_t begin = 0) {
  const auto& p = s.p;
  const Task task = hard ? Task::kHardBeamform : Task::kEasyBeamform;
  const Task wt_task = hard ? Task::kHardWeight : Task::kEasyWeight;
  const Edge data_edge = hard ? kDopToHardBf : kDopToEasyBf;
  const Edge wt_edge = hard ? kHardWtToBf : kEasyWtToBf;
  const Edge out_edge = hard ? kHardBfToPc : kEasyBfToPc;
  // Weight/BF groups never migrate: epoch-0 partitions are invariant here;
  // the Doppler fan-in and PC fan-out are resolved per CPI.
  const Topology& tp0 = s.topo(0);
  const BlockPartition& part = hard ? tp0.part_hbf : tp0.part_ebf;
  const BlockPartition& wpart = hard ? tp0.part_hwu : tp0.part_ewt;
  const std::vector<index_t>& bin_list = hard ? s.hard_bins : s.easy_bins;
  const index_t nch = hard ? p.num_staggered_channels() : p.num_channels;
  const index_t k = p.num_range;
  const index_t m = p.num_beams;
  const index_t segs = hard ? p.num_segments : 1;

  const auto bins = slice(bin_list, part, me);
  const index_t b0 = part.offset(me);
  const index_t bl = part.length(me);
  const index_t positions = p.num_beam_positions;
  // Stale-weight fallback (shedding only): the last complete weight set
  // received for each transmit position.
  std::vector<std::optional<stap::WeightSet>> wcache(
      static_cast<size_t>(positions));
  FtRecv ftr = make_ftr(c, s);
  PhaseAcc acc;

  for (index_t cpi = begin; cpi < s.n_cpis; ++cpi) {
    const Topology& tp = s.barrier(c, cpi);
    const bool meas = s.measured(cpi);
    const std::uint64_t bytes0 = acc.bytes;
    const double t0 = WallTimer::now();
    ftr.begin();
    bool shed = false;

    // Weights for this CPI (sent by the weight task while processing the
    // previous CPI — the temporal dependency).
    stap::WeightSet w;
    w.bins.assign(bins.begin(), bins.end());
    w.weights.assign(static_cast<size_t>(bl * segs), MatrixCF());
    bool weights_complete = true;
    for (int r = 0; r < tp0.count(wt_task); ++r) {
      const int src = tp0.rank_at(wt_task, r);
      auto bufo = ftr.recv_cf(src, tag_for(cpi, wt_edge));
      if (!bufo) {
        weights_complete = false;
        continue;
      }
      auto& buf = *bufo;
      strip_digest(ftr, s, src, buf, cpi);
      size_t off = 0;
      const index_t my_lo = b0 * segs;
      const index_t my_hi = (b0 + bl) * segs;
      const index_t lo = std::max(wpart.offset(r), my_lo);
      const index_t hi = std::min(wpart.offset(r) + wpart.length(r), my_hi);
      for (index_t pos = lo; pos < hi; ++pos) {
        MatrixCF wm(nch, m);
        PPSTAP_CHECK(off + static_cast<size_t>(wm.size()) <= buf.size(),
                     "short weight message");
        std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(off),
                    static_cast<size_t>(wm.size()), wm.data());
        off += static_cast<size_t>(wm.size());
        w.weights[static_cast<size_t>(pos - my_lo)] = std::move(wm);
      }
      PPSTAP_CHECK(off == buf.size(), "weight message length");
    }
    if (ftr.active) {
      auto& cache = wcache[static_cast<size_t>(cpi % positions)];
      if (weights_complete)
        cache = w;  // refresh the fallback for this position
      else if (cache)
        w = *cache;  // beamform with the position's last known weights
      else
        shed = true;  // nothing to beamform with yet
    }

    // Doppler data, reassembled into the bin-major (bin, range, channel)
    // cube of Fig. 8.
    cube::CpiCube data(bl, k, nch);
    for (int d = 0; d < tp.count(Task::kDopplerFilter); ++d) {
      const int src = tp.rank_at(Task::kDopplerFilter, d);
      auto bufo = ftr.recv_cf(src, tag_for(cpi, data_edge));
      if (!bufo) {
        shed = true;
        continue;
      }
      auto& buf = *bufo;
      strip_digest(ftr, s, src, buf, cpi);
      const index_t dk0 = tp.part_k.offset(d);
      const index_t dkl = tp.part_k.length(d);
      PPSTAP_CHECK(static_cast<index_t>(buf.size()) == bl * dkl * nch,
                   "doppler data message length");
      size_t off = 0;
      for (index_t b = 0; b < bl; ++b)
        for (index_t kk = 0; kk < dkl; ++kk) {
          std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(off),
                      static_cast<size_t>(nch),
                      data.line(b, dk0 + kk).begin());
          off += static_cast<size_t>(nch);
        }
    }
    const double t1 = WallTimer::now();

    if (shed) {
      // CPI i cannot be produced within the budget: propagate the dropped
      // marker downstream so the stream keeps moving.
      for (int r = 0; r < tp.count(Task::kPulseCompression); ++r)
        c.send_marker(tp.rank_at(Task::kPulseCompression, r),
                      tag_for(cpi, out_edge));
      const double t3 = WallTimer::now();
      emit_phase_spans(c.rank(), task, cpi, t0, t1, t1, t3, 0);
      if (meas) {
        acc.recv += t1 - t0;
        acc.send += t3 - t1;
      }
      continue;
    }

    // The reduced-beams rungs shrink the beamform work; skipped beams stay
    // zero in the output cube, so CFAR simply reports nothing there.
    const index_t active =
        s.ctrl != nullptr ? active_beams_for(s.ctrl->level_for(cpi), m) : m;
    cube::CpiCube out;
    const bool ok = run_checked(
        c, s, task, cpi,
        [&](int attempt) {
          out = hard ? stap::hard_beamform(data, w, p, active)
                     : stap::easy_beamform(data, w, p, active);
          maybe_flip(s, task, cpi, c.rank(), attempt, float_view(out));
        },
        [&] {
          return hard ? stap::hard_beamform_check(data, w, p, out, active,
                                                  s.integ.tolerance)
                      : stap::easy_beamform_check(data, w, p, out, active,
                                                  s.integ.tolerance);
        });
    const double t2 = WallTimer::now();

    if (!ok) {
      // Persistent corruption in the beamformed cube: escalate through the
      // existing shed path so downstream keeps moving.
      for (int r = 0; r < tp.count(Task::kPulseCompression); ++r)
        c.send_marker(tp.rank_at(Task::kPulseCompression, r),
                      tag_for(cpi, out_edge));
      const double t3e = WallTimer::now();
      emit_phase_spans(c.rank(), task, cpi, t0, t1, t2, t3e, 0);
      if (meas) {
        acc.recv += t1 - t0;
        acc.comp += t2 - t1;
        acc.send += t3e - t2;
      }
      continue;
    }

    // Route each bin's M x K block to the pulse compression owner of its
    // *global* Doppler bin.
    for (int r = 0; r < tp.count(Task::kPulseCompression); ++r) {
      const index_t g0 = tp.part_pc.offset(r);
      const index_t g1 = g0 + tp.part_pc.length(r);
      std::vector<cfloat> buf;
      for (index_t b = 0; b < bl; ++b) {
        const index_t gbin = bins[static_cast<size_t>(b)];
        if (gbin < g0 || gbin >= g1) continue;
        for (index_t mm = 0; mm < m; ++mm) {
          auto line = out.line(b, mm);
          buf.insert(buf.end(), line.begin(), line.end());
        }
      }
      send_cf(c, s, tp.rank_at(Task::kPulseCompression, r), cpi, out_edge,
              buf, meas, acc);
    }
    const double t3 = WallTimer::now();
    emit_phase_spans(c.rank(), task, cpi, t0, t1, t2, t3, acc.bytes - bytes0);
    observe_health(c, s, task, cpi, t0, t1, t3);

    if (meas) {
      acc.recv += t1 - t0;
      acc.comp += t2 - t1;
      acc.send += t3 - t2;
    }
  }
  acc.commit(s, task, s.measured_count());
}

// ---------------------------------------------------------------------------
// Task 5: pulse compression (partitioned along all Doppler bins)
// ---------------------------------------------------------------------------
// Like run_doppler, returns the first CPI this rank did not process as a
// pulse-compression rank (s.n_cpis when it ran to the end).
index_t run_pc(Comm& c, Shared& s, index_t begin) {
  const auto& p = s.p;
  const index_t m = p.num_beams;
  const index_t k = p.num_range;
  // The beamforming groups never migrate: their partitions and rank lists
  // are epoch-0 invariants. This rank's own bin span is per CPI.
  const Topology& tp0 = s.topo(0);
  stap::PulseCompressor compressor(p, s.replica);
  FtRecv ftr = make_ftr(c, s);
  PhaseAcc acc;

  auto recv_from_bf = [&](index_t cpi, bool hard, bool& shed, index_t g0,
                          index_t gl) {
    const Task bf_task = hard ? Task::kHardBeamform : Task::kEasyBeamform;
    const Edge edge = hard ? kHardBfToPc : kEasyBfToPc;
    const BlockPartition& part = hard ? tp0.part_hbf : tp0.part_ebf;
    const std::vector<index_t>& bin_list = hard ? s.hard_bins : s.easy_bins;
    std::vector<std::pair<index_t, std::vector<cfloat>>> rows;
    for (int r = 0; r < tp0.count(bf_task); ++r) {
      const int src = tp0.rank_at(bf_task, r);
      auto bufo = ftr.recv_cf(src, tag_for(cpi, edge));
      if (!bufo) {
        shed = true;
        continue;
      }
      auto& buf = *bufo;
      strip_digest(ftr, s, src, buf, cpi);
      size_t off = 0;
      const auto bins = slice(bin_list, part, r);
      for (index_t gbin : bins) {
        if (gbin < g0 || gbin >= g0 + gl) continue;
        std::vector<cfloat> row(static_cast<size_t>(m * k));
        PPSTAP_CHECK(off + row.size() <= buf.size(),
                     "short beamformed message");
        std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(off),
                    row.size(), row.begin());
        off += row.size();
        rows.emplace_back(gbin, std::move(row));
      }
      PPSTAP_CHECK(off == buf.size(), "beamformed message length");
    }
    return rows;
  };

  index_t next = s.n_cpis;
  for (index_t cpi = begin; cpi < s.n_cpis; ++cpi) {
    const Topology& tp = s.barrier(c, cpi);
    const Topology::Role role = tp.role_of(c.rank());
    if (role.task != Task::kPulseCompression) {
      next = cpi;
      break;
    }
    const index_t g0 = tp.part_pc.offset(role.local);
    const index_t gl = tp.part_pc.length(role.local);
    const bool meas = s.measured(cpi);
    const std::uint64_t bytes0 = acc.bytes;
    const double t0 = WallTimer::now();
    ftr.begin();

    cube::CpiCube bf(gl, m, k);
    bool shed = false;
    for (bool hard : {false, true})
      for (auto& [gbin, row] : recv_from_bf(cpi, hard, shed, g0, gl)) {
        cfloat* dst = &bf.at(gbin - g0, 0, 0);
        std::copy(row.begin(), row.end(), dst);
      }
    const double t1 = WallTimer::now();

    if (shed) {
      for (int r = 0; r < tp.count(Task::kCfar); ++r)
        c.send_marker(tp.rank_at(Task::kCfar, r), tag_for(cpi, kPcToCfar));
      const double t3 = WallTimer::now();
      emit_phase_spans(c.rank(), Task::kPulseCompression, cpi, t0, t1, t1,
                       t3, 0);
      if (meas) {
        acc.recv += t1 - t0;
        acc.send += t3 - t1;
      }
      continue;
    }

    const index_t active =
        s.ctrl != nullptr ? active_beams_for(s.ctrl->level_for(cpi), m) : m;
    cube::RealCube power;
    std::vector<double> row_energy;
    const bool ok = run_checked(
        c, s, Task::kPulseCompression, cpi,
        [&](int attempt) {
          power = compressor.compress(bf, active,
                                      s.integ.enabled ? &row_energy : nullptr);
          maybe_flip(s, Task::kPulseCompression, cpi, c.rank(), attempt,
                     float_view(power));
        },
        [&] {
          return stap::pc_energy_check(power, row_energy, active,
                                       s.integ.tolerance);
        });
    const double t2 = WallTimer::now();

    if (!ok) {
      for (int r = 0; r < tp.count(Task::kCfar); ++r)
        c.send_marker(tp.rank_at(Task::kCfar, r), tag_for(cpi, kPcToCfar));
      const double t3e = WallTimer::now();
      emit_phase_spans(c.rank(), Task::kPulseCompression, cpi, t0, t1, t2,
                       t3e, 0);
      if (meas) {
        acc.recv += t1 - t0;
        acc.comp += t2 - t1;
        acc.send += t3e - t2;
      }
      continue;
    }

    for (int r = 0; r < tp.count(Task::kCfar); ++r) {
      const index_t c0 = tp.part_cfar.offset(r);
      const index_t c1 = c0 + tp.part_cfar.length(r);
      const index_t lo = std::max(g0, c0);
      const index_t hi = std::min(g0 + gl, c1);
      std::vector<float> buf;
      for (index_t bin = lo; bin < hi; ++bin) {
        const float* src = &power.at(bin - g0, 0, 0);
        buf.insert(buf.end(), src, src + m * k);
      }
      const std::uint64_t n = buf.size() * sizeof(float);
      if (s.integ.enabled) append_digest(buf);
      comm::FlowContext fc;
      const comm::FlowContext* flow = nullptr;
      if (obs::tracing_enabled()) {
        fc = flow_for(cpi, kPcToCfar);
        flow = &fc;
      }
      c.send<float>(tp.rank_at(Task::kCfar, r), tag_for(cpi, kPcToCfar), buf,
                    flow);
      if (meas) {
        acc.bytes += n;
        s.edge_bytes[static_cast<size_t>(kPcToCfar)].fetch_add(
            n, std::memory_order_relaxed);
      }
    }
    const double t3 = WallTimer::now();
    emit_phase_spans(c.rank(), Task::kPulseCompression, cpi, t0, t1, t2, t3,
                     acc.bytes - bytes0);
    observe_health(c, s, Task::kPulseCompression, cpi, t0, t1, t3);

    if (meas) {
      acc.recv += t1 - t0;
      acc.comp += t2 - t1;
      acc.send += t3 - t2;
    }
  }
  acc.commit(s, Task::kPulseCompression, s.measured_count());
  return next;
}

// ---------------------------------------------------------------------------
// Task 6: CFAR (partitioned along all Doppler bins); pipeline sink
// ---------------------------------------------------------------------------
// Like run_doppler, returns the first CPI this rank did not process as a
// CFAR rank (s.n_cpis when it ran to the end).
index_t run_cfar(Comm& c, Shared& s, index_t begin) {
  const auto& p = s.p;
  const index_t m = p.num_beams;
  const index_t k = p.num_range;
  FtRecv ftr = make_ftr(c, s);
  PhaseAcc acc;

  index_t next = s.n_cpis;
  for (index_t cpi = begin; cpi < s.n_cpis; ++cpi) {
    const Topology& tp = s.barrier(c, cpi);
    const Topology::Role role = tp.role_of(c.rank());
    if (role.task != Task::kCfar) {
      next = cpi;
      break;
    }
    const index_t c0 = tp.part_cfar.offset(role.local);
    const index_t cl = tp.part_cfar.length(role.local);
    std::vector<index_t> my_bins(static_cast<size_t>(cl));
    for (index_t i = 0; i < cl; ++i) my_bins[static_cast<size_t>(i)] = c0 + i;
    const bool meas = s.measured(cpi);
    const double t0 = WallTimer::now();
    ftr.begin();
    bool shed = false;

    cube::RealCube power(cl, m, k);
    for (int r = 0; r < tp.count(Task::kPulseCompression); ++r) {
      const index_t g0 = tp.part_pc.offset(r);
      const index_t g1 = g0 + tp.part_pc.length(r);
      const index_t lo = std::max(c0, g0);
      const index_t hi = std::min(c0 + cl, g1);
      const int src = tp.rank_at(Task::kPulseCompression, r);
      auto bufo = ftr.recv<float>(src, tag_for(cpi, kPcToCfar));
      if (!bufo) {
        shed = true;
        continue;
      }
      auto& buf = *bufo;
      strip_digest(ftr, s, src, buf, cpi);
      PPSTAP_CHECK(static_cast<index_t>(buf.size()) ==
                       std::max<index_t>(0, hi - lo) * m * k,
                   "power message length");
      size_t off = 0;
      for (index_t bin = lo; bin < hi; ++bin) {
        std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(off),
                    static_cast<size_t>(m * k), &power.at(bin - c0, 0, 0));
        off += static_cast<size_t>(m * k);
      }
    }
    const double t1 = WallTimer::now();

    // A shed CPI reports no detections — the sink records the drop in the
    // ledger instead of stalling the stream on incomplete power data.
    std::vector<stap::Detection> dets;
    if (!shed) {
      const bool ok = run_checked(
          c, s, Task::kCfar, cpi,
          [&](int attempt) {
            dets = stap::cfar_detect(power, my_bins, p);
            maybe_flip_detections(s, cpi, c.rank(), attempt, dets);
          },
          [&] { return stap::verify_detections(dets, power, my_bins, p); });
      if (!ok) {
        // Persistently corrupt report: suppress it and ledger the CPI as
        // shed rather than publish wrong detections.
        dets.clear();
        shed = true;
      }
    }
    const double t2 = WallTimer::now();

    bool cpi_done = false;
    bool cpi_shed = false;
    double latency = 0.0;
    std::vector<index_t> retro;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      // Quorum completion: a permanently dead CFAR peer will never tick, so
      // the CPI completes on the live members alone — and must shed, since
      // the corpse's range slice is missing from the report. Post-shrink
      // epochs drop the corpse from the group, so live == group and
      // coverage is whole again. While the peer is merely dead-recoverable
      // (a pool spare will revive it and deliver its ticks) the full group
      // count stands.
      const int group = tp.count(Task::kCfar);
      int live = 0;
      for (int r = 0; r < group; ++r)
        live += s.eng->rank_permanently_dead(tp.rank_at(Task::kCfar, r))
                    ? 0
                    : 1;
      if (live < group) {
        shed = true;
        dets.clear();
        // Sweep CPIs this rank already ticked at full group strength whose
        // last tick died with the peer: complete them as shed now, or the
        // admission backlog pins on completions that can never come.
        for (index_t j = 0; j < cpi; ++j) {
          const auto ji = static_cast<size_t>(j);
          if (s.completion[ji] > 0.0) continue;
          const Topology& tj = s.topo(j);
          int live_j = 0;
          for (int r = 0; r < tj.count(Task::kCfar); ++r)
            live_j += s.eng->rank_permanently_dead(
                          tj.rank_at(Task::kCfar, r))
                          ? 0
                          : 1;
          if (s.cfar_done[ji] >= live_j && live_j > 0) {
            s.shed[ji] = 1;
            s.detections[ji].clear();
            s.completion[ji] = WallTimer::now();
            retro.push_back(j);
          }
        }
      }
      if (shed) s.shed[static_cast<size_t>(cpi)] = 1;
      auto& sink = s.detections[static_cast<size_t>(cpi)];
      // A shed CPI reports nothing: wipe contributions a peer banked
      // before this rank learned the CPI cannot complete whole (e.g. the
      // dead CFAR peer ticked here before dying mid-stream).
      if (shed) sink.clear();
      sink.insert(sink.end(), dets.begin(), dets.end());
      if (++s.cfar_done[static_cast<size_t>(cpi)] >= live &&
          s.completion[static_cast<size_t>(cpi)] == 0.0) {
        const double done = WallTimer::now();
        s.completion[static_cast<size_t>(cpi)] = done;
        cpi_done = true;
        cpi_shed = s.shed[static_cast<size_t>(cpi)] != 0;
        const double in = s.input_ready[static_cast<size_t>(cpi)];
        latency = in > 0.0 ? done - in : 0.0;
      }
    }
    // The sink closes the overload-control loop: latency samples drive the
    // SLO term, completions release throttled producers.
    if (cpi_done && s.ctrl != nullptr)
      s.ctrl->on_complete(cpi, latency, cpi_shed);
    for (const index_t j : retro)
      if (s.ctrl != nullptr) s.ctrl->on_complete(j, 0.0, true);
    if (shed && obs::tracing_enabled())
      obs::emit({"shed_cpi", "fault", c.rank(), obs::kFaultTrack,
                 static_cast<std::int64_t>(cpi), t0, t1, -1, -1});
    // The sink has no downstream send; its "send" span is the detection
    // report commit, so every task traces a full recv/comp/send triple.
    if (obs::tracing_enabled())
      emit_phase_spans(c.rank(), Task::kCfar, cpi, t0, t1, t2,
                       WallTimer::now(), 0);
    observe_health(c, s, Task::kCfar, cpi, t0, t1, t2);
    // Detector tick from the sink, not the coordinator: the pipelined
    // front can sprint arbitrarily far ahead of a straggler (and exit its
    // loop before the victim has min_samples), while the sink only reaches
    // CPI i after every upstream rank has sampled it — scans always score
    // mature statistics.
    if (role.local == 0) health_scan(s, tp, cpi);

    if (meas) {
      acc.recv += t1 - t0;
      acc.comp += t2 - t1;
    }
  }
  // Stream-completion bookkeeping (releasing an idle spare) moved to the
  // driver loop: only ranks whose *final* role is CFAR count, and a rank
  // migrating away mid-stream must not tick the counter.
  acc.commit(s, Task::kCfar, s.measured_count());
  return next;
}

// ---------------------------------------------------------------------------
// Role dispatch
// ---------------------------------------------------------------------------
// Runs whatever tasks this rank's topology role demands from `cpi` to the
// end of the stream. The migratable tasks return the CPI at which a
// committed migration changed this rank's role and the loop re-enters the
// new task's body there; the stateful weight/BF tasks never change role and
// always run to the end. Shared by the normal per-rank driver body (cpi 0)
// and by a spare that just assumed a dead stateless rank's identity (the
// dead rank's frozen progress).
void run_roles(Comm& c, Shared& s, index_t cpi) {
  const int rank = c.rank();
  while (cpi < s.n_cpis) {
    const Topology::Role role = s.topo(cpi).role_of(rank);
    PPSTAP_CHECK(role.local >= 0, "rank not assigned to any task");
    switch (role.task) {
      case Task::kDopplerFilter:
        cpi = run_doppler(c, s, cpi);
        break;
      case Task::kEasyWeight:
        run_easy_wt(c, s, role.local);
        cpi = s.n_cpis;
        break;
      case Task::kHardWeight:
        run_hard_wt(c, s, role.local);
        cpi = s.n_cpis;
        break;
      case Task::kEasyBeamform:
        run_beamform(c, s, role.local, /*hard=*/false, cpi);
        cpi = s.n_cpis;
        break;
      case Task::kHardBeamform:
        run_beamform(c, s, role.local, /*hard=*/true, cpi);
        cpi = s.n_cpis;
        break;
      case Task::kPulseCompression:
        cpi = run_pc(c, s, cpi);
        break;
      case Task::kCfar:
        cpi = run_cfar(c, s, cpi);
        break;
    }
  }
  // Last CFAR rank (under the final topology) out releases idle spares
  // from their standby loops. Only ranks whose *final* role is CFAR count:
  // a rank migrating away mid-stream must not tick the counter, and a
  // revived CFAR rank ticks in place of the one that died.
  const Topology& tf = s.topo(s.n_cpis - 1);
  if (tf.role_of(rank).task == Task::kCfar) {
    std::lock_guard<std::mutex> lock(s.mu);
    if (++s.cfar_ranks_finished == tf.count(Task::kCfar))
      s.stream_done.store(true, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// Spare pool: hot standby for every pipeline role
// ---------------------------------------------------------------------------
// Each pool member polls for a claimed-recoverable death until the stream
// drains, then assumes the dead rank's identity and mailbox (healing state
// machine: detect -> claim -> restore -> re-enter -> report). A weight rank
// resumes from its per-CPI checkpoint at exactly the CPI it would have
// processed next; a stateless rank (Doppler / beamform / pulse compression
// / CFAR) re-enters its role at the dead rank's frozen progress CPI — any
// inputs the dead rank had already consumed for that CPI are re-driven by
// the deadline/shed machinery, so the in-flight CPI either completes
// bit-exactly (mailbox intact) or sheds cleanly. Downstream ranks never
// notice beyond the recovery stall (paper §6's reallocation stall, measured
// here per takeover as MTTR).
void run_spare(comm::World& world, Comm& c, Shared& s) {
  // Standby polling climbs a spin -> yield -> sleep ladder instead of
  // waking at a fixed interval: an idle spare costs (almost) nothing while
  // a death early in the stream is still claimed promptly.
  Backoff bo(s.ft.death_poll_seconds);
  while (!s.stream_done.load(std::memory_order_acquire)) {
    std::optional<int> dead;
    try {
      dead = world.wait_for_death(bo.next_timeout());
    } catch (const Error&) {
      s.spare_wakeups.store(bo.wakeups(), std::memory_order_relaxed);
      return;  // world aborted while standing by
    }
    if (!dead) {
      bo.idle();
      continue;
    }
    bo.reset();
    s.spare_wakeups.store(bo.wakeups(), std::memory_order_relaxed);

    const double t_death = world.death_time(*dead);

    // Resolve the dead rank's role at its frozen progress point (the
    // top-of-loop store a dead rank can never advance past).
    const index_t at = std::max<index_t>(0, s.eng->progress_of(*dead));
    const Topology::Role role = s.topo(at).role_of(*dead);
    PPSTAP_CHECK(role.local >= 0, "dead rank not in the topology");
    const bool stateful =
        role.task == Task::kEasyWeight || role.task == Task::kHardWeight;

    Resume resume;
    if (stateful) {
      std::lock_guard<std::mutex> lock(s.mu);
      auto it = s.checkpoints.find(*dead);
      PPSTAP_CHECK(it != s.checkpoints.end(),
                   "no checkpoint for the dead rank");
      resume.cpi = it->second.next_cpi;
      resume.blob = it->second.blob;
    }

    c.take_over(*dead);
    // A quarantined straggler's death is attributed to the monitor, and
    // the revival clears its eviction request and statistics — the rank id
    // now names healthy replacement hardware, so per-rank slowdown rules
    // keyed on the old identity no longer apply.
    const bool was_quarantined =
        s.health != nullptr && s.health->was_quarantined(*dead);
    if (s.health != nullptr) s.health->on_revived(*dead);
    // This claim consumed one pool member. Whoever takes the pool to zero
    // clears every recoverable flag (the taken-over id included — the
    // revived rank is alive again, so the flag only governs a *repeat*
    // death) so any further death surfaces to receivers as a prompt
    // dead-peer status — the CPI sheds and the driver ledgers an uncovered
    // failure or the shrink path re-plans — instead of parking them on a
    // recovery wait that nobody will ever satisfy.
    if (s.spares_left.fetch_sub(1, std::memory_order_acq_rel) - 1 <= 0)
      for (int g = 0; g < s.a.total(); ++g) world.set_recoverable(g, false);

    auto record = [&s, &c, dead = *dead, task = role.task, t_death,
                   was_quarantined](index_t cpi) {
      const double t_up = WallTimer::now();
      {
        std::lock_guard<std::mutex> lock(s.mu);
        s.failovers.push_back(FailoverEvent{
            dead, static_cast<int>(task), cpi, t_up - t_death});
        HealingEvent ev;
        ev.rank = dead;
        ev.task = static_cast<int>(task);
        ev.mechanism = was_quarantined ? "quarantine" : "spare";
        ev.resume_cpi = cpi;
        ev.mttr_seconds = t_up - t_death;
        s.healing.push_back(ev);
      }
      if (obs::tracing_enabled())
        obs::emit({"heal_spare", "fault", c.rank(), obs::kFaultTrack,
                   static_cast<std::int64_t>(cpi), t_death, t_up, -1, -1});
      obs::flight_dump("failover");
    };
    if (stateful) {
      resume.restored = record;
      if (role.task == Task::kEasyWeight)
        run_easy_wt(c, s, role.local, &resume);
      else
        run_hard_wt(c, s, role.local, &resume);
    } else {
      record(at);
      run_roles(c, s, at);
    }
    return;  // each pool member covers one failure
  }
  s.spare_wakeups.store(bo.wakeups(), std::memory_order_relaxed);
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

ParallelStapPipeline::ParallelStapPipeline(const stap::StapParams& p,
                                           const NodeAssignment& assignment,
                                           linalg::MatrixCF steering,
                                           std::vector<cfloat> replica)
    : ParallelStapPipeline(
          p, assignment,
          std::vector<linalg::MatrixCF>(
              static_cast<size_t>(p.num_beam_positions), steering),
          std::move(replica)) {}

ParallelStapPipeline::ParallelStapPipeline(
    const stap::StapParams& p, const NodeAssignment& assignment,
    std::vector<linalg::MatrixCF> steering_per_position,
    std::vector<cfloat> replica)
    : p_(p),
      assign_(assignment),
      steering_(std::move(steering_per_position)),
      replica_(std::move(replica)) {
  p_.validate();
  assign_.validate(p_);
  PPSTAP_REQUIRE(static_cast<index_t>(steering_.size()) ==
                     p_.num_beam_positions,
                 "one steering matrix per transmit beam position expected");
  for (const auto& s : steering_)
    PPSTAP_REQUIRE(s.rows() == p_.num_channels && s.cols() == p_.num_beams,
                   "steering matrix must be J x M");
}

PipelineResult ParallelStapPipeline::run(
    const synth::ScenarioGenerator& scenario, index_t num_cpis,
    index_t warmup, index_t cooldown) {
  PPSTAP_REQUIRE(num_cpis > warmup + cooldown,
                 "need at least one measured CPI");
  PPSTAP_REQUIRE(scenario.params().num_range == p_.num_range &&
                     scenario.params().num_channels == p_.num_channels &&
                     scenario.params().num_pulses == p_.num_pulses,
                 "scenario dimensions must match STAP parameters");

  // Effective params for this run: the overload config may tighten the QR
  // conditioning threshold without mutating the pipeline object.
  stap::StapParams params = p_;
  if (ov_.enabled && ov_.condition_threshold > 0.0)
    params.condition_threshold = ov_.condition_threshold;
  // The integrity layer arms the weight-path QR residual gate at the same
  // tolerance as the pipeline-level invariants.
  if (integ_.enabled) params.abft_tolerance = integ_.tolerance;

  CpiSource source(scenario);
  Shared s{params,  assign_, steering_, replica_, source,
           num_cpis, warmup,  cooldown};
  s.easy_bins = p_.easy_bins();
  s.hard_bins = p_.hard_bins();
  s.easy_cells = stap::easy_training_cells(p_);
  for (index_t seg = 0; seg < p_.num_segments; ++seg)
    s.hard_cells.push_back(stap::hard_training_cells(p_, seg));
  s.hard_units = stap::HardWeightComputer::units_for_bins(
      p_, std::span<const index_t>(s.hard_bins));
  s.input_ready.assign(static_cast<size_t>(num_cpis), 0.0);
  s.completion.assign(static_cast<size_t>(num_cpis), 0.0);
  s.cfar_done.assign(static_cast<size_t>(num_cpis), 0);
  s.detections.assign(static_cast<size_t>(num_cpis), {});
  s.ft = ft_;
  s.shed.assign(static_cast<size_t>(num_cpis), 0);
  s.integ = integ_;
  s.plan = plan_;

  // Gray-failure detector: shared by every rank thread through Shared.
  // Constructed unconditionally (cheap), wired only when enabled so the
  // disabled path costs nothing per CPI.
  HealthMonitor monitor(hc_, assign_.total() + ft_.spare_count());
  if (hc_.enabled) s.health = &monitor;

  // The controller lives on the driver's stack for the run; every rank
  // shares it through Shared, and the source gates admission on it.
  std::optional<OverloadController> ctrl;
  if (ov_.enabled) {
    ctrl.emplace(ov_, num_cpis);
    s.ctrl = &*ctrl;
    source.set_overload_controller(&*ctrl);
  }

  if (obs::tracing_enabled()) {
    for (int t = 0; t < stap::kNumTasks; ++t)
      obs::set_track_name(t, stap::task_name(static_cast<stap::Task>(t)));
    if (ft_.any() || plan_ != nullptr || ov_.enabled)
      obs::set_track_name(obs::kFaultTrack, "fault");
    if (integ_.enabled)
      obs::set_track_name(obs::kIntegrityTrack, "integrity");
  }

  // Extra ranks beyond the assignment form the spare pool; they stay idle
  // unless a recoverable rank dies. While the pool holds at least one
  // member every topology rank is recoverable — the pool is universal, any
  // role can be assumed (weight state from its per-CPI checkpoint, the
  // stateless roles from the dead rank's frozen progress point).
  comm::World world(assign_.total() + ft_.spare_count());
  world.set_fault_plan(plan_);
  s.spares_left.store(ft_.spare_count(), std::memory_order_relaxed);
  if (ft_.spare_count() > 0)
    for (int g = 0; g < assign_.total(); ++g) world.set_recoverable(g);

  // The migration engine is always installed: with elastic disabled and no
  // forced migrations it never leaves epoch 0 and every topo(cpi) lookup is
  // the initial layout. The spare rank (one past assign_.total()) is not
  // part of any topology and never participates in a barrier.
  ElasticEngine eng(&world, params, Topology::initial(params, assign_), el_,
                    num_cpis);
  s.eng = &eng;
  if (s.ctrl != nullptr && el_.any())
    s.ctrl->set_elastic_assist(
        [&eng] { return eng.request_overload_assist(); });
  // Pool-exhausted fallback: a permanently dead rank's group shrinks to
  // the survivors through the quiesce/re-plan/commit protocol. The commit
  // callback reports the healing event (MTTR = death to epoch commit) and
  // tells the overload controller capacity dropped.
  if (ft_.heal_shrink)
    eng.set_shrink(true, [&world, &s](int rank, int task, index_t begin_cpi,
                                      double commit_time) {
      const double t_death = world.death_time(rank);
      {
        std::lock_guard<std::mutex> lock(s.mu);
        HealingEvent ev;
        ev.rank = rank;
        ev.task = task;
        ev.mechanism = s.health != nullptr && s.health->was_quarantined(rank)
                           ? "quarantine"
                           : "shrink";
        ev.resume_cpi = begin_cpi;
        ev.mttr_seconds = t_death > 0.0 ? commit_time - t_death : 0.0;
        s.healing.push_back(ev);
      }
      if (s.ctrl != nullptr) s.ctrl->note_capacity_loss();
      if (obs::tracing_enabled())
        obs::emit({"heal_shrink", "fault", rank, obs::kFaultTrack,
                   static_cast<std::int64_t>(begin_cpi),
                   t_death > 0.0 ? t_death : commit_time, commit_time, -1,
                   -1});
      obs::flight_dump("shrink");
    });

  world.run([&](Comm& c) {
    if (c.rank() >= s.a.total()) return run_spare(world, c, s);
    run_roles(c, s, 0);
  });

  // --- self-healing post-pass -----------------------------------------------
  // A sink-side death can leave a CPI permanently incomplete: its cfar_done
  // counter never reaches the group size, so completion stays zero even
  // though the stream moved on. Account every such CPI as shed (no CPI is
  // ever silently lost — it is either completed or ledgered) and suppress
  // its partial detections, exactly like any other shed.
  bool any_rank_dead = false;
  for (int g = 0; g < assign_.total(); ++g)
    any_rank_dead |= world.rank_dead(g);
  if (any_rank_dead) {
    for (index_t cpi = 0; cpi < num_cpis; ++cpi) {
      const auto i = static_cast<size_t>(cpi);
      if (s.completion[i] == 0.0) {
        s.shed[i] = 1;
        s.detections[i].clear();
      }
    }
  }

  // --- assemble the result --------------------------------------------------
  PipelineResult result;
  result.detections = std::move(s.detections);
  for (auto& dets : result.detections)
    std::sort(dets.begin(), dets.end(), [](const auto& a, const auto& b) {
      return std::tie(a.doppler_bin, a.beam, a.range) <
             std::tie(b.doppler_bin, b.beam, b.range);
    });

  for (int t = 0; t < stap::kNumTasks; ++t) {
    const auto ranks = static_cast<double>(s.timing_ranks[static_cast<size_t>(t)]);
    // A task can legitimately end the run with zero contributions when its
    // every rank died uncovered (killed before committing its phase
    // accumulator, with the spare already spent): leave its timing zero.
    if (ranks <= 0) {
      const Topology& tf = s.topo(s.n_cpis - 1);
      bool any_dead = false;
      for (int r = 0; r < tf.count(static_cast<Task>(t)); ++r)
        any_dead |= world.rank_dead(tf.rank_at(static_cast<Task>(t), r));
      PPSTAP_CHECK(any_dead, "no timing contributions for a live task");
      continue;
    }
    result.timing[static_cast<size_t>(t)] = TaskTiming{
        s.timing_sum[static_cast<size_t>(t)].recv / ranks,
        s.timing_sum[static_cast<size_t>(t)].comp / ranks,
        s.timing_sum[static_cast<size_t>(t)].send / ranks};
    result.bytes_sent_per_cpi[static_cast<size_t>(t)] =
        static_cast<double>(s.bytes_sent[static_cast<size_t>(t)]) /
        static_cast<double>(s.measured_count());
  }

  double gap_sum = 0.0;
  int gap_count = 0;
  double latency_sum = 0.0;
  int latency_count = 0;
  // Latency histogram: exponential buckets from 10 µs to ~1000 s cover
  // every regime from the small-test pipelines to the full paper runs.
  obs::Histogram latency_hist(
      obs::Histogram::exponential_bounds(1e-5, 1e3, 1.35));
  for (index_t cpi = 0; cpi < num_cpis; ++cpi) {
    if (!s.measured(cpi)) continue;
    const auto i = static_cast<size_t>(cpi);
    if (cpi > 0 && s.completion[i - 1] > 0.0) {
      gap_sum += s.completion[i] - s.completion[i - 1];
      ++gap_count;
    }
    // A shed CPI still completed (its gap counts toward throughput — the
    // stream kept moving) but produced no detections, so its latency is
    // not a report latency and is excluded from the averages.
    if (s.shed[i]) continue;
    const double lat = s.completion[i] - s.input_ready[i];
    result.per_cpi_index.push_back(cpi);
    result.per_cpi_latency.push_back(lat);
    latency_hist.observe(lat);
    latency_sum += lat;
    ++latency_count;
  }
  if (gap_count > 0 && gap_sum > 0.0)
    result.throughput = static_cast<double>(gap_count) / gap_sum;
  if (latency_count > 0)
    result.latency = latency_sum / static_cast<double>(latency_count);
  result.latency_percentiles = {latency_hist.quantile(0.50),
                                latency_hist.quantile(0.95),
                                latency_hist.quantile(0.99)};
  result.latency_histogram = latency_hist.snapshot();

  // Queue-wait gauge per task: mean blocked-in-recv seconds per CPI over
  // the task's ranks and the whole stream. Ranks are attributed to their
  // final-epoch role (a migrated rank's pre-migration wait rides along —
  // acceptable smear for a gauge that feeds relative comparisons).
  const auto& stats = world.last_stats();
  const Topology& tf = eng.final_topology();
  for (int t = 0; t < stap::kNumTasks; ++t) {
    const stap::Task task = static_cast<stap::Task>(t);
    double wait = 0.0;
    for (int r = 0; r < tf.count(task); ++r)
      wait +=
          stats[static_cast<size_t>(tf.rank_at(task, r))].recv_wait_seconds;
    result.queue_wait_per_cpi[static_cast<size_t>(t)] =
        wait / (static_cast<double>(tf.count(task)) *
                static_cast<double>(num_cpis));
  }

  for (int e = 0; e < kNumPipelineEdges; ++e)
    result.bytes_per_edge_per_cpi[static_cast<size_t>(e)] =
        static_cast<double>(
            s.edge_bytes[static_cast<size_t>(e)].load(
                std::memory_order_relaxed)) /
        static_cast<double>(s.measured_count());

  // Publish to the process-wide metrics registry for exporters.
  auto& reg = obs::Registry::global();
  auto& hist = reg.histogram("pipeline.cpi_latency_seconds",
                             obs::Histogram::exponential_bounds(1e-5, 1e3,
                                                                1.35));
  for (const double lat : result.per_cpi_latency) hist.observe(lat);
  reg.gauge("pipeline.throughput_cpi_per_s").set(result.throughput);
  for (int t = 0; t < stap::kNumTasks; ++t) {
    const std::string name = stap::task_name(static_cast<stap::Task>(t));
    reg.gauge("pipeline.queue_wait_s." + name)
        .set(result.queue_wait_per_cpi[static_cast<size_t>(t)]);
  }
  for (int e = 0; e < kNumPipelineEdges; ++e)
    reg.counter(std::string("pipeline.edge_bytes.") +
                sim_edge_name(static_cast<SimEdge>(e)))
        .add(s.edge_bytes[static_cast<size_t>(e)].load(
            std::memory_order_relaxed));

  // --- fault ledger ---------------------------------------------------------
  for (index_t cpi = 0; cpi < num_cpis; ++cpi)
    if (s.shed[static_cast<size_t>(cpi)])
      result.faults.shed_cpis.push_back(cpi);
  static_assert(
      std::tuple_size_v<decltype(result.faults.retry_histogram)> ==
          comm::kRetryEdgeBuckets,
      "fault ledger histogram buckets must mirror the comm layer");
  static_assert(
      std::tuple_size_v<
          decltype(result.faults.retry_histogram)::value_type> ==
          comm::kMaxRetransmitAttempts + 1,
      "fault ledger histogram attempts must mirror the comm layer");
  for (const auto& st : stats) {
    result.faults.retransmissions += st.retransmissions;
    result.faults.dup_discarded += st.dup_discarded;
    for (size_t b = 0; b < st.retry_histogram.size(); ++b)
      for (size_t a = 0; a < st.retry_histogram[b].size(); ++a)
        result.faults.retry_histogram[b][a] += st.retry_histogram[b][a];
  }
  if (plan_ != nullptr) {
    const comm::FaultStats fs = plan_->stats();
    result.faults.frames_delayed = fs.delayed;
    result.faults.frames_dropped = fs.dropped;
    result.faults.frames_corrupted = fs.corrupted;
    result.faults.kills = fs.kills;
    result.faults.stage_slowdowns = fs.slowed;
    result.faults.frames_jittered = fs.jittered;
    result.faults.frames_duplicated = fs.duplicated;
  }
  result.faults.failovers = std::move(s.failovers);
  // Any topology rank dead at exit with neither a covering takeover nor a
  // committed shrink died uncovered: its CPIs were shed (prompt dead-peer
  // statuses, not hangs) and the gap is ledgered here — both in the fault
  // ledger and as an "uncovered" healing event.
  {
    const std::vector<int> shrunk = eng.shrunk_ranks();
    for (int g = 0; g < assign_.total(); ++g) {
      if (!world.rank_dead(g)) continue;
      bool covered = false;
      for (const auto& f : result.faults.failovers)
        if (f.rank == g) covered = true;
      for (const int r : shrunk)
        if (r == g) covered = true;
      if (covered) continue;
      result.faults.uncovered_ranks.push_back(g);
      HealingEvent ev;
      ev.rank = g;
      ev.task = s.task_of_rank(g, s.n_cpis - 1);
      ev.mechanism = "uncovered";
      s.healing.push_back(ev);
    }
  }
  if (!result.faults.clean()) {
    reg.counter("pipeline.cpis_shed")
        .add(static_cast<std::uint64_t>(result.faults.shed_cpis.size()));
    reg.counter("pipeline.failovers")
        .add(static_cast<std::uint64_t>(result.faults.failovers.size()));
    reg.counter("comm.retransmissions").add(result.faults.retransmissions);
    if (result.faults.stage_slowdowns > 0)
      reg.counter("fault.stage_slowdowns").add(result.faults.stage_slowdowns);
    if (result.faults.frames_jittered > 0)
      reg.counter("fault.frames_jittered").add(result.faults.frames_jittered);
    if (result.faults.frames_duplicated > 0)
      reg.counter("fault.frames_duplicated")
          .add(result.faults.frames_duplicated);
    if (result.faults.dup_discarded > 0)
      reg.counter("comm.dup_discarded").add(result.faults.dup_discarded);
    if (!result.faults.uncovered_ranks.empty())
      reg.counter("pipeline.uncovered_failures")
          .add(static_cast<std::uint64_t>(
              result.faults.uncovered_ranks.size()));
  }
  if (ft_.spare_count() > 0)
    reg.counter("spare.poll_wakeups")
        .add(s.spare_wakeups.load(std::memory_order_relaxed));

  // --- healing ledger -------------------------------------------------------
  std::sort(s.healing.begin(), s.healing.end(),
            [](const HealingEvent& a, const HealingEvent& b) {
              return std::tie(a.resume_cpi, a.rank) <
                     std::tie(b.resume_cpi, b.rank);
            });
  result.healing.events = std::move(s.healing);
  if (!result.healing.clean()) {
    reg.counter("healing.spare_takeovers")
        .add(result.healing.spare_takeovers());
    reg.counter("healing.shrinks").add(result.healing.shrinks());
    reg.counter("healing.quarantines").add(result.healing.quarantines());
    reg.counter("healing.uncovered").add(result.healing.uncovered());
  }

  // --- health ledger --------------------------------------------------------
  if (s.health != nullptr) {
    result.health = s.health->ledger();
    if (!result.health.clean()) {
      reg.counter("health.suspects").add(result.health.suspects);
      reg.counter("health.flap_suppressed")
          .add(result.health.flap_suppressed);
      reg.counter("health.vetoed").add(result.health.vetoed);
      // health.quarantines is bumped at eviction time by the monitor.
    }
  }

  // --- overload + numerical-health ledgers ----------------------------------
  if (s.ctrl != nullptr) {
    result.overload = s.ctrl->ledger();
    if (!result.overload.clean()) {
      reg.counter("overload.rejections")
          .add(static_cast<std::uint64_t>(
              result.overload.rejected_cpis.size()));
      reg.counter("overload.level_changes")
          .add(result.overload.level_changes);
      reg.counter("overload.throttle_waits")
          .add(result.overload.throttle_waits);
      reg.counter("overload.capacity_losses")
          .add(result.overload.capacity_losses);
      reg.gauge("overload.max_level")
          .set(static_cast<double>(result.overload.max_level));
    }
  } else {
    result.overload.levels.assign(static_cast<size_t>(num_cpis), 0);
  }
  result.numerics = s.numerics;
  if (!result.numerics.clean()) {
    reg.counter("stap.nonfinite_training_blocks")
        .add(result.numerics.nonfinite_training_blocks);
    reg.counter("stap.loading_retries").add(result.numerics.loading_retries);
    reg.counter("stap.quiescent_fallbacks")
        .add(result.numerics.quiescent_fallbacks);
    reg.counter("stap.qr_residual_retries")
        .add(result.numerics.qr_residual_retries);
    reg.counter("stap.qr_residual_rejects")
        .add(result.numerics.qr_residual_rejects);
  }

  // --- integrity ledger -----------------------------------------------------
  result.integrity.checks_passed =
      s.integ_checks_passed.load(std::memory_order_relaxed);
  result.integrity.checks_failed =
      s.integ_checks_failed.load(std::memory_order_relaxed);
  result.integrity.recomputes =
      s.integ_recomputes.load(std::memory_order_relaxed);
  result.integrity.repairs = s.integ_repairs.load(std::memory_order_relaxed);
  result.integrity.escalations =
      s.integ_escalations.load(std::memory_order_relaxed);
  result.integrity.digest_mismatches =
      s.integ_digest_mismatches.load(std::memory_order_relaxed);
  for (int t = 0; t < stap::kNumTasks; ++t)
    result.integrity.digest_mismatch_by_task[static_cast<size_t>(t)] =
        s.integ_digest_by_task[static_cast<size_t>(t)].load(
            std::memory_order_relaxed);
  std::sort(s.integ_events.begin(), s.integ_events.end(),
            [](const IntegrityEvent& a, const IntegrityEvent& b) {
              return std::tie(a.cpi, a.task) < std::tie(b.cpi, b.task);
            });
  result.integrity.events = std::move(s.integ_events);

  // --- migration ledger -----------------------------------------------------
  result.migrations = eng.ledger();
  if (!result.migrations.attempts.empty()) {
    // Measured quiesce stall per attempt: the excess of the barrier CPI's
    // sink inter-completion gap over the run's median gap (the live
    // analogue of the simulator's migration_stall).
    std::vector<double> gaps;
    for (index_t cpi = 1; cpi < num_cpis; ++cpi) {
      const auto i = static_cast<size_t>(cpi);
      if (s.completion[i] > 0.0 && s.completion[i - 1] > 0.0)
        gaps.push_back(s.completion[i] - s.completion[i - 1]);
    }
    double median_gap = 0.0;
    if (!gaps.empty()) {
      auto mid = gaps.begin() + static_cast<std::ptrdiff_t>(gaps.size() / 2);
      std::nth_element(gaps.begin(), mid, gaps.end());
      median_gap = *mid;
    }
    for (auto& e : result.migrations.attempts) {
      const auto b = static_cast<size_t>(e.barrier_cpi);
      if (e.barrier_cpi >= 1 && b < s.completion.size() &&
          s.completion[b] > 0.0 && s.completion[b - 1] > 0.0)
        e.stall_seconds = std::max(
            0.0, (s.completion[b] - s.completion[b - 1]) - median_gap);
    }
  }
  result.completion_times = s.completion;
  if (result.integrity.checks_passed > 0) {
    reg.counter("integrity.checks_passed")
        .add(result.integrity.checks_passed);
  }
  if (!result.integrity.clean()) {
    reg.counter("integrity.checks_failed")
        .add(result.integrity.checks_failed);
    reg.counter("integrity.recomputes").add(result.integrity.recomputes);
    reg.counter("integrity.repairs").add(result.integrity.repairs);
    reg.counter("integrity.escalations").add(result.integrity.escalations);
    reg.counter("integrity.digest_mismatches")
        .add(result.integrity.digest_mismatches);
  }
  return result;
}

}  // namespace ppstap::core
