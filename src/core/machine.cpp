#include "core/machine.hpp"

namespace ppstap::core {

ParagonParams ParagonParams::calibrated() {
  // Paper Table 7, case 1 (236 nodes): per-task node counts and measured
  // computation times. rate = our_flops / (nodes * seconds). The same rates
  // reproduce cases 2 and 3 because the paper's speedups are linear.
  struct Obs {
    int nodes;
    double seconds;
  };
  constexpr std::array<Obs, stap::kNumTasks> kCase1 = {{
      {32, 0.0874},   // Doppler filter processing
      {16, 0.0913},   // easy weight
      {112, 0.0831},  // hard weight
      {16, 0.0708},   // easy beamforming
      {28, 0.0414},   // hard beamforming
      {16, 0.0776},   // pulse compression
      {16, 0.0434},   // CFAR
  }};

  // The calibration observations are for the paper's parameter set, so the
  // flop counts are evaluated there. The compute model charges each node
  // ceil(items / P) work items (granularity-induced load imbalance), so the
  // calibration inverts the same formula.
  const stap::StapParams paper_params{};
  const std::array<index_t, stap::kNumTasks> items = {
      paper_params.num_range,
      paper_params.num_easy(),
      paper_params.num_hard * paper_params.num_segments,
      paper_params.num_easy(),
      paper_params.num_hard,
      paper_params.num_pulses,
      paper_params.num_pulses};
  ParagonParams m;
  for (int t = 0; t < stap::kNumTasks; ++t) {
    const auto flops = static_cast<double>(
        stap::analytic_flops(static_cast<stap::Task>(t), paper_params));
    const auto& obs = kCase1[static_cast<size_t>(t)];
    const index_t w = items[static_cast<size_t>(t)];
    const index_t per_node = (w + obs.nodes - 1) / obs.nodes;
    m.task_flops_per_s[static_cast<size_t>(t)] =
        flops * static_cast<double>(per_node) /
        (static_cast<double>(w) * obs.seconds);
  }
  return m;
}

}  // namespace ppstap::core
