// Adaptive overload control for the pipelined STAP runtime.
//
// A radar flight processor is offered CPIs at the front-end's rate, not at
// the rate the pipeline happens to sustain. When offered load exceeds
// capacity, an uncontrolled pipeline grows unbounded queues and its latency
// diverges; PR 2's deadline shedding alone simply drops whole CPIs. This
// subsystem adds (paper §6's real-time framing):
//
//  * Bounded admission at the CpiSource: the controller tracks the number
//    of admitted-but-uncompleted CPIs and, at `queue_high`, either rejects
//    the CPI outright (markers flow down the pipeline, the sink records a
//    shed) or throttles the source until the backlog drains.
//
//  * A graceful-degradation ladder: sampling backlog depth and the p95
//    end-to-end latency each CPI, the controller walks
//
//      kFull -> kReducedBeams -> kFrozenHard -> kStaleWeights -> kShedInput
//
//    toward a proportional target (the backlog band between queue_low and
//    queue_high maps onto the producing rungs), one rung per admission —
//    up immediately, back down only after `dwell` consecutive admissions
//    that wanted a lower rung (hysteresis, so the level does not chatter).
//    Each rung sheds a progressively larger fraction of work while keeping
//    *some* output flowing — strictly better than shedding whole CPIs,
//    which is kept as the last resort (reached only through the queue_high
//    bound or a sustained SLO violation).
//
// The per-CPI decision is memoized at admission time and readable lock-free
// downstream: the decision is written before the CPI's first frame is sent,
// so the mailbox transfer orders the write before any reader.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/types.hpp"

namespace ppstap::core {

/// One rung per progressively cheaper operating mode. Values are ordered:
/// a higher level sheds strictly more work.
enum class DegradationLevel : std::int8_t {
  kFull = 0,          ///< full fidelity, all M beams, fresh weights
  kReducedBeams = 1,  ///< beamform only ceil(M/2) beams
  kFrozenHard = 2,    ///< also ceil(M/4) beams + freeze the hard recursion
                      ///< (hard bins reuse the last R; training is skipped)
  kStaleWeights = 3,  ///< both weight tasks skip the solve and resend the
                      ///< last computed weights (training markers upstream)
  kShedInput = 4,     ///< admission rejects the CPI entirely (PR 2 shed
                      ///< markers; the sink records a shed CPI)
};

inline constexpr int kNumDegradationLevels = 5;

const char* degradation_level_name(DegradationLevel level);

/// Receive beams actually formed at `level` (the reduced-beam rungs): M,
/// ceil(M/2), then ceil(M/4), never below one beam.
inline index_t active_beams_for(DegradationLevel level, index_t num_beams) {
  switch (level) {
    case DegradationLevel::kFull:
      return num_beams;
    case DegradationLevel::kReducedBeams:
      return std::max<index_t>(1, (num_beams + 1) / 2);
    default:
      return std::max<index_t>(1, (num_beams + 3) / 4);
  }
}

struct OverloadConfig {
  /// Master switch; when false the pipeline is byte-identical to PR 2.
  bool enabled = false;
  /// When false, the degradation ladder stays pinned at kFull and only the
  /// bounded-queue admission applies — the "shed-only" baseline the
  /// ext_overload bench compares against.
  bool ladder = true;

  /// Backlog (admitted - completed CPIs) above which the controller starts
  /// escalating the ladder.
  index_t queue_low = 8;
  /// Hard backlog bound: at this depth admission rejects (or throttles).
  index_t queue_high = 16;
  /// p95 end-to-end latency SLO in seconds; 0 = depth-only control.
  double slo_latency_seconds = 0.0;
  /// Consecutive healthy admissions required before stepping back down one
  /// rung (hysteresis damping).
  int dwell = 4;
  /// Offered-load pacing: CPI i is admitted no earlier than
  /// first-admission + i * period. 0 = free-running (no pacing).
  double arrival_period_seconds = 0.0;
  /// At queue_high: true rejects the CPI (real-time front ends cannot
  /// block), false throttles the source until the backlog drains.
  bool reject_when_full = true;
  /// Override for StapParams::condition_threshold; 0 keeps the params
  /// default.
  double condition_threshold = 0.0;

  /// Read the PPSTAP_OVERLOAD* environment knobs (see README):
  ///   PPSTAP_OVERLOAD         flag; enables the subsystem
  ///   PPSTAP_OVERLOAD_LADDER  flag; default on (off = shed-only baseline)
  ///   PPSTAP_OVERLOAD_QLO     escalation backlog threshold
  ///   PPSTAP_OVERLOAD_QHI     hard backlog bound
  ///   PPSTAP_OVERLOAD_SLO     p95 latency SLO, seconds (0 = depth only)
  ///   PPSTAP_OVERLOAD_DWELL   healthy admissions before de-escalation
  ///   PPSTAP_OVERLOAD_PERIOD  arrival period, seconds (0 = free-run)
  ///   PPSTAP_OVERLOAD_ADMIT   "reject" | "throttle"
  ///   PPSTAP_OVERLOAD_COND    condition-threshold override (0 = keep)
  /// All parsed through the hardened common/env.hpp helpers: garbage
  /// throws, it never silently disables the protection.
  static OverloadConfig from_env();

  /// Throws ppstap::Error on an inconsistent configuration.
  void validate() const;
};

/// Post-run accounting of every overload-control decision.
struct OverloadLedger {
  /// CPIs rejected at admission (ascending).
  std::vector<index_t> rejected_cpis;
  /// Per-CPI degradation level as decided at admission (kFull for CPIs the
  /// run never reached).
  std::vector<int> levels;
  std::uint64_t level_changes = 0;   ///< ladder transitions (both ways)
  std::uint64_t throttle_waits = 0;  ///< admissions that blocked on backlog
  std::uint64_t capacity_losses = 0;  ///< note_capacity_loss notifications
  int max_level = 0;                 ///< highest rung reached

  bool clean() const {
    return rejected_cpis.empty() && level_changes == 0 &&
           throttle_waits == 0 && capacity_losses == 0 && max_level == 0;
  }
};

/// The admission/ladder controller. One instance is shared by every rank of
/// a pipeline run; admit() is called by the Doppler ranks (first caller per
/// CPI decides, the rest read the memo), on_complete() by the CFAR sink.
class OverloadController {
 public:
  OverloadController(const OverloadConfig& cfg, index_t num_cpis);

  struct Admission {
    bool admit = true;
    DegradationLevel level = DegradationLevel::kFull;
  };

  /// Decide (or look up) the fate of `cpi`. The first caller paces to the
  /// arrival schedule, samples backlog/latency health, walks the ladder,
  /// and applies the queue_high bound; the decision is memoized so every
  /// later caller gets the identical answer.
  Admission admit(index_t cpi);

  /// Sink-side completion feed: `latency_seconds` is admission-to-CFAR
  /// latency, `shed` marks CPIs that degraded to a shed downstream (their
  /// latency is not a health sample). Unblocks throttled admissions.
  void on_complete(index_t cpi, double latency_seconds, bool shed);

  /// The memoized level for `cpi` (kFull when not yet decided). Safe to
  /// call without synchronization from any task that received one of the
  /// CPI's frames: the decision is written before the first send.
  DegradationLevel level_for(index_t cpi) const {
    if (cpi < 0 || cpi >= static_cast<index_t>(memo_.size()))
      return DegradationLevel::kFull;
    const std::int8_t v = memo_[static_cast<size_t>(cpi)];
    return v < 0 ? DegradationLevel::kFull : static_cast<DegradationLevel>(v);
  }

  const OverloadConfig& config() const { return cfg_; }

  /// Elastic-assist rung: install a hook consulted once, right before the
  /// ladder would first escalate past the reduced-beams rung. A hook that
  /// returns true (a rank migration toward the gating group is under way)
  /// suppresses that one escalation — capacity is being added instead of
  /// fidelity removed. If the backlog persists the ladder resumes climbing
  /// on the next admission. The hook must be nonblocking and must not call
  /// back into this controller (it runs under the admission lock).
  void set_elastic_assist(std::function<bool()> assist);

  /// Healing notification (PR 8): a rank was permanently lost and its
  /// group shrunk to the survivors, so pipeline capacity dropped.
  /// Escalates the ladder one producing rung immediately (the backlog has
  /// not had time to reflect the loss) and counts the loss in the ledger.
  /// Nonblocking; safe from any thread.
  void note_capacity_loss();

  /// Snapshot of the run's accounting (call after the stream drains).
  OverloadLedger ledger() const;

 private:
  bool slo_violated_locked() const;
  void step_ladder_locked();
  index_t backlog_locked() const { return admitted_ - completed_; }

  OverloadConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;

  // Per-CPI decisions; preallocated so admit() never reallocates while
  // level_for() reads concurrently. -1 = undecided.
  std::vector<std::int8_t> memo_;
  std::vector<std::uint8_t> was_admitted_;
  // CPIs the sink completed *before* their admission decision (a dead rank
  // lets the sink shed-drain far ahead of the source). Credited to
  // completed_ at admission so the throttle backlog can never deadlock on
  // a completion that already happened.
  std::vector<std::uint8_t> done_early_;

  std::function<bool()> elastic_assist_;  // PR 7 migration hook
  bool assist_consumed_ = false;

  double start_time_ = -1.0;  // arrival-schedule origin (first admission)
  index_t admitted_ = 0;
  index_t completed_ = 0;
  int level_ = 0;
  int healthy_streak_ = 0;
  int max_level_ = 0;
  std::uint64_t level_changes_ = 0;
  std::uint64_t throttle_waits_ = 0;
  std::uint64_t capacity_losses_ = 0;
  std::vector<index_t> rejected_;

  // Sliding window of recent end-to-end latencies for the p95 health test.
  static constexpr size_t kLatencyWindow = 32;
  std::vector<double> latencies_;
  size_t latency_next_ = 0;
};

}  // namespace ppstap::core
