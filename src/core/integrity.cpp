#include "core/integrity.hpp"

#include <cstring>

#include "common/check.hpp"
#include "common/env.hpp"

namespace ppstap::core {

IntegrityConfig IntegrityConfig::from_env() {
  IntegrityConfig c;
  if (const auto on = parse_env_flag("PPSTAP_ABFT")) c.enabled = *on;
  if (const auto tol = parse_env_double("PPSTAP_ABFT_TOL", 1e-12, 1.0))
    c.tolerance = *tol;
  return c;
}

void flip_float_bit(std::span<float> data, int bit, std::uint64_t salt) {
  if (data.empty()) return;
  PPSTAP_REQUIRE(bit >= 0 && bit < 32, "flip_float_bit: bit out of range");
  const std::size_t idx =
      static_cast<std::size_t>(salt * 0x9e3779b97f4a7c15ull % data.size());
  std::uint32_t word;
  std::memcpy(&word, &data[idx], sizeof word);
  word ^= (1u << bit);
  std::memcpy(&data[idx], &word, sizeof word);
}

}  // namespace ppstap::core
