// The paper's primary contribution: the parallel pipelined STAP system.
//
// Seven tasks (Fig. 4) each run on their own group of ranks; CPI data cubes
// stream through in a staggered fashion. Within a task the work is
// partitioned along one cube dimension (K for Doppler filtering, Doppler
// bins for everything else; hard weights over (bin, segment) units);
// between tasks, all-to-all personalized communication redistributes and
// reorganizes the data (Figs. 6-9). The temporal dependencies TD_{1,3} and
// TD_{2,4} are realized by having the weight tasks emit the weights for CPI
// i+1 after training on CPI i, so beamforming of CPI i never waits on its
// own CPI's weights — which is why the weight tasks drop out of the latency
// equation (2).
//
// Every rank runs the Figure-10 loop: receive (+unpack), compute, pack
// (+send), with the three phases timed separately; results average the
// middle CPIs exactly as the paper's measurements do.
#pragma once

#include <array>
#include <vector>

#include "core/assignment.hpp"
#include "core/elastic.hpp"
#include "core/fault_tolerance.hpp"
#include "core/healing.hpp"
#include "core/health.hpp"
#include "core/integrity.hpp"
#include "core/overload.hpp"
#include "linalg/matrix.hpp"
#include "obs/metrics.hpp"
#include "stap/cfar.hpp"
#include "stap/params.hpp"
#include "stap/weights.hpp"
#include "synth/scenario.hpp"

namespace ppstap::comm {
class FaultPlan;
}  // namespace ppstap::comm

namespace ppstap::core {

/// Number of inter-task edges of Fig. 4 (indexed like SimEdge in sim.hpp).
inline constexpr int kNumPipelineEdges = 9;

/// Figure-10 phase times for one task (seconds per CPI, averaged over the
/// measured CPIs and over the task's ranks).
struct TaskTiming {
  double recv = 0.0;
  double comp = 0.0;
  double send = 0.0;
  double total() const { return recv + comp + send; }
};

struct PipelineResult {
  /// Detections per CPI, sorted by (bin, beam, range) — identical to the
  /// sequential reference on the same stream.
  std::vector<std::vector<stap::Detection>> detections;

  /// Per-task Figure-10 timing (middle CPIs).
  std::array<TaskTiming, stap::kNumTasks> timing{};

  /// Measured at the sink: 1 / mean inter-completion gap (CPIs per second).
  double throughput = 0.0;
  /// Mean input-arrival to detection-report time over the measured CPIs.
  double latency = 0.0;
  std::vector<double> per_cpi_latency;
  /// CPI index of each per_cpi_latency entry (measured, non-shed CPIs in
  /// order) — lets trace consumers join stitched per-CPI chains against
  /// the measured latencies.
  std::vector<index_t> per_cpi_index;

  /// Per-CPI latency percentiles extracted from `latency_histogram` —
  /// within one bucket of the exact order statistics of per_cpi_latency.
  struct LatencyPercentiles {
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  LatencyPercentiles latency_percentiles;
  /// The fixed-bucket histogram behind the percentiles (bounds + counts),
  /// for export and cross-PR trend tracking.
  obs::Histogram::Snapshot latency_histogram;

  /// Mean seconds per CPI (averaged over the whole stream and the task's
  /// ranks) spent blocked in recv waiting for upstream data — the
  /// queue-wait gauge: idle time, as opposed to the unpack work also
  /// charged to Fig. 10's receive phase.
  std::array<double, stap::kNumTasks> queue_wait_per_cpi{};

  /// Total bytes moved between tasks per measured CPI (send side), indexed
  /// by sending task — feeds the machine-model volume validation.
  std::array<double, stap::kNumTasks> bytes_sent_per_cpi{};

  /// Per-link byte counters: bytes per measured CPI crossing each Fig. 4
  /// edge, indexed like core::SimEdge (sim.hpp).
  std::array<double, kNumPipelineEdges> bytes_per_edge_per_cpi{};

  /// Shed CPIs, retransmissions, injected faults, failovers. Empty
  /// (faults.clean()) on a fault-free run. Shed CPIs have no detections
  /// and are excluded from the latency averages, but their completion
  /// still counts toward throughput — the stream kept moving.
  FaultLedger faults;

  /// Overload-control accounting: per-CPI degradation levels, rejected
  /// CPIs, ladder transitions. All-kFull/empty when the controller is off.
  OverloadLedger overload;

  /// Numerical-health guard firings aggregated over every weight computer
  /// of the run (screened training blocks, diagonal-loading retries,
  /// quiescent fallbacks). numerics.clean() on a healthy run.
  stap::WeightHealth numerics;

  /// ABFT accounting: invariant checks passed/failed, bounded recomputes,
  /// repairs, escalations into the shed machinery, and end-to-end digest
  /// mismatches attributed to the producing task. integrity.clean() on a
  /// corruption-free run (and trivially when PPSTAP_ABFT is off).
  IntegrityLedger integrity;

  /// Live rank-migration accounting: every elastic attempt (committed or
  /// rolled back) with its barrier CPI and measured quiesce stall.
  /// migrations.clean() when no migration was ever proposed.
  MigrationLedger migrations;

  /// Self-healing accounting (PR 8): one event per rank death — spare
  /// takeover, shrink-to-survivors, quarantine, or uncovered — with
  /// per-recovery MTTR. healing.clean() when no rank ever died.
  HealingLedger healing;

  /// Gray-failure detector accounting (PR 10): per-rank service/queue
  /// EWMAs, peer z-scores, and every detector transition (suspect, clear,
  /// quarantine, flap-suppression, do-no-harm veto). health.clean() when
  /// nothing was ever suspected (and trivially when PPSTAP_HEALTH is off).
  HealthLedger health;

  /// Absolute sink completion timestamp per CPI (WallTimer base; 0.0 for
  /// CPIs that never completed) — lets benches window steady-state
  /// throughput around a migration barrier.
  std::vector<double> completion_times;
};

/// Runs the parallel pipelined STAP application on an in-process rank world.
class ParallelStapPipeline {
 public:
  /// `steering` is J x M (shared by every transmit position).
  /// `replica` may be empty.
  ParallelStapPipeline(const stap::StapParams& p,
                       const NodeAssignment& assignment,
                       linalg::MatrixCF steering,
                       std::vector<cfloat> replica);

  /// Per-transmit-position steering (size must equal num_beam_positions).
  ParallelStapPipeline(const stap::StapParams& p,
                       const NodeAssignment& assignment,
                       std::vector<linalg::MatrixCF> steering_per_position,
                       std::vector<cfloat> replica);

  /// Stream `num_cpis` CPIs from the scenario through the pipeline.
  /// Timing averages skip the first `warmup` and last `cooldown` CPIs
  /// (paper: first 3 and last 2 of 25).
  PipelineResult run(const synth::ScenarioGenerator& scenario,
                     index_t num_cpis, index_t warmup = 3,
                     index_t cooldown = 2);

  /// Enable/disable the fault-tolerance policies (default: read from the
  /// PPSTAP_FAULT_* environment, i.e. disabled unless knobs are set).
  void set_fault_tolerance(const FaultToleranceConfig& cfg) { ft_ = cfg; }
  const FaultToleranceConfig& fault_tolerance() const { return ft_; }

  /// Install a fault-injection plan on the run's comm world (borrowed;
  /// must outlive run(); nullptr to clear).
  void set_fault_plan(comm::FaultPlan* plan) { plan_ = plan; }

  /// Enable/disable adaptive overload control (default: read from the
  /// PPSTAP_OVERLOAD* environment, i.e. disabled unless knobs are set).
  void set_overload(const OverloadConfig& cfg) { ov_ = cfg; }
  const OverloadConfig& overload() const { return ov_; }

  /// Enable/disable the ABFT integrity layer (default: read from the
  /// PPSTAP_ABFT* environment, i.e. disabled unless knobs are set).
  void set_integrity(const IntegrityConfig& cfg) { integ_ = cfg; }
  const IntegrityConfig& integrity() const { return integ_; }

  /// Configure live elastic rank migration (default: read from the
  /// PPSTAP_ELASTIC* environment, i.e. disabled unless knobs are set).
  /// Forced migrations fire even with the policy loop disabled.
  void set_elastic(const ElasticConfig& cfg) { el_ = cfg; }
  const ElasticConfig& elastic() const { return el_; }

  /// Configure gray-failure detection/quarantine (default: read from the
  /// PPSTAP_HEALTH* environment, i.e. disabled unless knobs are set).
  void set_health(const HealthConfig& cfg) { hc_ = cfg; }
  const HealthConfig& health() const { return hc_; }

 private:
  stap::StapParams p_;
  NodeAssignment assign_;
  std::vector<linalg::MatrixCF> steering_;  // per transmit position
  std::vector<cfloat> replica_;
  FaultToleranceConfig ft_ = FaultToleranceConfig::from_env();
  OverloadConfig ov_ = OverloadConfig::from_env();
  IntegrityConfig integ_ = IntegrityConfig::from_env();
  ElasticConfig el_ = ElasticConfig::from_env();
  HealthConfig hc_ = HealthConfig::from_env();
  comm::FaultPlan* plan_ = nullptr;
};

}  // namespace ppstap::core
