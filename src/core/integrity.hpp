// Algorithm-based fault tolerance (ABFT) configuration and accounting.
//
// PR 2/3 protect the pipeline against *transport* faults and *load*; this
// layer closes the remaining gap — silent data corruption inside a compute
// kernel. Each hot kernel carries a cheap mathematical invariant of the
// transform it implements (Parseval energy for the windowed Doppler FFTs,
// Huang–Abraham column checksums for the beamforming matmuls, column-norm
// residuals for the weight-path QR, a matched-filter energy bound for pulse
// compression, exact power-lookup equality for CFAR detections), and
// src/core/pipeline.cpp wires the detect → recompute-once → escalate policy
// around them. The per-CPI digest that rides the redistribution frames uses
// the shared checksum in common/checksum.hpp so the sink can attribute a
// mismatch to the producing task.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "stap/flops.hpp"

namespace ppstap::core {

/// Runtime knobs for the integrity layer. Off by default: the invariants
/// cost a few percent of kernel time and real deployments opt in.
struct IntegrityConfig {
  /// Master switch (PPSTAP_ABFT). Enables kernel invariants, the per-CPI
  /// digest on every redistribution edge, and the recovery policy.
  bool enabled = false;

  /// Relative tolerance for the floating-point invariants
  /// (PPSTAP_ABFT_TOL). Verification accumulates in double, so the slack
  /// only has to absorb float rounding in the kernel under test; 1e-4
  /// leaves ~two orders of magnitude of margin at Table-1 sizes while
  /// still catching every interesting exponent-bit flip.
  double tolerance = 1e-4;

  /// Reads PPSTAP_ABFT / PPSTAP_ABFT_TOL (hardened parse, see
  /// common/env.hpp).
  static IntegrityConfig from_env();
};

/// One detected invariant failure and how it ended.
struct IntegrityEvent {
  int task = -1;        ///< stap::Task of the failing stage
  index_t cpi = -1;     ///< CPI whose output failed verification
  bool repaired = false;  ///< true: recompute passed; false: escalated
};

/// Integrity accounting for one pipeline run, returned on PipelineResult.
struct IntegrityLedger {
  std::uint64_t checks_passed = 0;   ///< invariant verifications that passed
  std::uint64_t checks_failed = 0;   ///< detections (first + repeat failures)
  std::uint64_t recomputes = 0;      ///< bounded stage re-executions
  std::uint64_t repairs = 0;         ///< recomputes whose re-check passed
  std::uint64_t escalations = 0;     ///< persistent failures handed to the
                                     ///< shed / stale-weight machinery
  std::uint64_t digest_mismatches = 0;  ///< end-to-end digest failures
  /// Digest mismatches attributed to each producing task.
  std::array<std::uint64_t, static_cast<size_t>(stap::kNumTasks)>
      digest_mismatch_by_task{};
  std::vector<IntegrityEvent> events;  ///< ordered detection outcomes

  bool clean() const { return checks_failed == 0 && digest_mismatches == 0; }
};

/// Deterministically flip one bit of one element of a float buffer — the
/// compute-stage analogue of the transport corruptor in comm/world.cpp.
/// Bit 30 is the top exponent bit: flipping it multiplies the magnitude by
/// ~2^128 one way or the other, the classic "silent but catastrophic" SEU.
/// `salt` selects the victim element; no-op on an empty span.
void flip_float_bit(std::span<float> data, int bit, std::uint64_t salt);

}  // namespace ppstap::core
