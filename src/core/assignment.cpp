#include "core/assignment.hpp"

#include <sstream>

namespace ppstap::core {

void NodeAssignment::validate(const stap::StapParams& p) const {
  using stap::Task;
  for (int n : nodes)
    PPSTAP_REQUIRE(n >= 1, "every task needs at least one node");
  const auto limit = [&](Task t, index_t items, const char* what) {
    PPSTAP_REQUIRE(static_cast<index_t>((*this)[t]) <= items,
                   std::string("more nodes than ") + what + " for " +
                       stap::task_name(t));
  };
  limit(Task::kDopplerFilter, p.num_range, "range cells");
  limit(Task::kEasyWeight, p.num_easy(), "easy Doppler bins");
  // Hard weights parallelize over independent (bin, segment) units — the
  // paper runs 112 nodes against 56 hard bins x 6 segments = 336 units.
  limit(Task::kHardWeight, p.num_hard * p.num_segments,
        "hard (bin, segment) units");
  limit(Task::kEasyBeamform, p.num_easy(), "easy Doppler bins");
  limit(Task::kHardBeamform, p.num_hard, "hard Doppler bins");
  limit(Task::kPulseCompression, p.num_pulses, "Doppler bins");
  limit(Task::kCfar, p.num_pulses, "Doppler bins");
}

std::string NodeAssignment::to_string() const {
  std::ostringstream os;
  os << "{";
  for (int t = 0; t < stap::kNumTasks; ++t) {
    if (t) os << ", ";
    os << stap::task_name(static_cast<stap::Task>(t)) << "="
       << nodes[static_cast<size_t>(t)];
  }
  os << "}";
  return os.str();
}

}  // namespace ppstap::core
