#include "core/cpi_source.hpp"

#include <string>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace ppstap::core {

std::shared_ptr<const cube::CpiCube> CpiSource::get(index_t cpi, int rank) {
  std::unique_lock<std::mutex> lock(mu_);
  if (auto it = cache_.find(cpi); it != cache_.end()) return it->second;

  const int prior = generated_[cpi]++;
  if (prior > 0) {
    ++regenerations_;
    ++regen_by_rank_[rank];
    obs::Registry::global().counter("cpi_source.regenerations").add(1);
    if (rank >= 0)
      obs::Registry::global()
          .counter("cpi_source.regenerations.rank" + std::to_string(rank))
          .add(1);
    if (regenerations_ > max_regenerations_) {
      obs::Registry::global()
          .counter("cpi_source.regeneration_storms")
          .add(1);
      throw Error(
          "CPI regeneration storm: a straggler past the eviction window "
          "regenerated " +
          std::to_string(regenerations_) +
          " cubes (bound " + std::to_string(max_regenerations_) +
          "); the pipeline has fallen out of lockstep");
    }
  }
  // Generation is deterministic per index, so dropping the lock here would
  // only risk duplicate work; holding it keeps the accounting exact and the
  // generator contention-free (it is the slowest caller's critical path
  // either way on this machine model).
  auto cube = std::make_shared<const cube::CpiCube>(gen_.generate(cpi));
  cache_[cpi] = cube;
  while (!cache_.empty() && cache_.begin()->first + window_ < cpi)
    cache_.erase(cache_.begin());
  return cube;
}

index_t CpiSource::regeneration_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return regenerations_;
}

std::map<int, index_t> CpiSource::regenerations_by_rank() const {
  std::lock_guard<std::mutex> lock(mu_);
  return regen_by_rank_;
}

}  // namespace ppstap::core
