#include "core/sim.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "stap/flops.hpp"

namespace ppstap::core {

using stap::Task;

namespace {

struct EdgeInfo {
  Task src;
  Task dst;
  const char* name;
  bool reorg;
  bool temporal;
};

constexpr std::array<EdgeInfo, kNumEdges> kEdges = {{
    {Task::kDopplerFilter, Task::kEasyWeight, "Doppler->easy weight", true,
     false},
    {Task::kDopplerFilter, Task::kHardWeight, "Doppler->hard weight", true,
     false},
    {Task::kDopplerFilter, Task::kEasyBeamform, "Doppler->easy BF", true,
     false},
    {Task::kDopplerFilter, Task::kHardBeamform, "Doppler->hard BF", true,
     false},
    {Task::kEasyWeight, Task::kEasyBeamform, "easy weight->easy BF", false,
     true},
    {Task::kHardWeight, Task::kHardBeamform, "hard weight->hard BF", false,
     true},
    {Task::kEasyBeamform, Task::kPulseCompression, "easy BF->pulse compr",
     false, false},
    {Task::kHardBeamform, Task::kPulseCompression, "hard BF->pulse compr",
     false, false},
    {Task::kPulseCompression, Task::kCfar, "pulse compr->CFAR", false,
     false},
}};

const EdgeInfo& info(SimEdge e) { return kEdges[static_cast<size_t>(e)]; }

// All per-edge and per-task timing constants for one node assignment.
struct Constants {
  std::array<double, kNumEdges> wire{}, pack{}, post{}, unpack{};
  std::array<double, stap::kNumTasks> comp{}, pack_total{}, post_total{},
      unpack_total{};
  double input_time = 0.0;  // Doppler front-end ingest per node
};

}  // namespace

Task sim_edge_src(SimEdge e) { return info(e).src; }
Task sim_edge_dst(SimEdge e) { return info(e).dst; }
const char* sim_edge_name(SimEdge e) { return info(e).name; }
bool sim_edge_needs_reorg(SimEdge e) { return info(e).reorg; }
bool sim_edge_is_temporal(SimEdge e) { return info(e).temporal; }

PipelineSimulator::PipelineSimulator(const stap::StapParams& p,
                                     const ParagonParams& machine)
    : p_(p), m_(machine) {
  p_.validate();
  for (double r : m_.task_flops_per_s)
    PPSTAP_REQUIRE(r > 0.0, "machine model needs positive compute rates");
}

double PipelineSimulator::edge_volume_bytes(SimEdge e) const {
  const double cx = 8.0;  // complex<float>
  const double re = 4.0;  // float
  const auto k = static_cast<double>(p_.num_range);
  const auto j = static_cast<double>(p_.num_channels);
  const auto n = static_cast<double>(p_.num_pulses);
  const auto m = static_cast<double>(p_.num_beams);
  const auto ne = static_cast<double>(p_.num_easy());
  const auto nh = static_cast<double>(p_.num_hard);
  const auto s = static_cast<double>(p_.num_segments);
  switch (e) {
    case SimEdge::kDopToEasyWt:
      return ne * static_cast<double>(p_.easy_samples_per_cpi) * j * cx;
    case SimEdge::kDopToHardWt:
      return nh * s * static_cast<double>(p_.hard_samples_per_segment) *
             2.0 * j * cx;
    case SimEdge::kDopToEasyBf:
      return ne * k * j * cx;
    case SimEdge::kDopToHardBf:
      return nh * k * 2.0 * j * cx;
    case SimEdge::kEasyWtToBf:
      return ne * j * m * cx;
    case SimEdge::kHardWtToBf:
      return nh * s * 2.0 * j * m * cx;
    case SimEdge::kEasyBfToPc:
      return ne * m * k * cx;
    case SimEdge::kHardBfToPc:
      return nh * m * k * cx;
    case SimEdge::kPcToCfar:
      return n * m * k * re;
  }
  PPSTAP_CHECK(false, "unknown edge");
  return 0.0;
}

index_t PipelineSimulator::work_items(Task t) const {
  switch (t) {
    case Task::kDopplerFilter:
      return p_.num_range;
    case Task::kEasyWeight:
    case Task::kEasyBeamform:
      return p_.num_easy();
    case Task::kHardWeight:
      return p_.num_hard * p_.num_segments;
    case Task::kHardBeamform:
      return p_.num_hard;
    case Task::kPulseCompression:
    case Task::kCfar:
      return p_.num_pulses;
  }
  PPSTAP_CHECK(false, "unknown task");
  return 1;
}

double PipelineSimulator::compute_time(Task t, int nodes) const {
  PPSTAP_REQUIRE(nodes >= 1, "need at least one node");
  const auto items = work_items(t);
  const index_t per_node =
      (items + static_cast<index_t>(nodes) - 1) / static_cast<index_t>(nodes);
  const double per_item =
      static_cast<double>(stap::analytic_flops(t, p_)) /
      (static_cast<double>(items) *
       m_.task_flops_per_s[static_cast<size_t>(t)]);
  return static_cast<double>(per_node) * per_item;
}

namespace {

Constants build_constants(const PipelineSimulator& sim,
                          const stap::StapParams& p, const ParagonParams& m,
                          const NodeAssignment& assign) {
  Constants c;
  const auto nodes = [&](Task t) { return static_cast<double>(assign[t]); };

  for (int ei = 0; ei < kNumEdges; ++ei) {
    const auto e = static_cast<SimEdge>(ei);
    const auto& inf = kEdges[static_cast<size_t>(ei)];
    const double vol = sim.edge_volume_bytes(e);
    const double ps = nodes(inf.src), pd = nodes(inf.dst);
    // Wire: sender egress vs receiver ingress serialization; the max
    // captures contention when node counts are unbalanced.
    const double egress = pd * m.startup_s + vol / ps * m.per_byte_s;
    const double ingress = ps * m.startup_s + vol / pd * m.per_byte_s;
    c.wire[static_cast<size_t>(ei)] = std::max(egress, ingress);
    const double reorg = inf.reorg ? 1.0 : m.contiguous_copy_factor;
    c.pack[static_cast<size_t>(ei)] = m.pack_per_byte_s * vol / ps * reorg;
    c.post[static_cast<size_t>(ei)] = pd * m.startup_s;
    c.unpack[static_cast<size_t>(ei)] =
        m.unpack_per_byte_s * vol / pd * reorg;
    c.pack_total[static_cast<size_t>(inf.src)] +=
        c.pack[static_cast<size_t>(ei)];
    c.post_total[static_cast<size_t>(inf.src)] +=
        c.post[static_cast<size_t>(ei)];
    c.unpack_total[static_cast<size_t>(inf.dst)] +=
        c.unpack[static_cast<size_t>(ei)];
  }
  for (int t = 0; t < stap::kNumTasks; ++t)
    c.comp[static_cast<size_t>(t)] =
        sim.compute_time(static_cast<Task>(t),
                         assign[static_cast<Task>(t)]);
  c.input_time =
      static_cast<double>(p.num_range * p.num_channels * p.num_pulses) * 8.0 /
      nodes(Task::kDopplerFilter) * m.input_per_byte_s;
  return c;
}

double intrinsic_of(const Constants& c, Task t) {
  const auto i = static_cast<size_t>(t);
  const double in =
      t == Task::kDopplerFilter ? c.input_time : c.unpack_total[i];
  return in + c.comp[i] + c.pack_total[i] + c.post_total[i];
}

}  // namespace

double PipelineSimulator::intrinsic_time(Task t,
                                         const NodeAssignment& assign) const {
  assign.validate(p_);
  return intrinsic_of(build_constants(*this, p_, m_, assign), t);
}

void ReplicationPlan::validate() const {
  for (int r : replicas)
    PPSTAP_REQUIRE(r >= 1, "replica counts must be at least 1");
  PPSTAP_REQUIRE((*this)[stap::Task::kEasyWeight] == 1 &&
                     (*this)[stap::Task::kHardWeight] == 1,
                 "weight tasks carry training state across CPIs and cannot "
                 "be replicated");
}

SimResult PipelineSimulator::simulate(const NodeAssignment& assign,
                                      index_t num_cpis, index_t warmup,
                                      index_t cooldown) const {
  return simulate_replicated(assign, ReplicationPlan{}, num_cpis, warmup,
                             cooldown);
}

RoundRobinResult PipelineSimulator::round_robin(int nodes) const {
  PPSTAP_REQUIRE(nodes >= 1, "need at least one node");
  // One node runs the whole chain on a whole CPI: no inter-task
  // communication, just the input ingest plus every task's compute.
  double chain = static_cast<double>(p_.num_range * p_.num_channels *
                                     p_.num_pulses) *
                 8.0 * m_.input_per_byte_s;
  for (int t = 0; t < stap::kNumTasks; ++t)
    chain += compute_time(static_cast<Task>(t), 1);
  return RoundRobinResult{static_cast<double>(nodes) / chain, chain};
}

SimResult PipelineSimulator::simulate_replicated(const NodeAssignment& assign,
                                                 const ReplicationPlan& plan,
                                                 index_t num_cpis,
                                                 index_t warmup,
                                                 index_t cooldown) const {
  assign.validate(p_);
  plan.validate();
  PPSTAP_REQUIRE(num_cpis > warmup + cooldown,
                 "need at least one measured CPI");

  const Constants c = build_constants(*this, p_, m_, assign);

  // When tracing is on, the simulator emits the same span vocabulary as
  // the live pipeline — phase triples per (task, CPI) with rank = task
  // index, plus one "xfer" flow span per edge message — so the
  // critical-path analyzer works identically on simulated (Table 8/9/10)
  // and live traces. Only measured CPIs are emitted.
  const bool tracing = obs::tracing_enabled();
  if (tracing)
    for (int ti = 0; ti < stap::kNumTasks; ++ti)
      obs::set_track_name(ti, stap::task_name(static_cast<Task>(ti)));

  const auto n = static_cast<size_t>(num_cpis);
  std::array<std::vector<double>, stap::kNumTasks> loop_start, send_end;
  for (auto& v : loop_start) v.assign(n, 0.0);
  for (auto& v : send_end) v.assign(n, 0.0);

  std::array<TaskTiming, stap::kNumTasks> timing{};
  std::array<SimEdgeTiming, kNumEdges> edge_timing{};
  std::vector<double> completion(n, 0.0), latency(n, 0.0);

  const auto measured = [&](size_t t) {
    return static_cast<index_t>(t) >= warmup &&
           static_cast<index_t>(t) < num_cpis - cooldown;
  };
  const auto measured_count =
      static_cast<double>(num_cpis - warmup - cooldown);

  // Delivery semantics (Fig. 10 + rendezvous): a message completes
  // delivery when the receiver reaches the loop that consumes it (large
  // messages rendezvous with the posted receive), and a sender entering
  // loop t must wait for its loop t-1 messages to complete (line 14)
  // before reusing the double buffer. The wait is what makes a *fast,
  // over-provisioned sender feeding a slow receiver* show idle time in its
  // visible send phase — the send spikes of paper Tables 3, 4 and 6.
  //
  // Message from src loop m on edge e is consumed at
  //   dst loop m      (spatial edges)
  //   dst loop m + B  (temporal edges: weights for the next revisit of the
  //                    same transmit position, B = num_beam_positions)
  const auto temporal_stride =
      static_cast<std::ptrdiff_t>(p_.num_beam_positions);
  const auto gate = [&](int ei, std::ptrdiff_t m,
                        const std::array<std::vector<double>,
                                         stap::kNumTasks>& ls) {
    const auto& inf = kEdges[static_cast<size_t>(ei)];
    const std::ptrdiff_t idx = inf.temporal ? m + temporal_stride : m;
    if (idx < 0) return 0.0;
    const auto& v = ls[static_cast<size_t>(inf.dst)];
    if (static_cast<size_t>(idx) >= v.size()) return 0.0;
    return v[static_cast<size_t>(idx)];
  };

  // Replica stride per task: instance handling CPI t previously handled
  // CPI t - stride.
  const auto stride = [&](int ti) {
    return static_cast<size_t>(plan.replicas[static_cast<size_t>(ti)]);
  };

  for (size_t t = 0; t < n; ++t) {
    // Loop starts derive from earlier CPIs only, so they can be fixed for
    // all tasks up front (the rendezvous gates need them).
    for (int ti = 0; ti < stap::kNumTasks; ++ti)
      loop_start[static_cast<size_t>(ti)][t] =
          (t < stride(ti)) ? 0.0
                           : send_end[static_cast<size_t>(ti)][t - stride(ti)];

    // Tasks evaluated in dataflow order within a CPI; temporal edges only
    // reference t-1, so one pass per CPI is a valid topological order.
    for (int ti = 0; ti < stap::kNumTasks; ++ti) {
      const auto task = static_cast<Task>(ti);
      const auto tsz = static_cast<size_t>(ti);

      double ready = loop_start[tsz][t];
      for (int ei = 0; ei < kNumEdges; ++ei) {
        const auto& inf = kEdges[static_cast<size_t>(ei)];
        if (inf.dst != task) continue;
        const auto ssz = static_cast<size_t>(inf.src);
        // Data for CPI t left the source at its loop t (spatial) or at the
        // previous same-position visit t - B (temporal; the first visit of
        // each position gets quiescent weights for free).
        const std::ptrdiff_t m =
            inf.temporal
                ? static_cast<std::ptrdiff_t>(t) - temporal_stride
                : static_cast<std::ptrdiff_t>(t);
        double arrival = 0.0;
        if (m >= 0) {
          const double avail = send_end[ssz][static_cast<size_t>(m)];
          const double depart = std::max(avail, gate(ei, m, loop_start));
          arrival = depart + c.wire[static_cast<size_t>(ei)];
          if (tracing && measured(t)) {
            // Rendezvous wait (frame ready but the consuming loop not yet
            // reached) is the sim's analogue of mailbox queue residency.
            obs::Span sp;
            sp.name = "xfer";
            sp.category = "flow";
            sp.rank = ti;
            sp.task = obs::kFlowTrack;
            sp.cpi = static_cast<std::int64_t>(t);
            sp.t_start = avail;
            sp.t_end = arrival;
            sp.bytes = static_cast<std::int64_t>(
                edge_volume_bytes(static_cast<SimEdge>(ei)));
            sp.src_rank = static_cast<std::int32_t>(inf.src);
            sp.src_task = static_cast<std::int32_t>(inf.src);
            sp.edge = ei;
            sp.hop = inf.src == Task::kDopplerFilter
                         ? 1
                         : (inf.src == Task::kPulseCompression ? 3 : 2);
            sp.queue_s = std::max(0.0, depart - avail);
            obs::emit(sp);
          }
        }
        ready = std::max(ready, arrival);
        if (measured(t)) {
          edge_timing[static_cast<size_t>(ei)].recv +=
              (std::max(0.0, arrival - loop_start[tsz][t]) +
               c.unpack[static_cast<size_t>(ei)]) /
              measured_count;
        }
      }

      const double extra_recv = task == Task::kDopplerFilter
                                    ? c.input_time
                                    : c.unpack_total[tsz];
      const double recv_end = ready + extra_recv;
      const double comp_end = recv_end + c.comp[tsz];

      // Visible send = pack + post, plus the line-14 wait for the previous
      // loop's messages to complete delivery.
      double send_done = comp_end + c.pack_total[tsz] + c.post_total[tsz];
      if (t >= stride(ti)) {
        for (int ei = 0; ei < kNumEdges; ++ei) {
          const auto& inf = kEdges[static_cast<size_t>(ei)];
          if (inf.src != task) continue;
          const auto m =
              static_cast<std::ptrdiff_t>(t - stride(ti));
          const double delivered =
              std::max(send_end[tsz][static_cast<size_t>(m)],
                       gate(ei, m, loop_start)) +
              c.wire[static_cast<size_t>(ei)];
          send_done = std::max(send_done, delivered);
        }
      }
      send_end[tsz][t] = send_done;

      if (measured(t)) {
        timing[tsz].recv += (recv_end - loop_start[tsz][t]) / measured_count;
        timing[tsz].comp += c.comp[tsz] / measured_count;
        timing[tsz].send += (send_end[tsz][t] - comp_end) / measured_count;
      }
      if (tracing && measured(t)) {
        const auto cpi64 = static_cast<std::int64_t>(t);
        const double pure_send_end =
            comp_end + c.pack_total[tsz] + c.post_total[tsz];
        obs::emit({"recv", "pipeline", ti, ti, cpi64, loop_start[tsz][t],
                   recv_end, -1, -1});
        obs::emit({"comp", "pipeline", ti, ti, cpi64, recv_end, comp_end, -1,
                   -1});
        // The visible send splits into real pack/post work and the line-14
        // delivery stall; the analyzer's intrinsic time must exclude the
        // stall (it is absorbed slack, not service — the Table 3/4/6 send
        // spikes), so they are separate spans.
        obs::emit({"send", "pipeline", ti, ti, cpi64, comp_end, pure_send_end,
                   -1, -1});
        if (send_end[tsz][t] > pure_send_end)
          obs::emit({"stall", "pipeline", ti, ti, cpi64, pure_send_end,
                     send_end[tsz][t], -1, -1});
      }
      if (task == Task::kCfar) {
        completion[t] = comp_end;  // sink: no send phase
        latency[t] =
            comp_end -
            loop_start[static_cast<size_t>(Task::kDopplerFilter)][t];
      }
    }
  }

  // Sender-side edge timing: the visible send phase of the sending task,
  // including any line-14 delivery waits (the paper's tables repeat the
  // task's send figure per successor column).
  for (int ei = 0; ei < kNumEdges; ++ei) {
    const auto ssz = static_cast<size_t>(kEdges[static_cast<size_t>(ei)].src);
    edge_timing[static_cast<size_t>(ei)].send = timing[ssz].send;
  }

  SimResult result;
  result.timing = timing;
  result.edges = edge_timing;

  double gap_sum = 0.0;
  int gap_count = 0;
  double lat_sum = 0.0;
  int lat_count = 0;
  for (size_t t = 0; t < n; ++t) {
    if (!measured(t)) continue;
    if (t > 0) {
      gap_sum += completion[t] - completion[t - 1];
      ++gap_count;
    }
    lat_sum += latency[t];
    ++lat_count;
  }
  if (gap_count > 0 && gap_sum > 0.0)
    result.throughput_measured = static_cast<double>(gap_count) / gap_sum;
  if (lat_count > 0)
    result.latency_measured = lat_sum / static_cast<double>(lat_count);

  // Equations (1) and (2) from the averaged task totals.
  double max_total = 0.0;
  for (const auto& tt : timing) max_total = std::max(max_total, tt.total());
  if (max_total > 0.0) result.throughput_equation = 1.0 / max_total;
  const auto total = [&](Task t) {
    return timing[static_cast<size_t>(t)].total();
  };
  result.latency_equation =
      total(Task::kDopplerFilter) +
      std::max(total(Task::kEasyBeamform), total(Task::kHardBeamform)) +
      total(Task::kPulseCompression) + total(Task::kCfar);
  return result;
}

double PipelineSimulator::weight_state_bytes() const {
  const double cx = 8.0;
  const auto j = static_cast<double>(p_.num_channels);
  const auto jj = 2.0 * j;
  const auto positions = static_cast<double>(p_.num_beam_positions);
  // Easy: per (position, easy bin): easy_history training matrices.
  const double easy = positions * static_cast<double>(p_.num_easy()) *
                      static_cast<double>(p_.easy_history) *
                      static_cast<double>(p_.easy_samples_per_cpi) * j * cx;
  // Hard: per (position, bin, segment): upper-triangular 2J x 2J factor.
  const double hard = positions * static_cast<double>(p_.num_hard) *
                      static_cast<double>(p_.num_segments) *
                      (jj * (jj + 1.0) / 2.0) * cx;
  return easy + hard;
}

DynamicSimResult PipelineSimulator::simulate_reallocation(
    const ReallocationPlan& plan, index_t num_cpis, index_t warmup) const {
  plan.before.validate(p_);
  plan.after.validate(p_);
  PPSTAP_REQUIRE(plan.switch_cpi > warmup &&
                     plan.switch_cpi + warmup < num_cpis,
                 "switch point must leave a measured window on both sides");

  const Constants c_before = build_constants(*this, p_, m_, plan.before);
  const Constants c_after = build_constants(*this, p_, m_, plan.after);

  // Migration: the weight state crosses the machine once; every involved
  // node pays a startup, and the volume crosses the wire serially.
  const double stall =
      weight_state_bytes() * m_.per_byte_s +
      static_cast<double>(plan.before.total() + plan.after.total()) *
          m_.startup_s;

  const auto n = static_cast<size_t>(num_cpis);
  std::array<std::vector<double>, stap::kNumTasks> loop_start, send_end;
  for (auto& v : loop_start) v.assign(n, 0.0);
  for (auto& v : send_end) v.assign(n, 0.0);
  std::vector<double> completion(n, 0.0), latency(n, 0.0);

  const auto sw = static_cast<size_t>(plan.switch_cpi);
  const auto temporal_stride =
      static_cast<std::ptrdiff_t>(p_.num_beam_positions);

  // The switch is a global barrier: nothing of CPI sw starts before every
  // task has finished CPI sw-1 and the state has moved.
  double barrier = 0.0;

  for (size_t t = 0; t < n; ++t) {
    const Constants& c = (t < sw) ? c_before : c_after;
    for (int ti = 0; ti < stap::kNumTasks; ++ti) {
      const auto tsz = static_cast<size_t>(ti);
      loop_start[tsz][t] = (t == 0) ? 0.0 : send_end[tsz][t - 1];
      if (t == sw) loop_start[tsz][t] = barrier + stall;
    }
    for (int ti = 0; ti < stap::kNumTasks; ++ti) {
      const auto task = static_cast<Task>(ti);
      const auto tsz = static_cast<size_t>(ti);
      double ready = loop_start[tsz][t];
      for (int ei = 0; ei < kNumEdges; ++ei) {
        const auto& inf = kEdges[static_cast<size_t>(ei)];
        if (inf.dst != task) continue;
        const std::ptrdiff_t m =
            inf.temporal ? static_cast<std::ptrdiff_t>(t) - temporal_stride
                         : static_cast<std::ptrdiff_t>(t);
        if (m < 0) continue;
        // Messages across the switch arrive after the barrier (they are
        // re-distributed with the state).
        const double arrival =
            std::max(send_end[static_cast<size_t>(inf.src)]
                             [static_cast<size_t>(m)],
                     loop_start[tsz][t]) +
            c.wire[static_cast<size_t>(ei)];
        ready = std::max(ready, arrival);
      }
      const double extra_recv = task == Task::kDopplerFilter
                                    ? c.input_time
                                    : c.unpack_total[tsz];
      const double comp_end = ready + extra_recv + c.comp[tsz];
      send_end[tsz][t] = comp_end + c.pack_total[tsz] + c.post_total[tsz];
      barrier = std::max(barrier, send_end[tsz][t]);
      if (task == Task::kCfar) {
        completion[t] = comp_end;
        latency[t] =
            comp_end -
            loop_start[static_cast<size_t>(Task::kDopplerFilter)][t];
      }
    }
  }

  DynamicSimResult result;
  result.migration_stall = stall;
  result.completion = completion;
  const auto phase_stats = [&](size_t begin, size_t end, double& thr,
                               double& lat) {
    double gap_sum = 0.0, lat_sum = 0.0;
    int gaps = 0, lats = 0;
    for (size_t t = begin; t < end; ++t) {
      if (t > begin) {
        gap_sum += completion[t] - completion[t - 1];
        ++gaps;
      }
      lat_sum += latency[t];
      ++lats;
    }
    thr = (gaps > 0 && gap_sum > 0.0) ? static_cast<double>(gaps) / gap_sum
                                      : 0.0;
    lat = lats > 0 ? lat_sum / static_cast<double>(lats) : 0.0;
  };
  phase_stats(static_cast<size_t>(warmup), sw, result.throughput_before,
              result.latency_before);
  phase_stats(sw + static_cast<size_t>(warmup), n, result.throughput_after,
              result.latency_after);
  return result;
}

namespace {

// Per-task upper bound on useful nodes (the validate() limits).
std::array<int, stap::kNumTasks> node_caps(const stap::StapParams& p) {
  return {static_cast<int>(p.num_range),
          static_cast<int>(p.num_easy()),
          static_cast<int>(p.num_hard * p.num_segments),
          static_cast<int>(p.num_easy()),
          static_cast<int>(p.num_hard),
          static_cast<int>(p.num_pulses),
          static_cast<int>(p.num_pulses)};
}

// Greedy: repeatedly hand the next node to the task selected by `pick`,
// which receives the current per-task intrinsic times.
template <typename Pick>
NodeAssignment greedy_assign(const PipelineSimulator& sim, int total_nodes,
                             Pick&& pick) {
  PPSTAP_REQUIRE(total_nodes >= stap::kNumTasks,
                 "need at least one node per task");
  const auto caps = node_caps(sim.params());
  NodeAssignment a;  // all ones
  while (a.total() < total_nodes) {
    std::array<double, stap::kNumTasks> intrinsic{};
    for (int t = 0; t < stap::kNumTasks; ++t)
      intrinsic[static_cast<size_t>(t)] =
          sim.intrinsic_time(static_cast<Task>(t), a);
    const int chosen = pick(intrinsic, a, caps);
    if (chosen < 0) break;  // nothing can usefully grow
    a.nodes[static_cast<size_t>(chosen)] += 1;
  }
  return a;
}

int argmax_growable(const std::array<double, stap::kNumTasks>& intrinsic,
                    const NodeAssignment& a,
                    const std::array<int, stap::kNumTasks>& caps,
                    const std::array<bool, stap::kNumTasks>& eligible) {
  int best = -1;
  double best_v = -1.0;
  for (int t = 0; t < stap::kNumTasks; ++t) {
    if (!eligible[static_cast<size_t>(t)]) continue;
    if (a.nodes[static_cast<size_t>(t)] >= caps[static_cast<size_t>(t)])
      continue;
    if (intrinsic[static_cast<size_t>(t)] > best_v) {
      best_v = intrinsic[static_cast<size_t>(t)];
      best = t;
    }
  }
  return best;
}

}  // namespace

namespace {

// Hill-climb over single-node moves (take one node from task i, give it to
// task j), scoring each candidate with a full pipeline simulation. Assumes
// a sensible starting point; used to polish the intrinsic-greedy seed.
// `better(candidate, incumbent)` decides strict improvement.
template <typename Better>
NodeAssignment hill_climb(const PipelineSimulator& sim, NodeAssignment a,
                          Better&& better) {
  const auto caps = node_caps(sim.params());
  SimResult cur = sim.simulate(a, 12, 2, 2);
  for (int pass = 0; pass < 64; ++pass) {
    bool improved = false;
    NodeAssignment best_a = a;
    SimResult best_r = cur;
    for (int i = 0; i < stap::kNumTasks; ++i) {
      if (a.nodes[static_cast<size_t>(i)] <= 1) continue;
      for (int j = 0; j < stap::kNumTasks; ++j) {
        if (j == i ||
            a.nodes[static_cast<size_t>(j)] >= caps[static_cast<size_t>(j)])
          continue;
        NodeAssignment trial = a;
        trial.nodes[static_cast<size_t>(i)] -= 1;
        trial.nodes[static_cast<size_t>(j)] += 1;
        const SimResult r = sim.simulate(trial, 12, 2, 2);
        if (better(r, best_r)) {
          best_a = trial;
          best_r = r;
          improved = true;
        }
      }
    }
    if (!improved) break;
    a = best_a;
    cur = best_r;
  }
  return a;
}

}  // namespace

NodeAssignment assign_for_throughput(const PipelineSimulator& sim,
                                     int total_nodes) {
  std::array<bool, stap::kNumTasks> all;
  all.fill(true);
  // Seed: feed the bottleneck (steady-state throughput is 1/max
  // intrinsic), then polish with simulation-scored moves.
  NodeAssignment seed = greedy_assign(
      sim, total_nodes,
      [&](const std::array<double, stap::kNumTasks>& intrinsic,
          const NodeAssignment& a,
          const std::array<int, stap::kNumTasks>& caps) {
        return argmax_growable(intrinsic, a, caps, all);
      });
  return hill_climb(sim, seed, [](const SimResult& r, const SimResult& cur) {
    if (r.throughput_measured != cur.throughput_measured)
      return r.throughput_measured > cur.throughput_measured * 1.0001;
    return r.latency_measured < cur.latency_measured * 0.9999;
  });
}

NodeAssignment assign_for_latency(const PipelineSimulator& sim,
                                  int total_nodes, double min_throughput) {
  // Start from the throughput-optimal assignment (which keeps every task,
  // including the weight tasks that equation (2) hides, supplied with
  // enough nodes), then trade throughput for latency with simulation-
  // scored moves while respecting the floor.
  NodeAssignment seed = assign_for_throughput(sim, total_nodes);
  return hill_climb(sim, seed, [&](const SimResult& r, const SimResult& cur) {
    const bool r_ok = r.throughput_measured >= min_throughput;
    const bool c_ok = cur.throughput_measured >= min_throughput;
    if (r_ok != c_ok) return r_ok;
    if (r_ok) return r.latency_measured < cur.latency_measured * 0.9999;
    return r.throughput_measured > cur.throughput_measured * 1.0001;
  });
}

}  // namespace ppstap::core
