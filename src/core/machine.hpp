// Machine model of the AFRL Intel Paragon (paper §6).
//
// The physical machine: 321 compute nodes (three 40 MHz i860 processors
// sharing 64 MB, one used per node here), 2-D mesh interconnect with a
// 35.3 us message startup and 6.53 ns/byte transfer time.
//
// Per-task effective compute rates are *calibrated once* from the paper's
// own Table 7 measurements (see DESIGN.md §6): the paper demonstrates the
// rates are independent of the node count (its linear speedup, Fig. 11), so
// a single rate per task characterizes the kernel's cache/memory behaviour
// on the i860. Everything else — idle waits, contention, pipeline
// interactions — is produced by the simulation, not calibrated.
#pragma once

#include <array>

#include "stap/flops.hpp"

namespace ppstap::core {

struct ParagonParams {
  double startup_s = 35.3e-6;     ///< per-message startup
  double per_byte_s = 6.53e-9;    ///< wire transfer per byte
  double pack_per_byte_s = 65e-9;   ///< data collection / reorganization
  double unpack_per_byte_s = 30e-9; ///< receive-side placement
  double input_per_byte_s = 21e-9;  ///< radar front-end ingest (Doppler recv)
  /// Fraction of the full pack/unpack cost paid on edges that need no
  /// reorganization (same partition dimension on both sides): a contiguous
  /// copy instead of a strided gather.
  double contiguous_copy_factor = 0.2;

  /// Effective per-node compute rate per task (flops/second).
  std::array<double, stap::kNumTasks> task_flops_per_s{};

  /// Rates calibrated so that the compute model reproduces the paper's
  /// Table 7 per-task compute times for the paper parameter set (the rate
  /// absorbs any flop-counting-convention difference from the paper; it
  /// generalizes to other parameter sets because analytic_flops scales).
  static ParagonParams calibrated();
};

}  // namespace ppstap::core
