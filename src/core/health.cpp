#include "core/health.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/env.hpp"
#include "obs/metrics.hpp"

namespace ppstap::core {

HealthConfig HealthConfig::from_env() {
  HealthConfig cfg;
  if (const auto v = parse_env_flag("PPSTAP_HEALTH")) cfg.enabled = *v;
  if (const auto v = parse_env_double("PPSTAP_HEALTH_ZSCORE", 0.5, 1e3))
    cfg.zscore = *v;
  if (const auto v = parse_env_int("PPSTAP_HEALTH_DWELL", 1, 1000000))
    cfg.dwell = static_cast<int>(*v);
  if (const auto v = parse_env_flag("PPSTAP_HEALTH_QUARANTINE"))
    cfg.quarantine = *v;
  if (const auto v = parse_env_double("PPSTAP_HEALTH_MIN_SERVICE", 0.0, 1e3))
    cfg.min_service = *v;
  cfg.validate();
  return cfg;
}

void HealthConfig::validate() const {
  PPSTAP_REQUIRE(zscore > 0.0, "health zscore threshold must be positive");
  PPSTAP_REQUIRE(dwell >= 1, "health dwell must be at least one scan");
  PPSTAP_REQUIRE(alpha > 0.0 && alpha <= 1.0,
                 "health EWMA alpha must be in (0, 1]");
  PPSTAP_REQUIRE(min_ratio >= 1.0, "health min_ratio must be >= 1");
  PPSTAP_REQUIRE(min_samples >= 1, "health min_samples must be >= 1");
  PPSTAP_REQUIRE(flap_limit >= 0, "health flap_limit must be >= 0");
  PPSTAP_REQUIRE(min_gain >= 0.0 && min_gain < 1.0,
                 "health min_gain must be in [0, 1)");
  PPSTAP_REQUIRE(min_service >= 0.0, "health min_service must be >= 0");
}

HealthMonitor::HealthMonitor(const HealthConfig& cfg, int n_ranks)
    : cfg_(cfg),
      state_(static_cast<size_t>(n_ranks)),
      quarantine_flag_(static_cast<size_t>(n_ranks)),
      revived_(static_cast<size_t>(n_ranks)) {
  cfg_.validate();
  PPSTAP_REQUIRE(n_ranks >= 1, "health monitor needs at least one rank");
}

void HealthMonitor::observe(int rank, int task, long long cpi,
                            double service_s, double queue_s) {
  (void)cpi;
  if (!cfg_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  RankState& s = state_[static_cast<size_t>(rank)];
  if (s.quarantined) return;
  s.task = task;
  if (s.samples == 0) {
    s.ewma_service = service_s;
    s.ewma_queue = queue_s;
  } else {
    s.ewma_service += cfg_.alpha * (service_s - s.ewma_service);
    s.ewma_queue += cfg_.alpha * (queue_s - s.ewma_queue);
  }
  s.recent[static_cast<size_t>(s.recent_idx)] = service_s;
  s.recent_idx = (s.recent_idx + 1) % kFloorWindow;
  s.recent_n = std::min(s.recent_n + 1, kFloorWindow);
  ++s.samples;
}

double HealthMonitor::floor_of(const RankState& s) {
  double lo = 0.0;
  for (int i = 0; i < s.recent_n; ++i) {
    const double v = s.recent[static_cast<size_t>(i)];
    lo = i == 0 ? v : std::min(lo, v);
  }
  return lo;
}

double HealthMonitor::group_period(const HealthGroup& g) const {
  // A task group's per-CPI period estimate is its slowest member: the
  // members split one CPI's work, so the laggard paces the group (eq. 1).
  // Floors, not EWMAs — the prediction must not chase preemption noise.
  double period = 0.0;
  for (int r : g.ranks) {
    const RankState& s = state_[static_cast<size_t>(r)];
    if (s.samples >= cfg_.min_samples)
      period = std::max(period, floor_of(s));
  }
  return period;
}

bool HealthMonitor::do_no_harm_ok(const std::vector<HealthGroup>& groups,
                                  const HealthGroup& group, int rank,
                                  const std::vector<double>& healthy,
                                  bool spare_available,
                                  bool shrink_available) const {
  if (!spare_available && !shrink_available)
    return false;  // eviction would be an uncovered death
  // Eq.-1 prediction from the same intrinsic estimates the critical-path
  // analyzer reports: current period = slowest group; post-eviction the
  // straggler's group runs at its healthy peers' pace (spare takeover) or
  // at the peers' mean stretched by the survivors sharing the evictee's
  // partition (shrink). Evict only when the pipeline period shrinks by at
  // least min_gain — e.g. a straggler in a non-gating group with slack is
  // left alone.
  if (healthy.empty()) return false;  // nobody left to carry the work
  if (!spare_available && group.ranks.size() < 2) return false;
  double current = 0.0;
  double others = 0.0;
  for (const HealthGroup& g : groups) {
    const double p = group_period(g);
    current = std::max(current, p);
    if (g.task != group.task) others = std::max(others, p);
  }
  if (current <= 0.0) return false;
  double healed = 0.0;
  double mean = 0.0;
  for (double h : healthy) {
    healed = std::max(healed, h);
    mean += h;
  }
  mean /= static_cast<double>(healthy.size());
  if (!spare_available) {
    const auto n = static_cast<double>(group.ranks.size());
    healed = std::max(healed, mean * n / (n - 1.0));
  }
  (void)rank;
  const double post = std::max(others, healed);
  return post < (1.0 - cfg_.min_gain) * current;
}

void HealthMonitor::scan(long long cpi,
                         const std::vector<HealthGroup>& groups,
                         bool spare_available, bool shrink_available) {
  if (!cfg_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const HealthGroup& g : groups) {
    // Leave-one-out peer statistics per member.
    std::vector<int> scored;
    for (int r : g.ranks) {
      const RankState& s = state_[static_cast<size_t>(r)];
      if (!s.quarantined && s.samples >= cfg_.min_samples)
        scored.push_back(r);
    }
    if (scored.size() < 2) continue;  // a singleton has no peers
    for (int r : scored) {
      RankState& s = state_[static_cast<size_t>(r)];
      const double mine = floor_of(s);
      std::vector<double> peers;
      peers.reserve(scored.size() - 1);
      for (int p : scored)
        if (p != r) peers.push_back(floor_of(state_[static_cast<size_t>(p)]));
      double mean = 0.0;
      for (double v : peers) mean += v;
      mean /= static_cast<double>(peers.size());
      double var = 0.0;
      for (double v : peers) var += (v - mean) * (v - mean);
      var /= static_cast<double>(peers.size());
      // Relative std floor: with near-uniform peers the raw std collapses
      // and any epsilon would z-score to infinity.
      const double sd = std::max({std::sqrt(var), 0.1 * mean, 1e-12});
      const double z = (mine - mean) / sd;
      s.last_zscore = z;

      // Double gate on top of the floor z-score: the peer-relative ratio,
      // and the absolute min_service floor under which a group lives in
      // scheduler-noise territory and is never scored against itself.
      const bool straggler = z > cfg_.zscore &&
                             mine > cfg_.min_ratio * mean &&
                             mine > cfg_.min_service;
      if (straggler) {
        ++s.strikes;
        if (!s.suspect) {
          s.suspect = true;
          ++suspects_;
          events_.push_back({r, s.task, cpi, z, "suspect"});
        }
        if (s.strikes < cfg_.dwell) continue;
        // Confirmed. Flap budget first, then the do-no-harm prediction.
        if (!cfg_.quarantine) continue;
        if (s.quarantine_count >= cfg_.flap_limit) {
          ++flap_suppressed_;
          events_.push_back({r, s.task, cpi, z, "flap_suppressed"});
          s.strikes = 0;
          continue;
        }
        if (!do_no_harm_ok(groups, g, r, peers, spare_available,
                           shrink_available)) {
          ++vetoed_;
          events_.push_back({r, s.task, cpi, z, "vetoed"});
          s.strikes = 0;
          continue;
        }
        s.quarantined = true;
        ++s.quarantine_count;
        ++quarantines_;
        events_.push_back({r, s.task, cpi, z, "quarantine"});
        quarantine_flag_[static_cast<size_t>(r)].store(
            true, std::memory_order_release);
        obs::Registry::global().counter("health.quarantines").add(1);
      } else if (s.strikes > 0 && z < 0.5 * cfg_.zscore) {
        // Hysteresis: strikes only clear well below the threshold, so a
        // rank flickering around it neither escalates nor resets per tick.
        s.strikes = 0;
        s.suspect = false;
        events_.push_back({r, s.task, cpi, z, "clear"});
      }
    }
  }
}

bool HealthMonitor::was_quarantined(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_[static_cast<size_t>(rank)].quarantine_count > 0;
}

void HealthMonitor::on_revived(int rank) {
  const auto i = static_cast<size_t>(rank);
  std::lock_guard<std::mutex> lock(mu_);
  quarantine_flag_[i].store(false, std::memory_order_release);
  revived_[i].store(true, std::memory_order_release);
  RankState& s = state_[i];
  const int keep_count = s.quarantine_count;
  const int keep_task = s.task;
  s = RankState{};
  s.quarantine_count = keep_count;  // the flap budget survives revival
  s.task = keep_task;
}

HealthLedger HealthMonitor::ledger() const {
  std::lock_guard<std::mutex> lock(mu_);
  HealthLedger out;
  for (size_t i = 0; i < state_.size(); ++i) {
    const RankState& s = state_[i];
    if (s.samples == 0 && !s.quarantined && s.quarantine_count == 0) continue;
    RankHealth r;
    r.rank = static_cast<int>(i);
    r.task = s.task;
    r.samples = s.samples;
    r.ewma_service = s.ewma_service;
    r.ewma_queue = s.ewma_queue;
    r.floor_service = floor_of(s);
    r.last_zscore = s.last_zscore;
    r.strikes = s.strikes;
    r.suspect = s.suspect;
    r.quarantined = s.quarantine_count > 0;
    out.ranks.push_back(r);
  }
  out.events = events_;
  out.suspects = suspects_;
  out.quarantines = quarantines_;
  out.flap_suppressed = flap_suppressed_;
  out.vetoed = vetoed_;
  return out;
}

}  // namespace ppstap::core
