// Runtime SIMD dispatch for the hot numerical kernels.
//
// The six hot kernels (Doppler FFT, easy/hard beamforming GEMM, pulse
// compression, the two QR paths) run through function pointers resolved
// once per process from the host CPU and the PPSTAP_SIMD knob:
//
//   PPSTAP_SIMD=auto    (default) AVX2+FMA when the CPU has both, else scalar
//   PPSTAP_SIMD=avx2    force the AVX2 path; throws if the CPU lacks it
//   PPSTAP_SIMD=scalar  force the guaranteed-portable fallback
//
// The scalar path executes the same blocked algorithms with plain
// std::complex arithmetic in the same accumulation order, so a forced-scalar
// run reproduces the pre-SIMD numerics; the AVX2 path contracts multiply-add
// pairs into FMAs, which changes low-order bits (see DESIGN §13 for the
// vector-aware tolerance policy the ABFT invariants use).
#pragma once

#include "common/types.hpp"

namespace ppstap::kernels {

enum class SimdLevel { kScalar = 0, kAvx2 = 1 };

/// Static facts about the host and how the active level was chosen.
struct SimdInfo {
  SimdLevel level = SimdLevel::kScalar;  ///< active dispatch level
  const char* level_name = "scalar";     ///< "scalar" | "avx2"
  const char* source = "auto";           ///< "auto" | "env" | "forced"
  bool cpu_avx2 = false;                 ///< host supports AVX2
  bool cpu_fma = false;                  ///< host supports FMA3
  bool compiled_avx2 = false;            ///< AVX2 TU compiled into this build
  int lane_floats = 1;                   ///< f32 lanes per vector op
};

/// The process-wide dispatch state, resolved on first use from cpuid and
/// PPSTAP_SIMD (throws ppstap::Error on a garbage value, or on
/// PPSTAP_SIMD=avx2 when the host or build lacks AVX2+FMA).
const SimdInfo& simd_info();

inline SimdLevel simd_level() { return simd_info().level; }

/// True when this host and build can run the AVX2 path at all.
bool avx2_available();

/// Re-point the dispatch tables at `level` (benches/tests interleave scalar
/// and AVX2 measurements of the same build). Throws when the level is not
/// available. Not thread-safe against concurrently running kernels; call
/// between pipeline runs only. simd_info().source becomes "forced".
void force_simd_level(SimdLevel level);

/// Effective intra-rank worker count for one kernel invocation: the
/// configured StapParams::intra_task_threads unless it is the default 1 and
/// PPSTAP_KERNEL_THREADS asks for more (0/unset = keep configured value).
index_t kernel_threads(index_t configured);

}  // namespace ppstap::kernels
