#include "kernels/dispatch.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/check.hpp"
#include "common/env.hpp"
#include "kernels/kernels.hpp"

namespace ppstap::kernels {

namespace {

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool cpu_supports_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

struct State {
  SimdInfo info;
  std::atomic<const detail::KernelOps*> active{nullptr};
};

void apply_level(State& s, SimdLevel level) {
  s.info.level = level;
  if (level == SimdLevel::kAvx2) {
#if PPSTAP_HAVE_AVX2
    s.info.level_name = "avx2";
    s.info.lane_floats = 8;
    s.active.store(&detail::avx2_ops(), std::memory_order_release);
    return;
#else
    PPSTAP_REQUIRE(false, "AVX2 kernels not compiled into this build");
#endif
  }
  s.info.level_name = "scalar";
  s.info.lane_floats = 1;
  s.active.store(&detail::scalar_ops(), std::memory_order_release);
}

State& state() {
  static State s;
  static const bool init = [] {
    s.info.cpu_avx2 = cpu_supports_avx2();
    s.info.cpu_fma = cpu_supports_fma();
    s.info.compiled_avx2 = PPSTAP_HAVE_AVX2 != 0;
    const bool available =
        s.info.cpu_avx2 && s.info.cpu_fma && s.info.compiled_avx2;
    const auto choice =
        parse_env_choice("PPSTAP_SIMD", {"auto", "avx2", "scalar"});
    SimdLevel level = available ? SimdLevel::kAvx2 : SimdLevel::kScalar;
    s.info.source = "auto";
    if (choice.has_value() && *choice == 1) {
      PPSTAP_REQUIRE(available,
                     "PPSTAP_SIMD=avx2 but this host or build has no "
                     "AVX2+FMA path");
      level = SimdLevel::kAvx2;
      s.info.source = "env";
    } else if (choice.has_value() && *choice == 2) {
      level = SimdLevel::kScalar;
      s.info.source = "env";
    }
    apply_level(s, level);
    return true;
  }();
  (void)init;
  return s;
}

}  // namespace

const SimdInfo& simd_info() { return state().info; }

bool avx2_available() {
  const SimdInfo& i = simd_info();
  return i.cpu_avx2 && i.cpu_fma && i.compiled_avx2;
}

void force_simd_level(SimdLevel level) {
  State& s = state();
  if (level == SimdLevel::kAvx2)
    PPSTAP_REQUIRE(avx2_available(),
                   "cannot force AVX2 kernels: host or build lacks them");
  apply_level(s, level);
  s.info.source = "forced";
}

index_t kernel_threads(index_t configured) {
  if (configured != 1) return configured;
  const auto env = parse_env_int("PPSTAP_KERNEL_THREADS", 0, 1024);
  if (env.has_value() && *env > 0) return static_cast<index_t>(*env);
  return configured;
}

namespace detail {

const KernelOps& ops() {
  return *state().active.load(std::memory_order_acquire);
}

#if !PPSTAP_HAVE_AVX2
// Link stub for builds without the AVX2 translation unit, so callers that
// probe both tables (the equivalence tests) still link; reaching it is a
// caller bug — every avx2_ops() use must sit behind avx2_available().
const KernelOps& avx2_ops() {
  PPSTAP_REQUIRE(false, "AVX2 kernels not compiled into this build");
}
#endif

}  // namespace detail

// ---------------------------------------------------------------------------
// Beamforming panel GEMM (ISA-independent blocking; the per-panel micro-
// kernel comes from the active dispatch table).
//
// out(m, kk) = sum_j conj(w(j, m)) x(kk, j). The input x is K x J row-major
// (channel unit stride — the redistribution layout), but the vector-friendly
// direction is along kk, so each K-panel of x is packed transposed into an
// L1-resident J x kKc scratch whose rows are unit stride in kk. The packing
// cost is O(J kKc) against O(M J kKc) multiply-accumulates per panel.
// ---------------------------------------------------------------------------
void beamform_gemm(const cfloat* w, index_t ldw, index_t j_channels,
                   index_t m_active, const cfloat* x, index_t ldx, index_t k,
                   cfloat* out, index_t ldc) {
  if (k <= 0 || m_active <= 0) return;
  // Panel width: 256 complex floats = 2 KB per channel row, so a 32-channel
  // (hard staggered) panel is 64 KB — L2-resident, with each active row
  // streamed through L1 M times.
  constexpr index_t kKc = 256;
  std::vector<cfloat> cw(static_cast<size_t>(m_active * j_channels));
  for (index_t m = 0; m < m_active; ++m)
    for (index_t j = 0; j < j_channels; ++j)
      cw[static_cast<size_t>(m * j_channels + j)] =
          std::conj(w[static_cast<size_t>(j * ldw + m)]);
  std::vector<cfloat> xt(static_cast<size_t>(j_channels * kKc));
  for (index_t k0 = 0; k0 < k; k0 += kKc) {
    const index_t kc = std::min(kKc, k - k0);
    for (index_t j = 0; j < j_channels; ++j) {
      cfloat* row = xt.data() + j * kKc;
      const cfloat* src = x + (k0 * ldx + j);
      for (index_t c = 0; c < kc; ++c) row[c] = src[static_cast<size_t>(c * ldx)];
    }
    detail::ops().bf_panel(cw.data(), j_channels, j_channels, m_active,
                           xt.data(), kKc, kc, out + k0, ldc);
  }
}

}  // namespace ppstap::kernels
