// AVX2+FMA kernel implementations.
//
// Compiled with -mavx2 -mfma as its own translation unit; nothing here runs
// unless dispatch.cpp selects this table after verifying cpuid, so the rest
// of the library stays free of AVX2 code paths.
//
// Complex layout is interleaved (re, im) pairs, four complex floats per ymm.
// The complex product a*b uses the fmaddsub idiom:
//   ar = dup even lanes of a, ai = dup odd lanes of a, bs = b with re/im
//   swapped per pair; fmaddsub(ar, b, ai*bs) yields
//   even: ar*br - ai*bi, odd: ar*bi + ai*br.
// FMA contraction makes low-order bits differ from the scalar table; every
// consumer tolerance is vector-aware (DESIGN §13).
#include <immintrin.h>

#include "kernels/kernels.hpp"

namespace ppstap::kernels::detail {

namespace {

inline const float* fp(const cfloat* p) {
  return reinterpret_cast<const float*>(p);
}
inline float* fp(cfloat* p) { return reinterpret_cast<float*>(p); }

// b with re/im swapped within each complex pair.
inline __m256 swap_pairs(__m256 v) { return _mm256_permute_ps(v, 0xB1); }

// (ar + i ai) * b for broadcast scalars ar, ai and packed b.
inline __m256 cmul_broadcast(__m256 ar, __m256 ai, __m256 b) {
  return _mm256_fmaddsub_ps(ar, b, _mm256_mul_ps(ai, swap_pairs(b)));
}

void axpy_avx2(cfloat a, const cfloat* x, cfloat* y, index_t n) {
  const __m256 ar = _mm256_set1_ps(a.real());
  const __m256 ai = _mm256_set1_ps(a.imag());
  index_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 xv = _mm256_loadu_ps(fp(x + i));
    const __m256 yv = _mm256_loadu_ps(fp(y + i));
    _mm256_storeu_ps(fp(y + i), _mm256_add_ps(yv, cmul_broadcast(ar, ai, xv)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void mul_inplace_avx2(cfloat* a, const cfloat* b, index_t n) {
  index_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 av = _mm256_loadu_ps(fp(a + i));
    const __m256 bv = _mm256_loadu_ps(fp(b + i));
    const __m256 ar = _mm256_moveldup_ps(av);
    const __m256 ai = _mm256_movehdup_ps(av);
    _mm256_storeu_ps(fp(a + i), cmul_broadcast(ar, ai, bv));
  }
  for (; i < n; ++i) a[i] *= b[i];
}

void abs_sq_avx2(const cfloat* x, float* out, index_t n) {
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x0 = _mm256_loadu_ps(fp(x + i));
    const __m256 x1 = _mm256_loadu_ps(fp(x + i + 4));
    // hadd interleaves 128-bit lanes of its two inputs; the permute of
    // 64-bit groups (0, 2, 1, 3) restores ascending element order.
    const __m256 s = _mm256_hadd_ps(_mm256_mul_ps(x0, x0),
                                    _mm256_mul_ps(x1, x1));
    const __m256d r = _mm256_permute4x64_pd(_mm256_castps_pd(s), 0xD8);
    _mm256_storeu_ps(out + i, _mm256_castpd_ps(r));
  }
  for (; i < n; ++i)
    out[i] = x[i].real() * x[i].real() + x[i].imag() * x[i].imag();
}

double energy_avx2(const cfloat* x, index_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  index_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 xv = _mm256_loadu_ps(fp(x + i));
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(xv));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(xv, 1));
    acc0 = _mm256_fmadd_pd(lo, lo, acc0);
    acc1 = _mm256_fmadd_pd(hi, hi, acc1);
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  const __m128d sum2 =
      _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  double total = _mm_cvtsd_f64(_mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2)));
  for (; i < n; ++i) {
    total += static_cast<double>(x[i].real()) * x[i].real() +
             static_cast<double>(x[i].imag()) * x[i].imag();
  }
  return total;
}

void fft_stage_avx2(cfloat* data, index_t n, index_t len, const cfloat* tw,
                    bool conj_tw) {
  const index_t half = len / 2;
  // XORing (+0, -0) per pair conjugates the packed twiddles.
  const __m256 conj_mask =
      _mm256_setr_ps(0.f, -0.f, 0.f, -0.f, 0.f, -0.f, 0.f, -0.f);
  for (index_t start = 0; start < n; start += len) {
    float* u = fp(data + start);
    float* v = fp(data + start + half);
    index_t k = 0;
    for (; k + 4 <= half; k += 4) {
      __m256 wv = _mm256_loadu_ps(fp(tw + k));
      if (conj_tw) wv = _mm256_xor_ps(wv, conj_mask);
      const __m256 wr = _mm256_moveldup_ps(wv);
      const __m256 wi = _mm256_movehdup_ps(wv);
      const __m256 vv = _mm256_loadu_ps(v + 2 * k);
      const __m256 uv = _mm256_loadu_ps(u + 2 * k);
      const __m256 t = cmul_broadcast(wr, wi, vv);
      _mm256_storeu_ps(u + 2 * k, _mm256_add_ps(uv, t));
      _mm256_storeu_ps(v + 2 * k, _mm256_sub_ps(uv, t));
    }
    for (; k < half; ++k) {
      cfloat w = tw[k];
      if (conj_tw) w = std::conj(w);
      cfloat& uu = data[start + k];
      cfloat& vv = data[start + k + half];
      const cfloat t = vv * w;
      vv = uu - t;
      uu = uu + t;
    }
  }
}

void fft_stage2_avx2(cfloat* data, index_t n) {
  index_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 x = _mm256_loadu_ps(fp(data + i));
    // Swap the two complex pairs within each 128-bit lane -> [b, a].
    const __m256 xp = _mm256_permute_ps(x, _MM_SHUFFLE(1, 0, 3, 2));
    const __m256 s = _mm256_add_ps(x, xp);   // [a+b, b+a] per lane
    const __m256 d = _mm256_sub_ps(xp, x);   // [b-a, a-b] per lane
    // Keep a+b in the first pair of each lane, a-b in the second.
    _mm256_storeu_ps(fp(data + i), _mm256_blend_ps(s, d, 0xCC));
  }
  for (; i < n; i += 2) {
    const cfloat u = data[i];
    const cfloat t = data[i + 1];
    data[i] = u + t;
    data[i + 1] = u - t;
  }
}

void fft_stage4_avx2(cfloat* data, index_t n, bool conj_tw) {
  // One ymm holds a whole block [u0 u1 | v0 v1]. t = [v0, -i*v1] forward
  // ([v0, +i*v1] inverse); multiplying by -+i is a re/im swap plus one sign
  // flip, selected by mask.
  const __m256 sgn_fwd =
      _mm256_setr_ps(0.f, 0.f, 0.f, -0.f, 0.f, 0.f, 0.f, -0.f);
  const __m256 sgn_inv =
      _mm256_setr_ps(0.f, 0.f, -0.f, 0.f, 0.f, 0.f, -0.f, 0.f);
  const __m256 sgn = conj_tw ? sgn_inv : sgn_fwd;
  index_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 x = _mm256_loadu_ps(fp(data + i));
    const __m256 uu = _mm256_permute2f128_ps(x, x, 0x00);  // [u0 u1 | u0 u1]
    const __m256 vv = _mm256_permute2f128_ps(x, x, 0x11);  // [v0 v1 | v0 v1]
    const __m256 rot = _mm256_xor_ps(swap_pairs(vv), sgn);
    // Pair 0 of each lane keeps v (t0 = v0); pair 1 takes the rotated v1.
    const __m256 t = _mm256_blend_ps(vv, rot, 0xCC);
    const __m256 s = _mm256_add_ps(uu, t);
    const __m256 d = _mm256_sub_ps(uu, t);
    _mm256_storeu_ps(fp(data + i), _mm256_blend_ps(s, d, 0xF0));
  }
}

template <int MT>
void bf_panel_tile(const cfloat* wrows, index_t ldcw, index_t j_channels,
                   const cfloat* xt, index_t ldxt, index_t k, cfloat* out,
                   index_t ldc) {
  index_t c = 0;
  for (; c + 4 <= k; c += 4) {
    __m256 acc[MT];
    for (int m = 0; m < MT; ++m) acc[m] = _mm256_setzero_ps();
    for (index_t j = 0; j < j_channels; ++j) {
      const __m256 xv = _mm256_loadu_ps(fp(xt + j * ldxt + c));
      const __m256 xs = swap_pairs(xv);
      for (int m = 0; m < MT; ++m) {
        const float* a = fp(wrows + m * ldcw + j);
        const __m256 ar = _mm256_broadcast_ss(a);
        const __m256 ai = _mm256_broadcast_ss(a + 1);
        acc[m] = _mm256_add_ps(
            acc[m], _mm256_fmaddsub_ps(ar, xv, _mm256_mul_ps(ai, xs)));
      }
    }
    for (int m = 0; m < MT; ++m)
      _mm256_storeu_ps(fp(out + m * ldc + c), acc[m]);
  }
  for (; c < k; ++c) {
    for (int m = 0; m < MT; ++m) {
      cfloat s{};
      const cfloat* wrow = wrows + m * ldcw;
      for (index_t j = 0; j < j_channels; ++j) s += wrow[j] * xt[j * ldxt + c];
      out[m * ldc + c] = s;
    }
  }
}

void bf_panel_avx2(const cfloat* conj_w, index_t ldcw, index_t j_channels,
                   index_t m_active, const cfloat* xt, index_t ldxt, index_t k,
                   cfloat* out, index_t ldc) {
  index_t m0 = 0;
  for (; m0 + 4 <= m_active; m0 += 4)
    bf_panel_tile<4>(conj_w + m0 * ldcw, ldcw, j_channels, xt, ldxt, k,
                     out + m0 * ldc, ldc);
  switch (m_active - m0) {
    case 3:
      bf_panel_tile<3>(conj_w + m0 * ldcw, ldcw, j_channels, xt, ldxt, k,
                       out + m0 * ldc, ldc);
      break;
    case 2:
      bf_panel_tile<2>(conj_w + m0 * ldcw, ldcw, j_channels, xt, ldxt, k,
                       out + m0 * ldc, ldc);
      break;
    case 1:
      bf_panel_tile<1>(conj_w + m0 * ldcw, ldcw, j_channels, xt, ldxt, k,
                       out + m0 * ldc, ldc);
      break;
    default:
      break;
  }
}

// Eight independent ymm FMA chains (the latency-throughput product of a
// 2-port, ~4-cycle FMA unit): measures the core's fused multiply-add peak.
// 8 accumulators x 8 lanes x 2 flops = 128 flops per iteration.
void fma_probe_avx2(index_t iters, float* sink) {
  __m256 a0 = _mm256_set1_ps(1.0f), a1 = _mm256_set1_ps(1.1f);
  __m256 a2 = _mm256_set1_ps(1.2f), a3 = _mm256_set1_ps(1.3f);
  __m256 a4 = _mm256_set1_ps(1.4f), a5 = _mm256_set1_ps(1.5f);
  __m256 a6 = _mm256_set1_ps(1.6f), a7 = _mm256_set1_ps(1.7f);
  const __m256 m = _mm256_set1_ps(0.999999f);
  const __m256 c = _mm256_set1_ps(1e-7f);
  for (index_t i = 0; i < iters; ++i) {
    a0 = _mm256_fmadd_ps(a0, m, c);
    a1 = _mm256_fmadd_ps(a1, m, c);
    a2 = _mm256_fmadd_ps(a2, m, c);
    a3 = _mm256_fmadd_ps(a3, m, c);
    a4 = _mm256_fmadd_ps(a4, m, c);
    a5 = _mm256_fmadd_ps(a5, m, c);
    a6 = _mm256_fmadd_ps(a6, m, c);
    a7 = _mm256_fmadd_ps(a7, m, c);
  }
  const __m256 s = _mm256_add_ps(
      _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3)),
      _mm256_add_ps(_mm256_add_ps(a4, a5), _mm256_add_ps(a6, a7)));
  float tmp[8];
  _mm256_storeu_ps(tmp, s);
  for (float v : tmp) *sink += v;
}

}  // namespace

const KernelOps& avx2_ops() {
  static const KernelOps ops = {
      axpy_avx2,      mul_inplace_avx2, abs_sq_avx2,     energy_avx2,
      fft_stage_avx2, fft_stage2_avx2,  fft_stage4_avx2, bf_panel_avx2,
      fma_probe_avx2, 128,
  };
  return ops;
}

}  // namespace ppstap::kernels::detail
