// Guaranteed-portable kernel implementations.
//
// These run the same blocked algorithms as the AVX2 translation unit but in
// plain std::complex arithmetic, keeping the accumulation order of the
// pre-SIMD code (ascending j in the beamform sums, ascending butterfly index
// in the FFT stages), so a forced-scalar run reproduces the legacy numerics
// on any target the compiler supports.
#include "kernels/kernels.hpp"

namespace ppstap::kernels::detail {

namespace {

void axpy_scalar(cfloat a, const cfloat* x, cfloat* y, index_t n) {
  for (index_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void mul_inplace_scalar(cfloat* a, const cfloat* b, index_t n) {
  for (index_t i = 0; i < n; ++i) a[i] *= b[i];
}

void abs_sq_scalar(const cfloat* x, float* out, index_t n) {
  for (index_t i = 0; i < n; ++i)
    out[i] = x[i].real() * x[i].real() + x[i].imag() * x[i].imag();
}

double energy_scalar(const cfloat* x, index_t n) {
  double acc = 0.0;
  for (index_t i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i].real()) * x[i].real() +
           static_cast<double>(x[i].imag()) * x[i].imag();
  }
  return acc;
}

void fft_stage_scalar(cfloat* data, index_t n, index_t len, const cfloat* tw,
                      bool conj_tw) {
  const index_t half = len / 2;
  for (index_t start = 0; start < n; start += len) {
    for (index_t k = 0; k < half; ++k) {
      cfloat w = tw[k];
      if (conj_tw) w = std::conj(w);
      cfloat& u = data[start + k];
      cfloat& v = data[start + k + half];
      const cfloat t = v * w;
      v = u - t;
      u = u + t;
    }
  }
}

void fft_stage2_scalar(cfloat* data, index_t n) {
  // w = 1 exactly, so t = v (finite values; multiplication by (1, 0) is
  // exact apart from the sign of a zero imaginary part).
  for (index_t i = 0; i < n; i += 2) {
    const cfloat u = data[i];
    const cfloat t = data[i + 1];
    data[i] = u + t;
    data[i + 1] = u - t;
  }
}

void fft_stage4_scalar(cfloat* data, index_t n, bool conj_tw) {
  // Twiddles are {1, -i} forward and {1, +i} inverse; multiplying by +/-i is
  // an exact swap-and-negate, matching the generic complex product on finite
  // inputs.
  for (index_t start = 0; start < n; start += 4) {
    cfloat& u0 = data[start];
    cfloat& u1 = data[start + 1];
    cfloat& v0 = data[start + 2];
    cfloat& v1 = data[start + 3];
    const cfloat t0 = v0;
    const cfloat t1 = conj_tw ? cfloat(-v1.imag(), v1.real())
                              : cfloat(v1.imag(), -v1.real());
    v0 = u0 - t0;
    u0 = u0 + t0;
    v1 = u1 - t1;
    u1 = u1 + t1;
  }
}

void bf_panel_scalar(const cfloat* conj_w, index_t ldcw, index_t j_channels,
                     index_t m_active, const cfloat* xt, index_t ldxt,
                     index_t k, cfloat* out, index_t ldc) {
  for (index_t m = 0; m < m_active; ++m) {
    cfloat* o = out + m * ldc;
    for (index_t c = 0; c < k; ++c) o[c] = cfloat{};
    const cfloat* wrow = conj_w + m * ldcw;
    for (index_t j = 0; j < j_channels; ++j) {
      const cfloat a = wrow[j];
      const cfloat* xrow = xt + j * ldxt;
      for (index_t c = 0; c < k; ++c) o[c] += a * xrow[c];
    }
  }
}

// Eight independent scalar multiply-add chains: enough to cover the FPU
// latency-throughput product on any recent core, so the measurement is the
// scalar pipe's throughput, not one chain's latency. 16 flops per iter.
void fma_probe_scalar(index_t iters, float* sink) {
  float a0 = 1.0f, a1 = 1.1f, a2 = 1.2f, a3 = 1.3f;
  float a4 = 1.4f, a5 = 1.5f, a6 = 1.6f, a7 = 1.7f;
  const float m = 0.999999f, c = 1e-7f;
  for (index_t i = 0; i < iters; ++i) {
    a0 = a0 * m + c;
    a1 = a1 * m + c;
    a2 = a2 * m + c;
    a3 = a3 * m + c;
    a4 = a4 * m + c;
    a5 = a5 * m + c;
    a6 = a6 * m + c;
    a7 = a7 * m + c;
  }
  *sink += a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7;
}

}  // namespace

const KernelOps& scalar_ops() {
  static const KernelOps ops = {
      axpy_scalar,      mul_inplace_scalar, abs_sq_scalar,
      energy_scalar,    fft_stage_scalar,   fft_stage2_scalar,
      fft_stage4_scalar, bf_panel_scalar,   fma_probe_scalar,
      16,
  };
  return ops;
}

}  // namespace ppstap::kernels::detail
