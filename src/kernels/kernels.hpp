// Vector primitives behind the hot STAP kernels.
//
// Every function operates on contiguous single-precision complex data (the
// CPI sample type) and dispatches through a per-process table selected by
// dispatch.hpp: an AVX2+FMA implementation compiled in its own translation
// unit with -mavx2 -mfma, and a portable scalar implementation that keeps
// the exact accumulation order the pre-SIMD code used. Callers pick the
// blocking; these primitives supply the inner loops.
#pragma once

#include "common/types.hpp"

namespace ppstap::kernels {

/// y[i] += a * x[i]. The caller conjugates `a` when it needs conj(a)*x —
/// the kernel itself never conjugates.
void cf_axpy(cfloat a, const cfloat* x, cfloat* y, index_t n);

/// a[i] *= b[i] (pointwise complex multiply — the matched-filter spectrum
/// product of pulse compression).
void cf_mul_inplace(cfloat* a, const cfloat* b, index_t n);

/// out[i] = |x[i]|^2 (move to the post-detection power domain).
void cf_abs_sq(const cfloat* x, float* out, index_t n);

/// sum_i |x[i]|^2 accumulated in double (ABFT energy probes).
double cf_energy(const cfloat* x, index_t n);

/// One radix-2 butterfly stage of length `len` >= 8 over all n/len blocks:
/// for each block and k < len/2, (u, v) -> (u + w v, u - w v) with
/// w = tw[k] (conjugated when `conj_tw`, i.e. the inverse transform).
void fft_stage(cfloat* data, index_t n, index_t len, const cfloat* tw,
               bool conj_tw);

/// The len == 2 stage (w = 1): pairwise (a, b) -> (a + b, a - b).
void fft_stage2(cfloat* data, index_t n);

/// The len == 4 stage (w in {1, -i}, conjugated when `conj_tw`). Together
/// with fft_stage2 this forms the vector-specialized radix-4 bottom of the
/// transform where the generic stage has too few butterflies per block.
void fft_stage4(cfloat* data, index_t n, bool conj_tw);

/// Beamforming panel GEMM: out(m, kk) = sum_j conj(w(j, m)) * x(kk, j) for
/// m < m_active, kk < k. `w` is J x M row-major with leading dimension
/// `ldw` (= M), `x` is K x J row-major with leading dimension `ldx` (= J),
/// `out` is M x K row-major with leading dimension `ldc` (>= k; the hard
/// beamformer writes one range segment of a wider row). Internally packs
/// x^T into L1-resident panels and register-tiles the beam dimension; the
/// per-output accumulation over j is ascending in both paths.
void beamform_gemm(const cfloat* w, index_t ldw, index_t j_channels,
                   index_t m_active, const cfloat* x, index_t ldx, index_t k,
                   cfloat* out, index_t ldc);

namespace detail {

/// Per-ISA implementation table. `beamform_gemm` stays common (blocking and
/// packing are ISA-independent); it calls back into the table's axpy-style
/// micro-kernel.
struct KernelOps {
  void (*axpy)(cfloat, const cfloat*, cfloat*, index_t);
  void (*mul_inplace)(cfloat*, const cfloat*, index_t);
  void (*abs_sq)(const cfloat*, float*, index_t);
  double (*energy)(const cfloat*, index_t);
  void (*fft_stage)(cfloat*, index_t, index_t, const cfloat*, bool);
  void (*fft_stage2)(cfloat*, index_t);
  void (*fft_stage4)(cfloat*, index_t, bool);
  /// Register-tiled micro-kernel behind beamform_gemm: for each of
  /// `m_active` beams, out_rows[m][0..k) = sum_j conj_w[m][j] * xt[j][0..k)
  /// where xt rows are the packed x^T panel with leading dimension ldxt.
  void (*bf_panel)(const cfloat* conj_w, index_t ldcw, index_t j_channels,
                   index_t m_active, const cfloat* xt, index_t ldxt,
                   index_t k, cfloat* out, index_t ldc);
  /// Roofline compute-peak probe: `iters` rounds of independent
  /// register-resident multiply-adds, result folded into *sink so the
  /// chains cannot be optimized away. The caller times it; each iteration
  /// performs `fma_probe_flops_per_iter` arithmetic operations (mul and
  /// add counted separately, summed over lanes and accumulators).
  void (*fma_probe)(index_t iters, float* sink);
  int fma_probe_flops_per_iter;
};

const KernelOps& scalar_ops();
const KernelOps& avx2_ops();  // valid only when dispatch says AVX2 exists
const KernelOps& ops();       // active table (see dispatch.hpp)

}  // namespace detail

inline void cf_axpy(cfloat a, const cfloat* x, cfloat* y, index_t n) {
  detail::ops().axpy(a, x, y, n);
}
inline void cf_mul_inplace(cfloat* a, const cfloat* b, index_t n) {
  detail::ops().mul_inplace(a, b, n);
}
inline void cf_abs_sq(const cfloat* x, float* out, index_t n) {
  detail::ops().abs_sq(x, out, n);
}
inline double cf_energy(const cfloat* x, index_t n) {
  return detail::ops().energy(x, n);
}
inline void fft_stage(cfloat* data, index_t n, index_t len, const cfloat* tw,
                      bool conj_tw) {
  detail::ops().fft_stage(data, n, len, tw, conj_tw);
}
inline void fft_stage2(cfloat* data, index_t n) {
  detail::ops().fft_stage2(data, n);
}
inline void fft_stage4(cfloat* data, index_t n, bool conj_tw) {
  detail::ops().fft_stage4(data, n, conj_tw);
}

/// Compute-peak probe of the active dispatch table (see KernelOps).
inline void fma_probe(index_t iters, float* sink) {
  detail::ops().fma_probe(iters, sink);
}
inline int fma_probe_flops_per_iter() {
  return detail::ops().fma_probe_flops_per_iter;
}

}  // namespace ppstap::kernels
