#include "cube/io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace ppstap::cube {

namespace {

constexpr char kMagic[4] = {'P', 'P', 'S', 'C'};

template <typename T>
constexpr std::uint32_t dtype_code() {
  if constexpr (std::is_same_v<T, cfloat>) return 1;
  if constexpr (std::is_same_v<T, float>) return 2;
  if constexpr (std::is_same_v<T, cdouble>) return 3;
  if constexpr (std::is_same_v<T, double>) return 4;
}

}  // namespace

template <typename T>
void write_cube(std::ostream& os, const Cube<T>& c) {
  os.write(kMagic, sizeof(kMagic));
  const std::uint32_t dtype = dtype_code<T>();
  os.write(reinterpret_cast<const char*>(&dtype), sizeof(dtype));
  for (int d = 0; d < 3; ++d) {
    const std::int64_t ext = c.extent(d);
    os.write(reinterpret_cast<const char*>(&ext), sizeof(ext));
  }
  os.write(reinterpret_cast<const char*>(c.data()),
           static_cast<std::streamsize>(static_cast<size_t>(c.size()) *
                                        sizeof(T)));
  PPSTAP_REQUIRE(os.good(), "cube write failed");
}

template <typename T>
Cube<T> read_cube(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  PPSTAP_REQUIRE(is.good() && std::memcmp(magic, kMagic, 4) == 0,
                 "not a ppstap cube stream");
  std::uint32_t dtype = 0;
  is.read(reinterpret_cast<char*>(&dtype), sizeof(dtype));
  PPSTAP_REQUIRE(is.good() && dtype == dtype_code<T>(),
                 "cube element type mismatch");
  std::int64_t ext[3];
  is.read(reinterpret_cast<char*>(ext), sizeof(ext));
  PPSTAP_REQUIRE(is.good() && ext[0] >= 0 && ext[1] >= 0 && ext[2] >= 0,
                 "corrupt cube header");
  Cube<T> c(static_cast<index_t>(ext[0]), static_cast<index_t>(ext[1]),
            static_cast<index_t>(ext[2]));
  is.read(reinterpret_cast<char*>(c.data()),
          static_cast<std::streamsize>(static_cast<size_t>(c.size()) *
                                       sizeof(T)));
  PPSTAP_REQUIRE(is.gcount() == static_cast<std::streamsize>(
                                    static_cast<size_t>(c.size()) *
                                    sizeof(T)),
                 "truncated cube payload");
  return c;
}

template <typename T>
void save_cube(const std::string& path, const Cube<T>& c) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  PPSTAP_REQUIRE(os.is_open(), "cannot open for writing: " + path);
  write_cube(os, c);
}

template <typename T>
Cube<T> load_cube(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PPSTAP_REQUIRE(is.is_open(), "cannot open for reading: " + path);
  return read_cube<T>(is);
}

template void save_cube<cfloat>(const std::string&, const Cube<cfloat>&);
template void save_cube<float>(const std::string&, const Cube<float>&);
template Cube<cfloat> load_cube<cfloat>(const std::string&);
template Cube<float> load_cube<float>(const std::string&);
template void write_cube<cfloat>(std::ostream&, const Cube<cfloat>&);
template void write_cube<float>(std::ostream&, const Cube<float>&);
template Cube<cfloat> read_cube<cfloat>(std::istream&);
template Cube<float> read_cube<float>(std::istream&);

}  // namespace ppstap::cube
