#include "cube/cube.hpp"

#include <algorithm>

namespace ppstap::cube {

template <typename T>
index_t pack_subcube(const Cube<T>& c, std::array<index_t, 3> lo,
                     std::array<index_t, 3> len, std::span<T> out) {
  for (int d = 0; d < 3; ++d) {
    PPSTAP_REQUIRE(lo[static_cast<size_t>(d)] >= 0 &&
                       lo[static_cast<size_t>(d)] +
                               len[static_cast<size_t>(d)] <=
                           c.extent(d),
                   "subcube out of bounds");
  }
  const index_t total = len[0] * len[1] * len[2];
  PPSTAP_REQUIRE(static_cast<index_t>(out.size()) >= total,
                 "pack buffer too small");
  T* dst = out.data();
  for (index_t i = 0; i < len[0]; ++i)
    for (index_t j = 0; j < len[1]; ++j) {
      const T* src = &c.at(lo[0] + i, lo[1] + j, lo[2]);
      std::copy_n(src, static_cast<size_t>(len[2]), dst);
      dst += len[2];
    }
  return total;
}

template <typename T>
void unpack_subcube(Cube<T>& c, std::array<index_t, 3> lo,
                    std::array<index_t, 3> len, std::span<const T> in) {
  for (int d = 0; d < 3; ++d) {
    PPSTAP_REQUIRE(lo[static_cast<size_t>(d)] >= 0 &&
                       lo[static_cast<size_t>(d)] +
                               len[static_cast<size_t>(d)] <=
                           c.extent(d),
                   "subcube out of bounds");
  }
  const index_t total = len[0] * len[1] * len[2];
  PPSTAP_REQUIRE(static_cast<index_t>(in.size()) >= total,
                 "unpack buffer too small");
  const T* src = in.data();
  for (index_t i = 0; i < len[0]; ++i)
    for (index_t j = 0; j < len[1]; ++j) {
      T* dst = &c.at(lo[0] + i, lo[1] + j, lo[2]);
      std::copy_n(src, static_cast<size_t>(len[2]), dst);
      src += len[2];
    }
}

template <typename T>
Cube<T> permute(const Cube<T>& in, std::array<int, 3> perm) {
  bool seen[3] = {false, false, false};
  for (int d : perm) {
    PPSTAP_REQUIRE(d >= 0 && d < 3 && !seen[d],
                   "perm must be a permutation of {0,1,2}");
    seen[d] = true;
  }
  Cube<T> out(in.extent(perm[0]), in.extent(perm[1]), in.extent(perm[2]));
  std::array<index_t, 3> idx{};
  for (index_t a = 0; a < out.extent(0); ++a)
    for (index_t b = 0; b < out.extent(1); ++b)
      for (index_t c = 0; c < out.extent(2); ++c) {
        idx[static_cast<size_t>(perm[0])] = a;
        idx[static_cast<size_t>(perm[1])] = b;
        idx[static_cast<size_t>(perm[2])] = c;
        out.at(a, b, c) = in.at(idx[0], idx[1], idx[2]);
      }
  return out;
}

template index_t pack_subcube<cfloat>(const Cube<cfloat>&,
                                      std::array<index_t, 3>,
                                      std::array<index_t, 3>,
                                      std::span<cfloat>);
template index_t pack_subcube<float>(const Cube<float>&,
                                     std::array<index_t, 3>,
                                     std::array<index_t, 3>, std::span<float>);
template void unpack_subcube<cfloat>(Cube<cfloat>&, std::array<index_t, 3>,
                                     std::array<index_t, 3>,
                                     std::span<const cfloat>);
template void unpack_subcube<float>(Cube<float>&, std::array<index_t, 3>,
                                    std::array<index_t, 3>,
                                    std::span<const float>);
template Cube<cfloat> permute<cfloat>(const Cube<cfloat>&, std::array<int, 3>);
template Cube<float> permute<float>(const Cube<float>&, std::array<int, 3>);

}  // namespace ppstap::cube
