// 3-D data cubes.
//
// A CPI arrives as a K x J x N complex cube (range cells x channels x
// pulses) that is "corner turned" so pulses are unit stride — exactly the
// layout the paper's special interface boards produce to speed Doppler
// processing. Every STAP stage consumes and produces cubes; which dimension
// is unit stride and which dimension is partitioned across a task's nodes is
// the crux of the paper's redistribution analysis (Figs. 5-9).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ppstap::cube {

/// Dense 3-D array, row-major: element (i, j, k) lives at i*n1*n2 + j*n2 + k,
/// so dimension 2 is unit stride.
template <typename T>
class Cube {
 public:
  Cube() : n_{0, 0, 0} {}
  Cube(index_t n0, index_t n1, index_t n2) : n_{n0, n1, n2} {
    PPSTAP_REQUIRE(n0 >= 0 && n1 >= 0 && n2 >= 0,
                   "cube extents must be nonnegative");
    data_.assign(static_cast<size_t>(n0 * n1 * n2), T{});
  }

  index_t extent(int dim) const { return n_[static_cast<size_t>(dim)]; }
  index_t size() const { return n_[0] * n_[1] * n_[2]; }

  T& at(index_t i, index_t j, index_t k) {
    return data_[static_cast<size_t>((i * n_[1] + j) * n_[2] + k)];
  }
  const T& at(index_t i, index_t j, index_t k) const {
    return data_[static_cast<size_t>((i * n_[1] + j) * n_[2] + k)];
  }

  /// The unit-stride line (i, j, *) — e.g. all pulses of one range/channel.
  std::span<T> line(index_t i, index_t j) {
    return {data_.data() + (i * n_[1] + j) * n_[2],
            static_cast<size_t>(n_[2])};
  }
  std::span<const T> line(index_t i, index_t j) const {
    return {data_.data() + (i * n_[1] + j) * n_[2],
            static_cast<size_t>(n_[2])};
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::array<index_t, 3> extents() const { return n_; }

  bool same_shape(const Cube& o) const { return n_ == o.n_; }

 private:
  std::array<index_t, 3> n_;
  std::vector<T> data_;
};

using CpiCube = Cube<cfloat>;   // raw & Doppler-filtered data
using RealCube = Cube<float>;   // post-detection power domain

/// Copy the subcube starting at `lo` with extents `len` into a contiguous
/// buffer (row-major in the subcube's own extents). Returns the number of
/// elements written. This is the "data collection" step the paper performs
/// before inter-task communication; its cost (non-contiguous reads) is what
/// the paper attributes cache-miss overhead to.
template <typename T>
index_t pack_subcube(const Cube<T>& c, std::array<index_t, 3> lo,
                     std::array<index_t, 3> len, std::span<T> out);

/// Inverse of pack_subcube: scatter a contiguous buffer into the subcube at
/// `lo` with extents `len`.
template <typename T>
void unpack_subcube(Cube<T>& c, std::array<index_t, 3> lo,
                    std::array<index_t, 3> len, std::span<const T> in);

/// Permuted copy: out dims are (extent(perm[0]), extent(perm[1]),
/// extent(perm[2])) and out(i0, i1, i2) = in at the corresponding original
/// indices. perm = {2, 0, 1} turns a K x 2J x N cube into an N x K x 2J cube
/// — the reorganization of paper Fig. 8.
template <typename T>
Cube<T> permute(const Cube<T>& in, std::array<int, 3> perm);

extern template index_t pack_subcube<cfloat>(const Cube<cfloat>&,
                                             std::array<index_t, 3>,
                                             std::array<index_t, 3>,
                                             std::span<cfloat>);
extern template index_t pack_subcube<float>(const Cube<float>&,
                                            std::array<index_t, 3>,
                                            std::array<index_t, 3>,
                                            std::span<float>);
extern template void unpack_subcube<cfloat>(Cube<cfloat>&,
                                            std::array<index_t, 3>,
                                            std::array<index_t, 3>,
                                            std::span<const cfloat>);
extern template void unpack_subcube<float>(Cube<float>&,
                                           std::array<index_t, 3>,
                                           std::array<index_t, 3>,
                                           std::span<const float>);
extern template Cube<cfloat> permute<cfloat>(const Cube<cfloat>&,
                                             std::array<int, 3>);
extern template Cube<float> permute<float>(const Cube<float>&,
                                           std::array<int, 3>);

}  // namespace ppstap::cube
