// Block partitioning of a cube dimension across a task's processor group.
//
// Every task in the paper partitions its working cube along exactly one
// dimension (K for Doppler filtering, N for everything downstream); the
// remainder is spread over the leading parts so loads differ by at most one
// line.
#pragma once

#include <algorithm>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ppstap::cube {

/// Even block partition of `total` items over `parts` owners.
class BlockPartition {
 public:
  BlockPartition() = default;
  BlockPartition(index_t total, index_t parts) : total_(total), parts_(parts) {
    PPSTAP_REQUIRE(total >= 0 && parts >= 1, "invalid partition");
  }

  index_t total() const { return total_; }
  index_t parts() const { return parts_; }

  index_t offset(index_t p) const {
    check_part(p);
    const index_t base = total_ / parts_;
    const index_t rem = total_ % parts_;
    return p * base + (p < rem ? p : rem);
  }

  index_t length(index_t p) const {
    check_part(p);
    const index_t base = total_ / parts_;
    const index_t rem = total_ % parts_;
    return base + (p < rem ? 1 : 0);
  }

  /// Which part owns global index `i`.
  index_t owner(index_t i) const {
    PPSTAP_REQUIRE(i >= 0 && i < total_, "index outside partition");
    const index_t base = total_ / parts_;
    const index_t rem = total_ % parts_;
    const index_t split = rem * (base + 1);
    if (i < split) return i / (base + 1);
    return rem + (i - split) / base;
  }

 private:
  void check_part(index_t p) const {
    PPSTAP_REQUIRE(p >= 0 && p < parts_, "part index out of range");
  }
  index_t total_ = 0;
  index_t parts_ = 1;
};

/// Half-open index range [begin, end) used when describing the intersection
/// of two partitions (what one sender owes one receiver).
struct IndexRange {
  index_t begin = 0;
  index_t end = 0;
  index_t length() const { return end - begin; }
  bool empty() const { return end <= begin; }
};

/// Intersection of a sender's block and a receiver's block of the same
/// global dimension.
inline IndexRange intersect(const BlockPartition& a, index_t pa,
                            const BlockPartition& b, index_t pb) {
  const index_t lo = std::max(a.offset(pa), b.offset(pb));
  const index_t hi = std::min(a.offset(pa) + a.length(pa),
                              b.offset(pb) + b.length(pb));
  return {lo, std::max(lo, hi)};
}

}  // namespace ppstap::cube
