// Binary cube persistence.
//
// Lets users capture intermediate products (raw CPIs, staggered cubes,
// power maps) for offline analysis, and feeds recorded data back into the
// chain in place of the synthetic generator. Format: an 8-byte magic+dtype
// header, three little-endian int64 extents, then the row-major payload.
#pragma once

#include <iosfwd>
#include <string>

#include "cube/cube.hpp"

namespace ppstap::cube {

/// Write `c` to `path`, overwriting. Throws ppstap::Error on I/O failure.
template <typename T>
void save_cube(const std::string& path, const Cube<T>& c);

/// Read a cube of exactly element type T from `path`. Throws on missing
/// file, corrupt header, element-type mismatch, or truncated payload.
template <typename T>
Cube<T> load_cube(const std::string& path);

/// Stream variants (used by the file functions; handy for tests).
template <typename T>
void write_cube(std::ostream& os, const Cube<T>& c);
template <typename T>
Cube<T> read_cube(std::istream& is);

extern template void save_cube<cfloat>(const std::string&,
                                       const Cube<cfloat>&);
extern template void save_cube<float>(const std::string&, const Cube<float>&);
extern template Cube<cfloat> load_cube<cfloat>(const std::string&);
extern template Cube<float> load_cube<float>(const std::string&);
extern template void write_cube<cfloat>(std::ostream&, const Cube<cfloat>&);
extern template void write_cube<float>(std::ostream&, const Cube<float>&);
extern template Cube<cfloat> read_cube<cfloat>(std::istream&);
extern template Cube<float> read_cube<float>(std::istream&);

}  // namespace ppstap::cube
