// Processor-assignment planning tool built on the Paragon machine model —
// the resource-allocation problem at the heart of the paper (§4.1.2, §7.3).
//
// Given a node budget, prints the throughput-optimal and latency-optimal
// assignments found by the greedy search, their simulated Table-7-style
// breakdowns, and the paper's hand assignment at comparable sizes.
//
// Build & run:   ./build/examples/processor_assignment [total_nodes]
#include <cstdio>
#include <cstdlib>

#include "core/machine.hpp"
#include "core/sim.hpp"

using namespace ppstap;
using core::NodeAssignment;

namespace {

void report(const core::PipelineSimulator& sim, const NodeAssignment& a,
            const char* label) {
  const auto r = sim.simulate(a);
  std::printf("\n%s (total %d nodes):\n", label, a.total());
  std::printf("  nodes:");
  for (int t = 0; t < stap::kNumTasks; ++t)
    std::printf(" %s=%d", stap::task_name(static_cast<stap::Task>(t)),
                a.nodes[static_cast<size_t>(t)]);
  std::printf("\n  throughput %.3f CPI/s, latency %.4f s\n",
              r.throughput_measured, r.latency_measured);
}

}  // namespace

int main(int argc, char** argv) {
  const int total = argc > 1 ? std::atoi(argv[1]) : 118;
  if (total < stap::kNumTasks) {
    std::fprintf(stderr, "need at least %d nodes (one per task)\n",
                 stap::kNumTasks);
    return 1;
  }

  core::PipelineSimulator sim(stap::StapParams{},
                              core::ParagonParams::calibrated());

  const auto thr = core::assign_for_throughput(sim, total);
  report(sim, thr, "Throughput-optimal (greedy, feeds the bottleneck)");

  const auto lat = core::assign_for_latency(sim, total, 0.0);
  report(sim, lat, "Latency-optimal (hill-climb from the throughput seed)");

  const auto thr_r = sim.simulate(thr);
  const auto half_floor = 0.75 * thr_r.throughput_measured;
  const auto mixed = core::assign_for_latency(sim, total, half_floor);
  char label[128];
  std::snprintf(label, sizeof(label),
                "Latency-optimal subject to throughput >= %.2f CPI/s",
                half_floor);
  report(sim, mixed, label);

  if (total == 118)
    report(sim, NodeAssignment::paper_case2(), "Paper's hand assignment "
                                               "(Table 7 case 2)");
  if (total == 236)
    report(sim, NodeAssignment::paper_case1(), "Paper's hand assignment "
                                               "(Table 7 case 1)");
  if (total == 59)
    report(sim, NodeAssignment::paper_case3(), "Paper's hand assignment "
                                               "(Table 7 case 3)");
  return 0;
}
