// Quickstart: process a few CPIs of simulated airborne radar data through
// the STAP chain and print the target reports.
//
// This uses the sequential reference pipeline — the simplest entry point to
// the library. See rtmcarm_flight.cpp for the full-size configuration and
// parallel_pipeline.cpp for the multi-rank pipelined execution.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "stap/sequential.hpp"
#include "synth/scenario.hpp"
#include "synth/steering.hpp"

using namespace ppstap;

int main() {
  // --- 1. Configure the STAP algorithm (reduced size for a fast demo) ----
  stap::StapParams params;
  params.num_range = 128;    // K range cells
  params.num_channels = 8;   // J receive channels
  params.num_pulses = 32;    // N pulses (= Doppler bins)
  params.num_beams = 2;      // M receive beams
  params.num_hard = 12;      // Doppler bins near mainbeam clutter
  params.stagger = 2;
  params.num_segments = 3;
  params.easy_samples_per_cpi = 24;
  params.hard_samples_per_segment = 16;
  params.validate();

  // --- 2. Build a scene: clutter ridge + two targets --------------------
  synth::ScenarioParams scene;
  scene.num_range = params.num_range;
  scene.num_channels = params.num_channels;
  scene.num_pulses = params.num_pulses;
  scene.clutter.cnr_db = 40.0;           // strong ground clutter
  scene.chirp_length = 16;               // LFM transmit pulse
  scene.targets.push_back({/*range=*/45, /*doppler=*/10.0 / 32.0,
                           /*azimuth=*/0.0, /*snr_db=*/12.0});
  scene.targets.push_back({/*range=*/90, /*doppler=*/-9.0 / 32.0,
                           /*azimuth=*/0.1, /*snr_db=*/15.0});
  synth::ScenarioGenerator radar(scene);

  // --- 3. Build the processor and stream CPIs through it ----------------
  auto steering = synth::steering_matrix(params.num_channels,
                                         params.num_beams,
                                         params.beam_center_rad,
                                         params.beam_span_rad);
  stap::SequentialStap processor(params, steering, radar.replica());

  std::printf("CPI | detections (bin, beam, range)  [targets at range 45 "
              "bin 10 and range 90 bin 23]\n");
  for (index_t cpi = 0; cpi < 6; ++cpi) {
    auto result = processor.process(radar.generate(cpi));
    std::printf("%3ld |", static_cast<long>(cpi));
    for (const auto& d : result.detections)
      std::printf(" (%ld, %ld, %ld)", static_cast<long>(d.doppler_bin),
                  static_cast<long>(d.beam), static_cast<long>(d.range));
    if (result.detections.empty()) std::printf(" -");
    std::printf("\n");
  }
  std::printf(
      "\nNote: the first CPIs use quiescent (steering-only) weights; the "
      "adaptive weights need a few CPIs of clutter training before the "
      "targets separate cleanly.\n");
  return 0;
}
