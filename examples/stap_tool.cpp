// stap_tool — command-line driver for the library.
//
//   stap_tool run      [--preset=small|paper] [--cpis=N] [--window=NAME]
//                      [--cnr=DB] [--target=range:doppler:azimuth:snr]...
//                      [--out=FILE.csv] [--range-correction]
//       Stream synthetic CPIs through the sequential chain, print per-CPI
//       summaries, optionally write the detection reports as CSV.
//
//   stap_tool simulate [--assignment=d,ew,hw,eb,hb,pc,cf] [--cpis=N]
//       Run the Paragon machine model for one node assignment and print
//       the Table-7-style breakdown.
//
//   stap_tool plan     [--nodes=N] [--objective=throughput|latency]
//                      [--min-throughput=X]
//       Search for a node assignment under the machine model.
//
//   stap_tool pipeline [--assignment=d,ew,hw,eb,hb,pc,cf] [--cpis=N]
//       Run the REAL threaded parallel pipeline (reduced-size scene) and
//       print its measured Figure-10 phase timings.
//
//   stap_tool replay   --input=DIR [--window=NAME] [--out=FILE.csv]
//       Re-process recorded CPI cubes (written by `run --save-cubes=DIR`)
//       through the chain: cube dimensions are taken from the recording,
//       remaining parameters from the small preset.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "core/pipeline.hpp"
#include "core/sim.hpp"
#include "cube/io.hpp"
#include "stap/report.hpp"
#include "stap/sequential.hpp"
#include "synth/scenario.hpp"
#include "synth/steering.hpp"

using namespace ppstap;

namespace {

// --- tiny flag parser ------------------------------------------------------
struct Args {
  std::vector<std::pair<std::string, std::string>> kv;
  bool has(const std::string& key) const {
    for (const auto& [k, v] : kv)
      if (k == key) return true;
    return false;
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    for (const auto& [k, v] : kv)
      if (k == key) return v;
    return fallback;
  }
  std::vector<std::string> all(const std::string& key) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : kv)
      if (k == key) out.push_back(v);
    return out;
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", a.c_str());
      std::exit(2);
    }
    a = a.substr(2);
    const auto eq = a.find('=');
    if (eq == std::string::npos)
      args.kv.emplace_back(a, "");
    else
      args.kv.emplace_back(a.substr(0, eq), a.substr(eq + 1));
  }
  return args;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    out.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

// --- subcommands -------------------------------------------------------------
int cmd_run(const Args& args) {
  stap::StapParams p;
  if (args.get("preset", "small") == "small") {
    p.num_range = 128;
    p.num_channels = 8;
    p.num_pulses = 32;
    p.num_beams = 2;
    p.num_hard = 12;
    p.stagger = 2;
    p.num_segments = 3;
    p.easy_samples_per_cpi = 24;
    p.hard_samples_per_segment = 16;
  }
  p.window = dsp::window_from_name(args.get("window", "hanning"));
  p.range_correction = args.has("range-correction");
  p.validate();

  synth::ScenarioParams sp;
  sp.num_range = p.num_range;
  sp.num_channels = p.num_channels;
  sp.num_pulses = p.num_pulses;
  sp.clutter.cnr_db = std::atof(args.get("cnr", "40").c_str());
  sp.chirp_length = std::min<index_t>(32, p.num_range / 4);
  for (const auto& spec : args.all("target")) {
    const auto f = split(spec, ':');
    if (f.size() != 4) {
      std::fprintf(stderr, "bad --target (want range:doppler:azimuth:snr)\n");
      return 2;
    }
    sp.targets.push_back(synth::Target{std::atol(f[0].c_str()),
                                       std::atof(f[1].c_str()),
                                       std::atof(f[2].c_str()),
                                       std::atof(f[3].c_str())});
  }
  if (sp.targets.empty())
    sp.targets.push_back(synth::Target{p.num_range / 3, 0.3, 0.0, 12.0});

  synth::ScenarioGenerator radar(sp);
  auto steering = synth::steering_matrix(p.num_channels, p.num_beams,
                                         p.beam_center_rad, p.beam_span_rad);
  stap::SequentialStap chain(p, steering, radar.replica());

  const std::string cube_dir = args.get("save-cubes", "");
  if (!cube_dir.empty() && !radar.replica().empty()) {
    // Persist the transmit replica so replay can pulse-compress.
    cube::Cube<cfloat> rep(1, 1,
                           static_cast<index_t>(radar.replica().size()));
    std::copy(radar.replica().begin(), radar.replica().end(),
              rep.line(0, 0).begin());
    cube::save_cube(cube_dir + "/replica.ppsc", rep);
  }
  const index_t n_cpis = std::atol(args.get("cpis", "8").c_str());
  std::vector<std::vector<stap::Detection>> all;
  for (index_t cpi = 0; cpi < n_cpis; ++cpi) {
    const auto data = radar.generate(cpi);
    if (!cube_dir.empty()) {
      char name[64];
      std::snprintf(name, sizeof(name), "/cpi_%04ld.ppsc",
                    static_cast<long>(cpi));
      cube::save_cube(cube_dir + name, data);
    }
    auto result = chain.process(data);
    const auto s = stap::summarize(result.detections);
    std::printf("CPI %3ld: %4ld detections", static_cast<long>(cpi),
                static_cast<long>(s.count));
    if (s.count > 0)
      std::printf("  strongest: bin %ld range %ld (%.1fx threshold)",
                  static_cast<long>(s.strongest_bin),
                  static_cast<long>(s.strongest_range), s.max_margin);
    std::printf("\n");
    all.push_back(std::move(result.detections));
  }

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os.is_open()) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    stap::write_detections_csv(os, all);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

core::NodeAssignment parse_assignment(const Args& args,
                                      core::NodeAssignment fallback);

int cmd_simulate(const Args& args) {
  const auto a = parse_assignment(args, core::NodeAssignment::paper_case2());
  core::PipelineSimulator sim(stap::StapParams{},
                              core::ParagonParams::calibrated());
  const auto r = sim.simulate(a, std::atol(args.get("cpis", "25").c_str()));
  std::printf("%-28s %7s %8s %8s %8s %8s\n", "task", "# nodes", "recv",
              "comp", "send", "total");
  for (int t = 0; t < stap::kNumTasks; ++t) {
    const auto& tt = r.timing[static_cast<size_t>(t)];
    std::printf("%-28s %7d %8.4f %8.4f %8.4f %8.4f\n",
                stap::task_name(static_cast<stap::Task>(t)),
                a.nodes[static_cast<size_t>(t)], tt.recv, tt.comp, tt.send,
                tt.total());
  }
  std::printf("total %d nodes  throughput %.4f CPI/s  latency %.4f s\n",
              a.total(), r.throughput_measured, r.latency_measured);
  return 0;
}

int cmd_plan(const Args& args) {
  const int nodes = std::atoi(args.get("nodes", "118").c_str());
  core::PipelineSimulator sim(stap::StapParams{},
                              core::ParagonParams::calibrated());
  core::NodeAssignment a;
  if (args.get("objective", "throughput") == "latency")
    a = core::assign_for_latency(
        sim, nodes, std::atof(args.get("min-throughput", "0").c_str()));
  else
    a = core::assign_for_throughput(sim, nodes);
  const auto r = sim.simulate(a);
  std::printf("assignment:");
  for (int t = 0; t < stap::kNumTasks; ++t)
    std::printf(" %d", a.nodes[static_cast<size_t>(t)]);
  std::printf("\n(total %d)  throughput %.4f CPI/s  latency %.4f s\n",
              a.total(), r.throughput_measured, r.latency_measured);
  return 0;
}

int cmd_replay(const Args& args) {
  const std::string dir = args.get("input", "");
  if (dir.empty()) {
    std::fprintf(stderr, "replay requires --input=DIR\n");
    return 2;
  }
  // Collect recordings in name order; the replica (if recorded) is loaded
  // separately.
  std::vector<std::string> files;
  std::vector<cfloat> replica;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".ppsc") continue;
    if (entry.path().filename() == "replica.ppsc") {
      const auto rep = cube::load_cube<cfloat>(entry.path().string());
      replica.assign(rep.data(), rep.data() + rep.size());
      continue;
    }
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "no .ppsc cubes in %s\n", dir.c_str());
    return 1;
  }

  // Cube geometry comes from the recording; remaining parameters from the
  // small preset so they are consistent with `run --preset=small`.
  const auto first = cube::load_cube<cfloat>(files.front());
  stap::StapParams p;
  p.num_range = first.extent(0);
  p.num_channels = first.extent(1);
  p.num_pulses = first.extent(2);
  p.num_beams = 2;
  p.num_hard = std::max<index_t>(2, p.num_pulses * 3 / 8) & ~index_t{1};
  p.stagger = 2;
  p.num_segments = 3;
  p.easy_samples_per_cpi = std::min<index_t>(24, p.num_range / 2);
  p.hard_samples_per_segment =
      std::min<index_t>(16, p.num_range / p.num_segments);
  p.window = dsp::window_from_name(args.get("window", "hanning"));
  p.validate();

  auto steering = synth::steering_matrix(p.num_channels, p.num_beams,
                                         p.beam_center_rad, p.beam_span_rad);
  // Pulse-compress with the recorded replica when available; otherwise
  // fall back to detection-only (|.|^2).
  stap::SequentialStap chain(p, steering, replica);
  if (!replica.empty())
    std::printf("using recorded transmit replica (%zu samples)\n",
                replica.size());

  std::vector<std::vector<stap::Detection>> all;
  for (size_t i = 0; i < files.size(); ++i) {
    const auto cpi = cube::load_cube<cfloat>(files[i]);
    auto result = chain.process(cpi);
    const auto s = stap::summarize(result.detections);
    std::printf("%s: %4ld detections", files[i].c_str(),
                static_cast<long>(s.count));
    if (s.count > 0)
      std::printf("  strongest: bin %ld range %ld",
                  static_cast<long>(s.strongest_bin),
                  static_cast<long>(s.strongest_range));
    std::printf("\n");
    all.push_back(std::move(result.detections));
  }
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os.is_open()) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    stap::write_detections_csv(os, all);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

core::NodeAssignment parse_assignment(const Args& args,
                                      core::NodeAssignment fallback) {
  const std::string spec = args.get("assignment", "");
  if (spec.empty()) return fallback;
  const auto f = split(spec, ',');
  if (f.size() != stap::kNumTasks) {
    std::fprintf(stderr, "--assignment wants %d comma-separated counts\n",
                 stap::kNumTasks);
    std::exit(2);
  }
  core::NodeAssignment a;
  for (int t = 0; t < stap::kNumTasks; ++t)
    a.nodes[static_cast<size_t>(t)] =
        std::atoi(f[static_cast<size_t>(t)].c_str());
  return a;
}

int cmd_pipeline(const Args& args) {
  stap::StapParams p;
  p.num_range = 96;
  p.num_channels = 8;
  p.num_pulses = 32;
  p.num_beams = 2;
  p.num_hard = 12;
  p.stagger = 2;
  p.num_segments = 3;
  p.easy_samples_per_cpi = 24;
  p.hard_samples_per_segment = 16;
  p.validate();

  synth::ScenarioParams sp;
  sp.num_range = p.num_range;
  sp.num_channels = p.num_channels;
  sp.num_pulses = p.num_pulses;
  sp.clutter.cnr_db = 40.0;
  sp.chirp_length = 12;
  sp.targets.push_back(synth::Target{40, 10.0 / 32.0, 0.0, 12.0});
  synth::ScenarioGenerator radar(sp);
  auto steering = synth::steering_matrix(p.num_channels, p.num_beams,
                                         p.beam_center_rad, p.beam_span_rad);

  const auto a =
      parse_assignment(args, core::NodeAssignment{{4, 2, 6, 2, 2, 3, 2}});
  core::ParallelStapPipeline pipeline(
      p, a, steering, {radar.replica().begin(), radar.replica().end()});
  const index_t n_cpis = std::atol(args.get("cpis", "10").c_str());
  auto r = pipeline.run(radar, n_cpis, 2, 2);

  std::printf("%-28s %7s %8s %8s %8s\n", "task", "# nodes", "recv", "comp",
              "send");
  for (int t = 0; t < stap::kNumTasks; ++t) {
    const auto& tt = r.timing[static_cast<size_t>(t)];
    std::printf("%-28s %7d %8.4f %8.4f %8.4f\n",
                stap::task_name(static_cast<stap::Task>(t)),
                a.nodes[static_cast<size_t>(t)], tt.recv, tt.comp, tt.send);
  }
  size_t dets = 0;
  for (const auto& d : r.detections) dets += d.size();
  std::printf("%d ranks, %ld CPIs: throughput %.2f CPI/s, latency %.4f s, "
              "%zu detections\n",
              a.total(), static_cast<long>(n_cpis), r.throughput, r.latency,
              dets);
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: stap_tool run|simulate|plan|pipeline [--flags]\n"
               "  run      --preset=small|paper --cpis=N --window=NAME "
               "--cnr=DB --target=r:f:az:snr --out=FILE --range-correction\n"
               "  simulate --assignment=d,ew,hw,eb,hb,pc,cf --cpis=N\n"
               "  plan     --nodes=N --objective=throughput|latency "
               "--min-throughput=X\n"
               "  pipeline --assignment=d,ew,hw,eb,hb,pc,cf --cpis=N\n"
               "  replay   --input=DIR --window=NAME --out=FILE\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (cmd == "run") return cmd_run(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "pipeline") return cmd_pipeline(args);
    if (cmd == "replay") return cmd_replay(args);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
