// The classic STAP picture: adapted nulls tracing the clutter ridge in the
// angle-Doppler plane.
//
// A side-looking radar's ground clutter lies on the curve
// f = 0.5 * beta * sin(azimuth); each Doppler bin's adaptive weights need
// a spatial null only where the ridge crosses *their own* Doppler. This
// example trains the chain on a clutter-only scene and prints, for every
// Doppler bin, the bin's spatial response across azimuth — the deep-null
// marks should trace the arcsine curve of the ridge.
//
// Build & run:   ./build/examples/clutter_ridge_map
#include <cmath>
#include <cstdio>
#include <numbers>

#include "stap/analysis.hpp"
#include "stap/sequential.hpp"
#include "synth/scenario.hpp"
#include "synth/steering.hpp"

using namespace ppstap;

int main() {
  stap::StapParams p = stap::StapParams::small_test();
  p.num_range = 96;
  p.num_channels = 12;
  p.num_pulses = 32;
  p.num_beams = 1;
  p.num_hard = 10;
  p.stagger = 2;
  p.num_segments = 2;
  p.easy_samples_per_cpi = 24;
  p.hard_samples_per_segment = 24;
  p.beam_span_rad = 0.0;
  p.validate();

  const double beta = 0.9;
  synth::ScenarioParams sp;
  sp.num_range = p.num_range;
  sp.num_channels = p.num_channels;
  sp.num_pulses = p.num_pulses;
  sp.clutter.num_patches = 32;
  sp.clutter.cnr_db = 45.0;
  sp.clutter.doppler_slope = beta;
  sp.chirp_length = 0;
  synth::ScenarioGenerator gen(sp);

  auto steering = synth::steering_matrix(p.num_channels, 1, 0.0, 0.0);
  stap::SequentialStap chain(p, steering, gen.replica());
  for (index_t cpi = 0; cpi < 5; ++cpi) chain.process(gen.generate(cpi));

  const auto& easy_w = chain.current_easy_weights();
  const auto& hard_w = chain.current_hard_weights();

  constexpr int kAz = 61;
  std::vector<double> azimuths(kAz);
  for (int i = 0; i < kAz; ++i)
    azimuths[static_cast<size_t>(i)] =
        (-60.0 + 120.0 * i / (kAz - 1)) * std::numbers::pi / 180.0;

  std::printf("Adapted response per Doppler bin across azimuth "
              "(clutter ridge: f = %.1f/2 * sin(az))\n", beta);
  std::printf("'#' <= -40 dB, '+' <= -25 dB, '.' <= -10 dB, ' ' above; "
              "'|' marks the ridge azimuth for that bin\n\n");
  std::printf("bin  f      -60deg%*s+60deg\n", kAz - 11, "");

  for (index_t bin = 0; bin < p.num_pulses; ++bin) {
    // Normalized Doppler of this bin in [-0.5, 0.5).
    double f = static_cast<double>(bin) / static_cast<double>(p.num_pulses);
    if (f >= 0.5) f -= 1.0;

    // Response of this bin's weights across azimuth at its own Doppler.
    std::vector<double> resp;
    if (p.is_hard_bin(bin)) {
      // Hard: 2J staggered pair; use the first range segment's weights.
      const auto& bins = hard_w.bins;
      size_t row = 0;
      while (bins[row] != bin) ++row;
      const auto& w =
          hard_w.weights[row * static_cast<size_t>(p.num_segments)];
      resp = stap::angle_doppler_response(w, 0, p, azimuths,
                                          std::vector<double>{f});
    } else {
      const auto& bins = easy_w.bins;
      size_t row = 0;
      while (bins[row] != bin) ++row;
      resp = stap::angle_response(easy_w.weights[row], 0, azimuths);
    }
    double peak = 0;
    for (double r : resp) peak = std::max(peak, r);

    // Azimuth where the ridge crosses this Doppler (if visible).
    const double s = 2.0 * f / beta;
    const double ridge_az = std::abs(s) <= 1.0 ? std::asin(s) : 1e9;

    std::printf("%3ld %+5.2f ", static_cast<long>(bin), f);
    for (int i = 0; i < kAz; ++i) {
      const double az = azimuths[static_cast<size_t>(i)];
      if (ridge_az < 1e8 &&
          std::abs(az - ridge_az) < 0.5 * (azimuths[1] - azimuths[0])) {
        std::putchar('|');
        continue;
      }
      const double db =
          10.0 * std::log10(resp[static_cast<size_t>(i)] / peak + 1e-12);
      std::putchar(db <= -40.0   ? '#'
                   : db <= -25.0 ? '+'
                   : db <= -10.0 ? '.'
                                 : ' ');
    }
    std::printf("%s\n", p.is_hard_bin(bin) ? "  [hard]" : "");
  }
  std::printf(
      "\nReading: each row is one Doppler bin's adapted spatial pattern; "
      "the '#'/'+' nulls line up with the '|' ridge markers — the weights "
      "null clutter exactly where it competes at their Doppler, and leave "
      "the rest of the pattern (the main beam at 0 deg) intact.\n");
  return 0;
}
