// Adapted beam pattern visualization (paper Appendix A).
//
// Trains easy weights against a strong interferer off broadside and prints
// an ASCII comparison of the quiescent vs adapted spatial power pattern:
// the adapted pattern keeps the main beam (the constraint at work) while
// digging a null at the interferer azimuth. Also reports the SINR
// improvement factor against the estimated interference covariance.
//
// Build & run:   ./build/examples/adapted_pattern
#include <cmath>
#include <cstdio>
#include <numbers>

#include "common/rng.hpp"
#include "stap/analysis.hpp"
#include "stap/weights.hpp"
#include "synth/steering.hpp"

using namespace ppstap;

namespace {

void print_pattern(const char* label, std::span<const double> azimuths,
                   const std::vector<double>& response,
                   double interferer_az) {
  double peak = 0;
  for (double r : response) peak = std::max(peak, r);
  std::printf("\n%s (column = azimuth -60..+60 deg, rows = dB down)\n",
              label);
  const int kRows = 10;         // 5 dB per row, 0..-50 dB
  for (int row = 0; row < kRows; ++row) {
    const double db_hi = -5.0 * row;
    const double db_lo = -5.0 * (row + 1);
    std::printf("%4.0f |", db_lo);
    for (size_t i = 0; i < response.size(); ++i) {
      const double db = 10.0 * std::log10(response[i] / peak + 1e-12);
      std::putchar(db <= db_hi && db > db_lo ? '*' : ' ');
    }
    std::printf("|\n");
  }
  std::printf("      ");
  for (double az : azimuths)
    std::putchar(std::abs(az - interferer_az) < 0.01 ? '^' : ' ');
  std::printf("  (^ = interferer)\n");
}

}  // namespace

int main() {
  const index_t j = 16;
  const double interferer_az = 25.0 * std::numbers::pi / 180.0;

  stap::StapParams p;
  p.num_beams = 1;
  p.beam_span_rad = 0.0;  // single broadside beam
  auto steering = synth::steering_matrix(j, 1, 0.0, 0.0);

  // Training: interferer at +25 degrees, 30 dB above noise.
  Rng rng(7);
  const auto v_int = synth::spatial_steering(j, interferer_az);
  linalg::MatrixCF training(96, j);
  for (index_t r = 0; r < training.rows(); ++r) {
    const cdouble amp = rng.cnormal() * 31.6;
    for (index_t c = 0; c < j; ++c) {
      const cdouble noise = rng.cnormal();
      const auto& vi = v_int[static_cast<size_t>(c)];
      const cdouble val = amp * cdouble(vi.real(), vi.imag()) + noise;
      training(r, c) = cfloat(static_cast<float>(val.real()),
                              static_cast<float>(val.imag()));
    }
  }

  stap::EasyWeightComputer computer(p, steering, {p.easy_bins()[0]});
  const auto quiescent = computer.compute();  // before any training
  std::vector<linalg::MatrixCF> push;
  push.push_back(training);
  computer.push_training(std::move(push));
  const auto adapted = computer.compute();

  // Scan the patterns.
  const int kAz = 97;
  std::vector<double> azimuths(kAz);
  for (int i = 0; i < kAz; ++i)
    azimuths[static_cast<size_t>(i)] =
        (-60.0 + 120.0 * i / (kAz - 1)) * std::numbers::pi / 180.0;
  const auto q_resp = stap::angle_response(quiescent.weights[0], 0, azimuths);
  const auto a_resp = stap::angle_response(adapted.weights[0], 0, azimuths);

  print_pattern("Quiescent pattern", azimuths, q_resp, interferer_az);
  print_pattern("Adapted pattern", azimuths, a_resp, interferer_az);

  const auto rin = stap::sample_covariance(training, 1e-3f);
  const auto v_look = synth::spatial_steering(j, 0.0);
  std::printf(
      "\nnull depth at interferer: quiescent %.1f dB, adapted %.1f dB\n",
      stap::null_depth_db(quiescent.weights[0], 0, interferer_az, 0.03),
      stap::null_depth_db(adapted.weights[0], 0, interferer_az, 0.03));
  std::printf("SINR improvement factor over quiescent: %.1f dB\n",
              10.0 * std::log10(stap::improvement_factor(
                         adapted.weights[0], 0, rin,
                         std::span<const cfloat>(v_look))));
  return 0;
}
