// Parallel pipelined execution: the same CPI stream as quickstart.cpp but
// run on the multi-rank pipeline (ranks = threads, tasks = rank groups,
// all-to-all redistribution between tasks — the paper's Fig. 4 system).
//
// Demonstrates that the pipelined execution produces exactly the
// detections of the sequential reference while reporting the Figure-10
// per-task phase timings, and exercises the observability layer: tracing
// is enabled programmatically, latency percentiles come from the metrics
// histogram, and the run's spans are written as a Chrome trace-event file
// (open parallel_pipeline.trace.json in Perfetto / chrome://tracing).
//
// Build & run:   ./build/examples/parallel_pipeline
#include <cstdio>

#include "core/pipeline.hpp"
#include "obs/trace.hpp"
#include "stap/sequential.hpp"
#include "synth/scenario.hpp"
#include "synth/steering.hpp"

using namespace ppstap;

int main() {
  obs::Config trace_cfg;
  trace_cfg.enabled = true;
  trace_cfg.path = "parallel_pipeline.trace.json";
  obs::configure(trace_cfg);

  stap::StapParams params;
  params.num_range = 96;
  params.num_channels = 8;
  params.num_pulses = 32;
  params.num_beams = 2;
  params.num_hard = 12;
  params.stagger = 2;
  params.num_segments = 3;
  params.easy_samples_per_cpi = 24;
  params.hard_samples_per_segment = 16;
  params.validate();

  synth::ScenarioParams scene;
  scene.num_range = params.num_range;
  scene.num_channels = params.num_channels;
  scene.num_pulses = params.num_pulses;
  scene.clutter.cnr_db = 40.0;
  scene.chirp_length = 12;
  scene.targets.push_back({/*range=*/40, /*doppler=*/10.0 / 32.0,
                           /*azimuth=*/0.0, /*snr_db=*/12.0});
  synth::ScenarioGenerator radar(scene);

  auto steering = synth::steering_matrix(params.num_channels,
                                         params.num_beams,
                                         params.beam_center_rad,
                                         params.beam_span_rad);

  // Task -> rank-group assignment (21 ranks total). Heavier tasks get more
  // ranks, mirroring the paper's proportioning.
  core::NodeAssignment assignment{{4, 2, 6, 2, 2, 3, 2}};
  core::ParallelStapPipeline pipeline(
      params, assignment, steering,
      {radar.replica().begin(), radar.replica().end()});

  // The paper's measurement protocol: 25 CPIs, first 3 and last 2 excluded
  // from the timing averages.
  const index_t n_cpis = 25;
  auto result = pipeline.run(radar, n_cpis, /*warmup=*/3, /*cooldown=*/2);

  std::printf("Parallel pipelined STAP on %d ranks, %ld CPIs\n\n",
              assignment.total(), static_cast<long>(n_cpis));
  std::printf("%-28s %7s %8s %8s %8s\n", "task", "# nodes", "recv", "comp",
              "send");
  for (int t = 0; t < stap::kNumTasks; ++t) {
    const auto& tt = result.timing[static_cast<size_t>(t)];
    std::printf("%-28s %7d %8.4f %8.4f %8.4f\n",
                stap::task_name(static_cast<stap::Task>(t)),
                assignment.nodes[static_cast<size_t>(t)], tt.recv, tt.comp,
                tt.send);
  }
  std::printf("\nthroughput %.2f CPI/s, latency %.4f s\n", result.throughput,
              result.latency);
  std::printf("latency percentiles: p50 %.4f s, p95 %.4f s, p99 %.4f s\n",
              result.latency_percentiles.p50, result.latency_percentiles.p95,
              result.latency_percentiles.p99);

  if (obs::write_chrome_trace(trace_cfg.path))
    std::printf("wrote %zu trace spans to %s (load in Perfetto or "
                "chrome://tracing)\n",
                obs::span_count(), trace_cfg.path.c_str());

  // Cross-check against the sequential reference.
  stap::SequentialStap reference(params, steering, radar.replica());
  size_t mismatches = 0;
  for (index_t cpi = 0; cpi < n_cpis; ++cpi) {
    auto ref = reference.process(radar.generate(cpi)).detections;
    if (ref.size() != result.detections[static_cast<size_t>(cpi)].size())
      ++mismatches;
  }
  std::printf("detection cross-check vs sequential reference: %s\n",
              mismatches == 0 ? "identical on every CPI" : "MISMATCH");
  return mismatches == 0 ? 0 : 1;
}
