// Detection performance study: probability of detection vs target SNR for
// the full STAP chain, plus the realized end-to-end false alarm rate —
// the radar-engineering validation that live-data experiments (like the
// paper's flight tests) cannot produce, because live data has no ground
// truth.
//
// Build & run:   ./build/examples/detection_study
#include <cstdio>

#include "stap/montecarlo.hpp"

using namespace ppstap;

int main() {
  stap::DetectionStudyConfig cfg;
  cfg.params = stap::StapParams::small_test();
  cfg.params.num_range = 64;
  cfg.params.num_channels = 8;
  cfg.params.num_pulses = 32;
  cfg.params.num_beams = 1;
  cfg.params.num_hard = 12;
  cfg.params.stagger = 2;
  cfg.params.num_segments = 2;
  cfg.params.easy_samples_per_cpi = 16;
  cfg.params.hard_samples_per_segment = 16;
  cfg.params.beam_span_rad = 0.0;
  cfg.params.cfar_pfa = 1e-4;
  cfg.params.validate();

  cfg.scene.num_range = cfg.params.num_range;
  cfg.scene.num_channels = cfg.params.num_channels;
  cfg.scene.num_pulses = cfg.params.num_pulses;
  cfg.scene.clutter.num_patches = 12;
  cfg.scene.clutter.cnr_db = 40.0;
  cfg.scene.chirp_length = 8;
  cfg.target_range = 37;
  cfg.target_bin = 10;  // easy region
  cfg.trials = 16;
  cfg.train_cpis = 3;

  std::printf("Pd vs SNR (easy-region target in 40 dB clutter, PFA design "
              "%g, %ld trials per point)\n\n",
              cfg.params.cfar_pfa, static_cast<long>(cfg.trials));
  const double snrs[] = {-15.0, -10.0, -5.0, 0.0, 5.0, 10.0};
  const auto curve = stap::detection_curve(cfg, snrs);
  std::printf("%8s %6s %12s   %s\n", "SNR dB", "Pd", "mean margin", "");
  for (const auto& pt : curve) {
    std::printf("%8.1f %6.2f %12.1f   |", pt.snr_db, pt.pd, pt.mean_margin);
    const int stars = static_cast<int>(pt.pd * 40.0 + 0.5);
    for (int i = 0; i < stars; ++i) std::putchar('#');
    std::printf("\n");
  }

  std::printf("\nend-to-end false alarm rate on target-free scenes: %.2e "
              "(CFAR design PFA %.2e; staying at or below design means the "
              "adaptive weights whiten the clutter residue well enough for "
              "the CA-CFAR's homogeneous-background assumption)\n",
              stap::measured_false_alarm_rate(cfg), cfg.params.cfar_pfa);
  return 0;
}
