// RTMCARM flight-experiment analogue: full-size CPIs (K=512 range gates,
// J=16 channels, N=128 pulses — the paper's parameters) streamed through
// the STAP chain with live-style detection reports.
//
// The 1996 flight experiments processed live phased-array data on the
// ruggedized Paragon; here the scene generator plays the radar. A slow
// (low-Doppler) and a fast target are injected; the interesting part is
// watching the slow target, which competes with mainbeam clutter in a hard
// Doppler bin, emerge as the recursive hard weights converge over CPIs.
//
// Build & run:   ./build/examples/rtmcarm_flight [num_cpis]
#include <cstdio>
#include <cstdlib>

#include "common/timer.hpp"
#include "stap/sequential.hpp"
#include "synth/scenario.hpp"
#include "synth/steering.hpp"

using namespace ppstap;

int main(int argc, char** argv) {
  const index_t n_cpis = argc > 1 ? std::atol(argv[1]) : 9;

  stap::StapParams params;  // paper defaults: K=512 J=16 N=128 M=6
  // The flight radar transmitted five 25-degree beams spaced 20 degrees
  // apart and revisited them in turn (paper SS3); model three of them to
  // keep the demo's revisit period short.
  params.num_beam_positions = 3;
  params.validate();

  synth::ScenarioParams scene;
  scene.num_range = params.num_range;
  scene.num_channels = params.num_channels;
  scene.num_pulses = params.num_pulses;
  scene.clutter.num_patches = 32;
  scene.clutter.cnr_db = 45.0;
  scene.chirp_length = 32;
  const double deg = 3.14159265358979 / 180.0;
  scene.transmit_azimuths = {-20.0 * deg, 0.0, 20.0 * deg};
  scene.transmit_beam_width_rad = 25.0 * deg;
  // Fast target: well separated from clutter (easy Doppler region),
  // inside the broadside transmit beam (illuminated on CPIs 1, 4, 7, ...).
  scene.targets.push_back({/*range=*/200, /*doppler=*/40.0 / 128.0,
                           /*azimuth=*/0.05, /*snr_db=*/5.0});
  // Slow target: Doppler bin 8 — inside the hard region, competing with
  // mainbeam clutter; detectable only after adaptation.
  scene.targets.push_back({/*range=*/330, /*doppler=*/8.0 / 128.0,
                           /*azimuth=*/-0.03, /*snr_db=*/10.0});
  synth::ScenarioGenerator radar(scene);

  // Six receive beams formed within each transmit beam (paper SS3).
  std::vector<linalg::MatrixCF> steering;
  for (double az : scene.transmit_azimuths)
    steering.push_back(synth::steering_matrix(
        params.num_channels, params.num_beams, az, params.beam_span_rad));
  stap::SequentialStap processor(params, steering, radar.replica());

  std::printf("RTMCARM-style run: %ld CPIs of %ldx%ldx%ld "
              "(range x channels x pulses)\n",
              static_cast<long>(n_cpis), static_cast<long>(params.num_range),
              static_cast<long>(params.num_channels),
              static_cast<long>(params.num_pulses));
  std::printf("Injected: fast target (range 200, bin 40, easy region) and "
              "slow target (range 330, bin 8, hard region)\n\n");

  for (index_t cpi = 0; cpi < n_cpis; ++cpi) {
    WallTimer timer;
    const auto data = radar.generate(cpi);
    const double gen_s = timer.elapsed();
    timer.reset();
    auto result = processor.process(data);
    const double proc_s = timer.elapsed();

    bool fast_seen = false, slow_seen = false;
    for (const auto& d : result.detections) {
      if (d.doppler_bin == 40 && d.range == 200) fast_seen = true;
      if (d.doppler_bin == 8 && d.range == 330) slow_seen = true;
    }
    const long pos = static_cast<long>(cpi % params.num_beam_positions);
    std::printf("CPI %2ld (beam position %ld): %3zu detections  fast[%s] "
                "slow[%s]   (gen %.2fs, process %.2fs)\n",
                static_cast<long>(cpi), pos, result.detections.size(),
                fast_seen ? "x" : " ", slow_seen ? "x" : " ", gen_s, proc_s);
    if (cpi == n_cpis - 1) {
      std::printf("\nFinal CPI report (bin, beam, range, power/threshold):\n");
      for (const auto& d : result.detections)
        std::printf("  bin %3ld  beam %ld  range %3ld  margin %5.1fx\n",
                    static_cast<long>(d.doppler_bin),
                    static_cast<long>(d.beam), static_cast<long>(d.range),
                    d.power / d.threshold);
    }
  }
  return 0;
}
