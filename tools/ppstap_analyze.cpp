// ppstap-analyze: critical-path bottleneck report from a trace file.
//
// Reads a Chrome-trace JSON document written by the obs span exporter
// (PPSTAP_TRACE=1 / PPSTAP_TRACE_FILE, or a flight-recorder dump), stitches
// the per-CPI causal chains, and prints the Tables-7-10-style report: per
// task-group service and intrinsic time, utilization and slack against the
// gating group, the per-CPI latency decomposition, and the Table-9/10-style
// rank reassignment recommendation.
//
// Exit status is 0 unless an --assert-* / --expect-* flag fails, making the
// tool usable as a CI gate (see scripts/ci.sh):
//
//   ppstap-analyze trace.json                 # report only
//   ppstap-analyze trace.json --json          # machine-readable report
//   ppstap-analyze trace.json --assert-verdict --assert-no-drops
//                             --expect-gating "Doppler filter processing"
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "obs/critical_path.hpp"
#include "obs/json.hpp"

using namespace ppstap;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <trace.json> [options]\n"
      "  --json                  print the report as JSON instead of text\n"
      "  --assert-verdict        fail unless the analyzer reached a valid\n"
      "                          bottleneck verdict\n"
      "  --assert-no-drops       fail if the trace recorder dropped spans\n"
      "                          (otherData.dropped_spans > 0)\n"
      "  --expect-gating NAME    fail unless the gating task group is NAME\n",
      argv0);
  return 2;
}

void print_report(const obs::BottleneckReport& rep) {
  if (!rep.valid) {
    std::printf("no bottleneck verdict: %s\n",
                rep.note.empty() ? "(no note)" : rep.note.c_str());
    return;
  }
  std::printf("critical-path report\n");
  std::printf("%-28s %6s %8s %10s %10s %12s %9s\n", "task group", "ranks",
              "samples", "service", "intrinsic", "utilization", "slack");
  for (const auto& st : rep.stages)
    std::printf("%-28s %6d %8lld %9.4fs %9.4fs %12.3f %8.4fs%s\n",
                obs::stap_task_label(st.task).c_str(), st.ranks,
                static_cast<long long>(st.samples), st.service(),
                st.intrinsic(), st.utilization, st.slack,
                st.task == rep.gating_task ? "  <- gating" : "");
  std::printf("\ngating task group: %s\n", rep.gating_task_name.c_str());
  std::printf("pipeline period:   %.4f s  (throughput estimate %.4f "
              "CPI/s)\n",
              rep.period, rep.throughput_estimate);
  std::printf("stitched chains:   %zu  (mean end-to-end latency %.4f s, "
              "accounted fraction %.3f)\n",
              rep.chains.size(), rep.mean_latency, rep.accounted_fraction);
  if (!rep.chains.empty()) {
    double compute = 0, unpack = 0, pack = 0, transport = 0, queue = 0;
    for (const auto& ch : rep.chains) {
      compute += ch.compute;
      unpack += ch.unpack;
      pack += ch.pack;
      transport += ch.transport;
      queue += ch.queue;
    }
    const auto n = static_cast<double>(rep.chains.size());
    std::printf("latency breakdown: compute %.4fs, unpack %.4fs, pack "
                "%.4fs, transport %.4fs, queue %.4fs\n",
                compute / n, unpack / n, pack / n, transport / n, queue / n);
  }
  if (rep.recommend_task >= 0)
    std::printf("recommendation:    add %d rank(s) to \"%s\" -> predicted "
                "throughput %.4f CPI/s\n",
                rep.recommend_add_ranks,
                obs::stap_task_label(rep.recommend_task).c_str(),
                rep.predicted_throughput);
  if (!rep.note.empty()) std::printf("note: %s\n", rep.note.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string expect_gating;
  bool as_json = false;
  bool assert_verdict = false;
  bool assert_no_drops = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--assert-verdict") {
      assert_verdict = true;
    } else if (arg == "--assert-no-drops") {
      assert_no_drops = true;
    } else if (arg == "--expect-gating" && i + 1 < argc) {
      expect_gating = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << is.rdbuf();

  obs::Json doc;
  try {
    doc = obs::Json::parse(ss.str());
  } catch (const ppstap::Error& e) {
    std::fprintf(stderr, "error: %s is not valid JSON: %s\n", path.c_str(),
                 e.what());
    return 2;
  }

  const obs::BottleneckReport rep = obs::analyze_trace(doc);

  double dropped = 0.0;
  if (const obs::Json* other = doc.find("otherData"))
    if (const obs::Json* d = other->find("dropped_spans"))
      if (d->is_number()) dropped = d->as_number();

  if (as_json) {
    obs::Json out = rep.to_json();
    out["trace_file"] = path;
    out["dropped_spans"] = dropped;
    std::printf("%s\n", out.dump(2).c_str());
  } else {
    std::printf("trace: %s (%.0f dropped spans)\n", path.c_str(), dropped);
    print_report(rep);
  }

  int rc = 0;
  if (assert_verdict && !rep.valid) {
    std::fprintf(stderr, "FAIL: no valid bottleneck verdict (%s)\n",
                 rep.note.c_str());
    rc = 1;
  }
  if (assert_no_drops && dropped > 0) {
    std::fprintf(stderr,
                 "FAIL: trace dropped %.0f spans; raise "
                 "PPSTAP_TRACE_CAPACITY\n",
                 dropped);
    rc = 1;
  }
  if (!expect_gating.empty() &&
      (!rep.valid || rep.gating_task_name != expect_gating)) {
    std::fprintf(stderr, "FAIL: expected gating task \"%s\", got \"%s\"\n",
                 expect_gating.c_str(),
                 rep.valid ? rep.gating_task_name.c_str() : "(invalid)");
    rc = 1;
  }
  return rc;
}
