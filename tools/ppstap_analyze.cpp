// ppstap-analyze: critical-path bottleneck report from a trace file.
//
// Reads a Chrome-trace JSON document written by the obs span exporter
// (PPSTAP_TRACE=1 / PPSTAP_TRACE_FILE, or a flight-recorder dump), stitches
// the per-CPI causal chains, and prints the Tables-7-10-style report: per
// task-group service and intrinsic time, utilization and slack against the
// gating group, the per-CPI latency decomposition, and the Table-9/10-style
// rank reassignment recommendation.
//
// Exit status is 0 unless an --assert-* / --expect-* flag fails, making the
// tool usable as a CI gate (see scripts/ci.sh):
//
//   ppstap-analyze trace.json                 # report only
//   ppstap-analyze trace.json --json          # machine-readable report
//   ppstap-analyze trace.json --assert-verdict --assert-no-drops
//                             --expect-gating "Doppler filter processing"
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "obs/critical_path.hpp"
#include "obs/json.hpp"

using namespace ppstap;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <trace.json> [options]\n"
      "  --json                  print the report as JSON instead of text\n"
      "  --assert-verdict        fail unless the analyzer reached a valid\n"
      "                          bottleneck verdict\n"
      "  --assert-no-drops       fail if the trace recorder dropped spans\n"
      "                          (otherData.dropped_spans > 0)\n"
      "  --expect-gating NAME    fail unless the gating task group is NAME\n"
      "  --per-rank-health       print the offline gray-failure report:\n"
      "                          per-rank service floor, mean and peer\n"
      "                          z-score (see DESIGN.md, gray-failure "
      "model)\n"
      "  --assert-no-stragglers  fail if any rank's service floor is a\n"
      "                          peer-relative straggler (implies the\n"
      "                          per-rank analysis)\n",
      argv0);
  return 2;
}

// Offline twin of core::HealthMonitor's verdict, run over a full trace
// instead of a rolling window: per-rank service floor (min over every
// (rank, cpi) service = comp + send), scored leave-one-out against its
// task-group peers. Thresholds mirror the HealthConfig defaults (the tool
// links only ppstap_obs, so they are restated here).
struct RankRow {
  int rank = -1;
  int task = -1;
  long long samples = 0;
  double mean = 0.0;
  double floor = 1e300;
  double queue = 0.0;
  double zscore = 0.0;
  bool straggler = false;
};

std::vector<RankRow> per_rank_health(const std::vector<obs::Span>& spans) {
  constexpr double kZscore = 4.0;
  constexpr double kMinRatio = 1.5;
  constexpr double kMinService = 1e-4;
  constexpr long long kMinSamples = 3;

  // One service sample per (rank, cpi): comp + send span durations.
  std::map<int, RankRow> rows;
  std::map<std::pair<int, std::int64_t>, double> service;
  std::map<std::pair<int, std::int64_t>, double> queue;
  for (const auto& s : spans) {
    if (std::strcmp(s.category, "pipeline") != 0 || s.cpi < 0) continue;
    auto& row = rows[s.rank];
    row.rank = s.rank;
    row.task = s.task;
    const auto key = std::make_pair(s.rank, s.cpi);
    if (std::strcmp(s.name, "recv") == 0)
      queue[key] += s.t_end - s.t_start;
    else  // comp or send
      service[key] += s.t_end - s.t_start;
  }
  for (const auto& [key, sv] : service) {
    auto& row = rows[key.first];
    ++row.samples;
    row.mean += sv;
    row.floor = std::min(row.floor, sv);
    if (auto it = queue.find(key); it != queue.end()) row.queue += it->second;
  }
  std::vector<RankRow> out;
  for (auto& [rank, row] : rows) {
    if (row.samples == 0) continue;
    row.mean /= static_cast<double>(row.samples);
    row.queue /= static_cast<double>(row.samples);
    out.push_back(row);
  }
  // Leave-one-out peer z-score over floors, within each task group.
  for (auto& row : out) {
    std::vector<double> peers;
    for (const auto& p : out)
      if (p.task == row.task && p.rank != row.rank &&
          p.samples >= kMinSamples)
        peers.push_back(p.floor);
    if (peers.empty() || row.samples < kMinSamples) continue;
    double mean = 0.0;
    for (double v : peers) mean += v;
    mean /= static_cast<double>(peers.size());
    double var = 0.0;
    for (double v : peers) var += (v - mean) * (v - mean);
    var /= static_cast<double>(peers.size());
    const double sd = std::max({std::sqrt(var), 0.1 * mean, 1e-12});
    row.zscore = (row.floor - mean) / sd;
    row.straggler = row.zscore > kZscore && row.floor > kMinRatio * mean &&
                    row.floor > kMinService;
  }
  return out;
}

void print_rank_health(const std::vector<RankRow>& rows) {
  std::printf("\nper-rank health (offline floors)\n");
  std::printf("%5s %-28s %8s %10s %10s %10s %8s\n", "rank", "task group",
              "samples", "floor", "mean", "queue", "z");
  for (const auto& r : rows)
    std::printf("%5d %-28s %8lld %8.4fms %8.4fms %8.4fms %8.2f%s\n", r.rank,
                obs::stap_task_label(r.task).c_str(), r.samples,
                1e3 * r.floor, 1e3 * r.mean, 1e3 * r.queue, r.zscore,
                r.straggler ? "  <- STRAGGLER" : "");
}

void print_report(const obs::BottleneckReport& rep) {
  if (!rep.valid) {
    std::printf("no bottleneck verdict: %s\n",
                rep.note.empty() ? "(no note)" : rep.note.c_str());
    return;
  }
  std::printf("critical-path report\n");
  std::printf("%-28s %6s %8s %10s %10s %12s %9s\n", "task group", "ranks",
              "samples", "service", "intrinsic", "utilization", "slack");
  for (const auto& st : rep.stages)
    std::printf("%-28s %6d %8lld %9.4fs %9.4fs %12.3f %8.4fs%s\n",
                obs::stap_task_label(st.task).c_str(), st.ranks,
                static_cast<long long>(st.samples), st.service(),
                st.intrinsic(), st.utilization, st.slack,
                st.task == rep.gating_task ? "  <- gating" : "");
  std::printf("\ngating task group: %s\n", rep.gating_task_name.c_str());
  std::printf("pipeline period:   %.4f s  (throughput estimate %.4f "
              "CPI/s)\n",
              rep.period, rep.throughput_estimate);
  std::printf("stitched chains:   %zu  (mean end-to-end latency %.4f s, "
              "accounted fraction %.3f)\n",
              rep.chains.size(), rep.mean_latency, rep.accounted_fraction);
  if (!rep.chains.empty()) {
    double compute = 0, unpack = 0, pack = 0, transport = 0, queue = 0;
    for (const auto& ch : rep.chains) {
      compute += ch.compute;
      unpack += ch.unpack;
      pack += ch.pack;
      transport += ch.transport;
      queue += ch.queue;
    }
    const auto n = static_cast<double>(rep.chains.size());
    std::printf("latency breakdown: compute %.4fs, unpack %.4fs, pack "
                "%.4fs, transport %.4fs, queue %.4fs\n",
                compute / n, unpack / n, pack / n, transport / n, queue / n);
  }
  if (rep.recommend_task >= 0)
    std::printf("recommendation:    add %d rank(s) to \"%s\" -> predicted "
                "throughput %.4f CPI/s\n",
                rep.recommend_add_ranks,
                obs::stap_task_label(rep.recommend_task).c_str(),
                rep.predicted_throughput);
  if (!rep.note.empty()) std::printf("note: %s\n", rep.note.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string expect_gating;
  bool as_json = false;
  bool assert_verdict = false;
  bool assert_no_drops = false;
  bool rank_health = false;
  bool assert_no_stragglers = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--assert-verdict") {
      assert_verdict = true;
    } else if (arg == "--assert-no-drops") {
      assert_no_drops = true;
    } else if (arg == "--per-rank-health") {
      rank_health = true;
    } else if (arg == "--assert-no-stragglers") {
      assert_no_stragglers = true;
      rank_health = true;
    } else if (arg == "--expect-gating" && i + 1 < argc) {
      expect_gating = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << is.rdbuf();

  obs::Json doc;
  try {
    doc = obs::Json::parse(ss.str());
  } catch (const ppstap::Error& e) {
    std::fprintf(stderr, "error: %s is not valid JSON: %s\n", path.c_str(),
                 e.what());
    return 2;
  }

  const obs::BottleneckReport rep = obs::analyze_trace(doc);
  std::vector<RankRow> health_rows;
  if (rank_health)
    health_rows = per_rank_health(obs::spans_from_trace(doc));

  double dropped = 0.0;
  if (const obs::Json* other = doc.find("otherData"))
    if (const obs::Json* d = other->find("dropped_spans"))
      if (d->is_number()) dropped = d->as_number();

  if (as_json) {
    obs::Json out = rep.to_json();
    out["trace_file"] = path;
    out["dropped_spans"] = dropped;
    if (rank_health) {
      obs::Json arr = obs::Json::array();
      for (const auto& r : health_rows) {
        obs::Json row = obs::Json::object();
        row["rank"] = r.rank;
        row["task"] = obs::stap_task_label(r.task);
        row["samples"] = static_cast<double>(r.samples);
        row["floor_service_s"] = r.floor;
        row["mean_service_s"] = r.mean;
        row["mean_queue_s"] = r.queue;
        row["zscore"] = r.zscore;
        row["straggler"] = r.straggler;
        arr.push_back(std::move(row));
      }
      out["rank_health"] = std::move(arr);
    }
    std::printf("%s\n", out.dump(2).c_str());
  } else {
    std::printf("trace: %s (%.0f dropped spans)\n", path.c_str(), dropped);
    print_report(rep);
    if (rank_health) print_rank_health(health_rows);
  }

  int rc = 0;
  if (assert_verdict && !rep.valid) {
    std::fprintf(stderr, "FAIL: no valid bottleneck verdict (%s)\n",
                 rep.note.c_str());
    rc = 1;
  }
  if (assert_no_drops && dropped > 0) {
    std::fprintf(stderr,
                 "FAIL: trace dropped %.0f spans; raise "
                 "PPSTAP_TRACE_CAPACITY\n",
                 dropped);
    rc = 1;
  }
  if (!expect_gating.empty() &&
      (!rep.valid || rep.gating_task_name != expect_gating)) {
    std::fprintf(stderr, "FAIL: expected gating task \"%s\", got \"%s\"\n",
                 expect_gating.c_str(),
                 rep.valid ? rep.gating_task_name.c_str() : "(invalid)");
    rc = 1;
  }
  if (assert_no_stragglers) {
    for (const auto& r : health_rows)
      if (r.straggler) {
        std::fprintf(stderr,
                     "FAIL: rank %d (%s) is a straggler: floor %.4f ms, "
                     "peer z %.2f\n",
                     r.rank, obs::stap_task_label(r.task).c_str(),
                     1e3 * r.floor, r.zscore);
        rc = 1;
      }
  }
  return rc;
}
