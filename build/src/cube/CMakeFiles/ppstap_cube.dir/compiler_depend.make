# Empty compiler generated dependencies file for ppstap_cube.
# This may be replaced when dependencies are built.
