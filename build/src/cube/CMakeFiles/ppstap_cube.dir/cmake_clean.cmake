file(REMOVE_RECURSE
  "CMakeFiles/ppstap_cube.dir/cube.cpp.o"
  "CMakeFiles/ppstap_cube.dir/cube.cpp.o.d"
  "CMakeFiles/ppstap_cube.dir/io.cpp.o"
  "CMakeFiles/ppstap_cube.dir/io.cpp.o.d"
  "libppstap_cube.a"
  "libppstap_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppstap_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
