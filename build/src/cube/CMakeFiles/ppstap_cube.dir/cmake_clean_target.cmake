file(REMOVE_RECURSE
  "libppstap_cube.a"
)
