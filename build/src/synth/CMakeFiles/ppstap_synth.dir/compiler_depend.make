# Empty compiler generated dependencies file for ppstap_synth.
# This may be replaced when dependencies are built.
