file(REMOVE_RECURSE
  "libppstap_synth.a"
)
