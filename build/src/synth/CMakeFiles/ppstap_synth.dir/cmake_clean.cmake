file(REMOVE_RECURSE
  "CMakeFiles/ppstap_synth.dir/scenario.cpp.o"
  "CMakeFiles/ppstap_synth.dir/scenario.cpp.o.d"
  "CMakeFiles/ppstap_synth.dir/steering.cpp.o"
  "CMakeFiles/ppstap_synth.dir/steering.cpp.o.d"
  "libppstap_synth.a"
  "libppstap_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppstap_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
