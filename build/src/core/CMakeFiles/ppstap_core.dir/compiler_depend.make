# Empty compiler generated dependencies file for ppstap_core.
# This may be replaced when dependencies are built.
