file(REMOVE_RECURSE
  "libppstap_core.a"
)
