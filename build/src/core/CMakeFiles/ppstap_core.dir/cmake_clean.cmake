file(REMOVE_RECURSE
  "CMakeFiles/ppstap_core.dir/assignment.cpp.o"
  "CMakeFiles/ppstap_core.dir/assignment.cpp.o.d"
  "CMakeFiles/ppstap_core.dir/cpi_source.cpp.o"
  "CMakeFiles/ppstap_core.dir/cpi_source.cpp.o.d"
  "CMakeFiles/ppstap_core.dir/machine.cpp.o"
  "CMakeFiles/ppstap_core.dir/machine.cpp.o.d"
  "CMakeFiles/ppstap_core.dir/pipeline.cpp.o"
  "CMakeFiles/ppstap_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/ppstap_core.dir/sim.cpp.o"
  "CMakeFiles/ppstap_core.dir/sim.cpp.o.d"
  "libppstap_core.a"
  "libppstap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppstap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
