# Empty dependencies file for ppstap_common.
# This may be replaced when dependencies are built.
