file(REMOVE_RECURSE
  "libppstap_common.a"
)
