file(REMOVE_RECURSE
  "CMakeFiles/ppstap_common.dir/check.cpp.o"
  "CMakeFiles/ppstap_common.dir/check.cpp.o.d"
  "CMakeFiles/ppstap_common.dir/flops.cpp.o"
  "CMakeFiles/ppstap_common.dir/flops.cpp.o.d"
  "CMakeFiles/ppstap_common.dir/parallel.cpp.o"
  "CMakeFiles/ppstap_common.dir/parallel.cpp.o.d"
  "CMakeFiles/ppstap_common.dir/rng.cpp.o"
  "CMakeFiles/ppstap_common.dir/rng.cpp.o.d"
  "libppstap_common.a"
  "libppstap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppstap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
