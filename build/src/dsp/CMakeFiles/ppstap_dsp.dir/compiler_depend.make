# Empty compiler generated dependencies file for ppstap_dsp.
# This may be replaced when dependencies are built.
