file(REMOVE_RECURSE
  "CMakeFiles/ppstap_dsp.dir/fft.cpp.o"
  "CMakeFiles/ppstap_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/ppstap_dsp.dir/waveform.cpp.o"
  "CMakeFiles/ppstap_dsp.dir/waveform.cpp.o.d"
  "CMakeFiles/ppstap_dsp.dir/window.cpp.o"
  "CMakeFiles/ppstap_dsp.dir/window.cpp.o.d"
  "libppstap_dsp.a"
  "libppstap_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppstap_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
