file(REMOVE_RECURSE
  "libppstap_dsp.a"
)
