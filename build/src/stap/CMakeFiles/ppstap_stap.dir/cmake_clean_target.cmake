file(REMOVE_RECURSE
  "libppstap_stap.a"
)
