# Empty dependencies file for ppstap_stap.
# This may be replaced when dependencies are built.
