file(REMOVE_RECURSE
  "CMakeFiles/ppstap_stap.dir/analysis.cpp.o"
  "CMakeFiles/ppstap_stap.dir/analysis.cpp.o.d"
  "CMakeFiles/ppstap_stap.dir/beamform.cpp.o"
  "CMakeFiles/ppstap_stap.dir/beamform.cpp.o.d"
  "CMakeFiles/ppstap_stap.dir/cfar.cpp.o"
  "CMakeFiles/ppstap_stap.dir/cfar.cpp.o.d"
  "CMakeFiles/ppstap_stap.dir/classify.cpp.o"
  "CMakeFiles/ppstap_stap.dir/classify.cpp.o.d"
  "CMakeFiles/ppstap_stap.dir/doppler.cpp.o"
  "CMakeFiles/ppstap_stap.dir/doppler.cpp.o.d"
  "CMakeFiles/ppstap_stap.dir/flops.cpp.o"
  "CMakeFiles/ppstap_stap.dir/flops.cpp.o.d"
  "CMakeFiles/ppstap_stap.dir/montecarlo.cpp.o"
  "CMakeFiles/ppstap_stap.dir/montecarlo.cpp.o.d"
  "CMakeFiles/ppstap_stap.dir/params.cpp.o"
  "CMakeFiles/ppstap_stap.dir/params.cpp.o.d"
  "CMakeFiles/ppstap_stap.dir/pulse_compression.cpp.o"
  "CMakeFiles/ppstap_stap.dir/pulse_compression.cpp.o.d"
  "CMakeFiles/ppstap_stap.dir/report.cpp.o"
  "CMakeFiles/ppstap_stap.dir/report.cpp.o.d"
  "CMakeFiles/ppstap_stap.dir/sequential.cpp.o"
  "CMakeFiles/ppstap_stap.dir/sequential.cpp.o.d"
  "CMakeFiles/ppstap_stap.dir/training.cpp.o"
  "CMakeFiles/ppstap_stap.dir/training.cpp.o.d"
  "CMakeFiles/ppstap_stap.dir/weights.cpp.o"
  "CMakeFiles/ppstap_stap.dir/weights.cpp.o.d"
  "libppstap_stap.a"
  "libppstap_stap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppstap_stap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
