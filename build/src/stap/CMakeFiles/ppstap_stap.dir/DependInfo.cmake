
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stap/analysis.cpp" "src/stap/CMakeFiles/ppstap_stap.dir/analysis.cpp.o" "gcc" "src/stap/CMakeFiles/ppstap_stap.dir/analysis.cpp.o.d"
  "/root/repo/src/stap/beamform.cpp" "src/stap/CMakeFiles/ppstap_stap.dir/beamform.cpp.o" "gcc" "src/stap/CMakeFiles/ppstap_stap.dir/beamform.cpp.o.d"
  "/root/repo/src/stap/cfar.cpp" "src/stap/CMakeFiles/ppstap_stap.dir/cfar.cpp.o" "gcc" "src/stap/CMakeFiles/ppstap_stap.dir/cfar.cpp.o.d"
  "/root/repo/src/stap/classify.cpp" "src/stap/CMakeFiles/ppstap_stap.dir/classify.cpp.o" "gcc" "src/stap/CMakeFiles/ppstap_stap.dir/classify.cpp.o.d"
  "/root/repo/src/stap/doppler.cpp" "src/stap/CMakeFiles/ppstap_stap.dir/doppler.cpp.o" "gcc" "src/stap/CMakeFiles/ppstap_stap.dir/doppler.cpp.o.d"
  "/root/repo/src/stap/flops.cpp" "src/stap/CMakeFiles/ppstap_stap.dir/flops.cpp.o" "gcc" "src/stap/CMakeFiles/ppstap_stap.dir/flops.cpp.o.d"
  "/root/repo/src/stap/montecarlo.cpp" "src/stap/CMakeFiles/ppstap_stap.dir/montecarlo.cpp.o" "gcc" "src/stap/CMakeFiles/ppstap_stap.dir/montecarlo.cpp.o.d"
  "/root/repo/src/stap/params.cpp" "src/stap/CMakeFiles/ppstap_stap.dir/params.cpp.o" "gcc" "src/stap/CMakeFiles/ppstap_stap.dir/params.cpp.o.d"
  "/root/repo/src/stap/pulse_compression.cpp" "src/stap/CMakeFiles/ppstap_stap.dir/pulse_compression.cpp.o" "gcc" "src/stap/CMakeFiles/ppstap_stap.dir/pulse_compression.cpp.o.d"
  "/root/repo/src/stap/report.cpp" "src/stap/CMakeFiles/ppstap_stap.dir/report.cpp.o" "gcc" "src/stap/CMakeFiles/ppstap_stap.dir/report.cpp.o.d"
  "/root/repo/src/stap/sequential.cpp" "src/stap/CMakeFiles/ppstap_stap.dir/sequential.cpp.o" "gcc" "src/stap/CMakeFiles/ppstap_stap.dir/sequential.cpp.o.d"
  "/root/repo/src/stap/training.cpp" "src/stap/CMakeFiles/ppstap_stap.dir/training.cpp.o" "gcc" "src/stap/CMakeFiles/ppstap_stap.dir/training.cpp.o.d"
  "/root/repo/src/stap/weights.cpp" "src/stap/CMakeFiles/ppstap_stap.dir/weights.cpp.o" "gcc" "src/stap/CMakeFiles/ppstap_stap.dir/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppstap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/ppstap_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ppstap_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppstap_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/ppstap_synth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
