# Empty dependencies file for ppstap_linalg.
# This may be replaced when dependencies are built.
