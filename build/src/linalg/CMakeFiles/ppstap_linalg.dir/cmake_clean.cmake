file(REMOVE_RECURSE
  "CMakeFiles/ppstap_linalg.dir/gemm.cpp.o"
  "CMakeFiles/ppstap_linalg.dir/gemm.cpp.o.d"
  "CMakeFiles/ppstap_linalg.dir/qr.cpp.o"
  "CMakeFiles/ppstap_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/ppstap_linalg.dir/serialize.cpp.o"
  "CMakeFiles/ppstap_linalg.dir/serialize.cpp.o.d"
  "libppstap_linalg.a"
  "libppstap_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppstap_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
