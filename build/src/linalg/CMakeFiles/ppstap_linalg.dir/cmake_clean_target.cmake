file(REMOVE_RECURSE
  "libppstap_linalg.a"
)
