
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/gemm.cpp" "src/linalg/CMakeFiles/ppstap_linalg.dir/gemm.cpp.o" "gcc" "src/linalg/CMakeFiles/ppstap_linalg.dir/gemm.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/linalg/CMakeFiles/ppstap_linalg.dir/qr.cpp.o" "gcc" "src/linalg/CMakeFiles/ppstap_linalg.dir/qr.cpp.o.d"
  "/root/repo/src/linalg/serialize.cpp" "src/linalg/CMakeFiles/ppstap_linalg.dir/serialize.cpp.o" "gcc" "src/linalg/CMakeFiles/ppstap_linalg.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppstap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
