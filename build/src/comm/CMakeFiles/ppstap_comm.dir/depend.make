# Empty dependencies file for ppstap_comm.
# This may be replaced when dependencies are built.
