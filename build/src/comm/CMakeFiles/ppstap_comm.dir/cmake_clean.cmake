file(REMOVE_RECURSE
  "CMakeFiles/ppstap_comm.dir/world.cpp.o"
  "CMakeFiles/ppstap_comm.dir/world.cpp.o.d"
  "libppstap_comm.a"
  "libppstap_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppstap_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
