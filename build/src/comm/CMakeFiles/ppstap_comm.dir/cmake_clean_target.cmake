file(REMOVE_RECURSE
  "libppstap_comm.a"
)
