# Empty dependencies file for processor_assignment.
# This may be replaced when dependencies are built.
