file(REMOVE_RECURSE
  "CMakeFiles/processor_assignment.dir/processor_assignment.cpp.o"
  "CMakeFiles/processor_assignment.dir/processor_assignment.cpp.o.d"
  "processor_assignment"
  "processor_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/processor_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
