file(REMOVE_RECURSE
  "CMakeFiles/clutter_ridge_map.dir/clutter_ridge_map.cpp.o"
  "CMakeFiles/clutter_ridge_map.dir/clutter_ridge_map.cpp.o.d"
  "clutter_ridge_map"
  "clutter_ridge_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clutter_ridge_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
