# Empty compiler generated dependencies file for clutter_ridge_map.
# This may be replaced when dependencies are built.
