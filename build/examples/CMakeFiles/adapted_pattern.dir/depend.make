# Empty dependencies file for adapted_pattern.
# This may be replaced when dependencies are built.
