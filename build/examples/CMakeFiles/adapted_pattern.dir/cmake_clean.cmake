file(REMOVE_RECURSE
  "CMakeFiles/adapted_pattern.dir/adapted_pattern.cpp.o"
  "CMakeFiles/adapted_pattern.dir/adapted_pattern.cpp.o.d"
  "adapted_pattern"
  "adapted_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapted_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
