file(REMOVE_RECURSE
  "CMakeFiles/rtmcarm_flight.dir/rtmcarm_flight.cpp.o"
  "CMakeFiles/rtmcarm_flight.dir/rtmcarm_flight.cpp.o.d"
  "rtmcarm_flight"
  "rtmcarm_flight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtmcarm_flight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
