# Empty dependencies file for rtmcarm_flight.
# This may be replaced when dependencies are built.
