# Empty dependencies file for detection_study.
# This may be replaced when dependencies are built.
