file(REMOVE_RECURSE
  "CMakeFiles/detection_study.dir/detection_study.cpp.o"
  "CMakeFiles/detection_study.dir/detection_study.cpp.o.d"
  "detection_study"
  "detection_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
