# Empty compiler generated dependencies file for stap_tool.
# This may be replaced when dependencies are built.
