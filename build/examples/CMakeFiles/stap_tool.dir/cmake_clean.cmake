file(REMOVE_RECURSE
  "CMakeFiles/stap_tool.dir/stap_tool.cpp.o"
  "CMakeFiles/stap_tool.dir/stap_tool.cpp.o.d"
  "stap_tool"
  "stap_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stap_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
