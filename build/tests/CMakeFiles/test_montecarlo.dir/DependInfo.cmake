
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_montecarlo.cpp" "tests/CMakeFiles/test_montecarlo.dir/test_montecarlo.cpp.o" "gcc" "tests/CMakeFiles/test_montecarlo.dir/test_montecarlo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stap/CMakeFiles/ppstap_stap.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/ppstap_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/ppstap_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ppstap_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppstap_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppstap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
