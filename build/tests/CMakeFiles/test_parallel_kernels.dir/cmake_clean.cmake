file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_kernels.dir/test_parallel_kernels.cpp.o"
  "CMakeFiles/test_parallel_kernels.dir/test_parallel_kernels.cpp.o.d"
  "test_parallel_kernels"
  "test_parallel_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
