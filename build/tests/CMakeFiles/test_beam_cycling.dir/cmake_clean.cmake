file(REMOVE_RECURSE
  "CMakeFiles/test_beam_cycling.dir/test_beam_cycling.cpp.o"
  "CMakeFiles/test_beam_cycling.dir/test_beam_cycling.cpp.o.d"
  "test_beam_cycling"
  "test_beam_cycling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beam_cycling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
