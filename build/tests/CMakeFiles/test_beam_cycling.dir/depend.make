# Empty dependencies file for test_beam_cycling.
# This may be replaced when dependencies are built.
