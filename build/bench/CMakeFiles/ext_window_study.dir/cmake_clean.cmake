file(REMOVE_RECURSE
  "CMakeFiles/ext_window_study.dir/ext_window_study.cpp.o"
  "CMakeFiles/ext_window_study.dir/ext_window_study.cpp.o.d"
  "ext_window_study"
  "ext_window_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_window_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
