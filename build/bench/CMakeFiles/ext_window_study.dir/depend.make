# Empty dependencies file for ext_window_study.
# This may be replaced when dependencies are built.
