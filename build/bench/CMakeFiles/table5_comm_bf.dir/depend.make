# Empty dependencies file for table5_comm_bf.
# This may be replaced when dependencies are built.
