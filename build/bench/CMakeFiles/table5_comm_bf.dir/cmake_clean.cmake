file(REMOVE_RECURSE
  "CMakeFiles/table5_comm_bf.dir/table5_comm_bf.cpp.o"
  "CMakeFiles/table5_comm_bf.dir/table5_comm_bf.cpp.o.d"
  "table5_comm_bf"
  "table5_comm_bf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_comm_bf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
