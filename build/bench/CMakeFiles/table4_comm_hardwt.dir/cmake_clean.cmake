file(REMOVE_RECURSE
  "CMakeFiles/table4_comm_hardwt.dir/table4_comm_hardwt.cpp.o"
  "CMakeFiles/table4_comm_hardwt.dir/table4_comm_hardwt.cpp.o.d"
  "table4_comm_hardwt"
  "table4_comm_hardwt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_comm_hardwt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
