# Empty dependencies file for table4_comm_hardwt.
# This may be replaced when dependencies are built.
