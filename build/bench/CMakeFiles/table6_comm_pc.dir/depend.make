# Empty dependencies file for table6_comm_pc.
# This may be replaced when dependencies are built.
