file(REMOVE_RECURSE
  "CMakeFiles/table6_comm_pc.dir/table6_comm_pc.cpp.o"
  "CMakeFiles/table6_comm_pc.dir/table6_comm_pc.cpp.o.d"
  "table6_comm_pc"
  "table6_comm_pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_comm_pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
