file(REMOVE_RECURSE
  "CMakeFiles/table8_throughput_latency.dir/table8_throughput_latency.cpp.o"
  "CMakeFiles/table8_throughput_latency.dir/table8_throughput_latency.cpp.o.d"
  "table8_throughput_latency"
  "table8_throughput_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_throughput_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
