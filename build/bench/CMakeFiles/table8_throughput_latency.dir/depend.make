# Empty dependencies file for table8_throughput_latency.
# This may be replaced when dependencies are built.
