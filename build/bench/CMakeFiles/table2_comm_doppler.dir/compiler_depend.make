# Empty compiler generated dependencies file for table2_comm_doppler.
# This may be replaced when dependencies are built.
