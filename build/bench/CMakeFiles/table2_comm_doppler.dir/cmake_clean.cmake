file(REMOVE_RECURSE
  "CMakeFiles/table2_comm_doppler.dir/table2_comm_doppler.cpp.o"
  "CMakeFiles/table2_comm_doppler.dir/table2_comm_doppler.cpp.o.d"
  "table2_comm_doppler"
  "table2_comm_doppler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_comm_doppler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
