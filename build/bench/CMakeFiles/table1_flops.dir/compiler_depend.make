# Empty compiler generated dependencies file for table1_flops.
# This may be replaced when dependencies are built.
