file(REMOVE_RECURSE
  "CMakeFiles/table1_flops.dir/table1_flops.cpp.o"
  "CMakeFiles/table1_flops.dir/table1_flops.cpp.o.d"
  "table1_flops"
  "table1_flops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
