# Empty compiler generated dependencies file for table10_add_pc_cfar.
# This may be replaced when dependencies are built.
