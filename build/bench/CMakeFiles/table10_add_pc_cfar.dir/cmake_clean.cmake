file(REMOVE_RECURSE
  "CMakeFiles/table10_add_pc_cfar.dir/table10_add_pc_cfar.cpp.o"
  "CMakeFiles/table10_add_pc_cfar.dir/table10_add_pc_cfar.cpp.o.d"
  "table10_add_pc_cfar"
  "table10_add_pc_cfar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_add_pc_cfar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
