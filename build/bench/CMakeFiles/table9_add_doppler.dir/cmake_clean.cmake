file(REMOVE_RECURSE
  "CMakeFiles/table9_add_doppler.dir/table9_add_doppler.cpp.o"
  "CMakeFiles/table9_add_doppler.dir/table9_add_doppler.cpp.o.d"
  "table9_add_doppler"
  "table9_add_doppler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_add_doppler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
