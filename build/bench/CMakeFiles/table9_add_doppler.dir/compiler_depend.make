# Empty compiler generated dependencies file for table9_add_doppler.
# This may be replaced when dependencies are built.
