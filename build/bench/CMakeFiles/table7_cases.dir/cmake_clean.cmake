file(REMOVE_RECURSE
  "CMakeFiles/table7_cases.dir/table7_cases.cpp.o"
  "CMakeFiles/table7_cases.dir/table7_cases.cpp.o.d"
  "table7_cases"
  "table7_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
