# Empty dependencies file for table7_cases.
# This may be replaced when dependencies are built.
