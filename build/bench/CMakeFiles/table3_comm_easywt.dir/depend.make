# Empty dependencies file for table3_comm_easywt.
# This may be replaced when dependencies are built.
