file(REMOVE_RECURSE
  "CMakeFiles/table3_comm_easywt.dir/table3_comm_easywt.cpp.o"
  "CMakeFiles/table3_comm_easywt.dir/table3_comm_easywt.cpp.o.d"
  "table3_comm_easywt"
  "table3_comm_easywt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_comm_easywt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
