file(REMOVE_RECURSE
  "CMakeFiles/ext_roundrobin_vs_pipeline.dir/ext_roundrobin_vs_pipeline.cpp.o"
  "CMakeFiles/ext_roundrobin_vs_pipeline.dir/ext_roundrobin_vs_pipeline.cpp.o.d"
  "ext_roundrobin_vs_pipeline"
  "ext_roundrobin_vs_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_roundrobin_vs_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
