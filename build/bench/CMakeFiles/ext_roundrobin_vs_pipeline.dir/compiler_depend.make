# Empty compiler generated dependencies file for ext_roundrobin_vs_pipeline.
# This may be replaced when dependencies are built.
