
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_dynamic_reallocation.cpp" "bench/CMakeFiles/ext_dynamic_reallocation.dir/ext_dynamic_reallocation.cpp.o" "gcc" "bench/CMakeFiles/ext_dynamic_reallocation.dir/ext_dynamic_reallocation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ppstap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/ppstap_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/stap/CMakeFiles/ppstap_stap.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/ppstap_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/ppstap_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ppstap_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppstap_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppstap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
