file(REMOVE_RECURSE
  "CMakeFiles/ext_dynamic_reallocation.dir/ext_dynamic_reallocation.cpp.o"
  "CMakeFiles/ext_dynamic_reallocation.dir/ext_dynamic_reallocation.cpp.o.d"
  "ext_dynamic_reallocation"
  "ext_dynamic_reallocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dynamic_reallocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
