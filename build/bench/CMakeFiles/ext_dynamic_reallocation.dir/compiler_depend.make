# Empty compiler generated dependencies file for ext_dynamic_reallocation.
# This may be replaced when dependencies are built.
