file(REMOVE_RECURSE
  "CMakeFiles/ext_integrated_scaling.dir/ext_integrated_scaling.cpp.o"
  "CMakeFiles/ext_integrated_scaling.dir/ext_integrated_scaling.cpp.o.d"
  "ext_integrated_scaling"
  "ext_integrated_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_integrated_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
