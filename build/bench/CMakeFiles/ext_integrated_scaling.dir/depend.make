# Empty dependencies file for ext_integrated_scaling.
# This may be replaced when dependencies are built.
