file(REMOVE_RECURSE
  "CMakeFiles/ext_constraint_ablation.dir/ext_constraint_ablation.cpp.o"
  "CMakeFiles/ext_constraint_ablation.dir/ext_constraint_ablation.cpp.o.d"
  "ext_constraint_ablation"
  "ext_constraint_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_constraint_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
