# Empty compiler generated dependencies file for ext_constraint_ablation.
# This may be replaced when dependencies are built.
