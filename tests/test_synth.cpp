// Tests for the synthetic radar scene generator: steering vectors, clutter
// ridge statistics, target injection, determinism, and waveform spreading.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "synth/scenario.hpp"
#include "synth/steering.hpp"

namespace ppstap::synth {
namespace {

TEST(Steering, BroadsideIsAllOnes) {
  auto a = spatial_steering(8, 0.0);
  for (auto& v : a) EXPECT_NEAR(std::abs(v - cfloat(1, 0)), 0.0, 1e-6);
}

TEST(Steering, PhaseProgressionMatchesUlaModel) {
  const double theta = 0.3;
  auto a = spatial_steering(6, theta);
  const double step = std::numbers::pi * std::sin(theta);
  for (index_t j = 0; j < 6; ++j) {
    const double ang = step * static_cast<double>(j);
    EXPECT_NEAR(a[static_cast<size_t>(j)].real(), std::cos(ang), 1e-6);
    EXPECT_NEAR(a[static_cast<size_t>(j)].imag(), std::sin(ang), 1e-6);
  }
}

TEST(Steering, UnitModulusElements) {
  auto a = spatial_steering(16, -0.7);
  for (auto& v : a) EXPECT_NEAR(std::abs(v), 1.0, 1e-6);
  auto d = temporal_steering(128, 0.37);
  for (auto& v : d) EXPECT_NEAR(std::abs(v), 1.0, 1e-6);
}

TEST(Steering, TemporalFrequency) {
  const double f = 0.25;
  auto d = temporal_steering(8, f);
  // Phase advances by 2*pi*f per pulse: at f = 1/4 the sequence cycles
  // through 1, j, -1, -j.
  EXPECT_NEAR(std::abs(d[0] - cfloat(1, 0)), 0.0, 1e-6);
  EXPECT_NEAR(std::abs(d[1] - cfloat(0, 1)), 0.0, 1e-6);
  EXPECT_NEAR(std::abs(d[2] - cfloat(-1, 0)), 0.0, 1e-6);
  EXPECT_NEAR(std::abs(d[3] - cfloat(0, -1)), 0.0, 1e-6);
}

TEST(Steering, BeamMatrixColumnsAreSteeringVectors) {
  const index_t j = 8, m = 4;
  auto s = steering_matrix(j, m, 0.1, 0.4);
  for (index_t b = 0; b < m; ++b) {
    auto col = spatial_steering(j, beam_azimuth(m, b, 0.1, 0.4));
    for (index_t r = 0; r < j; ++r)
      EXPECT_NEAR(std::abs(s(r, b) - col[static_cast<size_t>(r)]), 0.0, 1e-6);
  }
}

TEST(Steering, BeamAzimuthsSpanTheBeamWidth) {
  EXPECT_NEAR(beam_azimuth(6, 0, 0.0, 0.5), -0.25, 1e-9);
  EXPECT_NEAR(beam_azimuth(6, 5, 0.0, 0.5), 0.25, 1e-9);
  EXPECT_NEAR(beam_azimuth(1, 0, 0.2, 0.5), 0.2, 1e-9);
}

ScenarioParams small_scenario() {
  ScenarioParams sp;
  sp.num_range = 32;
  sp.num_channels = 4;
  sp.num_pulses = 16;
  sp.clutter.num_patches = 8;
  sp.clutter.cnr_db = 30.0;
  sp.chirp_length = 0;
  sp.targets.clear();
  return sp;
}

TEST(Scenario, DeterministicAcrossCalls) {
  ScenarioGenerator gen(small_scenario());
  auto a = gen.generate(3);
  auto b = gen.generate(3);
  for (index_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(Scenario, DifferentCpisDiffer) {
  ScenarioGenerator gen(small_scenario());
  auto a = gen.generate(0);
  auto b = gen.generate(1);
  double diff = 0;
  for (index_t i = 0; i < a.size(); ++i)
    diff += std::abs(a.data()[i] - b.data()[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(Scenario, NoiseOnlyPowerMatchesNoiseFloor) {
  auto sp = small_scenario();
  sp.clutter.num_patches = 0;
  sp.noise_power = 2.0;
  ScenarioGenerator gen(sp);
  auto c = gen.generate(0);
  double power = 0;
  for (index_t i = 0; i < c.size(); ++i) power += std::norm(c.data()[i]);
  power /= static_cast<double>(c.size());
  EXPECT_NEAR(power, 2.0, 0.15);
}

TEST(Scenario, ClutterPowerMatchesCnr) {
  auto sp = small_scenario();
  sp.clutter.cnr_db = 20.0;  // clutter power 100x noise
  sp.noise_power = 1.0;
  ScenarioGenerator gen(sp);
  auto c = gen.generate(0);
  double power = 0;
  for (index_t i = 0; i < c.size(); ++i) power += std::norm(c.data()[i]);
  power /= static_cast<double>(c.size());
  EXPECT_NEAR(power, 101.0, 15.0);  // clutter + noise
}

TEST(Scenario, ClutterRidgeConcentratesDopplerEnergy) {
  // Per-patch Doppler is tied to azimuth; a single patch at broadside must
  // put all its energy at zero Doppler.
  auto sp = small_scenario();
  sp.clutter.num_patches = 1;
  sp.clutter.azimuth_span_rad = 0.0;  // single patch at azimuth 0
  sp.clutter.cnr_db = 40.0;
  sp.noise_power = 1e-12;  // negligible
  ScenarioGenerator gen(sp);
  auto c = gen.generate(0);
  // DFT over pulses at one (range, channel): energy should be at DC.
  double dc = 0, rest = 0;
  for (index_t n_bin = 0; n_bin < sp.num_pulses; ++n_bin) {
    cdouble acc{};
    for (index_t t = 0; t < sp.num_pulses; ++t) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(n_bin * t) /
                         static_cast<double>(sp.num_pulses);
      const cfloat v = c.at(5, 2, t);
      acc += cdouble(v.real(), v.imag()) * cdouble(std::cos(ang),
                                                   std::sin(ang));
    }
    if (n_bin == 0)
      dc = std::norm(acc);
    else
      rest = std::max(rest, std::norm(acc));
  }
  EXPECT_GT(dc, 100.0 * rest);
}

TEST(Scenario, TargetAppearsAtItsRangeCell) {
  auto sp = small_scenario();
  sp.clutter.num_patches = 0;
  sp.noise_power = 1e-12;
  sp.targets.push_back(Target{10, 0.25, 0.0, 20.0});
  ScenarioGenerator gen(sp);
  auto c = gen.generate(0);
  // All signal energy sits in range cell 10 (SNR is relative to the tiny
  // noise floor, so compare cells against each other).
  double target_e = 0, other_max = 0;
  for (index_t k = 0; k < sp.num_range; ++k) {
    double e = 0;
    for (index_t j = 0; j < sp.num_channels; ++j)
      for (index_t n = 0; n < sp.num_pulses; ++n)
        e += std::norm(c.at(k, j, n));
    if (k == 10)
      target_e = e;
    else
      other_max = std::max(other_max, e);
  }
  EXPECT_GT(target_e, 50.0 * other_max);
}

TEST(Scenario, ChirpSpreadsTargetAcrossRange) {
  auto sp = small_scenario();
  sp.clutter.num_patches = 0;
  sp.noise_power = 1e-12;
  sp.chirp_length = 8;
  sp.targets.push_back(Target{10, 0.25, 0.0, 20.0});
  ScenarioGenerator gen(sp);
  auto c = gen.generate(0);
  // Energy appears in the L cells starting at the target range (circular).
  double peak = 0;
  for (index_t k = 0; k < sp.num_range; ++k) {
    double e = 0;
    for (index_t n = 0; n < sp.num_pulses; ++n) e += std::norm(c.at(k, 0, n));
    peak = std::max(peak, e);
  }
  int cells_with_energy = 0;
  for (index_t k = 0; k < sp.num_range; ++k) {
    double e = 0;
    for (index_t n = 0; n < sp.num_pulses; ++n) e += std::norm(c.at(k, 0, n));
    if (e > 1e-3 * peak) ++cells_with_energy;
  }
  EXPECT_GE(cells_with_energy, 8);
}

TEST(Scenario, ChirpPreservesTotalEnergy) {
  auto spread = small_scenario();
  spread.clutter.num_patches = 0;
  spread.noise_power = 1e-12;
  spread.targets.push_back(Target{10, 0.25, 0.0, 20.0});
  auto impulse = spread;
  spread.chirp_length = 8;
  impulse.chirp_length = 0;
  auto cs = ScenarioGenerator(spread).generate(0);
  auto ci = ScenarioGenerator(impulse).generate(0);
  double es = 0, ei = 0;
  for (index_t i = 0; i < cs.size(); ++i) es += std::norm(cs.data()[i]);
  for (index_t i = 0; i < ci.size(); ++i) ei += std::norm(ci.data()[i]);
  // Unit-energy chirp: circular convolution preserves energy up to the
  // single-precision FFT round-trip.
  EXPECT_NEAR(es / ei, 1.0, 1e-2);
}

TEST(Scenario, InvalidTargetRangeThrows) {
  auto sp = small_scenario();
  sp.targets.push_back(Target{999, 0.1, 0.0, 10.0});
  EXPECT_THROW(ScenarioGenerator{sp}, Error);
}

TEST(Scenario, ChirpLongerThanRangeThrows) {
  auto sp = small_scenario();
  sp.chirp_length = sp.num_range + 1;
  EXPECT_THROW(ScenarioGenerator{sp}, Error);
}

}  // namespace
}  // namespace ppstap::synth
