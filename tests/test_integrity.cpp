// End-to-end tests for the ABFT integrity layer (PR 5): each kernel
// invariant passes on clean output at Table-1 sizes and trips on an
// injected bit flip, and the pipeline's detect -> recompute-once ->
// escalate policy repairs transient corruption bit-exactly while
// converting persistent corruption into exactly one ledgered shed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "comm/fault.hpp"
#include "common/rng.hpp"
#include "core/integrity.hpp"
#include "core/pipeline.hpp"
#include "linalg/qr.hpp"
#include "stap/beamform.hpp"
#include "stap/cfar.hpp"
#include "stap/doppler.hpp"
#include "stap/pulse_compression.hpp"
#include "synth/scenario.hpp"
#include "synth/steering.hpp"

namespace ppstap {
namespace {

using comm::FaultPlan;
using core::IntegrityConfig;
using core::flip_float_bit;
using stap::StapParams;
using stap::Task;

constexpr double kTol = 1e-4;

cube::CpiCube random_cube(index_t a, index_t b, index_t c,
                          std::uint64_t seed) {
  Rng rng(seed);
  cube::CpiCube cu(a, b, c);
  for (index_t i = 0; i < cu.size(); ++i) {
    const auto z = rng.cnormal();
    cu.data()[i] = cfloat(static_cast<float>(z.real()),
                          static_cast<float>(z.imag()));
  }
  return cu;
}

std::span<float> float_view(cube::CpiCube& cu) {
  return {reinterpret_cast<float*>(cu.data()),
          static_cast<size_t>(cu.size()) * 2};
}

// ---------------------------------------------------------------------------
// Unit: the seeded injector
// ---------------------------------------------------------------------------

TEST(FlipFloatBit, DeterministicAndSelfInverse) {
  std::vector<float> a(64, 1.0f), b(64, 1.0f);
  flip_float_bit(a, 30, 7);
  flip_float_bit(b, 30, 7);
  EXPECT_EQ(a, b);  // same salt, same victim
  int changed = 0;
  for (size_t i = 0; i < a.size(); ++i) changed += a[i] != 1.0f;
  EXPECT_EQ(changed, 1);  // exactly one element touched
  flip_float_bit(a, 30, 7);
  for (float v : a) EXPECT_EQ(v, 1.0f);  // xor flip is self-inverse
  std::span<float> empty;
  flip_float_bit(empty, 30, 7);  // no-op, must not crash
}

// ---------------------------------------------------------------------------
// Unit: kernel invariants at Table-1 sizes (paper defaults: K = 512,
// J = 16, N = 128, M = 6)
// ---------------------------------------------------------------------------

TEST(KernelInvariants, DopplerParsevalCleanAndFlipped) {
  StapParams p;  // Table-1 defaults
  p.validate();
  stap::DopplerFilter filter(p);
  const auto raw =
      random_cube(64, p.num_channels, p.num_pulses, /*seed=*/1);
  auto stag = filter.filter(raw, /*k_offset=*/0);
  EXPECT_TRUE(filter.parseval_check(raw, stag, 0, kTol));
  flip_float_bit(float_view(stag), 30, /*salt=*/11);
  EXPECT_FALSE(filter.parseval_check(raw, stag, 0, kTol));
}

TEST(KernelInvariants, EasyBeamformChecksumCleanAndFlipped) {
  StapParams p;
  p.validate();
  const index_t bins = 8;
  const auto data = random_cube(bins, p.num_range, p.num_channels, 2);
  stap::WeightSet w;
  for (index_t b = 0; b < bins; ++b) {
    w.bins.push_back(b);
    linalg::MatrixCF wm(p.num_channels, p.num_beams);
    Rng rng(100 + static_cast<std::uint64_t>(b));
    for (index_t i = 0; i < wm.size(); ++i) {
      const auto z = rng.cnormal();
      wm.data()[i] = cfloat(static_cast<float>(z.real()),
                            static_cast<float>(z.imag()));
    }
    w.weights.push_back(std::move(wm));
  }
  auto out = stap::easy_beamform(data, w, p);
  EXPECT_TRUE(stap::easy_beamform_check(data, w, p, out, -1, kTol));
  flip_float_bit(float_view(out), 30, /*salt=*/3);
  EXPECT_FALSE(stap::easy_beamform_check(data, w, p, out, -1, kTol));
}

TEST(KernelInvariants, HardBeamformChecksumCleanAndFlipped) {
  StapParams p;
  p.validate();
  const index_t bins = 4;
  const index_t jj = p.num_staggered_channels();
  const auto data = random_cube(bins, p.num_range, jj, 4);
  stap::WeightSet w;
  for (index_t b = 0; b < bins; ++b) w.bins.push_back(b);
  for (index_t i = 0; i < bins * p.num_segments; ++i) {
    linalg::MatrixCF wm(jj, p.num_beams);
    Rng rng(200 + static_cast<std::uint64_t>(i));
    for (index_t e = 0; e < wm.size(); ++e) {
      const auto z = rng.cnormal();
      wm.data()[e] = cfloat(static_cast<float>(z.real()),
                            static_cast<float>(z.imag()));
    }
    w.weights.push_back(std::move(wm));
  }
  auto out = stap::hard_beamform(data, w, p);
  EXPECT_TRUE(stap::hard_beamform_check(data, w, p, out, -1, kTol));
  flip_float_bit(float_view(out), 30, /*salt=*/5);
  EXPECT_FALSE(stap::hard_beamform_check(data, w, p, out, -1, kTol));
}

TEST(KernelInvariants, PulseCompressionEnergyCleanAndFlipped) {
  StapParams p;
  p.validate();
  synth::ScenarioParams sp;
  sp.num_range = p.num_range;
  sp.num_channels = p.num_channels;
  sp.num_pulses = p.num_pulses;
  synth::ScenarioGenerator gen(sp);
  stap::PulseCompressor pc(p, gen.replica());
  const auto bf = random_cube(6, p.num_beams, p.num_range, 6);
  std::vector<double> row_energy;
  auto power = pc.compress(bf, -1, &row_energy);
  EXPECT_TRUE(stap::pc_energy_check(power, row_energy, -1, kTol));
  flip_float_bit({power.data(), static_cast<size_t>(power.size())}, 30,
                 /*salt=*/9);
  EXPECT_FALSE(stap::pc_energy_check(power, row_energy, -1, kTol));
}

TEST(KernelInvariants, CfarVerifyCleanAndFlipped) {
  StapParams p;
  p.validate();
  const index_t bins_n = 4;
  Rng rng(7);
  cube::RealCube power(bins_n, p.num_beams, p.num_range);
  for (index_t i = 0; i < power.size(); ++i)
    power.data()[i] =
        static_cast<float>(1.0 + std::abs(rng.cnormal().real()));
  // A few hot cells so the detector reports something to corrupt.
  for (index_t b = 0; b < bins_n; ++b)
    power.at(b, 0, 100 + 7 * b) = 1e4f;
  std::vector<index_t> bins;
  for (index_t b = 0; b < bins_n; ++b) bins.push_back(b);
  auto dets = stap::cfar_detect(power, bins, p);
  ASSERT_FALSE(dets.empty());
  EXPECT_TRUE(stap::verify_detections(dets, power, bins, p));
  auto corrupt = dets;
  flip_float_bit({&corrupt[0].power, 1}, 30, 0);
  EXPECT_FALSE(stap::verify_detections(corrupt, power, bins, p));
  // Ordering is part of the contract too.
  if (dets.size() >= 2) {
    auto swapped = dets;
    std::swap(swapped.front(), swapped.back());
    EXPECT_FALSE(stap::verify_detections(swapped, power, bins, p));
  }
}

TEST(KernelInvariants, QrColumnNormResidualSmallOnCleanFactorization) {
  Rng rng(13);
  linalg::MatrixCF a(96, 12);
  for (index_t i = 0; i < a.size(); ++i) {
    const auto z = rng.cnormal();
    a.data()[i] = cfloat(static_cast<float>(z.real()),
                         static_cast<float>(z.imag()));
  }
  linalg::QrFactorization<cfloat> qr(a);
  EXPECT_LT(qr.column_norm_residual(), kTol);
  // The row-append (recursive) form preserves column norms as well.
  auto r_old = qr.r();
  linalg::MatrixCF x(8, 12);
  for (index_t i = 0; i < x.size(); ++i) {
    const auto z = rng.cnormal();
    x.data()[i] = cfloat(static_cast<float>(z.real()),
                         static_cast<float>(z.imag()));
  }
  auto x_copy = x;
  auto r_new = linalg::qr_append_rows(r_old, std::move(x));
  EXPECT_LT(linalg::append_column_norm_residual(r_old, x_copy, r_new),
            kTol);
}

// ---------------------------------------------------------------------------
// Pipeline: detect -> recompute-once -> escalate
// ---------------------------------------------------------------------------

// Low dynamic range scene (CNR 10 dB): the energy invariants compare
// against whole-line energy, so every representable exponent flip lands
// above the relative tolerance and detection is deterministic, not
// scene-dependent. The strong target keeps the CFAR report list non-empty
// on every CPI so report-buffer flips always have a victim.
struct Fixture {
  StapParams p;
  synth::ScenarioParams sp;

  static Fixture make() {
    Fixture f;
    f.p = StapParams::small_test();
    f.p.num_range = 128;
    f.p.num_channels = 8;
    f.p.num_pulses = 32;
    f.p.num_beams = 2;
    f.p.num_hard = 12;
    f.p.stagger = 2;
    f.p.num_segments = 3;
    f.p.easy_samples_per_cpi = 24;
    f.p.hard_samples_per_segment = 16;
    f.p.cfar_ref = 6;
    f.p.cfar_guard = 2;
    // Permissive CFAR: noise-driven reports on essentially every CPI give
    // the report-buffer flip a guaranteed victim; false alarms are just as
    // good as targets for exercising detection-list integrity.
    f.p.cfar_pfa = 1e-3;
    f.p.validate();
    f.sp.num_range = f.p.num_range;
    f.sp.num_channels = f.p.num_channels;
    f.sp.num_pulses = f.p.num_pulses;
    f.sp.clutter.num_patches = 8;
    f.sp.clutter.cnr_db = 10.0;
    f.sp.chirp_length = 16;
    f.sp.targets.push_back(synth::Target{45, 10.0 / 32.0, 0.0, 40.0});
    return f;
  }

  linalg::MatrixCF steering() const {
    return synth::steering_matrix(p.num_channels, p.num_beams,
                                  p.beam_center_rad, p.beam_span_rad);
  }
};

core::PipelineResult run_pipeline(const Fixture& f, index_t n_cpis,
                                  bool abft, FaultPlan* plan) {
  synth::ScenarioGenerator gen(f.sp);
  core::ParallelStapPipeline par(
      f.p, core::NodeAssignment{}, f.steering(),
      {gen.replica().begin(), gen.replica().end()});
  IntegrityConfig ic;
  ic.enabled = abft;
  par.set_integrity(ic);
  if (plan != nullptr) par.set_fault_plan(plan);
  return par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);
}

bool same_detections(const std::vector<std::vector<stap::Detection>>& a,
                     const std::vector<std::vector<stap::Detection>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      const auto& x = a[i][j];
      const auto& y = b[i][j];
      if (x.doppler_bin != y.doppler_bin || x.beam != y.beam ||
          x.range != y.range || x.power != y.power ||
          x.threshold != y.threshold)
        return false;
    }
  }
  return true;
}

TEST(IntegrityPipeline, CleanRunLedgerCleanAndBitIdenticalToAbftOff) {
  auto f = Fixture::make();
  const auto off = run_pipeline(f, 6, /*abft=*/false, nullptr);
  const auto on = run_pipeline(f, 6, /*abft=*/true, nullptr);
  EXPECT_TRUE(on.integrity.clean());
  EXPECT_GT(on.integrity.checks_passed, 0u);
  EXPECT_EQ(on.integrity.recomputes, 0u);
  EXPECT_EQ(on.integrity.escalations, 0u);
  EXPECT_TRUE(on.integrity.events.empty());
  // The invariants and digests are observers: output is bit-identical.
  EXPECT_TRUE(same_detections(on.detections, off.detections));
  // ABFT-off runs carry an empty ledger.
  EXPECT_TRUE(off.integrity.clean());
  EXPECT_EQ(off.integrity.checks_passed, 0u);
}

TEST(IntegrityPipeline, EveryStageFlipDetectedAndRepairedBitExact) {
  auto f = Fixture::make();
  const index_t n_cpis = 8;
  const auto ref = run_pipeline(f, n_cpis, /*abft=*/true, nullptr);
  ASSERT_TRUE(ref.integrity.clean());
  // The CFAR flip needs a report to corrupt on the target CPI, so aim at
  // a mid-stream CPI that actually produced detections.
  index_t flip_cpi = -1;
  for (index_t cpi = 2; cpi < n_cpis - 1; ++cpi)
    if (!ref.detections[static_cast<size_t>(cpi)].empty()) {
      flip_cpi = cpi;
      break;
    }
  ASSERT_GE(flip_cpi, 0) << "scene produced no detections to corrupt";

  for (int task = 0; task < stap::kNumTasks; ++task) {
    FaultPlan plan(/*seed=*/77);
    plan.add_compute(FaultPlan::flip_stage(task, flip_cpi));
    const auto res = run_pipeline(f, n_cpis, /*abft=*/true, &plan);
    EXPECT_GE(plan.stats().flips, 1u) << "task=" << task;
    // Every injected flip was caught (the detection-rate identity) and
    // repaired by the single bounded recompute.
    EXPECT_EQ(res.integrity.checks_failed, plan.stats().flips)
        << "task=" << task;
    EXPECT_EQ(res.integrity.repairs, res.integrity.checks_failed)
        << "task=" << task;
    EXPECT_EQ(res.integrity.escalations, 0u) << "task=" << task;
    ASSERT_EQ(res.integrity.events.size(),
              static_cast<size_t>(res.integrity.checks_failed));
    for (const auto& e : res.integrity.events) {
      EXPECT_EQ(e.task, task);
      EXPECT_EQ(e.cpi, flip_cpi);
      EXPECT_TRUE(e.repaired);
    }
    // Repair means bit-exact, not approximately right.
    EXPECT_TRUE(same_detections(res.detections, ref.detections))
        << "task=" << task;
  }
}

TEST(IntegrityPipeline, PersistentCorruptionEscalatesToOneLedgeredShed) {
  auto f = Fixture::make();
  const index_t n_cpis = 6;
  const index_t bad_cpi = 3;
  const auto ref = run_pipeline(f, n_cpis, /*abft=*/true, nullptr);

  FaultPlan plan(/*seed=*/78);
  plan.add_compute(FaultPlan::flip_stage(
      static_cast<int>(Task::kDopplerFilter), bad_cpi, /*bit=*/30,
      /*max_applications=*/2));  // corrupt the recompute too
  const auto res = run_pipeline(f, n_cpis, /*abft=*/true, &plan);

  EXPECT_EQ(res.integrity.escalations, 1u);
  EXPECT_EQ(res.integrity.recomputes, 1u);
  EXPECT_EQ(res.integrity.repairs, 0u);
  ASSERT_FALSE(res.integrity.events.empty());
  EXPECT_FALSE(res.integrity.events.back().repaired);
  EXPECT_EQ(res.integrity.events.back().cpi, bad_cpi);
  EXPECT_EQ(res.integrity.events.back().task,
            static_cast<int>(Task::kDopplerFilter));
  // The corrupt CPI was refused, not published: exactly one shed. CPIs
  // before it are bit-exact; CPIs after it legitimately diverge from the
  // fault-free reference because the shed CPI's training snapshots are
  // missing from the adaptive weight history.
  ASSERT_EQ(res.faults.shed_cpis, std::vector<index_t>{bad_cpi});
  EXPECT_TRUE(res.detections[static_cast<size_t>(bad_cpi)].empty());
  for (index_t cpi = 0; cpi < bad_cpi; ++cpi)
    EXPECT_TRUE(same_detections(
        {res.detections[static_cast<size_t>(cpi)]},
        {ref.detections[static_cast<size_t>(cpi)]}))
        << "cpi=" << cpi;
}

}  // namespace
}  // namespace ppstap
