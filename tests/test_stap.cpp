// Tests for the STAP algorithm kernels and the sequential reference chain:
// parameter derivations, training selection, Doppler filtering (PRI
// stagger), adaptive weights (clutter nulling, mainbeam preservation),
// beamforming, pulse compression, CFAR statistics, and end-to-end target
// detection in clutter.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/flops.hpp"
#include "common/rng.hpp"
#include "dsp/waveform.hpp"
#include "stap/beamform.hpp"
#include "stap/cfar.hpp"
#include "stap/doppler.hpp"
#include "stap/flops.hpp"
#include "stap/params.hpp"
#include "stap/pulse_compression.hpp"
#include "stap/sequential.hpp"
#include "stap/training.hpp"
#include "stap/weights.hpp"
#include "synth/scenario.hpp"
#include "synth/steering.hpp"

namespace ppstap::stap {
namespace {

using synth::ScenarioGenerator;
using synth::ScenarioParams;
using synth::Target;

// ---------------------------------------------------------------------------
// Parameters
// ---------------------------------------------------------------------------

TEST(Params, DefaultMatchesPaperConfiguration) {
  StapParams p;
  p.validate();
  EXPECT_EQ(p.num_range, 512);
  EXPECT_EQ(p.num_channels, 16);
  EXPECT_EQ(p.num_pulses, 128);
  EXPECT_EQ(p.num_beams, 6);
  EXPECT_EQ(p.num_hard, 56);
  EXPECT_EQ(p.num_easy(), 72);
  EXPECT_EQ(p.window_length(), 125);
}

TEST(Params, EasyHardSplitIsAPartition) {
  StapParams p;
  auto easy = p.easy_bins();
  auto hard = p.hard_bins();
  EXPECT_EQ(static_cast<index_t>(easy.size()), p.num_easy());
  EXPECT_EQ(static_cast<index_t>(hard.size()), p.num_hard);
  std::vector<bool> seen(static_cast<size_t>(p.num_pulses), false);
  for (auto b : easy) seen[static_cast<size_t>(b)] = true;
  for (auto b : hard) {
    EXPECT_FALSE(seen[static_cast<size_t>(b)]);
    seen[static_cast<size_t>(b)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Params, HardBinsAreNearZeroDoppler) {
  StapParams p;
  // Bins 0..27 and 100..127 are hard (mainbeam clutter is centered at DC).
  EXPECT_TRUE(p.is_hard_bin(0));
  EXPECT_TRUE(p.is_hard_bin(27));
  EXPECT_FALSE(p.is_hard_bin(28));
  EXPECT_FALSE(p.is_hard_bin(99));
  EXPECT_TRUE(p.is_hard_bin(100));
  EXPECT_TRUE(p.is_hard_bin(127));
}

TEST(Params, SegmentsTileTheRangeExtent) {
  StapParams p;
  index_t covered = 0;
  for (index_t s = 0; s < p.num_segments; ++s) {
    EXPECT_EQ(p.segment_begin(s), covered);
    covered = p.segment_end(s);
  }
  EXPECT_EQ(covered, p.num_range);
}

TEST(Params, CfarScaleReproducesExponentialPfa) {
  StapParams p;
  p.cfar_pfa = 1e-4;
  // For exponential power with W reference cells, PFA = (1 + a/W)^-W.
  for (index_t w : {4, 8, 16}) {
    const double a = p.cfar_scale(w);
    const double pfa = std::pow(1.0 + a / static_cast<double>(w),
                                -static_cast<double>(w));
    EXPECT_NEAR(pfa, 1e-4, 1e-7);
  }
}

TEST(Params, ValidateRejectsBadConfigurations) {
  StapParams p = StapParams::small_test();
  p.num_hard = p.num_pulses;  // no easy bins left
  EXPECT_THROW(p.validate(), Error);
  p = StapParams::small_test();
  p.stagger = p.num_pulses;
  EXPECT_THROW(p.validate(), Error);
  p = StapParams::small_test();
  p.forgetting = 0.0;
  EXPECT_THROW(p.validate(), Error);
  p = StapParams::small_test();
  p.hard_samples_per_segment = p.num_range;  // exceeds a segment
  EXPECT_THROW(p.validate(), Error);
}

// ---------------------------------------------------------------------------
// Training selection
// ---------------------------------------------------------------------------

TEST(Training, EasyCellsSortedAndInRange) {
  StapParams p;
  auto cells = easy_training_cells(p);
  EXPECT_EQ(static_cast<index_t>(cells.size()), p.easy_samples_per_cpi);
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_GE(cells[i], 0);
    EXPECT_LT(cells[i], p.num_range);
    if (i > 0) {
      EXPECT_GT(cells[i], cells[i - 1]);
    }
  }
}

TEST(Training, HardCellsStayInsideTheirSegment) {
  StapParams p;
  for (index_t s = 0; s < p.num_segments; ++s) {
    auto cells = hard_training_cells(p, s);
    EXPECT_EQ(static_cast<index_t>(cells.size()),
              p.hard_samples_per_segment);
    for (auto c : cells) {
      EXPECT_GE(c, p.segment_begin(s));
      EXPECT_LT(c, p.segment_end(s));
    }
  }
}

TEST(Training, GatherReadsTheRightCubeEntries) {
  StapParams p = StapParams::small_test();
  cube::CpiCube stag(p.num_range, p.num_staggered_channels(), p.num_pulses);
  for (index_t k = 0; k < p.num_range; ++k)
    for (index_t j = 0; j < p.num_staggered_channels(); ++j)
      for (index_t n = 0; n < p.num_pulses; ++n)
        stag.at(k, j, n) =
            cfloat(static_cast<float>(k), static_cast<float>(j * 100 + n));
  auto cells = easy_training_cells(p);
  const index_t bin = 5;
  auto m = gather_training(stag, cells, bin, /*staggered_pair=*/false, p);
  EXPECT_EQ(m.rows(), static_cast<index_t>(cells.size()));
  EXPECT_EQ(m.cols(), p.num_channels);
  for (index_t r = 0; r < m.rows(); ++r)
    for (index_t j = 0; j < p.num_channels; ++j)
      EXPECT_EQ(m(r, j), stag.at(cells[static_cast<size_t>(r)], j, bin));
}

TEST(Training, SlabGatherEqualsGlobalGather) {
  // Gathering from two half-slabs (what the parallel Doppler ranks do)
  // produces the same training matrix as a single global gather.
  StapParams p = StapParams::small_test();
  cube::CpiCube stag(p.num_range, p.num_staggered_channels(), p.num_pulses);
  for (index_t i = 0; i < stag.size(); ++i)
    stag.data()[i] = cfloat(static_cast<float>(i % 97),
                            static_cast<float>(i % 89));
  auto cells = hard_training_cells(p, 1);
  const index_t bin = 1;
  auto whole = gather_training(stag, cells, bin, true, p);

  const index_t half = p.num_range / 2;
  cube::CpiCube lo_slab(half, p.num_staggered_channels(), p.num_pulses);
  cube::CpiCube hi_slab(p.num_range - half, p.num_staggered_channels(),
                        p.num_pulses);
  for (index_t k = 0; k < p.num_range; ++k)
    for (index_t j = 0; j < p.num_staggered_channels(); ++j)
      for (index_t n = 0; n < p.num_pulses; ++n) {
        if (k < half)
          lo_slab.at(k, j, n) = stag.at(k, j, n);
        else
          hi_slab.at(k - half, j, n) = stag.at(k, j, n);
      }
  linalg::MatrixCF pieced(static_cast<index_t>(cells.size()),
                          p.num_staggered_channels());
  // Count rows contributed by the low slab to find the high slab's offset.
  index_t lo_rows = 0;
  for (auto c : cells)
    if (c < half) ++lo_rows;
  gather_training_rows(lo_slab, 0, cells, bin, true, p, pieced, 0);
  gather_training_rows(hi_slab, half, cells, bin, true, p, pieced, lo_rows);
  EXPECT_LT(linalg::frobenius_distance(whole, pieced), 1e-12f);
}

// ---------------------------------------------------------------------------
// Doppler filtering
// ---------------------------------------------------------------------------

TEST(Doppler, OutputShapeIsStaggered) {
  StapParams p = StapParams::small_test();
  cube::CpiCube cpi(p.num_range, p.num_channels, p.num_pulses);
  DopplerFilter f(p);
  auto out = f.filter(cpi);
  EXPECT_EQ(out.extent(0), p.num_range);
  EXPECT_EQ(out.extent(1), 2 * p.num_channels);
  EXPECT_EQ(out.extent(2), p.num_pulses);
}

TEST(Doppler, ToneLandsInItsBin) {
  StapParams p = StapParams::small_test();
  p.window = dsp::WindowKind::kRectangular;  // sharpest bins for the test
  const index_t bin = 5;
  const double f = static_cast<double>(bin) / static_cast<double>(p.num_pulses);
  cube::CpiCube cpi(p.num_range, p.num_channels, p.num_pulses);
  auto tone = synth::temporal_steering(p.num_pulses, f);
  for (index_t n = 0; n < p.num_pulses; ++n)
    cpi.at(3, 1, n) = tone[static_cast<size_t>(n)];

  auto out = DopplerFilter(p).filter(cpi);
  double best = 0;
  index_t best_bin = -1;
  for (index_t b = 0; b < p.num_pulses; ++b) {
    const double mag = std::abs(out.at(3, 1, b));
    if (mag > best) {
      best = mag;
      best_bin = b;
    }
  }
  EXPECT_EQ(best_bin, bin);
  // Other range cells / channels stay empty.
  EXPECT_NEAR(std::abs(out.at(4, 1, bin)), 0.0, 1e-5);
  EXPECT_NEAR(std::abs(out.at(3, 2, bin)), 0.0, 1e-5);
}

TEST(Doppler, StaggerPhaseRelation) {
  // For a pure tone at frequency f, the second stagger window's spectrum is
  // the first one's times exp(j 2 pi f s) — the phase the hard weight
  // constraint compensates.
  StapParams p = StapParams::small_test();
  const index_t bin = 4;
  const double f = static_cast<double>(bin) / static_cast<double>(p.num_pulses);
  cube::CpiCube cpi(p.num_range, p.num_channels, p.num_pulses);
  auto tone = synth::temporal_steering(p.num_pulses, f);
  for (index_t n = 0; n < p.num_pulses; ++n)
    cpi.at(0, 0, n) = tone[static_cast<size_t>(n)];

  auto out = DopplerFilter(p).filter(cpi);
  const cfloat x1 = out.at(0, 0, bin);
  const cfloat x2 = out.at(0, p.num_channels, bin);
  ASSERT_GT(std::abs(x1), 1e-3);
  const cfloat ratio = x2 / x1;
  const double expected =
      2.0 * std::numbers::pi * f * static_cast<double>(p.stagger);
  EXPECT_NEAR(std::arg(ratio), std::remainder(expected, 2 * std::numbers::pi),
              1e-3);
  EXPECT_NEAR(std::abs(ratio), 1.0, 1e-3);
}

TEST(Doppler, RangeCorrectionAppliesTheDesignedGain) {
  StapParams p = StapParams::small_test();
  p.range_correction = true;
  p.range_start_cells = 32.0;
  p.range_correction_exp = 4.0;
  DopplerFilter f(p);
  // Identical signals at two range cells: the output ratio must equal the
  // gain ratio.
  cube::CpiCube cpi(p.num_range, p.num_channels, p.num_pulses);
  for (index_t n = 0; n < p.num_pulses; ++n) {
    cpi.at(4, 0, n) = cfloat(1.0f, 0.5f);
    cpi.at(40, 0, n) = cfloat(1.0f, 0.5f);
  }
  auto out = f.filter(cpi);
  const double expected =
      std::pow((32.0 + 40.0) / (32.0 + 4.0), 2.0);  // exp/2 = 2 amplitude
  EXPECT_NEAR(std::abs(out.at(40, 0, 0)) / std::abs(out.at(4, 0, 0)),
              expected, 1e-3 * expected);
  // Gain at cell 0 is exactly 1... relative to the standoff reference.
  EXPECT_NEAR(f.range_gain(0), 1.0f, 1e-6f);
  EXPECT_GT(f.range_gain(p.num_range - 1), 1.0f);
}

TEST(Doppler, SlabOffsetMatchesGlobalFilterUnderRangeCorrection) {
  StapParams p = StapParams::small_test();
  p.range_correction = true;
  DopplerFilter f(p);
  Rng rng(12);
  cube::CpiCube cpi(p.num_range, p.num_channels, p.num_pulses);
  for (index_t i = 0; i < cpi.size(); ++i) {
    auto z = rng.cnormal();
    cpi.data()[i] = cfloat(static_cast<float>(z.real()),
                           static_cast<float>(z.imag()));
  }
  auto whole = f.filter(cpi);
  // Filter the upper half as a slab with the matching global offset.
  const index_t half = p.num_range / 2;
  cube::CpiCube slab(p.num_range - half, p.num_channels, p.num_pulses);
  for (index_t k = half; k < p.num_range; ++k)
    for (index_t j = 0; j < p.num_channels; ++j) {
      auto src = cpi.line(k, j);
      std::copy(src.begin(), src.end(), slab.line(k - half, j).begin());
    }
  auto part = f.filter(slab, half);
  double err = 0;
  for (index_t k = 0; k < slab.extent(0); ++k)
    for (index_t j = 0; j < 2 * p.num_channels; ++j)
      for (index_t n = 0; n < p.num_pulses; ++n)
        err = std::max(err, static_cast<double>(std::abs(
                                part.at(k, j, n) - whole.at(half + k, j, n))));
  EXPECT_LT(err, 1e-6);
}

TEST(Doppler, LinearInInput) {
  StapParams p = StapParams::small_test();
  DopplerFilter f(p);
  cube::CpiCube a(p.num_range, p.num_channels, p.num_pulses);
  cube::CpiCube b(p.num_range, p.num_channels, p.num_pulses);
  Rng rng(5);
  for (index_t i = 0; i < a.size(); ++i) {
    auto za = rng.cnormal(), zb = rng.cnormal();
    a.data()[i] = cfloat(static_cast<float>(za.real()),
                         static_cast<float>(za.imag()));
    b.data()[i] = cfloat(static_cast<float>(zb.real()),
                         static_cast<float>(zb.imag()));
  }
  cube::CpiCube sum(p.num_range, p.num_channels, p.num_pulses);
  for (index_t i = 0; i < sum.size(); ++i)
    sum.data()[i] = a.data()[i] + b.data()[i];
  auto fa = f.filter(a), fb = f.filter(b), fsum = f.filter(sum);
  double err = 0;
  for (index_t i = 0; i < fsum.size(); ++i)
    err = std::max(err, static_cast<double>(std::abs(
                            fsum.data()[i] - fa.data()[i] - fb.data()[i])));
  EXPECT_LT(err, 1e-3);
}

// ---------------------------------------------------------------------------
// Weights
// ---------------------------------------------------------------------------

linalg::MatrixCF one_beam_steering(index_t j) {
  linalg::MatrixCF s(j, 1);
  auto a = synth::spatial_steering(j, 0.0);
  for (index_t r = 0; r < j; ++r) s(r, 0) = a[static_cast<size_t>(r)];
  return s;
}

TEST(Weights, QuiescentEqualsNormalizedSteering) {
  StapParams p = StapParams::small_test();
  p.num_beams = 1;
  auto steering = one_beam_steering(p.num_channels);
  EasyWeightComputer comp(p, steering, p.easy_bins());
  auto w = comp.compute();
  ASSERT_EQ(w.weights.size(), static_cast<size_t>(p.num_easy()));
  const float expect = 1.0f / std::sqrt(static_cast<float>(p.num_channels));
  for (const auto& wm : w.weights)
    for (index_t r = 0; r < p.num_channels; ++r)
      EXPECT_NEAR(std::abs(wm(r, 0)), expect, 1e-5);
}

TEST(Weights, ColumnsAreUnitNorm) {
  linalg::MatrixCF w(4, 2);
  w(0, 0) = cfloat(3, 0);
  w(1, 0) = cfloat(0, 4);
  w(2, 1) = cfloat(1, 1);
  normalize_columns(w);
  double n0 = 0, n1 = 0;
  for (index_t r = 0; r < 4; ++r) {
    n0 += std::norm(w(r, 0));
    n1 += std::norm(w(r, 1));
  }
  EXPECT_NEAR(n0, 1.0, 1e-6);
  EXPECT_NEAR(n1, 1.0, 1e-6);
}

// An interference-nulling scenario: training snapshots dominated by a
// single spatial interferer away from broadside. The adapted weights must
// null it while keeping gain toward the (broadside) steering direction.
TEST(Weights, EasyWeightsNullTheInterferer) {
  StapParams p = StapParams::small_test();
  p.num_beams = 1;
  const index_t j = p.num_channels;
  auto steering = one_beam_steering(j);
  const double interferer_az = 0.6;
  auto v_int = synth::spatial_steering(j, interferer_az);

  std::vector<index_t> bins = {p.easy_bins()[0]};
  EasyWeightComputer comp(p, steering, bins);
  Rng rng(9);
  std::vector<linalg::MatrixCF> training;
  linalg::MatrixCF x(64, j);
  for (index_t r = 0; r < 64; ++r) {
    const cdouble amp = rng.cnormal() * 31.6;  // ~30 dB interferer
    for (index_t c = 0; c < j; ++c) {
      const cdouble noise = rng.cnormal() * 0.1;
      const cdouble val =
          amp * cdouble(v_int[static_cast<size_t>(c)].real(),
                        v_int[static_cast<size_t>(c)].imag()) +
          noise;
      x(r, c) = cfloat(static_cast<float>(val.real()),
                       static_cast<float>(val.imag()));
    }
  }
  training.push_back(std::move(x));
  comp.push_training(std::move(training));
  auto w = comp.compute();
  const auto& wm = w.weights[0];

  // Response toward the interferer vs. toward the look direction.
  cfloat toward_int{}, toward_look{};
  auto v_look = synth::spatial_steering(j, 0.0);
  for (index_t c = 0; c < j; ++c) {
    toward_int += std::conj(wm(c, 0)) * v_int[static_cast<size_t>(c)];
    toward_look += std::conj(wm(c, 0)) * v_look[static_cast<size_t>(c)];
  }
  EXPECT_GT(std::abs(toward_look), 20.0 * std::abs(toward_int))
      << "look=" << std::abs(toward_look) << " int=" << std::abs(toward_int);
}

TEST(Weights, HardRecursiveNullsPersistentInterferer) {
  StapParams p = StapParams::small_test();
  p.num_beams = 1;
  const index_t j = p.num_channels;
  const index_t jj = p.num_staggered_channels();
  auto steering = one_beam_steering(j);
  const index_t bin = p.hard_bins()[0];
  HardWeightComputer comp(p, steering, {HardUnit{bin, 0}});

  const double interferer_az = 0.5;
  auto v_int = synth::spatial_steering(j, interferer_az);
  Rng rng(21);
  // Several CPIs of training: interferer identical in both stagger halves
  // (zero-Doppler-ish), plus noise.
  for (int cpi = 0; cpi < 6; ++cpi) {
    linalg::MatrixCF x(static_cast<index_t>(p.hard_samples_per_segment), jj);
    for (index_t r = 0; r < x.rows(); ++r) {
      const cdouble amp = rng.cnormal() * 31.6;
      for (index_t c = 0; c < jj; ++c) {
        const cdouble noise = rng.cnormal() * 0.1;
        const auto& vi = v_int[static_cast<size_t>(c % j)];
        const cdouble val = amp * cdouble(vi.real(), vi.imag()) + noise;
        x(r, c) = cfloat(static_cast<float>(val.real()),
                         static_cast<float>(val.imag()));
      }
    }
    comp.update({x});
  }
  auto w = comp.compute();
  const auto& wm = w[0];
  ASSERT_EQ(wm.rows(), jj);

  // Interference response of the stacked weight pair (same signal in both
  // halves) vs. the constrained steering response.
  cfloat toward_int{};
  for (index_t c = 0; c < jj; ++c)
    toward_int += std::conj(wm(c, 0)) * v_int[static_cast<size_t>(c % j)];
  // Constrained target response: w1 + e^{j phi} w2 combined with steering.
  const double phi = -2.0 * std::numbers::pi * static_cast<double>(bin) *
                     static_cast<double>(p.stagger) /
                     static_cast<double>(p.num_pulses);
  const cfloat ph(static_cast<float>(std::cos(phi)),
                  static_cast<float>(std::sin(phi)));
  auto v_look = synth::spatial_steering(j, 0.0);
  cfloat toward_look{};
  for (index_t c = 0; c < j; ++c)
    toward_look += std::conj(wm(c, 0) + ph * wm(j + c, 0)) *
                   v_look[static_cast<size_t>(c)];
  EXPECT_GT(std::abs(toward_look), 10.0 * std::abs(toward_int));
}

TEST(Weights, ConventionalLsAlsoNullsButLosesTargetGain) {
  // The Appendix-A comparison: conventional least squares (Fig. 12) vs the
  // constrained formulation. With scarce sample support the conventional
  // solution sacrifices gain on the target; the constrained one does not.
  StapParams p = StapParams::small_test();
  p.num_channels = 8;
  p.num_beams = 1;
  p.beam_span_rad = 0.0;
  const index_t j = p.num_channels;
  auto steering = one_beam_steering(j);
  auto v_int = synth::spatial_steering(j, 0.5);

  Rng rng(99);
  linalg::MatrixCF x(12, j);  // barely overdetermined
  for (index_t r = 0; r < x.rows(); ++r) {
    const cdouble amp = rng.cnormal() * 31.6;
    for (index_t c = 0; c < j; ++c) {
      const cdouble n = rng.cnormal();
      const auto& vc = v_int[static_cast<size_t>(c)];
      const cdouble val = amp * cdouble(vc.real(), vc.imag()) + n;
      x(r, c) = cfloat(static_cast<float>(val.real()),
                       static_cast<float>(val.imag()));
    }
  }
  const auto w_ls = conventional_ls_weights(x, steering);
  EXPECT_EQ(w_ls.rows(), j);
  EXPECT_EQ(w_ls.cols(), 1);

  EasyWeightComputer comp(p, steering, {p.easy_bins()[0]});
  std::vector<linalg::MatrixCF> push;
  push.push_back(x);
  comp.push_training(std::move(push));
  const auto w_con = comp.compute().weights[0];

  // Both null the interferer (>= 15 dB below the matched response).
  auto response = [&](const linalg::MatrixCF& w,
                      std::span<const cfloat> v) {
    cfloat acc{};
    for (index_t c = 0; c < j; ++c)
      acc += std::conj(w(c, 0)) * v[static_cast<size_t>(c)];
    return static_cast<double>(std::abs(acc));
  };
  auto v_look = synth::spatial_steering(j, 0.0);
  const double sqrt_j = std::sqrt(static_cast<double>(j));
  EXPECT_LT(response(w_ls, v_int), 0.2 * sqrt_j);
  EXPECT_LT(response(w_con, v_int), 0.2 * sqrt_j);
  // The constrained solution keeps (nearly) the full matched target gain;
  // the conventional one gives a measurable part of it away.
  EXPECT_GT(response(w_con, v_look), 0.97 * sqrt_j);
  EXPECT_GT(response(w_con, v_look), response(w_ls, v_look));
}

TEST(Weights, ConventionalLsShapeMismatchThrows) {
  linalg::MatrixCF training(10, 4);
  linalg::MatrixCF steering(5, 1);
  EXPECT_THROW(conventional_ls_weights(training, steering), Error);
}

TEST(Weights, HistoryWindowDropsOldCpis) {
  StapParams p = StapParams::small_test();
  p.num_beams = 1;
  p.easy_history = 2;
  auto steering = one_beam_steering(p.num_channels);
  std::vector<index_t> bins = {p.easy_bins()[0]};
  EasyWeightComputer comp(p, steering, bins);

  // Push three distinct training sets; weights must depend only on the last
  // two — verified by pushing a fourth identical to the second+third and
  // comparing.
  auto make = [&](float scale) {
    linalg::MatrixCF x(8, p.num_channels);
    for (index_t r = 0; r < 8; ++r)
      for (index_t c = 0; c < p.num_channels; ++c)
        x(r, c) = cfloat(scale * static_cast<float>(r + 1),
                         scale * static_cast<float>(c));
    std::vector<linalg::MatrixCF> v;
    v.push_back(std::move(x));
    return v;
  };
  comp.push_training(make(1.0f));
  comp.push_training(make(2.0f));
  comp.push_training(make(3.0f));
  auto w_after3 = comp.compute();

  EasyWeightComputer fresh(p, steering, bins);
  fresh.push_training(make(2.0f));
  fresh.push_training(make(3.0f));
  auto w_fresh = fresh.compute();
  EXPECT_LT(linalg::frobenius_distance(w_after3.weights[0],
                                       w_fresh.weights[0]),
            1e-5f);
}

TEST(Weights, ExponentialForgettingDropsStaleInterference) {
  // The paper's hard-bin recursion exists because azimuth positions are
  // revisited: old looks must fade. Train on interferer A, then switch to
  // interferer B; after enough updates the weights must null B and have
  // largely released A (lambda^updates decay).
  StapParams p = StapParams::small_test();
  p.num_beams = 1;
  p.forgetting = 0.6;
  const index_t j = p.num_channels;
  const index_t jj = p.num_staggered_channels();
  auto steering = one_beam_steering(j);
  const index_t bin = p.hard_bins()[0];
  HardWeightComputer comp(p, steering, {HardUnit{bin, 0}});

  Rng rng(77);
  auto make_training = [&](const std::vector<cfloat>& v) {
    linalg::MatrixCF x(static_cast<index_t>(p.hard_samples_per_segment), jj);
    for (index_t r = 0; r < x.rows(); ++r) {
      const cdouble amp = rng.cnormal() * 31.6;
      for (index_t c = 0; c < jj; ++c) {
        const cdouble n = rng.cnormal() * 0.1;
        const auto& vc = v[static_cast<size_t>(c % j)];
        const cdouble val = amp * cdouble(vc.real(), vc.imag()) + n;
        x(r, c) = cfloat(static_cast<float>(val.real()),
                         static_cast<float>(val.imag()));
      }
    }
    return x;
  };
  const auto v_a = synth::spatial_steering(j, 0.55);
  const auto v_b = synth::spatial_steering(j, -0.45);

  for (int i = 0; i < 8; ++i) comp.update({make_training(v_a)});
  const auto w_after_a = comp.compute()[0];
  for (int i = 0; i < 10; ++i) comp.update({make_training(v_b)});
  const auto w_after_b = comp.compute()[0];

  auto stacked_response = [&](const linalg::MatrixCF& w,
                              const std::vector<cfloat>& v) {
    cfloat acc{};
    for (index_t c = 0; c < jj; ++c)
      acc += std::conj(w(c, 0)) * v[static_cast<size_t>(c % j)];
    return static_cast<double>(std::abs(acc));
  };
  // While A is live it is deeply nulled.
  EXPECT_LT(stacked_response(w_after_a, v_a), 0.05);
  // After B takes over: B nulled, A substantially released (an order of
  // magnitude shallower null than B's).
  EXPECT_LT(stacked_response(w_after_b, v_b), 0.05);
  EXPECT_GT(stacked_response(w_after_b, v_a),
            10.0 * stacked_response(w_after_b, v_b));
}

TEST(Weights, LongRecursionStaysNumericallyStable) {
  // Hundreds of forgetting-factor updates: R must remain finite and the
  // solves well conditioned (the recursion is used for the whole flight).
  StapParams p = StapParams::small_test();
  p.num_beams = 1;
  auto steering = one_beam_steering(p.num_channels);
  const index_t jj = p.num_staggered_channels();
  HardWeightComputer comp(p, steering, {HardUnit{p.hard_bins()[1], 1}});
  Rng rng(31);
  for (int i = 0; i < 300; ++i) {
    linalg::MatrixCF x(static_cast<index_t>(p.hard_samples_per_segment), jj);
    for (index_t r = 0; r < x.rows(); ++r)
      for (index_t c = 0; c < jj; ++c) {
        auto z = rng.cnormal();
        x(r, c) = cfloat(static_cast<float>(z.real()),
                         static_cast<float>(z.imag()));
      }
    comp.update({x});
  }
  const auto w = comp.compute()[0];
  double norm_sq = 0;
  for (index_t c = 0; c < jj; ++c) {
    EXPECT_TRUE(std::isfinite(w(c, 0).real()));
    EXPECT_TRUE(std::isfinite(w(c, 0).imag()));
    norm_sq += std::norm(w(c, 0));
  }
  EXPECT_NEAR(norm_sq, 1.0, 1e-4);
}

TEST(Weights, MismatchedTrainingShapeThrows) {
  StapParams p = StapParams::small_test();
  auto steering = synth::steering_matrix(p.num_channels, p.num_beams,
                                         p.beam_center_rad, p.beam_span_rad);
  EasyWeightComputer comp(p, steering, {p.easy_bins()[0]});
  std::vector<linalg::MatrixCF> bad;
  bad.emplace_back(4, p.num_channels + 1);
  EXPECT_THROW(comp.push_training(std::move(bad)), Error);
  HardWeightComputer hcomp(p, steering, {HardUnit{p.hard_bins()[0], 0}});
  std::vector<linalg::MatrixCF> bad2;
  bad2.emplace_back(4, p.num_channels);  // must be 2J
  EXPECT_THROW(hcomp.update(bad2), Error);
}

// ---------------------------------------------------------------------------
// Beamforming
// ---------------------------------------------------------------------------

TEST(Beamform, EasyMatchesExplicitProduct) {
  StapParams p = StapParams::small_test();
  const index_t nb = 3;
  cube::CpiCube data(nb, p.num_range, p.num_channels);
  Rng rng(31);
  for (index_t i = 0; i < data.size(); ++i) {
    auto z = rng.cnormal();
    data.data()[i] = cfloat(static_cast<float>(z.real()),
                            static_cast<float>(z.imag()));
  }
  WeightSet w;
  w.bins = {0, 1, 2};
  for (int b = 0; b < 3; ++b) {
    linalg::MatrixCF wm(p.num_channels, p.num_beams);
    for (index_t r = 0; r < p.num_channels; ++r)
      for (index_t c = 0; c < p.num_beams; ++c) {
        auto z = rng.cnormal();
        wm(r, c) = cfloat(static_cast<float>(z.real()),
                          static_cast<float>(z.imag()));
      }
    w.weights.push_back(std::move(wm));
  }
  auto out = easy_beamform(data, w, p);
  EXPECT_EQ(out.extent(0), nb);
  EXPECT_EQ(out.extent(1), p.num_beams);
  EXPECT_EQ(out.extent(2), p.num_range);
  for (index_t b = 0; b < nb; ++b)
    for (index_t m = 0; m < p.num_beams; ++m)
      for (index_t k = 0; k < p.num_range; k += 7) {
        cfloat ref{};
        for (index_t c = 0; c < p.num_channels; ++c)
          ref += std::conj(w.weights[static_cast<size_t>(b)](c, m)) *
                 data.at(b, k, c);
        EXPECT_NEAR(std::abs(out.at(b, m, k) - ref), 0.0, 1e-4);
      }
}

TEST(Beamform, HardAppliesPerSegmentWeights) {
  StapParams p = StapParams::small_test();
  p.num_beams = 1;
  const index_t jj = p.num_staggered_channels();
  cube::CpiCube data(1, p.num_range, jj);
  for (index_t k = 0; k < p.num_range; ++k)
    for (index_t c = 0; c < jj; ++c) data.at(0, k, c) = cfloat(1.0f, 0.0f);

  WeightSet w;
  w.bins = {0};
  for (index_t s = 0; s < p.num_segments; ++s) {
    linalg::MatrixCF wm(jj, 1);
    // Weight distinguishable per segment: w = (s+1)/jj on channel 0.
    wm(0, 0) = cfloat(static_cast<float>(s + 1), 0.0f);
    w.weights.push_back(std::move(wm));
  }
  auto out = hard_beamform(data, w, p);
  for (index_t s = 0; s < p.num_segments; ++s)
    for (index_t k = p.segment_begin(s); k < p.segment_end(s); ++k)
      EXPECT_NEAR(out.at(0, 0, k).real(), static_cast<float>(s + 1), 1e-5);
}

TEST(Beamform, WrongChannelCountThrows) {
  StapParams p = StapParams::small_test();
  cube::CpiCube data(1, p.num_range, p.num_channels);  // J channels
  WeightSet w;
  w.bins = {0};
  w.weights.emplace_back(p.num_staggered_channels(), p.num_beams);
  EXPECT_THROW(hard_beamform(data, w, p), Error);  // hard expects 2J
}

// ---------------------------------------------------------------------------
// Pulse compression
// ---------------------------------------------------------------------------

TEST(PulseCompression, CompressesChirpReturnToItsRange) {
  StapParams p = StapParams::small_test();
  const index_t l = 8, target = 20;
  auto replica = dsp::lfm_chirp(l);
  cube::CpiCube bf(1, 1, p.num_range);
  // The beamformed line holds a chirp starting at `target` (circular).
  for (index_t i = 0; i < l; ++i)
    bf.at(0, 0, (target + i) % p.num_range) = replica[static_cast<size_t>(i)];

  PulseCompressor pc(p, replica);
  auto power = pc.compress(bf);
  index_t peak = 0;
  for (index_t k = 1; k < p.num_range; ++k)
    if (power.at(0, 0, k) > power.at(0, 0, peak)) peak = k;
  EXPECT_EQ(peak, target);
  EXPECT_NEAR(power.at(0, 0, target), 1.0, 1e-3);  // energy 1 -> power 1
}

TEST(PulseCompression, EmptyReplicaIsPureDetection) {
  StapParams p = StapParams::small_test();
  cube::CpiCube bf(2, 1, p.num_range);
  bf.at(1, 0, 3) = cfloat(3.0f, 4.0f);
  PulseCompressor pc(p, {});
  auto power = pc.compress(bf);
  EXPECT_NEAR(power.at(1, 0, 3), 25.0f, 1e-4);
  EXPECT_EQ(power.at(0, 0, 3), 0.0f);
}

TEST(PulseCompression, OutputIsNonNegative) {
  StapParams p = StapParams::small_test();
  auto replica = dsp::lfm_chirp(8);
  cube::CpiCube bf(2, 2, p.num_range);
  Rng rng(3);
  for (index_t i = 0; i < bf.size(); ++i) {
    auto z = rng.cnormal();
    bf.data()[i] = cfloat(static_cast<float>(z.real()),
                          static_cast<float>(z.imag()));
  }
  auto power = PulseCompressor(p, replica).compress(bf);
  for (index_t i = 0; i < power.size(); ++i)
    EXPECT_GE(power.data()[i], 0.0f);
}

// ---------------------------------------------------------------------------
// CFAR
// ---------------------------------------------------------------------------

TEST(Cfar, DetectsIsolatedSpike) {
  StapParams p = StapParams::small_test();
  cube::RealCube power(1, 1, p.num_range);
  Rng rng(17);
  for (index_t k = 0; k < p.num_range; ++k)
    power.at(0, 0, k) = static_cast<float>(std::norm(rng.cnormal()));
  power.at(0, 0, 30) = 1000.0f;
  std::vector<index_t> bins = {7};
  auto dets = cfar_detect(power, bins, p);
  ASSERT_GE(dets.size(), 1u);
  bool found = false;
  for (const auto& d : dets)
    if (d.range == 30 && d.doppler_bin == 7 && d.beam == 0) found = true;
  EXPECT_TRUE(found);
}

TEST(Cfar, FalseAlarmRateNearDesignPfa) {
  StapParams p = StapParams::small_test();
  p.cfar_pfa = 1e-2;
  const index_t trials = 400;
  cube::RealCube power(trials, 1, p.num_range);
  Rng rng(23);
  for (index_t i = 0; i < power.size(); ++i)
    power.data()[i] = static_cast<float>(std::norm(rng.cnormal()));
  std::vector<index_t> bins(static_cast<size_t>(trials));
  for (index_t i = 0; i < trials; ++i) bins[static_cast<size_t>(i)] = i;
  auto dets = cfar_detect(power, bins, p);
  const double cells = static_cast<double>(trials * p.num_range);
  const double pfa = static_cast<double>(dets.size()) / cells;
  EXPECT_GT(pfa, 1e-3);
  EXPECT_LT(pfa, 5e-2);
}

TEST(Cfar, MaskedByStrongNeighborsInReferenceWindow) {
  // A spike sitting inside the reference cells raises the threshold and
  // must suppress a marginal neighbor (the classic CFAR masking property).
  StapParams p = StapParams::small_test();
  cube::RealCube power(1, 1, p.num_range);
  for (index_t k = 0; k < p.num_range; ++k) power.at(0, 0, k) = 1.0f;
  power.at(0, 0, 40) = 100.0f;  // marginal target (threshold is ~37 here)
  std::vector<index_t> bins = {0};
  auto alone = cfar_detect(power, bins, p);
  bool detected_alone = false;
  for (const auto& d : alone)
    if (d.range == 40) detected_alone = true;
  EXPECT_TRUE(detected_alone);

  power.at(0, 0, 43) = 1000.0f;  // strong return inside the reference window
  auto masked = cfar_detect(power, bins, p);
  bool detected_masked = false;
  for (const auto& d : masked)
    if (d.range == 40) detected_masked = true;
  EXPECT_FALSE(detected_masked);
}

TEST(Cfar, EdgesUseShrunkenWindow) {
  StapParams p = StapParams::small_test();
  cube::RealCube power(1, 1, p.num_range);
  Rng rng(29);
  for (index_t k = 0; k < p.num_range; ++k)
    power.at(0, 0, k) = static_cast<float>(std::norm(rng.cnormal()));
  power.at(0, 0, 0) = 1000.0f;  // spike at the very first range cell
  std::vector<index_t> bins = {0};
  auto dets = cfar_detect(power, bins, p);
  bool found = false;
  for (const auto& d : dets)
    if (d.range == 0) found = true;
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Sequential end-to-end chain
// ---------------------------------------------------------------------------

struct EndToEnd {
  StapParams p;
  ScenarioParams sp;
  index_t target_bin;

  static EndToEnd make() {
    EndToEnd e;
    e.p = StapParams::small_test();
    e.p.num_range = 64;
    e.p.num_channels = 8;
    e.p.num_pulses = 32;
    e.p.num_beams = 1;
    e.p.num_hard = 12;
    e.p.stagger = 2;
    e.p.num_segments = 2;
    e.p.easy_samples_per_cpi = 16;
    e.p.hard_samples_per_segment = 16;
    e.p.cfar_ref = 6;
    e.p.cfar_guard = 2;
    e.p.cfar_pfa = 1e-6;
    e.p.beam_span_rad = 0.0;  // single beam at broadside
    e.p.validate();

    e.sp.num_range = e.p.num_range;
    e.sp.num_channels = e.p.num_channels;
    e.sp.num_pulses = e.p.num_pulses;
    e.sp.clutter.num_patches = 16;
    e.sp.clutter.cnr_db = 40.0;
    e.sp.chirp_length = 8;
    e.target_bin = 10;  // easy bin (hard bins are 0..5 and 26..31)
    e.sp.targets.push_back(
        Target{33, static_cast<double>(e.target_bin) /
                       static_cast<double>(e.p.num_pulses),
               0.0, 10.0});
    return e;
  }

  SequentialStap make_pipeline() const {
    auto steering = synth::steering_matrix(p.num_channels, p.num_beams,
                                           p.beam_center_rad, p.beam_span_rad);
    ScenarioGenerator gen(sp);
    return SequentialStap(p, steering, gen.replica());
  }
};

TEST(Sequential, DetectsTargetInClutterAfterAdaptation) {
  auto e = EndToEnd::make();
  ScenarioGenerator gen(e.sp);
  auto pipeline = e.make_pipeline();

  bool detected_late = false;
  size_t last_count = 0;
  for (index_t cpi = 0; cpi < 6; ++cpi) {
    auto result = pipeline.process(gen.generate(cpi));
    if (cpi >= 4) {
      for (const auto& d : result.detections)
        if (d.doppler_bin == e.target_bin && d.range == 33)
          detected_late = true;
      last_count = result.detections.size();
    }
  }
  EXPECT_TRUE(detected_late);
  // The detection list must not be flooded by clutter breakthroughs.
  EXPECT_LT(last_count, 40u);
}

TEST(Sequential, AdaptationSuppressesClutterResidue) {
  auto e = EndToEnd::make();
  e.sp.targets.clear();  // clutter + noise only
  ScenarioGenerator gen(e.sp);
  auto pipeline = e.make_pipeline();

  // CPI 0 is beamformed with quiescent weights; by CPI 4 the weights have
  // adapted. Compare total residual power in the easy bins.
  auto easy_power = [&](const cube::RealCube& power) {
    double acc = 0;
    for (index_t b : e.p.easy_bins())
      for (index_t k = 0; k < e.p.num_range; ++k)
        acc += power.at(b, 0, k);
    return acc;
  };
  pipeline.process(gen.generate(0));
  const double quiescent = easy_power(pipeline.last_power());
  for (index_t cpi = 1; cpi < 5; ++cpi) pipeline.process(gen.generate(cpi));
  const double adapted = easy_power(pipeline.last_power());
  EXPECT_LT(adapted, quiescent / 10.0)
      << "quiescent=" << quiescent << " adapted=" << adapted;
}

TEST(Sequential, DetectsTargetThroughJamming) {
  // A 40 dB broadband jammer off boresight fills every Doppler bin at one
  // angle; the adaptive weights must null it spatially and recover the
  // target (paper §1: clutter, *interference*, and receiver noise).
  auto e = EndToEnd::make();
  e.sp.jammers.push_back(synth::Jammer{0.5, 40.0});
  ScenarioGenerator gen(e.sp);
  auto pipeline = e.make_pipeline();

  bool detected = false;
  size_t late_count = 0;
  for (index_t cpi = 0; cpi < 6; ++cpi) {
    auto result = pipeline.process(gen.generate(cpi));
    if (cpi >= 4) {
      late_count = result.detections.size();
      for (const auto& d : result.detections)
        if (d.doppler_bin == e.target_bin && d.range == 33) detected = true;
    }
  }
  EXPECT_TRUE(detected);
  EXPECT_LT(late_count, 40u);
}

TEST(Sequential, JammingSuppressedRelativeToQuiescent) {
  auto e = EndToEnd::make();
  e.sp.targets.clear();
  e.sp.clutter.num_patches = 0;  // jammer only
  e.sp.jammers.push_back(synth::Jammer{0.5, 40.0});
  ScenarioGenerator gen(e.sp);
  auto pipeline = e.make_pipeline();

  auto total_power = [&](const cube::RealCube& power) {
    double acc = 0;
    for (index_t i = 0; i < power.size(); ++i) acc += power.data()[i];
    return acc;
  };
  pipeline.process(gen.generate(0));
  const double quiescent = total_power(pipeline.last_power());
  for (index_t cpi = 1; cpi < 4; ++cpi) pipeline.process(gen.generate(cpi));
  const double adapted = total_power(pipeline.last_power());
  EXPECT_LT(adapted, quiescent / 20.0);
}

TEST(Sequential, NoTargetsMeansFewDetections) {
  auto e = EndToEnd::make();
  e.sp.targets.clear();
  ScenarioGenerator gen(e.sp);
  auto pipeline = e.make_pipeline();
  size_t total = 0;
  for (index_t cpi = 0; cpi < 6; ++cpi) {
    auto r = pipeline.process(gen.generate(cpi));
    if (cpi >= 4) total += r.detections.size();
  }
  // Some clutter breakthrough is possible in the hard bins, but the easy
  // region should be quiet; allow a small budget.
  EXPECT_LT(total, 60u);
}

TEST(Sequential, RejectsWrongCubeShape) {
  auto e = EndToEnd::make();
  auto pipeline = e.make_pipeline();
  cube::CpiCube wrong(e.p.num_range + 1, e.p.num_channels, e.p.num_pulses);
  EXPECT_THROW(pipeline.process(wrong), Error);
}

// ---------------------------------------------------------------------------
// Flops accounting (Table 1 groundwork)
// ---------------------------------------------------------------------------

TEST(Flops, AnalyticWithinTwofoldOfPaperTable1) {
  StapParams p;  // paper configuration
  const auto ours = analytic_flops_table(p);
  const auto paper = paper_table1();
  for (int t = 0; t < kNumTasks; ++t) {
    const double ratio = static_cast<double>(ours[static_cast<size_t>(t)]) /
                         static_cast<double>(paper[static_cast<size_t>(t)]);
    EXPECT_GT(ratio, 0.4) << task_name(static_cast<Task>(t));
    EXPECT_LT(ratio, 2.5) << task_name(static_cast<Task>(t));
  }
  // Total within 50%.
  const double total_ratio =
      static_cast<double>(ours[kNumTasks]) / static_cast<double>(paper[kNumTasks]);
  EXPECT_GT(total_ratio, 0.6);
  EXPECT_LT(total_ratio, 1.6);
}

TEST(Flops, MeasuredDopplerMatchesAnalytic) {
  StapParams p = StapParams::small_test();
  cube::CpiCube cpi(p.num_range, p.num_channels, p.num_pulses);
  DopplerFilter f(p);
  FlopScope scope;
  (void)f.filter(cpi);
  const auto measured = scope.count();
  const auto analytic = analytic_flops(Task::kDopplerFilter, p);
  EXPECT_NEAR(static_cast<double>(measured) / static_cast<double>(analytic),
              1.0, 0.1);
}

TEST(Flops, MeasuredBeamformMatchesAnalytic) {
  StapParams p = StapParams::small_test();
  const index_t n_easy = p.num_easy();
  cube::CpiCube data(n_easy, p.num_range, p.num_channels);
  WeightSet w;
  for (index_t b = 0; b < n_easy; ++b) {
    w.bins.push_back(b);
    w.weights.emplace_back(p.num_channels, p.num_beams);
  }
  FlopScope scope;
  (void)easy_beamform(data, w, p);
  EXPECT_EQ(scope.count(), analytic_flops(Task::kEasyBeamform, p));
}

}  // namespace
}  // namespace ppstap::stap
