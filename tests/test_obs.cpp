// Tests for the observability layer: JSON round-trip, histogram quantile
// accuracy, trace-span recording + Chrome export well-formedness, the
// near-zero disabled path, and the pipeline integration contract (one
// recv/comp/send triple per task per CPI per rank; PipelineResult
// percentiles consistent with the exact order statistics of
// per_cpi_latency to within one histogram bucket).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "comm/collectives.hpp"
#include "core/pipeline.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stap/sequential.hpp"
#include "synth/steering.hpp"

// Allocation counter for the zero-allocation disabled-path test. Counts
// every global operator new in the binary; tests only compare deltas
// across a region that must not allocate. GCC cannot see that the
// replacement operator new below is malloc-based and flags the free() in
// operator delete as mismatched — suppress that false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace ppstap::obs {
namespace {

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(Json, RoundTripsDocument) {
  Json doc = Json::object();
  doc["name"] = "pipeline";
  doc["count"] = 42;
  doc["ratio"] = 0.25;
  doc["ok"] = true;
  doc["none"] = nullptr;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  doc["items"] = arr;

  for (int indent : {-1, 2}) {
    const auto back = Json::parse(doc.dump(indent));
    EXPECT_EQ(back.find("name")->as_string(), "pipeline");
    EXPECT_EQ(back.find("count")->as_number(), 42.0);
    EXPECT_EQ(back.find("ratio")->as_number(), 0.25);
    EXPECT_TRUE(back.find("ok")->as_bool());
    EXPECT_TRUE(back.find("none")->is_null());
    ASSERT_EQ(back.find("items")->size(), 2u);
    EXPECT_EQ(back.find("items")->at(1).as_string(), "two");
  }
}

TEST(Json, PreservesInsertionOrder) {
  Json doc = Json::object();
  doc["zeta"] = 1;
  doc["alpha"] = 2;
  const auto& obj = doc.as_object();
  EXPECT_EQ(obj[0].first, "zeta");
  EXPECT_EQ(obj[1].first, "alpha");
}

TEST(Json, EscapesStrings) {
  Json doc = Json::object();
  doc["s"] = std::string("a\"b\\c\n\t\x01");
  const auto text = doc.dump();
  EXPECT_NE(text.find("\\\""), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_EQ(Json::parse(text).find("s")->as_string(), "a\"b\\c\n\t\x01");
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(Json::parse("nul"), Error);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Histogram, QuantilesMatchKnownDistribution) {
  // Uniform 1..1000: the exact q-quantile is ~1000q; linear bounds with
  // width 10 keep the estimate within one bucket.
  std::vector<double> bounds;
  for (double b = 10.0; b <= 1000.0; b += 10.0) bounds.push_back(b);
  Histogram h(bounds);
  for (int v = 1; v <= 1000; ++v) h.observe(v);

  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  for (double q : {0.50, 0.95, 0.99}) {
    EXPECT_NEAR(h.quantile(q), 1000.0 * q, 10.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(Histogram, QuantileClampsToObservedRange) {
  Histogram h(Histogram::exponential_bounds(1e-5, 1e3));
  h.observe(0.5);
  for (double q : {0.0, 0.5, 0.99, 1.0}) EXPECT_DOUBLE_EQ(h.quantile(q), 0.5);
}

TEST(Histogram, ExponentialBoundsAreStrictlyIncreasingAndCoverHi) {
  const auto b = Histogram::exponential_bounds(1e-5, 1e3, 1.35);
  ASSERT_GE(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b.front(), 1e-5);
  EXPECT_GE(b.back(), 1e3);
  for (size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]);
}

TEST(Histogram, RejectsInvalidBounds) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
}

TEST(Histogram, EmptyHistogramQuantilesAreZero) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.count(), 0u);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(h.quantile(q), 0.0) << "q=" << q;
}

TEST(Histogram, SingleSampleCollapsesEveryQuantile) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(h.quantile(q), 42.0) << "q=" << q;
}

TEST(Histogram, AllSamplesInOverflowBucketStayInObservedRange) {
  // Every observation lands beyond the last bound: the overflow bucket has
  // no upper edge, so interpolation must fall back to the observed max and
  // the clamp must keep estimates inside [min, max].
  Histogram h({1.0, 2.0});
  for (double v : {50.0, 100.0, 200.0}) h.observe(v);
  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts.back(), 3u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 200.0);
  for (double q : {0.5, 0.95, 0.99}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, 50.0) << "q=" << q;
    EXPECT_LE(v, 200.0) << "q=" << q;
  }
}

TEST(Histogram, QuantilesAreMonotonicOnSkewedData) {
  // Heavy head plus a long tail — the shape that exposed non-monotonic
  // estimators in other histogram implementations.
  Histogram h(Histogram::exponential_bounds(1e-3, 1e3, 1.5));
  for (int i = 1; i <= 500; ++i) h.observe(0.01 * i);
  for (int i = 1; i <= 20; ++i) h.observe(50.0 * i);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  double prev = h.quantile(0.0);
  for (int i = 1; i <= 20; ++i) {
    const double v = h.quantile(0.05 * i);
    EXPECT_GE(v, prev) << "q=" << 0.05 * i;
    prev = v;
  }
}

TEST(Histogram, ConcurrentObserveLosesNothing) {
  Histogram h(Histogram::exponential_bounds(1.0, 1e6, 2.0));
  constexpr int kThreads = 4, kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) h.observe(i);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), kPerThread);
}

TEST(Registry, ReturnsStableRefsAndExportsJson) {
  Registry reg;
  auto& c = reg.counter("edge_bytes");
  c.add(7);
  EXPECT_EQ(&reg.counter("edge_bytes"), &c);
  reg.gauge("throughput").set(3.5);
  reg.histogram("lat", {1.0, 2.0}).observe(1.5);

  const auto doc = Json::parse(reg.to_json().dump());
  EXPECT_EQ(doc.find("counters")->find("edge_bytes")->as_number(), 7.0);
  EXPECT_EQ(doc.find("gauges")->find("throughput")->as_number(), 3.5);
  EXPECT_EQ(doc.find("histograms")->find("lat")->find("count")->as_number(),
            1.0);

  reg.clear();
  EXPECT_EQ(reg.counter("edge_bytes").value(), 0u);
}

// ---------------------------------------------------------------------------
// WallTimer contract (the trace time base)
// ---------------------------------------------------------------------------

TEST(WallTimerContract, SteadyAndMonotonic) {
  static_assert(WallTimer::clock::is_steady,
                "trace timestamps require a monotonic clock");
  double prev = WallTimer::now();
  for (int i = 0; i < 1000; ++i) {
    const double t = WallTimer::now();
    ASSERT_GE(t, prev);
    prev = t;
  }
}

#if PPSTAP_ENABLE_TRACING

// ---------------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    Config c;
    c.enabled = true;
    configure(c);
  }
  void TearDown() override {
    Config c;
    c.enabled = false;
    configure(c);
    reset();
  }
};

TEST_F(TraceTest, RecordsAndSnapshotsInOrder) {
  emit({"comp", "pipeline", 1, 2, 0, 1.0, 2.0, -1, -1});
  emit({"recv", "pipeline", 0, 2, 0, 0.5, 1.0, 64, -1});
  emit({"comp", "pipeline", 0, 1, 0, 0.0, 0.5, -1, -1});
  const auto spans = snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Ordered by (task, rank, t_start).
  EXPECT_EQ(spans[0].task, 1);
  EXPECT_EQ(spans[1].task, 2);
  EXPECT_EQ(spans[1].rank, 0);
  EXPECT_EQ(spans[1].bytes, 64);
  EXPECT_EQ(spans[2].rank, 1);
  EXPECT_EQ(span_count(), 3u);
  EXPECT_EQ(dropped_count(), 0u);
}

TEST_F(TraceTest, RingBufferWrapCountsDrops) {
  Config c;
  c.enabled = true;
  c.capacity_per_thread = 8;
  configure(c);
  for (int i = 0; i < 20; ++i)
    emit({"comp", "pipeline", 0, 0, i, double(i), double(i) + 0.5, -1, -1});
  EXPECT_EQ(span_count(), 8u);
  EXPECT_EQ(dropped_count(), 12u);
  // The survivors are the newest spans.
  const auto spans = snapshot();
  for (const auto& s : spans) EXPECT_GE(s.cpi, 12);
}

TEST_F(TraceTest, ChromeTraceExportIsWellFormed) {
  set_track_name(0, "doppler_filter");
  emit({"recv", "pipeline", 0, 0, 3, 1.0, 1.5, 128, -1});
  emit({"comp", "pipeline", 0, 0, 3, 1.5, 2.0, -1, -1});
  emit({"gather", "comm", 1, kCommTrack, -1, 1.2, 1.4, 256, 4});

  const auto doc = Json::parse(chrome_trace_json().dump(2));
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  int x_events = 0, meta = 0;
  for (size_t i = 0; i < events->size(); ++i) {
    const auto& e = events->at(i);
    const auto& ph = e.find("ph")->as_string();
    if (ph == "M") {
      ++meta;
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++x_events;
    EXPECT_GE(e.find("ts")->as_number(), 0.0);  // rebased to earliest span
    EXPECT_GE(e.find("dur")->as_number(), 0.0);
  }
  EXPECT_EQ(x_events, 3);
  EXPECT_GE(meta, 1);

  // The comm span keeps its byte/participant annotations.
  bool found_comm = false;
  for (size_t i = 0; i < events->size(); ++i) {
    const auto& e = events->at(i);
    if (e.find("name") && e.find("name")->as_string() == "gather") {
      found_comm = true;
      EXPECT_EQ(e.find("args")->find("bytes")->as_number(), 256.0);
      EXPECT_EQ(e.find("args")->find("items")->as_number(), 4.0);
    }
  }
  EXPECT_TRUE(found_comm);
}

TEST_F(TraceTest, ScopedSpanEmitsOnDestruction) {
  {
    ScopedSpan span("broadcast", "comm", 2, kCommTrack);
    span.set_bytes(512);
    span.set_items(3);
  }
  const auto spans = snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "broadcast");
  EXPECT_EQ(spans[0].bytes, 512);
  EXPECT_EQ(spans[0].items, 3);
  EXPECT_GE(spans[0].t_end, spans[0].t_start);
}

TEST_F(TraceTest, CollectivesEmitCommSpans) {
  comm::World world(3);
  world.run([](comm::Comm& c) {
    std::vector<int> data;
    if (c.rank() == 0) data = {1, 2, 3};
    comm::broadcast(c, 0, data, 42);
  });
  const auto spans = snapshot();
  int broadcasts = 0;
  for (const auto& s : spans)
    if (std::string(s.name) == "broadcast") {
      ++broadcasts;
      EXPECT_EQ(s.task, kCommTrack);
      EXPECT_EQ(s.items, 3);
    }
  EXPECT_EQ(broadcasts, 3);
}

TEST_F(TraceTest, SequentialChainEmitsStageSpans) {
  auto p = stap::StapParams::small_test();
  synth::ScenarioParams sp;
  sp.num_range = p.num_range;
  sp.num_channels = p.num_channels;
  sp.num_pulses = p.num_pulses;
  sp.clutter.num_patches = 4;
  sp.chirp_length = 6;
  synth::ScenarioGenerator gen(sp);
  auto steering = synth::steering_matrix(p.num_channels, p.num_beams,
                                         p.beam_center_rad, p.beam_span_rad);
  stap::SequentialStap seq(p, steering, gen.replica());
  (void)seq.process(gen.generate(0));
  (void)seq.process(gen.generate(1));

  const auto spans = snapshot();
  std::map<std::string, int> stage_counts;
  for (const auto& s : spans)
    if (std::string(s.category) == "sequential") {
      EXPECT_EQ(s.task, kSeqTrack);
      ++stage_counts[s.name];
    }
  for (const char* stage : {"doppler", "reorg", "beamform",
                            "pulse_compression", "cfar", "weights"})
    EXPECT_EQ(stage_counts[stage], 2) << stage;
}

TEST(TraceDisabled, EmitIsAllocationFreeAndRecordsNothing) {
  reset();
  Config c;
  c.enabled = false;
  configure(c);
  ASSERT_FALSE(tracing_enabled());

  const Span s{"comp", "pipeline", 0, 0, 0, 1.0, 2.0, -1, -1};
  const auto before = g_allocs.load();
  for (int i = 0; i < 100000; ++i) emit(s);
  EXPECT_EQ(g_allocs.load(), before);
  EXPECT_EQ(span_count(), 0u);
}

// ---------------------------------------------------------------------------
// Pipeline integration
// ---------------------------------------------------------------------------

stap::StapParams pipeline_params() {
  auto p = stap::StapParams::small_test();
  p.num_range = 48;
  p.hard_samples_per_segment = 10;
  p.validate();
  return p;
}

TEST_F(TraceTest, PipelineEmitsOneTripleGridAndConsistentPercentiles) {
  const auto p = pipeline_params();
  synth::ScenarioParams sp;
  sp.num_range = p.num_range;
  sp.num_channels = p.num_channels;
  sp.num_pulses = p.num_pulses;
  sp.clutter.num_patches = 6;
  sp.chirp_length = 6;
  synth::ScenarioGenerator gen(sp);
  auto steering = synth::steering_matrix(p.num_channels, p.num_beams,
                                         p.beam_center_rad, p.beam_span_rad);

  core::NodeAssignment a{{2, 1, 2, 1, 1, 1, 1}};  // 9 ranks
  core::ParallelStapPipeline pipe(p, a, steering,
                                  {gen.replica().begin(),
                                   gen.replica().end()});
  const index_t n_cpis = 6;
  const auto result = pipe.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  // One {recv, comp, send} triple per rank per CPI.
  std::map<std::tuple<int, std::int64_t, std::string>, int> grid;
  for (const auto& s : snapshot()) {
    if (std::string(s.category) != "pipeline") continue;
    EXPECT_GE(s.t_end, s.t_start);
    ++grid[{s.rank, s.cpi, s.name}];
  }
  for (int rank = 0; rank < a.total(); ++rank)
    for (index_t cpi = 0; cpi < n_cpis; ++cpi)
      for (const char* phase : {"recv", "comp", "send"}) {
        EXPECT_EQ((grid[{rank, cpi, phase}]), 1)
            << "rank " << rank << " cpi " << cpi << " " << phase;
      }

  // recv <= comp <= send start ordering within each (rank, cpi).
  std::map<std::pair<int, std::int64_t>, std::array<double, 3>> starts;
  for (const auto& s : snapshot()) {
    if (std::string(s.category) != "pipeline") continue;
    const int phase = std::string(s.name) == "recv"  ? 0
                      : std::string(s.name) == "comp" ? 1
                                                      : 2;
    starts[{s.rank, s.cpi}][static_cast<size_t>(phase)] = s.t_start;
  }
  for (const auto& [key, t] : starts) {
    EXPECT_LE(t[0], t[1]);
    EXPECT_LE(t[1], t[2]);
  }

  // Percentiles agree with the exact order statistics of per_cpi_latency
  // to within one histogram bucket.
  auto sorted = result.per_cpi_latency;
  std::sort(sorted.begin(), sorted.end());
  ASSERT_EQ(sorted.size(), static_cast<size_t>(n_cpis - 2));
  obs::Histogram ref(std::vector<double>(result.latency_histogram.bounds));
  const auto exact = [&](double q) {
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(std::ceil(q * sorted.size())) == 0
            ? 0
            : static_cast<size_t>(std::ceil(q * sorted.size())) - 1);
    return sorted[idx];
  };
  const std::pair<double, double> checks[] = {
      {0.50, result.latency_percentiles.p50},
      {0.95, result.latency_percentiles.p95},
      {0.99, result.latency_percentiles.p99},
  };
  for (const auto& [q, estimated] : checks) {
    const auto diff =
        std::llabs(static_cast<long long>(ref.bucket_index(estimated)) -
                   static_cast<long long>(ref.bucket_index(exact(q))));
    EXPECT_LE(diff, 1) << "q=" << q;
  }

  // The histogram saw exactly the measured CPIs.
  EXPECT_EQ(result.latency_histogram.count, sorted.size());

  // Byte accounting: every Fig. 4 edge that exists in a 7-task pipeline
  // moved data on the measured CPIs.
  double edge_total = 0.0;
  for (double b : result.bytes_per_edge_per_cpi) {
    EXPECT_GE(b, 0.0);
    edge_total += b;
  }
  EXPECT_GT(edge_total, 0.0);
}

#endif  // PPSTAP_ENABLE_TRACING

}  // namespace
}  // namespace ppstap::obs
