// Live elastic rank migration tests: topology algebra, the transactional
// two-phase commit on a live stream (bit-exact detections across a
// committed migration), and rollback-not-wedge under faults injected
// inside the migration window (dropped votes, a killed migrating rank, a
// killed coordinator), plus the overload-assist rung.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "comm/fault.hpp"
#include "common/check.hpp"
#include "dsp/waveform.hpp"
#include "core/assignment.hpp"
#include "core/elastic.hpp"
#include "core/pipeline.hpp"
#include "stap/sequential.hpp"
#include "synth/steering.hpp"

namespace ppstap::core {
namespace {

using comm::FaultPlan;
using comm::FaultPoint;
using comm::FaultRule;
using comm::FaultType;
using stap::StapParams;
using stap::Task;
using synth::ScenarioGenerator;
using synth::ScenarioParams;
using synth::Target;

// Protocol tag layout (elastic.cpp): tag = barrier_cpi * 16 + slot, with
// slot 10 = VOTE and 11 = VERDICT. The (tag % period == phase) rule form
// targets the protocol messages of *any* barrier CPI, which is how the
// chaos rules below land inside the migration window without knowing the
// barrier the engine will pick.
constexpr int kTagStride = 16;
constexpr int kVoteSlot = 10;

struct Fixture {
  StapParams p;
  ScenarioParams sp;

  static Fixture make() {
    Fixture f;
    f.p = StapParams::small_test();
    f.p.num_range = 48;
    f.p.num_channels = 4;
    f.p.num_pulses = 16;
    f.p.num_beams = 2;
    f.p.num_hard = 6;
    f.p.stagger = 2;
    f.p.num_segments = 2;
    f.p.easy_samples_per_cpi = 12;
    f.p.hard_samples_per_segment = 10;
    f.p.cfar_ref = 4;
    f.p.cfar_guard = 1;
    f.p.validate();

    f.sp.num_range = f.p.num_range;
    f.sp.num_channels = f.p.num_channels;
    f.sp.num_pulses = f.p.num_pulses;
    f.sp.clutter.num_patches = 6;
    f.sp.clutter.cnr_db = 35.0;
    f.sp.chirp_length = 6;
    f.sp.targets.push_back(Target{21, 8.0 / 16.0, 0.05, 15.0});
    return f;
  }

  linalg::MatrixCF steering() const {
    return synth::steering_matrix(p.num_channels, p.num_beams,
                                  p.beam_center_rad, p.beam_span_rad);
  }
};

/// Doppler and pulse compression get two ranks each so either can donate.
NodeAssignment elastic_assignment() {
  NodeAssignment a;
  a[Task::kDopplerFilter] = 2;
  a[Task::kPulseCompression] = 2;
  return a;
}

ElasticConfig forced_pc_to_doppler(index_t at_cpi) {
  ElasticConfig el;
  el.forced.push_back(ForcedMigration{at_cpi, Task::kPulseCompression,
                                      Task::kDopplerFilter});
  return el;
}

std::vector<std::vector<stap::Detection>> sequential_reference(
    const Fixture& f, index_t n_cpis) {
  ScenarioGenerator gen(f.sp);
  stap::SequentialStap seq(f.p, f.steering(), gen.replica());
  std::vector<std::vector<stap::Detection>> ref;
  for (index_t cpi = 0; cpi < n_cpis; ++cpi) {
    auto dets = seq.process(gen.generate(cpi)).detections;
    std::sort(dets.begin(), dets.end(), [](const auto& x, const auto& y) {
      return std::tie(x.doppler_bin, x.beam, x.range) <
             std::tie(y.doppler_bin, y.beam, y.range);
    });
    ref.push_back(std::move(dets));
  }
  return ref;
}

void expect_cpi_matches(const std::vector<stap::Detection>& got,
                        const std::vector<stap::Detection>& ref,
                        index_t cpi) {
  ASSERT_EQ(got.size(), ref.size()) << "cpi=" << cpi;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doppler_bin, ref[i].doppler_bin) << "cpi=" << cpi;
    EXPECT_EQ(got[i].beam, ref[i].beam) << "cpi=" << cpi;
    EXPECT_EQ(got[i].range, ref[i].range) << "cpi=" << cpi;
    EXPECT_NEAR(got[i].power, ref[i].power,
                2e-2f * std::abs(ref[i].power) + 1e-5f)
        << "cpi=" << cpi;
  }
}

/// Bitwise comparison of two parallel runs on the same stream: a committed
/// migration only re-fans the per-rank partitions of per-cell-independent
/// stages, so it must not perturb a single output bit.
void expect_streams_identical(const PipelineResult& got,
                              const PipelineResult& want) {
  ASSERT_EQ(got.detections.size(), want.detections.size());
  for (size_t cpi = 0; cpi < got.detections.size(); ++cpi) {
    const auto& g = got.detections[cpi];
    const auto& w = want.detections[cpi];
    ASSERT_EQ(g.size(), w.size()) << "cpi=" << cpi;
    for (size_t i = 0; i < g.size(); ++i) {
      EXPECT_EQ(g[i].doppler_bin, w[i].doppler_bin) << "cpi=" << cpi;
      EXPECT_EQ(g[i].beam, w[i].beam) << "cpi=" << cpi;
      EXPECT_EQ(g[i].range, w[i].range) << "cpi=" << cpi;
      EXPECT_EQ(g[i].power, w[i].power) << "cpi=" << cpi;
      EXPECT_EQ(g[i].threshold, w[i].threshold) << "cpi=" << cpi;
    }
  }
}

TEST(ElasticTopology, InitialLayoutAssignsContiguousRanks) {
  auto f = Fixture::make();
  const NodeAssignment a = elastic_assignment();
  const Topology t = Topology::initial(f.p, a);
  EXPECT_EQ(t.total(), a.total());
  int expected = 0;
  for (int task = 0; task < stap::kNumTasks; ++task) {
    const Task tt = static_cast<Task>(task);
    ASSERT_EQ(t.count(tt), a.nodes[static_cast<size_t>(task)]);
    for (int l = 0; l < t.count(tt); ++l) {
      EXPECT_EQ(t.rank_at(tt, l), expected);
      const Topology::Role role = t.role_of(expected);
      EXPECT_EQ(role.task, tt);
      EXPECT_EQ(role.local, l);
      ++expected;
    }
  }
  EXPECT_EQ(t.part_k.parts(), 2);
  EXPECT_EQ(t.part_pc.parts(), 2);
}

TEST(ElasticTopology, MigratedMovesDonorsLastRankOnly) {
  auto f = Fixture::make();
  const Topology t0 = Topology::initial(f.p, elastic_assignment());
  const Topology t1 =
      t0.migrated(f.p, Task::kPulseCompression, Task::kDopplerFilter);

  const int mover = t0.rank_at(Task::kPulseCompression, 1);
  EXPECT_EQ(t1.count(Task::kPulseCompression), 1);
  EXPECT_EQ(t1.count(Task::kDopplerFilter), 3);
  EXPECT_EQ(t1.rank_at(Task::kDopplerFilter, 2), mover);
  // Every non-migrating rank keeps its (task, local) slot.
  for (int task = 0; task < stap::kNumTasks; ++task) {
    const Task tt = static_cast<Task>(task);
    for (int l = 0; l < t1.count(tt); ++l) {
      if (tt == Task::kDopplerFilter && l == 2) continue;
      EXPECT_EQ(t1.rank_at(tt, l), t0.rank_at(tt, l));
    }
  }
  // Partitions are rebuilt for the new fan-out; checksums disagree, which
  // is what the vote compares.
  EXPECT_EQ(t1.part_k.parts(), 3);
  EXPECT_EQ(t1.part_pc.parts(), 1);
  EXPECT_NE(t0.checksum(), t1.checksum());

  // Weight groups never migrate, and a donor must keep one rank.
  EXPECT_THROW(
      (void)t0.migrated(f.p, Task::kEasyWeight, Task::kDopplerFilter),
      Error);
  EXPECT_THROW((void)t1.migrated(f.p, Task::kPulseCompression, Task::kCfar),
               Error);
  EXPECT_THROW((void)t0.migrated(f.p, Task::kCfar, Task::kCfar), Error);
}

TEST(ElasticConfigTest, ValidateRejectsInconsistentKnobs) {
  ElasticConfig el;
  el.validate();  // defaults are consistent
  el.horizon_cpis = 0;
  EXPECT_THROW(el.validate(), Error);
  el = ElasticConfig{};
  el.stall_budget_seconds = 0.0;
  EXPECT_THROW(el.validate(), Error);
  el = ElasticConfig{};
  el.forced.push_back(
      ForcedMigration{-1, Task::kPulseCompression, Task::kDopplerFilter});
  EXPECT_THROW(el.validate(), Error);
  el = ElasticConfig{};
  el.forced.push_back(ForcedMigration{2, Task::kCfar, Task::kCfar});
  EXPECT_THROW(el.validate(), Error);
  el = ElasticConfig{};
  el.forced.push_back(
      ForcedMigration{2, Task::kHardWeight, Task::kDopplerFilter});
  EXPECT_THROW(el.validate(), Error);
}

// The acceptance scenario: a clean forced migration (pulse compression
// donates its second rank to Doppler filtering) commits at a barrier ahead
// of every rank's progress, the migrating rank switches roles mid-stream,
// and the detections are bitwise identical to a run that never migrated —
// and match the sequential reference.
TEST(ElasticMigration, ForcedMigrationCommitsBitExact) {
  auto f = Fixture::make();
  const index_t n_cpis = 20;
  const auto ref = sequential_reference(f, n_cpis);
  const NodeAssignment a = elastic_assignment();

  ScenarioGenerator gen_base(f.sp);
  ParallelStapPipeline base(f.p, a, f.steering(),
                            {gen_base.replica().begin(),
                             gen_base.replica().end()});
  auto res_base = base.run(gen_base, n_cpis, /*warmup=*/1, /*cooldown=*/1);
  ASSERT_TRUE(res_base.migrations.clean());

  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, a, f.steering(),
                           {gen.replica().begin(), gen.replica().end()});
  par.set_elastic(forced_pc_to_doppler(/*at_cpi=*/4));
  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  ASSERT_EQ(res.migrations.attempts.size(), 1u);
  const MigrationEvent& e = res.migrations.attempts[0];
  EXPECT_EQ(res.migrations.committed(), 1);
  EXPECT_EQ(res.migrations.rolled_back(), 0);
  EXPECT_EQ(e.trigger, "forced");
  EXPECT_EQ(e.outcome, "committed");
  EXPECT_TRUE(e.abort_reason.empty());
  EXPECT_EQ(e.donor_task, static_cast<int>(Task::kPulseCompression));
  EXPECT_EQ(e.recipient_task, static_cast<int>(Task::kDopplerFilter));
  EXPECT_EQ(e.migrating_rank, a.first_rank(Task::kPulseCompression) + 1);
  EXPECT_GE(e.barrier_cpi, 4);
  EXPECT_LE(e.barrier_cpi, n_cpis - 2);
  EXPECT_GE(e.stall_seconds, 0.0);

  // Zero lost or duplicated CPIs, and the sink timestamped every one.
  ASSERT_EQ(res.detections.size(), static_cast<size_t>(n_cpis));
  ASSERT_EQ(res.completion_times.size(), static_cast<size_t>(n_cpis));
  for (index_t cpi = 0; cpi < n_cpis; ++cpi)
    EXPECT_GT(res.completion_times[static_cast<size_t>(cpi)], 0.0)
        << "cpi=" << cpi;
  EXPECT_TRUE(res.faults.clean());

  expect_streams_identical(res, res_base);
  for (index_t cpi = 0; cpi < n_cpis; ++cpi)
    expect_cpi_matches(res.detections[static_cast<size_t>(cpi)],
                       ref[static_cast<size_t>(cpi)], cpi);
}

// A dropped VOTE starves the coordinator past the stall budget: the
// attempt rolls back, nothing was changed (the epoch is published only on
// commit), and the whole stream remains exact under the old topology.
TEST(ElasticMigration, DroppedVoteRollsBackAndStreamStaysExact) {
  auto f = Fixture::make();
  const index_t n_cpis = 16;
  const auto ref = sequential_reference(f, n_cpis);
  const NodeAssignment a = elastic_assignment();
  const int migrating = a.first_rank(Task::kPulseCompression) + 1;

  FaultPlan plan;
  FaultRule drop_vote;
  drop_vote.type = FaultType::kDrop;
  drop_vote.point = FaultPoint::kSend;
  drop_vote.src = migrating;
  drop_vote.dest = a.first_rank(Task::kDopplerFilter);
  drop_vote.tag_period = kTagStride;
  drop_vote.tag_phase = kVoteSlot;
  plan.add(drop_vote);

  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, a, f.steering(),
                           {gen.replica().begin(), gen.replica().end()});
  ElasticConfig el = forced_pc_to_doppler(/*at_cpi=*/4);
  el.stall_budget_seconds = 0.5;  // the rollback path pays this in full
  par.set_elastic(el);
  par.set_fault_plan(&plan);
  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  ASSERT_EQ(res.migrations.attempts.size(), 1u);
  EXPECT_EQ(res.migrations.committed(), 0);
  EXPECT_EQ(res.migrations.rolled_back(), 1);
  EXPECT_EQ(res.migrations.attempts[0].abort_reason, "vote_timeout");
  EXPECT_GE(res.faults.frames_dropped, 1u);
  EXPECT_TRUE(res.faults.shed_cpis.empty());

  // Rollback restored nothing because nothing changed: the stream is
  // complete and exact under the pre-migration topology.
  ASSERT_EQ(res.detections.size(), static_cast<size_t>(n_cpis));
  for (index_t cpi = 0; cpi < n_cpis; ++cpi)
    expect_cpi_matches(res.detections[static_cast<size_t>(cpi)],
                       ref[static_cast<size_t>(cpi)], cpi);
}

// The migrating rank itself dies inside the migration window (killed on
// the VOTE send). The coordinator must roll back — committing would
// publish a topology with a dead member — and the stream must keep
// draining: CPIs the dead pulse-compression rank owned are shed, never
// lost silently, and everything before the kill stays exact.
TEST(ElasticMigration, KilledMigratingRankRollsBackNotWedge) {
  auto f = Fixture::make();
  const index_t n_cpis = 16;
  const auto ref = sequential_reference(f, n_cpis);
  const NodeAssignment a = elastic_assignment();
  const int migrating = a.first_rank(Task::kPulseCompression) + 1;

  FaultPlan plan;
  FaultRule kill_vote;
  kill_vote.type = FaultType::kKill;
  kill_vote.point = FaultPoint::kSend;
  kill_vote.src = migrating;
  kill_vote.tag_period = kTagStride;
  kill_vote.tag_phase = kVoteSlot;
  plan.add(kill_vote);

  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, a, f.steering(),
                           {gen.replica().begin(), gen.replica().end()});
  ElasticConfig el = forced_pc_to_doppler(/*at_cpi=*/4);
  el.stall_budget_seconds = 1.0;
  par.set_elastic(el);
  FaultToleranceConfig ft;
  ft.shedding = true;
  ft.cpi_deadline_seconds = 10.0;
  par.set_fault_tolerance(ft);
  par.set_fault_plan(&plan);
  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  EXPECT_EQ(res.faults.kills, 1u);
  ASSERT_EQ(res.migrations.attempts.size(), 1u);
  EXPECT_EQ(res.migrations.committed(), 0);
  EXPECT_EQ(res.migrations.rolled_back(), 1);
  const std::string& reason = res.migrations.attempts[0].abort_reason;
  EXPECT_TRUE(reason == "migrating_rank_dead" ||
              reason == "vote_peer_dead" || reason == "vote_timeout")
      << reason;

  // The stream drained: every CPI either produced detections or is in the
  // shed ledger (the dead rank's doppler-bin slice is unrecoverable).
  ASSERT_EQ(res.detections.size(), static_cast<size_t>(n_cpis));
  EXPECT_FALSE(res.faults.shed_cpis.empty());
  std::vector<bool> shed(static_cast<size_t>(n_cpis), false);
  for (index_t s : res.faults.shed_cpis) shed[static_cast<size_t>(s)] = true;
  const index_t barrier = res.migrations.attempts[0].barrier_cpi;
  for (index_t cpi = 0; cpi < n_cpis; ++cpi) {
    if (shed[static_cast<size_t>(cpi)]) continue;
    // Non-shed CPIs after a rollback are still exact; the kill can only
    // have removed output, never corrupted it.
    if (cpi < barrier)
      expect_cpi_matches(res.detections[static_cast<size_t>(cpi)],
                         ref[static_cast<size_t>(cpi)], cpi);
  }
}

// The coordinator dies while collecting votes. The outcome CAS lets any
// participant resolve the attempt (rollback on coordinator death), so the
// stream must not wedge even though the lead Doppler rank is gone.
TEST(ElasticMigration, KilledCoordinatorRollsBackNotWedge) {
  auto f = Fixture::make();
  const index_t n_cpis = 16;
  const NodeAssignment a = elastic_assignment();

  FaultPlan plan;
  FaultRule kill_coord;
  kill_coord.type = FaultType::kKill;
  kill_coord.point = FaultPoint::kRecv;
  kill_coord.dest = a.first_rank(Task::kDopplerFilter);
  kill_coord.tag_period = kTagStride;
  kill_coord.tag_phase = kVoteSlot;
  plan.add(kill_coord);

  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, a, f.steering(),
                           {gen.replica().begin(), gen.replica().end()});
  ElasticConfig el = forced_pc_to_doppler(/*at_cpi=*/4);
  el.stall_budget_seconds = 0.5;
  par.set_elastic(el);
  FaultToleranceConfig ft;
  ft.shedding = true;
  ft.cpi_deadline_seconds = 10.0;
  par.set_fault_tolerance(ft);
  par.set_fault_plan(&plan);
  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  EXPECT_EQ(res.faults.kills, 1u);
  ASSERT_EQ(res.migrations.attempts.size(), 1u);
  EXPECT_EQ(res.migrations.committed(), 0);
  EXPECT_EQ(res.migrations.rolled_back(), 1);
  // Whoever won the CAS attributed the rollback; all of these name the
  // same failure (the coordinator never answered).
  const std::string& reason = res.migrations.attempts[0].abort_reason;
  EXPECT_TRUE(reason == "coordinator_dead" || reason == "verdict_timeout" ||
              reason == "unresolved_at_exit")
      << reason;
  // Rollback-not-wedge: the run returned with every CPI accounted for.
  ASSERT_EQ(res.detections.size(), static_cast<size_t>(n_cpis));
  EXPECT_FALSE(res.faults.shed_cpis.empty());
}

// The overload ladder's elastic-assist rung: under sustained backlog the
// controller asks the engine for capacity before degrading past reduced
// beams, and the engine answers with an "overload"-triggered migration
// toward the gating group.
TEST(ElasticMigration, OverloadAssistMigratesBeforeDegrading) {
  auto f = Fixture::make();
  // Load shaping (same trick as the overload tests): wide beam set makes
  // the post-admission stages the bottleneck, so the backlog pins at
  // queue_high and the ladder wants to climb past reduced beams.
  f.p.num_beams = 16;
  f.p.num_range = 96;
  f.p.validate();
  f.sp.num_range = f.p.num_range;
  f.sp.chirp_length = 0;
  const index_t n_cpis = 12;
  const NodeAssignment a = elastic_assignment();

  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, a, f.steering(), dsp::lfm_chirp(8));
  ElasticConfig el;
  el.enabled = true;  // installs the engine + assist hook; policy loop has
                      // no trace feed in tests, so only the assist fires
  par.set_elastic(el);
  OverloadConfig ov;
  ov.enabled = true;
  ov.queue_low = 1;
  ov.queue_high = 2;
  ov.dwell = 100;
  ov.reject_when_full = false;
  par.set_overload(ov);
  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  // The assist was consulted and proposed a migration; on this clean run
  // it must have resolved (either way — commit needs the barrier to land
  // inside the stream).
  ASSERT_GE(res.migrations.attempts.size(), 1u);
  EXPECT_EQ(res.migrations.attempts[0].trigger, "overload");
  EXPECT_FALSE(res.migrations.attempts[0].outcome.empty());
  // Lossless composition: throttle mode + migration never drops a CPI.
  EXPECT_TRUE(res.overload.rejected_cpis.empty());
  EXPECT_TRUE(res.faults.shed_cpis.empty());
  ASSERT_EQ(res.detections.size(), static_cast<size_t>(n_cpis));
  for (const auto& cpi_dets : res.detections)
    for (const auto& d : cpi_dets) {
      EXPECT_TRUE(std::isfinite(d.power));
      EXPECT_TRUE(std::isfinite(d.threshold));
    }
}

// Two forced migrations in sequence (forced attempts bypass the
// max_migrations cap — tests need determinism): both commit, through two
// separate barriers, and the stream stays lossless.
TEST(ElasticMigration, TwoForcedMigrationsBothCommit) {
  auto f = Fixture::make();
  const index_t n_cpis = 20;
  NodeAssignment a = elastic_assignment();
  a[Task::kCfar] = 2;  // a second donor pool

  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, a, f.steering(),
                           {gen.replica().begin(), gen.replica().end()});
  ElasticConfig el;
  el.max_migrations = 1;
  el.forced.push_back(ForcedMigration{2, Task::kPulseCompression,
                                      Task::kDopplerFilter});
  el.forced.push_back(
      ForcedMigration{8, Task::kCfar, Task::kDopplerFilter});
  par.set_elastic(el);
  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  // Forced migrations bypass the cap by design (tests need determinism),
  // so both commit — but never more than the forced list's length.
  EXPECT_EQ(res.migrations.attempts.size(), 2u);
  EXPECT_EQ(res.migrations.committed(), 2);
  EXPECT_TRUE(res.faults.clean());
  ASSERT_EQ(res.detections.size(), static_cast<size_t>(n_cpis));
}

}  // namespace
}  // namespace ppstap::core
