// Tests for intra-task threading: parallel_for_blocks semantics and the
// guarantee that every threaded kernel produces output bitwise identical to
// its sequential run for any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "dsp/waveform.hpp"
#include "stap/beamform.hpp"
#include "stap/cfar.hpp"
#include "stap/doppler.hpp"
#include "stap/pulse_compression.hpp"
#include "stap/sequential.hpp"
#include "synth/scenario.hpp"
#include "synth/steering.hpp"

namespace ppstap {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (index_t threads : {1, 2, 3, 7}) {
    for (index_t total : {0, 1, 5, 100}) {
      std::vector<std::atomic<int>> hits(static_cast<size_t>(total));
      parallel_for_blocks(threads, total, [&](index_t b, index_t e) {
        for (index_t i = b; i < e; ++i)
          hits[static_cast<size_t>(i)].fetch_add(1);
      });
      for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ParallelFor, BlocksAreContiguousAndOrderedPerThread) {
  std::mutex mu;
  std::vector<std::pair<index_t, index_t>> blocks;
  parallel_for_blocks(4, 10, [&](index_t b, index_t e) {
    std::lock_guard<std::mutex> lock(mu);
    blocks.emplace_back(b, e);
  });
  ASSERT_EQ(blocks.size(), 4u);
  std::sort(blocks.begin(), blocks.end());
  index_t expect = 0;
  for (const auto& [b, e] : blocks) {
    EXPECT_EQ(b, expect);
    EXPECT_GT(e, b);
    expect = e;
  }
  EXPECT_EQ(expect, 10);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::atomic<int> calls{0};
  parallel_for_blocks(16, 3, [&](index_t b, index_t e) {
    calls.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ParallelFor, WorkerExceptionPropagates) {
  EXPECT_THROW(parallel_for_blocks(4, 8,
                                   [&](index_t b, index_t) {
                                     if (b > 0)
                                       throw Error("worker boom");
                                   }),
               Error);
  EXPECT_THROW(parallel_for_blocks(-1, 8, [](index_t, index_t) {}), Error);
}

// --------------------------------------------------------------------------
// Threaded kernels == sequential kernels, bit for bit.
// --------------------------------------------------------------------------

struct KernelFixture {
  stap::StapParams p;
  cube::CpiCube cpi;

  static KernelFixture make(index_t threads) {
    KernelFixture f;
    f.p = stap::StapParams::small_test();
    f.p.num_range = 64;
    f.p.num_channels = 4;
    f.p.num_pulses = 16;
    f.p.num_beams = 2;
    f.p.intra_task_threads = threads;
    f.p.validate();
    synth::ScenarioParams sp;
    sp.num_range = f.p.num_range;
    sp.num_channels = f.p.num_channels;
    sp.num_pulses = f.p.num_pulses;
    sp.clutter.num_patches = 6;
    sp.chirp_length = 6;
    sp.targets.push_back(synth::Target{20, 0.3, 0.0, 15.0});
    f.cpi = synth::ScenarioGenerator(sp).generate(0);
    return f;
  }
};

TEST(ThreadedKernels, DopplerFilterBitwiseIdentical) {
  const auto seq = KernelFixture::make(1);
  const auto out1 = stap::DopplerFilter(seq.p).filter(seq.cpi);
  for (index_t threads : {2, 3, 5}) {
    auto f = KernelFixture::make(threads);
    const auto outn = stap::DopplerFilter(f.p).filter(f.cpi);
    ASSERT_TRUE(outn.same_shape(out1));
    for (index_t i = 0; i < out1.size(); ++i)
      ASSERT_EQ(outn.data()[i], out1.data()[i]) << "threads=" << threads;
  }
}

TEST(ThreadedKernels, BeamformBitwiseIdentical) {
  const auto base = KernelFixture::make(1);
  const auto stag = stap::DopplerFilter(base.p).filter(base.cpi);
  // Build bin-major data + weights once.
  const auto easy_bins = base.p.easy_bins();
  cube::CpiCube data(static_cast<index_t>(easy_bins.size()),
                     base.p.num_range, base.p.num_channels);
  for (size_t b = 0; b < easy_bins.size(); ++b)
    for (index_t kk = 0; kk < base.p.num_range; ++kk)
      for (index_t ch = 0; ch < base.p.num_channels; ++ch)
        data.at(static_cast<index_t>(b), kk, ch) =
            stag.at(kk, ch, easy_bins[b]);
  stap::WeightSet w;
  Rng rng(5);
  for (index_t bin : easy_bins) {
    w.bins.push_back(bin);
    linalg::MatrixCF wm(base.p.num_channels, base.p.num_beams);
    for (index_t r = 0; r < wm.rows(); ++r)
      for (index_t c = 0; c < wm.cols(); ++c) {
        auto z = rng.cnormal();
        wm(r, c) = cfloat(static_cast<float>(z.real()),
                          static_cast<float>(z.imag()));
      }
    w.weights.push_back(std::move(wm));
  }
  const auto out1 = stap::easy_beamform(data, w, base.p);
  for (index_t threads : {2, 4}) {
    auto p = base.p;
    p.intra_task_threads = threads;
    const auto outn = stap::easy_beamform(data, w, p);
    for (index_t i = 0; i < out1.size(); ++i)
      ASSERT_EQ(outn.data()[i], out1.data()[i]);
  }
}

TEST(ThreadedKernels, PulseCompressionBitwiseIdentical) {
  const auto base = KernelFixture::make(1);
  auto replica = dsp::lfm_chirp(8);
  cube::CpiCube bf(base.p.num_pulses, base.p.num_beams, base.p.num_range);
  Rng rng(9);
  for (index_t i = 0; i < bf.size(); ++i) {
    auto z = rng.cnormal();
    bf.data()[i] = cfloat(static_cast<float>(z.real()),
                          static_cast<float>(z.imag()));
  }
  const auto out1 = stap::PulseCompressor(base.p, replica).compress(bf);
  for (index_t threads : {2, 3}) {
    auto p = base.p;
    p.intra_task_threads = threads;
    const auto outn = stap::PulseCompressor(p, replica).compress(bf);
    for (index_t i = 0; i < out1.size(); ++i)
      ASSERT_EQ(outn.data()[i], out1.data()[i]);
  }
}

TEST(ThreadedKernels, CfarIdenticalIncludingOrder) {
  const auto base = KernelFixture::make(1);
  cube::RealCube power(base.p.num_pulses, base.p.num_beams,
                       base.p.num_range);
  Rng rng(13);
  for (index_t i = 0; i < power.size(); ++i)
    power.data()[i] = static_cast<float>(std::norm(rng.cnormal()));
  power.at(3, 1, 40) = 1e6f;
  power.at(9, 0, 10) = 1e6f;
  std::vector<index_t> bins(static_cast<size_t>(base.p.num_pulses));
  for (index_t b = 0; b < base.p.num_pulses; ++b)
    bins[static_cast<size_t>(b)] = b;
  const auto d1 = stap::cfar_detect(power, bins, base.p);
  ASSERT_GE(d1.size(), 2u);
  for (index_t threads : {2, 5}) {
    auto p = base.p;
    p.intra_task_threads = threads;
    const auto dn = stap::cfar_detect(power, bins, p);
    ASSERT_EQ(dn.size(), d1.size());
    for (size_t i = 0; i < d1.size(); ++i) {
      EXPECT_EQ(dn[i].doppler_bin, d1[i].doppler_bin);
      EXPECT_EQ(dn[i].beam, d1[i].beam);
      EXPECT_EQ(dn[i].range, d1[i].range);
      EXPECT_EQ(dn[i].power, d1[i].power);
    }
  }
}

TEST(ThreadedKernels, FullSequentialChainIdenticalDetections) {
  auto run = [&](index_t threads) {
    auto f = KernelFixture::make(threads);
    synth::ScenarioParams sp;
    sp.num_range = f.p.num_range;
    sp.num_channels = f.p.num_channels;
    sp.num_pulses = f.p.num_pulses;
    sp.clutter.num_patches = 6;
    sp.chirp_length = 6;
    sp.targets.push_back(synth::Target{20, 0.3, 0.0, 15.0});
    synth::ScenarioGenerator gen(sp);
    auto steering =
        synth::steering_matrix(f.p.num_channels, f.p.num_beams,
                               f.p.beam_center_rad, f.p.beam_span_rad);
    stap::SequentialStap chain(f.p, steering, gen.replica());
    std::vector<stap::Detection> all;
    for (index_t cpi = 0; cpi < 4; ++cpi) {
      auto r = chain.process(gen.generate(cpi));
      all.insert(all.end(), r.detections.begin(), r.detections.end());
    }
    return all;
  };
  const auto d1 = run(1);
  const auto d3 = run(3);
  ASSERT_EQ(d1.size(), d3.size());
  for (size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].range, d3[i].range);
    EXPECT_EQ(d1[i].power, d3[i].power);
  }
}

}  // namespace
}  // namespace ppstap
