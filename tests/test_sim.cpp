// Tests for the Paragon machine model and the discrete-event pipeline
// simulator: calibration, linear-speedup invariants, communication volume
// agreement with the real threaded pipeline, and reproduction of the
// paper's qualitative results (Tables 7-10 trends).
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "core/pipeline.hpp"
#include "core/sim.hpp"
#include "synth/steering.hpp"

namespace ppstap::core {
namespace {

using stap::StapParams;
using stap::Task;

PipelineSimulator paper_sim() {
  return PipelineSimulator(StapParams{}, ParagonParams::calibrated());
}

TEST(Machine, CalibrationReproducesPaperComputeTimes) {
  auto sim = paper_sim();
  // Paper Table 7, all three cases: compute time for each (task, nodes).
  struct Obs {
    Task task;
    int nodes;
    double seconds;
  };
  const Obs obs[] = {
      {Task::kDopplerFilter, 32, 0.0874},  {Task::kDopplerFilter, 16, 0.1714},
      {Task::kDopplerFilter, 8, 0.3509},   {Task::kEasyWeight, 16, 0.0913},
      {Task::kEasyWeight, 8, 0.1636},      {Task::kEasyWeight, 4, 0.3254},
      {Task::kHardWeight, 112, 0.0831},    {Task::kHardWeight, 56, 0.1636},
      {Task::kHardWeight, 28, 0.3265},     {Task::kEasyBeamform, 16, 0.0708},
      {Task::kEasyBeamform, 8, 0.1267},    {Task::kEasyBeamform, 4, 0.2529},
      {Task::kHardBeamform, 28, 0.0414},   {Task::kHardBeamform, 14, 0.0822},
      {Task::kHardBeamform, 7, 0.1636},    {Task::kPulseCompression, 16, 0.0776},
      {Task::kPulseCompression, 8, 0.1543}, {Task::kPulseCompression, 4, 0.3067},
      {Task::kCfar, 16, 0.0434},           {Task::kCfar, 8, 0.0864},
      {Task::kCfar, 4, 0.1723},
  };
  for (const auto& o : obs) {
    const double sim_t = sim.compute_time(o.task, o.nodes);
    // Within 7% of every measurement in the paper (the rates are fitted on
    // case 1 only; cases 2 and 3 validate the linear-speedup premise).
    EXPECT_NEAR(sim_t / o.seconds, 1.0, 0.07)
        << stap::task_name(o.task) << " on " << o.nodes << " nodes";
  }
}

TEST(Machine, ComputeModelFollowsWorkItemGranularity) {
  // time(P) = ceil(items / P) * per-item time: exactly linear when P
  // divides the item count, and stepwise (load imbalance) otherwise.
  auto sim = paper_sim();
  for (int t = 0; t < stap::kNumTasks; ++t) {
    const auto task = static_cast<Task>(t);
    const auto items = sim.work_items(task);
    const double t1 = sim.compute_time(task, 1);
    const double per_item = t1 / static_cast<double>(items);
    for (int n : {2, 3, 4, 7, 8, 16}) {
      const auto expected =
          static_cast<double>((items + n - 1) / n) * per_item;
      EXPECT_NEAR(sim.compute_time(task, n), expected, 1e-12 + 1e-9 * t1)
          << stap::task_name(task) << " n=" << n;
    }
    // Perfect halving when the partition is even.
    EXPECT_NEAR(sim.compute_time(task, 2) * 2.0, t1, 1e-9 * t1);
  }
}

TEST(Sim, EdgeMetadataIsConsistent) {
  for (int e = 0; e < kNumEdges; ++e) {
    const auto edge = static_cast<SimEdge>(e);
    EXPECT_NE(sim_edge_src(edge), sim_edge_dst(edge));
    EXPECT_NE(sim_edge_name(edge), nullptr);
  }
  // Temporal edges are exactly the weight->beamform pair.
  EXPECT_TRUE(sim_edge_is_temporal(SimEdge::kEasyWtToBf));
  EXPECT_TRUE(sim_edge_is_temporal(SimEdge::kHardWtToBf));
  EXPECT_FALSE(sim_edge_is_temporal(SimEdge::kDopToEasyBf));
  EXPECT_FALSE(sim_edge_is_temporal(SimEdge::kPcToCfar));
  // Reorganization is needed exactly on the Doppler fan-out (partition
  // dimension changes from K to N there, and only there).
  for (auto e : {SimEdge::kDopToEasyWt, SimEdge::kDopToHardWt,
                 SimEdge::kDopToEasyBf, SimEdge::kDopToHardBf})
    EXPECT_TRUE(sim_edge_needs_reorg(e));
  for (auto e : {SimEdge::kEasyWtToBf, SimEdge::kHardWtToBf,
                 SimEdge::kEasyBfToPc, SimEdge::kHardBfToPc,
                 SimEdge::kPcToCfar})
    EXPECT_FALSE(sim_edge_needs_reorg(e));
}

TEST(Sim, EdgeVolumesMatchRealPipelineByteCounters) {
  // The machine model's communication volumes must equal what the real
  // threaded pipeline actually sends, per sending task.
  StapParams p = StapParams::small_test();
  p.num_range = 48;
  p.num_channels = 4;
  p.num_pulses = 16;
  p.num_beams = 2;
  p.num_hard = 6;
  p.num_segments = 2;
  p.easy_samples_per_cpi = 12;
  p.hard_samples_per_segment = 10;
  p.validate();

  synth::ScenarioParams sp;
  sp.num_range = p.num_range;
  sp.num_channels = p.num_channels;
  sp.num_pulses = p.num_pulses;
  sp.clutter.num_patches = 4;
  sp.chirp_length = 0;
  synth::ScenarioGenerator gen(sp);
  auto steering = synth::steering_matrix(p.num_channels, p.num_beams,
                                         p.beam_center_rad, p.beam_span_rad);
  NodeAssignment a{{3, 2, 4, 2, 2, 2, 2}};
  ParallelStapPipeline pipe(p, a, steering, {});
  auto result = pipe.run(gen, 5, 1, 1);

  PipelineSimulator sim(p, ParagonParams::calibrated());
  std::array<double, stap::kNumTasks> expected{};
  for (int e = 0; e < kNumEdges; ++e) {
    const auto edge = static_cast<SimEdge>(e);
    expected[static_cast<size_t>(sim_edge_src(edge))] +=
        sim.edge_volume_bytes(edge);
  }
  for (int t = 0; t < stap::kNumTasks - 1; ++t) {  // CFAR sends nothing
    EXPECT_NEAR(result.bytes_sent_per_cpi[static_cast<size_t>(t)],
                expected[static_cast<size_t>(t)],
                1e-6 * expected[static_cast<size_t>(t)])
        << stap::task_name(static_cast<Task>(t));
  }
}

TEST(Sim, ReproducesPaperTable8Trends) {
  auto sim = paper_sim();
  const auto c1 = sim.simulate(NodeAssignment::paper_case1());
  const auto c2 = sim.simulate(NodeAssignment::paper_case2());
  const auto c3 = sim.simulate(NodeAssignment::paper_case3());

  // Paper Table 8: throughput 7.27 / 3.80 / 1.99, latency .362/.681/1.353.
  EXPECT_NEAR(c1.throughput_measured, 7.27, 7.27 * 0.10);
  EXPECT_NEAR(c2.throughput_measured, 3.80, 3.80 * 0.10);
  EXPECT_NEAR(c3.throughput_measured, 1.99, 1.99 * 0.10);
  EXPECT_NEAR(c1.latency_measured, 0.362, 0.362 * 0.12);
  EXPECT_NEAR(c2.latency_measured, 0.681, 0.681 * 0.12);
  EXPECT_NEAR(c3.latency_measured, 1.353, 1.353 * 0.12);

  // Linear scalability: doubling nodes ~doubles throughput, ~halves
  // latency (the headline claim).
  EXPECT_NEAR(c1.throughput_measured / c2.throughput_measured, 2.0, 0.25);
  EXPECT_NEAR(c2.throughput_measured / c3.throughput_measured, 2.0, 0.25);
  EXPECT_NEAR(c2.latency_measured / c1.latency_measured, 2.0, 0.25);
  EXPECT_NEAR(c3.latency_measured / c2.latency_measured, 2.0, 0.25);

  // Real latency is below the equation-(2) upper bound (paper §7.3).
  EXPECT_LT(c1.latency_measured, c1.latency_equation);
  EXPECT_LT(c2.latency_measured, c2.latency_equation);
  EXPECT_LT(c3.latency_measured, c3.latency_equation);
}

TEST(Sim, Table9AddingDopplerNodesHelpsOtherTasks) {
  // The paper's headline secondary effect: +4 Doppler nodes (3% more
  // nodes) improves both throughput and latency, and *reduces the receive
  // time of downstream tasks* without adding nodes to them.
  auto sim = paper_sim();
  const auto base = sim.simulate(NodeAssignment::paper_case2());
  const auto more = sim.simulate(NodeAssignment::paper_table9());

  EXPECT_GT(more.throughput_measured, base.throughput_measured * 1.15);
  EXPECT_LT(more.latency_measured, base.latency_measured * 0.95);
  // Downstream tasks' recv shrinks though their node counts are unchanged.
  for (auto t : {Task::kEasyWeight, Task::kHardWeight, Task::kEasyBeamform,
                 Task::kPulseCompression}) {
    EXPECT_LT(more.timing[static_cast<size_t>(t)].recv,
              base.timing[static_cast<size_t>(t)].recv)
        << stap::task_name(t);
  }
}

TEST(Sim, Table10WeightBottleneckCapsThroughput) {
  // +16 nodes on PC/CFAR on top of Table 9: throughput must NOT improve
  // (the weight tasks are the bottleneck) while latency improves (the last
  // two tasks are on the latency path).
  auto sim = paper_sim();
  const auto t9 = sim.simulate(NodeAssignment::paper_table9());
  const auto t10 = sim.simulate(NodeAssignment::paper_table10());

  EXPECT_LT(t10.throughput_measured, t9.throughput_measured * 1.05);
  EXPECT_LT(t10.latency_measured, t9.latency_measured * 0.90);
  // The extra PC/CFAR nodes show up as idle time: their recv grows.
  EXPECT_GT(t10.timing[static_cast<size_t>(Task::kPulseCompression)].recv,
            t9.timing[static_cast<size_t>(Task::kPulseCompression)].recv);
  EXPECT_GT(t10.timing[static_cast<size_t>(Task::kCfar)].recv,
            t9.timing[static_cast<size_t>(Task::kCfar)].recv);
}

TEST(Sim, CommunicationScalesSuperlinearlyWithSenderNodes) {
  // Paper Table 2 setting: Doppler 8 -> 32 nodes with fixed successors.
  // The visible send (collection + reorganization per node) shrinks
  // ~proportionally (paper: .1332 -> .0340), and the successors' receive
  // idle collapses superlinearly (paper easy wt: .4339 -> .0511).
  auto sim = paper_sim();
  NodeAssignment small{{8, 16, 56, 16, 16, 16, 8}};
  NodeAssignment medium{{16, 16, 56, 16, 16, 16, 8}};
  NodeAssignment large{{32, 16, 56, 16, 16, 16, 8}};
  const auto rs = sim.simulate(small);
  const auto rm = sim.simulate(medium);
  const auto rl = sim.simulate(large);
  const auto doppler = static_cast<size_t>(Task::kDopplerFilter);
  // Visible send halves with doubled sender nodes while the sender stays
  // on the pipeline's critical path (paper: .1332 -> .0679).
  EXPECT_GT(rs.timing[doppler].send / rm.timing[doppler].send, 1.8);
  // Receive side of Doppler -> easy weight: superlinear (> 4x from a 4x
  // node increase; paper: .4339 -> .0511).
  const auto e = static_cast<size_t>(SimEdge::kDopToEasyWt);
  EXPECT_GT(rs.edges[e].recv / rl.edges[e].recv, 4.0);
}

TEST(Sim, ThroughputEquationMatchesMeasuredInSteadyState) {
  auto sim = paper_sim();
  for (const auto& a :
       {NodeAssignment::paper_case1(), NodeAssignment::paper_case2(),
        NodeAssignment::paper_case3()}) {
    const auto r = sim.simulate(a);
    EXPECT_NEAR(r.throughput_measured, r.throughput_equation,
                0.02 * r.throughput_equation);
  }
}

TEST(Sim, MoreCpisDoNotChangeSteadyStateAverages) {
  auto sim = paper_sim();
  const auto a = sim.simulate(NodeAssignment::paper_case2(), 15, 3, 2);
  const auto b = sim.simulate(NodeAssignment::paper_case2(), 40, 3, 2);
  EXPECT_NEAR(a.throughput_measured, b.throughput_measured,
              0.02 * b.throughput_measured);
  EXPECT_NEAR(a.latency_measured, b.latency_measured,
              0.05 * b.latency_measured);
}

TEST(Sim, AssignmentSearchBeatsNaiveEvenSplit) {
  auto sim = paper_sim();
  const int total = 118;
  const auto tuned = assign_for_throughput(sim, total);
  EXPECT_LE(tuned.total(), total);
  // Even split across the seven tasks (16,17,...) as the naive baseline.
  NodeAssignment even{{17, 17, 17, 17, 17, 16, 17}};
  const auto r_tuned = sim.simulate(tuned);
  const auto r_even = sim.simulate(even);
  EXPECT_GT(r_tuned.throughput_measured, r_even.throughput_measured * 1.2);
}

TEST(Sim, AssignmentSearchRecoversPaperShape) {
  // The greedy search at 118 nodes should give the hard weight task the
  // lion's share, like the paper's hand assignment (56 of 118).
  auto sim = paper_sim();
  const auto tuned = assign_for_throughput(sim, 118);
  const int hard = tuned[Task::kHardWeight];
  for (int t = 0; t < stap::kNumTasks; ++t) {
    if (static_cast<Task>(t) == Task::kHardWeight) continue;
    EXPECT_GE(hard, tuned.nodes[static_cast<size_t>(t)]);
  }
  EXPECT_GE(hard, 30);
}

TEST(Sim, LatencySearchRespectsThroughputFloor) {
  auto sim = paper_sim();
  const auto a = assign_for_latency(sim, 118, 3.5);
  const auto r = sim.simulate(a);
  EXPECT_GE(r.throughput_measured, 3.5 * 0.98);
}

TEST(RoundRobin, LatencyIsNodeCountIndependent) {
  auto sim = paper_sim();
  const auto r25 = sim.round_robin(25);
  const auto r100 = sim.round_robin(100);
  EXPECT_DOUBLE_EQ(r25.latency, r100.latency);
  EXPECT_NEAR(r100.throughput, 4.0 * r25.throughput, 1e-9);
}

TEST(RoundRobin, PipelinedBeatsRoundRobinLatencyAtEqualNodes) {
  // The paper's motivation (§1/§2): round-robin can match throughput by
  // adding nodes but its latency is pinned at the one-node chain time; the
  // pipelined system with the same nodes is an order of magnitude faster
  // to answer.
  auto sim = paper_sim();
  const auto rr = sim.round_robin(118);
  const auto pipe = sim.simulate(NodeAssignment::paper_case2());
  EXPECT_LT(pipe.latency_measured, rr.latency / 10.0);
  // Single-node chain time is the sum of all task compute times.
  double chain = 0.0;
  for (int t = 0; t < stap::kNumTasks; ++t)
    chain += sim.compute_time(static_cast<Task>(t), 1);
  EXPECT_GT(rr.latency, chain);
}

TEST(Replication, StrideSemanticsMultiplyStageThroughput) {
  // Build a pipeline where pulse compression is the clear bottleneck, then
  // replicate it: throughput should approach the 2x of the stage rate.
  auto sim = paper_sim();
  NodeAssignment a{{32, 16, 112, 16, 28, 2, 16}};  // PC starved
  const auto base = sim.simulate(a);
  ReplicationPlan plan;
  plan[Task::kPulseCompression] = 2;
  const auto rep = sim.simulate_replicated(a, plan);
  EXPECT_GT(rep.throughput_measured, 1.5 * base.throughput_measured);
  // Replication does not shorten the stage itself: latency gains, if any,
  // are second-order, and the plan costs extra nodes.
  EXPECT_EQ(plan.total_nodes(a), a.total() + 2);
}

TEST(Replication, ReplicatingANonBottleneckStageDoesNothing) {
  auto sim = paper_sim();
  NodeAssignment a = NodeAssignment::paper_case2();
  ReplicationPlan plan;
  plan[Task::kCfar] = 2;  // CFAR is not the bottleneck in case 2
  const auto base = sim.simulate(a);
  const auto rep = sim.simulate_replicated(a, plan);
  EXPECT_NEAR(rep.throughput_measured, base.throughput_measured,
              0.05 * base.throughput_measured);
}

TEST(Replication, DefaultPlanMatchesPlainSimulate) {
  auto sim = paper_sim();
  const auto a = NodeAssignment::paper_case3();
  const auto plain = sim.simulate(a);
  const auto rep = sim.simulate_replicated(a, ReplicationPlan{});
  EXPECT_DOUBLE_EQ(plain.throughput_measured, rep.throughput_measured);
  EXPECT_DOUBLE_EQ(plain.latency_measured, rep.latency_measured);
}

TEST(Replication, WeightTasksCannotBeReplicated) {
  ReplicationPlan plan;
  plan[Task::kEasyWeight] = 2;
  EXPECT_THROW(plan.validate(), Error);
  ReplicationPlan plan2;
  plan2[Task::kHardWeight] = 3;
  EXPECT_THROW(plan2.validate(), Error);
  ReplicationPlan plan3;
  plan3[Task::kDopplerFilter] = 0;
  EXPECT_THROW(plan3.validate(), Error);
}

TEST(Sim, BeamPositionsRelaxTheTemporalEdge) {
  // With B transmit positions the weights for CPI t were computed B CPIs
  // ago, so the beamformers never wait on the weight tasks; throughput and
  // latency can only improve (or stay equal) relative to B = 1.
  stap::StapParams p1;
  stap::StapParams p5 = p1;
  p5.num_beam_positions = 5;
  const auto m = ParagonParams::calibrated();
  PipelineSimulator sim1(p1, m), sim5(p5, m);
  const auto a = NodeAssignment::paper_case2();
  const auto r1 = sim1.simulate(a);
  const auto r5 = sim5.simulate(a);
  EXPECT_GE(r5.throughput_measured, r1.throughput_measured * 0.999);
  EXPECT_LE(r5.latency_measured, r1.latency_measured * 1.001);
}

TEST(Replication, ComposesWithBeamPositions) {
  stap::StapParams p;
  p.num_beam_positions = 3;
  PipelineSimulator sim(p, ParagonParams::calibrated());
  NodeAssignment a{{32, 16, 112, 16, 28, 2, 16}};  // PC starved
  ReplicationPlan plan;
  plan[Task::kPulseCompression] = 2;
  const auto base = sim.simulate(a);
  const auto rep = sim.simulate_replicated(a, plan);
  EXPECT_GT(rep.throughput_measured, 1.5 * base.throughput_measured);
}

TEST(Reallocation, ReachesTheNewSteadyState) {
  auto sim = paper_sim();
  ReallocationPlan plan;
  plan.before = NodeAssignment::paper_case3();
  plan.after = NodeAssignment::paper_case2();
  plan.switch_cpi = 12;
  const auto r = sim.simulate_reallocation(plan, 25);

  const auto s_before = sim.simulate(plan.before);
  const auto s_after = sim.simulate(plan.after);
  EXPECT_NEAR(r.throughput_before, s_before.throughput_measured,
              0.03 * s_before.throughput_measured);
  EXPECT_NEAR(r.throughput_after, s_after.throughput_measured,
              0.03 * s_after.throughput_measured);
  EXPECT_NEAR(r.latency_after, s_after.latency_measured,
              0.05 * s_after.latency_measured);
  EXPECT_GT(r.migration_stall, 0.0);
  // The transient at the switch: one elongated completion gap, then the
  // new period.
  const double gap_sw = r.completion[12] - r.completion[11];
  const double gap_after = r.completion[15] - r.completion[14];
  EXPECT_GT(gap_sw, gap_after);
}

TEST(Reallocation, DowngradeAlsoWorks) {
  auto sim = paper_sim();
  ReallocationPlan plan;
  plan.before = NodeAssignment::paper_case1();
  plan.after = NodeAssignment::paper_case3();
  plan.switch_cpi = 10;
  const auto r = sim.simulate_reallocation(plan, 22);
  EXPECT_GT(r.throughput_before, 2.0 * r.throughput_after);
  EXPECT_LT(r.latency_before, r.latency_after);
}

TEST(Reallocation, StateVolumeIsSmall) {
  auto sim = paper_sim();
  // Paper configuration: the migratable adaptive state is a couple of MB —
  // far below one CPI data cube (K*J*N*8 = 8.4 MB).
  EXPECT_LT(sim.weight_state_bytes(), 4e6);
  EXPECT_GT(sim.weight_state_bytes(), 1e5);
}

TEST(Reallocation, RejectsBadSwitchPoints) {
  auto sim = paper_sim();
  ReallocationPlan plan;
  plan.before = NodeAssignment::paper_case3();
  plan.after = NodeAssignment::paper_case2();
  plan.switch_cpi = 2;  // inside the warmup window
  EXPECT_THROW(sim.simulate_reallocation(plan, 25), Error);
  plan.switch_cpi = 24;  // no measured window after
  EXPECT_THROW(sim.simulate_reallocation(plan, 25), Error);
}

TEST(Sim, RejectsInvalidInputs) {
  auto sim = paper_sim();
  EXPECT_THROW(sim.simulate(NodeAssignment::paper_case1(), 4, 3, 2), Error);
  ParagonParams bad = ParagonParams::calibrated();
  bad.task_flops_per_s[0] = 0.0;
  EXPECT_THROW(PipelineSimulator(StapParams{}, bad), Error);
  EXPECT_THROW(sim.compute_time(Task::kCfar, 0), Error);
}

}  // namespace
}  // namespace ppstap::core
