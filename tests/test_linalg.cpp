// Tests for the dense linear algebra kernels: GEMM, Householder QR,
// least squares, and the recursive row-append QR update the hard weight
// computation depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/flops.hpp"
#include "common/rng.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"

namespace ppstap::linalg {
namespace {

MatrixCD random_matrix(index_t rows, index_t cols, Rng& rng) {
  MatrixCD m(rows, cols);
  for (index_t i = 0; i < rows; ++i)
    for (index_t j = 0; j < cols; ++j) m(i, j) = rng.cnormal();
  return m;
}

// A^H A computed directly — the Gram matrix is the invariant both full QR
// and the row-append update must preserve (R is unique up to column phase).
MatrixCD gram(const MatrixCD& a) {
  MatrixCD g;
  matmul(a, Op::kConjTrans, a, Op::kNone, g);
  return g;
}

TEST(Matrix, BasicAccessAndShape) {
  MatrixCD m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  m(2, 3) = cdouble(1.0, -2.0);
  EXPECT_EQ(m(2, 3), cdouble(1.0, -2.0));
  EXPECT_EQ(m(0, 0), cdouble(0.0, 0.0));
}

TEST(Matrix, IdentityScaled) {
  auto eye = MatrixCD::identity(3, cdouble(2.0, 0.0));
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 3; ++j)
      EXPECT_EQ(eye(i, j), i == j ? cdouble(2.0, 0.0) : cdouble(0.0, 0.0));
}

TEST(Gemm, MatchesHandComputedProduct) {
  MatrixCD a(2, 3), b(3, 2);
  int v = 1;
  for (index_t i = 0; i < 2; ++i)
    for (index_t j = 0; j < 3; ++j) a(i, j) = cdouble(v++, 0);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 2; ++j) b(i, j) = cdouble(v++, 0);
  auto c = matmul(a, b);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  EXPECT_EQ(c(0, 0), cdouble(58, 0));
  EXPECT_EQ(c(0, 1), cdouble(64, 0));
  EXPECT_EQ(c(1, 0), cdouble(139, 0));
  EXPECT_EQ(c(1, 1), cdouble(154, 0));
}

TEST(Gemm, HermitianTransposeAgreesWithExplicit) {
  Rng rng(11);
  auto a = random_matrix(5, 3, rng);
  auto b = random_matrix(5, 4, rng);
  auto c = matmul_herm(a, b);  // A^H B
  // Explicitly conjugate-transpose A, then plain multiply.
  MatrixCD ah(3, 5);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 3; ++j) ah(j, i) = std::conj(a(i, j));
  auto ref = matmul(ah, b);
  EXPECT_LT(frobenius_distance(c, ref), 1e-12);
}

TEST(Gemm, ShapeMismatchThrows) {
  MatrixCD a(2, 3), b(4, 2), c;
  EXPECT_THROW(matmul(a, Op::kNone, b, Op::kNone, c), Error);
}

TEST(Gemm, MatvecMatchesMatmul) {
  Rng rng(3);
  auto a = random_matrix(4, 3, rng);
  std::vector<cdouble> x = {rng.cnormal(), rng.cnormal(), rng.cnormal()};
  auto y = matvec(a, Op::kNone, std::span<const cdouble>(x));
  for (index_t i = 0; i < 4; ++i) {
    cdouble acc{};
    for (index_t j = 0; j < 3; ++j) acc += a(i, j) * x[static_cast<size_t>(j)];
    EXPECT_NEAR(std::abs(y[static_cast<size_t>(i)] - acc), 0.0, 1e-12);
  }
}

TEST(Qr, ReconstructionViaGram) {
  Rng rng(17);
  for (auto [m, n] : {std::pair<index_t, index_t>{8, 8},
                      {20, 5},
                      {16, 16},
                      {50, 12}}) {
    auto a = random_matrix(m, n, rng);
    QrFactorization<cdouble> qr(a);
    auto r = qr.r();
    // R must be upper triangular.
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < i; ++j)
        EXPECT_EQ(r(i, j), cdouble(0.0, 0.0));
    // R^H R == A^H A (Q drops out).
    EXPECT_LT(frobenius_distance(gram(r), gram(a)),
              1e-10 * (1.0 + frobenius_norm(gram(a))))
        << "m=" << m << " n=" << n;
  }
}

TEST(Qr, ApplyQhPreservesNorm) {
  Rng rng(23);
  auto a = random_matrix(12, 6, rng);
  QrFactorization<cdouble> qr(a);
  auto b = random_matrix(12, 3, rng);
  const double before = frobenius_norm(b);
  qr.apply_qh(b);
  EXPECT_NEAR(frobenius_norm(b), before, 1e-10);
}

TEST(Qr, SolveSquareSystemExactly) {
  Rng rng(29);
  auto a = random_matrix(6, 6, rng);
  auto x_true = random_matrix(6, 2, rng);
  auto b = matmul(a, x_true);
  auto x = QrFactorization<cdouble>(a).solve(b);
  EXPECT_LT(frobenius_distance(x, x_true), 1e-10);
}

TEST(Qr, LeastSquaresMatchesNormalEquations) {
  Rng rng(31);
  auto a = random_matrix(40, 6, rng);
  auto b = random_matrix(40, 3, rng);
  auto x = least_squares(a, b);
  // Residual must be orthogonal to the column space: A^H (A x - b) = 0.
  auto ax = matmul(a, x);
  MatrixCD resid(40, 3);
  for (index_t i = 0; i < 40; ++i)
    for (index_t j = 0; j < 3; ++j) resid(i, j) = ax(i, j) - b(i, j);
  MatrixCD ortho;
  matmul(a, Op::kConjTrans, resid, Op::kNone, ortho);
  EXPECT_LT(frobenius_norm(ortho), 1e-9);
}

TEST(Qr, RowsLessThanColsThrows) {
  MatrixCD a(3, 5);
  EXPECT_THROW(QrFactorization<cdouble>{a}, Error);
}

TEST(BackSubstitute, SingularDiagonalThrows) {
  MatrixCD r(2, 2);
  r(0, 0) = cdouble(1, 0);
  r(0, 1) = cdouble(2, 0);
  r(1, 1) = cdouble(0, 0);  // singular
  MatrixCD b(2, 1);
  b(0, 0) = cdouble(1, 0);
  EXPECT_THROW(back_substitute(r, b), Error);
}

TEST(QrAppend, EqualsBatchQrOnStackedData) {
  Rng rng(37);
  const index_t n = 8, k = 5;
  auto a0 = random_matrix(12, n, rng);
  auto x = random_matrix(k, n, rng);
  auto r0 = QrFactorization<cdouble>(a0).r();

  auto r_updated = qr_append_rows(r0, x);

  // Batch reference: QR of [A0; X].
  MatrixCD stacked(12 + k, n);
  for (index_t i = 0; i < 12; ++i)
    for (index_t j = 0; j < n; ++j) stacked(i, j) = a0(i, j);
  for (index_t i = 0; i < k; ++i)
    for (index_t j = 0; j < n; ++j) stacked(12 + i, j) = x(i, j);
  auto r_batch = QrFactorization<cdouble>(stacked).r();

  EXPECT_LT(frobenius_distance(gram(r_updated), gram(r_batch)), 1e-9);
}

TEST(QrAppend, ResultIsUpperTriangular) {
  Rng rng(41);
  auto r0 = QrFactorization<cdouble>(random_matrix(10, 6, rng)).r();
  auto x = random_matrix(4, 6, rng);
  auto r1 = qr_append_rows(r0, x);
  for (index_t i = 0; i < 6; ++i)
    for (index_t j = 0; j < i; ++j) EXPECT_EQ(r1(i, j), cdouble(0.0, 0.0));
}

TEST(QrAppend, ForgettingFactorEquivalence) {
  // lambda-faded recursive update == batch QR of [lambda*A0; X].
  Rng rng(43);
  const double lambda = 0.6;
  auto a0 = random_matrix(15, 5, rng);
  auto x = random_matrix(6, 5, rng);

  auto r0 = QrFactorization<cdouble>(a0).r();
  MatrixCD faded = r0;
  for (index_t i = 0; i < faded.rows(); ++i)
    for (index_t j = 0; j < faded.cols(); ++j) faded(i, j) *= lambda;
  auto r_rec = qr_append_rows(faded, x);

  MatrixCD stacked(15 + 6, 5);
  for (index_t i = 0; i < 15; ++i)
    for (index_t j = 0; j < 5; ++j) stacked(i, j) = lambda * a0(i, j);
  for (index_t i = 0; i < 6; ++i)
    for (index_t j = 0; j < 5; ++j) stacked(15 + i, j) = x(i, j);
  auto r_batch = QrFactorization<cdouble>(stacked).r();

  EXPECT_LT(frobenius_distance(gram(r_rec), gram(r_batch)), 1e-9);
}

TEST(QrAppend, ChainOfUpdatesStaysConsistent) {
  // Many successive appends == one batch factorization.
  Rng rng(47);
  const index_t n = 6;
  MatrixCD all(0, n);
  auto r = MatrixCD::identity(n, cdouble(1e-9, 0));  // tiny seed
  std::vector<MatrixCD> blocks;
  for (int step = 0; step < 5; ++step)
    blocks.push_back(random_matrix(4, n, rng));

  index_t total = 0;
  for (const auto& b : blocks) total += b.rows();
  MatrixCD stacked(total, n);
  index_t row = 0;
  for (const auto& b : blocks) {
    r = qr_append_rows(r, b);
    for (index_t i = 0; i < b.rows(); ++i, ++row)
      for (index_t j = 0; j < n; ++j) stacked(row, j) = b(i, j);
  }
  auto r_batch = QrFactorization<cdouble>(stacked).r();
  EXPECT_LT(frobenius_distance(gram(r), gram(r_batch)), 1e-8);
}

// Property sweep: QR invariants across a grid of shapes.
class QrShapeSweep
    : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(QrShapeSweep, GramPreservedAndTriangular) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000 + n));
  auto a = random_matrix(m, n, rng);
  QrFactorization<cdouble> qr(a);
  auto r = qr.r();
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < i; ++j) EXPECT_EQ(r(i, j), cdouble(0.0, 0.0));
  EXPECT_LT(frobenius_distance(gram(r), gram(a)),
            1e-9 * (1.0 + frobenius_norm(gram(a))));
}

using Shape = std::pair<index_t, index_t>;
INSTANTIATE_TEST_SUITE_P(Shapes, QrShapeSweep,
                         ::testing::Values(Shape{1, 1}, Shape{2, 1},
                                           Shape{3, 3}, Shape{7, 2},
                                           Shape{16, 16}, Shape{33, 7},
                                           Shape{64, 32}, Shape{100, 16},
                                           Shape{128, 32}));

// All op-combination correctness against the naive indexed reference.
struct GemmCase {
  index_t m, k, n;
  Op op_a, op_b;
};

class GemmOpSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmOpSweep, MatchesNaiveReference) {
  const auto cs = GetParam();
  Rng rng(static_cast<std::uint64_t>(cs.m * 100 + cs.k * 10 + cs.n));
  // Stored shapes depend on the ops.
  const auto a = random_matrix(cs.op_a == Op::kNone ? cs.m : cs.k,
                               cs.op_a == Op::kNone ? cs.k : cs.m, rng);
  const auto b = random_matrix(cs.op_b == Op::kNone ? cs.k : cs.n,
                               cs.op_b == Op::kNone ? cs.n : cs.k, rng);
  MatrixCD c;
  matmul(a, cs.op_a, b, cs.op_b, c);
  ASSERT_EQ(c.rows(), cs.m);
  ASSERT_EQ(c.cols(), cs.n);
  for (index_t i = 0; i < cs.m; ++i)
    for (index_t j = 0; j < cs.n; ++j) {
      cdouble acc{};
      for (index_t p = 0; p < cs.k; ++p) {
        const cdouble av =
            cs.op_a == Op::kNone ? a(i, p) : std::conj(a(p, i));
        const cdouble bv =
            cs.op_b == Op::kNone ? b(p, j) : std::conj(b(j, p));
        acc += av * bv;
      }
      EXPECT_LT(std::abs(c(i, j) - acc), 1e-11 * (1.0 + std::abs(acc)));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, GemmOpSweep,
    ::testing::Values(GemmCase{3, 4, 5, Op::kNone, Op::kNone},
                      GemmCase{3, 4, 5, Op::kConjTrans, Op::kNone},
                      GemmCase{3, 4, 5, Op::kNone, Op::kConjTrans},
                      GemmCase{3, 4, 5, Op::kConjTrans, Op::kConjTrans},
                      GemmCase{1, 1, 1, Op::kNone, Op::kNone},
                      GemmCase{16, 32, 6, Op::kConjTrans, Op::kNone},
                      GemmCase{7, 1, 9, Op::kNone, Op::kConjTrans}));

TEST(Gemm, FlopCountingMatchesFormula) {
  Rng rng(71);
  auto a = random_matrix(6, 7, rng);
  auto b = random_matrix(7, 8, rng);
  FlopScope scope;
  auto c = matmul(a, b);
  EXPECT_EQ(scope.count(), 6ull * 7 * 8 * 8);  // complex FMA = 8 flops
}

TEST(Qr, NearSingularColumnsStillFactor) {
  // Two nearly identical columns: QR must not blow up, and the Gram
  // identity must still hold to a scaled tolerance.
  Rng rng(73);
  auto a = random_matrix(20, 4, rng);
  for (index_t i = 0; i < 20; ++i)
    a(i, 3) = a(i, 2) + cdouble(1e-9, 0) * a(i, 0);
  QrFactorization<cdouble> qr(a);
  auto r = qr.r();
  EXPECT_LT(frobenius_distance(gram(r), gram(a)),
            1e-8 * (1.0 + frobenius_norm(gram(a))));
}

TEST(QrAppend, ZeroRowBlockIsIdentityUpToPhase) {
  Rng rng(79);
  auto r0 = QrFactorization<cdouble>(random_matrix(10, 5, rng)).r();
  MatrixCD zeros(3, 5);
  auto r1 = qr_append_rows(r0, zeros);
  EXPECT_LT(frobenius_distance(gram(r1), gram(r0)), 1e-10);
}

// Float-precision instantiation sanity: the pipeline runs in cfloat.
TEST(QrFloat, SolveIsAccurateEnough) {
  Rng rng(53);
  Matrix<cfloat> a(30, 8), b(30, 2);
  for (index_t i = 0; i < 30; ++i) {
    for (index_t j = 0; j < 8; ++j) {
      auto z = rng.cnormal();
      a(i, j) = cfloat(static_cast<float>(z.real()),
                       static_cast<float>(z.imag()));
    }
    for (index_t j = 0; j < 2; ++j) {
      auto z = rng.cnormal();
      b(i, j) = cfloat(static_cast<float>(z.real()),
                       static_cast<float>(z.imag()));
    }
  }
  auto x = least_squares(a, b);
  auto ax = matmul(a, x);
  Matrix<cfloat> resid(30, 2);
  for (index_t i = 0; i < 30; ++i)
    for (index_t j = 0; j < 2; ++j) resid(i, j) = ax(i, j) - b(i, j);
  Matrix<cfloat> ortho;
  matmul(a, Op::kConjTrans, resid, Op::kNone, ortho);
  EXPECT_LT(frobenius_norm(ortho), 1e-3f);
}

}  // namespace
}  // namespace ppstap::linalg
