// Tests for the beam pattern / SINR analysis utilities: steering-response
// identities, covariance estimation, SINR against known optimal
// beamformers, and the Appendix-A beam-shape claims on trained weights.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "linalg/qr.hpp"
#include "stap/analysis.hpp"
#include "stap/weights.hpp"
#include "synth/steering.hpp"

namespace ppstap::stap {
namespace {

linalg::MatrixCF column_from(std::span<const cfloat> v) {
  linalg::MatrixCF m(static_cast<index_t>(v.size()), 1);
  for (size_t i = 0; i < v.size(); ++i)
    m(static_cast<index_t>(i), 0) = v[i];
  return m;
}

TEST(AngleResponse, SteeringWeightPeaksAtItsOwnAngle) {
  const index_t j = 12;
  const double look = 0.3;
  auto w = column_from(synth::spatial_steering(j, look));
  std::vector<double> az;
  for (int i = -60; i <= 60; ++i)
    az.push_back(static_cast<double>(i) * std::numbers::pi / 180.0);
  auto resp = angle_response(w, 0, az);
  size_t argmax = 0;
  for (size_t i = 1; i < resp.size(); ++i)
    if (resp[i] > resp[argmax]) argmax = i;
  EXPECT_NEAR(az[argmax], look, 2.0 * std::numbers::pi / 180.0);
  // Peak response of a matched steering weight is J^2.
  EXPECT_NEAR(resp[argmax], static_cast<double>(j * j),
              0.05 * static_cast<double>(j * j));
}

TEST(AngleResponse, InvalidBeamThrows) {
  linalg::MatrixCF w(4, 2);
  std::vector<double> az = {0.0};
  EXPECT_THROW(angle_response(w, 2, az), Error);
}

TEST(AngleDopplerResponse, StaggeredPairPeaksAtConstraintPoint) {
  // A weight pair built directly from steering + stagger phase must peak
  // at its design (azimuth, Doppler).
  StapParams p = StapParams::small_test();
  const index_t j = p.num_channels;
  const double f0 = 0.25;
  const double az0 = 0.2;
  const double phi = -2.0 * std::numbers::pi * f0 *
                     static_cast<double>(p.stagger);
  linalg::MatrixCF w(2 * j, 1);
  const auto a = synth::spatial_steering(j, az0);
  for (index_t c = 0; c < j; ++c) {
    w(c, 0) = a[static_cast<size_t>(c)];
    // Second half carries conj(stagger phase) so responses add coherently.
    w(j + c, 0) = a[static_cast<size_t>(c)] *
                  cfloat(static_cast<float>(std::cos(phi)),
                         static_cast<float>(-std::sin(phi)));
  }
  std::vector<double> azs, fs;
  for (int i = -8; i <= 8; ++i) azs.push_back(0.05 * i);
  for (int i = -8; i <= 8; ++i) fs.push_back(0.0625 * i);
  auto resp = angle_doppler_response(w, 0, p, azs, fs);
  double max_resp = 0.0;
  for (double r : resp) max_resp = std::max(max_resp, r);
  // The two-tap stagger pair is periodic in Doppler (period 1/stagger), so
  // the peak is not unique; assert the design point attains it.
  const auto design = angle_doppler_response(
      w, 0, p, std::vector<double>{az0}, std::vector<double>{f0});
  EXPECT_GT(design[0], 0.98 * max_resp);
  // And a point far from the design ridge is well below the peak.
  const auto off = angle_doppler_response(
      w, 0, p, std::vector<double>{-az0}, std::vector<double>{f0});
  EXPECT_LT(off[0], 0.2 * max_resp);
}

TEST(SampleCovariance, MatchesKnownStructure) {
  // Snapshots x = s * v + n: covariance approaches P v v^H + sigma^2 I.
  const index_t j = 6;
  const double power = 9.0;
  Rng rng(3);
  auto v = synth::spatial_steering(j, 0.4);
  linalg::MatrixCF x(4000, j);
  for (index_t r = 0; r < x.rows(); ++r) {
    const cdouble s = rng.cnormal() * 3.0;
    for (index_t c = 0; c < j; ++c) {
      const cdouble n = rng.cnormal() * 0.1;
      const auto& vc = v[static_cast<size_t>(c)];
      const cdouble val = s * cdouble(vc.real(), vc.imag()) + n;
      x(r, c) = cfloat(static_cast<float>(val.real()),
                       static_cast<float>(val.imag()));
    }
  }
  auto r = sample_covariance(x, 0.0f);
  // Hermitian.
  for (index_t i = 0; i < j; ++i)
    for (index_t c = 0; c < j; ++c)
      EXPECT_NEAR(std::abs(r(i, c) - std::conj(r(c, i))), 0.0, 1e-3);
  // R_{01} ~ power * v0 conj(v1).
  const cfloat expected =
      static_cast<float>(power) * v[0] * std::conj(v[1]);
  EXPECT_NEAR(std::abs(r(0, 1) - expected), 0.0, 0.06 * power);
  // Diagonal ~ power + noise.
  EXPECT_NEAR(r(0, 0).real(), power + 0.01, 0.06 * power);
}

TEST(Sinr, MatchedWeightInWhiteNoiseEqualsArrayGain) {
  const index_t j = 8;
  auto v = synth::spatial_steering(j, 0.0);
  auto w = column_from(v);
  auto rin = linalg::MatrixCF::identity(j, cfloat(1.0f, 0.0f));
  // |w^H v|^2 / (w^H I w) = J^2 / J = J.
  EXPECT_NEAR(sinr(w, 0, rin, v), static_cast<double>(j), 1e-4);
}

TEST(Sinr, OptimalBeamformerBeatsQuiescentAgainstInterference) {
  // Against R = I + P u u^H, the MVDR weight w = R^{-1} v achieves the
  // maximum SINR; check our sinr() ranks it above quiescent and that the
  // improvement_factor agrees with the two sinr() calls.
  const index_t j = 8;
  const double p_int = 100.0;
  auto v = synth::spatial_steering(j, 0.0);
  // 0.2 rad puts the interferer on a sidelobe peak of the quiescent
  // pattern (|v^H u|^2 ~ 4), so adaptation has something to gain.
  auto u = synth::spatial_steering(j, 0.2);
  linalg::MatrixCF rin = linalg::MatrixCF::identity(j, cfloat(1.0f, 0.0f));
  for (index_t a = 0; a < j; ++a)
    for (index_t b = 0; b < j; ++b)
      rin(a, b) += static_cast<float>(p_int) * u[static_cast<size_t>(a)] *
                   std::conj(u[static_cast<size_t>(b)]);

  // w = R^{-1} v via least squares on the Hermitian system.
  linalg::MatrixCF rhs = column_from(v);
  auto w = linalg::least_squares(rin, rhs);

  const double s_opt = sinr(w, 0, rin, v);
  auto wq = column_from(v);
  const double s_q = sinr(wq, 0, rin, v);
  EXPECT_GT(s_opt, 3.0 * s_q);
  EXPECT_NEAR(improvement_factor(w, 0, rin, std::span<const cfloat>(v)),
              s_opt / s_q, 1e-6 * s_opt / s_q);
}

TEST(Sinr, DimensionMismatchThrows) {
  linalg::MatrixCF w(4, 1);
  auto rin = linalg::MatrixCF::identity(3, cfloat(1.0f, 0.0f));
  auto v = synth::spatial_steering(4, 0.0);
  EXPECT_THROW(sinr(w, 0, rin, v), Error);
}

TEST(NullDepth, TrainedWeightsNullTheInterfererPreservingMainbeam) {
  // End-to-end Appendix-A property on real EasyWeightComputer output.
  StapParams p;
  p.num_channels = 16;
  p.num_beams = 1;
  p.beam_span_rad = 0.0;
  const index_t j = p.num_channels;
  const double int_az = 0.45;
  auto steering = synth::steering_matrix(j, 1, 0.0, 0.0);
  auto v_int = synth::spatial_steering(j, int_az);

  Rng rng(17);
  linalg::MatrixCF x(96, j);
  for (index_t r = 0; r < x.rows(); ++r) {
    const cdouble amp = rng.cnormal() * 31.6;
    for (index_t c = 0; c < j; ++c) {
      const cdouble n = rng.cnormal();
      const auto& vc = v_int[static_cast<size_t>(c)];
      const cdouble val = amp * cdouble(vc.real(), vc.imag()) + n;
      x(r, c) = cfloat(static_cast<float>(val.real()),
                       static_cast<float>(val.imag()));
    }
  }
  EasyWeightComputer comp(p, steering, {p.easy_bins()[0]});
  const auto quiescent = comp.compute();
  std::vector<linalg::MatrixCF> push;
  push.push_back(x);
  comp.push_training(std::move(push));
  const auto adapted = comp.compute();

  // Deep null toward the interferer.
  const double q_null = null_depth_db(quiescent.weights[0], 0, int_az, 0.03);
  const double a_null = null_depth_db(adapted.weights[0], 0, int_az, 0.03);
  EXPECT_LT(a_null, q_null - 15.0);

  // Main beam preserved: response at broadside within 3 dB of the
  // quiescent peak (both weight sets are unit-norm).
  std::vector<double> broadside = {0.0};
  const double q0 = angle_response(quiescent.weights[0], 0, broadside)[0];
  const double a0 = angle_response(adapted.weights[0], 0, broadside)[0];
  EXPECT_GT(10.0 * std::log10(a0 / q0), -3.0);

  // Positive SINR improvement against the estimated covariance.
  const auto rin = sample_covariance(x, 1e-3f);
  const auto v_look = synth::spatial_steering(j, 0.0);
  EXPECT_GT(improvement_factor(adapted.weights[0], 0, rin,
                               std::span<const cfloat>(v_look)),
            10.0);  // > 10 dB linear = 10x
}

TEST(NullDepth, WindowWithoutScanPointsThrows) {
  linalg::MatrixCF w(4, 1);
  w(0, 0) = cfloat(1, 0);
  EXPECT_THROW(null_depth_db(w, 0, 10.0, 0.001), Error);  // outside scan
}

}  // namespace
}  // namespace ppstap::stap
