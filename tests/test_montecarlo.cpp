// Tests for the Monte-Carlo detection study: curve sanity (monotonicity,
// asymptotes), false-alarm control, and configuration validation.
#include <gtest/gtest.h>

#include "stap/montecarlo.hpp"

namespace ppstap::stap {
namespace {

DetectionStudyConfig small_config() {
  DetectionStudyConfig cfg;
  cfg.params = StapParams::small_test();
  cfg.params.num_range = 48;
  cfg.params.num_channels = 6;
  cfg.params.num_pulses = 16;
  cfg.params.num_beams = 1;
  cfg.params.num_hard = 6;
  cfg.params.stagger = 2;
  cfg.params.num_segments = 2;
  cfg.params.easy_samples_per_cpi = 12;
  cfg.params.hard_samples_per_segment = 12;
  cfg.params.beam_span_rad = 0.0;
  cfg.params.cfar_pfa = 1e-4;
  cfg.params.validate();
  cfg.scene.num_range = cfg.params.num_range;
  cfg.scene.num_channels = cfg.params.num_channels;
  cfg.scene.num_pulses = cfg.params.num_pulses;
  cfg.scene.clutter.num_patches = 6;
  cfg.scene.clutter.cnr_db = 35.0;
  cfg.scene.chirp_length = 6;
  cfg.target_range = 30;
  cfg.target_bin = 5;  // easy region
  cfg.trials = 8;
  cfg.train_cpis = 2;
  return cfg;
}

TEST(DetectionCurve, StrongTargetsAlwaysDetected) {
  auto cfg = small_config();
  const double snrs[] = {15.0};
  const auto curve = detection_curve(cfg, snrs);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].pd, 1.0);
  EXPECT_GT(curve[0].mean_margin, 1.0);
}

TEST(DetectionCurve, BuriedTargetsAreNot) {
  auto cfg = small_config();
  const double snrs[] = {-25.0};
  const auto curve = detection_curve(cfg, snrs);
  EXPECT_LT(curve[0].pd, 0.3);
}

TEST(DetectionCurve, MonotoneInSnr) {
  auto cfg = small_config();
  cfg.trials = 10;
  const double snrs[] = {-20.0, 0.0, 15.0};
  const auto curve = detection_curve(cfg, snrs);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_LE(curve[0].pd, curve[1].pd + 0.15);
  EXPECT_LE(curve[1].pd, curve[2].pd + 0.15);
  EXPECT_LT(curve[0].pd, curve[2].pd);
}

TEST(FalseAlarms, AtOrNearDesignPfa) {
  auto cfg = small_config();
  cfg.trials = 6;
  const double pfa = measured_false_alarm_rate(cfg);
  // Should not exceed the design PFA by an order of magnitude (clutter
  // residue) nor be negative; zero is acceptable at these sample sizes.
  EXPECT_GE(pfa, 0.0);
  EXPECT_LT(pfa, 10.0 * cfg.params.cfar_pfa + 1e-3);
}

TEST(Config, RejectsBadTargets) {
  auto cfg = small_config();
  cfg.target_range = cfg.params.num_range;
  const double snrs[] = {0.0};
  EXPECT_THROW(detection_curve(cfg, snrs), Error);
  cfg = small_config();
  cfg.target_bin = cfg.params.num_pulses;
  EXPECT_THROW(detection_curve(cfg, snrs), Error);
  cfg = small_config();
  cfg.scene.num_range += 1;
  EXPECT_THROW(measured_false_alarm_rate(cfg), Error);
  cfg = small_config();
  cfg.trials = 0;
  EXPECT_THROW(measured_false_alarm_rate(cfg), Error);
}

}  // namespace
}  // namespace ppstap::stap
