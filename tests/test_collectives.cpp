// Tests for the collective operations layered on the message-passing
// runtime: broadcast, gather, all_gather, personalized all-to-all, and
// sum reduction — including ragged payloads and tag isolation.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/collectives.hpp"

namespace ppstap::comm {
namespace {

TEST(Broadcast, RootValueReachesEveryRank) {
  World world(5);
  world.run([](Comm& c) {
    std::vector<int> data;
    if (c.rank() == 2) data = {10, 20, 30};
    broadcast(c, 2, data, 100);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_EQ(data[1], 20);
  });
}

TEST(Broadcast, InvalidRootThrows) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& c) {
                 std::vector<int> d;
                 broadcast(c, 5, d, 1);
               }),
               Error);
}

TEST(Gather, RootCollectsPerRankPayloads) {
  World world(4);
  world.run([](Comm& c) {
    // Ragged payloads: rank r contributes r+1 values of value r.
    std::vector<int> mine(static_cast<size_t>(c.rank() + 1), c.rank());
    auto all = gather(c, 0, std::span<const int>(mine), 200);
    if (c.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        ASSERT_EQ(all[static_cast<size_t>(r)].size(),
                  static_cast<size_t>(r + 1));
        EXPECT_EQ(all[static_cast<size_t>(r)][0], r);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(AllGather, EveryRankSeesEverything) {
  World world(4);
  world.run([](Comm& c) {
    std::vector<int> mine = {c.rank() * 11};
    auto all = all_gather(c, std::span<const int>(mine), 300);
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) {
      ASSERT_EQ(all[static_cast<size_t>(r)].size(), 1u);
      EXPECT_EQ(all[static_cast<size_t>(r)][0], r * 11);
    }
  });
}

TEST(AllToAll, PersonalizedExchange) {
  const int n = 5;
  World world(n);
  world.run([n](Comm& c) {
    std::vector<std::vector<int>> send(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r)
      send[static_cast<size_t>(r)] = {c.rank() * 100 + r};
    auto got = all_to_all(c, send, 400);
    ASSERT_EQ(got.size(), static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(got[static_cast<size_t>(r)].size(), 1u);
      EXPECT_EQ(got[static_cast<size_t>(r)][0], r * 100 + c.rank());
    }
  });
}

TEST(AllToAll, WrongBufferCountThrows) {
  World world(3);
  EXPECT_THROW(world.run([](Comm& c) {
                 std::vector<std::vector<int>> send(2);
                 (void)all_to_all(c, send, 1);
               }),
               Error);
}

TEST(AllReduceSum, ElementwiseTotals) {
  const int n = 6;
  World world(n);
  world.run([n](Comm& c) {
    std::vector<double> mine = {1.0, static_cast<double>(c.rank())};
    auto total = all_reduce_sum(c, std::span<const double>(mine), 500);
    ASSERT_EQ(total.size(), 2u);
    EXPECT_DOUBLE_EQ(total[0], static_cast<double>(n));
    EXPECT_DOUBLE_EQ(total[1], n * (n - 1) / 2.0);
  });
}

TEST(Collectives, DistinctTagsDoNotInterfere) {
  // Two interleaved broadcasts on different tags, issued in a different
  // order on different ranks, must resolve by tag.
  World world(3);
  world.run([](Comm& c) {
    std::vector<int> a, b;
    if (c.rank() == 0) {
      a = {1};
      b = {2};
    }
    if (c.rank() % 2 == 0) {
      broadcast(c, 0, a, 600);
      broadcast(c, 0, b, 700);
    } else {
      broadcast(c, 0, b, 700);
      broadcast(c, 0, a, 600);
    }
    EXPECT_EQ(a[0], 1);
    EXPECT_EQ(b[0], 2);
  });
}

TEST(Collectives, PipelinePatternAllToAllOnCubes) {
  // A miniature of the pipeline's K -> N repartition expressed with the
  // generic collective: 3 producers each own 4 rows of 6 values and ship
  // 2 rows to each of 2 consumers... sizes chosen to be ragged-free.
  World world(3);
  world.run([](Comm& c) {
    std::vector<std::vector<float>> send(3);
    for (int r = 0; r < 3; ++r)
      send[static_cast<size_t>(r)] = {
          static_cast<float>(c.rank() * 10 + r),
          static_cast<float>(c.rank() * 10 + r) + 0.5f};
    auto got = all_to_all(c, send, 800);
    float sum = 0;
    for (const auto& v : got)
      sum = std::accumulate(v.begin(), v.end(), sum);
    // Each sender s contributes (10s + me) + (10s + me + 0.5); summed over
    // s in {0,1,2}: 20*(0+1+2) ... = 60 + 6*me + 1.5.
    const float expect = 60.0f + 6.0f * static_cast<float>(c.rank()) + 1.5f;
    EXPECT_FLOAT_EQ(sum, expect);
  });
}

}  // namespace
}  // namespace ppstap::comm
