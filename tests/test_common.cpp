// Tests for the common substrate: error handling, flop counting, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common/check.hpp"
#include "common/flops.hpp"
#include "common/rng.hpp"

namespace ppstap {
namespace {

TEST(Check, RequireThrowsWithContext) {
  try {
    PPSTAP_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Check, PassingRequireDoesNotThrow) {
  EXPECT_NO_THROW(PPSTAP_REQUIRE(true, "fine"));
  EXPECT_NO_THROW(PPSTAP_CHECK(2 + 2 == 4, "fine"));
}

TEST(Flops, CountsOnlyInsideScope) {
  count_flops(100);  // no active scope: ignored
  FlopScope scope;
  EXPECT_EQ(scope.count(), 0u);
  count_flops(42);
  EXPECT_EQ(scope.count(), 42u);
  count_flops(8);
  EXPECT_EQ(scope.count(), 50u);
}

TEST(Flops, NestedScopesSeeInnerCounts) {
  FlopScope outer;
  count_flops(10);
  {
    FlopScope inner;
    count_flops(5);
    EXPECT_EQ(inner.count(), 5u);
  }
  count_flops(1);
  EXPECT_EQ(outer.count(), 16u);
}

TEST(Flops, ThreadLocalIsolation) {
  FlopScope scope;
  std::thread t([] {
    // No scope on this thread: counting is off and must not leak across.
    count_flops(1000);
  });
  t.join();
  count_flops(3);
  EXPECT_EQ(scope.count(), 3u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(99);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ComplexNormalUnitPower) {
  Rng r(5);
  const int n = 100000;
  double power = 0;
  for (int i = 0; i < n; ++i) {
    const cdouble z = r.cnormal();
    power += std::norm(z);
  }
  EXPECT_NEAR(power / n, 1.0, 0.03);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng base(42);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = Rng(42).fork(1);
  EXPECT_EQ(f1.next_u64(), f1_again.next_u64());
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

}  // namespace
}  // namespace ppstap
