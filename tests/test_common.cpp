// Tests for the common substrate: error handling, flop counting, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/check.hpp"
#include "common/checksum.hpp"
#include "common/env.hpp"
#include "common/flops.hpp"
#include "common/rng.hpp"

namespace ppstap {
namespace {

TEST(Check, RequireThrowsWithContext) {
  try {
    PPSTAP_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Check, PassingRequireDoesNotThrow) {
  EXPECT_NO_THROW(PPSTAP_REQUIRE(true, "fine"));
  EXPECT_NO_THROW(PPSTAP_CHECK(2 + 2 == 4, "fine"));
}

TEST(Flops, CountsOnlyInsideScope) {
  count_flops(100);  // no active scope: ignored
  FlopScope scope;
  EXPECT_EQ(scope.count(), 0u);
  count_flops(42);
  EXPECT_EQ(scope.count(), 42u);
  count_flops(8);
  EXPECT_EQ(scope.count(), 50u);
}

TEST(Flops, NestedScopesSeeInnerCounts) {
  FlopScope outer;
  count_flops(10);
  {
    FlopScope inner;
    count_flops(5);
    EXPECT_EQ(inner.count(), 5u);
  }
  count_flops(1);
  EXPECT_EQ(outer.count(), 16u);
}

TEST(Flops, ThreadLocalIsolation) {
  FlopScope scope;
  std::thread t([] {
    // No scope on this thread: counting is off and must not leak across.
    count_flops(1000);
  });
  t.join();
  count_flops(3);
  EXPECT_EQ(scope.count(), 3u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(99);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ComplexNormalUnitPower) {
  Rng r(5);
  const int n = 100000;
  double power = 0;
  for (int i = 0; i < n; ++i) {
    const cdouble z = r.cnormal();
    power += std::norm(z);
  }
  EXPECT_NEAR(power / n, 1.0, 0.03);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng base(42);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = Rng(42).fork(1);
  EXPECT_EQ(f1.next_u64(), f1_again.next_u64());
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

// --- hardened environment parsing ------------------------------------------

class EnvParse : public ::testing::Test {
 protected:
  static constexpr const char* kVar = "PPSTAP_TEST_ENV_PARSE";
  void TearDown() override { unsetenv(kVar); }
  void set(const char* value) { setenv(kVar, value, 1); }
};

TEST_F(EnvParse, UnsetAndEmptyAreNotConfigured) {
  unsetenv(kVar);
  EXPECT_FALSE(parse_env_double(kVar).has_value());
  EXPECT_FALSE(parse_env_int(kVar).has_value());
  EXPECT_FALSE(parse_env_flag(kVar).has_value());
  EXPECT_FALSE(parse_env_choice(kVar, {"a", "b"}).has_value());
  set("");
  EXPECT_FALSE(parse_env_double(kVar).has_value());
  EXPECT_FALSE(parse_env_int(kVar).has_value());
  EXPECT_FALSE(parse_env_flag(kVar).has_value());
  EXPECT_FALSE(parse_env_choice(kVar, {"a", "b"}).has_value());
}

TEST_F(EnvParse, ParsesValidNumbers) {
  set("2.5");
  EXPECT_DOUBLE_EQ(parse_env_double(kVar).value(), 2.5);
  set("-3");
  EXPECT_EQ(parse_env_int(kVar).value(), -3);
  set("42");
  EXPECT_EQ(parse_env_int(kVar, 0, 100).value(), 42);
}

TEST_F(EnvParse, GarbageThrowsNamingTheVariable) {
  for (const char* bad : {"abc", "1.5x", "12 monkeys", "--3", "0x10"}) {
    set(bad);
    try {
      parse_env_int(kVar);
      FAIL() << "expected Error for int input '" << bad << "'";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(kVar), std::string::npos) << bad;
    }
  }
  set("not-a-number");
  EXPECT_THROW(parse_env_double(kVar).value(), Error);
  set("nan");
  EXPECT_THROW(parse_env_double(kVar).value(), Error);
}

TEST_F(EnvParse, OutOfRangeThrowsInsteadOfClamping) {
  set("-1");
  EXPECT_THROW(parse_env_int(kVar, 0, 100), Error);
  EXPECT_THROW(parse_env_double(kVar, 0.0, 1.0), Error);
  set("101");
  EXPECT_THROW(parse_env_int(kVar, 0, 100), Error);
  set("1e300");
  EXPECT_THROW(parse_env_double(kVar, 0.0, 1e6), Error);
}

TEST_F(EnvParse, FlagAcceptsCommonSpellings) {
  for (const char* yes : {"1", "true", "TRUE", "yes", "on", "On"}) {
    set(yes);
    EXPECT_TRUE(parse_env_flag(kVar).value()) << yes;
  }
  for (const char* no : {"0", "false", "no", "off", "OFF"}) {
    set(no);
    EXPECT_FALSE(parse_env_flag(kVar).value()) << no;
  }
  set("maybe");
  EXPECT_THROW(parse_env_flag(kVar), Error);
  set("2");
  EXPECT_THROW(parse_env_flag(kVar), Error);
}

TEST(Checksum, DeterministicAndSensitiveToEveryBit) {
  std::vector<float> data(37);
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = 0.5f * static_cast<float>(i) - 3.0f;
  const std::span<const float> view(data);
  const std::uint64_t base = checksum_of(view);
  EXPECT_EQ(checksum_of(view), base);  // pure function of the bytes

  // Any single-bit flip anywhere in the payload changes the checksum —
  // the property both the transport and the ABFT digest rely on.
  auto bytes = std::as_writable_bytes(std::span<float>(data));
  for (size_t byte = 0; byte < bytes.size(); byte += 13)
    for (int bit = 0; bit < 8; ++bit) {
      bytes[byte] ^= std::byte{1} << bit;
      EXPECT_NE(checksum_of(view), base) << byte << ":" << bit;
      bytes[byte] ^= std::byte{1} << bit;
    }
  EXPECT_EQ(checksum_of(view), base);
}

TEST(Checksum, LengthIsPartOfTheDigest) {
  const std::vector<float> a(8, 0.0f);
  const std::vector<float> b(9, 0.0f);  // same prefix bytes, longer
  EXPECT_NE(checksum_of(std::span<const float>(a)),
            checksum_of(std::span<const float>(b)));
  EXPECT_EQ(checksum_bytes({}), checksum_bytes({}));
}

TEST(Checksum, TypedViewMatchesRawBytes) {
  const std::vector<cfloat> z{{1.0f, -2.0f}, {0.25f, 4.0f}};
  const std::span<const cfloat> view(z);
  EXPECT_EQ(checksum_of(view), checksum_bytes(std::as_bytes(view)));
}

TEST_F(EnvParse, ChoiceMatchesCaseInsensitiveAndListsOptions) {
  set("REJECT");
  EXPECT_EQ(parse_env_choice(kVar, {"throttle", "reject"}).value(), 1u);
  set("throttle");
  EXPECT_EQ(parse_env_choice(kVar, {"throttle", "reject"}).value(), 0u);
  set("drop");
  try {
    parse_env_choice(kVar, {"throttle", "reject"});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("throttle"), std::string::npos);
    EXPECT_NE(what.find("reject"), std::string::npos);
  }
}

TEST(Backoff, RetryDelayJitterStaysInBounds) {
  // The jitter factor is specified as [0.75, 1.25) around the exponential
  // base delay; a value outside that window would either re-correlate
  // lock-step retries (too tight) or blow the retry budget (too loose).
  constexpr double kSeed = 50e-6;
  constexpr double kCap = 2e-3;
  for (std::uint64_t salt : {0ull, 1ull, 42ull, 0xdeadbeefull, ~0ull})
    for (int attempt = 1; attempt <= 10; ++attempt) {
      const double base =
          std::min(kSeed * std::pow(2.0, attempt - 1), kCap);
      const double d = Backoff::retry_delay(attempt, salt, kSeed, kCap);
      EXPECT_GE(d, 0.75 * base) << "salt " << salt << " attempt " << attempt;
      EXPECT_LT(d, 1.25 * base) << "salt " << salt << " attempt " << attempt;
    }
}

TEST(Backoff, RetryDelayIsDeterministicPerSaltAndAttempt) {
  for (std::uint64_t salt : {3ull, 99ull})
    for (int attempt = 1; attempt <= 6; ++attempt)
      EXPECT_DOUBLE_EQ(Backoff::retry_delay(attempt, salt),
                       Backoff::retry_delay(attempt, salt));
  // Different salts decorrelate: at least one attempt must differ.
  bool any_differ = false;
  for (int attempt = 1; attempt <= 6; ++attempt)
    any_differ |= Backoff::retry_delay(attempt, 3) !=
                  Backoff::retry_delay(attempt, 99);
  EXPECT_TRUE(any_differ);
}

TEST(Backoff, RetryDelayCapSaturates) {
  // Far past the doubling range the delay pins to the cap (jitter aside),
  // and ever-larger attempts cannot grow it further.
  constexpr double kCap = 2e-3;
  for (int attempt : {20, 100, 1000}) {
    const double d = Backoff::retry_delay(attempt, 7, 50e-6, kCap);
    EXPECT_GE(d, 0.75 * kCap);
    EXPECT_LT(d, 1.25 * kCap);
  }
  // Attempts below 1 clamp to the first attempt's delay.
  EXPECT_DOUBLE_EQ(Backoff::retry_delay(0, 7), Backoff::retry_delay(1, 7));
  EXPECT_DOUBLE_EQ(Backoff::retry_delay(-5, 7), Backoff::retry_delay(1, 7));
}

TEST(Backoff, LadderSpinsThenYieldsThenSleepsToLimit) {
  Backoff bo(/*cap_seconds=*/1e-3, /*max_stretch=*/4.0);
  // Spin + yield phases advertise a zero timeout (poll immediately).
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(bo.next_timeout(), 0.0);
    bo.idle();
  }
  // Sleep phase: budget grows monotonically and saturates at stretch*cap.
  double last = 0.0;
  for (int i = 0; i < 16; ++i) {
    const double t = bo.next_timeout();
    EXPECT_GE(t, last);
    EXPECT_LE(t, 4e-3);
    last = t;
    bo.idle();
  }
  EXPECT_DOUBLE_EQ(bo.next_timeout(), 4e-3);
  // reset() drops back to the responsive end; wakeups keep accumulating.
  bo.reset();
  EXPECT_EQ(bo.next_timeout(), 0.0);
  EXPECT_EQ(bo.wakeups(), 48u);
}

}  // namespace
}  // namespace ppstap
