// End-to-end fault-tolerance tests for the pipelined STAP runtime: a
// killed weight rank fails over to the spare with bit-exact detections, an
// injected in-flight delay sheds exactly the CPI it stalls, and a
// corrupted frame is repaired by retransmission — all with deterministic,
// seeded fault plans (see comm/fault.hpp for the replay guarantee).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "comm/fault.hpp"
#include "dsp/waveform.hpp"
#include "common/timer.hpp"
#include "core/assignment.hpp"
#include "core/pipeline.hpp"
#include "stap/sequential.hpp"
#include "synth/steering.hpp"

namespace ppstap::core {
namespace {

using comm::FaultPlan;
using stap::StapParams;
using stap::Task;
using synth::ScenarioGenerator;
using synth::ScenarioParams;
using synth::Target;

// Pipeline tag layout (pipeline.cpp): tag = cpi * kTagStride + edge.
constexpr int kTagStride = 16;
constexpr int kEdgeDopToEasyWt = 0;
constexpr int kEdgeDopToHardWt = 1;
constexpr int kEdgeDopToEasyBf = 2;
constexpr int kEdgeEasyBfToPc = 6;

int tag_for(index_t cpi, int edge) {
  return static_cast<int>(cpi) * kTagStride + edge;
}

struct Fixture {
  StapParams p;
  ScenarioParams sp;

  static Fixture make() {
    Fixture f;
    f.p = StapParams::small_test();
    f.p.num_range = 48;
    f.p.num_channels = 4;
    f.p.num_pulses = 16;
    f.p.num_beams = 2;
    f.p.num_hard = 6;
    f.p.stagger = 2;
    f.p.num_segments = 2;
    f.p.easy_samples_per_cpi = 12;
    f.p.hard_samples_per_segment = 10;
    f.p.cfar_ref = 4;
    f.p.cfar_guard = 1;
    f.p.validate();

    f.sp.num_range = f.p.num_range;
    f.sp.num_channels = f.p.num_channels;
    f.sp.num_pulses = f.p.num_pulses;
    f.sp.clutter.num_patches = 6;
    f.sp.clutter.cnr_db = 35.0;
    f.sp.chirp_length = 6;
    f.sp.targets.push_back(Target{21, 8.0 / 16.0, 0.05, 15.0});
    return f;
  }

  linalg::MatrixCF steering() const {
    return synth::steering_matrix(p.num_channels, p.num_beams,
                                  p.beam_center_rad, p.beam_span_rad);
  }
};

std::vector<std::vector<stap::Detection>> sequential_reference(
    const Fixture& f, index_t n_cpis) {
  ScenarioGenerator gen(f.sp);
  stap::SequentialStap seq(f.p, f.steering(), gen.replica());
  std::vector<std::vector<stap::Detection>> ref;
  for (index_t cpi = 0; cpi < n_cpis; ++cpi) {
    auto dets = seq.process(gen.generate(cpi)).detections;
    std::sort(dets.begin(), dets.end(), [](const auto& x, const auto& y) {
      return std::tie(x.doppler_bin, x.beam, x.range) <
             std::tie(y.doppler_bin, y.beam, y.range);
    });
    ref.push_back(std::move(dets));
  }
  return ref;
}

void expect_cpi_matches(const std::vector<stap::Detection>& got,
                        const std::vector<stap::Detection>& ref,
                        index_t cpi) {
  ASSERT_EQ(got.size(), ref.size()) << "cpi=" << cpi;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doppler_bin, ref[i].doppler_bin) << "cpi=" << cpi;
    EXPECT_EQ(got[i].beam, ref[i].beam) << "cpi=" << cpi;
    EXPECT_EQ(got[i].range, ref[i].range) << "cpi=" << cpi;
    EXPECT_NEAR(got[i].power, ref[i].power,
                2e-2f * std::abs(ref[i].power) + 1e-5f)
        << "cpi=" << cpi;
  }
}

TEST(FaultTolerance, FaultFreeRunHasCleanLedger) {
  auto f = Fixture::make();
  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, NodeAssignment{}, f.steering(),
                           {gen.replica().begin(), gen.replica().end()});
  auto res = par.run(gen, 4, /*warmup=*/1, /*cooldown=*/1);
  EXPECT_TRUE(res.faults.clean());
}

// The acceptance scenario: kill the hard-weight rank mid-stream. The spare
// must restore the checkpointed adaptive state, take over the intact
// mailbox, and resume at exactly the CPI the dead rank would have
// processed next — detections match the sequential reference exactly and
// the ledger records exactly one failover with a measured stall.
TEST(FaultTolerance, HardWeightKillFailsOverWithExactDetections) {
  auto f = Fixture::make();
  const index_t n_cpis = 6;
  const index_t kill_cpi = 2;
  const auto ref = sequential_reference(f, n_cpis);

  NodeAssignment a;  // all ones: hard weight task is global rank 2
  const int victim = a.first_rank(Task::kHardWeight);

  FaultPlan plan;
  plan.add(FaultPlan::kill_on_recv(victim,
                                   tag_for(kill_cpi, kEdgeDopToHardWt)));

  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, a, f.steering(),
                           {gen.replica().begin(), gen.replica().end()});
  FaultToleranceConfig ft;
  ft.spare_rank = true;
  par.set_fault_tolerance(ft);
  par.set_fault_plan(&plan);
  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  // Every CPI completed and matches the fault-free sequential reference.
  ASSERT_EQ(res.detections.size(), static_cast<size_t>(n_cpis));
  for (index_t cpi = 0; cpi < n_cpis; ++cpi)
    expect_cpi_matches(res.detections[static_cast<size_t>(cpi)],
                       ref[static_cast<size_t>(cpi)], cpi);

  EXPECT_TRUE(res.faults.shed_cpis.empty());
  EXPECT_EQ(res.faults.kills, 1u);
  ASSERT_EQ(res.faults.failovers.size(), 1u);
  const auto& fo = res.faults.failovers[0];
  EXPECT_EQ(fo.rank, victim);
  EXPECT_EQ(fo.task, static_cast<int>(Task::kHardWeight));
  EXPECT_EQ(fo.resume_cpi, kill_cpi);
  EXPECT_GT(fo.recovery_stall_seconds, 0.0);
}

TEST(FaultTolerance, EasyWeightKillFailsOverWithExactDetections) {
  auto f = Fixture::make();
  const index_t n_cpis = 6;
  const index_t kill_cpi = 3;
  const auto ref = sequential_reference(f, n_cpis);

  NodeAssignment a;
  const int victim = a.first_rank(Task::kEasyWeight);

  FaultPlan plan;
  plan.add(FaultPlan::kill_on_recv(victim,
                                   tag_for(kill_cpi, kEdgeDopToEasyWt)));

  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, a, f.steering(),
                           {gen.replica().begin(), gen.replica().end()});
  FaultToleranceConfig ft;
  ft.spare_rank = true;
  par.set_fault_tolerance(ft);
  par.set_fault_plan(&plan);
  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  for (index_t cpi = 0; cpi < n_cpis; ++cpi)
    expect_cpi_matches(res.detections[static_cast<size_t>(cpi)],
                       ref[static_cast<size_t>(cpi)], cpi);
  ASSERT_EQ(res.faults.failovers.size(), 1u);
  EXPECT_EQ(res.faults.failovers[0].rank, victim);
  EXPECT_EQ(res.faults.failovers[0].task,
            static_cast<int>(Task::kEasyWeight));
  EXPECT_EQ(res.faults.failovers[0].resume_cpi, kill_cpi);
}

// Deadline shedding under an injected in-flight delay: the stalled CPI is
// shed (empty detections, recorded in the ledger), every other CPI matches
// the sequential reference, and throughput stays within 20% of the
// fault-free baseline measured under the same build and load.
TEST(FaultTolerance, DeadlineSheddingUnderInjectedDelay) {
  auto f = Fixture::make();
  const index_t n_cpis = 50;
  const index_t shed_cpi = n_cpis / 2;
  const auto ref = sequential_reference(f, n_cpis);

  NodeAssignment a;
  ScenarioGenerator gen(f.sp);
  const std::vector<cfloat> replica{gen.replica().begin(),
                                    gen.replica().end()};

  // Calibrate the deadline from a fault-free baseline under the *same*
  // build and machine load (keeps the test robust under sanitizers): the
  // per-CPI budget is several pipeline periods, and the injected delay is
  // several budgets, so the stalled CPI must miss and no healthy CPI can.
  ParallelStapPipeline base(f.p, a, f.steering(), replica);
  const double w0 = WallTimer::now();
  auto res0 = base.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);
  const double baseline_wall = WallTimer::now() - w0;
  ASSERT_TRUE(res0.faults.clean());
  const double period = baseline_wall / static_cast<double>(n_cpis);
  const double deadline = std::max(5.0 * period, 0.05);

  FaultPlan plan;
  plan.add(FaultPlan::delay_message(
      a.first_rank(Task::kDopplerFilter),
      a.first_rank(Task::kEasyBeamform),
      tag_for(shed_cpi, kEdgeDopToEasyBf), 3.0 * deadline));

  ParallelStapPipeline par(f.p, a, f.steering(), replica);
  FaultToleranceConfig ft;
  ft.shedding = true;
  ft.cpi_deadline_seconds = deadline;
  par.set_fault_tolerance(ft);
  par.set_fault_plan(&plan);
  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  // Exactly the stalled CPI was shed, and it is fully accounted: no
  // detections, present in the ledger, delay counted.
  ASSERT_EQ(res.faults.shed_cpis, std::vector<index_t>{shed_cpi});
  EXPECT_TRUE(res.detections[static_cast<size_t>(shed_cpi)].empty());
  EXPECT_GE(res.faults.frames_delayed, 1u);
  EXPECT_TRUE(res.faults.failovers.empty());

  // Every non-shed CPI still matches the sequential reference exactly.
  for (index_t cpi = 0; cpi < n_cpis; ++cpi) {
    if (cpi == shed_cpi) continue;
    expect_cpi_matches(res.detections[static_cast<size_t>(cpi)],
                       ref[static_cast<size_t>(cpi)], cpi);
  }

  // Shedding bounded the damage: the stalled edge costs at most the
  // injected delay plus one detection deadline of wall time, amortized
  // over the stream. The bound is stated in those absolute terms — a
  // fixed throughput fraction would silently tighten whenever the
  // kernels get faster, because the stall is wall time, not work.
  ASSERT_GT(res0.throughput, 0.0);
  ASSERT_GT(res.throughput, 0.0);
  const double stall_share = baseline_wall / (baseline_wall + 4.0 * deadline);
  EXPECT_GT(res.throughput, 0.8 * stall_share * res0.throughput);
}

// A corrupted inter-task frame is repaired transparently by the
// retransmission path: results are exact and the ledger shows the repair.
TEST(FaultTolerance, CorruptedFrameIsRetransmittedExactly) {
  auto f = Fixture::make();
  const index_t n_cpis = 5;
  const auto ref = sequential_reference(f, n_cpis);

  NodeAssignment a;
  FaultPlan plan;
  plan.add(FaultPlan::corrupt_message(
      a.first_rank(Task::kDopplerFilter), a.first_rank(Task::kEasyBeamform),
      tag_for(2, kEdgeDopToEasyBf)));

  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, a, f.steering(),
                           {gen.replica().begin(), gen.replica().end()});
  par.set_fault_plan(&plan);
  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  for (index_t cpi = 0; cpi < n_cpis; ++cpi)
    expect_cpi_matches(res.detections[static_cast<size_t>(cpi)],
                       ref[static_cast<size_t>(cpi)], cpi);
  EXPECT_EQ(res.faults.frames_corrupted, 1u);
  EXPECT_GE(res.faults.retransmissions, 1u);
  EXPECT_TRUE(res.faults.shed_cpis.empty());
}

// Combined fault: the overload ladder held at stale-weight reuse while the
// hard-weight rank is killed mid-stream. The spare must restore the
// checkpointed recursive state and resume, the throttled admission keeps
// the stream lossless, and no CPI ever sees non-finite output.
TEST(FaultTolerance, StaleWeightReuseSurvivesSpareFailover) {
  auto f = Fixture::make();
  // The backlog only builds when the stages *behind* admission are the
  // bottleneck: widen the beam set (beamform + pulse compression scale
  // with M) and make CPI generation cheap, with the matched filter still
  // supplied to the pipeline.
  f.p.num_beams = 16;
  f.p.num_range = 96;
  f.p.validate();
  f.sp.num_range = f.p.num_range;
  f.sp.chirp_length = 0;
  const index_t n_cpis = 10;
  const index_t kill_cpi = 5;

  NodeAssignment a;
  const int victim = a.first_rank(Task::kHardWeight);
  FaultPlan plan;
  plan.add(FaultPlan::kill_on_recv(victim,
                                   tag_for(kill_cpi, kEdgeDopToHardWt)));

  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, a, f.steering(), dsp::lfm_chirp(8));
  FaultToleranceConfig ft;
  ft.spare_rank = true;
  par.set_fault_tolerance(ft);
  par.set_fault_plan(&plan);

  // A one-deep throttled queue pins the backlog at queue_high for every
  // admission after the pipeline fills, so the proportional ladder climbs
  // to the stale-weight rung and stays there (dwell blocks de-escalation).
  // Throttle mode means overload never drops a CPI — the two mechanisms
  // must compose losslessly.
  OverloadConfig ov;
  ov.enabled = true;
  ov.queue_low = 1;
  ov.queue_high = 2;
  ov.dwell = 100;
  ov.reject_when_full = false;
  par.set_overload(ov);

  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  // The failover happened and was ledgered.
  EXPECT_EQ(res.faults.kills, 1u);
  ASSERT_EQ(res.faults.failovers.size(), 1u);
  EXPECT_EQ(res.faults.failovers[0].rank, victim);
  EXPECT_EQ(res.faults.failovers[0].task,
            static_cast<int>(Task::kHardWeight));
  EXPECT_EQ(res.faults.failovers[0].resume_cpi, kill_cpi);

  // The ladder reached stale-weight reuse; throttling (not rejection)
  // absorbed the pressure, so nothing was shed.
  EXPECT_EQ(res.overload.max_level, 3);
  EXPECT_TRUE(res.overload.rejected_cpis.empty());
  EXPECT_GE(res.overload.throttle_waits, 1u);
  EXPECT_TRUE(res.faults.shed_cpis.empty());

  // Degraded output is still *valid* output: every CPI produced a (possibly
  // reduced) detection list with finite powers — stale weights and the
  // restored checkpoint never propagate NaN/Inf downstream.
  ASSERT_EQ(res.detections.size(), static_cast<size_t>(n_cpis));
  for (const auto& cpi_dets : res.detections)
    for (const auto& d : cpi_dets) {
      EXPECT_TRUE(std::isfinite(d.power));
      EXPECT_TRUE(std::isfinite(d.threshold));
    }
  EXPECT_TRUE(res.numerics.clean());
}

// PR 7 (satellite): the single spare covers exactly one weight-rank
// failure. A *second* weight-rank death after the spare is consumed used
// to stall receivers forever (the dead rank stayed marked recoverable, so
// peers waited for a takeover that could never come). Now the takeover
// downgrades every remaining weight rank to unrecoverable: the second
// death surfaces promptly, the CPIs that needed the dead rank's weights
// are shed, and the ledger records the uncovered failure.
TEST(FaultTolerance, SecondWeightDeathIsUncoveredNotWedged) {
  auto f = Fixture::make();
  const index_t n_cpis = 10;
  const auto ref = sequential_reference(f, n_cpis);

  NodeAssignment a;
  const int first_victim = a.first_rank(Task::kHardWeight);
  const int second_victim = a.first_rank(Task::kEasyWeight);

  FaultPlan plan;
  plan.add(FaultPlan::kill_on_recv(first_victim,
                                   tag_for(2, kEdgeDopToHardWt)));
  plan.add(FaultPlan::kill_on_recv(second_victim,
                                   tag_for(5, kEdgeDopToEasyWt)));

  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, a, f.steering(),
                           {gen.replica().begin(), gen.replica().end()});
  FaultToleranceConfig ft;
  ft.spare_rank = true;
  par.set_fault_tolerance(ft);
  par.set_fault_plan(&plan);
  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  // One covered failure, one uncovered: the single spare absorbed exactly
  // one of the two weight-rank deaths and the other found the pool empty.
  // Which rank dies first is a scheduling race (each kill triggers on its
  // victim's own recv), so the assertion is on the partition, not the
  // order: the covered and uncovered ranks must together be exactly the
  // two victims.
  EXPECT_EQ(res.faults.kills, 2u);
  ASSERT_EQ(res.faults.failovers.size(), 1u);
  ASSERT_EQ(res.faults.uncovered_ranks.size(), 1u);
  const int covered = res.faults.failovers[0].rank;
  const int uncovered = res.faults.uncovered_ranks[0];
  EXPECT_NE(covered, uncovered);
  EXPECT_TRUE(covered == first_victim || covered == second_victim);
  EXPECT_TRUE(uncovered == first_victim || uncovered == second_victim);
  EXPECT_FALSE(res.faults.clean());

  // Drained, not wedged: the stream produced a verdict for every CPI.
  // CPIs that needed the dead rank's send-ahead weights either ride the
  // stale-weight fallback or land in the shed ledger; which of the two
  // depends on how far ahead the weight stream had run when the kill
  // landed, so no particular shed set (or a nonempty one) is asserted.
  ASSERT_EQ(res.detections.size(), static_cast<size_t>(n_cpis));
  std::vector<bool> shed(static_cast<size_t>(n_cpis), false);
  for (index_t s : res.faults.shed_cpis) shed[static_cast<size_t>(s)] = true;
  for (index_t cpi = 0; cpi < 5 && cpi < n_cpis; ++cpi) {
    if (shed[static_cast<size_t>(cpi)]) continue;
    expect_cpi_matches(res.detections[static_cast<size_t>(cpi)],
                       ref[static_cast<size_t>(cpi)], cpi);
  }
}

// Combined fault: a frame whose every retransmitted copy is corrupted
// again. The receiver burns the whole retransmission budget, gives up on
// exactly that CPI (shed, not crash), and the rest of the stream is exact.
TEST(FaultTolerance, PersistentCorruptionExhaustsRetransmissionAndSheds) {
  auto f = Fixture::make();
  const index_t n_cpis = 5;
  const index_t bad_cpi = 2;
  const auto ref = sequential_reference(f, n_cpis);

  NodeAssignment a;
  FaultPlan plan;
  plan.add(FaultPlan::corrupt_message(
      a.first_rank(Task::kDopplerFilter), a.first_rank(Task::kEasyBeamform),
      tag_for(bad_cpi, kEdgeDopToEasyBf), /*max_applications=*/-1));

  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, a, f.steering(),
                           {gen.replica().begin(), gen.replica().end()});
  FaultToleranceConfig ft;
  // Shedding gives receives a deadline, which is what turns an exhausted
  // retransmission budget into a shed CPI instead of a hard failure. The
  // budget itself is generous: no healthy CPI can miss it.
  ft.shedding = true;
  ft.cpi_deadline_seconds = 10.0;
  par.set_fault_tolerance(ft);
  par.set_fault_plan(&plan);
  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  // The poisoned CPI was shed after the full retransmission budget
  // (1 original + 5 refetches, every copy corrupted again).
  ASSERT_EQ(res.faults.shed_cpis, std::vector<index_t>{bad_cpi});
  EXPECT_TRUE(res.detections[static_cast<size_t>(bad_cpi)].empty());
  EXPECT_GE(res.faults.retransmissions, 5u);
  EXPECT_GE(res.faults.frames_corrupted, 5u);
  EXPECT_TRUE(res.faults.failovers.empty());

  // Every other CPI is untouched — still exact against the sequential
  // reference.
  for (index_t cpi = 0; cpi < n_cpis; ++cpi) {
    if (cpi == bad_cpi) continue;
    expect_cpi_matches(res.detections[static_cast<size_t>(cpi)],
                       ref[static_cast<size_t>(cpi)], cpi);
  }
}

// PR 8 (tentpole): correlated failure of *both* weight ranks in the same
// CPI. With a two-member spare pool each corpse is claimed by its own
// spare, both roles restore from their per-CPI checkpoints, and the whole
// stream stays bit-exact — two concurrent recoveries compose.
TEST(FaultTolerance, CorrelatedWeightKillsBothHealWithPool) {
  auto f = Fixture::make();
  const index_t n_cpis = 8;
  const index_t kill_cpi = 3;
  const auto ref = sequential_reference(f, n_cpis);

  NodeAssignment a;
  const int easy_victim = a.first_rank(Task::kEasyWeight);
  const int hard_victim = a.first_rank(Task::kHardWeight);

  FaultPlan plan;
  plan.add(FaultPlan::kill_on_recv(easy_victim,
                                   tag_for(kill_cpi, kEdgeDopToEasyWt)));
  plan.add(FaultPlan::kill_on_recv(hard_victim,
                                   tag_for(kill_cpi, kEdgeDopToHardWt)));

  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, a, f.steering(),
                           {gen.replica().begin(), gen.replica().end()});
  FaultToleranceConfig ft;
  ft.spares = 2;
  par.set_fault_tolerance(ft);
  par.set_fault_plan(&plan);
  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  // Both deaths were covered — nothing shed, nothing uncovered.
  EXPECT_EQ(res.faults.kills, 2u);
  ASSERT_EQ(res.faults.failovers.size(), 2u);
  EXPECT_TRUE(res.faults.uncovered_ranks.empty());
  EXPECT_TRUE(res.faults.shed_cpis.empty());

  // The healing ledger records one spare takeover per corpse, each with a
  // positive MTTR, and no shrink or uncovered entries.
  ASSERT_EQ(res.healing.events.size(), 2u);
  EXPECT_EQ(res.healing.spare_takeovers(), 2);
  EXPECT_EQ(res.healing.shrinks(), 0);
  EXPECT_EQ(res.healing.uncovered(), 0);
  EXPECT_GT(res.healing.max_mttr_seconds(), 0.0);
  std::vector<int> healed;
  for (const auto& ev : res.healing.events) {
    healed.push_back(ev.rank);
    EXPECT_EQ(ev.resume_cpi, kill_cpi);
    EXPECT_GT(ev.mttr_seconds, 0.0);
  }
  std::sort(healed.begin(), healed.end());
  EXPECT_EQ(healed, (std::vector<int>{easy_victim, hard_victim}));

  // Checkpoint restore on both branches keeps the stream bit-exact.
  ASSERT_EQ(res.detections.size(), static_cast<size_t>(n_cpis));
  for (index_t cpi = 0; cpi < n_cpis; ++cpi)
    expect_cpi_matches(res.detections[static_cast<size_t>(cpi)],
                       ref[static_cast<size_t>(cpi)], cpi);
}

// PR 8 (tentpole): with no spare pool at all, a permanently dead pulse-
// compression rank heals by shrinking the group to the survivor through
// the elastic quiesce/re-plan/commit protocol. The stream drains (the
// in-flight CPIs that needed the corpse are shed and ledgered), the
// healing ledger records the shrink with its MTTR, and every CPI after
// the commit is exact on the reduced topology.
TEST(FaultTolerance, PermanentPcDeathShrinksToSurvivor) {
  auto f = Fixture::make();
  const index_t n_cpis = 14;
  const index_t kill_cpi = 3;
  const auto ref = sequential_reference(f, n_cpis);

  NodeAssignment a;
  a.nodes = {1, 1, 1, 1, 1, 2, 1};  // two PC ranks: shrinkable group
  const int victim = a.first_rank(Task::kPulseCompression);

  FaultPlan plan;
  plan.add(FaultPlan::kill_on_recv(victim,
                                   tag_for(kill_cpi, kEdgeEasyBfToPc)));

  ScenarioGenerator gen(f.sp);
  ParallelStapPipeline par(f.p, a, f.steering(),
                           {gen.replica().begin(), gen.replica().end()});
  FaultToleranceConfig ft;
  ft.heal_shrink = true;
  // Shedding (with a budget no healthy CPI can miss — these CPIs compute
  // in milliseconds) is what lets the CPIs stranded by the death drain as
  // ledgered sheds instead of errors; with heal_shrink armed the budget
  // also bounds how long a dead-peer edge is held open awaiting the
  // re-route, so it directly paces the recovery window.
  ft.shedding = true;
  ft.cpi_deadline_seconds = 1.5;
  par.set_fault_tolerance(ft);
  par.set_fault_plan(&plan);

  // Stranded ranks creep one CPI per deadline until the barrier; give the
  // vote collection enough budget to wait for the slowest of them.
  ElasticConfig el;
  el.stall_budget_seconds = 15.0;
  par.set_elastic(el);

  // Bounded-queue throttling (ladder off: no degradation, output stays
  // exact) keeps the source within a few CPIs of the sink, so the death
  // is detected while the shrink barrier still fits inside the stream —
  // a free-running source could drain the whole stream into mailboxes
  // before the coordinator ever sees the corpse.
  OverloadConfig ov;
  ov.enabled = true;
  ov.ladder = false;
  ov.queue_low = 2;
  ov.queue_high = 3;
  ov.reject_when_full = false;
  par.set_overload(ov);

  auto res = par.run(gen, n_cpis, /*warmup=*/1, /*cooldown=*/1);

  // The death healed by shrink: ledgered with a positive MTTR (death to
  // epoch commit), not as an uncovered failure, and the reduced capacity
  // was reported.
  EXPECT_EQ(res.faults.kills, 1u);
  EXPECT_TRUE(res.faults.uncovered_ranks.empty());
  EXPECT_TRUE(res.faults.failovers.empty());
  ASSERT_EQ(res.healing.events.size(), 1u);
  const auto& ev = res.healing.events[0];
  EXPECT_EQ(ev.mechanism, "shrink");
  EXPECT_EQ(ev.rank, victim);
  EXPECT_EQ(ev.task, static_cast<int>(Task::kPulseCompression));
  EXPECT_GT(ev.mttr_seconds, 0.0);
  EXPECT_GT(ev.resume_cpi, kill_cpi);
  EXPECT_EQ(res.overload.capacity_losses, 1u);
  EXPECT_TRUE(res.overload.rejected_cpis.empty());

  // Drained, not wedged: every CPI either completed or is in the shed
  // ledger; the killed CPI itself is necessarily among the sheds, and the
  // commit left at least one post-shrink CPI to prove the reduced
  // topology works.
  ASSERT_EQ(res.detections.size(), static_cast<size_t>(n_cpis));
  std::vector<bool> shed(static_cast<size_t>(n_cpis), false);
  for (index_t sidx : res.faults.shed_cpis)
    shed[static_cast<size_t>(sidx)] = true;
  EXPECT_TRUE(shed[static_cast<size_t>(kill_cpi)]);
  EXPECT_LT(ev.resume_cpi, n_cpis - 1);
  for (index_t cpi = 0; cpi < n_cpis; ++cpi) {
    if (shed[static_cast<size_t>(cpi)]) {
      EXPECT_TRUE(res.detections[static_cast<size_t>(cpi)].empty());
      continue;
    }
    expect_cpi_matches(res.detections[static_cast<size_t>(cpi)],
                       ref[static_cast<size_t>(cpi)], cpi);
  }
}

}  // namespace
}  // namespace ppstap::core
