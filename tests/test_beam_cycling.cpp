// Tests for transmit-beam position cycling (paper §3): the scene
// generator's transmit illumination, per-position weight training state,
// and parallel/sequential equivalence with revisited beam positions.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/pipeline.hpp"
#include "stap/sequential.hpp"
#include "synth/scenario.hpp"
#include "synth/steering.hpp"

namespace ppstap {
namespace {

using stap::StapParams;
using synth::ScenarioGenerator;
using synth::ScenarioParams;
using synth::Target;

TEST(TransmitGain, OmnidirectionalWhenDisabled) {
  ScenarioParams sp;
  sp.num_range = 8;
  sp.num_channels = 2;
  sp.num_pulses = 4;
  sp.clutter.num_patches = 0;
  sp.chirp_length = 0;
  ScenarioGenerator gen(sp);
  EXPECT_DOUBLE_EQ(gen.transmit_gain(0, 0.7), 1.0);
  EXPECT_DOUBLE_EQ(gen.transmit_gain(3, -1.2), 1.0);
}

TEST(TransmitGain, PeaksAtBeamCenterAndCycles) {
  ScenarioParams sp;
  sp.num_range = 8;
  sp.num_channels = 2;
  sp.num_pulses = 4;
  sp.clutter.num_patches = 0;
  sp.chirp_length = 0;
  sp.transmit_azimuths = {-0.4, 0.0, 0.4};
  sp.transmit_beam_width_rad = 25.0 * std::numbers::pi / 180.0;
  ScenarioGenerator gen(sp);
  // CPI 1 points at 0: full gain there, sidelobe floor far away.
  EXPECT_NEAR(gen.transmit_gain(1, 0.0), 1.0, 1e-9);
  EXPECT_NEAR(gen.transmit_gain(1, 0.4), 0.01, 1e-9);
  // CPI 2 points at 0.4; CPI 5 revisits it.
  EXPECT_NEAR(gen.transmit_gain(2, 0.4), 1.0, 1e-9);
  EXPECT_NEAR(gen.transmit_gain(5, 0.4), 1.0, 1e-9);
  // Taper inside the mainlobe: monotone falling from the center.
  const double g1 = gen.transmit_gain(1, 0.05);
  const double g2 = gen.transmit_gain(1, 0.12);
  EXPECT_GT(g1, g2);
  EXPECT_GT(g2, 0.01);
}

TEST(TransmitGain, TargetOnlyIlluminatedInItsBeam) {
  ScenarioParams sp;
  sp.num_range = 16;
  sp.num_channels = 2;
  sp.num_pulses = 4;
  sp.clutter.num_patches = 0;
  sp.noise_power = 1e-12;
  sp.chirp_length = 0;
  sp.transmit_azimuths = {-0.5, 0.5};
  sp.targets.push_back(Target{5, 0.25, 0.5, 20.0});
  ScenarioGenerator gen(sp);
  auto energy = [&](index_t cpi_index) {
    auto c = gen.generate(cpi_index);
    double e = 0;
    for (index_t n = 0; n < sp.num_pulses; ++n) e += std::norm(c.at(5, 0, n));
    return e;
  };
  // CPI 1 illuminates azimuth 0.5 (the target); CPI 0 points away (the
  // ratio is bounded by the -40 dB sidelobe floor plus the noise floor).
  EXPECT_GT(energy(1), 50.0 * energy(0));
}

StapParams cycling_params() {
  StapParams p = StapParams::small_test();
  p.num_range = 48;
  p.num_channels = 4;
  p.num_pulses = 16;
  p.num_beams = 2;
  p.num_hard = 6;
  p.stagger = 2;
  p.num_segments = 2;
  p.easy_samples_per_cpi = 12;
  p.hard_samples_per_segment = 10;
  p.num_beam_positions = 2;
  p.validate();
  return p;
}

TEST(BeamCycling, WeightStateIsPerPosition) {
  // Feed strongly different data at the two positions: the stored weights
  // for position 0 must be unaffected by position 1's training.
  StapParams p = cycling_params();
  auto steering = synth::steering_matrix(p.num_channels, p.num_beams,
                                         p.beam_center_rad, p.beam_span_rad);
  ScenarioParams sp;
  sp.num_range = p.num_range;
  sp.num_channels = p.num_channels;
  sp.num_pulses = p.num_pulses;
  sp.clutter.num_patches = 4;
  sp.clutter.cnr_db = 40.0;
  sp.chirp_length = 0;
  sp.transmit_azimuths = {-0.5, 0.5};
  ScenarioGenerator gen(sp);

  stap::SequentialStap chain(p, steering, gen.replica());
  chain.process(gen.generate(0));  // position 0 trains
  const auto w0_after_pos0 = chain.current_easy_weights(0);
  chain.process(gen.generate(1));  // position 1 trains
  const auto w0_after_pos1 = chain.current_easy_weights(0);
  // Position 0's weights unchanged by position 1's CPI.
  ASSERT_EQ(w0_after_pos0.weights.size(), w0_after_pos1.weights.size());
  for (size_t i = 0; i < w0_after_pos0.weights.size(); ++i)
    EXPECT_LT(linalg::frobenius_distance(w0_after_pos0.weights[i],
                                         w0_after_pos1.weights[i]),
              1e-7f);
  // And the two positions' weights differ (they saw different clutter).
  const auto w1 = chain.current_easy_weights(1);
  float diff = 0;
  for (size_t i = 0; i < w1.weights.size(); ++i)
    diff += linalg::frobenius_distance(w0_after_pos1.weights[i],
                                       w1.weights[i]);
  EXPECT_GT(diff, 1e-3f);
}

TEST(BeamCycling, ParallelMatchesSequentialWithTwoPositions) {
  StapParams p = cycling_params();
  ScenarioParams sp;
  sp.num_range = p.num_range;
  sp.num_channels = p.num_channels;
  sp.num_pulses = p.num_pulses;
  sp.clutter.num_patches = 6;
  sp.clutter.cnr_db = 35.0;
  sp.chirp_length = 6;
  sp.transmit_azimuths = {-0.3, 0.3};
  sp.targets.push_back(Target{21, 8.0 / 16.0, 0.3, 18.0});
  ScenarioGenerator gen(sp);

  // Per-position steering: receive beams centered on each transmit beam.
  std::vector<linalg::MatrixCF> steering;
  for (double az : sp.transmit_azimuths)
    steering.push_back(synth::steering_matrix(p.num_channels, p.num_beams,
                                              az, p.beam_span_rad));

  const index_t n_cpis = 6;
  stap::SequentialStap seq(p, steering, gen.replica());
  std::vector<std::vector<stap::Detection>> ref;
  for (index_t cpi = 0; cpi < n_cpis; ++cpi) {
    auto dets = seq.process(gen.generate(cpi)).detections;
    std::sort(dets.begin(), dets.end(), [](const auto& a, const auto& b) {
      return std::tie(a.doppler_bin, a.beam, a.range) <
             std::tie(b.doppler_bin, b.beam, b.range);
    });
    ref.push_back(std::move(dets));
  }

  core::NodeAssignment a{{3, 2, 4, 2, 2, 2, 2}};
  core::ParallelStapPipeline par(
      p, a, steering, {gen.replica().begin(), gen.replica().end()});
  auto result = par.run(gen, n_cpis, 1, 1);

  for (index_t cpi = 0; cpi < n_cpis; ++cpi) {
    const auto& got = result.detections[static_cast<size_t>(cpi)];
    const auto& want = ref[static_cast<size_t>(cpi)];
    ASSERT_EQ(got.size(), want.size()) << "cpi=" << cpi;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].doppler_bin, want[i].doppler_bin);
      EXPECT_EQ(got[i].beam, want[i].beam);
      EXPECT_EQ(got[i].range, want[i].range);
    }
  }
}

TEST(BeamCycling, SteeringCountMustMatchPositions) {
  StapParams p = cycling_params();  // 2 positions
  std::vector<linalg::MatrixCF> one = {synth::steering_matrix(
      p.num_channels, p.num_beams, 0.0, p.beam_span_rad)};
  EXPECT_THROW(stap::SequentialStap(p, one, {}), Error);
  core::NodeAssignment a;
  EXPECT_THROW(core::ParallelStapPipeline(p, a, one, {}), Error);
}

TEST(BeamCycling, RevisitedPositionReusesItsHistory) {
  // With cycling, detection of a target at position 0 should appear on the
  // position's second or third visit (CPIs 2/4), exactly as in the
  // single-position case but spaced by the revisit period.
  StapParams p = cycling_params();
  p.num_channels = 8;
  p.num_beams = 1;
  p.beam_span_rad = 0.0;
  p.validate();
  ScenarioParams sp;
  sp.num_range = p.num_range;
  sp.num_channels = p.num_channels;
  sp.num_pulses = p.num_pulses;
  sp.clutter.num_patches = 8;
  sp.clutter.cnr_db = 40.0;
  sp.chirp_length = 6;
  sp.transmit_azimuths = {0.0, 0.6};
  sp.targets.push_back(Target{30, 6.0 / 16.0, 0.0, 18.0});
  ScenarioGenerator gen(sp);
  std::vector<linalg::MatrixCF> steering;
  for (double az : sp.transmit_azimuths)
    steering.push_back(
        synth::steering_matrix(p.num_channels, 1, az, 0.0));

  stap::SequentialStap chain(p, steering, gen.replica());
  bool detected_pos0 = false, phantom_pos1 = false;
  for (index_t cpi = 0; cpi < 8; ++cpi) {
    auto r = chain.process(gen.generate(cpi));
    for (const auto& d : r.detections) {
      // Short windows leak the tone into adjacent Doppler bins.
      const bool is_target =
          std::abs(d.doppler_bin - 6) <= 1 && std::abs(d.range - 30) <= 1;
      if (!is_target) continue;
      if (cpi % 2 == 0 && cpi >= 4) detected_pos0 = true;
      if (cpi % 2 == 1) phantom_pos1 = true;
    }
  }
  EXPECT_TRUE(detected_pos0);
  // The target sits at azimuth 0; CPIs pointing at 0.6 rad barely
  // illuminate it and must not report it.
  EXPECT_FALSE(phantom_pos1);
}

}  // namespace
}  // namespace ppstap
