// Tests for the critical-path analyzer (DESIGN.md section 10): gating-task
// attribution and slack math on hand-built span sets, temporal-edge
// exclusion, Chrome-trace round-tripping, flow-span emission in the comm
// runtime, flight-recorder dumps on world abort, and the headline
// validation — the analyzer recovering the paper's Table 9/10 verdicts
// from simulator traces alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "comm/world.hpp"
#include "core/assignment.hpp"
#include "core/machine.hpp"
#include "core/sim.hpp"
#include "obs/critical_path.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "stap/params.hpp"
#include "synth/steering.hpp"

namespace ppstap::obs {
namespace {

// ---------------------------------------------------------------------------
// Synthetic spans: a 3-stage pipeline with a known bottleneck. Per CPI i
// (base T = i seconds), stage 1 is gating: intrinsic times are 0.30 /
// 0.58 / 0.30 s and every chain tile is constructed to telescope exactly
// over [T, T + 1.40].
// ---------------------------------------------------------------------------

Span phase(const char* name, int rank, int task, std::int64_t cpi, double t0,
           double t1) {
  return {name, "pipeline", rank, task, cpi, t0, t1, -1, -1};
}

Span flow(int dst_rank, int src_rank, int src_task, int edge,
          std::int64_t cpi, double t0, double t1, double queue_s) {
  Span s;
  s.name = "xfer";
  s.category = "flow";
  s.rank = dst_rank;
  s.task = kFlowTrack;
  s.cpi = cpi;
  s.t_start = t0;
  s.t_end = t1;
  s.bytes = 1024;
  s.src_rank = src_rank;
  s.src_task = src_task;
  s.edge = edge;
  s.hop = 1;
  s.queue_s = queue_s;
  return s;
}

std::vector<Span> synthetic_pipeline(int num_cpis) {
  std::vector<Span> spans;
  for (int i = 0; i < num_cpis; ++i) {
    const double T = static_cast<double>(i);
    const auto cpi = static_cast<std::int64_t>(i);
    // Stage 0 (source, rank 0): 0.05 ingest + 0.20 comp + 0.05 pack.
    spans.push_back(phase("recv", 0, 0, cpi, T + 0.00, T + 0.05));
    spans.push_back(phase("comp", 0, 0, cpi, T + 0.05, T + 0.25));
    spans.push_back(phase("send", 0, 0, cpi, T + 0.25, T + 0.30));
    // Edge 0 -> 1: departs T+0.30, 0.02 s queued, lands T+0.42.
    spans.push_back(flow(1, 0, 0, /*edge=*/0, cpi, T + 0.30, T + 0.42, 0.02));
    // Stage 1 (rank 1, gating): recv blocks from T+0.10, last delivery
    // T+0.42, unpack to T+0.45; comp 0.50; send 0.05. Intrinsic:
    // 0.90 - wait 0.32 = 0.58.
    spans.push_back(phase("recv", 1, 1, cpi, T + 0.10, T + 0.45));
    spans.push_back(phase("comp", 1, 1, cpi, T + 0.45, T + 0.95));
    spans.push_back(phase("send", 1, 1, cpi, T + 0.95, T + 1.00));
    // Edge 1 -> 2: no queueing, 0.10 transport.
    spans.push_back(flow(2, 1, 1, /*edge=*/1, cpi, T + 1.00, T + 1.10, 0.0));
    // Stage 2 (sink, rank 2): intrinsic 0.80 - wait 0.50 = 0.30.
    spans.push_back(phase("recv", 2, 2, cpi, T + 0.60, T + 1.15));
    spans.push_back(phase("comp", 2, 2, cpi, T + 1.15, T + 1.35));
    spans.push_back(phase("send", 2, 2, cpi, T + 1.35, T + 1.40));
  }
  return spans;
}

TEST(CriticalPath, FindsGatingStageAndSlack) {
  const auto rep = analyze_spans(synthetic_pipeline(3));
  ASSERT_TRUE(rep.valid) << rep.note;
  EXPECT_EQ(rep.gating_task, 1);
  EXPECT_NEAR(rep.period, 0.58, 1e-9);
  EXPECT_NEAR(rep.throughput_estimate, 1.0 / 0.58, 1e-9);

  ASSERT_EQ(rep.stages.size(), 3u);
  for (const auto& st : rep.stages) {
    switch (st.task) {
      case 0:
        EXPECT_NEAR(st.intrinsic(), 0.30, 1e-9);
        EXPECT_NEAR(st.slack, 0.28, 1e-9);
        EXPECT_NEAR(st.utilization, 0.30 / 0.58, 1e-9);
        EXPECT_NEAR(st.wait, 0.0, 1e-9);  // source has no inputs
        break;
      case 1:
        EXPECT_NEAR(st.service(), 0.90, 1e-9);
        EXPECT_NEAR(st.wait, 0.32, 1e-9);
        EXPECT_NEAR(st.intrinsic(), 0.58, 1e-9);
        EXPECT_NEAR(st.slack, 0.0, 1e-9);
        EXPECT_NEAR(st.utilization, 1.0, 1e-9);
        break;
      case 2:
        EXPECT_NEAR(st.wait, 0.50, 1e-9);
        EXPECT_NEAR(st.intrinsic(), 0.30, 1e-9);
        break;
      default:
        FAIL() << "unexpected task " << st.task;
    }
  }
}

TEST(CriticalPath, RecommendsRanksForGatingStage) {
  const auto rep = analyze_spans(synthetic_pipeline(3));
  ASSERT_TRUE(rep.valid);
  // Runner-up intrinsic is 0.30: one extra rank brings 0.58 under it
  // (ceil(1 * (0.58/0.30 - 1)) = 1) and the predicted ceiling is 1/0.30.
  EXPECT_EQ(rep.recommend_task, 1);
  EXPECT_EQ(rep.recommend_add_ranks, 1);
  EXPECT_NEAR(rep.predicted_throughput, 1.0 / 0.30, 1e-9);
}

TEST(CriticalPath, ChainsTelescopeWithNoGaps) {
  const auto rep = analyze_spans(synthetic_pipeline(3));
  ASSERT_TRUE(rep.valid);
  ASSERT_EQ(rep.chains.size(), 3u);
  for (const auto& ch : rep.chains) {
    EXPECT_EQ(ch.hops, 2);
    EXPECT_NEAR(ch.latency, 1.40, 1e-9);
    EXPECT_NEAR(ch.compute, 0.90, 1e-9);
    EXPECT_NEAR(ch.unpack, 0.13, 1e-9);
    EXPECT_NEAR(ch.pack, 0.15, 1e-9);
    EXPECT_NEAR(ch.transport, 0.20, 1e-9);
    EXPECT_NEAR(ch.queue, 0.02, 1e-9);
    EXPECT_NEAR(ch.accounted(), ch.latency, 1e-9);
  }
  EXPECT_NEAR(rep.accounted_fraction, 1.0, 1e-9);
  EXPECT_NEAR(rep.mean_latency, 1.40, 1e-9);
}

TEST(CriticalPath, TemporalEdgesBoundWaitButStayOffTheChain) {
  // A temporal delivery (edge 4: weights trained on an earlier CPI) lands
  // at T+0.80, after the spatial input at T+0.42. It extends stage 1's
  // queue-wait bound but the chain walk must keep following the spatial
  // edge — eq. (2) excludes the weight tasks from the latency path.
  auto spans = synthetic_pipeline(3);
  for (int i = 0; i < 3; ++i) {
    const double T = static_cast<double>(i);
    spans.push_back(
        flow(1, 7, 7, /*edge=*/4, i, T + 0.20, T + 0.80, 0.0));
  }
  const auto rep = analyze_spans(spans);
  ASSERT_TRUE(rep.valid);
  // Wait bound now reaches the temporal delivery: clamp(0.80-0.10) = 0.35
  // (full recv), intrinsic 0.90 - 0.35 = 0.55; stage 1 still gates.
  EXPECT_EQ(rep.gating_task, 1);
  EXPECT_NEAR(rep.period, 0.55, 1e-9);
  // Chains are unchanged: same two spatial hops, same closed decomposition.
  ASSERT_EQ(rep.chains.size(), 3u);
  for (const auto& ch : rep.chains) {
    EXPECT_EQ(ch.hops, 2);
    EXPECT_NEAR(ch.accounted(), ch.latency, 1e-9);
  }
}

TEST(CriticalPath, TrimsFillAndDrainTransients) {
  // 12 complete CPIs -> the analyzer drops 2 from each end.
  const auto rep = analyze_spans(synthetic_pipeline(12));
  ASSERT_TRUE(rep.valid);
  EXPECT_EQ(rep.chains.size(), 8u);
  for (const auto& st : rep.stages) EXPECT_EQ(st.samples, 8);
}

TEST(CriticalPath, DegradesGracefullyOnEmptyOrPartialInput) {
  EXPECT_FALSE(analyze_spans({}).valid);

  // Phase spans but no flows: still a verdict, flagged in the note.
  auto spans = synthetic_pipeline(3);
  std::vector<Span> no_flows;
  for (const auto& s : spans)
    if (std::string(s.category) == "pipeline") no_flows.push_back(s);
  const auto rep = analyze_spans(no_flows);
  ASSERT_TRUE(rep.valid);
  EXPECT_FALSE(rep.note.empty());
  // Without flows the wait bound is zero, so intrinsic == service and the
  // verdict falls back to raw phase times (stage 1 still dominates).
  EXPECT_EQ(rep.gating_task, 1);

  // A CPI missing one stage's triple is excluded from the steady state.
  auto partial = synthetic_pipeline(3);
  partial.erase(
      std::remove_if(partial.begin(), partial.end(),
                     [](const Span& s) {
                       return s.cpi == 1 && s.task == 2 &&
                              std::string(s.category) == "pipeline";
                     }),
      partial.end());
  const auto rep2 = analyze_spans(partial);
  ASSERT_TRUE(rep2.valid);
  EXPECT_EQ(rep2.chains.size(), 2u);
}

TEST(CriticalPath, TaskLabelsMatchTheTraceContract) {
  EXPECT_EQ(stap_task_label(0), "Doppler filter processing");
  EXPECT_EQ(stap_task_label(2), "hard weight computation");
  EXPECT_EQ(stap_task_label(6), "CFAR processing");
  EXPECT_EQ(stap_task_label(42), "task42");
}

TEST(CriticalPath, ReportSerializesToJson) {
  const auto rep = analyze_spans(synthetic_pipeline(3));
  const Json doc = Json::parse(rep.to_json().dump(2));
  EXPECT_TRUE(doc.find("valid")->as_bool());
  EXPECT_EQ(doc.find("gating_task")->as_number(), 1.0);
  EXPECT_EQ(doc.find("stages")->size(), 3u);
  EXPECT_NEAR(doc.find("accounted_fraction")->as_number(), 1.0, 1e-9);
  ASSERT_NE(doc.find("latency_breakdown"), nullptr);
  ASSERT_NE(doc.find("recommendation"), nullptr);
  EXPECT_EQ(doc.find("recommendation")->find("add_ranks")->as_number(), 1.0);
}

#if PPSTAP_ENABLE_TRACING

// ---------------------------------------------------------------------------
// Recorder-dependent integration (live spans, comm flow spans, flight
// recorder, simulator verdicts).
// ---------------------------------------------------------------------------

class TracedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    Config c;
    c.enabled = true;
    configure(c);
  }
  void TearDown() override {
    Config c;
    c.enabled = false;
    configure(c);
    reset();
  }
};

TEST_F(TracedTest, ChromeTraceRoundTripPreservesTheVerdict) {
  for (const auto& s : synthetic_pipeline(3)) emit(s);
  const auto direct = analyze_spans(snapshot());
  const auto round = analyze_trace(chrome_trace_json());
  ASSERT_TRUE(direct.valid);
  ASSERT_TRUE(round.valid);
  EXPECT_EQ(round.gating_task, direct.gating_task);
  EXPECT_NEAR(round.period, direct.period, 1e-6);
  EXPECT_EQ(round.chains.size(), direct.chains.size());
  EXPECT_NEAR(round.accounted_fraction, direct.accounted_fraction, 1e-6);
  EXPECT_NEAR(round.mean_latency, direct.mean_latency, 1e-6);
}

TEST_F(TracedTest, CommEmitsFlowSpanOnDelivery) {
  comm::World world(2);
  world.run([](comm::Comm& c) {
    const int tag = 5;
    if (c.rank() == 0) {
      std::vector<float> payload(256, 1.0f);
      comm::FlowContext fc;
      fc.cpi = 7;
      fc.task = 3;
      fc.edge = 2;
      fc.hop = 1;
      c.send<float>(1, tag, payload, &fc);
    } else {
      (void)c.recv<float>(0, tag);
    }
  });
  const auto spans = snapshot();
  int xfers = 0;
  for (const auto& s : spans) {
    if (std::string(s.category) != "flow") continue;
    ++xfers;
    EXPECT_STREQ(s.name, "xfer");
    EXPECT_EQ(s.task, kFlowTrack);
    EXPECT_EQ(s.rank, 1);        // receiver-side span
    EXPECT_EQ(s.src_rank, 0);
    EXPECT_EQ(s.src_task, 3);
    EXPECT_EQ(s.edge, 2);
    EXPECT_EQ(s.hop, 1);
    EXPECT_EQ(s.cpi, 7);
    EXPECT_EQ(s.bytes, 256 * static_cast<std::int64_t>(sizeof(float)));
    EXPECT_GE(s.t_end, s.t_start);
    EXPECT_GE(s.queue_s, 0.0);
    EXPECT_LE(s.queue_s, s.t_end - s.t_start + 1e-9);
  }
  EXPECT_EQ(xfers, 1);
}

TEST_F(TracedTest, PlainSendsAndMarkersEmitNoFlowSpan) {
  comm::World world(2);
  world.run([](comm::Comm& c) {
    if (c.rank() == 0) {
      std::vector<float> payload(16, 2.0f);
      c.send<float>(1, 1, payload);  // no flow context
      c.send_marker(1, 2);
    } else {
      (void)c.recv<float>(0, 1);
      (void)c.recv_bytes_for(0, 2, 5.0);
    }
  });
  for (const auto& s : snapshot())
    EXPECT_NE(std::string(s.category), "flow");
}

TEST_F(TracedTest, FlightRecorderDumpsOnWorldAbort) {
  const std::string path = ::testing::TempDir() + "ppstap_flight_test.json";
  std::remove(path.c_str());
  Config c;
  c.enabled = true;
  c.flight_armed = true;
  c.flight_path = path;
  configure(c);

  emit({"comp", "pipeline", 0, 0, 1, 1.0, 2.0, -1, -1});
  comm::World world(2);
  EXPECT_THROW(world.run([](comm::Comm& c2) {
                 if (c2.rank() == 1) throw Error("injected failure");
                 (void)c2.recv_bytes_for(1, 9, 30.0);
               }),
               Error);

  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good()) << "flight recorder did not write " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  const Json doc = Json::parse(ss.str());
  const Json* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  ASSERT_NE(other->find("flight_reason"), nullptr);
  EXPECT_EQ(other->find("flight_reason")->as_string(), "world_abort");
  ASSERT_NE(doc.find("traceEvents"), nullptr);
  EXPECT_GT(doc.find("traceEvents")->size(), 0u);
  std::remove(path.c_str());
}

TEST_F(TracedTest, UnarmedFlightRecorderWritesNothing) {
  const std::string path = ::testing::TempDir() + "ppstap_flight_off.json";
  std::remove(path.c_str());
  Config c;
  c.enabled = true;
  c.flight_armed = false;
  c.flight_path = path;
  configure(c);
  flight_dump("test_reason");
  std::ifstream is(path);
  EXPECT_FALSE(is.good());
}

// The headline validation: from simulator span streams alone, the analyzer
// reaches the same verdicts the paper derives by hand in Tables 9 and 10 —
// case 2 is gated by Doppler filtering (Table 9's motivation), the
// Table-10 assignment is STILL Doppler-gated (which is why its +16
// PC/CFAR nodes buy no throughput), and once Doppler is widened past
// that, the hard weight task — pinned at its 56-node partitioning limit —
// becomes the wall (the paper's closing observation).
TEST_F(TracedTest, SimulatorTraceReproducesTable9And10Verdicts) {
  core::PipelineSimulator sim(stap::StapParams{},
                              core::ParagonParams::calibrated());
  struct Case {
    core::NodeAssignment a;
    int expect;
  } cases[] = {
      {core::NodeAssignment::paper_case2(), 0},    // Doppler filter
      {core::NodeAssignment::paper_table10(), 0},  // still Doppler
      {core::NodeAssignment{{28, 8, 56, 8, 14, 16, 16}}, 2},  // hard weights
  };
  for (const auto& [a, expect] : cases) {
    reset();
    const auto r = sim.simulate(a);
    const auto rep = analyze_spans(snapshot());
    ASSERT_TRUE(rep.valid) << rep.note;
    EXPECT_EQ(rep.gating_task, expect);
    // The recovered period is eq. (1)'s max intrinsic time.
    EXPECT_NEAR(rep.throughput_estimate, r.throughput_equation,
                0.05 * r.throughput_equation);
    ASSERT_FALSE(rep.chains.empty());
    EXPECT_GE(rep.accounted_fraction, 0.95);
  }
}

#endif  // PPSTAP_ENABLE_TRACING

}  // namespace
}  // namespace ppstap::obs
