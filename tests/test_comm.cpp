// Tests for the in-process message-passing runtime: point-to-point
// semantics, tag matching, flow control, barriers, abort-on-error, and the
// all-to-all personalized exchange pattern the pipeline uses.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>

#include "comm/fault.hpp"
#include "comm/world.hpp"
#include "common/timer.hpp"

namespace ppstap::comm {
namespace {

TEST(World, PingPong) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> payload = {1, 2, 3};
      c.send<int>(1, 7, payload);
      auto echo = c.recv<int>(1, 8);
      ASSERT_EQ(echo.size(), 3u);
      EXPECT_EQ(echo[2], 6);
    } else {
      auto got = c.recv<int>(0, 7);
      for (auto& v : got) v *= 2;
      c.send<int>(0, 8, got);
    }
  });
}

TEST(World, TagMatchingOutOfOrder) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> a = {1}, b = {2}, d = {3};
      c.send<int>(1, 10, a);
      c.send<int>(1, 20, b);
      c.send<int>(1, 30, d);
    } else {
      // Receive in reverse tag order: matching must be by tag, not arrival.
      EXPECT_EQ(c.recv<int>(0, 30)[0], 3);
      EXPECT_EQ(c.recv<int>(0, 20)[0], 2);
      EXPECT_EQ(c.recv<int>(0, 10)[0], 1);
    }
  });
}

TEST(World, SameTagPreservesFifoPerSource) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        std::vector<int> v = {i};
        c.send<int>(1, 5, v);
      }
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(c.recv<int>(0, 5)[0], i);
    }
  });
}

TEST(World, EmptyMessagesAreDelivered) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> empty;
      c.send<int>(1, 1, empty);
    } else {
      EXPECT_TRUE(c.recv<int>(0, 1).empty());
    }
  });
}

TEST(World, AllToAllPersonalized) {
  // Every rank sends a distinct value to every other rank — the pipeline's
  // redistribution pattern.
  const int n = 6;
  World world(n);
  world.run([n](Comm& c) {
    for (int dst = 0; dst < n; ++dst) {
      std::vector<int> v = {c.rank() * 100 + dst};
      c.send<int>(dst, 42, v);
    }
    for (int src = 0; src < n; ++src)
      EXPECT_EQ(c.recv<int>(src, 42)[0], src * 100 + c.rank());
  });
}

TEST(World, BarrierSynchronizes) {
  const int n = 4;
  World world(n);
  std::atomic<int> before{0}, after{0};
  world.run([&](Comm& c) {
    before.fetch_add(1);
    c.barrier();
    // Every rank must have passed `before` by now.
    EXPECT_EQ(before.load(), n);
    after.fetch_add(1);
    c.barrier();
    EXPECT_EQ(after.load(), n);
  });
}

TEST(World, RepeatedBarriers) {
  World world(3);
  world.run([](Comm& c) {
    for (int i = 0; i < 50; ++i) c.barrier();
  });
}

TEST(World, RankExceptionPropagatesWithoutHanging) {
  World world(3);
  EXPECT_THROW(world.run([](Comm& c) {
                 if (c.rank() == 1) throw Error("rank 1 exploded");
                 // Other ranks block on a receive that will never be
                 // satisfied; the abort must wake them.
                 (void)c.recv<int>(2, 99);
               }),
               Error);
}

TEST(World, AbortWakesBarrierWaiters) {
  World world(3);
  EXPECT_THROW(world.run([](Comm& c) {
                 if (c.rank() == 0) throw Error("boom");
                 c.barrier();
               }),
               Error);
}

TEST(World, FlowControlThrottlesWithoutDeadlock) {
  // Tiny mailbox: the producer must block until the consumer drains, but
  // every message still arrives exactly once.
  World world(2, /*mailbox_capacity_bytes=*/64);
  world.run([](Comm& c) {
    const int count = 100;
    if (c.rank() == 0) {
      for (int i = 0; i < count; ++i) {
        std::vector<int> v(16, i);  // 64 bytes each
        c.send<int>(1, 1, v);
      }
    } else {
      for (int i = 0; i < count; ++i) {
        auto v = c.recv<int>(0, 1);
        ASSERT_EQ(v.size(), 16u);
        EXPECT_EQ(v[0], i);
      }
    }
  });
}

TEST(World, OversizedMessageStillAdmitted) {
  World world(2, /*mailbox_capacity_bytes=*/8);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> big(1000, 7);
      c.send<int>(1, 1, big);
    } else {
      EXPECT_EQ(c.recv<int>(0, 1).size(), 1000u);
    }
  });
}

TEST(World, TryRecvNeverBlocksAndConsumesOnce) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      EXPECT_FALSE(c.try_recv<int>(1, 5).has_value());  // nothing yet
      c.barrier();  // rank 1 sends before this barrier
      c.barrier();
      auto got = c.try_recv<int>(1, 5);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ((*got)[0], 42);
      EXPECT_FALSE(c.try_recv<int>(1, 5).has_value());  // consumed
    } else {
      std::vector<int> v = {42};
      c.barrier();
      c.send<int>(0, 5, v);
      c.barrier();
    }
  });
}

TEST(World, TryRecvMatchesTagsSelectively) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> v = {7};
      c.send<int>(1, 99, v);
      c.barrier();
    } else {
      c.barrier();
      EXPECT_FALSE(c.try_recv<int>(0, 98).has_value());
      EXPECT_TRUE(c.try_recv<int>(0, 99).has_value());
    }
  });
}

TEST(World, PendingRecvPostThenWait) {
  // The Fig. 10 structure: post receives for the next iteration (line 6),
  // wait for the current one (line 7).
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        std::vector<int> v = {i * 10};
        c.send<int>(1, i, v);
      }
    } else {
      auto r0 = c.irecv<int>(0, 0);
      auto r1 = c.irecv<int>(0, 1);  // posted before r0 completes
      EXPECT_EQ(r0.wait()[0], 0);
      EXPECT_EQ(r1.wait()[0], 10);
      auto r2 = c.irecv<int>(0, 2);
      // ready() does not consume; wait() still returns the payload.
      while (!r2.ready()) {
      }
      EXPECT_EQ(r2.wait()[0], 20);
    }
  });
}

TEST(World, StatsCountBytesAndMessages) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> v(10);
      c.send<double>(1, 3, v);
      c.send<double>(1, 4, v);
    } else {
      (void)c.recv<double>(0, 3);
      (void)c.recv<double>(0, 4);
    }
  });
  const auto& stats = world.last_stats();
  EXPECT_EQ(stats[0].messages_sent, 2u);
  EXPECT_EQ(stats[0].bytes_sent, 160u);
  EXPECT_EQ(stats[1].messages_received, 2u);
  EXPECT_EQ(stats[1].bytes_received, 160u);
}

TEST(World, ReusableAcrossRuns) {
  World world(2);
  for (int round = 0; round < 3; ++round) {
    world.run([round](Comm& c) {
      if (c.rank() == 0) {
        std::vector<int> v = {round};
        c.send<int>(1, 0, v);
      } else {
        EXPECT_EQ(c.recv<int>(0, 0)[0], round);
      }
    });
  }
}

TEST(World, InvalidRankThrows) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& c) {
                 std::vector<int> v = {1};
                 c.send<int>(5, 0, v);
               }),
               Error);
}

TEST(World, SingleRankWorldWorks) {
  World world(1);
  world.run([](Comm& c) {
    std::vector<int> v = {42};
    c.send<int>(0, 0, v);  // self-send
    EXPECT_EQ(c.recv<int>(0, 0)[0], 42);
    c.barrier();
  });
}

TEST(World, ManyRanksStress) {
  // Ring exchange with 32 ranks on one core: exercises scheduling fairness.
  const int n = 32;
  World world(n);
  world.run([n](Comm& c) {
    const int next = (c.rank() + 1) % n;
    const int prev = (c.rank() + n - 1) % n;
    int token = c.rank();
    for (int step = 0; step < 8; ++step) {
      std::vector<int> v = {token};
      c.send<int>(next, step, v);
      token = c.recv<int>(prev, step)[0];
    }
    // After 8 hops the token originated 8 ranks back.
    EXPECT_EQ(token, (c.rank() + n - 8) % n);
  });
}

// ---------------------------------------------------------------------------
// Abort paths and watchdog
// ---------------------------------------------------------------------------

// Aborts the world when the guarded section does not finish within the
// deadline: a regression that hangs a blocked rank turns into a prompt
// Error here instead of a ctest timeout.
class Watchdog {
 public:
  Watchdog(World& world, double seconds)
      : thread_([&world, seconds, this] {
          std::unique_lock<std::mutex> lock(mu_);
          const auto deadline = std::chrono::duration<double>(seconds);
          if (!cv_.wait_for(lock, deadline, [this] { return disarmed_; }))
            world.request_abort("watchdog deadline exceeded");
        }) {}
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      disarmed_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

TEST(WorldAbort, RequestAbortWakesBlockedReceivers) {
  World world(3);
  Watchdog dog(world, 0.2);
  const double t0 = WallTimer::now();
  EXPECT_THROW(world.run([](Comm& c) {
                 // Nobody ever sends tag 99: every rank is blocked until
                 // the watchdog aborts the world.
                 (void)c.recv<int>((c.rank() + 1) % 3, 99);
               }),
               Error);
  EXPECT_LT(WallTimer::now() - t0, 5.0);
}

TEST(WorldAbort, AbortWakesFlowControlBlockedSender) {
  World world(2, /*mailbox_capacity_bytes=*/64);
  EXPECT_THROW(
      world.run([](Comm& c) {
        if (c.rank() == 0) {
          // The consumer never drains: this sender must block on flow
          // control, then observe the abort instead of hanging.
          std::vector<int> v(64, 1);
          for (int i = 0; i < 1000; ++i) c.send<int>(1, 1, v);
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          throw Error("receiver exploded");
        }
      }),
      Error);
}

TEST(WorldAbort, AbortWakesMixedBarrierAndRecvWaiters) {
  World world(4);
  Watchdog dog(world, 0.2);
  const double t0 = WallTimer::now();
  EXPECT_THROW(world.run([](Comm& c) {
                 // Half the ranks park in a barrier that can never
                 // complete, half in a recv that is never satisfied.
                 if (c.rank() % 2 == 0)
                   c.barrier();
                 else
                   (void)c.recv<int>(0, 77);
               }),
               Error);
  EXPECT_LT(WallTimer::now() - t0, 5.0);
}

// ---------------------------------------------------------------------------
// Deadline receives, markers, discard
// ---------------------------------------------------------------------------

TEST(WorldDeadline, RecvForTimesOutThenDelivers) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      // Nothing has been sent yet: rank 1 is parked in the barrier.
      auto r = c.recv_bytes_for(1, 3, 0.02);
      EXPECT_EQ(r.status, RecvStatus::kTimeout);
      c.barrier();
      auto r2 = c.recv_bytes_for(1, 3, 5.0);
      ASSERT_EQ(r2.status, RecvStatus::kOk);
      EXPECT_FALSE(r2.marker);
      EXPECT_EQ(r2.as<int>()[0], 42);
    } else {
      c.barrier();  // rank 0 has observed the timeout
      std::vector<int> v = {42};
      c.send<int>(0, 3, v);
    }
  });
}

TEST(WorldDeadline, MarkerDeliveredAsControlFrame) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_marker(1, 4);
    } else {
      auto r = c.recv_bytes_for(0, 4, 5.0);
      EXPECT_EQ(r.status, RecvStatus::kOk);
      EXPECT_TRUE(r.marker);
      EXPECT_FALSE(r.ok());
      EXPECT_TRUE(r.bytes.empty());
    }
  });
}

TEST(WorldDeadline, DiscardDropsAllMatchingFrames) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> v = {1};
      for (int i = 0; i < 3; ++i) c.send<int>(1, 6, v);
      c.send<int>(1, 7, v);  // different tag must survive
      c.barrier();
    } else {
      c.barrier();
      EXPECT_EQ(c.discard(0, 6), 3u);
      EXPECT_EQ(c.discard(0, 6), 0u);
      EXPECT_TRUE(c.try_recv<int>(0, 7).has_value());
    }
  });
}

// ---------------------------------------------------------------------------
// Fault injection primitives
// ---------------------------------------------------------------------------

TEST(FaultInjection, DelayHoldsFrameInFlight) {
  World world(2);
  FaultPlan plan;
  plan.add(FaultPlan::delay_message(0, 1, 7, 0.15));
  world.set_fault_plan(&plan);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> v = {5};
      c.send<int>(1, 7, v);
      c.barrier();
    } else {
      c.barrier();
      // The frame is buffered but not yet due: invisible to try_recv.
      EXPECT_FALSE(c.try_recv<int>(0, 7).has_value());
      // The blocking recv waits out the injected latency.
      EXPECT_EQ(c.recv<int>(0, 7)[0], 5);
    }
  });
  EXPECT_EQ(plan.stats().delayed, 1u);
}

TEST(FaultInjection, DropDiscardsExactlyTheMatchedFrame) {
  World world(2);
  FaultPlan plan;
  auto rule = FaultPlan::drop_message(0, 1, 5);
  rule.max_applications = 1;
  plan.add(rule);
  world.set_fault_plan(&plan);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> a = {1}, b = {2};
      c.send<int>(1, 5, a);  // dropped
      c.send<int>(1, 5, b);  // delivered
    } else {
      EXPECT_EQ(c.recv<int>(0, 5)[0], 2);
    }
  });
  EXPECT_EQ(plan.stats().dropped, 1u);
}

TEST(FaultInjection, CorruptionTriggersRetransmission) {
  World world(2);
  FaultPlan plan;
  plan.add(FaultPlan::corrupt_message(0, 1, 9));  // corrupt once
  world.set_fault_plan(&plan);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> v(100);
      std::iota(v.begin(), v.end(), 0);
      c.send<int>(1, 9, v);
    } else {
      // Payload must arrive intact: the checksum failure is repaired from
      // the sender-side pristine copy.
      auto v = c.recv<int>(0, 9);
      ASSERT_EQ(v.size(), 100u);
      for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
    }
  });
  EXPECT_EQ(plan.stats().corrupted, 1u);
  EXPECT_GE(world.last_stats()[1].retransmissions, 1u);
  // Tag 9 lands in edge bucket 9; the corrupt-once frame repaired on the
  // first retransmission attempt, so histogram slot 0 counts it.
  EXPECT_EQ(world.last_stats()[1].retry_histogram[9][0], 1u);
}

TEST(FaultInjection, SeededCoinIsDeterministic) {
  // Two identical runs of a probabilistic plan drop exactly the same
  // messages — the receiver sees the same survivor set both times.
  std::vector<int> survivors[2];
  for (int run = 0; run < 2; ++run) {
    World world(2);
    FaultPlan plan(/*seed=*/1234);
    auto rule = FaultPlan::drop_message(0, 1, 5);
    rule.probability = 0.5;
    plan.add(rule);
    world.set_fault_plan(&plan);
    world.run([&, run](Comm& c) {
      if (c.rank() == 0) {
        for (int i = 0; i < 32; ++i) {
          std::vector<int> v = {i};
          c.send<int>(1, 5, v);
        }
        c.barrier();
      } else {
        c.barrier();  // all sends (and drops) resolved
        while (auto v = c.try_recv<int>(0, 5))
          survivors[run].push_back((*v)[0]);
      }
    });
    EXPECT_GT(plan.stats().dropped, 0u);
    EXPECT_LT(plan.stats().dropped, 32u);
  }
  EXPECT_EQ(survivors[0], survivors[1]);
}

TEST(FaultInjection, KillIsPerRankDeathNotGlobalAbort) {
  World world(3);
  FaultPlan plan;
  plan.add(FaultPlan::kill_on_recv(1, 7));
  world.set_fault_plan(&plan);
  // The kill is a per-rank death: run() returns normally.
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> v = {1};
      c.send<int>(1, 7, v);
    } else if (c.rank() == 1) {
      EXPECT_THROW((void)c.recv<int>(0, 7), RankKilled);
      throw RankKilled(1);  // rank-level death, observed by World::run
    } else {
      // A peer recv on the dead (unrecoverable) rank reports kPeerDead
      // instead of hanging; sends to it are black-holed, not blocking.
      auto r = c.recv_bytes_for(1, 8, 5.0);
      EXPECT_EQ(r.status, RecvStatus::kPeerDead);
      std::vector<int> v = {2};
      c.send<int>(1, 9, v);
    }
  });
  EXPECT_EQ(plan.stats().kills, 1u);
  EXPECT_TRUE(world.rank_dead(1));
  EXPECT_GT(world.death_time(1), 0.0);
}

TEST(FaultInjection, SpareTakesOverRecoverableDeadRank) {
  World world(3);
  world.set_recoverable(1);
  FaultPlan plan;
  plan.add(FaultPlan::kill_on_recv(1, 7));
  world.set_fault_plan(&plan);
  world.run([&world](Comm& c) {
    if (c.rank() == 0) {
      // The kill fires *before* the recv consumes: this frame must still
      // be in the mailbox when the spare takes over.
      std::vector<int> v = {11};
      c.send<int>(1, 7, v);
      // Plain blocking recv on a recoverable dead rank waits for the
      // spare rather than throwing.
      EXPECT_EQ(c.recv<int>(1, 8)[0], 22);
    } else if (c.rank() == 1) {
      EXPECT_THROW((void)c.recv<int>(0, 7), RankKilled);
      throw RankKilled(1);
    } else {
      auto dead = world.wait_for_death(5.0);
      ASSERT_TRUE(dead.has_value());
      EXPECT_EQ(*dead, 1);
      c.take_over(1);
      EXPECT_EQ(c.rank(), 1);
      // The dead rank's mailbox is intact; kill_on_recv is exhausted
      // (max_applications = 1), so this recv succeeds.
      EXPECT_EQ(c.recv<int>(0, 7)[0], 11);
      std::vector<int> v = {22};
      c.send<int>(0, 8, v);
    }
  });
  EXPECT_FALSE(world.rank_dead(1));
  EXPECT_EQ(plan.stats().kills, 1u);
}

TEST(FaultInjection, WaitForDeathTimesOutWhenNobodyDies) {
  World world(2);
  world.set_recoverable(0);
  world.run([&world](Comm& c) {
    if (c.rank() == 1) {
      EXPECT_FALSE(world.wait_for_death(0.02).has_value());
    }
  });
}

TEST(FaultInjection, PlanReplaysIdenticallyAcrossRuns) {
  // World::run resets the plan, so the same rule fires in each run even
  // with max_applications = 1.
  World world(2);
  FaultPlan plan;
  auto rule = FaultPlan::drop_message(0, 1, 5);
  rule.max_applications = 1;
  plan.add(rule);
  world.set_fault_plan(&plan);
  for (int round = 0; round < 2; ++round) {
    world.run([](Comm& c) {
      if (c.rank() == 0) {
        std::vector<int> a = {1}, b = {2};
        c.send<int>(1, 5, a);
        c.send<int>(1, 5, b);
      } else {
        EXPECT_EQ(c.recv<int>(0, 5)[0], 2);
      }
    });
    EXPECT_EQ(plan.stats().dropped, 1u);
  }
}

// PR 8 (death-path edge case): a sender dies while one of its frames is
// mid-retransmission at the receiver. The receiver must not wedge waiting
// for repairs from a corpse — it burns the budget against the mailbox
// copies and surfaces kCorrupt, and the exhaustion is ledgered in the
// per-edge retry histogram's overflow slot.
TEST(FaultInjection, SenderDeathDuringInFlightRetransmission) {
  World world(3);
  FaultPlan plan;
  auto rule = FaultPlan::corrupt_message(0, 1, 9);
  rule.max_applications = -1;  // every copy, originals and retransmissions
  plan.add(rule);
  plan.add(FaultPlan::kill_on_recv(0, 7));
  world.set_fault_plan(&plan);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> v(64);
      std::iota(v.begin(), v.end(), 0);
      c.send<int>(1, 9, v);  // poisoned frame, already in flight
      // Handshake recv that kills the sender while rank 1 is still
      // retrying the poisoned frame.
      EXPECT_THROW((void)c.recv<int>(2, 7), RankKilled);
      throw RankKilled(0);
    } else if (c.rank() == 1) {
      auto r = c.recv_bytes_for(0, 9, 5.0);
      EXPECT_EQ(r.status, RecvStatus::kCorrupt);
    } else {
      std::vector<int> go = {1};
      c.send<int>(0, 7, go);
    }
  });
  EXPECT_TRUE(world.rank_dead(0));
  // The exhausted budget is recorded in the overflow slot of edge
  // bucket 9 (tag 9 < kEdgeCount).
  EXPECT_EQ(world.last_stats()[1].retry_histogram[9][kMaxRetransmitAttempts],
            1u);
}

// PR 8 (death-path edge case): two recoverable ranks die in the same plan
// while two idle claimants wait. Each wait_for_death claim is exclusive —
// the two claimants take over disjoint corpses and both roles resume.
TEST(FaultInjection, SimultaneousMultiRankKillClaimsAreDisjoint) {
  World world(5);
  world.set_recoverable(0);
  world.set_recoverable(1);
  FaultPlan plan;
  plan.add(FaultPlan::kill_on_recv(0, 7));
  plan.add(FaultPlan::kill_on_recv(1, 7));
  world.set_fault_plan(&plan);
  std::atomic<unsigned> claimed_mask{0};
  world.run([&world, &claimed_mask](Comm& c) {
    if (c.rank() == 0 || c.rank() == 1) {
      EXPECT_THROW((void)c.recv<int>(2, 7), RankKilled);
      throw RankKilled(c.rank());
    } else if (c.rank() == 2) {
      std::vector<int> v = {1};
      c.send<int>(0, 7, v);
      c.send<int>(1, 7, v);
      // Both corpses were claimed and revived: each claimant answers from
      // the rank it took over.
      EXPECT_EQ(c.recv<int>(0, 8)[0], 100);
      EXPECT_EQ(c.recv<int>(1, 8)[0], 101);
    } else {
      auto dead = world.wait_for_death(5.0);
      ASSERT_TRUE(dead.has_value());
      claimed_mask.fetch_or(1u << *dead);
      c.take_over(*dead);
      std::vector<int> v = {100 + c.rank()};
      c.send<int>(2, 8, v);
    }
  });
  // Disjoint claims: ranks 0 and 1 each claimed exactly once.
  EXPECT_EQ(claimed_mask.load(), 3u);
  EXPECT_EQ(plan.stats().kills, 2u);
  EXPECT_FALSE(world.rank_dead(0));
  EXPECT_FALSE(world.rank_dead(1));
}

// PR 8 (death-path edge case): a rank that already finished its useful
// work dies on a late control message. The death is still detected and
// claimable promptly — wait_for_death doesn't depend on the corpse having
// pending protocol traffic.
TEST(FaultInjection, IdleRankDeathAfterCompletionIsClaimedPromptly) {
  World world(3);
  world.set_recoverable(1);
  FaultPlan plan;
  plan.add(FaultPlan::kill_on_recv(1, 99));
  world.set_fault_plan(&plan);
  world.run([&world](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> v = {7};
      c.send<int>(1, 5, v);   // real work
      c.send<int>(1, 99, v);  // late control message, kills on receipt
    } else if (c.rank() == 1) {
      EXPECT_EQ(c.recv<int>(0, 5)[0], 7);  // stream complete, now idle
      EXPECT_THROW((void)c.recv<int>(0, 99), RankKilled);
      throw RankKilled(1);
    } else {
      const double t0 = WallTimer::now();
      auto dead = world.wait_for_death(5.0);
      const double elapsed = WallTimer::now() - t0;
      ASSERT_TRUE(dead.has_value());
      EXPECT_EQ(*dead, 1);
      EXPECT_LT(elapsed, 4.0);
      c.take_over(1);
    }
  });
  EXPECT_FALSE(world.rank_dead(1));
  EXPECT_EQ(plan.stats().kills, 1u);
}

TEST(FaultInjection, DuplicateIsDeliveredOnceAndDiscarded) {
  World world(2);
  FaultPlan plan;
  plan.add(FaultPlan::duplicate_message(0, 1, 11));
  world.set_fault_plan(&plan);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> a = {41}, b = {42};
      c.send<int>(1, 11, a);  // re-delivered in flight
      c.send<int>(1, 11, b);
      c.barrier();
    } else {
      // Payloads arrive exactly once, in order; the duplicated copy never
      // surfaces as a third message.
      EXPECT_EQ(c.recv<int>(0, 11)[0], 41);
      EXPECT_EQ(c.recv<int>(0, 11)[0], 42);
      c.barrier();
      EXPECT_FALSE(c.try_recv<int>(0, 11).has_value());
    }
  });
  // duplicate_message is count-limited: only the first matching frame is
  // re-delivered, and that one extra copy is discarded by the seq ledger.
  EXPECT_EQ(plan.stats().duplicated, 1u);
  EXPECT_EQ(world.last_stats()[1].dup_discarded, 1u);
}

TEST(FaultInjection, DuplicateStormDeliversEachPayloadOnce) {
  // Every frame of the edge is re-delivered with a small extra delay (the
  // copies land *after* the originals were consumed); the receiver's seq
  // ledger must swallow all of them.
  constexpr int kMessages = 16;
  World world(2);
  FaultPlan plan;
  plan.add(FaultPlan::duplicate_edge(/*edge=*/5, /*tag_stride=*/16,
                                     /*probability=*/1.0,
                                     /*extra_delay=*/0.002));
  world.set_fault_plan(&plan);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < kMessages; ++i) {
        std::vector<int> v = {100 + i};
        c.send<int>(1, 5 + 16 * i, v);
      }
      c.barrier();
    } else {
      for (int i = 0; i < kMessages; ++i)
        EXPECT_EQ(c.recv<int>(0, 5 + 16 * i)[0], 100 + i);
      c.barrier();
      // Wait out the duplicates' extra delay, then prove none surfaces.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      for (int i = 0; i < kMessages; ++i)
        EXPECT_FALSE(c.try_recv<int>(0, 5 + 16 * i).has_value());
    }
  });
  EXPECT_EQ(plan.stats().duplicated, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(world.last_stats()[1].dup_discarded,
            static_cast<std::uint64_t>(kMessages));
}

TEST(FaultInjection, JitterDelaysButDeliversIntact) {
  World world(2);
  FaultPlan plan;
  plan.add(FaultPlan::jitter_edge(/*edge=*/3, /*tag_stride=*/16,
                                  /*scale=*/0.005, /*shape=*/1.5,
                                  /*cap=*/0.02));
  world.set_fault_plan(&plan);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 8; ++i) {
        std::vector<int> v = {i};
        c.send<int>(1, 3 + 16 * i, v);
      }
    } else {
      // Blocking recv rides out the heavy-tailed delay; payloads intact.
      for (int i = 0; i < 8; ++i)
        EXPECT_EQ(c.recv<int>(0, 3 + 16 * i)[0], i);
    }
  });
  EXPECT_EQ(plan.stats().jittered, 8u);
}

TEST(FaultInjection, SlowFactorIsDeterministicPerRankAndCpi) {
  // The kSlow coin is keyed on (rank, cpi), not on call order: two plans
  // with the same seed agree per CPI no matter how threads interleave, and
  // an intermittent rule slows only a strict subset of the stream.
  FaultPlan a(/*seed=*/77), b(/*seed=*/77);
  auto rule = FaultPlan::slow_rank(/*rank=*/2, /*factor=*/8.0,
                                   /*probability=*/0.5);
  a.add(rule);
  b.add(rule);
  int slowed_cpis = 0;
  for (long long cpi = 0; cpi < 32; ++cpi) {
    const double fa = a.slow_factor_due(2, cpi);
    EXPECT_DOUBLE_EQ(fa, b.slow_factor_due(2, cpi));
    EXPECT_TRUE(fa == 1.0 || fa == 8.0);
    slowed_cpis += fa > 1.0 ? 1 : 0;
  }
  EXPECT_GT(slowed_cpis, 0);
  EXPECT_LT(slowed_cpis, 32);
  // A different rank never matches the rule.
  for (long long cpi = 0; cpi < 32; ++cpi)
    EXPECT_EQ(a.slow_factor_due(0, cpi), 1.0);
  EXPECT_EQ(a.stats().slowed, static_cast<std::uint64_t>(slowed_cpis));
}

}  // namespace
}  // namespace ppstap::comm
