// Tests for the in-process message-passing runtime: point-to-point
// semantics, tag matching, flow control, barriers, abort-on-error, and the
// all-to-all personalized exchange pattern the pipeline uses.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "comm/world.hpp"

namespace ppstap::comm {
namespace {

TEST(World, PingPong) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> payload = {1, 2, 3};
      c.send<int>(1, 7, payload);
      auto echo = c.recv<int>(1, 8);
      ASSERT_EQ(echo.size(), 3u);
      EXPECT_EQ(echo[2], 6);
    } else {
      auto got = c.recv<int>(0, 7);
      for (auto& v : got) v *= 2;
      c.send<int>(0, 8, got);
    }
  });
}

TEST(World, TagMatchingOutOfOrder) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> a = {1}, b = {2}, d = {3};
      c.send<int>(1, 10, a);
      c.send<int>(1, 20, b);
      c.send<int>(1, 30, d);
    } else {
      // Receive in reverse tag order: matching must be by tag, not arrival.
      EXPECT_EQ(c.recv<int>(0, 30)[0], 3);
      EXPECT_EQ(c.recv<int>(0, 20)[0], 2);
      EXPECT_EQ(c.recv<int>(0, 10)[0], 1);
    }
  });
}

TEST(World, SameTagPreservesFifoPerSource) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        std::vector<int> v = {i};
        c.send<int>(1, 5, v);
      }
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(c.recv<int>(0, 5)[0], i);
    }
  });
}

TEST(World, EmptyMessagesAreDelivered) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> empty;
      c.send<int>(1, 1, empty);
    } else {
      EXPECT_TRUE(c.recv<int>(0, 1).empty());
    }
  });
}

TEST(World, AllToAllPersonalized) {
  // Every rank sends a distinct value to every other rank — the pipeline's
  // redistribution pattern.
  const int n = 6;
  World world(n);
  world.run([n](Comm& c) {
    for (int dst = 0; dst < n; ++dst) {
      std::vector<int> v = {c.rank() * 100 + dst};
      c.send<int>(dst, 42, v);
    }
    for (int src = 0; src < n; ++src)
      EXPECT_EQ(c.recv<int>(src, 42)[0], src * 100 + c.rank());
  });
}

TEST(World, BarrierSynchronizes) {
  const int n = 4;
  World world(n);
  std::atomic<int> before{0}, after{0};
  world.run([&](Comm& c) {
    before.fetch_add(1);
    c.barrier();
    // Every rank must have passed `before` by now.
    EXPECT_EQ(before.load(), n);
    after.fetch_add(1);
    c.barrier();
    EXPECT_EQ(after.load(), n);
  });
}

TEST(World, RepeatedBarriers) {
  World world(3);
  world.run([](Comm& c) {
    for (int i = 0; i < 50; ++i) c.barrier();
  });
}

TEST(World, RankExceptionPropagatesWithoutHanging) {
  World world(3);
  EXPECT_THROW(world.run([](Comm& c) {
                 if (c.rank() == 1) throw Error("rank 1 exploded");
                 // Other ranks block on a receive that will never be
                 // satisfied; the abort must wake them.
                 (void)c.recv<int>(2, 99);
               }),
               Error);
}

TEST(World, AbortWakesBarrierWaiters) {
  World world(3);
  EXPECT_THROW(world.run([](Comm& c) {
                 if (c.rank() == 0) throw Error("boom");
                 c.barrier();
               }),
               Error);
}

TEST(World, FlowControlThrottlesWithoutDeadlock) {
  // Tiny mailbox: the producer must block until the consumer drains, but
  // every message still arrives exactly once.
  World world(2, /*mailbox_capacity_bytes=*/64);
  world.run([](Comm& c) {
    const int count = 100;
    if (c.rank() == 0) {
      for (int i = 0; i < count; ++i) {
        std::vector<int> v(16, i);  // 64 bytes each
        c.send<int>(1, 1, v);
      }
    } else {
      for (int i = 0; i < count; ++i) {
        auto v = c.recv<int>(0, 1);
        ASSERT_EQ(v.size(), 16u);
        EXPECT_EQ(v[0], i);
      }
    }
  });
}

TEST(World, OversizedMessageStillAdmitted) {
  World world(2, /*mailbox_capacity_bytes=*/8);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> big(1000, 7);
      c.send<int>(1, 1, big);
    } else {
      EXPECT_EQ(c.recv<int>(0, 1).size(), 1000u);
    }
  });
}

TEST(World, TryRecvNeverBlocksAndConsumesOnce) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      EXPECT_FALSE(c.try_recv<int>(1, 5).has_value());  // nothing yet
      c.barrier();  // rank 1 sends before this barrier
      c.barrier();
      auto got = c.try_recv<int>(1, 5);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ((*got)[0], 42);
      EXPECT_FALSE(c.try_recv<int>(1, 5).has_value());  // consumed
    } else {
      std::vector<int> v = {42};
      c.barrier();
      c.send<int>(0, 5, v);
      c.barrier();
    }
  });
}

TEST(World, TryRecvMatchesTagsSelectively) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> v = {7};
      c.send<int>(1, 99, v);
      c.barrier();
    } else {
      c.barrier();
      EXPECT_FALSE(c.try_recv<int>(0, 98).has_value());
      EXPECT_TRUE(c.try_recv<int>(0, 99).has_value());
    }
  });
}

TEST(World, PendingRecvPostThenWait) {
  // The Fig. 10 structure: post receives for the next iteration (line 6),
  // wait for the current one (line 7).
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        std::vector<int> v = {i * 10};
        c.send<int>(1, i, v);
      }
    } else {
      auto r0 = c.irecv<int>(0, 0);
      auto r1 = c.irecv<int>(0, 1);  // posted before r0 completes
      EXPECT_EQ(r0.wait()[0], 0);
      EXPECT_EQ(r1.wait()[0], 10);
      auto r2 = c.irecv<int>(0, 2);
      // ready() does not consume; wait() still returns the payload.
      while (!r2.ready()) {
      }
      EXPECT_EQ(r2.wait()[0], 20);
    }
  });
}

TEST(World, StatsCountBytesAndMessages) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> v(10);
      c.send<double>(1, 3, v);
      c.send<double>(1, 4, v);
    } else {
      (void)c.recv<double>(0, 3);
      (void)c.recv<double>(0, 4);
    }
  });
  const auto& stats = world.last_stats();
  EXPECT_EQ(stats[0].messages_sent, 2u);
  EXPECT_EQ(stats[0].bytes_sent, 160u);
  EXPECT_EQ(stats[1].messages_received, 2u);
  EXPECT_EQ(stats[1].bytes_received, 160u);
}

TEST(World, ReusableAcrossRuns) {
  World world(2);
  for (int round = 0; round < 3; ++round) {
    world.run([round](Comm& c) {
      if (c.rank() == 0) {
        std::vector<int> v = {round};
        c.send<int>(1, 0, v);
      } else {
        EXPECT_EQ(c.recv<int>(0, 0)[0], round);
      }
    });
  }
}

TEST(World, InvalidRankThrows) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& c) {
                 std::vector<int> v = {1};
                 c.send<int>(5, 0, v);
               }),
               Error);
}

TEST(World, SingleRankWorldWorks) {
  World world(1);
  world.run([](Comm& c) {
    std::vector<int> v = {42};
    c.send<int>(0, 0, v);  // self-send
    EXPECT_EQ(c.recv<int>(0, 0)[0], 42);
    c.barrier();
  });
}

TEST(World, ManyRanksStress) {
  // Ring exchange with 32 ranks on one core: exercises scheduling fairness.
  const int n = 32;
  World world(n);
  world.run([n](Comm& c) {
    const int next = (c.rank() + 1) % n;
    const int prev = (c.rank() + n - 1) % n;
    int token = c.rank();
    for (int step = 0; step < 8; ++step) {
      std::vector<int> v = {token};
      c.send<int>(next, step, v);
      token = c.recv<int>(prev, step)[0];
    }
    // After 8 hops the token originated 8 ranks back.
    EXPECT_EQ(token, (c.rank() + n - 8) % n);
  });
}

}  // namespace
}  // namespace ppstap::comm
